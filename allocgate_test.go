package onlineindex_test

import (
	"os"
	"runtime"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/vfs"
	"onlineindex/internal/workload"
)

// allocGateBaseline is the post-optimization offline-build allocation rate in
// heap objects per table row, measured on a quiet machine after the
// diskbench hot-path pass (shared-scratch key extraction, single-alloc sort
// items, recycled run-reader chunks). The gate fails if a change regresses
// allocs/row more than 20% past this; update the constant deliberately when
// an accepted change moves the floor.
const allocGateBaseline = 4.5

// allocGateSlack is the tolerated regression over the baseline before the
// gate fails.
const allocGateSlack = 1.20

// measureBuildAllocs runs one offline build of rows rows on MemFS and
// returns the runtime.MemStats Mallocs delta per row. Allocation counts are
// exact (not wall-clock), so a single trial is reproducible to within GC
// bookkeeping noise; the minimum of a few trials removes even that.
func measureBuildAllocs(t *testing.T, rows int) float64 {
	t.Helper()
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Populate(db, "orders", rows, 24); err != nil {
		t.Fatal(err)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := core.Build(db, buildSpec(catalog.MethodOffline), core.Options{SortMemory: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rows)
}

// TestBuildAllocGate holds the line on per-row allocation churn in the
// offline build: the diskbench optimization loop exists to drive this number
// down, and this gate keeps it down. Gated behind ONLINEINDEX_ALLOC_GATE=1
// (set by `scripts/ci.sh bench-disk`) — allocation counts are stable, but
// the 100k-row build is too heavy for the default `go test ./...` pass.
func TestBuildAllocGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_ALLOC_GATE") == "" {
		t.Skip("set ONLINEINDEX_ALLOC_GATE=1 to run the allocation gate")
	}
	const rows = 100_000
	const trials = 3
	best := measureBuildAllocs(t, rows)
	for i := 1; i < trials; i++ {
		if a := measureBuildAllocs(t, rows); a < best {
			best = a
		}
	}
	limit := allocGateBaseline * allocGateSlack
	t.Logf("offline build: %.2f allocs/row (baseline %.1f, limit %.1f)", best, allocGateBaseline, limit)
	if best > limit {
		t.Errorf("offline build allocates %.2f objects/row, more than %.0f%% over the %.1f baseline",
			best, (allocGateSlack-1)*100, allocGateBaseline)
	}
}
