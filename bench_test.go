// Benchmarks: one testing.B benchmark per experiment family of DESIGN.md's
// experiment index. They exercise the same code paths as cmd/benchtab (which
// prints the full tables recorded in EXPERIMENTS.md); the benchmarks report
// throughput-style metrics so `go test -bench` gives a one-screen summary.
package onlineindex_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"onlineindex"
	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/experiments"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
	"onlineindex/internal/workload"
)

const benchRows = 20_000

func benchDB(b *testing.B) (*engine.DB, []onlineindex.RID) {
	b.Helper()
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
		b.Fatal(err)
	}
	rids, err := workload.Populate(db, "orders", benchRows, 24)
	if err != nil {
		b.Fatal(err)
	}
	return db, rids
}

func buildSpec(method catalog.BuildMethod) engine.CreateIndexSpec {
	return engine.CreateIndexSpec{
		Name: "bench_idx", Table: "orders", Columns: []string{"key"}, Method: method,
	}
}

// BenchmarkE1Build measures quiet-table build throughput (keys/s) per method.
func BenchmarkE1Build(b *testing.B) {
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _ := benchDB(b)
				b.StartTimer()
				if _, err := core.Build(db, buildSpec(method), core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(benchRows*b.N)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkE1BuildTime measures quiet-table build wall-clock on a 200k-row
// table with the staged scan pipeline at 1 and 4 key-extraction workers: the
// acceptance check for the pipeline is that workers=4 beats workers=1.
func BenchmarkE1BuildTime(b *testing.B) {
	const rows = 200_000
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", method, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 4096})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
						b.Fatal(err)
					}
					if _, err := workload.Populate(db, "orders", rows, 24); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := core.Build(db, buildSpec(method), core.Options{ScanWorkers: workers}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "keys/s")
			})
		}
	}
}

// BenchmarkE2Availability measures committed update transactions per second
// while a build runs.
func BenchmarkE2Availability(b *testing.B) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		b.Run(method.String(), func(b *testing.B) {
			var commits uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, rids := benchDB(b)
				runner := workload.NewRunner(db, "orders", rids, 4, workload.DefaultMix)
				b.StartTimer()
				runner.Start()
				if _, err := core.Build(db, buildSpec(method), core.Options{}); err != nil {
					b.Fatal(err)
				}
				st := runner.Stop()
				commits += st.Commits
				elapsed += st.Elapsed
			}
			if elapsed > 0 {
				b.ReportMetric(float64(commits)/elapsed.Seconds(), "commits/s")
			}
		})
	}
}

// BenchmarkE4Clustering reports the clustering factor each method achieves
// under a fixed concurrent load.
func BenchmarkE4Clustering(b *testing.B) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		b.Run(method.String(), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, rids := benchDB(b)
				runner := workload.NewRunner(db, "orders", rids, 4, workload.DefaultMix)
				b.StartTimer()
				runner.Start()
				if _, err := core.Build(db, buildSpec(method), core.Options{}); err != nil {
					b.Fatal(err)
				}
				runner.Stop()
				cl, err := harness.IndexClustering(db, "bench_idx")
				if err != nil {
					b.Fatal(err)
				}
				sum += cl
			}
			b.ReportMetric(sum/float64(b.N), "clustering")
		})
	}
}

// BenchmarkE5LogBytes reports log bytes written per built key.
func BenchmarkE5LogBytes(b *testing.B) {
	type variant struct {
		name   string
		method catalog.BuildMethod
		batch  int
	}
	for _, v := range []variant{
		{"NSF-multikey", catalog.MethodNSF, 64},
		{"NSF-perkey", catalog.MethodNSF, 1},
		{"SF", catalog.MethodSF, 0},
	} {
		b.Run(v.name, func(b *testing.B) {
			var bytes uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _ := benchDB(b)
				before := db.Log().Stats()
				b.StartTimer()
				if _, err := core.Build(db, buildSpec(v.method), core.Options{BatchSize: v.batch}); err != nil {
					b.Fatal(err)
				}
				bytes += db.Log().Stats().Delta(before).Bytes
			}
			b.ReportMetric(float64(bytes)/float64(b.N*benchRows), "logB/key")
		})
	}
}

// BenchmarkE7Sort measures the restartable sort's throughput, with and
// without checkpointing overhead.
func BenchmarkE7Sort(b *testing.B) {
	const items = 100_000
	for _, every := range []int{0, 10_000} {
		name := "no-checkpoints"
		if every > 0 {
			name = fmt.Sprintf("checkpoint-every-%d", every)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fs := vfs.NewMemFS()
				s := extsort.NewSorter(fs, "bench", 4096)
				for j := 0; j < items; j++ {
					it := []byte(workload.KeyOf(int64(j * 2654435761 % items)))
					if err := s.Add(it); err != nil {
						b.Fatal(err)
					}
					if every > 0 && (j+1)%every == 0 {
						if _, err := s.Checkpoint(nil); err != nil {
							b.Fatal(err)
						}
					}
				}
				runs, err := s.Finish()
				if err != nil {
					b.Fatal(err)
				}
				m, err := extsort.NewMerger(fs, runs, nil)
				if err != nil {
					b.Fatal(err)
				}
				for {
					_, _, ok, err := m.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
				}
				m.Close()
			}
			b.ReportMetric(float64(items*b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// BenchmarkE9MultiIndex compares three sequential builds against one shared
// scan.
func BenchmarkE9MultiIndex(b *testing.B) {
	mkSpecs := func(prefix string) []engine.CreateIndexSpec {
		return []engine.CreateIndexSpec{
			{Name: prefix + "_key", Table: "orders", Columns: []string{"key"}, Method: catalog.MethodSF},
			{Name: prefix + "_id", Table: "orders", Columns: []string{"id"}, Method: catalog.MethodSF},
			{Name: prefix + "_filler", Table: "orders", Columns: []string{"filler"}, Method: catalog.MethodSF},
		}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, _ := benchDB(b)
			b.StartTimer()
			for _, s := range mkSpecs("s") {
				if _, err := core.Build(db, s, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("single-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db, _ := benchDB(b)
			b.StartTimer()
			if _, err := core.BuildMany(db, mkSpecs("m"), core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDML measures baseline transaction throughput (no build), for
// scale context in EXPERIMENTS.md.
func BenchmarkDML(b *testing.B) {
	db, rids := benchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "orders", workload.RowOf(int64(1_000_000+i), 16)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	_ = rids
}

// BenchmarkCommitThroughput measures committed transactions per second with
// N concurrent writers on a MemFS that charges a realistic fsync latency
// (experiments.CommitSyncLatency per Sync). group is the WAL's group-commit
// path; serial is the pre-group-commit baseline that holds the log mutex
// across WriteAt+Sync, so its 16-writer line shows the fsync convoy the
// group path exists to break. `benchtab -commitbench` records the same
// measurement (driven by workload.Runner during a live SF build) into
// BENCH_build.json.
func BenchmarkCommitThroughput(b *testing.B) {
	for _, serial := range []bool{false, true} {
		mode := "group"
		if serial {
			mode = "serial"
		}
		for _, workers := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/writers=%d", mode, workers), func(b *testing.B) {
				fs := vfs.NewMemFS()
				db, err := engine.Open(engine.Config{FS: fs, PoolSize: 4096, SerialCommitForce: serial})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
					b.Fatal(err)
				}
				fs.SetSyncLatency(experiments.CommitSyncLatency, wal.LogFileName)
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							tx := db.Begin()
							if _, err := db.Insert(tx, "orders", workload.RowOf(i, 24)); err != nil {
								b.Error(err)
								tx.Rollback() //nolint:errcheck
								return
							}
							if err := tx.Commit(); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "commits/s")
			})
		}
	}
}

// TestExperimentsSmoke runs every experiment at a small scale so the full
// table-generation path stays green in CI.
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments smoke test is not -short")
	}
	cfg := experiments.Config{Scale: 0.03}
	for _, e := range experiments.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if err := e.Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
