module onlineindex

go 1.22
