package onlineindex_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"onlineindex"
)

func apiDB(t *testing.T) *onlineindex.DB {
	t.Helper()
	db, err := onlineindex.Open(onlineindex.Config{PoolSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "name", Kind: onlineindex.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func apiRow(id int64) onlineindex.Row {
	return onlineindex.Row{onlineindex.Int64(id), onlineindex.String(fmt.Sprintf("n-%06d", id))}
}

func TestFacadeCRUDAndIndex(t *testing.T) {
	db := apiDB(t)
	var rids []onlineindex.RID
	for i := 0; i < 500; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "t", apiRow(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	res, err := db.BuildIndex(onlineindex.IndexSpec{
		Name: "by_name", Table: "t", Columns: []string{"name"}, Method: onlineindex.SF,
	}, onlineindex.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.KeysInserted != 500 {
		t.Fatalf("inserted = %d", res.Stats.KeysInserted)
	}

	tx := db.Begin()
	got, err := db.IndexLookup(tx, "by_name", onlineindex.String("n-000123"))
	if err != nil || len(got) != 1 || got[0] != rids[123] {
		t.Fatalf("lookup = %v, %v", got, err)
	}
	// Range scan over the complete index.
	count := 0
	err = db.IndexScan(tx, "by_name",
		[]onlineindex.Value{onlineindex.String("n-000100")},
		[]onlineindex.Value{onlineindex.String("n-000199")},
		func(key []byte, rid onlineindex.RID) bool { count++; return true })
	if err != nil || count != 100 {
		t.Fatalf("scan = %d, %v", count, err)
	}
	tx.Commit()

	// Update + delete flow through index maintenance.
	tx2 := db.Begin()
	newRID, err := db.Update(tx2, "t", rids[7], apiRow(100_007))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Delete(tx2, "t", newRID); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GC("by_name"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropIndex("by_name"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Index("by_name"); ok {
		t.Fatal("dropped index still visible")
	}
}

func TestFacadeCrashRecoverResume(t *testing.T) {
	fs := onlineindex.NewMemFS()
	db, err := onlineindex.Open(onlineindex.Config{FS: fs, PoolSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "name", Kind: onlineindex.KindString},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "t", apiRow(int64(i))); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		db.BuildIndex(onlineindex.IndexSpec{ //nolint:errcheck
			Name: "by_name", Table: "t", Columns: []string{"name"}, Method: onlineindex.NSF,
		}, onlineindex.BuildOptions{CheckpointPages: 2, CheckpointKeys: 200})
	}()
	time.Sleep(15 * time.Millisecond)
	db.Crash()
	<-done

	// Recover resumes pending builds automatically.
	db2, err := onlineindex.Recover(onlineindex.Config{FS: fs, PoolSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := db2.Index("by_name")
	if ok {
		// Build had gotten its descriptor durable; Recover must have
		// finished it.
		if err := db2.CheckIndexConsistency("by_name"); err != nil {
			t.Fatal(err)
		}
		_ = ix
	} else {
		// Crash preceded the descriptor; build anew.
		if _, err := db2.BuildIndex(onlineindex.IndexSpec{
			Name: "by_name", Table: "t", Columns: []string{"name"}, Method: onlineindex.NSF,
		}, onlineindex.BuildOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	tx := db2.Begin()
	got, err := db2.IndexLookup(tx, "by_name", onlineindex.String("n-002222"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-recovery lookup = %v, %v", got, err)
	}
	tx.Commit()
}

func TestFacadeBuildIndexesAndCancel(t *testing.T) {
	db := apiDB(t)
	for i := 0; i < 800; i++ {
		tx := db.Begin()
		db.Insert(tx, "t", apiRow(int64(i))) //nolint:errcheck
		tx.Commit()
	}
	results, err := db.BuildIndexes([]onlineindex.IndexSpec{
		{Name: "m1", Table: "t", Columns: []string{"name"}, Method: onlineindex.NSF},
		{Name: "m2", Table: "t", Columns: []string{"id"}, Method: onlineindex.NSF},
	}, onlineindex.BuildOptions{})
	if err != nil || len(results) != 2 {
		t.Fatal(err)
	}
	for _, name := range []string{"m1", "m2"} {
		if err := db.CheckIndexConsistency(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeUniqueViolationSurfaced(t *testing.T) {
	db := apiDB(t)
	tx := db.Begin()
	db.Insert(tx, "t", apiRow(5))                                                          //nolint:errcheck
	db.Insert(tx, "t", onlineindex.Row{onlineindex.Int64(5), onlineindex.String("other")}) //nolint:errcheck
	tx.Commit()
	_, err := db.BuildIndex(onlineindex.IndexSpec{
		Name: "uniq", Table: "t", Columns: []string{"id"}, Unique: true, Method: onlineindex.SF,
	}, onlineindex.BuildOptions{})
	var uv *onlineindex.UniqueViolationError
	if err == nil || !errorsAs(err, &uv) {
		t.Fatalf("err = %v, want UniqueViolationError in chain", err)
	}
}

func errorsAs(err error, target any) bool {
	return errors.As(err, target.(**onlineindex.UniqueViolationError))
}

func TestFacadeConcurrentUse(t *testing.T) {
	db := apiDB(t)
	var rids []onlineindex.RID
	for i := 0; i < 1000; i++ {
		tx := db.Begin()
		rid, _ := db.Insert(tx, "t", apiRow(int64(i)))
		tx.Commit()
		rids = append(rids, rid)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := int64(50_000 * (w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				time.Sleep(200 * time.Microsecond)
				id++
				tx := db.Begin()
				if _, err := db.Insert(tx, "t", apiRow(id)); err != nil {
					tx.Rollback()
					continue
				}
				tx.Commit()
			}
		}(w)
	}
	_, err := db.BuildIndex(onlineindex.IndexSpec{
		Name: "by_name", Table: "t", Columns: []string{"name"}, Method: onlineindex.SF,
	}, onlineindex.BuildOptions{})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	_ = rids
}

// TestFacadeBuildOptions exercises the options surface through the facade:
// ScanWorkers flows to the staged scan pipeline, and out-of-range options
// fail with ErrInvalidBuildOptions before any descriptor is created.
func TestFacadeBuildOptions(t *testing.T) {
	db := apiDB(t)
	// Enough rows for several heap pages: the pipeline clamps its worker
	// count to the page count, and the test asserts all 4 workers ran.
	for i := 0; i < 3000; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "t", apiRow(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	spec := onlineindex.IndexSpec{
		Name: "by_name", Table: "t", Columns: []string{"name"}, Method: onlineindex.NSF,
	}
	if _, err := db.BuildIndex(spec, onlineindex.BuildOptions{ScanWorkers: -1}); !errors.Is(err, onlineindex.ErrInvalidBuildOptions) {
		t.Fatalf("err = %v, want ErrInvalidBuildOptions", err)
	}
	if _, ok := db.Index("by_name"); ok {
		t.Fatal("rejected build left a descriptor")
	}

	res, err := db.BuildIndex(spec, onlineindex.BuildOptions{ScanWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Pipeline.Workers != 4 {
		t.Fatalf("pipeline workers = %d, want 4", res.Stats.Pipeline.Workers)
	}
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}
