package onlineindex_test

import (
	"os"
	"testing"

	"onlineindex/internal/experiments"
)

// TestCompressSpillGate enforces the key-compression win: with CompressKeys
// on, the sort must spill at least 20% fewer run-file bytes than the
// uncompressed build of the same index over composite-style keys (the
// prefix-heavy shape prefix truncation exists for). Branch fanout is
// reported for context but not gated — the per-level average is confounded
// by however full the last internal page happens to be. The comparison
// counts bytes, not wall-clock, so it is deterministic — the gate is still
// opt-in (ONLINEINDEX_COMPRESS_GATE=1, set by `scripts/ci.sh
// bench-compress`) to keep the default test run lean.
func TestCompressSpillGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_COMPRESS_GATE") == "" {
		t.Skip("set ONLINEINDEX_COMPRESS_GATE=1 to run the compression gate")
	}
	const rows = 100_000
	plain, comp, err := experiments.MeasureSpill(rows)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Bytes == 0 {
		t.Fatalf("uncompressed build spilled nothing over %d rows; the gate needs external runs", rows)
	}
	ratio := float64(comp.Bytes) / float64(plain.Bytes)
	t.Logf("spilled %d compressed vs %d uncompressed bytes (%.1f%%), fanout %.1f vs %.1f",
		comp.Bytes, plain.Bytes, 100*ratio, comp.Fanout, plain.Fanout)
	if ratio > 0.8 {
		t.Errorf("compressed spill is %.1f%% of uncompressed, above the 80%% gate", 100*ratio)
	}
}
