package onlineindex_test

import (
	"os"
	"runtime"
	"testing"

	"onlineindex/internal/experiments"
)

// TestShardedBufferGate enforces the page-table sharding win: all-hit buffer
// fetch throughput from 8 goroutines on an 8-shard pool must be at least
// 1.5x the single-shard pool's. The workload is pure page-table contention —
// a cached working set, no I/O, no eviction — so the ratio measures exactly
// what the refactor sharded. Wall-clock measurements are noisy on shared
// machines, so the gate only runs when explicitly requested
// (ONLINEINDEX_CONC_GATE=1, set by `scripts/ci.sh bench-conc`) and takes the
// best of several trials per configuration, interleaved so both see the same
// machine drift.
func TestShardedBufferGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_CONC_GATE") == "" {
		t.Skip("set ONLINEINDEX_CONC_GATE=1 to run the sharded-buffer gate")
	}
	// The gate measures parallel speedup, which needs parallel hardware: on
	// one core 8 goroutines serialize either way and the shard count cannot
	// matter. CI's nightly runners have >= 4.
	if runtime.NumCPU() < 4 {
		t.Skipf("sharded-buffer gate needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const (
		goroutines = 8
		trials     = 5
		dur        = 100 * 1000 * 1000 // 100ms in ns
	)
	var one, sharded float64
	for i := 0; i < trials; i++ {
		f1, err := experiments.MeasureBufferFetch(1, goroutines, dur)
		if err != nil {
			t.Fatal(err)
		}
		if f1 > one {
			one = f1
		}
		f8, err := experiments.MeasureBufferFetch(8, goroutines, dur)
		if err != nil {
			t.Fatal(err)
		}
		if f8 > sharded {
			sharded = f8
		}
	}
	speedup := sharded / one
	t.Logf("all-hit fetch at %d goroutines: 1 shard %.0f/s, 8 shards %.0f/s, speedup %.2fx",
		goroutines, one, sharded, speedup)
	if speedup < 1.5 {
		t.Errorf("sharded buffer fetch speedup %.2fx below the 1.5x gate", speedup)
	}
}
