package onlineindex_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	"onlineindex/internal/experiments"
)

// TestReadPathGate enforces the hash fast path's win: all-hit point-lookup
// throughput with the cache enabled must be at least 1.5x the tree-only
// path on an identically populated database. The workload is the cache's
// best case by construction — a hot key set under the cache capacity, no
// writers, so after the first pass every lookup validates a cached run
// instead of descending the tree — which is exactly the case the layer
// exists for; anything under 1.5x there means the versioned-validation
// bookkeeping ate the descent it saved. Wall-clock measurements are noisy
// on shared machines, so the gate only runs when explicitly requested
// (ONLINEINDEX_READ_GATE=1, set by `scripts/ci.sh bench-read`) and takes
// the best of several trials, interleaved so both databases see the same
// machine drift.
func TestReadPathGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_READ_GATE") == "" {
		t.Skip("set ONLINEINDEX_READ_GATE=1 to run the read-path gate")
	}
	// Concurrent readers hammer a shared cache shard map; on one core they
	// serialize and the measurement degenerates into scheduler noise. CI's
	// nightly runners have >= 4.
	if runtime.NumCPU() < 4 {
		t.Skipf("read-path gate needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	const (
		rows    = 20000
		readers = 4
		trials  = 5
		dur     = 100 * time.Millisecond
	)
	dbHash, dbTree, err := experiments.NewReadGateDBs(rows)
	if err != nil {
		t.Fatal(err)
	}
	defer dbHash.Close() //nolint:errcheck
	defer dbTree.Close() //nolint:errcheck
	var hash, tree float64
	for i := 0; i < trials; i++ {
		h, err := experiments.MeasurePointLookup(dbHash, readers, dur)
		if err != nil {
			t.Fatal(err)
		}
		if h > hash {
			hash = h
		}
		tr, err := experiments.MeasurePointLookup(dbTree, readers, dur)
		if err != nil {
			t.Fatal(err)
		}
		if tr > tree {
			tree = tr
		}
	}
	speedup := hash / tree
	t.Logf("all-hit point lookups at %d readers: tree-only %.0f/s, hash fast path %.0f/s, speedup %.2fx",
		readers, tree, hash, speedup)
	if speedup < 1.5 {
		t.Errorf("hash fast-path speedup %.2fx below the 1.5x gate", speedup)
	}
}
