package onlineindex_test

import (
	"os"
	"testing"
	"time"

	"onlineindex/internal/experiments"
)

// TestCommitThroughputGate enforces the group-commit win: with 16 concurrent
// insert-commit writers (the BenchmarkCommitThroughput load), the group path
// must deliver at least 3x the serial-Force baseline's commit throughput.
// The pair runs on a quiet table — a concurrent build adds latch/pool
// contention that throttles both modes alike and masks the fsync convoy
// under test; `benchtab -commitbench` records the live-build numbers as
// context. Wall-clock measurements are noisy on shared machines, so the
// gate only runs when explicitly requested (ONLINEINDEX_COMMIT_GATE=1, set
// by `scripts/ci.sh bench-commit`) and takes the best of several trials per
// mode.
func TestCommitThroughputGate(t *testing.T) {
	if os.Getenv("ONLINEINDEX_COMMIT_GATE") == "" {
		t.Skip("set ONLINEINDEX_COMMIT_GATE=1 to run the commit-throughput gate")
	}
	const (
		rows    = 20_000
		writers = 16
		trials  = 3
		dur     = 500 * time.Millisecond
	)
	measure := func(serial bool) float64 {
		best := 0.0
		for i := 0; i < trials; i++ {
			tps, _, err := experiments.MeasureCommitTPS(rows, writers, serial, false, dur)
			if err != nil {
				t.Fatal(err)
			}
			if tps > best {
				best = tps
			}
		}
		return best
	}
	group := measure(false)
	serial := measure(true)
	speedup := group / serial
	t.Logf("16 insert-commit writers: group %.0f commits/s, serial %.0f commits/s, speedup %.2fx",
		group, serial, speedup)
	if speedup < 3 {
		t.Errorf("group commit speedup %.2fx below the 3x gate", speedup)
	}
}
