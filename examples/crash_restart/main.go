// Crash and restart: kill the system in the middle of an online index build
// and resume it from the builder's checkpoints after ARIES restart recovery
// — the paper's §1.3 restartability story end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"onlineindex"
)

func main() {
	fs := onlineindex.NewMemFS()
	db, err := onlineindex.Open(onlineindex.Config{FS: fs, PoolSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("big", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "key", Kind: onlineindex.KindString},
	}); err != nil {
		log.Fatal(err)
	}
	const rows = 40_000
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "big", row(int64(i))); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("populated %d rows\n", rows)

	// Start an SF build with frequent checkpoints, then pull the plug while
	// it runs.
	opts := onlineindex.BuildOptions{CheckpointPages: 16, CheckpointKeys: 4000}
	done := make(chan error, 1)
	go func() {
		defer func() { recover() }() // the simulated power cut fails the builder
		_, err := db.BuildIndex(onlineindex.IndexSpec{
			Name: "big_by_key", Table: "big", Columns: []string{"key"}, Method: onlineindex.SF,
		}, opts)
		done <- err
	}()
	time.Sleep(60 * time.Millisecond) // let the build make progress
	db.Crash()
	<-done
	fmt.Println("CRASH: power cut mid-build; volatile state gone")

	// Restart: recovery repairs the engine, then the pending build resumes
	// from its last checkpoint instead of starting over.
	start := time.Now()
	db2, err := onlineindex.RecoverWithoutResume(onlineindex.Config{FS: fs, PoolSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restart recovery done in %.0fms\n", time.Since(start).Seconds()*1000)

	pending, err := db2.PendingBuilds()
	if err != nil {
		log.Fatal(err)
	}
	switch len(pending) {
	case 0:
		fmt.Println("crash happened before the build descriptor was durable; rebuilding from scratch")
		if _, err := db2.BuildIndex(onlineindex.IndexSpec{
			Name: "big_by_key", Table: "big", Columns: []string{"key"}, Method: onlineindex.SF,
		}, opts); err != nil {
			log.Fatal(err)
		}
	case 1:
		pb := pending[0]
		if pb.State != nil {
			fmt.Printf("resuming build of %q from checkpointed phase %q\n", pb.Index.Name, pb.State.Phase)
		} else {
			fmt.Printf("resuming build of %q (no checkpoint reached; scan restarts)\n", pb.Index.Name)
		}
		res, err := db2.ResumeBuild(pb, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resume re-extracted %d of %d keys (work before the last checkpoint was preserved)\n",
			res.Stats.KeysExtracted, rows)
	default:
		log.Fatalf("unexpected pending builds: %d", len(pending))
	}

	if err := db2.CheckIndexConsistency("big_by_key"); err != nil {
		log.Fatal(err)
	}
	tx := db2.Begin()
	rids, err := db2.IndexLookup(tx, "big_by_key", onlineindex.String(key(12345)))
	if err != nil || len(rids) != 1 {
		log.Fatalf("lookup after restart: %v %v", rids, err)
	}
	tx.Commit()
	fmt.Println("index complete and verified after crash + resume")
}

func key(id int64) string {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return fmt.Sprintf("k%016x", h)
}

func row(id int64) onlineindex.Row {
	return onlineindex.Row{onlineindex.Int64(id), onlineindex.String(key(id))}
}
