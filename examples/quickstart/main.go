// Quickstart: create a table, run transactions, build an index online with
// the SF algorithm, and query through it.
package main

import (
	"fmt"
	"log"

	"onlineindex"
)

func main() {
	db, err := onlineindex.Open(onlineindex.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// A table of orders.
	if _, err := db.CreateTable("orders", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "customer", Kind: onlineindex.KindString},
		{Name: "amount", Kind: onlineindex.KindInt64},
	}); err != nil {
		log.Fatal(err)
	}

	// Insert some rows transactionally.
	customers := []string{"acme", "globex", "initech", "umbrella", "acme", "globex", "acme"}
	for i, c := range customers {
		tx := db.Begin()
		if _, err := db.Insert(tx, "orders", onlineindex.Row{
			onlineindex.Int64(int64(i + 1)),
			onlineindex.String(c),
			onlineindex.Int64(int64(100 * (i + 1))),
		}); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// Build a secondary index with the Side-File algorithm. On a quiet
	// table this is simply a bottom-up bulk build; the point of the
	// algorithm is that concurrent transactions could keep modifying
	// "orders" the whole time (see examples/concurrent_build).
	res, err := db.BuildIndex(onlineindex.IndexSpec{
		Name:    "orders_by_customer",
		Table:   "orders",
		Columns: []string{"customer"},
		Method:  onlineindex.SF,
	}, onlineindex.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %q with %s: %d keys, %d sorted runs\n",
		res.Index.Name, res.Stats.Method, res.Stats.KeysInserted, res.Stats.Runs)

	// Query through the index.
	tx := db.Begin()
	rids, err := db.IndexLookup(tx, "orders_by_customer", onlineindex.String("acme"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acme has %d orders:\n", len(rids))
	for _, rid := range rids {
		row, ok, err := db.Get(tx, "orders", rid)
		if err != nil || !ok {
			log.Fatal(err)
		}
		fmt.Printf("  order id=%v amount=%v\n", row[0], row[2])
	}
	tx.Commit()

	// The library self-verifies: the index must exactly reflect the table.
	if err := db.CheckIndexConsistency("orders_by_customer"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index verified consistent with table")
}
