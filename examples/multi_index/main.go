// Multi-index build: §6.2 of the paper — "it would be very beneficial to
// build multiple indexes in one data scan" because "the cost of accessing
// all the data pages may be a significant part of the overall cost". That
// premise needs a disk: the example runs on a simulated device (50µs/page
// read) with a buffer pool much smaller than the table, so sequential
// builds really re-read the table three times. It builds three indexes
// sequentially and then in a single shared scan, while an update workload
// runs, and compares scan work and wall-clock time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"onlineindex"
)

const rows = 25_000

func main() {
	seq := run("sequential", func(db *onlineindex.DB) error {
		for _, spec := range specs("s") {
			if _, err := db.BuildIndex(spec, onlineindex.BuildOptions{}); err != nil {
				return err
			}
		}
		return nil
	})
	one := run("single-scan", func(db *onlineindex.DB) error {
		_, err := db.BuildIndexes(specs("m"), onlineindex.BuildOptions{})
		return err
	})
	fmt.Printf("\nsequential: %.0fms   single-scan: %.0fms   speedup: %.2fx\n",
		seq.Seconds()*1000, one.Seconds()*1000, seq.Seconds()/one.Seconds())
}

func specs(prefix string) []onlineindex.IndexSpec {
	return []onlineindex.IndexSpec{
		{Name: prefix + "_by_key", Table: "t", Columns: []string{"key"}, Method: onlineindex.SF},
		{Name: prefix + "_by_id", Table: "t", Columns: []string{"id"}, Method: onlineindex.SF},
		{Name: prefix + "_by_cat", Table: "t", Columns: []string{"cat"}, Method: onlineindex.SF},
	}
}

func run(label string, build func(db *onlineindex.DB) error) time.Duration {
	fs := onlineindex.NewMemFS()
	db, err := onlineindex.Open(onlineindex.Config{FS: fs, PoolSize: 96})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("t", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "key", Kind: onlineindex.KindString},
		{Name: "cat", Kind: onlineindex.KindInt64},
	}); err != nil {
		log.Fatal(err)
	}
	rids := make([]onlineindex.RID, 0, rows)
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "t", row(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		tx.Commit()
		rids = append(rids, rid)
	}

	// Population is done; from here the simulated disk charges for page
	// reads, making the scans I/O-bound as in the paper's setting.
	fs.SetLatency(50*time.Microsecond, 512<<20)

	// Light concurrent update load: the builds stay online.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		next := int64(rows)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			next++
			if _, err := db.Insert(tx, "t", row(next)); err != nil {
				log.Fatalf("workload: %v", err)
			}
			if rng.Intn(2) == 0 {
				tx.Rollback()
			} else {
				tx.Commit()
			}
		}
	}()

	start := time.Now()
	if err := build(db); err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	dur := time.Since(start)
	close(stop)
	wg.Wait()

	for _, spec := range specs(map[bool]string{true: "s", false: "m"}[label == "sequential"]) {
		if err := db.CheckIndexConsistency(spec.Name); err != nil {
			log.Fatalf("%s: %s inconsistent: %v", label, spec.Name, err)
		}
	}
	fmt.Printf("%-12s built 3 indexes in %.0fms (all verified)\n", label, dur.Seconds()*1000)
	return dur
}

func row(id int64) onlineindex.Row {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return onlineindex.Row{
		onlineindex.Int64(id),
		onlineindex.String(fmt.Sprintf("k%016x", h)),
		onlineindex.Int64(id % 37),
	}
}
