// Concurrent build: the paper's motivating scenario. An OLTP workload keeps
// inserting, deleting and updating rows while an index is built three ways —
// offline (updates block for the whole build), NSF and SF (updates continue)
// — and the example reports the update throughput and worst stall each way.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"onlineindex"
)

const tableRows = 30_000

func main() {
	for _, method := range []onlineindex.BuildMethod{onlineindex.Offline, onlineindex.NSF, onlineindex.SF} {
		runScenario(method)
	}
}

func runScenario(method onlineindex.BuildMethod) {
	db, err := onlineindex.Open(onlineindex.Config{PoolSize: 4096})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateTable("events", onlineindex.Schema{
		{Name: "id", Kind: onlineindex.KindInt64},
		{Name: "tag", Kind: onlineindex.KindString},
	}); err != nil {
		log.Fatal(err)
	}

	// Populate.
	rids := make([]onlineindex.RID, 0, tableRows)
	for i := 0; i < tableRows; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "events", row(int64(i)))
		if err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		rids = append(rids, rid)
	}

	// OLTP workload: 4 workers hammering the table.
	stop := make(chan struct{})
	var commits atomic.Uint64
	var maxStall atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			mine := append([]onlineindex.RID(nil), rids[w*len(rids)/4:(w+1)*len(rids)/4]...)
			next := int64(1_000_000 * (w + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				begin := time.Now()
				tx := db.Begin()
				var err error
				switch rng.Intn(3) {
				case 0:
					next++
					var rid onlineindex.RID
					rid, err = db.Insert(tx, "events", row(next))
					if err == nil {
						mine = append(mine, rid)
					}
				case 1:
					if len(mine) > 0 {
						k := rng.Intn(len(mine))
						err = db.Delete(tx, "events", mine[k])
						if err == nil {
							mine = append(mine[:k], mine[k+1:]...)
						}
					}
				default:
					if len(mine) > 0 {
						k := rng.Intn(len(mine))
						next++
						var nr onlineindex.RID
						nr, err = db.Update(tx, "events", mine[k], row(next))
						if err == nil {
							mine[k] = nr
						}
					}
				}
				if err != nil {
					log.Fatalf("workload: %v", err)
				}
				if err := tx.Commit(); err != nil {
					log.Fatalf("commit: %v", err)
				}
				commits.Add(1)
				if d := int64(time.Since(begin)); d > maxStall.Load() {
					maxStall.Store(d)
				}
			}
		}(w)
	}

	// Build the index while the workload runs.
	buildStart := time.Now()
	res, err := db.BuildIndex(onlineindex.IndexSpec{
		Name: "events_by_tag", Table: "events", Columns: []string{"tag"}, Method: method,
	}, onlineindex.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	buildDur := time.Since(buildStart)
	close(stop)
	wg.Wait()

	if err := db.CheckIndexConsistency("events_by_tag"); err != nil {
		log.Fatalf("%s: index inconsistent: %v", method, err)
	}

	tps := float64(commits.Load()) / buildDur.Seconds()
	fmt.Printf("%-8s build %6.0fms | txn commits during build: %6d (%7.0f/s) | worst txn stall: %6.0fms | side-file: %d entries\n",
		method, buildDur.Seconds()*1000, commits.Load(), tps,
		time.Duration(maxStall.Load()).Seconds()*1000, res.Stats.SideFileLen)
}

func row(id int64) onlineindex.Row {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return onlineindex.Row{
		onlineindex.Int64(id),
		onlineindex.String(fmt.Sprintf("tag-%016x", h)),
	}
}
