#!/usr/bin/env sh
# Summarize pprof profiles captured by `benchtab -diskbench -cpuprofile/-memprofile`.
#
# Usage:
#   scripts/analyze_profile.sh cpu.pprof [heap.pprof ...]
#
# For each profile this prints the top-25 flat consumers plus, for heap
# profiles, the same ranking by allocation count (alloc_objects) — the view
# that drives the allocs_per_row optimization loop. Output is plain text so
# CI can archive it as an artifact next to the raw profiles.
#
# Requires only the go toolchain (`go tool pprof`), no graphviz.
set -eu

if [ "$#" -lt 1 ]; then
    echo "usage: $0 <profile.pprof> [more.pprof ...]" >&2
    exit 2
fi

for prof in "$@"; do
    if [ ! -f "$prof" ]; then
        echo "analyze_profile: no such profile: $prof" >&2
        exit 1
    fi
    echo "==================================================================="
    echo "== $prof"
    echo "==================================================================="
    # Heap profiles contain an alloc_objects sample type; CPU profiles don't.
    # Probe for it instead of guessing from the file name.
    if go tool pprof -sample_index=alloc_objects -top -nodecount=1 "$prof" >/dev/null 2>&1; then
        echo "--- top 25 by allocated objects (alloc_objects) ---"
        go tool pprof -sample_index=alloc_objects -top -nodecount=25 "$prof"
        echo
        echo "--- top 25 by allocated bytes (alloc_space) ---"
        go tool pprof -sample_index=alloc_space -top -nodecount=25 "$prof"
    else
        echo "--- top 25 by flat CPU ---"
        go tool pprof -top -nodecount=25 "$prof"
        echo
        echo "--- cumulative view (who calls the hot paths) ---"
        go tool pprof -top -cum -nodecount=25 "$prof"
    fi
    echo
done
