#!/usr/bin/env sh
# CI entry point: build everything, vet, and run the full test suite under
# the race detector (the staged scan pipeline is concurrent; -race is the
# point, not a nicety). Mirrored by .github/workflows/ci.yml.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
