#!/usr/bin/env sh
# CI entry point. Modes:
#
#   ci.sh          build everything, vet, and run the full test suite under
#                  the race detector (the staged scan pipeline is concurrent;
#                  -race is the point, not a nicety). Runs -short, so the
#                  crash sweep covers its smoke subset (every 8th clean crash,
#                  every 4th torn point).
#   ci.sh sweep    the exhaustive crash-schedule exploration: every fault
#                  point of every scenario in clean, torn and error modes,
#                  plus the fuzz seed corpora. Nightly / on demand.
#
# Mirrored by .github/workflows/ci.yml.
set -eux

cd "$(dirname "$0")/.."

case "${1:-test}" in
test)
    go build ./...
    go vet ./...
    go test -race -short ./...
    ;;
sweep)
    go build ./...
    go test -race -timeout 60m -run 'TestCrashSweep|TestReplay' -v -sweep.full ./internal/crashsweep
    go test -run xxx -fuzz FuzzKeyEncOrder -fuzztime 60s ./internal/keyenc
    go test -run xxx -fuzz FuzzWALRoundTrip -fuzztime 60s ./internal/wal
    ;;
*)
    echo "usage: $0 [test|sweep]" >&2
    exit 2
    ;;
esac
