#!/usr/bin/env sh
# CI entry point. Modes:
#
#   ci.sh              build everything, vet, and run the full test suite under
#                      the race detector (the staged scan pipeline is
#                      concurrent; -race is the point, not a nicety). Runs
#                      -short, so the crash sweep covers its smoke subset
#                      (every 8th clean crash, every 4th torn point).
#   ci.sh sweep        the exhaustive crash-schedule exploration: every fault
#                      point of every scenario in clean, torn and error modes,
#                      plus the fuzz seed corpora. Nightly / on demand.
#   ci.sh overhead     the observability budget gate: fails if the metrics +
#                      progress instrumentation costs > 2% on the E1 build
#                      (wall-clock; run on a quiet machine).
#   ci.sh bench-commit the group-commit throughput gate: fails unless 16
#                      concurrent insert-commit writers get >= 3x the commit
#                      throughput of the serial-Force baseline (wall-clock;
#                      run on a quiet machine), then records the measured
#                      commit_tps numbers in BENCH_build.json.
#   ci.sh bench-sort   the partitioned-sort gate: fails unless run generation
#                      over 4 concurrent sort partitions is >= 1.5x faster
#                      than the serial single-tree sorter (wall-clock; run on
#                      a quiet machine), then records the sortbench build
#                      matrix (partitions x overlap) in BENCH_build.json.
#   ci.sh bench-conc   the sharded-buffer gate: fails unless all-hit buffer
#                      fetch throughput from 8 goroutines on an 8-shard pool
#                      is >= 1.5x the single-shard pool's (skips on < 4 CPUs;
#                      wall-clock; run on a quiet machine), then records the
#                      shards x stripes contention matrix (buffer fetch, lock
#                      pair, WAL append ops/s) in BENCH_build.json.
#   ci.sh bench-read   the read-path gate: fails unless all-hit point lookups
#                      through the hash fast path are >= 1.5x the tree-only
#                      path on an identically populated database (skips on
#                      < 4 CPUs; wall-clock; run on a quiet machine), then
#                      records the read-path matrix (point/range/seqscan,
#                      quiescent and during a live SF build) in
#                      BENCH_build.json.
#   ci.sh bench-part   the fan-out build gate: fails unless a parallel 4-shard
#                      SF build of one logical index is >= 1.25x faster than
#                      the single-shard build (skips on < 4 CPUs; wall-clock;
#                      run on a quiet machine), then records the partbench
#                      matrix (build ms + routed read mix at P in {1,2,4}) in
#                      BENCH_build.json.
#   ci.sh bench-compress  the key-compression gate: fails unless CompressKeys
#                      spills >= 20% fewer run-file bytes than the
#                      uncompressed build over composite-style keys
#                      (deterministic byte counts, no wall-clock), then
#                      records the sortbench matrix — whose last two rows are
#                      the compressed-vs-uncompressed pair — in
#                      BENCH_build.json.
#   ci.sh bench-disk   the on-disk build pipeline, nightly size: the
#                      allocation gate (offline build must stay within 20%
#                      of the post-optimization allocs/row baseline) plus a
#                      1M-row -diskbench matrix on a real filesystem with
#                      CPU/heap profiles summarized by analyze_profile.sh
#                      and kept as run artifacts, records merged into
#                      BENCH_build.json. 1M rows (~100 MB scratch) stays
#                      tmpfs-safe on CI runners; the full 10M numbers in
#                      EXPERIMENTS.md are produced on a quiet machine.
#   ci.sh bench-disk-smoke  the per-change slice of the same pipeline: a
#                      100k-row -diskbench pass proving populate, the three
#                      build methods and verification work end to end on a
#                      real filesystem. No thresholds, no profiles, and the
#                      records go to /tmp so the checkout stays clean.
#   ci.sh race         focused race-detector pass over the sharded singletons
#                      (buffer, lock, wal, txn), the read path (cursor
#                      batching, hash cache, zone maps, engine read stress),
#                      and the cross-partition unique protocol (duplicate-key
#                      inserts racing on different shards during a live
#                      unique build) with the dedicated concurrency stress
#                      tests at a high -count so the schedules vary.
#   ci.sh admin-smoke  end-to-end admin endpoint check: run an SF build with
#                      `idxbuild -admin`, poll the live endpoint over HTTP
#                      until the build completes, and assert the terminal
#                      snapshot reports fraction exactly 1.0 with zero
#                      side-file backlog.
#
# Mirrored by .github/workflows/ci.yml.
set -eux

cd "$(dirname "$0")/.."

case "${1:-test}" in
test)
    go build ./...
    go vet ./...
    go test -race -short ./...
    ;;
sweep)
    go build ./...
    # NB: -sweep.full is a test-binary flag the go tool doesn't know; it must
    # come AFTER the package path or `go test` runs the root package instead.
    go test -race -timeout 60m -run 'TestCrashSweep|TestReplay' -v ./internal/crashsweep -sweep.full
    go test -run xxx -fuzz FuzzKeyEncOrder -fuzztime 60s ./internal/keyenc
    go test -run xxx -fuzz FuzzWALRoundTrip -fuzztime 60s ./internal/wal
    go test -run xxx -fuzz FuzzZoneMapPrune -fuzztime 60s ./internal/zonemap
    go test -run xxx -fuzz FuzzRunDelta -fuzztime 60s ./internal/extsort
    ;;
overhead)
    ONLINEINDEX_OVERHEAD_GATE=1 go test -run TestMetricsOverheadGate -v -count=1 .
    ;;
bench-commit)
    ONLINEINDEX_COMMIT_GATE=1 go test -run TestCommitThroughputGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -commitbench -out BENCH_build.json
    ;;
bench-sort)
    ONLINEINDEX_SORT_GATE=1 go test -run TestPartitionedSortGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -sortbench 200000 -out BENCH_build.json
    ;;
bench-conc)
    ONLINEINDEX_CONC_GATE=1 go test -run TestShardedBufferGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -concbench -out BENCH_build.json
    ;;
bench-read)
    ONLINEINDEX_READ_GATE=1 go test -run TestReadPathGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -readbench 20000 -out BENCH_build.json
    ;;
bench-part)
    ONLINEINDEX_PART_GATE=1 go test -run TestPartitionBuildGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -partbench 20000 -out BENCH_build.json
    ;;
bench-compress)
    ONLINEINDEX_COMPRESS_GATE=1 go test -run TestCompressSpillGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -sortbench 200000 -out BENCH_build.json
    ;;
bench-disk)
    ONLINEINDEX_ALLOC_GATE=1 go test -run TestBuildAllocGate -v -count=1 -timeout 10m .
    go run ./cmd/benchtab -diskbench 1000000 \
        -cpuprofile disk_cpu.pprof -memprofile disk_mem.pprof -out BENCH_build.json
    scripts/analyze_profile.sh disk_cpu.pprof disk_mem.pprof
    ;;
bench-disk-smoke)
    go run ./cmd/benchtab -diskbench 100000 -out /tmp/diskbench-smoke.json
    ;;
race)
    go test -race -count=4 -timeout 20m \
        ./internal/buffer ./internal/lock ./internal/wal ./internal/txn \
        ./internal/btree ./internal/readcache ./internal/zonemap
    go test -race -count=2 -timeout 20m -run 'TestReadPathStress' ./internal/engine
    go test -race -count=4 -timeout 20m -run 'TestCrossPartitionUniqueOneWinner' ./internal/partition
    ;;
admin-smoke)
    go build -o /tmp/onlineindex-idxbuild ./cmd/idxbuild
    addr=127.0.0.1:7071
    url="http://$addr"
    log=/tmp/onlineindex-idxbuild.log
    /tmp/onlineindex-idxbuild -rows 20000 -method sf -updaters 2 \
        -admin "$addr" -linger 30s >"$log" 2>&1 &
    pid=$!
    # Poll the live endpoint until the build's progress reports complete.
    ok=0
    for _ in $(seq 1 300); do
        if curl -fsS "$url/" 2>/dev/null | grep -q '"complete": true'; then
            ok=1
            break
        fi
        sleep 0.2
    done
    [ "$ok" = 1 ] || { cat "$log"; kill "$pid" 2>/dev/null; exit 1; }
    snap=$(curl -fsS "$url/")
    # Terminal assertions: build fraction exactly 1.0 (the "fraction" field
    # right after the build-level "phase" field) and no unapplied side-file
    # entries.
    echo "$snap" | grep -q '"complete": true'
    echo "$snap" | grep -A1 '"phase"' | grep -q '"fraction": 1,'
    echo "$snap" | grep -q '"side_file_backlog": 0'
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    echo "admin-smoke OK"
    ;;
*)
    echo "usage: $0 [test|sweep|overhead|bench-commit|bench-sort|bench-conc|bench-read|bench-part|bench-compress|bench-disk|bench-disk-smoke|race|admin-smoke]" >&2
    exit 2
    ;;
esac
