// Package latch implements the short-duration physical-consistency locks the
// paper calls latches. "A latch is like a semaphore and it is very cheap in
// terms of instructions executed. It provides physical consistency of the
// data when a page is being examined. Readers of the page acquire a share
// (S) latch, while updaters acquire an exclusive (X) latch."
//
// Latches differ from locks in that they have no deadlock detection (callers
// must order acquisitions or use conditional requests) and no owner
// bookkeeping. The implementation wraps sync.RWMutex and adds conditional
// (try) acquisition plus contention counters the experiment harness reports.
package latch

import (
	"sync"
	"sync/atomic"
)

// Mode is a latch mode: share or exclusive.
type Mode int

// Latch modes.
const (
	S Mode = iota // share: many concurrent readers
	X             // exclusive: single updater
)

func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Latch is an S/X latch. The zero value is ready to use.
type Latch struct {
	mu sync.RWMutex

	// contention counters (approximate: a failed TryAcquire counts as one
	// contention event, a blocking acquire that had to wait is not
	// distinguishable cheaply and is counted optimistically on TryAcquire
	// fast-path failure only).
	acquires   atomic.Uint64
	contention atomic.Uint64
}

// Acquire blocks until the latch is held in the given mode.
func (l *Latch) Acquire(m Mode) {
	// Fast-path try first so contended acquisitions are counted.
	if l.TryAcquire(m) {
		return
	}
	l.contention.Add(1)
	if m == S {
		l.mu.RLock()
	} else {
		l.mu.Lock()
	}
	l.acquires.Add(1)
}

// TryAcquire attempts the latch without blocking and reports success. The
// paper's algorithms use conditional latching to avoid latch deadlocks
// between the index builder and transactions.
func (l *Latch) TryAcquire(m Mode) bool {
	var ok bool
	if m == S {
		ok = l.mu.TryRLock()
	} else {
		ok = l.mu.TryLock()
	}
	if ok {
		l.acquires.Add(1)
	}
	return ok
}

// Release releases a latch held in the given mode.
func (l *Latch) Release(m Mode) {
	if m == S {
		l.mu.RUnlock()
	} else {
		l.mu.Unlock()
	}
}

// Upgrade converts an S latch into an X latch non-atomically (release then
// re-acquire). Callers must revalidate any state examined under the S latch,
// because another holder may have intervened. It exists so call sites
// document their intent.
func (l *Latch) Upgrade() {
	l.mu.RUnlock()
	l.mu.Lock()
	l.acquires.Add(1)
}

// Stats returns the total acquisitions and the contended acquisitions seen.
func (l *Latch) Stats() (acquires, contended uint64) {
	return l.acquires.Load(), l.contention.Load()
}
