package latch

import (
	"sync"
	"testing"
	"time"
)

func TestShareLatchAllowsConcurrentReaders(t *testing.T) {
	var l Latch
	l.Acquire(S)
	if !l.TryAcquire(S) {
		t.Fatal("second S latch should succeed")
	}
	l.Release(S)
	l.Release(S)
}

func TestExclusiveLatchBlocksAll(t *testing.T) {
	var l Latch
	l.Acquire(X)
	if l.TryAcquire(S) {
		t.Fatal("S latch should fail while X held")
	}
	if l.TryAcquire(X) {
		t.Fatal("X latch should fail while X held")
	}
	l.Release(X)
	if !l.TryAcquire(X) {
		t.Fatal("X latch should succeed after release")
	}
	l.Release(X)
}

func TestXWaitsForReaders(t *testing.T) {
	var l Latch
	l.Acquire(S)
	done := make(chan struct{})
	go func() {
		l.Acquire(X)
		l.Release(X)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("X acquired while S held")
	case <-time.After(10 * time.Millisecond):
	}
	l.Release(S)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("X never acquired after S release")
	}
}

func TestLatchCounter(t *testing.T) {
	var l Latch
	l.Acquire(S)
	l.Release(S)
	l.Acquire(X)
	l.Release(X)
	acq, _ := l.Stats()
	if acq != 2 {
		t.Fatalf("acquires = %d, want 2", acq)
	}
}

func TestLatchStress(t *testing.T) {
	var l Latch
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.Acquire(X)
				counter++
				l.Release(X)
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (latch failed mutual exclusion)", counter)
	}
}

func TestUpgrade(t *testing.T) {
	var l Latch
	l.Acquire(S)
	l.Upgrade()
	if l.TryAcquire(S) {
		t.Fatal("S should fail after upgrade to X")
	}
	l.Release(X)
}
