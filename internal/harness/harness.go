// Package harness provides the measurement and reporting utilities the
// experiment suite shares: index clustering measurement, log-volume deltas,
// and fixed-width table rendering for the benchtab tool and EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/engine"
	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

// PipelineStats counts the staged scan pipeline's per-stage activity: how
// far the page visitor ran ahead of the in-order sorter feed, how much
// extraction work the workers did, and how long the feed had to wait for
// out-of-order extractions. The builders accumulate one per build so E1's
// scan/sort phase breakdown stays honest when extraction is parallel (the
// wall-clock ScanSort timer alone cannot say where the time went).
type PipelineStats struct {
	// Workers is the extraction worker count the scan ran with.
	Workers int
	// PagesPrefetched counts pages the visitor S-latched and copied while
	// at least one earlier page had not yet been fed to the sorter (0 in
	// serial mode, where visit and feed alternate on one goroutine).
	PagesPrefetched uint64
	// ExtractBusy is the summed busy time of the extraction workers
	// (exceeds the wall-clock share of extraction when workers > 1).
	ExtractBusy time.Duration
	// FeedWait is how long the in-order sorter feed sat blocked waiting
	// for page extractions to arrive.
	FeedWait time.Duration
	// FeedBusy is how long the in-order feed spent pushing items into the
	// sorters. With partitioned sorting (core.Options.SortPartitions) the
	// push becomes a channel hand-off and this collapses, which is the
	// point: FeedBusy falling while FeedWait holds shows the serial feed
	// stopped being the bottleneck.
	FeedBusy time.Duration
}

// Merge folds another scan's counters into p (a build may run several scan
// ranges: checkpointed resumes, the SF end-chasing loop).
func (p *PipelineStats) Merge(q PipelineStats) {
	if q.Workers > p.Workers {
		p.Workers = q.Workers
	}
	p.PagesPrefetched += q.PagesPrefetched
	p.ExtractBusy += q.ExtractBusy
	p.FeedWait += q.FeedWait
	p.FeedBusy += q.FeedBusy
}

// Export publishes one scan's pipeline counters into the engine's metrics
// registry, so PipelineStats and the registry count through one mechanism.
// A nil registry (metrics disabled) is a no-op.
func (p PipelineStats) Export(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.Gauge("pipeline.workers").Set(int64(p.Workers))
	r.Counter("pipeline.pages_prefetched").Add(p.PagesPrefetched)
	r.Counter("pipeline.extract_busy_ns").Add(uint64(p.ExtractBusy))
	r.Counter("pipeline.feed_wait_ns").Add(uint64(p.FeedWait))
	r.Counter("pipeline.feed_busy_ns").Add(uint64(p.FeedBusy))
}

// ClusteringFactor measures how physically sequential an index's leaf chain
// is: the fraction of leaf-to-leaf transitions (in key order) whose page
// numbers ascend. A perfectly bottom-up-built index scores 1.0 ("consecutive
// keys being on consecutive pages on disk", §4); interference from
// concurrent updates drives it down — the quantity the paper says "needs to
// be quantified for both algorithms".
func ClusteringFactor(tree *btree.Tree) (float64, error) {
	pages, err := tree.LeafPages()
	if err != nil {
		return 0, err
	}
	if len(pages) < 2 {
		return 1, nil
	}
	asc := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] > pages[i-1] {
			asc++
		}
	}
	return float64(asc) / float64(len(pages)-1), nil
}

// IndexClustering looks the index up by name and measures it.
func IndexClustering(db *engine.DB, index string) (float64, error) {
	ix, ok := db.Catalog().Index(index)
	if !ok {
		return 0, fmt.Errorf("harness: no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return 0, err
	}
	return ClusteringFactor(tree)
}

// IndexPages returns the page count of an index file.
func IndexPages(db *engine.DB, index string) (types.PageNum, error) {
	ix, ok := db.Catalog().Index(index)
	if !ok {
		return 0, fmt.Errorf("harness: no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return 0, err
	}
	return tree.PageCount()
}

// Table renders rows as a fixed-width text table.
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	seps := make([]string, len(headers))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, row := range rows {
		line(row)
	}
	return b.String()
}

// F formats a float compactly.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// D formats a duration in milliseconds.
func D(v interface{ Seconds() float64 }) string {
	return fmt.Sprintf("%.1fms", v.Seconds()*1000)
}

// N formats an integer-ish count with thousands grouping.
func N(v uint64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
