package harness

import (
	"strings"
	"testing"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/buffer"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

func TestClusteringFactorPerfectAndShuffled(t *testing.T) {
	fs := vfs.NewMemFS()
	log, _ := wal.Open(fs)
	pool := buffer.New(fs, log, 128)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	tree, err := btree.Create(pool, 5, btree.Config{Budget: 512}, tl)
	if err != nil {
		t.Fatal(err)
	}
	// Bottom-up load: perfect clustering.
	ld := tree.NewLoader(0.9)
	for i := 0; i < 2000; i++ {
		ld.Add(btree.Entry{Key: []byte(keyStr(i)), RID: ridOf(i)})
	}
	ld.Finish()
	cl, err := ClusteringFactor(tree)
	if err != nil {
		t.Fatal(err)
	}
	if cl != 1.0 {
		t.Fatalf("bottom-up clustering = %v, want 1.0", cl)
	}

	// Random-order top-down inserts: clustering must be visibly worse.
	tree2, err := btree.Create(pool, 6, btree.Config{Budget: 512}, tl)
	if err != nil {
		t.Fatal(err)
	}
	perm := []int{}
	for i := 0; i < 2000; i++ {
		perm = append(perm, (i*1117)%2000)
	}
	for _, p := range perm {
		tree2.TxnInsert(tl, []byte(keyStr(p)), ridOf(p))
	}
	cl2, err := ClusteringFactor(tree2)
	if err != nil {
		t.Fatal(err)
	}
	if cl2 >= cl {
		t.Fatalf("random insert clustering %v not below bottom-up %v", cl2, cl)
	}
}

func keyStr(i int) string {
	const digits = "0123456789"
	s := make([]byte, 8)
	for j := 7; j >= 0; j-- {
		s[j] = digits[i%10]
		i /= 10
	}
	return "k" + string(s)
}

func ridOf(i int) types.RID {
	return types.RID{PageID: types.PageID{File: 1, Page: types.PageNum(i / 100)}, Slot: types.SlotNum(i % 100)}
}

func TestTableRendering(t *testing.T) {
	out := Table("Title", []string{"col", "value"}, [][]string{
		{"a", "1"},
		{"long-name", "2"},
	})
	if !strings.Contains(out, "Title") || !strings.Contains(out, "long-name") {
		t.Fatalf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
}

func TestFormatters(t *testing.T) {
	if N(1234567) != "1,234,567" {
		t.Fatalf("N = %q", N(1234567))
	}
	if N(12) != "12" || N(1000) != "1,000" {
		t.Fatalf("N small = %q %q", N(12), N(1000))
	}
	if F(1.005) == "" {
		t.Fatal("F empty")
	}
	if D(1500*time.Millisecond) != "1500.0ms" {
		t.Fatalf("D = %q", D(1500*time.Millisecond))
	}
}
