package extsort

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"onlineindex/internal/enc"
	"onlineindex/internal/vfs"
)

// ErrNoProgress is returned when a vfs ReadAt repeatedly reports no bytes
// and no error. A correct vfs.File never does this (ReadAt must return
// io.EOF or data), so the retry is bounded rather than infinite.
var ErrNoProgress = errors.New("extsort: read made no progress")

// noProgressLimit bounds consecutive (0, nil) ReadAt results before the
// reader gives up with ErrNoProgress.
const noProgressLimit = 8

// RunMeta describes one sorted run file: its name, how many items it holds,
// its byte length, and its highest (last) item. This is exactly what the
// sort-phase checkpoint records per stream ("file names, etc." plus, for the
// last stream, "the value of the highest key that was output", §5.1).
//
// High doubles as the delta predecessor for compressed runs: it is the last
// item written, so a writer reopened from a checkpoint can resume
// prefix-delta encoding against it without any extra durable state.
type RunMeta struct {
	Name  string
	Count uint64
	Bytes int64
	High  []byte
}

func (m RunMeta) encode(w *enc.Writer) {
	w.String32(m.Name).U64(m.Count).U64(uint64(m.Bytes)).Bytes32(m.High)
}

func decodeRunMeta(r *enc.Reader) RunMeta {
	return RunMeta{Name: r.String32(), Count: r.U64(), Bytes: int64(r.U64()), High: r.Bytes32()}
}

// Run file formats:
//
//	legacy:     a sequence of [uint32 LE length][item bytes] records.
//	compressed: a sequence of [uint16 LE shared][uint16 LE suffixLen][suffix]
//	            records, where shared is the byte length of the prefix this
//	            item has in common with the previous item in the run (0 for
//	            the first item) and suffix is the remainder. Because items
//	            are memcmp-comparable keyenc encodings followed by the RID
//	            suffix, reconstruction (prev[:shared] + suffix) preserves
//	            order exactly.
//
// Both record headers are 4 bytes, so compression saves exactly the shared
// prefix bytes per item.

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// runWriter appends items to a run file.
type runWriter struct {
	f    vfs.File
	meta RunMeta
	comp bool
	buf  []byte // pending bytes not yet written through
}

func createRun(fs vfs.FS, name string, comp bool) (*runWriter, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &runWriter{f: f, meta: RunMeta{Name: name}, comp: comp}, nil
}

// reopenRun opens an existing run for appending, truncating it to the
// checkpointed state first (restart: "reposition the last sorted output
// stream ... to the end of file position recorded in the checkpoint").
// For a compressed run, meta.High seeds the delta predecessor.
func reopenRun(fs vfs.FS, meta RunMeta, comp bool) (*runWriter, error) {
	f, err := fs.Open(meta.Name)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(meta.Bytes); err != nil {
		f.Close()
		return nil, err
	}
	return &runWriter{f: f, meta: meta, comp: comp}, nil
}

func (w *runWriter) add(item []byte) error {
	if w.comp {
		shared := commonPrefixLen(w.meta.High, item)
		if w.meta.Count == 0 && w.meta.Bytes == 0 && len(w.buf) == 0 {
			shared = 0 // a stale High from a recycled meta must not leak in
		}
		if shared > 0xffff {
			shared = 0xffff
		}
		suffix := item[shared:]
		if len(suffix) > 0xffff {
			return fmt.Errorf("extsort: item suffix %d bytes exceeds compressed-run limit", len(suffix))
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint16(hdr[0:2], uint16(shared))
		binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(suffix)))
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, suffix...)
	} else {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(item)))
		w.buf = append(w.buf, hdr[:]...)
		w.buf = append(w.buf, item...)
	}
	w.meta.Count++
	w.meta.High = append(w.meta.High[:0], item...)
	if len(w.buf) >= 1<<16 {
		return w.flush()
	}
	return nil
}

func (w *runWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf, w.meta.Bytes); err != nil {
		return err
	}
	w.meta.Bytes += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

// force flushes and fsyncs the run file (checkpoint durability).
func (w *runWriter) force() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *runWriter) close() error {
	if err := w.flush(); err != nil {
		return err
	}
	return w.f.Close()
}

// runReader streams items from a run file, optionally double-buffering
// behind a prefetch goroutine (startPrefetch) so the merge never blocks on
// a vfs read.
type runReader struct {
	f      vfs.File
	off    int64
	rdbuf  []byte
	bufOff int64 // file offset of rdbuf[0]
	count  uint64
	comp   bool
	prev   []byte // last reconstituted item (compressed runs only)

	pf     chan pfBlock  // prefetched chunks; nil = synchronous reads
	pfStop chan struct{} // closed by close() to unstick a blocked send
	pfFree chan []byte   // consumed chunk buffers recycled to the prefetcher
	pfEOF  bool          // terminal block consumed; pf yields nothing more

	chunk []byte // synchronous fill's reusable read buffer
}

// pfBlock is one prefetched chunk, or the stream's terminal error
// (io.EOF at a clean end of file).
type pfBlock struct {
	data []byte
	err  error
}

func openRun(fs vfs.FS, meta RunMeta, comp bool) (*runReader, error) {
	f, err := fs.Open(meta.Name)
	if err != nil {
		return nil, err
	}
	vfs.Advise(f) // runs are consumed front to back; ask the OS for readahead
	return &runReader{f: f, comp: comp}, nil
}

// next returns the next item, or ok=false at end of run. For compressed
// runs it reconstitutes prev[:shared] + suffix; the returned slice is
// freshly allocated every call (the reader retains it as the next
// predecessor, so callers must treat it as read-only, which they do).
func (r *runReader) next() ([]byte, bool, error) {
	hdr, err := r.read(4)
	if err == io.EOF {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var out []byte
	if r.comp {
		shared := int(binary.LittleEndian.Uint16(hdr[0:2]))
		sufLen := int(binary.LittleEndian.Uint16(hdr[2:4]))
		if shared > len(r.prev) {
			return nil, false, fmt.Errorf("extsort: corrupt compressed run: shared %d > prev %d", shared, len(r.prev))
		}
		suffix, err := r.read(sufLen)
		if err != nil {
			return nil, false, fmt.Errorf("extsort: truncated run item: %w", err)
		}
		out = make([]byte, shared+sufLen)
		copy(out, r.prev[:shared])
		copy(out[shared:], suffix)
		r.prev = out
	} else {
		n := binary.LittleEndian.Uint32(hdr)
		item, err := r.read(int(n))
		if err != nil {
			return nil, false, fmt.Errorf("extsort: truncated run item: %w", err)
		}
		out = make([]byte, n)
		copy(out, item)
	}
	r.count++
	return out, true, nil
}

// skip advances past k items (restart repositioning by counter value).
func (r *runReader) skip(k uint64) error {
	for i := uint64(0); i < k; i++ {
		if _, ok, err := r.next(); err != nil {
			return err
		} else if !ok {
			return fmt.Errorf("extsort: skip %d past end of run at %d", k, i)
		}
	}
	return nil
}

const readChunk = 1 << 16

// startPrefetch switches the reader to double-buffered asynchronous reads
// from its current position: a goroutine stays up to two chunks ahead of
// consumption, so by the time fill needs bytes they are usually already
// in the channel. Call at most once, after any skip repositioning.
func (r *runReader) startPrefetch() {
	r.pf = make(chan pfBlock, 2)
	r.pfStop = make(chan struct{})
	// Chunk buffers cycle between the prefetcher and fill: two may sit in
	// the pf channel and one may just have been consumed, so three buffers
	// cover the steady state with no per-chunk allocation.
	r.pfFree = make(chan []byte, 3)
	go func(off int64) {
		defer close(r.pf)
		stalls := 0
		for {
			var chunk []byte
			select {
			case chunk = <-r.pfFree:
				chunk = chunk[:readChunk]
			default:
				chunk = make([]byte, readChunk)
			}
			m, err := r.f.ReadAt(chunk, off)
			off += int64(m)
			if m > 0 {
				stalls = 0
				select {
				case r.pf <- pfBlock{data: chunk[:m]}:
				case <-r.pfStop:
					return
				}
			}
			if err == nil {
				if m == 0 {
					if stalls++; stalls >= noProgressLimit {
						err = fmt.Errorf("%w: %s at offset %d", ErrNoProgress, r.f.Name(), off)
					} else {
						continue
					}
				} else {
					continue
				}
			}
			// A partial chunk's EOF arrives as its own terminal block, after
			// the data block above, so fill sees data and end separately.
			select {
			case r.pf <- pfBlock{err: err}:
			case <-r.pfStop:
			}
			return
		}
	}(r.bufOff + int64(len(r.rdbuf)))
}

// fill appends at least one more byte to rdbuf or reports why it cannot:
// io.EOF at a clean end of file, ErrNoProgress after repeated empty
// errorless reads, any other error verbatim.
func (r *runReader) fill() error {
	if r.pf != nil {
		if r.pfEOF {
			return io.EOF
		}
		blk, ok := <-r.pf
		if !ok {
			r.pfEOF = true
			return io.EOF
		}
		if blk.err != nil {
			r.pfEOF = true
			return blk.err
		}
		r.rdbuf = append(r.rdbuf, blk.data...)
		// The chunk's bytes are copied out; hand the buffer back to the
		// prefetcher. A full free list just means the buffer is dropped.
		select {
		case r.pfFree <- blk.data[:cap(blk.data)]:
		default:
		}
		return nil
	}
	if r.chunk == nil {
		r.chunk = make([]byte, readChunk)
	}
	for stalls := 0; ; {
		m, err := r.f.ReadAt(r.chunk, r.bufOff+int64(len(r.rdbuf)))
		if m > 0 {
			r.rdbuf = append(r.rdbuf, r.chunk[:m]...)
			return nil
		}
		if err == nil {
			if stalls++; stalls >= noProgressLimit {
				return fmt.Errorf("%w: %s at offset %d", ErrNoProgress, r.f.Name(), r.bufOff+int64(len(r.rdbuf)))
			}
			continue
		}
		return err
	}
}

// read returns n bytes at the current offset, buffering reads.
func (r *runReader) read(n int) ([]byte, error) {
	for int64(len(r.rdbuf)) < r.off-r.bufOff+int64(n) {
		// Need more data: refill the window starting at r.off.
		if r.off > r.bufOff && len(r.rdbuf) > 0 {
			r.rdbuf = append(r.rdbuf[:0], r.rdbuf[r.off-r.bufOff:]...)
			r.bufOff = r.off
		}
		if err := r.fill(); err != nil {
			if err == io.EOF && int64(len(r.rdbuf)) >= r.off-r.bufOff+int64(n) {
				break
			}
			return nil, err
		}
	}
	start := r.off - r.bufOff
	r.off += int64(n)
	return r.rdbuf[start : start+int64(n)], nil
}

func (r *runReader) close() error {
	if r.pfStop != nil {
		// Unstick and wait out the prefetcher (channel close is its last
		// act) so no read races the file close below.
		close(r.pfStop)
		for range r.pf {
		}
		r.pfStop = nil
	}
	return r.f.Close()
}
