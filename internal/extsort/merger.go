package extsort

import (
	"onlineindex/internal/enc"
	"onlineindex/internal/vfs"
)

// Merger is the restartable merge phase: an N-way tournament merge in which
// "a particular leaf node of the tree is always fed from the same input
// stream", so the vector of per-stream counters identifies exactly how to
// repopulate the tree after a failure (§5.2).
//
// The merger is an iterator rather than a file writer because the paper
// pipelines the final merge pass into the index builder's key-insert logic
// ("the final merge phase of sort can be performed as keys are being
// inserted into the index", §2.2.2). Callers that do write a file (or an
// index) checkpoint Counters() together with their own output position.
type Merger struct {
	runs     []RunMeta
	readers  []*runReader
	counters []uint64
	tree     *loserTree
	started  bool
	comp     bool
}

// MergeState is a merge-phase checkpoint: the input streams and the counter
// vector ("we record the contents of the vector of counters and the
// descriptions (file names, etc.) of the input streams", §5.2). The caller
// embeds its own output position next to it.
type MergeState struct {
	Runs     []RunMeta
	Counters []uint64
	Compress bool // the input runs are prefix-delta compressed
}

// mergeStateMagic prefixes a MergeState over compressed runs. The legacy
// encoding starts with the run count, so the sentinel is unambiguous and
// uncompressed states stay byte-identical to the pre-compression format.
const mergeStateMagic = 0xffff_fffc

// Encode serializes the state.
func (st *MergeState) Encode() []byte {
	w := enc.NewWriter()
	if st.Compress {
		w.U32(mergeStateMagic)
	}
	w.U32(uint32(len(st.Runs)))
	for _, r := range st.Runs {
		r.encode(w)
	}
	w.U32(uint32(len(st.Counters)))
	for _, c := range st.Counters {
		w.U64(c)
	}
	return w.Bytes()
}

// DecodeMergeState parses a MergeState.
func DecodeMergeState(b []byte) (MergeState, error) {
	r := enc.NewReader(b)
	st := MergeState{}
	n := int(r.U32())
	if uint32(n) == mergeStateMagic {
		st.Compress = true
		n = int(r.U32())
	}
	for i := 0; i < n; i++ {
		st.Runs = append(st.Runs, decodeRunMeta(r))
	}
	m := int(r.U32())
	for i := 0; i < m; i++ {
		st.Counters = append(st.Counters, r.U64())
	}
	return st, r.Err()
}

// MergeOptions tunes a merge's I/O behavior without affecting its output.
type MergeOptions struct {
	// Readahead double-buffers each input stream behind a prefetch
	// goroutine so Next never blocks on a vfs read. Off by default: the
	// deterministic fault-injection harness needs the merge loop itself to
	// issue every read in a single-goroutine order.
	Readahead bool
	// Compress declares the input runs prefix-delta compressed (they must
	// have been written by a compressed sorter). ResumeMergerWith overrides
	// this from the durable MergeState, so restarts cannot mis-decode.
	Compress bool
}

// NewMerger opens a merge over the runs. counters may be nil (merge from the
// start) or a checkpointed vector: each input is then positioned "so that
// the next key to be input into the merge from that file would be the key at
// position k" (§5.2).
func NewMerger(fs vfs.FS, runs []RunMeta, counters []uint64) (*Merger, error) {
	return NewMergerWith(fs, runs, counters, MergeOptions{})
}

// NewMergerWith is NewMerger with explicit I/O options.
func NewMergerWith(fs vfs.FS, runs []RunMeta, counters []uint64, opts MergeOptions) (*Merger, error) {
	m := &Merger{runs: runs, counters: make([]uint64, len(runs)), comp: opts.Compress}
	if counters != nil {
		copy(m.counters, counters)
	}
	for i, r := range runs {
		rd, err := openRun(fs, r, opts.Compress)
		if err != nil {
			m.Close()
			return nil, err
		}
		if err := rd.skip(m.counters[i]); err != nil {
			rd.close()
			m.Close()
			return nil, err
		}
		if opts.Readahead {
			// Start prefetching after skip so the stream picks up at the
			// repositioned offset.
			rd.startPrefetch()
		}
		m.readers = append(m.readers, rd)
	}
	return m, nil
}

// ResumeMerger reopens a merge from a checkpoint.
func ResumeMerger(fs vfs.FS, st MergeState) (*Merger, error) {
	return ResumeMergerWith(fs, st, MergeOptions{})
}

// ResumeMergerWith reopens a merge from a checkpoint with explicit options.
// The run encoding recorded in the durable state overrides opts.Compress.
func ResumeMergerWith(fs vfs.FS, st MergeState, opts MergeOptions) (*Merger, error) {
	opts.Compress = st.Compress
	return NewMergerWith(fs, st.Runs, st.Counters, opts)
}

func (m *Merger) start() error {
	leaves := make([]slot, max(1, len(m.readers)))
	for i, rd := range m.readers {
		item, ok, err := rd.next()
		if err != nil {
			return err
		}
		if ok {
			// tag = leaf index so the winner identifies its source stream;
			// comparisons use the item first via a dedicated ordering below.
			leaves[i] = slot{tag: uint64(i), item: item, ok: true}
		}
	}
	m.tree = newMergeTree(leaves)
	m.started = true
	return nil
}

// newMergeTree builds a loser tree ordered by item (ties by leaf index so
// the merge is stable across streams in run order — identical keys keep
// their relative positions, which side-file application relies on).
func newMergeTree(leaves []slot) *loserTree {
	// The generic loserTree orders by (tag, item); for merging we need
	// (item, tag). Wrap by swapping at the comparison level: encode the
	// ordering in a dedicated tree type would duplicate code, so instead the
	// merge uses mergeLess via a small shim tree.
	t := &loserTree{n: len(leaves), tree: make([]int, len(leaves)), leaves: leaves, merge: true}
	for i := range t.tree {
		t.tree[i] = -1
	}
	for i := len(leaves) - 1; i >= 0; i-- {
		t.adjust(i)
	}
	return t
}

// Next returns the next item in merged order along with the index of the
// run it came from; ok=false at the end.
func (m *Merger) Next() ([]byte, int, bool, error) {
	if !m.started {
		if err := m.start(); err != nil {
			return nil, 0, false, err
		}
	}
	if m.tree.empty() {
		return nil, 0, false, nil
	}
	w := m.tree.winner()
	out := m.tree.leaves[w].item
	m.counters[w]++
	item, ok, err := m.readers[w].next()
	if err != nil {
		return nil, 0, false, err
	}
	if ok {
		m.tree.replaceWinner(slot{tag: uint64(w), item: item, ok: true})
	} else {
		m.tree.replaceWinner(slot{})
	}
	return out, w, true, nil
}

// Counters returns a copy of the per-stream counter vector for
// checkpointing.
func (m *Merger) Counters() []uint64 {
	return append([]uint64(nil), m.counters...)
}

// State returns a full merge checkpoint.
func (m *Merger) State() MergeState {
	return MergeState{Runs: m.runs, Counters: m.Counters(), Compress: m.comp}
}

// Close releases the input files.
func (m *Merger) Close() {
	for _, rd := range m.readers {
		if rd != nil {
			rd.close()
		}
	}
	m.readers = nil
}
