package extsort

import (
	"fmt"
	"sync"

	"onlineindex/internal/enc"
	"onlineindex/internal/vfs"
)

// PartSorter parallelizes run generation across independent
// replacement-selection Sorters. The caller feeds whole pages round-robin
// (FeedPage); each partition emits its own run stream under its own file
// prefix (<prefix>-pN-run-...), so run numbering is disjoint by
// construction and the merge phase simply sees a wider set of input
// streams. The paper's restart machinery carries over with no new
// invariants: the merge already treats every run as an independent stream
// with its own counter (§5.2), and each partition checkpoints exactly the
// way the single sorter does (§5.1) — the partitioned checkpoint is the
// vector of the per-partition states.
//
// With parts <= 1 the PartSorter is a transparent wrapper over one Sorter
// with the original prefix and the original checkpoint encoding, and it
// spawns no goroutines — the I/O sequence is op-for-op identical to the
// pre-partitioning implementation, which is what keeps the serial crash
// sweep's fault-point schedule valid.
//
// With parts > 1 and concurrent=true, one goroutine per partition drains a
// small bounded channel of page batches, so the serial stage-3 sorter feed
// of the scan pipeline degenerates into cheap channel sends and the
// tournament + run I/O work fans out. concurrent=false keeps the same
// partitioned run layout and checkpoint shape but feeds the partitions
// inline on the caller's goroutine — the deterministic single-goroutine
// I/O order the fault-injection harness needs (same trade as
// Options.SerialFinish).
type PartSorter struct {
	prefix string
	parts  []*Sorter
	conc   bool

	pages uint64 // pages fed so far; partition = pages % len(parts)
	feed  []chan partMsg
	wg    sync.WaitGroup

	errMu   sync.Mutex
	err     error
	stopped bool
}

// partMsg is one unit of partition-worker work: a page's items, or a flush
// barrier (items nil) acknowledged once everything queued before it has
// been consumed — channel FIFO order is the quiescing mechanism.
type partMsg struct {
	items [][]byte
	flush chan struct{}
}

// feedDepth bounds each partition's queued page batches; memory stays
// O(parts * feedDepth) pages beyond the watermark.
const feedDepth = 4

// partPrefix names partition i's run files. Partition prefixes never
// collide with the serial layout: "<prefix>-pN-run-" does not match the
// serial sweep pattern "<prefix>-run-" and vice versa.
func partPrefix(prefix string, i int) string { return fmt.Sprintf("%s-p%d", prefix, i) }

// NewPartSorter starts a partitioned sort of `parts` partitions, each a
// replacement-selection Sorter with the given tree capacity (capacity is
// per partition). parts <= 1 selects the serial single-sorter layout.
func NewPartSorter(fs vfs.FS, prefix string, capacity, parts int, concurrent bool) *PartSorter {
	return NewPartSorterWith(fs, prefix, capacity, parts, concurrent, false)
}

// NewPartSorterWith is NewPartSorter with prefix-delta run compression
// selectable; every partition shares the setting, and each partition's
// checkpoint records it durably.
func NewPartSorterWith(fs vfs.FS, prefix string, capacity, parts int, concurrent, compress bool) *PartSorter {
	if parts < 1 {
		parts = 1
	}
	p := &PartSorter{prefix: prefix, conc: concurrent && parts > 1}
	if parts == 1 {
		p.parts = []*Sorter{NewSorterWith(fs, prefix, capacity, compress)}
		return p
	}
	for i := 0; i < parts; i++ {
		p.parts = append(p.parts, NewSorterWith(fs, partPrefix(prefix, i), capacity, compress))
	}
	p.start()
	return p
}

// Compressed reports whether the partitions write prefix-delta runs.
func (p *PartSorter) Compressed() bool { return p.parts[0].Compressed() }

// start spawns the partition workers (concurrent mode only).
func (p *PartSorter) start() {
	if !p.conc {
		return
	}
	p.feed = make([]chan partMsg, len(p.parts))
	for i := range p.parts {
		p.feed[i] = make(chan partMsg, feedDepth)
		p.wg.Add(1)
		go p.worker(i)
	}
}

func (p *PartSorter) worker(i int) {
	defer p.wg.Done()
	s := p.parts[i]
	for msg := range p.feed[i] {
		if msg.flush != nil {
			close(msg.flush)
			continue
		}
		if p.getErr() != nil {
			continue // drain without working; the feed is unwinding
		}
		for _, it := range msg.items {
			if err := s.AddOwned(it); err != nil {
				p.setErr(err)
				break
			}
		}
	}
}

func (p *PartSorter) setErr(err error) {
	p.errMu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.errMu.Unlock()
}

func (p *PartSorter) getErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Partitions returns the partition count.
func (p *PartSorter) Partitions() int { return len(p.parts) }

// SetMetrics attaches registry handles to every partition (the handles are
// atomic, so partitions share them).
func (p *PartSorter) SetMetrics(m Metrics) {
	for _, s := range p.parts {
		s.SetMetrics(m)
	}
}

// Count returns the total number of items accepted across partitions.
// Callable only at quiescent points (between FeedPage and after
// Checkpoint/Finish) in concurrent mode.
func (p *PartSorter) Count() uint64 {
	var n uint64
	for _, s := range p.parts {
		n += s.Count()
	}
	return n
}

// FeedPage pushes one visited page's items into the sort, round-robin by
// page. Items are owned by the sorter from here on (AddOwned semantics).
// Pages must arrive in scan order — the round-robin assignment is then a
// pure function of the page ordinal, so a resumed scan re-feeds
// deterministically (assignment across incarnations may differ, which is
// fine: every checkpoint drains every partition, so no in-flight item's
// placement ever becomes durable state).
func (p *PartSorter) FeedPage(items [][]byte) error {
	i := int(p.pages % uint64(len(p.parts)))
	p.pages++
	if !p.conc {
		s := p.parts[i]
		for _, it := range items {
			if err := s.AddOwned(it); err != nil {
				return err
			}
		}
		return nil
	}
	if err := p.getErr(); err != nil {
		return err
	}
	if p.stopped {
		return fmt.Errorf("extsort: FeedPage after Close")
	}
	p.feed[i] <- partMsg{items: items}
	return nil
}

// AddOwned pushes a single item (serial-compatible entry point used by
// tests and non-paged callers); in partitioned mode it lands in the
// partition of an implicit one-item page.
func (p *PartSorter) AddOwned(it []byte) error { return p.FeedPage([][]byte{it}) }

// quiesce waits until every partition worker has consumed everything fed
// so far. No-op in inline mode.
func (p *PartSorter) quiesce() {
	if !p.conc || p.stopped {
		return
	}
	for _, ch := range p.feed {
		done := make(chan struct{})
		ch <- partMsg{flush: done}
		<-done
	}
}

// Checkpoint quiesces the feed, drains every partition's tournament and
// forces its run files, and returns the vector of per-partition states
// plus the caller's scan position — the §5.1 checkpoint, one per stream
// set. The scan position is recorded once: all partitions are drained at
// the same watermark, so a single input cursor covers them all.
func (p *PartSorter) Checkpoint(scanPos []byte) (PartSortState, error) {
	p.quiesce()
	if err := p.getErr(); err != nil {
		return PartSortState{}, err
	}
	st := PartSortState{Prefix: p.prefix, ScanPos: append([]byte(nil), scanPos...)}
	for _, s := range p.parts {
		ps, err := s.Checkpoint(nil)
		if err != nil {
			return PartSortState{}, err
		}
		st.Parts = append(st.Parts, ps)
	}
	return st, nil
}

// Finish stops the feed workers, drains and closes every partition, and
// returns the concatenated run list (partition 0's runs first — a
// deterministic order the merge counters index into).
func (p *PartSorter) Finish() ([]RunMeta, error) {
	p.Close()
	if err := p.getErr(); err != nil {
		return nil, err
	}
	var runs []RunMeta
	for _, s := range p.parts {
		rs, err := s.Finish()
		if err != nil {
			return nil, err
		}
		runs = append(runs, rs...)
	}
	return runs, nil
}

// Close stops the partition workers without finishing the sort. Idempotent;
// safe (and necessary) on error paths so abandoned builds leak no
// goroutines. Subsequent FeedPage calls fail.
func (p *PartSorter) Close() {
	if p.stopped {
		return
	}
	p.stopped = true
	if p.conc {
		for _, ch := range p.feed {
			close(ch)
		}
		p.wg.Wait()
	}
}

// PartSortState is the partitioned sort-phase checkpoint: the per-partition
// SortStates plus the single shared scan position. For one partition it
// encodes exactly as the legacy SortState (byte-for-byte), so serial
// checkpoints are indistinguishable from the pre-partitioning format and
// either decoder accepts them.
type PartSortState struct {
	Prefix  string
	Parts   []SortState
	ScanPos []byte
}

// partStateMagic marks the partitioned encoding. The legacy SortState
// encoding begins with its run count, which is far below this sentinel.
const partStateMagic = 0xffff_fffe

// Encode serializes the state. A single-partition state uses the legacy
// SortState wire format.
func (st *PartSortState) Encode() []byte {
	if len(st.Parts) == 1 {
		legacy := st.Parts[0]
		legacy.ScanPos = st.ScanPos
		return legacy.Encode()
	}
	w := enc.NewWriter().U32(partStateMagic).String32(st.Prefix).U32(uint32(len(st.Parts)))
	for i := range st.Parts {
		w.Bytes32(st.Parts[i].Encode())
	}
	w.Bytes32(st.ScanPos)
	return w.Bytes()
}

// DecodePartSortState parses either encoding: the partitioned format, or a
// legacy single-sorter SortState (yielding a one-partition state whose
// prefix is derived from its run names, exactly as ResumeSorter does).
func DecodePartSortState(b []byte) (PartSortState, error) {
	r := enc.NewReader(b)
	if r.U32() != partStateMagic {
		legacy, err := DecodeSortState(b)
		if err != nil {
			return PartSortState{}, err
		}
		st := PartSortState{Prefix: runPrefix(legacy), ScanPos: legacy.ScanPos}
		legacy.ScanPos = nil
		st.Parts = []SortState{legacy}
		return st, nil
	}
	st := PartSortState{Prefix: r.String32()}
	n := int(r.U32())
	for i := 0; i < n; i++ {
		ps, err := DecodeSortState(r.Bytes32())
		if err != nil {
			return PartSortState{}, err
		}
		st.Parts = append(st.Parts, ps)
	}
	st.ScanPos = r.Bytes32()
	if err := r.Err(); err != nil {
		return PartSortState{}, err
	}
	return st, nil
}

// ResumePartSorter rebuilds a partitioned sorter from a checkpoint after a
// crash: each partition resumes exactly like the single sorter (discard
// post-checkpoint runs, truncate and reopen the last run, restart the
// tournament empty). The partition count comes from the durable state, not
// the caller's options — the runs on disk decide. Returns the sorter and
// the checkpointed scan position; the caller re-feeds pages from there.
func ResumePartSorter(fs vfs.FS, st PartSortState, capacity int, concurrent bool) (*PartSorter, []byte, error) {
	p := &PartSorter{prefix: st.Prefix, conc: concurrent && len(st.Parts) > 1}
	if len(st.Parts) <= 1 {
		var legacy SortState
		if len(st.Parts) == 1 {
			legacy = st.Parts[0]
		}
		legacy.ScanPos = st.ScanPos
		s, scanPos, err := ResumeSorterWithCapacity(fs, legacy, capacity)
		if err != nil {
			return nil, nil, err
		}
		p.conc = false
		p.parts = []*Sorter{s}
		return p, scanPos, nil
	}
	for i, ps := range st.Parts {
		s := NewSorterWith(fs, partPrefix(st.Prefix, i), capacity, ps.Compress)
		s2, _, err := resumeSorter(fs, s, ps)
		if err != nil {
			return nil, nil, err
		}
		p.parts = append(p.parts, s2)
	}
	p.start()
	return p, st.ScanPos, nil
}
