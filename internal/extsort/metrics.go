package extsort

import "onlineindex/internal/metrics"

// Metrics holds the sort phase's registry handles; the zero value disables
// export. Runs counts run files opened (including a reopened run after
// resume starting a successor), Items counts items accepted by the sorter,
// and MergeFanIn records the number of input streams of each merge the
// caller opens (observed by the caller at merger creation, since the merge
// is an iterator without a handle back to the sorter).
type Metrics struct {
	Runs       *metrics.Counter
	Items      *metrics.Counter
	MergeFanIn *metrics.Histogram
}

// MetricsFrom resolves the sort phase's standard instrument names on r.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Runs:       r.Counter("extsort.runs"),
		Items:      r.Counter("extsort.items"),
		MergeFanIn: r.Histogram("extsort.merge_fanin", metrics.ExpBounds(1, 12)),
	}
}

// SetMetrics attaches registry handles to the sorter. Call before use.
func (s *Sorter) SetMetrics(m Metrics) { s.met = m }
