package extsort

import "onlineindex/internal/metrics"

// Metrics holds the sort phase's registry handles; the zero value disables
// export. Runs counts run files opened (including a reopened run after
// resume starting a successor), Items counts items accepted by the sorter,
// RunLen records each completed run's item count (a run-count explosion
// from an undersized tree capacity shows up here as a pile of short runs),
// and MergeFanIn records the number of input streams of each merge the
// caller opens (observed by the caller at merger creation, since the merge
// is an iterator without a handle back to the sorter) — as a histogram of
// every merge opened and as a gauge holding the latest fan-in, so /metrics
// shows the width of the merge currently running.
type Metrics struct {
	Runs       *metrics.Counter
	Items      *metrics.Counter
	RunLen     *metrics.Histogram
	MergeFanIn *metrics.Histogram
	FanIn      *metrics.Gauge
}

// MetricsFrom resolves the sort phase's standard instrument names on r.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Runs:       r.Counter("extsort.runs"),
		Items:      r.Counter("extsort.items"),
		RunLen:     r.Histogram("extsort.run_len", metrics.ExpBounds(1, 20)),
		MergeFanIn: r.Histogram("extsort.merge_fanin", metrics.ExpBounds(1, 12)),
		FanIn:      r.Gauge("extsort.merge_fanin"),
	}
}

// SetMetrics attaches registry handles to the sorter. Call before use.
func (s *Sorter) SetMetrics(m Metrics) { s.met = m }
