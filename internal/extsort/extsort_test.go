package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"onlineindex/internal/vfs"
)

func item(i int) []byte { return []byte(fmt.Sprintf("item-%08d", i)) }

// sortAll pushes items, finishes runs, merges, and returns the output.
func sortAll(t *testing.T, fs *vfs.MemFS, items [][]byte, capacity int) [][]byte {
	t.Helper()
	s := NewSorter(fs, "t", capacity)
	for _, it := range items {
		if err := s.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(fs, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func checkSorted(t *testing.T, out [][]byte, want int) {
	t.Helper()
	if len(out) != want {
		t.Fatalf("output has %d items, want %d", len(out), want)
	}
	for i := 1; i < len(out); i++ {
		if bytes.Compare(out[i-1], out[i]) > 0 {
			t.Fatalf("output not sorted at %d: %q > %q", i, out[i-1], out[i])
		}
	}
}

func TestSortSmallPermutation(t *testing.T) {
	fs := vfs.NewMemFS()
	perm := rand.New(rand.NewSource(1)).Perm(1000)
	items := make([][]byte, len(perm))
	for i, p := range perm {
		items[i] = item(p)
	}
	out := sortAll(t, fs, items, 64)
	checkSorted(t, out, 1000)
	for i, o := range out {
		if string(o) != string(item(i)) {
			t.Fatalf("out[%d] = %q, want %q", i, o, item(i))
		}
	}
}

func TestSortWithDuplicates(t *testing.T) {
	fs := vfs.NewMemFS()
	var items [][]byte
	for i := 0; i < 500; i++ {
		items = append(items, item(i%50))
	}
	out := sortAll(t, fs, items, 16)
	checkSorted(t, out, 500)
}

func TestSortAlreadySortedProducesOneRun(t *testing.T) {
	// Replacement selection on sorted input yields a single run regardless
	// of memory size.
	fs := vfs.NewMemFS()
	s := NewSorter(fs, "t", 8)
	for i := 0; i < 1000; i++ {
		s.Add(item(i))
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1 for sorted input", len(runs))
	}
	if runs[0].Count != 1000 {
		t.Fatalf("run count = %d", runs[0].Count)
	}
}

func TestReverseSortedRunLengthEqualsCapacity(t *testing.T) {
	// Worst case: reverse-sorted input gives runs of exactly `capacity`.
	fs := vfs.NewMemFS()
	s := NewSorter(fs, "t", 50)
	for i := 999; i >= 0; i-- {
		s.Add(item(i))
	}
	runs, _ := s.Finish()
	if len(runs) != 20 {
		t.Fatalf("runs = %d, want 20", len(runs))
	}
	for _, r := range runs {
		if r.Count != 50 {
			t.Fatalf("run count = %d, want 50", r.Count)
		}
	}
}

func TestMergeIsStableAcrossRuns(t *testing.T) {
	// Identical keys must come out in run order (side-file application
	// preserves the relative positions of identical keys, §3.2.5).
	fs := vfs.NewMemFS()
	w1, _ := createRun(fs, "r1", false)
	w1.add([]byte("a"))
	w1.add([]byte("k"))
	w1.force()
	w1.close()
	w2, _ := createRun(fs, "r2", false)
	w2.add([]byte("k"))
	w2.add([]byte("z"))
	w2.force()
	w2.close()
	m, err := NewMerger(fs, []RunMeta{
		{Name: "r1", Count: 2}, {Name: "r2", Count: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var srcs []int
	for {
		it, src, ok, _ := m.Next()
		if !ok {
			break
		}
		if string(it) == "k" {
			srcs = append(srcs, src)
		}
	}
	if len(srcs) != 2 || srcs[0] != 0 || srcs[1] != 1 {
		t.Fatalf("duplicate key sources = %v, want [0 1]", srcs)
	}
}

func TestSortPhaseCheckpointRestart(t *testing.T) {
	fs := vfs.NewMemFS()
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(5000)

	s := NewSorter(fs, "t", 128)
	var st SortState
	const crashAt = 3000
	for i := 0; i < crashAt; i++ {
		if err := s.Add(item(perm[i])); err != nil {
			t.Fatal(err)
		}
		if i == 1999 {
			// Checkpoint embeds the scan position (input index 2000).
			cs, err := s.Checkpoint([]byte("pos:2000"))
			if err != nil {
				t.Fatal(err)
			}
			st = cs
		}
	}

	// Crash: unsynced run bytes written after the checkpoint disappear.
	fs.Crash()
	fs.Recover()

	// Round-trip the state through its encoding (as the IB checkpoint
	// record would).
	st2, err := DecodeSortState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	s2, scanPos, err := ResumeSorterWithCapacity(fs, st2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if string(scanPos) != "pos:2000" {
		t.Fatalf("scan pos = %q", scanPos)
	}
	// Re-feed everything from the checkpointed scan position.
	for i := 2000; i < 5000; i++ {
		if err := s2.Add(item(perm[i])); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(fs, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, it)
	}
	checkSorted(t, out, 5000)
	for i, o := range out {
		if string(o) != string(item(i)) {
			t.Fatalf("out[%d] = %q, want %q (no key lost or duplicated)", i, o, item(i))
		}
	}
}

func TestMergePhaseCheckpointRestart(t *testing.T) {
	fs := vfs.NewMemFS()
	// Build runs.
	s := NewSorter(fs, "t", 64)
	perm := rand.New(rand.NewSource(3)).Perm(3000)
	for _, p := range perm {
		s.Add(item(p))
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) < 2 {
		t.Fatalf("need multiple runs, got %d", len(runs))
	}

	m, err := NewMerger(fs, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	var st MergeState
	for i := 0; i < 1700; i++ {
		it, _, ok, err := m.Next()
		if err != nil || !ok {
			t.Fatal(err, ok)
		}
		out = append(out, it)
		if i == 999 {
			st = m.State()
			out = out[:1000] // caller truncates its output to the checkpoint
		}
	}
	m.Close()

	// Crash: resume from the checkpoint; output after position 1000 is
	// discarded by the caller (truncate), so continue from there.
	out = out[:1000]
	st2, err := DecodeMergeState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ResumeMerger(fs, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for {
		it, _, ok, err := m2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, it)
	}
	checkSorted(t, out, 3000)
	for i, o := range out {
		if string(o) != string(item(i)) {
			t.Fatalf("out[%d] = %q: merge restart lost or duplicated keys", i, o)
		}
	}
}

func TestCheckpointAtEveryIntervalStillCorrect(t *testing.T) {
	// Frequent checkpoints shorten runs but must never corrupt the output.
	fs := vfs.NewMemFS()
	perm := rand.New(rand.NewSource(11)).Perm(800)
	s := NewSorter(fs, "t", 32)
	for i, p := range perm {
		if err := s.Add(item(p)); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if _, err := s.Checkpoint(nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMerger(fs, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, it)
	}
	checkSorted(t, out, 800)
}

func TestPropertySortMatchesStdlib(t *testing.T) {
	f := func(data [][]byte, seed int64) bool {
		if len(data) == 0 {
			return true
		}
		fs := vfs.NewMemFS()
		cap := 2 + int(seed%31+31)%31
		s := NewSorter(fs, "t", cap)
		for _, d := range data {
			if err := s.Add(d); err != nil {
				return false
			}
		}
		runs, err := s.Finish()
		if err != nil {
			return false
		}
		m, err := NewMerger(fs, runs, nil)
		if err != nil {
			return false
		}
		defer m.Close()
		var out [][]byte
		for {
			it, _, ok, err := m.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			out = append(out, it)
		}
		want := make([][]byte, len(data))
		copy(want, data)
		sort.SliceStable(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
		if len(out) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(out[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptySort(t *testing.T) {
	fs := vfs.NewMemFS()
	s := NewSorter(fs, "t", 8)
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 0 {
		t.Fatalf("runs = %v", runs)
	}
	m, err := NewMerger(fs, runs, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, ok, _ := m.Next(); ok {
		t.Fatal("empty merge produced an item")
	}
}

func TestLoserTreeBasics(t *testing.T) {
	leaves := []slot{
		{tag: 0, item: []byte("c"), ok: true},
		{tag: 0, item: []byte("a"), ok: true},
		{tag: 0, item: []byte("b"), ok: true},
		{},
	}
	lt := newLoserTree(leaves)
	var got []string
	for !lt.empty() {
		got = append(got, string(lt.winnerSlot().item))
		lt.replaceWinner(slot{})
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("drain order = %v", got)
	}
}

func TestLoserTreeTagOrdering(t *testing.T) {
	// Run tags dominate: tag-0 items all emit before tag-1 items.
	leaves := []slot{
		{tag: 1, item: []byte("a"), ok: true},
		{tag: 0, item: []byte("z"), ok: true},
	}
	lt := newLoserTree(leaves)
	if string(lt.winnerSlot().item) != "z" {
		t.Fatalf("winner = %q, want z (tag 0 wins)", lt.winnerSlot().item)
	}
}
