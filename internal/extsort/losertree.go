// Package extsort implements the paper's restartable external sort (§5): a
// tournament-tree sort whose sort phase and merge phase both checkpoint
// enough state to resume after a system failure without re-reading the
// already-sorted prefix of the input.
//
// The sort phase uses replacement selection over a tournament (loser) tree,
// producing sorted runs on the VFS; a checkpoint drains the tree, forces the
// run files, and records the run metadata plus the caller's scan position
// (§5.1). The merge phase is an N-way tournament merge that maintains the
// paper's per-input counters: "while outputting a value from the tree, we
// increment by one the counter associated with the input stream from which
// that value came" (§5.2); checkpointing the counter vector lets restart
// reposition every input exactly.
//
// Items are opaque byte strings ordered by bytes.Compare — the
// memcmp-comparable index keys of package keyenc.
package extsort

import "bytes"

// slot is one tournament-tree leaf: a run-tagged item. Replacement selection
// orders by (tag, item) so items assigned to the next run lose against every
// current-run item; an invalid slot is +infinity.
type slot struct {
	tag  uint64
	item []byte
	ok   bool
}

func slotLess(a, b slot) bool {
	if a.ok != b.ok {
		return a.ok // valid beats invalid (+inf)
	}
	if !a.ok {
		return false
	}
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return bytes.Compare(a.item, b.item) < 0
}

// loserTree is a classic tournament tree of n leaves: internal node k holds
// the index of the leaf that *lost* the match at k, and tree[0] holds the
// overall winner. Replacing the winner replays only its root path —
// O(log n) comparisons per output, the property that makes tournament sort
// the paper's choice for both phases.
type loserTree struct {
	n      int
	tree   []int  // size n; tree[0] = winner leaf index
	leaves []slot // size n
	merge  bool   // merge ordering: by (item, tag) instead of (tag, item)
}

// mergeLess orders merge-tree slots by item, breaking ties by source stream
// index so equal keys stay in run order (a stable merge).
func mergeLess(a, b slot) bool {
	if a.ok != b.ok {
		return a.ok
	}
	if !a.ok {
		return false
	}
	if c := bytes.Compare(a.item, b.item); c != 0 {
		return c < 0
	}
	return a.tag < b.tag
}

// newLoserTree builds a tree over the given leaves (length >= 1).
func newLoserTree(leaves []slot) *loserTree {
	n := len(leaves)
	t := &loserTree{n: n, tree: make([]int, n), leaves: leaves}
	for i := range t.tree {
		t.tree[i] = -1 // virtual "always loses" entries during build
	}
	for i := n - 1; i >= 0; i-- {
		t.adjust(i)
	}
	return t
}

// adjust replays leaf i's path to the root. During the initial build a climb
// parks at the first empty node (classic tournament construction: each
// internal node hosts exactly one loser once every leaf has been entered);
// afterwards every node is occupied, so the climb plays a match at each
// level — the loser stays, the winner continues — and installs the overall
// winner at tree[0].
func (t *loserTree) adjust(i int) {
	less := slotLess
	if t.merge {
		less = mergeLess
	}
	winner := i
	node := (i + t.n) / 2
	for node > 0 {
		if t.tree[node] == -1 {
			t.tree[node] = winner
			return // parked during build; the champion is not yet known
		}
		if less(t.leaves[t.tree[node]], t.leaves[winner]) {
			t.tree[node], winner = winner, t.tree[node]
		}
		node /= 2
	}
	t.tree[0] = winner
}

// winner returns the index of the winning leaf.
func (t *loserTree) winner() int { return t.tree[0] }

// winnerSlot returns the winning slot.
func (t *loserTree) winnerSlot() slot { return t.leaves[t.tree[0]] }

// replaceWinner installs s in the winning leaf and restores the tournament.
func (t *loserTree) replaceWinner(s slot) {
	w := t.tree[0]
	t.leaves[w] = s
	t.adjust(w)
}

// empty reports whether every leaf is invalid (+inf).
func (t *loserTree) empty() bool { return !t.winnerSlot().ok }
