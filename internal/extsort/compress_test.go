package extsort

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"onlineindex/internal/faultfs"
	"onlineindex/internal/vfs"
)

// sortAllWith is sortAll with the compression knob exposed; it also returns
// the total run-file bytes so tests can assert the compression actually
// shrank the spill.
func sortAllWith(t *testing.T, fs *vfs.MemFS, items [][]byte, capacity int, comp bool) ([][]byte, int64) {
	t.Helper()
	s := NewSorterWith(fs, "t", capacity, comp)
	for _, it := range items {
		if err := s.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var spilled int64
	for _, r := range runs {
		spilled += r.Bytes
	}
	m, err := NewMergerWith(fs, runs, nil, MergeOptions{Compress: comp})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out, spilled
		}
		out = append(out, it)
	}
}

func TestCompressedSortMatchesUncompressed(t *testing.T) {
	// Keys with long shared prefixes (the common case for composite or
	// string keys): the compressed pipeline must produce byte-identical
	// output in identical order, from strictly fewer spilled bytes.
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	items := make([][]byte, len(perm))
	for i, p := range perm {
		items[i] = []byte(fmt.Sprintf("warehouse-%04d-item-%06d", p%13, p))
	}
	plain, plainBytes := sortAllWith(t, vfs.NewMemFS(), items, 64, false)
	comp, compBytes := sortAllWith(t, vfs.NewMemFS(), items, 64, true)
	if len(plain) != len(comp) {
		t.Fatalf("compressed merge yields %d items, uncompressed %d", len(comp), len(plain))
	}
	for i := range plain {
		if !bytes.Equal(plain[i], comp[i]) {
			t.Fatalf("item %d differs: %q vs %q", i, plain[i], comp[i])
		}
	}
	if compBytes >= plainBytes {
		t.Fatalf("compression did not shrink the spill: %d >= %d bytes", compBytes, plainBytes)
	}
	t.Logf("spilled %d compressed vs %d uncompressed (%.1f%%)",
		compBytes, plainBytes, 100*float64(compBytes)/float64(plainBytes))
}

func TestCompressedSortCheckpointRestart(t *testing.T) {
	// A mid-run checkpoint with compression on: the delta chain must restart
	// from RunMeta.High after reopenRun truncates, so items written after
	// resume decode against the same predecessor they were encoded against.
	fs := vfs.NewMemFS()
	s := NewSorterWith(fs, "t", 8, true)
	var all [][]byte
	add := func(s *Sorter, lo, hi int) {
		for i := lo; i < hi; i++ {
			it := []byte(fmt.Sprintf("prefix-shared-%06d", (i*7919)%1000))
			all = append(all, it)
			if err := s.Add(it); err != nil {
				t.Fatal(err)
			}
		}
	}
	add(s, 0, 500)
	st, err := s.Checkpoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compress {
		t.Fatal("checkpoint lost the compression bit")
	}
	// Crash: keep writing (lost work), then resume from the durable state.
	add(s, 500, 600)
	all = all[:len(all)-100]
	s2, _, err := ResumeSorter(fs, st)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Compressed() {
		t.Fatal("resumed sorter dropped the run format")
	}
	add(s2, 500, 1000)
	runs, err := s2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMergerWith(fs, runs, nil, MergeOptions{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out = append(out, it)
	}
	checkSorted(t, out, len(all))
}

func TestRunWriterAddPropagatesFlushError(t *testing.T) {
	// Regression: add buffers records and flushes when the buffer crosses
	// 64 KiB; a write error inside that flush must surface from add itself,
	// not be deferred to close (by which point the checkpoint may already
	// have recorded the run as longer than the file).
	for _, comp := range []bool{false, true} {
		t.Run(fmt.Sprintf("comp=%v", comp), func(t *testing.T) {
			mem := vfs.NewMemFS()
			ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeError, Point: 1})
			w, err := createRun(ffs, "r", comp)
			if err != nil {
				t.Fatal(err)
			}
			ffs.Arm()
			payload := bytes.Repeat([]byte("x"), 4096)
			var addErr error
			for i := 0; i < 32 && addErr == nil; i++ {
				// Distinct suffixes keep the compressed deltas long enough to
				// cross the flush threshold in a handful of adds.
				addErr = w.add(append([]byte(fmt.Sprintf("%06d-", i)), payload...))
			}
			if !errors.Is(addErr, faultfs.ErrInjected) {
				t.Fatalf("add swallowed the flush error: got %v", addErr)
			}
		})
	}
}

// stuckFile is a vfs.File whose reads report no bytes and no error, forever —
// the pathological behavior ErrNoProgress exists to bound.
type stuckFile struct{}

func (stuckFile) ReadAt(p []byte, off int64) (int, error)  { return 0, nil }
func (stuckFile) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
func (stuckFile) Size() (int64, error)                     { return 0, nil }
func (stuckFile) Sync() error                              { return nil }
func (stuckFile) Truncate(size int64) error                { return nil }
func (stuckFile) Close() error                             { return nil }
func (stuckFile) Name() string                             { return "stuck" }

func TestRunReaderNoProgressSync(t *testing.T) {
	// Regression: a ReadAt that returns (0, nil) — illegal for a vfs.File
	// but possible from a buggy wrapper — used to spin fill forever. The
	// bounded retry must give up with ErrNoProgress.
	r := &runReader{f: stuckFile{}}
	_, _, err := r.next()
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("sync fill: got %v, want ErrNoProgress", err)
	}
}

func TestRunReaderNoProgressPrefetch(t *testing.T) {
	// The same stall through the double-buffered path: the prefetch
	// goroutine must deliver ErrNoProgress as its terminal block (and then
	// exit) rather than loop.
	r := &runReader{f: stuckFile{}}
	r.startPrefetch()
	defer r.close()
	_, _, err := r.next()
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("prefetch fill: got %v, want ErrNoProgress", err)
	}
}

func FuzzRunDelta(f *testing.F) {
	f.Add([]byte("abc\nabd\nabe"), uint8(1))
	f.Add([]byte("\x00\x00\x00\xff\xff"), uint8(0))
	f.Add([]byte("same\nsame\nsame\nsamey"), uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, cut uint8) {
		// Derive an item list from the raw input; empty items are legal run
		// records (a key can compress to nothing beyond the shared prefix).
		items := bytes.Split(raw, []byte("\n"))
		for _, it := range items {
			if len(it) > 0xffff {
				t.Skip()
			}
		}
		fs := vfs.NewMemFS()
		w, err := createRun(fs, "r", true)
		if err != nil {
			t.Fatal(err)
		}
		// Checkpoint/reopen mid-run at a fuzzer-chosen cut: the reopened
		// writer must seed its delta chain from the durable High.
		k := int(cut) % (len(items) + 1)
		for _, it := range items[:k] {
			if err := w.add(it); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.force(); err != nil {
			t.Fatal(err)
		}
		meta := w.meta
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		w, err = reopenRun(fs, meta, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items[k:] {
			if err := w.add(it); err != nil {
				t.Fatal(err)
			}
		}
		meta = w.meta
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		r, err := openRun(fs, meta, true)
		if err != nil {
			t.Fatal(err)
		}
		defer r.close()
		for i, want := range items {
			got, ok, err := r.next()
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
			if !ok {
				t.Fatalf("run ended at item %d of %d", i, len(items))
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("item %d round-tripped to %q, want %q", i, got, want)
			}
		}
		if _, ok, _ := r.next(); ok {
			t.Fatalf("run has more than %d items", len(items))
		}
	})
}
