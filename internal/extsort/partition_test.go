package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"onlineindex/internal/vfs"
)

// feedPages pushes items into the partitioned sorter in pages of pageLen,
// the way the scan pipeline's stage-3 feed does.
func feedPages(t *testing.T, p *PartSorter, items [][]byte, pageLen int) {
	t.Helper()
	for i := 0; i < len(items); i += pageLen {
		j := min(i+pageLen, len(items))
		page := make([][]byte, j-i)
		for k := i; k < j; k++ {
			page[k-i] = append([]byte(nil), items[k]...)
		}
		if err := p.FeedPage(page); err != nil {
			t.Fatal(err)
		}
	}
}

// mergeRuns merges the runs and returns the output items.
func mergeRuns(t *testing.T, fs *vfs.MemFS, runs []RunMeta, opts MergeOptions) [][]byte {
	t.Helper()
	m, err := NewMergerWith(fs, runs, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out [][]byte
	for {
		it, _, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, it)
	}
}

func requireSameOutput(t *testing.T, got, want [][]byte, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d items, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("%s: out[%d] = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestPartitionedSortMatchesSerial is the differential property: for any
// partition count — including more partitions than runs or pages — the
// merged partitioned output is byte-identical to the serial sorter's merged
// output. Both the inline and the concurrent feed are covered.
func TestPartitionedSortMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(3000)
	items := make([][]byte, len(perm))
	for i, p := range perm {
		items[i] = item(p)
	}

	want := sortAll(t, vfs.NewMemFS(), items, 64)

	for _, parts := range []int{2, 3, 8} {
		for _, conc := range []bool{false, true} {
			t.Run(fmt.Sprintf("P=%d,concurrent=%v", parts, conc), func(t *testing.T) {
				fs := vfs.NewMemFS()
				p := NewPartSorter(fs, "pt", 64, parts, conc)
				feedPages(t, p, items, 17)
				runs, err := p.Finish()
				if err != nil {
					t.Fatal(err)
				}
				got := mergeRuns(t, fs, runs, MergeOptions{Readahead: conc})
				requireSameOutput(t, got, want, "partitioned")
			})
		}
	}

	// More partitions than pages (and than runs): 8 partitions, 2 pages of
	// ascending input — most partitions stay empty, each fed one produces a
	// single run.
	t.Run("P>runs", func(t *testing.T) {
		short := make([][]byte, 40)
		for i := range short {
			short[i] = item(i)
		}
		want := sortAll(t, vfs.NewMemFS(), short, 64)
		fs := vfs.NewMemFS()
		p := NewPartSorter(fs, "pt", 64, 8, true)
		feedPages(t, p, short, 20)
		runs, err := p.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != 2 {
			t.Fatalf("runs = %d, want 2 (one per fed partition)", len(runs))
		}
		got := mergeRuns(t, fs, runs, MergeOptions{})
		requireSameOutput(t, got, want, "P>runs")
	})
}

// TestPartSortStateLegacyEncoding pins the compatibility rule: a
// one-partition checkpoint encodes byte-for-byte as the legacy SortState,
// and both decoders accept it.
func TestPartSortStateLegacyEncoding(t *testing.T) {
	fs := vfs.NewMemFS()
	p := NewPartSorter(fs, "t", 16, 1, true) // concurrency ignored at P=1
	items := make([][]byte, 200)
	for i := range items {
		items[i] = item(199 - i)
	}
	feedPages(t, p, items, 10)
	st, err := p.Checkpoint([]byte("pos:200"))
	if err != nil {
		t.Fatal(err)
	}
	enc := st.Encode()

	legacy := st.Parts[0]
	legacy.ScanPos = st.ScanPos
	if !bytes.Equal(enc, legacy.Encode()) {
		t.Fatal("single-partition encoding differs from legacy SortState encoding")
	}
	if _, err := DecodeSortState(enc); err != nil {
		t.Fatalf("legacy decoder rejects single-partition state: %v", err)
	}
	back, err := DecodePartSortState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Parts) != 1 || string(back.ScanPos) != "pos:200" {
		t.Fatalf("round-trip: parts=%d scanPos=%q", len(back.Parts), back.ScanPos)
	}
	// A partitioned state round-trips through its own encoding.
	multi := PartSortState{Prefix: "t", Parts: []SortState{legacy, {NextRun: 7}}, ScanPos: []byte("x")}
	back2, err := DecodePartSortState(multi.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back2.Prefix != "t" || len(back2.Parts) != 2 || back2.Parts[1].NextRun != 7 || string(back2.ScanPos) != "x" {
		t.Fatalf("partitioned round-trip: %+v", back2)
	}
}

// TestPartSorterCheckpointRestart crashes a partitioned sort mid-feed and
// resumes it (with a different tree capacity — the capacity is not part of
// the durable state), asserting no key is lost or duplicated.
func TestPartSorterCheckpointRestart(t *testing.T) {
	for _, conc := range []bool{false, true} {
		t.Run(fmt.Sprintf("concurrent=%v", conc), func(t *testing.T) {
			fs := vfs.NewMemFS()
			rng := rand.New(rand.NewSource(9))
			perm := rng.Perm(4000)

			p := NewPartSorter(fs, "pt", 64, 4, conc)
			var st PartSortState
			const ckptAt, crashAt = 2000, 3100
			pageLen := 10
			for i := 0; i < crashAt; i += pageLen {
				page := make([][]byte, pageLen)
				for k := 0; k < pageLen; k++ {
					page[k] = item(perm[i+k])
				}
				if err := p.FeedPage(page); err != nil {
					t.Fatal(err)
				}
				if i+pageLen == ckptAt {
					cs, err := p.Checkpoint([]byte("pos:2000"))
					if err != nil {
						t.Fatal(err)
					}
					st = cs
				}
			}
			p.Close()

			// Crash: unsynced bytes written after the checkpoint disappear.
			fs.Crash()
			fs.Recover()

			st2, err := DecodePartSortState(st.Encode())
			if err != nil {
				t.Fatal(err)
			}
			p2, scanPos, err := ResumePartSorter(fs, st2, 32, conc)
			if err != nil {
				t.Fatal(err)
			}
			if string(scanPos) != "pos:2000" {
				t.Fatalf("scan pos = %q", scanPos)
			}
			if p2.Partitions() != 4 {
				t.Fatalf("partitions = %d, want 4 (from durable state)", p2.Partitions())
			}
			// Re-feed from the checkpointed position. Round-robin assignment
			// restarts from page ordinal 0 — placement across incarnations may
			// differ, which the per-partition restart rule absorbs.
			rest := make([][]byte, 0, 4000-ckptAt)
			for i := ckptAt; i < 4000; i++ {
				rest = append(rest, item(perm[i]))
			}
			feedPages(t, p2, rest, 10)
			runs, err := p2.Finish()
			if err != nil {
				t.Fatal(err)
			}
			out := mergeRuns(t, fs, runs, MergeOptions{})
			checkSorted(t, out, 4000)
			for i, o := range out {
				if string(o) != string(item(i)) {
					t.Fatalf("out[%d] = %q: restart lost or duplicated keys", i, o)
				}
			}
		})
	}
}

// TestResumeSorterWithCapacityMidRun exercises the capacity-not-durable
// path directly: a serial sort checkpointed mid-run resumes with a smaller
// and then a larger tree than it started with, and the output stays exact.
func TestResumeSorterWithCapacityMidRun(t *testing.T) {
	for _, resumeCap := range []int{16, 512} {
		t.Run(fmt.Sprintf("capacity=%d", resumeCap), func(t *testing.T) {
			fs := vfs.NewMemFS()
			perm := rand.New(rand.NewSource(5)).Perm(2000)
			s := NewSorter(fs, "t", 128)
			for i := 0; i < 1200; i++ {
				if err := s.Add(item(perm[i])); err != nil {
					t.Fatal(err)
				}
			}
			st, err := s.Checkpoint([]byte("pos:1200"))
			if err != nil {
				t.Fatal(err)
			}
			fs.Crash()
			fs.Recover()

			s2, scanPos, err := ResumeSorterWithCapacity(fs, st, resumeCap)
			if err != nil {
				t.Fatal(err)
			}
			if string(scanPos) != "pos:1200" {
				t.Fatalf("scan pos = %q", scanPos)
			}
			if s2.capacity != resumeCap {
				t.Fatalf("capacity = %d, want %d", s2.capacity, resumeCap)
			}
			for i := 1200; i < 2000; i++ {
				if err := s2.Add(item(perm[i])); err != nil {
					t.Fatal(err)
				}
			}
			runs, err := s2.Finish()
			if err != nil {
				t.Fatal(err)
			}
			out := mergeRuns(t, fs, runs, MergeOptions{})
			checkSorted(t, out, 2000)
			for i, o := range out {
				if string(o) != string(item(i)) {
					t.Fatalf("out[%d] = %q", i, o)
				}
			}
		})
	}
}

// TestMergeReadaheadMatchesSync verifies the prefetching reader produces
// the same stream as synchronous reads, including from a mid-merge
// checkpoint (prefetch starts after counter repositioning).
func TestMergeReadaheadMatchesSync(t *testing.T) {
	fs := vfs.NewMemFS()
	s := NewSorter(fs, "t", 64)
	perm := rand.New(rand.NewSource(13)).Perm(5000)
	for _, p := range perm {
		if err := s.Add(item(p)); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	want := mergeRuns(t, fs, runs, MergeOptions{})
	got := mergeRuns(t, fs, runs, MergeOptions{Readahead: true})
	requireSameOutput(t, got, want, "readahead")

	// Resume mid-merge with readahead on.
	m, err := NewMergerWith(fs, runs, nil, MergeOptions{Readahead: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2500; i++ {
		if _, _, ok, err := m.Next(); err != nil || !ok {
			t.Fatal(err, ok)
		}
	}
	st := m.State()
	m.Close()
	m2, err := ResumeMergerWith(fs, st, MergeOptions{Readahead: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	for i := 2500; ; i++ {
		it, _, ok, err := m2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != 5000 {
				t.Fatalf("resumed merge ended at %d, want 5000", i)
			}
			break
		}
		if !bytes.Equal(it, want[i]) {
			t.Fatalf("resumed out[%d] = %q, want %q", i, it, want[i])
		}
	}
}
