package partition

import (
	"bytes"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// Cross-shard unique enforcement. A unique key that is not aligned with
// the partitioning key can have its duplicate sitting on a *different*
// shard's tree, where the engine's per-tree §2.2.3 conflict protocol never
// looks. The Router closes the gap with a probe protocol:
//
// After a routed insert (or update) lands its key in shard i's tree under
// the transaction's X record lock, the transaction probes every sibling
// shard's tree for the same key. A live sibling entry is verified with the
// read path's protocol (blocking S lock on the entry's RID, then a
// SearchEntry re-check): if it is still live once the lock is granted, its
// owner has committed and the insert fails with UniqueViolationError.
//
// Exactly-one-winner for the symmetric race — T1 inserts key k on shard A
// while T2 inserts k on shard B — falls out of data-only locking: each
// transaction holds the X lock on its own new RID before probing, so T1's
// probe blocks on T2's RID and T2's probe blocks on T1's RID. That cycle
// is a deadlock; the lock manager aborts one victim (lock.ErrDeadlock),
// its rollback erases its entry, and the survivor's re-check then sees a
// dead entry and proceeds. Both inserts cannot miss each other: a probe
// starts only after its own tree insert finished, so the later prober
// observes the earlier insert.
//
// Sibling builds in progress: an NSF-building sibling tree is maintained
// directly by DML and scanned-in rows are committed, so it is probed like
// a complete one. An SF-building sibling routes concurrent changes through
// the side-file — its tree is not authoritative yet, so the probe skips it
// and the coordinator's completion sweep (build.go) catches any duplicate
// that slipped in during the capture phase, exactly as a serial SF build
// surfaces capture-era duplicates at catch-up time. Offline-building
// siblings quiesce their own shard and are likewise swept at completion.

// probeUnique checks the row's keys for every logical unique index on the
// table against all sibling shards. self is the shard that already holds
// the row (its own tree enforced local uniqueness).
func (r *Router) probeUnique(tx *txn.Txn, pt *catalog.PartTable, row engine.Row, self int) error {
	cat := r.db.Catalog()
	var uniques []catalog.PartIndex
	for _, pi := range cat.PartIndexes() {
		if pi.Table == pt.Name && pi.Unique && pi.State != catalog.StateDropped {
			uniques = append(uniques, pi)
		}
	}
	if len(uniques) == 0 {
		return nil
	}
	schema, err := r.schemaOf(pt)
	if err != nil {
		return err
	}
	for _, pi := range uniques {
		key, err := logicalIndexKey(schema, &pi, row)
		if err != nil {
			return err
		}
		for j := range pt.Parts {
			if j == self {
				continue
			}
			six, ok := cat.Index(catalog.PartShardIndexName(pi.Name, j))
			if !ok {
				continue // build has not reached this shard yet; sweep covers it
			}
			probe := six.State == catalog.StateComplete ||
				(six.State == catalog.StateBuilding && six.Method == catalog.MethodNSF)
			if !probe {
				continue
			}
			if err := r.probeShardKey(tx, &six, key, pi.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// logicalIndexKey encodes the row's key for a logical index by resolving
// its column names against the shared shard schema.
func logicalIndexKey(schema catalog.Schema, pi *catalog.PartIndex, row engine.Row) ([]byte, error) {
	ix := catalog.Index{Name: pi.Name}
	for _, cn := range pi.Columns {
		pos := -1
		for i, c := range schema {
			if c.Name == cn {
				pos = i
				break
			}
		}
		if pos < 0 {
			return nil, &engine.ErrIndexNotReadable{Name: pi.Name}
		}
		ix.Columns = append(ix.Columns, pos)
	}
	return engine.IndexKey(&ix, row)
}

// probeShardKey looks for a committed live entry with key in one sibling
// shard index. Entries are collected latch-only first (the tree scan takes
// no locks), then each candidate is verified under the read protocol; the
// heap row is re-checked to still carry the key, mirroring the builder's
// own §2.2.3 RID verification, so a stale tree entry can never produce a
// false violation.
func (r *Router) probeShardKey(tx *txn.Txn, six *catalog.Index, key []byte, logical string) error {
	tree, err := r.db.TreeOf(six.ID)
	if err != nil {
		return nil // dropped underneath us: nothing to conflict with
	}
	var cands []btree.Entry
	err = tree.ScanRange(key, key, func(e btree.Entry) bool {
		cands = append(cands, btree.Entry{
			Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo,
		})
		return true
	})
	if err != nil {
		return err
	}
	for _, e := range cands {
		live, err := r.db.VerifyIndexEntry(tx, six.ID, e.Key, e.RID, e.Pseudo)
		if err != nil {
			return err // includes lock.ErrDeadlock: this txn lost the race
		}
		if !live {
			continue
		}
		has, err := r.recordHasKey(six, e.RID, key)
		if err != nil {
			return err
		}
		if has {
			return &engine.UniqueViolationError{Index: logical, Key: e.Key, Existing: e.RID}
		}
	}
	return nil
}

// recordHasKey re-derives the index key from the heap row at rid and
// compares it to key.
func (r *Router) recordHasKey(six *catalog.Index, rid types.RID, key []byte) (bool, error) {
	h, err := r.db.HeapOf(six.Table)
	if err != nil {
		return false, err
	}
	rec, ok, err := h.Get(rid)
	if err != nil || !ok {
		return false, err
	}
	k, err := engine.IndexKeyFromRecord(six, rec)
	if err != nil {
		return false, err
	}
	return bytes.Equal(k, key), nil
}
