// Package partition implements horizontal partitioning: one logical table
// backed by N independent shard tables, each a full citizen of the
// existing engine (own heap file, FSM, zone-map sidecar, per-shard index
// trees, WAL records, undo and recovery). The package adds three layers on
// top of that unchanged substrate:
//
//   - a Router that threads DML and the read path through the right
//     shard(s): exact-shard routing for point operations, a
//     partition-ordered concatenation for range scans over range
//     partitioning, and a fan-out k-way merge elsewhere;
//   - a build coordinator (build.go) that fans one logical index build out
//     into N per-shard builds — each reusing the NSF/SF/offline pipeline
//     verbatim — and commits the logical index only when every shard
//     completes;
//   - a cross-shard unique protocol (unique.go) for unique keys that are
//     not aligned with the partitioning key, where the engine's per-tree
//     §2.2.3 machinery cannot see a duplicate sitting on a sibling shard.
package partition

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// Spec describes how to partition a new logical table.
type Spec struct {
	Partitions int
	Scheme     catalog.PartScheme
	KeyColumn  string
	// Bounds are the upper-exclusive range split points (Partitions-1
	// values of the key column's kind, ascending). Ignored for hash.
	Bounds []keyenc.Value
}

// CreateTable creates a logical partitioned table: N ordinary shard tables
// named name#p0..name#pN-1, plus one redo-only PartMeta record that
// registers the logical descriptor. The shards are created first so a
// crash mid-way leaves only unreferenced (and empty) ordinary tables.
func CreateTable(db *engine.DB, name string, schema catalog.Schema, spec Spec) (catalog.PartTable, error) {
	if spec.Partitions < 1 {
		return catalog.PartTable{}, fmt.Errorf("partition: need at least 1 partition, got %d", spec.Partitions)
	}
	if spec.Scheme != catalog.SchemeRange && spec.Scheme != catalog.SchemeHash {
		return catalog.PartTable{}, fmt.Errorf("partition: unknown scheme %v", spec.Scheme)
	}
	keyCol := -1
	for i, c := range schema {
		if c.Name == spec.KeyColumn {
			keyCol = i
			break
		}
	}
	if keyCol < 0 {
		return catalog.PartTable{}, fmt.Errorf("partition: schema has no column %q", spec.KeyColumn)
	}
	if _, exists := db.Catalog().PartTable(name); exists {
		return catalog.PartTable{}, fmt.Errorf("partition: table %q exists", name)
	}
	pt := catalog.PartTable{Name: name, Scheme: spec.Scheme, KeyCol: keyCol}
	if spec.Scheme == catalog.SchemeRange {
		if len(spec.Bounds) != spec.Partitions-1 {
			return catalog.PartTable{}, fmt.Errorf("partition: range scheme needs %d bounds, got %d",
				spec.Partitions-1, len(spec.Bounds))
		}
		for i, v := range spec.Bounds {
			b := keyenc.Append(nil, v)
			if i > 0 && bytes.Compare(pt.Bounds[i-1], b) >= 0 {
				return catalog.PartTable{}, fmt.Errorf("partition: bounds not strictly ascending at %d", i)
			}
			pt.Bounds = append(pt.Bounds, b)
		}
	}
	for i := 0; i < spec.Partitions; i++ {
		t, err := db.CreateTable(catalog.PartShardTableName(name, i), schema)
		if err != nil {
			return catalog.PartTable{}, err
		}
		pt.Parts = append(pt.Parts, t.ID)
	}
	if err := logPartMeta(db, catalog.EncodePartTableMeta(&pt)); err != nil {
		return catalog.PartTable{}, err
	}
	db.Catalog().AddPartTable(&pt)
	return pt, nil
}

// logPartMeta writes one redo-only partition-metadata record in its own
// committed transaction — the same pattern CreateTable uses for DDL.
func logPartMeta(db *engine.DB, payload []byte) error {
	tx := db.Begin()
	if _, err := tx.Log(&wal.Record{
		Type: wal.TypePartMeta, Flags: wal.FlagRedo, Payload: payload,
	}); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// routeKey picks the shard for a keyenc-encoded partitioning-column value.
// Hash routing is FNV-1a over the encoding — a fixed function, so replay
// and recovery land every row on the same shard deterministically.
func routeKey(pt *catalog.PartTable, keyEnc []byte) int {
	if pt.Scheme == catalog.SchemeRange {
		for i, b := range pt.Bounds {
			if bytes.Compare(keyEnc, b) < 0 {
				return i
			}
		}
		return len(pt.Parts) - 1
	}
	h := fnv.New64a()
	h.Write(keyEnc)
	return int(h.Sum64() % uint64(len(pt.Parts)))
}

// Router threads DML and reads through the partition layer: operations on
// partitioned logical names route to the right shard(s); everything else
// delegates to the engine untouched, so one Router can front a database
// that mixes partitioned and plain tables.
type Router struct {
	db *engine.DB
}

// NewRouter returns a router over db.
func NewRouter(db *engine.DB) *Router { return &Router{db: db} }

// DB returns the underlying engine.
func (r *Router) DB() *engine.DB { return r.db }

// Begin starts a transaction (delegates; transactions span shards freely —
// locks, undo and recovery are shard-agnostic).
func (r *Router) Begin() *txn.Txn { return r.db.Begin() }

// schemaOf returns the logical table's schema (every shard shares it).
func (r *Router) schemaOf(pt *catalog.PartTable) (catalog.Schema, error) {
	t, ok := r.db.Catalog().TableByID(pt.Parts[0])
	if !ok {
		return nil, fmt.Errorf("partition: shard table %d of %q missing", pt.Parts[0], pt.Name)
	}
	return t.Schema, nil
}

// rowShard picks the shard a row belongs to.
func (r *Router) rowShard(pt *catalog.PartTable, row engine.Row) (int, error) {
	if pt.KeyCol >= len(row) {
		return 0, fmt.Errorf("partition: row has %d columns, key column is %d", len(row), pt.KeyCol)
	}
	return routeKey(pt, keyenc.Append(nil, row[pt.KeyCol])), nil
}

// ridShard finds the shard that owns a RID by its heap file.
func (r *Router) ridShard(pt *catalog.PartTable, rid types.RID) (int, error) {
	for i, tid := range pt.Parts {
		t, ok := r.db.Catalog().TableByID(tid)
		if ok && t.FileID == rid.PageID.File {
			return i, nil
		}
	}
	return 0, fmt.Errorf("partition: no shard of %q owns %s", pt.Name, rid)
}

// Insert routes an insert to its shard and then runs the cross-shard
// unique probe for every logical unique index whose key is not the
// partitioning key. On error the caller must roll back tx, exactly as with
// engine.Insert.
func (r *Router) Insert(tx *txn.Txn, table string, row engine.Row) (types.RID, error) {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.Insert(tx, table, row)
	}
	shard, err := r.rowShard(&pt, row)
	if err != nil {
		return types.RID{}, err
	}
	rid, err := r.db.Insert(tx, catalog.PartShardTableName(table, shard), row)
	if err != nil {
		return types.RID{}, err
	}
	if err := r.probeUnique(tx, &pt, row, shard); err != nil {
		return types.RID{}, err
	}
	r.noteRows(&pt, shard, +1)
	r.db.Metrics().Counter("partition.route_hits").Inc()
	return rid, nil
}

// Delete routes a delete by the RID's owning shard.
func (r *Router) Delete(tx *txn.Txn, table string, rid types.RID) error {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.Delete(tx, table, rid)
	}
	shard, err := r.ridShard(&pt, rid)
	if err != nil {
		return err
	}
	if err := r.db.Delete(tx, catalog.PartShardTableName(table, shard), rid); err != nil {
		return err
	}
	r.noteRows(&pt, shard, -1)
	r.db.Metrics().Counter("partition.route_hits").Inc()
	return nil
}

// Update updates in place when the new row stays on its shard, and turns
// into a delete+insert pair when the partitioning key moves the row. Both
// paths end with the unique probe for the (possibly changed) key values.
func (r *Router) Update(tx *txn.Txn, table string, rid types.RID, row engine.Row) (types.RID, error) {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.Update(tx, table, rid, row)
	}
	oldShard, err := r.ridShard(&pt, rid)
	if err != nil {
		return types.RID{}, err
	}
	newShard, err := r.rowShard(&pt, row)
	if err != nil {
		return types.RID{}, err
	}
	var newRID types.RID
	if oldShard == newShard {
		newRID, err = r.db.Update(tx, catalog.PartShardTableName(table, oldShard), rid, row)
		if err != nil {
			return types.RID{}, err
		}
	} else {
		if err := r.db.Delete(tx, catalog.PartShardTableName(table, oldShard), rid); err != nil {
			return types.RID{}, err
		}
		newRID, err = r.db.Insert(tx, catalog.PartShardTableName(table, newShard), row)
		if err != nil {
			return types.RID{}, err
		}
		r.noteRows(&pt, oldShard, -1)
		r.noteRows(&pt, newShard, +1)
	}
	if err := r.probeUnique(tx, &pt, row, newShard); err != nil {
		return types.RID{}, err
	}
	r.db.Metrics().Counter("partition.route_hits").Inc()
	return newRID, nil
}

// Get routes a point read by the RID's owning shard.
func (r *Router) Get(tx *txn.Txn, table string, rid types.RID) (engine.Row, bool, error) {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.Get(tx, table, rid)
	}
	shard, err := r.ridShard(&pt, rid)
	if err != nil {
		return nil, false, err
	}
	r.db.Metrics().Counter("partition.route_hits").Inc()
	return r.db.Get(tx, catalog.PartShardTableName(table, shard), rid)
}

// partIndexTarget resolves a logical index name to its descriptors; ok is
// false when the name is not a logical partitioned index.
func (r *Router) partIndexTarget(index string) (catalog.PartIndex, catalog.PartTable, bool, error) {
	pi, ok := r.db.Catalog().PartIndex(index)
	if !ok {
		return catalog.PartIndex{}, catalog.PartTable{}, false, nil
	}
	if pi.State != catalog.StateComplete {
		return catalog.PartIndex{}, catalog.PartTable{}, true, &engine.ErrIndexNotReadable{Name: index}
	}
	pt, ok := r.db.Catalog().PartTable(pi.Table)
	if !ok {
		return catalog.PartIndex{}, catalog.PartTable{}, true,
			fmt.Errorf("partition: index %q references missing table %q", index, pi.Table)
	}
	return pi, pt, true, nil
}

// partKeyPos returns the position of the partitioning column within the
// index's column list, or -1 when the index doesn't cover it.
func (r *Router) partKeyPos(pi *catalog.PartIndex, pt *catalog.PartTable) int {
	schema, err := r.schemaOf(pt)
	if err != nil {
		return -1
	}
	keyName := schema[pt.KeyCol].Name
	for i, c := range pi.Columns {
		if c == keyName {
			return i
		}
	}
	return -1
}

// Lookup is an exact-match point lookup through the partition planner:
// when the partitioning column is part of the index key the value pins the
// shard (partition.route_hits); otherwise every shard is probed
// (partition.fanout_scans).
func (r *Router) Lookup(tx *txn.Txn, index string, vals ...keyenc.Value) ([]types.RID, error) {
	pi, pt, partitioned, err := r.partIndexTarget(index)
	if !partitioned {
		return r.db.IndexLookup(tx, index, vals...)
	}
	if err != nil {
		return nil, err
	}
	if pos := r.partKeyPos(&pi, &pt); pos >= 0 && pos < len(vals) {
		shard := routeKey(&pt, keyenc.Append(nil, vals[pos]))
		r.db.Metrics().Counter("partition.route_hits").Inc()
		return r.db.IndexLookup(tx, catalog.PartShardIndexName(index, shard), vals...)
	}
	r.db.Metrics().Counter("partition.fanout_scans").Inc()
	var out []types.RID
	for i := range pt.Parts {
		rids, err := r.db.IndexLookup(tx, catalog.PartShardIndexName(index, i), vals...)
		if err != nil {
			return nil, err
		}
		out = append(out, rids...)
	}
	sortRIDs(out) // shard iteration order is meaningless; return a stable order
	return out, nil
}

// Scan is a range scan through the partition planner. Over range
// partitioning with the partitioning column leading the key, shard key
// ranges are disjoint and ordered, so the scan is a partition-ordered
// concatenation with shards outside [lo, hi] pruned; otherwise it is a
// fan-out k-way merge that interleaves the per-shard streams back into
// global (key, RID) order.
func (r *Router) Scan(tx *txn.Txn, index string, lo, hi []keyenc.Value, fn func(key []byte, rid types.RID) bool) error {
	pi, pt, partitioned, err := r.partIndexTarget(index)
	if !partitioned {
		return r.db.IndexScan(tx, index, lo, hi, fn)
	}
	if err != nil {
		return err
	}
	if pt.Scheme == catalog.SchemeRange && r.partKeyPos(&pi, &pt) == 0 {
		return r.scanOrdered(tx, &pt, index, lo, hi, fn)
	}
	r.db.Metrics().Counter("partition.fanout_scans").Inc()
	curs := make([]*engine.IndexCursor, 0, len(pt.Parts))
	for i := range pt.Parts {
		c, err := r.db.NewIndexCursor(tx, catalog.PartShardIndexName(index, i), lo, hi)
		if err != nil {
			return err
		}
		curs = append(curs, c)
	}
	m, err := newMergeCursor(curs)
	if err != nil {
		return err
	}
	for {
		key, rid, ok, err := m.Next()
		if err != nil || !ok {
			return err
		}
		if !fn(key, rid) {
			return nil
		}
	}
}

// scanOrdered walks shards in partition order (range partitioning, index
// led by the partitioning column): each shard's keys are strictly below
// the next shard's, so concatenation preserves global key order. Shards
// whose key range cannot intersect [lo, hi] are pruned via the
// partitioning bounds — the partition layer's analogue of zone-map block
// pruning, one level up.
func (r *Router) scanOrdered(tx *txn.Txn, pt *catalog.PartTable, index string, lo, hi []keyenc.Value, fn func(key []byte, rid types.RID) bool) error {
	var loEnc, hiEnc []byte
	if len(lo) > 0 {
		loEnc = keyenc.Append(nil, lo[0])
	}
	if len(hi) > 0 {
		hiEnc = keyenc.Append(nil, hi[0])
	}
	touched := 0
	done := false
	for i := range pt.Parts {
		// Shard i holds first-column values in [Bounds[i-1], Bounds[i]).
		if loEnc != nil && i < len(pt.Bounds) && bytes.Compare(loEnc, pt.Bounds[i]) >= 0 {
			continue // whole shard below lo
		}
		if hiEnc != nil && i > 0 && bytes.Compare(hiEnc, pt.Bounds[i-1]) < 0 {
			break // this and all later shards above hi
		}
		touched++
		err := r.db.IndexScan(tx, catalog.PartShardIndexName(index, i), lo, hi, func(key []byte, rid types.RID) bool {
			if !fn(key, rid) {
				done = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	if touched <= 1 {
		r.db.Metrics().Counter("partition.route_hits").Inc()
	} else {
		r.db.Metrics().Counter("partition.fanout_scans").Inc()
	}
	return nil
}

// SeqScan fans a predicate scan out over the shards in partition order,
// reusing each shard's zone-map pruning untouched.
func (r *Router) SeqScan(tx *txn.Txn, table string, pred *engine.Predicate, fn func(rid types.RID, row engine.Row) bool) error {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.SeqScan(tx, table, pred, fn)
	}
	r.db.Metrics().Counter("partition.fanout_scans").Inc()
	done := false
	for i := range pt.Parts {
		err := r.db.SeqScan(tx, catalog.PartShardTableName(table, i), pred, func(rid types.RID, row engine.Row) bool {
			if !fn(rid, row) {
				done = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
	return nil
}

// TableScan fans an unlocked full scan out over the shards in order.
func (r *Router) TableScan(table string, fn func(rid types.RID, row engine.Row) error) error {
	pt, ok := r.db.Catalog().PartTable(table)
	if !ok {
		return r.db.TableScan(table, fn)
	}
	for i := range pt.Parts {
		if err := r.db.TableScan(catalog.PartShardTableName(table, i), fn); err != nil {
			return err
		}
	}
	return nil
}

// CheckIndexConsistency runs the per-shard oracle on every shard index
// and, for unique logical indexes, additionally audits that no committed
// live key appears on two shards (the invariant the per-tree checker
// cannot see).
func (r *Router) CheckIndexConsistency(index string) error {
	pi, ok := r.db.Catalog().PartIndex(index)
	if !ok {
		return r.db.CheckIndexConsistency(index)
	}
	pt, ok := r.db.Catalog().PartTable(pi.Table)
	if !ok {
		return fmt.Errorf("partition: index %q references missing table %q", index, pi.Table)
	}
	for i := range pt.Parts {
		if err := r.db.CheckIndexConsistency(catalog.PartShardIndexName(index, i)); err != nil {
			return err
		}
	}
	if !pi.Unique || pi.State != catalog.StateComplete {
		return nil
	}
	seen := make(map[string]int)
	for i := range pt.Parts {
		err := r.db.IndexScan(nil, catalog.PartShardIndexName(index, i), nil, nil, func(key []byte, rid types.RID) bool {
			if prev, dup := seen[string(key)]; dup && prev != i {
				// keep scanning; report below with full context
				seen[string(key)] = -1000 - prev
				return true
			}
			seen[string(key)] = i
			return true
		})
		if err != nil {
			return err
		}
	}
	for k, v := range seen {
		if v <= -1000 {
			return fmt.Errorf("partition: unique index %q has key %x on shards %d and more", index, k, -1000-v)
		}
	}
	return nil
}

// noteRows maintains the per-partition row-count gauges and the skew
// gauge. The counts are advisory observability (they move when the DML
// executes, not when it commits); RefreshStats recomputes them exactly.
func (r *Router) noteRows(pt *catalog.PartTable, shard, delta int) {
	met := r.db.Metrics()
	met.Gauge(fmt.Sprintf("partition.%d.rows", shard)).Add(int64(delta))
	var total, max int64
	for i := range pt.Parts {
		v := met.Gauge(fmt.Sprintf("partition.%d.rows", i)).Value()
		total += v
		if v > max {
			max = v
		}
	}
	met.Gauge("partition.skew").Set(skewBP(max, total, len(pt.Parts)))
}

// skewBP is the skew gauge value: how far the fullest shard sits above the
// perfectly even share, in basis points (0 = even, 10000 = one shard holds
// double its share).
func skewBP(max, total int64, parts int) int64 {
	if total <= 0 || parts == 0 {
		return 0
	}
	return (max*int64(parts) - total) * 10000 / total
}

// RefreshStats recomputes the per-partition row gauges (and skew) from the
// shard heaps — called after recovery, when the advisory DML-time counts
// start from zero.
func RefreshStats(db *engine.DB) error {
	met := db.Metrics()
	for _, pt := range db.Catalog().PartTables() {
		var total, max int64
		for i, tid := range pt.Parts {
			h, err := db.HeapOf(tid)
			if err != nil {
				return err
			}
			var n int64
			if err := h.Scan(func(types.RID, []byte) error { n++; return nil }); err != nil {
				return err
			}
			met.Gauge(fmt.Sprintf("partition.%d.rows", i)).Set(n)
			total += n
			if n > max {
				max = n
			}
		}
		met.Gauge("partition.skew").Set(skewBP(max, total, len(pt.Parts)))
	}
	return nil
}

// ShardNames lists the shard table names of a logical table, partition
// order (diagnostics and tests).
func ShardNames(pt *catalog.PartTable) []string {
	out := make([]string, len(pt.Parts))
	for i := range pt.Parts {
		out[i] = catalog.PartShardTableName(pt.Name, i)
	}
	return out
}

// sortRIDs orders a fan-out lookup result deterministically.
func sortRIDs(rids []types.RID) {
	sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
}
