package partition

import (
	"errors"
	"fmt"
	"sync"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/progress"
)

// BuildOptions parameterizes a fan-out build. The embedded core.Options
// are handed to every per-shard builder unchanged.
type BuildOptions struct {
	core.Options
	// Serial runs the shard builds sequentially in partition order instead
	// of one goroutine per shard. The deterministic crash sweep needs the
	// single-goroutine I/O order; real builds want the concurrency.
	Serial bool
}

// Result of a completed fan-out build.
type Result struct {
	Index  catalog.PartIndex
	Shards []*core.Result // partition order
	Stats  core.Stats     // per-shard stats summed
}

// Build creates one logical index over a partitioned table by fanning out
// per-shard builds, each reusing the NSF/SF/offline pipeline verbatim, and
// commits the logical index atomically only when every shard completes:
//
//  1. a redo-only PartMeta record registers the logical descriptor in
//     StateBuilding *before* any shard work, so a crash at any later point
//     finds a restartable logical build (FinishPending);
//  2. the shard builds run (parallel or serial), each feeding the shared
//     progress aggregate and its partition.N.progress gauge;
//  3. for unique indexes a completion sweep merges the shard trees and
//     verifies that no committed key lives on two shards — the only class
//     of duplicate the per-shard builders cannot see (unique.go handles
//     the DML-time races; the sweep catches SF capture-phase leftovers);
//  4. one final PartMeta record flips the logical descriptor to
//     StateComplete — the atomic commit point; readers route through the
//     logical name only from here on.
//
// On any shard failure (including a genuine unique violation) every
// already-built shard index is dropped and the logical descriptor is
// removed, leaving the table as if the build never started.
func Build(db *engine.DB, spec engine.CreateIndexSpec, o BuildOptions) (*Result, error) {
	cat := db.Catalog()
	pt, ok := cat.PartTable(spec.Table)
	if !ok {
		return nil, fmt.Errorf("partition: no partitioned table %q", spec.Table)
	}
	if _, exists := cat.PartIndex(spec.Name); exists {
		return nil, fmt.Errorf("partition: index %q exists", spec.Name)
	}
	pi := catalog.PartIndex{
		Name: spec.Name, Table: spec.Table, Columns: spec.Columns,
		Unique: spec.Unique, Method: spec.Method, State: catalog.StateBuilding,
	}
	if err := logPartMeta(db, catalog.EncodePartIndexMeta(&pi)); err != nil {
		return nil, err
	}
	cat.UpsertPartIndex(&pi)
	registerProgressGroup(db, &pi, &pt)

	n := len(pt.Parts)
	results := make([]*core.Result, n)
	errs := make([]error, n)
	runShard := func(i int) {
		results[i], errs[i] = core.Build(db, shardSpec(spec, i), shardOpts(db, o, spec.Name, i))
		if errs[i] == nil {
			setShardProgressGauge(db, i, 10000)
		}
	}
	if o.Serial {
		for i := 0; i < n; i++ {
			runShard(i)
			if errs[i] != nil {
				break
			}
		}
	} else {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runShard(i)
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			if terr := abandonBuild(db, &pt, &pi); terr != nil {
				return nil, errors.Join(err, terr)
			}
			return nil, err
		}
	}

	if spec.Unique {
		if err := sweepUnique(db, &pt, &pi); err != nil {
			if terr := abandonBuild(db, &pt, &pi); terr != nil {
				return nil, errors.Join(err, terr)
			}
			return nil, err
		}
	}

	pi.State = catalog.StateComplete
	if err := logPartMeta(db, catalog.EncodePartIndexMeta(&pi)); err != nil {
		return nil, err
	}
	cat.UpsertPartIndex(&pi)

	res := &Result{Index: pi, Shards: results}
	for _, sr := range results {
		if sr != nil {
			addStats(&res.Stats, &sr.Stats)
		}
	}
	res.Stats.Method = spec.Method
	return res, nil
}

// shardSpec derives shard i's build spec from the logical one.
func shardSpec(spec engine.CreateIndexSpec, i int) engine.CreateIndexSpec {
	return engine.CreateIndexSpec{
		Name:    catalog.PartShardIndexName(spec.Name, i),
		Table:   catalog.PartShardTableName(spec.Table, i),
		Columns: spec.Columns,
		Unique:  spec.Unique,
		Method:  spec.Method,
	}
}

// setShardProgressGauge publishes one shard's build fraction in basis
// points. The gauges are memory-only, so they cannot perturb the
// deterministic fault schedule.
func setShardProgressGauge(db *engine.DB, i int, basisPoints int64) {
	db.Metrics().Gauge(fmt.Sprintf("partition.%d.progress", i)).Set(basisPoints)
}

// shardOpts wraps the user's checkpoint hook so every committed builder
// checkpoint also refreshes the shard's partition.N.progress gauge; the
// coordinator pins it to 10000 when the shard build completes.
func shardOpts(db *engine.DB, o BuildOptions, logical string, i int) core.Options {
	opts := o.Options
	user := o.OnCheckpoint
	shardIx := catalog.PartShardIndexName(logical, i)
	opts.OnCheckpoint = func(ph engine.IBPhase) error {
		if ix, ok := db.Catalog().Index(shardIx); ok {
			frac := db.ProgressOf(ix.ID).Snapshot().Fraction
			setShardProgressGauge(db, i, int64(frac*10000))
		}
		if user != nil {
			return user(ph)
		}
		return nil
	}
	return opts
}

// registerProgressGroup installs the aggregated logical progress view. The
// closure resolves shard trackers lazily by name, so it is valid before,
// during and after the shard builds; a shard whose index is complete but
// whose in-memory tracker is gone (pre-restart shard) counts as a terminal
// fraction-1 snapshot.
func registerProgressGroup(db *engine.DB, pi *catalog.PartIndex, pt *catalog.PartTable) {
	name, method := pi.Name, pi.Method.String()
	n := len(pt.Parts)
	db.RegisterProgressGroup(name, func() progress.Snapshot {
		snaps := make([]progress.Snapshot, 0, n)
		for i := 0; i < n; i++ {
			shardIx := catalog.PartShardIndexName(name, i)
			var s progress.Snapshot
			if ix, ok := db.Catalog().Index(shardIx); ok {
				if tr := db.ProgressOf(ix.ID); tr != nil {
					s = tr.Snapshot()
				} else if ix.State == catalog.StateComplete {
					s = progress.CompleteSnapshot(shardIx, method)
				} else {
					s.Index = shardIx
				}
			}
			snaps = append(snaps, s)
		}
		return progress.Aggregate(name, method, snaps)
	})
}

// abandonBuild tears down a failed fan-out build: cancel in-flight shard
// builds, drop completed shard indexes, remove the logical descriptor. The
// teardown is idempotent and restartable — if a crash interrupts it, the
// logical descriptor is still StateBuilding and FinishPending simply
// rebuilds the missing shards (and re-detects a genuine unique violation).
// Returns the teardown's own error (nil when it completed).
func abandonBuild(db *engine.DB, pt *catalog.PartTable, pi *catalog.PartIndex) error {
	cat := db.Catalog()
	for i := range pt.Parts {
		name := catalog.PartShardIndexName(pi.Name, i)
		ix, ok := cat.Index(name)
		if !ok {
			continue
		}
		var err error
		if ix.State == catalog.StateBuilding {
			err = core.Cancel(db, name)
		} else {
			err = db.DropIndex(name)
		}
		if err != nil {
			return err
		}
	}
	if err := logPartMeta(db, catalog.EncodePartIndexDropMeta(pi.Name)); err != nil {
		return err
	}
	cat.RemovePartIndex(pi.Name)
	db.DropProgressGroup(pi.Name)
	return nil
}

// sweepUnique is the coordinator's completion sweep: a k-way merge over
// the (now complete) shard trees that fails the build if any committed
// live key appears on more than one shard. Entries are verified under the
// read lock protocol, so a concurrent deleter's uncommitted entry is
// waited out rather than miscounted.
func sweepUnique(db *engine.DB, pt *catalog.PartTable, pi *catalog.PartIndex) error {
	tx := db.Begin()
	defer tx.Rollback()
	curs := make([]*engine.IndexCursor, 0, len(pt.Parts))
	for i := range pt.Parts {
		c, err := db.NewIndexCursorRaw(tx, catalog.PartShardIndexName(pi.Name, i), nil, nil)
		if err != nil {
			return err
		}
		curs = append(curs, c)
	}
	m, err := newMergeCursor(curs)
	if err != nil {
		return err
	}
	var prevKey []byte
	var havePrev bool
	for {
		key, rid, ok, err := m.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if havePrev && string(prevKey) == string(key) {
			return &engine.UniqueViolationError{Index: pi.Name, Key: key, Existing: rid}
		}
		prevKey = append(prevKey[:0], key...)
		havePrev = true
	}
}

// FinishPending completes (or re-abandons) every logical fan-out build the
// last incarnation left in StateBuilding. Callers run it after engine
// recovery and core.ResumeAll: per-shard builds have then already resumed
// through the normal per-index machinery, so what remains is coordinator
// work — rebuild shards whose index never got created (the logical
// descriptor stores the full spec), run the unique completion sweep, and
// log the logical completion. Idempotent; a crash anywhere inside simply
// leaves the descriptor StateBuilding for the next incarnation.
func FinishPending(db *engine.DB, o BuildOptions) error {
	cat := db.Catalog()
	for _, pi := range cat.PartIndexes() {
		pt, ok := cat.PartTable(pi.Table)
		if !ok {
			// Torn registration (table meta never committed): drop the
			// orphan descriptor.
			if err := logPartMeta(db, catalog.EncodePartIndexDropMeta(pi.Name)); err != nil {
				return err
			}
			cat.RemovePartIndex(pi.Name)
			continue
		}
		registerProgressGroup(db, &pi, &pt)
		if pi.State != catalog.StateBuilding {
			continue
		}
		spec := engine.CreateIndexSpec{
			Name: pi.Name, Table: pi.Table, Columns: pi.Columns,
			Unique: pi.Unique, Method: pi.Method,
		}
		for i := range pt.Parts {
			name := catalog.PartShardIndexName(pi.Name, i)
			ix, ok := cat.Index(name)
			if ok && ix.State == catalog.StateComplete {
				continue
			}
			if ok && ix.State == catalog.StateBuilding {
				// Caller skipped ResumeAll for this index; resume it here.
				pbs, err := db.PendingBuilds()
				if err != nil {
					return err
				}
				resumed := false
				for _, pb := range pbs {
					if pb.Index.Name == name {
						if _, err := core.Resume(db, pb, o.Options); err != nil {
							return err
						}
						resumed = true
						break
					}
				}
				if resumed {
					continue
				}
				return fmt.Errorf("partition: shard index %q building but not resumable", name)
			}
			// Shard never started (crash between logical create and this
			// shard's descriptor): build it from the stored spec.
			if _, err := core.Build(db, shardSpec(spec, i), shardOpts(db, o, pi.Name, i)); err != nil {
				if terr := abandonBuild(db, &pt, &pi); terr != nil {
					return errors.Join(err, terr)
				}
				return err
			}
		}
		if pi.Unique {
			if err := sweepUnique(db, &pt, &pi); err != nil {
				var uv *engine.UniqueViolationError
				if !errors.As(err, &uv) {
					return err
				}
				// Genuine duplicate across shards: the logical build can
				// never succeed — tear it down and move on, matching the
				// serial build's "abnormally terminated" semantics.
				if terr := abandonBuild(db, &pt, &pi); terr != nil {
					return terr
				}
				continue
			}
		}
		pi.State = catalog.StateComplete
		if err := logPartMeta(db, catalog.EncodePartIndexMeta(&pi)); err != nil {
			return err
		}
		cat.UpsertPartIndex(&pi)
		for i := range pt.Parts {
			setShardProgressGauge(db, i, 10000)
		}
	}
	return nil
}

// Drop removes a complete logical index: every shard index, then the
// logical descriptor.
func Drop(db *engine.DB, name string) error {
	cat := db.Catalog()
	pi, ok := cat.PartIndex(name)
	if !ok {
		return fmt.Errorf("partition: no index %q", name)
	}
	pt, ok := cat.PartTable(pi.Table)
	if ok {
		for i := range pt.Parts {
			shard := catalog.PartShardIndexName(name, i)
			if _, exists := cat.Index(shard); exists {
				if err := db.DropIndex(shard); err != nil {
					return err
				}
			}
		}
	}
	if err := logPartMeta(db, catalog.EncodePartIndexDropMeta(name)); err != nil {
		return err
	}
	cat.RemovePartIndex(name)
	db.DropProgressGroup(name)
	return nil
}

// Progress returns the aggregated logical snapshot for a fan-out index.
func Progress(db *engine.DB, name string) (progress.Snapshot, bool) {
	pi, ok := db.Catalog().PartIndex(name)
	if !ok {
		return progress.Snapshot{}, false
	}
	pt, ok := db.Catalog().PartTable(pi.Table)
	if !ok {
		return progress.Snapshot{}, false
	}
	registerProgressGroup(db, &pi, &pt)
	snaps := make([]progress.Snapshot, 0, len(pt.Parts))
	for i := range pt.Parts {
		shardIx := catalog.PartShardIndexName(pi.Name, i)
		var s progress.Snapshot
		if ix, ok := db.Catalog().Index(shardIx); ok {
			if tr := db.ProgressOf(ix.ID); tr != nil {
				s = tr.Snapshot()
			} else if ix.State == catalog.StateComplete {
				s = progress.CompleteSnapshot(shardIx, pi.Method.String())
			}
		}
		snaps = append(snaps, s)
	}
	return progress.Aggregate(pi.Name, pi.Method.String(), snaps), true
}

// addStats accumulates one shard's build stats into the aggregate.
func addStats(dst, src *core.Stats) {
	dst.PagesScanned += src.PagesScanned
	dst.KeysExtracted += src.KeysExtracted
	dst.KeysInserted += src.KeysInserted
	dst.KeysSkipped += src.KeysSkipped
	dst.SideFileLen += src.SideFileLen
	dst.SideFileApplied += src.SideFileApplied
	dst.Checkpoints += src.Checkpoints
	dst.Runs += src.Runs
	dst.BytesSpilled += src.BytesSpilled
	dst.ScanSort += src.ScanSort
	dst.Insert += src.Insert
	dst.SideFile += src.SideFile
	dst.QuiesceWait += src.QuiesceWait
	dst.GC.Collected += src.GC.Collected
	dst.GC.Skipped += src.GC.Skipped
}
