package partition

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/lock"
	"onlineindex/internal/types"
	"onlineindex/internal/workload"
)

func testRow(id int64) engine.Row {
	return workload.RowOf(id, 8)
}

func openDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Config{PoolSize: 256})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// rangeBounds splits ids 0..n-1 into parts roughly even ranges.
func rangeBounds(n int64, parts int) []keyenc.Value {
	var out []keyenc.Value
	for i := 1; i < parts; i++ {
		out = append(out, keyenc.Int64(n*int64(i)/int64(parts)))
	}
	return out
}

// collectKeys scans an index (through the router for logical names) and
// returns the ordered live key list.
func collectKeys(t *testing.T, r *Router, index string) []string {
	t.Helper()
	var keys []string
	err := r.Scan(nil, index, nil, nil, func(key []byte, rid types.RID) bool {
		keys = append(keys, string(key))
		return true
	})
	if err != nil {
		t.Fatalf("scan %s: %v", index, err)
	}
	return keys
}

// TestDifferentialEntryIdentical checks the core acceptance criterion: a
// P-partition fan-out build yields exactly the same ordered live key
// sequence as the serial single-heap build, for all three methods, unique
// and non-unique, under both schemes.
func TestDifferentialEntryIdentical(t *testing.T) {
	const rows = 300
	methods := []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF}
	opts := core.Options{SortMemory: 64}

	// Serial reference: one plain heap, one index per (method, unique).
	serial := openDB(t)
	sr := NewRouter(serial)
	if _, err := serial.CreateTable("t", workload.Schema()); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := workload.Populate(serial, "t", rows, 8); err != nil {
		t.Fatalf("populate: %v", err)
	}
	ref := make(map[string][]string)
	for _, m := range methods {
		for _, unique := range []bool{false, true} {
			name := fmt.Sprintf("ix_%s_%v", m, unique)
			if _, err := core.Build(serial, engine.CreateIndexSpec{
				Name: name, Table: "t", Columns: []string{"key"}, Unique: unique, Method: m,
			}, opts); err != nil {
				t.Fatalf("serial build %s: %v", name, err)
			}
			ref[name] = collectKeys(t, sr, name)
			if len(ref[name]) != rows {
				t.Fatalf("serial %s: %d keys, want %d", name, len(ref[name]), rows)
			}
		}
	}

	for _, parts := range []int{2, 4} {
		for _, scheme := range []catalog.PartScheme{catalog.SchemeHash, catalog.SchemeRange} {
			t.Run(fmt.Sprintf("P%d_%s", parts, scheme), func(t *testing.T) {
				db := openDB(t)
				r := NewRouter(db)
				spec := Spec{Partitions: parts, Scheme: scheme, KeyColumn: "id"}
				if scheme == catalog.SchemeRange {
					spec.Bounds = rangeBounds(rows, parts)
				}
				pt, err := CreateTable(db, "t", workload.Schema(), spec)
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				if _, err := workload.Populate(r, "t", rows, 8); err != nil {
					t.Fatalf("populate: %v", err)
				}
				// Every shard must have received some rows for the test to
				// mean anything.
				for i := range pt.Parts {
					n := 0
					if err := db.TableScan(catalog.PartShardTableName("t", i), func(types.RID, engine.Row) error {
						n++
						return nil
					}); err != nil {
						t.Fatalf("shard scan: %v", err)
					}
					if n == 0 {
						t.Fatalf("shard %d empty", i)
					}
				}
				for _, m := range methods {
					for _, unique := range []bool{false, true} {
						name := fmt.Sprintf("ix_%s_%v", m, unique)
						res, err := Build(db, engine.CreateIndexSpec{
							Name: name, Table: "t", Columns: []string{"key"},
							Unique: unique, Method: m,
						}, BuildOptions{Options: opts})
						if err != nil {
							t.Fatalf("fan-out build %s: %v", name, err)
						}
						if res.Index.State != catalog.StateComplete {
							t.Fatalf("%s not complete", name)
						}
						if got, want := len(res.Shards), parts; got != want {
							t.Fatalf("%s: %d shard results, want %d", name, got, want)
						}
						got := collectKeys(t, r, name)
						want := ref[name]
						if len(got) != len(want) {
							t.Fatalf("%s: %d keys, want %d", name, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s: key %d = %q, want %q", name, i, got[i], want[i])
							}
						}
						if err := r.CheckIndexConsistency(name); err != nil {
							t.Fatalf("%s consistency: %v", name, err)
						}
						if snap, ok := Progress(db, name); !ok || !snap.Complete || snap.Fraction != 1 {
							t.Fatalf("%s progress: ok=%v %+v", name, ok, snap)
						}
					}
				}
			})
		}
	}
}

// TestRouting checks point lookups route to one shard, fan-out lookups hit
// all shards, and DML lands where reads find it — including a
// partition-key update that migrates the row across shards.
func TestRouting(t *testing.T) {
	db := openDB(t)
	r := NewRouter(db)
	if _, err := CreateTable(db, "t", workload.Schema(), Spec{
		Partitions: 4, Scheme: catalog.SchemeRange, KeyColumn: "id",
		Bounds: rangeBounds(400, 4),
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	rids, err := workload.Populate(r, "t", 400, 8)
	if err != nil {
		t.Fatalf("populate: %v", err)
	}
	if _, err := Build(db, engine.CreateIndexSpec{
		Name: "by_id", Table: "t", Columns: []string{"id"}, Unique: true, Method: catalog.MethodOffline,
	}, BuildOptions{}); err != nil {
		t.Fatalf("build by_id: %v", err)
	}
	if _, err := Build(db, engine.CreateIndexSpec{
		Name: "by_key", Table: "t", Columns: []string{"key"}, Method: catalog.MethodSF,
	}, BuildOptions{}); err != nil {
		t.Fatalf("build by_key: %v", err)
	}

	met := db.Metrics()
	routeBefore := met.Counter("partition.route_hits").Value()
	tx := db.Begin()
	got, err := r.Lookup(tx, "by_id", keyenc.Int64(123))
	if err != nil || len(got) != 1 {
		t.Fatalf("point lookup: %v %v", got, err)
	}
	if met.Counter("partition.route_hits").Value() <= routeBefore {
		t.Fatalf("point lookup did not count as route hit")
	}
	fanBefore := met.Counter("partition.fanout_scans").Value()
	if _, err := r.Lookup(tx, "by_key", keyenc.String(workload.KeyOf(123))); err != nil {
		t.Fatalf("fanout lookup: %v", err)
	}
	if met.Counter("partition.fanout_scans").Value() <= fanBefore {
		t.Fatalf("non-key lookup did not fan out")
	}
	// Ordered range scan over the partition key: ascending ids, pruned.
	var ids []int64
	err = r.Scan(tx, "by_id", []keyenc.Value{keyenc.Int64(90)}, []keyenc.Value{keyenc.Int64(210)},
		func(key []byte, rid types.RID) bool {
			v, _, err := keyenc.DecodeOne(key)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			ids = append(ids, v.I)
			return true
		})
	if err != nil {
		t.Fatalf("range scan: %v", err)
	}
	if len(ids) != 121 || ids[0] != 90 || ids[len(ids)-1] != 210 {
		t.Fatalf("range scan got %d ids [%d..%d]", len(ids), ids[0], ids[len(ids)-1])
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("range scan out of order at %d", i)
		}
	}
	tx.Commit()

	// Cross-shard migration: update row 10 to id 399 (last shard).
	tx = db.Begin()
	newRID, err := r.Update(tx, "t", rids[10], engine.Row{
		keyenc.Int64(1000), keyenc.String("migrated"), keyenc.String("f"),
	})
	if err != nil {
		t.Fatalf("migrating update: %v", err)
	}
	if newRID.PageID.File == rids[10].PageID.File {
		t.Fatalf("row did not move shards")
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	tx = db.Begin()
	if got, err := r.Lookup(tx, "by_id", keyenc.Int64(1000)); err != nil || len(got) != 1 || got[0] != newRID {
		t.Fatalf("lookup after migration: %v %v", got, err)
	}
	if got, err := r.Lookup(tx, "by_id", keyenc.Int64(10)); err != nil || len(got) != 0 {
		t.Fatalf("old id still visible: %v %v", got, err)
	}
	tx.Commit()
	if err := r.CheckIndexConsistency("by_id"); err != nil {
		t.Fatalf("consistency after migration: %v", err)
	}
}

// shardOf computes the hash-routing target for an id, mirroring the router.
func shardOf(pt *catalog.PartTable, id int64) int {
	return routeKey(pt, keyenc.Append(nil, keyenc.Int64(id)))
}

// TestCrossPartitionUniqueOneWinner is the -race stress test: pairs of
// transactions concurrently insert rows with the same unique key routed to
// different shards while a unique NSF build is live. Exactly one of each
// pair must commit; the loser must fail with a unique violation or as a
// deadlock victim and roll back cleanly; and the finished build must pass
// the cross-shard consistency oracle.
func TestCrossPartitionUniqueOneWinner(t *testing.T) {
	const parts = 4
	db := openDB(t)
	r := NewRouter(db)
	pt, err := CreateTable(db, "t", workload.Schema(), Spec{
		Partitions: parts, Scheme: catalog.SchemeHash, KeyColumn: "id",
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := workload.Populate(r, "t", 240, 8); err != nil {
		t.Fatalf("populate: %v", err)
	}

	// Pre-pick id pairs that hash to different shards.
	type pair struct{ a, b int64 }
	var pairs []pair
	next := int64(1_000_000)
	for len(pairs) < 8 {
		a := next
		next++
		var b int64
		for {
			b = next
			next++
			if shardOf(&pt, b) != shardOf(&pt, a) {
				break
			}
		}
		pairs = append(pairs, pair{a, b})
	}

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	buildErr := make(chan error, 1)
	go func() {
		_, err := Build(db, engine.CreateIndexSpec{
			Name: "by_key", Table: "t", Columns: []string{"key"},
			Unique: true, Method: catalog.MethodNSF,
		}, BuildOptions{Options: core.Options{
			SortMemory: 64, CheckpointKeys: 16,
			OnCheckpoint: func(engine.IBPhase) error {
				once.Do(func() {
					close(started)
					<-release // hold the build open while the races run
				})
				return nil
			},
		}})
		buildErr <- err
	}()
	<-started

	winners := make([]int, len(pairs))
	var wg sync.WaitGroup
	for pi, p := range pairs {
		dupKey := fmt.Sprintf("dup-%03d", pi)
		var wins sync.Map
		var pwg sync.WaitGroup
		for _, id := range []int64{p.a, p.b} {
			pwg.Add(1)
			wg.Add(1)
			go func(id int64) {
				defer pwg.Done()
				defer wg.Done()
				tx := db.Begin()
				_, err := r.Insert(tx, "t", engine.Row{
					keyenc.Int64(id), keyenc.String(dupKey), keyenc.String("f"),
				})
				if err != nil {
					tx.Rollback()
					var uv *engine.UniqueViolationError
					if !errors.As(err, &uv) && !errors.Is(err, lock.ErrDeadlock) {
						t.Errorf("id %d: unexpected error %v", id, err)
					}
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("id %d: commit: %v", id, err)
					return
				}
				wins.Store(id, true)
			}(id)
		}
		pwg.Wait()
		n := 0
		wins.Range(func(any, any) bool { n++; return true })
		winners[pi] = n
	}
	wg.Wait()
	close(release)
	if err := <-buildErr; err != nil {
		t.Fatalf("build: %v", err)
	}

	for pi, n := range winners {
		if n != 1 {
			t.Fatalf("pair %d: %d winners, want exactly 1", pi, n)
		}
	}
	if err := r.CheckIndexConsistency("by_key"); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	tx := db.Begin()
	defer tx.Rollback()
	for pi := range pairs {
		rids, err := r.Lookup(tx, "by_key", keyenc.String(fmt.Sprintf("dup-%03d", pi)))
		if err != nil {
			t.Fatalf("lookup dup-%03d: %v", pi, err)
		}
		if len(rids) != 1 {
			t.Fatalf("dup-%03d: %d rids, want 1", pi, len(rids))
		}
	}
}

// TestUniqueSweepCatchesSFCaptureDuplicate: duplicates that both commit
// while every shard index is still in the SF capture phase (so the probe
// rightly stays silent) must fail the build at the coordinator's
// completion sweep, with full teardown.
func TestUniqueSweepCatchesSFCaptureDuplicate(t *testing.T) {
	db := openDB(t)
	r := NewRouter(db)
	pt, err := CreateTable(db, "t", workload.Schema(), Spec{
		Partitions: 2, Scheme: catalog.SchemeHash, KeyColumn: "id",
	})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Two rows, same unique key, different shards, both committed before
	// any build exists.
	a, b := int64(1), int64(2)
	for shardOf(&pt, b) == shardOf(&pt, a) {
		b++
	}
	tx := db.Begin()
	for _, id := range []int64{a, b} {
		if _, err := r.Insert(tx, "t", engine.Row{
			keyenc.Int64(id), keyenc.String("samekey"), keyenc.String("f"),
		}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	_, err = Build(db, engine.CreateIndexSpec{
		Name: "by_key", Table: "t", Columns: []string{"key"},
		Unique: true, Method: catalog.MethodSF,
	}, BuildOptions{})
	var uv *engine.UniqueViolationError
	if !errors.As(err, &uv) {
		t.Fatalf("build error = %v, want unique violation", err)
	}
	if _, ok := db.Catalog().PartIndex("by_key"); ok {
		t.Fatalf("failed build left logical descriptor behind")
	}
	for i := 0; i < 2; i++ {
		if _, ok := db.Catalog().Index(catalog.PartShardIndexName("by_key", i)); ok {
			t.Fatalf("failed build left shard index %d behind", i)
		}
	}
}

// TestPartitionRecoverRoundTrip: the registry and routed data survive a
// crash, both via the log (no checkpoint) and via a snapshot (checkpoint).
func TestPartitionRecoverRoundTrip(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		t.Run(fmt.Sprintf("checkpoint=%v", checkpoint), func(t *testing.T) {
			db := openDB(t)
			r := NewRouter(db)
			if _, err := CreateTable(db, "t", workload.Schema(), Spec{
				Partitions: 3, Scheme: catalog.SchemeHash, KeyColumn: "id",
			}); err != nil {
				t.Fatalf("create: %v", err)
			}
			if _, err := workload.Populate(r, "t", 120, 8); err != nil {
				t.Fatalf("populate: %v", err)
			}
			if _, err := Build(db, engine.CreateIndexSpec{
				Name: "by_key", Table: "t", Columns: []string{"key"},
				Unique: true, Method: catalog.MethodNSF,
			}, BuildOptions{Options: core.Options{SortMemory: 64}}); err != nil {
				t.Fatalf("build: %v", err)
			}
			if checkpoint {
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
			fs := db.Crash()
			db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 256})
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer db2.Close()
			if err := FinishPending(db2, BuildOptions{}); err != nil {
				t.Fatalf("finish pending: %v", err)
			}
			if err := RefreshStats(db2); err != nil {
				t.Fatalf("refresh stats: %v", err)
			}
			pt2, ok := db2.Catalog().PartTable("t")
			if !ok || len(pt2.Parts) != 3 {
				t.Fatalf("registry lost: %+v %v", pt2, ok)
			}
			pi2, ok := db2.Catalog().PartIndex("by_key")
			if !ok || pi2.State != catalog.StateComplete {
				t.Fatalf("logical index lost: %+v %v", pi2, ok)
			}
			r2 := NewRouter(db2)
			tx := db2.Begin()
			defer tx.Rollback()
			for _, id := range []int64{0, 17, 119} {
				rids, err := r2.Lookup(tx, "by_key", keyenc.String(workload.KeyOf(id)))
				if err != nil || len(rids) != 1 {
					t.Fatalf("lookup id %d after recovery: %v %v", id, rids, err)
				}
			}
			if err := r2.CheckIndexConsistency("by_key"); err != nil {
				t.Fatalf("consistency after recovery: %v", err)
			}
			var total int64
			for i := 0; i < 3; i++ {
				total += db2.Metrics().Gauge(fmt.Sprintf("partition.%d.rows", i)).Value()
			}
			if total != 120 {
				t.Fatalf("row gauges sum %d, want 120", total)
			}
		})
	}
}
