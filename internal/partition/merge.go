package partition

import (
	"bytes"

	"onlineindex/internal/engine"
	"onlineindex/internal/types"
)

// mergeCursor interleaves N per-shard index cursor streams back into one
// globally (key, RID)-ordered stream. Each input is already sorted (btree
// cursor order), so this is a plain k-way merge; the composition point is
// engine.IndexCursor, which applies the read lock protocol per entry, so
// merged reads carry exactly the same consistency guarantees as a
// single-shard IndexScan.
type mergeCursor struct {
	curs  []*engine.IndexCursor
	heads []mergeHead
}

type mergeHead struct {
	key []byte
	rid types.RID
	ok  bool
}

// newMergeCursor primes every input stream.
func newMergeCursor(curs []*engine.IndexCursor) (*mergeCursor, error) {
	m := &mergeCursor{curs: curs, heads: make([]mergeHead, len(curs))}
	for i := range curs {
		if err := m.advance(i); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// advance pulls the next entry of stream i into its head slot. Cursor keys
// alias internal storage only until the next Next call, so the head keeps
// a copy.
func (m *mergeCursor) advance(i int) error {
	key, rid, ok, err := m.curs[i].Next()
	if err != nil {
		return err
	}
	if !ok {
		m.heads[i] = mergeHead{}
		return nil
	}
	m.heads[i] = mergeHead{key: append(m.heads[i].key[:0], key...), rid: rid, ok: true}
	return nil
}

// Next returns the globally smallest (key, RID) across the live heads.
func (m *mergeCursor) Next() (key []byte, rid types.RID, ok bool, err error) {
	best := -1
	for i, h := range m.heads {
		if !h.ok {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		if c := bytes.Compare(h.key, m.heads[best].key); c < 0 || (c == 0 && h.rid.Less(m.heads[best].rid)) {
			best = i
		}
	}
	if best < 0 {
		return nil, types.RID{}, false, nil
	}
	key = append([]byte(nil), m.heads[best].key...)
	rid = m.heads[best].rid
	if err := m.advance(best); err != nil {
		return nil, types.RID{}, false, err
	}
	return key, rid, true, nil
}
