// Package rm holds the small contracts shared by the resource managers
// (heap, btree, sidefile): how operations log under a transaction, and how
// pages are fetched-and-latched. It exists so the resource managers do not
// import the transaction manager (which imports them back for rollback).
package rm

import (
	"onlineindex/internal/buffer"
	"onlineindex/internal/latch"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// TxnLogger is the face a transaction (or the index builder acting as a
// transaction) shows to resource managers. Log fills in the TxnID and
// PrevLSN chain and returns the assigned LSN; LogCLR additionally sets the
// record's UndoNextLSN and CLR flag.
type TxnLogger interface {
	// ID returns the transaction ID.
	ID() types.TxnID
	// Log appends r to the WAL under this transaction.
	Log(r *wal.Record) (types.LSN, error)
	// LogCLR appends a compensation record whose UndoNextLSN is undoNext.
	LogCLR(r *wal.Record, undoNext types.LSN) (types.LSN, error)
}

// SimpleLogger is a minimal TxnLogger that chains records for one
// transaction ID directly on a log. The transaction manager provides the
// full-featured implementation; SimpleLogger serves system activities that
// log outside any user transaction and the resource-manager unit tests.
type SimpleLogger struct {
	L    *wal.Log
	Txn  types.TxnID
	Last types.LSN
}

// ID implements TxnLogger.
func (s *SimpleLogger) ID() types.TxnID { return s.Txn }

// Log implements TxnLogger.
func (s *SimpleLogger) Log(r *wal.Record) (types.LSN, error) {
	r.TxnID = s.Txn
	r.PrevLSN = s.Last
	lsn, err := s.L.Append(r)
	if err != nil {
		return types.NilLSN, err
	}
	s.Last = lsn
	return lsn, nil
}

// LogCLR implements TxnLogger.
func (s *SimpleLogger) LogCLR(r *wal.Record, undoNext types.LSN) (types.LSN, error) {
	r.Flags |= wal.FlagCLR
	r.UndoNext = undoNext
	return s.Log(r)
}

// WithPage fetches pid, holds its latch in the given mode for the duration
// of fn, and unpins it afterwards.
func WithPage(pool *buffer.Pool, pid types.PageID, mode latch.Mode, fn func(f *buffer.Frame) error) error {
	f, err := pool.Fetch(pid)
	if err != nil {
		return err
	}
	f.Latch.Acquire(mode)
	err = fn(f)
	f.Latch.Release(mode)
	pool.Unpin(f)
	return err
}
