// Package admin serves a live, read-only JSON view of a running engine:
// the metrics registry snapshot and every registered build's progress. It is
// the observability surface ISSUE'd for watching an online index build from
// outside the process:
//
//	idxbuild -admin 127.0.0.1:7070 &
//	watch -n1 'curl -s http://127.0.0.1:7070/ | head -40'
//
// Routes (all GET, all JSON):
//
//	/          combined view: {"metrics": ..., "builds": [...], "side_file_backlog": N}
//	/metrics   the metrics.Snapshot alone
//	/progress  the []progress.Snapshot alone
//
// The handler only reads atomic counters and tracker snapshots — it never
// takes engine latches or locks, so polling cannot stall a build.
package admin

import (
	"encoding/json"
	"net"
	"net/http"

	"onlineindex/internal/engine"
	"onlineindex/internal/metrics"
	"onlineindex/internal/progress"
)

// View is the combined admin snapshot served at "/".
type View struct {
	Metrics metrics.Snapshot    `json:"metrics"`
	Builds  []progress.Snapshot `json:"builds"`
	// SideFileBacklog is the number of captured side-file entries not yet
	// applied by any builder (sidefile.entries minus sidefile.applied,
	// clamped at zero). Zero once every SF build has caught up.
	SideFileBacklog int64 `json:"side_file_backlog"`
}

// Handler serves the admin routes for one engine.
type Handler struct {
	db *engine.DB
}

// NewHandler returns the admin handler for db.
func NewHandler(db *engine.DB) *Handler { return &Handler{db: db} }

// Snapshot assembles the combined view (also usable without HTTP).
func (h *Handler) Snapshot() View {
	ms := h.db.Metrics().Snapshot()
	v := View{
		Metrics: ms,
		Builds:  h.db.ProgressSnapshots(),
	}
	entries := ms.Gauge("sidefile.entries")
	applied := int64(ms.Counter("sidefile.applied")) //nolint:gosec // counter < 2^62 in practice
	if backlog := entries - applied; backlog > 0 {
		v.SideFileBacklog = backlog
	}
	if v.Builds == nil {
		v.Builds = []progress.Snapshot{}
	}
	return v
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var body any
	switch r.URL.Path {
	case "/", "":
		body = h.Snapshot()
	case "/metrics":
		body = h.db.Metrics().Snapshot()
	case "/progress":
		snaps := h.db.ProgressSnapshots()
		if snaps == nil {
			snaps = []progress.Snapshot{}
		}
		body = snaps
	default:
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body) //nolint:errcheck // client went away
}

// Server is a running admin endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts listening on addr (e.g. "127.0.0.1:0") and serves the admin
// routes in a background goroutine until Close.
func Serve(addr string, db *engine.DB) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(db)}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (resolves ":0" to the actual port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the listener and the server.
func (s *Server) Close() error { return s.srv.Close() }
