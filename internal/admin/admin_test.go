package admin_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"onlineindex/internal/admin"
	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/partition"
	"onlineindex/internal/progress"
	"onlineindex/internal/workload"
)

// TestAdminSmoke is the in-process half of the CI admin-smoke step: it runs
// an SF build with concurrent updates while polling the admin endpoint over
// real HTTP, and asserts the terminal snapshot reports fraction exactly 1.0
// with zero side-file backlog.
func TestAdminSmoke(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateTable("orders", workload.Schema()); err != nil {
		t.Fatal(err)
	}
	rids, err := workload.Populate(db, "orders", 3000, 24)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := admin.Serve("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	runner := workload.NewRunner(db, "orders", rids, 2, workload.DefaultMix)
	runner.Start()
	buildErr := make(chan error, 1)
	// The free-running updaters make the scenario realistic but don't
	// guarantee any DML lands inside the build window on a fast or loaded
	// machine; one committed insert from the first load-phase checkpoint
	// (the sweep's deterministic-DML mechanism) pins the sidefile.appends
	// assertion below. It must wait for the load phase: during the scan a
	// fresh insert lands ahead of Current-RID and is picked up by the scan
	// itself, with no side-file entry.
	var sideDML sync.Once
	go func() {
		_, err := core.Build(db, engine.CreateIndexSpec{
			Name: "orders_key", Table: "orders", Columns: []string{"key"},
			Method: catalog.MethodSF,
		}, core.Options{CheckpointPages: 16, CheckpointKeys: 500,
			OnCheckpoint: func(phase engine.IBPhase) error {
				if phase != engine.IBPhaseLoad {
					return nil
				}
				var err error
				sideDML.Do(func() {
					tx := db.Begin()
					if _, err = db.Insert(tx, "orders", workload.RowOf(1_000_001, 24)); err != nil {
						return
					}
					err = tx.Commit()
				})
				return err
			}})
		buildErr <- err
	}()

	// Poll the live endpoint while the build runs; fractions over one poller's
	// lifetime must never decrease (the tracker clamps them monotone).
	var lastFrac float64
	var final admin.View
	deadline := time.After(30 * time.Second)
	for {
		v := getView(t, srv.URL()+"/")
		if len(v.Builds) > 0 {
			b := v.Builds[0]
			if b.Fraction+1e-9 < lastFrac {
				t.Fatalf("fraction went backwards: %.6f -> %.6f", lastFrac, b.Fraction)
			}
			lastFrac = b.Fraction
			if b.Complete {
				final = v
				break
			}
		}
		select {
		case <-deadline:
			t.Fatalf("build did not complete; last fraction %.4f", lastFrac)
		case <-time.After(5 * time.Millisecond):
		}
	}
	runner.Stop()
	if err := <-buildErr; err != nil {
		t.Fatalf("build: %v", err)
	}

	// Terminal view: the build is done, so its fraction is exactly 1 and the
	// side-file has been fully applied.
	final = getView(t, srv.URL()+"/")
	if len(final.Builds) != 1 {
		t.Fatalf("want 1 build in final view, got %d", len(final.Builds))
	}
	b := final.Builds[0]
	if !b.Complete || b.Fraction != 1.0 {
		t.Fatalf("final snapshot not terminal: complete=%v fraction=%v", b.Complete, b.Fraction)
	}
	if final.SideFileBacklog != 0 {
		t.Fatalf("side-file backlog %d after completion, want 0", final.SideFileBacklog)
	}
	if b.Regressions != 0 {
		t.Fatalf("progress regressions reported: %d", b.Regressions)
	}

	// The sub-routes serve the same data standalone.
	var snaps []json.RawMessage
	getJSON(t, srv.URL()+"/progress", &snaps)
	if len(snaps) != 1 {
		t.Fatalf("/progress: want 1 snapshot, got %d", len(snaps))
	}
	var ms struct {
		Counters map[string]uint64 `json:"counters"`
	}
	getJSON(t, srv.URL()+"/metrics", &ms)
	if ms.Counters["buffer.fetches"] == 0 {
		t.Fatal("/metrics: expected nonzero buffer.fetches")
	}
	if ms.Counters["sidefile.appends"] == 0 {
		t.Fatal("/metrics: expected nonzero sidefile.appends under concurrent DML")
	}
}

// TestAdminPartitionProgress: a fan-out build on a partitioned table must
// surface its aggregated logical fraction on /progress (alongside the
// per-shard trackers) and its routing and per-shard gauges on /metrics.
func TestAdminPartitionProgress(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := partition.CreateTable(db, "orders", workload.Schema(), partition.Spec{
		Partitions: 2, Scheme: catalog.SchemeHash, KeyColumn: "id",
	}); err != nil {
		t.Fatal(err)
	}
	r := partition.NewRouter(db)
	if _, err := workload.Populate(r, "orders", 2000, 24); err != nil {
		t.Fatal(err)
	}

	srv, err := admin.Serve("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	findLogical := func(v admin.View) (progress.Snapshot, bool) {
		for _, b := range v.Builds {
			if b.Index == "orders_key" {
				return b, true
			}
		}
		return progress.Snapshot{}, false
	}

	// Mid-build probe from a checkpoint: the logical aggregate must already
	// be visible, incomplete, with a fraction strictly between 0 and 1 once
	// shard 0 has checkpointed (Serial mode: shard 0 runs to completion
	// before shard 1 starts, so the equal-weight mean is at most ~0.5 plus
	// shard 0's contribution — what matters here is presence and bounds).
	var probed sync.Once
	var probeErr error
	if _, err := partition.Build(db, engine.CreateIndexSpec{
		Name: "orders_key", Table: "orders", Columns: []string{"key"}, Method: catalog.MethodSF,
	}, partition.BuildOptions{Serial: true, Options: core.Options{
		CheckpointPages: 4, CheckpointKeys: 200,
		OnCheckpoint: func(engine.IBPhase) error {
			probed.Do(func() {
				v := getView(t, srv.URL()+"/")
				b, ok := findLogical(v)
				if !ok {
					probeErr = fmt.Errorf("mid-build /progress has no logical aggregate: %+v", v.Builds)
					return
				}
				if b.Complete || b.Fraction <= 0 || b.Fraction >= 1 {
					probeErr = fmt.Errorf("mid-build aggregate complete=%v fraction=%v", b.Complete, b.Fraction)
				}
			})
			return nil
		},
	}}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if probeErr != nil {
		t.Fatal(probeErr)
	}

	final, ok := findLogical(getView(t, srv.URL()+"/"))
	if !ok {
		t.Fatal("final /progress lost the logical aggregate")
	}
	if !final.Complete || final.Fraction != 1 {
		t.Fatalf("final aggregate not terminal: complete=%v fraction=%v", final.Complete, final.Fraction)
	}

	var ms struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	getJSON(t, srv.URL()+"/metrics", &ms)
	if ms.Counters["partition.route_hits"] == 0 {
		t.Fatal("/metrics: expected nonzero partition.route_hits after routed inserts")
	}
	for i := 0; i < 2; i++ {
		if g := ms.Gauges[fmt.Sprintf("partition.%d.progress", i)]; g != 10000 {
			t.Fatalf("/metrics: partition.%d.progress = %d basis points, want 10000", i, g)
		}
		if ms.Gauges[fmt.Sprintf("partition.%d.rows", i)] == 0 {
			t.Fatalf("/metrics: partition.%d.rows is zero", i)
		}
	}
	if _, ok := ms.Gauges["partition.skew"]; !ok {
		t.Fatal("/metrics: partition.skew gauge missing")
	}
}

func getView(t *testing.T, url string) admin.View {
	t.Helper()
	var v admin.View
	getJSON(t, url, &v)
	return v
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
