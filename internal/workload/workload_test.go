package workload

import (
	"testing"
	"time"

	"onlineindex/internal/engine"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

func setup(t *testing.T, rows int) (*engine.DB, []types.RID) {
	t.Helper()
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orders", Schema()); err != nil {
		t.Fatal(err)
	}
	rids, err := Populate(db, "orders", rows, 16)
	if err != nil {
		t.Fatal(err)
	}
	return db, rids
}

func TestPopulateDeterministic(t *testing.T) {
	db, rids := setup(t, 200)
	if len(rids) != 200 {
		t.Fatalf("rids = %d", len(rids))
	}
	count := 0
	err := db.TableScan("orders", func(rid types.RID, row engine.Row) error {
		count++
		if len(row) != 3 {
			t.Fatalf("row arity %d", len(row))
		}
		return nil
	})
	if err != nil || count != 200 {
		t.Fatalf("scan: %d rows, %v", count, err)
	}
	if KeyOf(5) != KeyOf(5) || KeyOf(5) == KeyOf(6) {
		t.Fatal("KeyOf not deterministic/distinct")
	}
}

func TestRunnerRunsAndStops(t *testing.T) {
	db, rids := setup(t, 500)
	r := NewRunner(db, "orders", rids, 3, DefaultMix)
	r.Start()
	time.Sleep(150 * time.Millisecond)
	st := r.Stop()
	if errs := r.Errs(); len(errs) > 0 {
		t.Fatalf("workload errors: %v", errs)
	}
	if st.Commits == 0 || st.Ops == 0 {
		t.Fatalf("no work done: %+v", st)
	}
	if st.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if tl := r.Timeline(); len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	// The table is still consistent enough to scan.
	count := 0
	if err := db.TableScan("orders", func(types.RID, engine.Row) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("table emptied unexpectedly")
	}
}

func TestMixSkew(t *testing.T) {
	db, rids := setup(t, 500)
	r := NewRunner(db, "orders", rids, 2, Mix{DeletePct: 100})
	r.Start()
	time.Sleep(100 * time.Millisecond)
	st := r.Stop()
	if errs := r.Errs(); len(errs) > 0 {
		t.Fatalf("workload errors: %v", errs)
	}
	if st.Inserts != 0 || st.Updates != 0 {
		t.Fatalf("pure-delete mix did other ops: %+v", st)
	}
	if st.Deletes == 0 {
		t.Fatal("no deletes happened")
	}
}
