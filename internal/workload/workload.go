// Package workload generates the table populations and concurrent update
// streams the experiment harness runs against the engine: deterministic
// row populations, configurable insert/delete/update mixes with rollback
// fractions, optional target rates, and per-window throughput timelines for
// the availability experiments.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/lock"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// DML is the operation surface a workload drives. *engine.DB satisfies it
// directly; the partition router satisfies it too, so the same population
// and runner code exercises plain and partitioned tables identically.
type DML interface {
	Begin() *txn.Txn
	Insert(tx *txn.Txn, table string, row engine.Row) (types.RID, error)
	Delete(tx *txn.Txn, table string, rid types.RID) error
	Update(tx *txn.Txn, table string, rid types.RID, row engine.Row) (types.RID, error)
	Get(tx *txn.Txn, table string, rid types.RID) (engine.Row, bool, error)
}

// Schema is the standard experiment table: a synthetic "orders" table with
// an integer id, a string key column indexes are built over, and a filler
// column controlling record size.
func Schema() catalog.Schema {
	return catalog.Schema{
		{Name: "id", Kind: keyenc.KindInt64},
		{Name: "key", Kind: keyenc.KindString},
		{Name: "filler", Kind: keyenc.KindString},
	}
}

// RowOf builds one experiment row. Keys are generated so their sort order is
// uncorrelated with insertion order (hashed), which is the hard case for
// index builds.
func RowOf(id int64, fillerLen int) engine.Row {
	return engine.Row{
		keyenc.Int64(id),
		keyenc.String(KeyOf(id)),
		keyenc.String(filler(id, fillerLen)),
	}
}

// KeyOf is the key column value for an id: a hash-prefixed string so
// key order is independent of id order.
func KeyOf(id int64) string {
	h := uint64(id) * 0x9E3779B97F4A7C15
	return fmt.Sprintf("k%016x-%08d", h, id)
}

func filler(id int64, n int) string {
	if n <= 0 {
		n = 16
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = 'a' + byte((uint64(id)+uint64(i))%26)
	}
	return string(b)
}

// Populate fills the table with n rows (ids 0..n-1) and returns their RIDs.
// Rows are committed in batches of 100 — population is setup, not the
// workload under measurement, so per-row commit forcing would only slow the
// experiments down.
func Populate(db DML, table string, n, fillerLen int) ([]types.RID, error) {
	rids := make([]types.RID, 0, n)
	const batch = 100
	for i := 0; i < n; {
		tx := db.Begin()
		for j := 0; j < batch && i < n; j++ {
			rid, err := db.Insert(tx, table, RowOf(int64(i), fillerLen))
			if err != nil {
				tx.Rollback()
				return nil, err
			}
			rids = append(rids, rid)
			i++
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	return rids, nil
}

// Mix is an operation mix in percent (must sum to <= 100; the remainder is
// point reads).
type Mix struct {
	InsertPct   int
	DeletePct   int
	UpdatePct   int
	RollbackPct int // fraction of update transactions that roll back
}

// DefaultMix is a balanced insert/delete/update mix.
var DefaultMix = Mix{InsertPct: 34, DeletePct: 33, UpdatePct: 33, RollbackPct: 5}

// Stats summarizes a workload run.
type Stats struct {
	Ops       uint64
	Commits   uint64
	Rollbacks uint64
	Inserts   uint64
	Deletes   uint64
	Updates   uint64
	Reads     uint64
	Errors    uint64
	Deadlocks uint64 // deadlock victims (rolled back and continued)
	Elapsed   time.Duration
	// MaxStall is the longest observed single-operation latency — during an
	// offline build this is roughly the build duration (updates block on
	// the table lock).
	MaxStall time.Duration
}

// Throughput returns committed transactions per second.
func (s Stats) Throughput() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Commits) / s.Elapsed.Seconds()
}

// Runner drives concurrent update transactions against one table.
type Runner struct {
	db      DML
	table   string
	workers int
	mix     Mix
	// Pace is an optional per-operation sleep that turns the closed loop
	// into an arrival process: without it the workers saturate every core
	// and starve whatever they run alongside (an index builder, say), which
	// models a stress test rather than an OLTP system.
	Pace time.Duration
	// windowLen buckets committed ops for the availability timeline.
	windowLen time.Duration

	stop      chan struct{}
	wg        sync.WaitGroup
	start     time.Time
	ops       atomic.Uint64
	commits   atomic.Uint64
	rolls     atomic.Uint64
	ins       atomic.Uint64
	dels      atomic.Uint64
	upds      atomic.Uint64
	reads     atomic.Uint64
	errors    atomic.Uint64
	deadlocks atomic.Uint64
	maxNano   atomic.Int64

	mu      sync.Mutex
	windows []uint64 // commits per window
	errs    []error

	prepopulated []types.RID
}

// NewRunner prepares a workload over the pre-populated rids.
func NewRunner(db DML, table string, rids []types.RID, workers int, mix Mix) *Runner {
	r := &Runner{
		db: db, table: table, workers: workers, mix: mix,
		windowLen: 50 * time.Millisecond,
		stop:      make(chan struct{}),
	}
	r.prepopulated = rids
	return r
}

// Start launches the workers.
func (r *Runner) Start() {
	r.start = time.Now()
	per := len(r.prepopulated) / max(1, r.workers)
	for w := 0; w < r.workers; w++ {
		lo, hi := w*per, (w+1)*per
		if w == r.workers-1 {
			hi = len(r.prepopulated)
		}
		mine := append([]types.RID(nil), r.prepopulated[lo:hi]...)
		r.wg.Add(1)
		go r.work(w, mine)
	}
}

// Stop halts the workers and returns the stats.
func (r *Runner) Stop() Stats {
	close(r.stop)
	r.wg.Wait()
	st := Stats{
		Ops: r.ops.Load(), Commits: r.commits.Load(), Rollbacks: r.rolls.Load(),
		Inserts: r.ins.Load(), Deletes: r.dels.Load(), Updates: r.upds.Load(),
		Reads: r.reads.Load(), Errors: r.errors.Load(),
		Deadlocks: r.deadlocks.Load(),
		Elapsed:   time.Since(r.start),
		MaxStall:  time.Duration(r.maxNano.Load()),
	}
	return st
}

// Errs returns the first few operation errors (normally empty).
func (r *Runner) Errs() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// Timeline returns commits per window since Start.
func (r *Runner) Timeline() []uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint64(nil), r.windows...)
}

func (r *Runner) noteCommit() {
	r.commits.Add(1)
	w := int(time.Since(r.start) / r.windowLen)
	r.mu.Lock()
	for len(r.windows) <= w {
		r.windows = append(r.windows, 0)
	}
	r.windows[w]++
	r.mu.Unlock()
}

func (r *Runner) noteErr(err error) {
	r.errors.Add(1)
	r.mu.Lock()
	if len(r.errs) < 8 {
		r.errs = append(r.errs, err)
	}
	r.mu.Unlock()
}

func (r *Runner) work(w int, mine []types.RID) {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(int64(w)*7919 + 13))
	nextID := int64(10_000_000) + int64(w)*1_000_000
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		if r.Pace > 0 {
			time.Sleep(r.Pace)
		}
		opStart := time.Now()
		p := rng.Intn(100)
		rollback := rng.Intn(100) < r.mix.RollbackPct
		tx := r.db.Begin()
		var err error
		var did *atomic.Uint64
		var undoTrack func()
		switch {
		case p < r.mix.InsertPct:
			nextID++
			var rid types.RID
			rid, err = r.db.Insert(tx, r.table, RowOf(nextID, 16))
			did = &r.ins
			if err == nil && !rollback {
				undoTrack = func() { mine = append(mine, rid) }
			}
		case p < r.mix.InsertPct+r.mix.DeletePct && len(mine) > 0:
			k := rng.Intn(len(mine))
			err = r.db.Delete(tx, r.table, mine[k])
			did = &r.dels
			if err == nil && !rollback {
				undoTrack = func() { mine = append(mine[:k], mine[k+1:]...) }
			}
		case p < r.mix.InsertPct+r.mix.DeletePct+r.mix.UpdatePct && len(mine) > 0:
			k := rng.Intn(len(mine))
			nextID++
			var newRID types.RID
			newRID, err = r.db.Update(tx, r.table, mine[k], RowOf(nextID, 16))
			did = &r.upds
			if err == nil && !rollback {
				undoTrack = func() { mine[k] = newRID }
			}
		default:
			if len(mine) > 0 {
				_, _, err = r.db.Get(tx, r.table, mine[rng.Intn(len(mine))])
			}
			did = &r.reads
			rollback = true // reads just release
		}
		if err != nil {
			tx.Rollback()
			if errors.Is(err, lock.ErrDeadlock) {
				// Chosen as a deadlock victim: roll back and move on, as any
				// application would.
				r.deadlocks.Add(1)
				continue
			}
			r.noteErr(err)
			continue
		}
		if rollback {
			if err := tx.Rollback(); err != nil {
				r.noteErr(err)
				continue
			}
			r.rolls.Add(1)
		} else {
			if err := tx.Commit(); err != nil {
				r.noteErr(err)
				continue
			}
			if undoTrack != nil {
				undoTrack()
			}
			r.noteCommit()
		}
		r.ops.Add(1)
		if did != nil {
			did.Add(1)
		}
		if d := time.Since(opStart); int64(d) > r.maxNano.Load() {
			r.maxNano.Store(int64(d))
		}
	}
}
