package workload

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
)

// ReadOracle is the read path's differential oracle: a scripted,
// single-goroutine DML stream over the standard experiment table plus a
// shadow copy of its committed state. Because everything runs on one
// goroutine, the shadow IS the single-threaded reference at every commit
// point — after each Step, every engine read (point lookup, ordered index
// scan, predicate-pushdown sequential scan) must return exactly what the
// shadow predicts. Driven from a builder's OnCheckpoint hook it checks the
// paper's availability claim from the reader's side: an index that is
// complete serves exactly the committed state while another index on the
// same table is being built, and the one being built is firmly unreadable.
//
// The script deliberately routes every read twice through IndexLookup so
// the second pass exercises the hash fast path: a wrong answer there is a
// cache-invalidation bug, not a tree bug.
type ReadOracle struct {
	db    *engine.DB
	table string
	rows  []oracleRow
	n     int
}

type oracleRow struct {
	rid  types.RID
	id   int64
	live bool
}

// NewReadOracle wraps db's table, whose rows must be RowOf(i) for the seed
// rids in insert order (what Populate produces).
func NewReadOracle(db *engine.DB, table string, rids []types.RID) *ReadOracle {
	o := &ReadOracle{db: db, table: table}
	for i, rid := range rids {
		o.rows = append(o.rows, oracleRow{rid: rid, id: int64(i), live: true})
	}
	return o
}

// pick returns the index of the first live row at or after start (mod len),
// or -1 when the table is empty.
func (o *ReadOracle) pick(start int) int {
	for i := 0; i < len(o.rows); i++ {
		j := (start + i) % len(o.rows)
		if o.rows[j].live {
			return j
		}
	}
	return -1
}

// Step commits one scripted transaction — an insert, an update and a delete
// chosen by fixed arithmetic on the step ordinal — and mirrors it into the
// shadow. Deterministic: the stream is a pure function of the step count.
func (o *ReadOracle) Step() error {
	o.n++
	n := o.n
	tx := o.db.Begin()
	newID := int64(1_000_000 + n)
	rid, err := o.db.Insert(tx, o.table, RowOf(newID, 16))
	if err != nil {
		tx.Rollback() //nolint:errcheck
		return err
	}
	ins := oracleRow{rid: rid, id: newID, live: true}
	var upd, del = -1, -1
	var updRID types.RID
	updID := int64(2_000_000 + n)
	if u := o.pick(7 * n); u >= 0 {
		if updRID, err = o.db.Update(tx, o.table, o.rows[u].rid, RowOf(updID, 16)); err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		upd = u
	}
	if d := o.pick(11*n + 3); d >= 0 && d != upd {
		if err := o.db.Delete(tx, o.table, o.rows[d].rid); err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		del = d
	}
	// Every third step the script aborts instead: the shadow keeps the old
	// state and the reads must agree — rollback reactivation of
	// pseudo-deleted entries is exactly what the fast path gets wrong if its
	// cache outlives an undo.
	if n%3 == 0 {
		return tx.Rollback()
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	o.rows = append(o.rows, ins)
	if upd >= 0 {
		o.rows[upd].rid, o.rows[upd].id = updRID, updID
	}
	if del >= 0 {
		o.rows[del].live = false
	}
	return nil
}

// keyVal is the indexed value of column col for a live row with this id
// (rows are RowOf(id), so the row is a pure function of id).
func keyVal(col int, id int64) keyenc.Value {
	if col == 0 {
		return keyenc.Int64(id)
	}
	return keyenc.String(KeyOf(id))
}

// VerifyReads checks every read primitive against the shadow. index must be
// a complete index over column col (0 = "id", 1 = "key") of the table.
func (o *ReadOracle) VerifyReads(index string, col int) error {
	tx := o.db.Begin()
	defer tx.Rollback() //nolint:errcheck // read-only: rollback just releases S locks

	// Point lookups: a couple of live rows, the most recent dead row, and a
	// key that never existed. Twice each — tree descent, then hash hit.
	var dead *oracleRow
	for i := len(o.rows) - 1; i >= 0; i-- {
		if !o.rows[i].live {
			dead = &o.rows[i]
			break
		}
	}
	probes := []struct {
		val  keyenc.Value
		want []types.RID
	}{
		{keyVal(col, int64(-12345)), nil},
	}
	for _, start := range []int{5 * o.n, 13*o.n + 1} {
		if j := o.pick(start); j >= 0 {
			probes = append(probes, struct {
				val  keyenc.Value
				want []types.RID
			}{keyVal(col, o.rows[j].id), []types.RID{o.rows[j].rid}})
		}
	}
	if dead != nil {
		probes = append(probes, struct {
			val  keyenc.Value
			want []types.RID
		}{keyVal(col, dead.id), nil})
	}
	for _, p := range probes {
		for pass := 0; pass < 2; pass++ {
			got, err := o.db.IndexLookup(tx, index, p.val)
			if err != nil {
				return fmt.Errorf("read oracle step %d: lookup %v: %w", o.n, p.val, err)
			}
			if !ridsEqual(got, p.want) {
				return fmt.Errorf("read oracle step %d: lookup %v pass %d = %v, shadow says %v",
					o.n, p.val, pass, got, p.want)
			}
		}
	}

	// Ordered scan over the whole index: exactly the shadow's live rows, in
	// key order, no duplicates, no pseudo-deleted leakage.
	type kr struct {
		key []byte
		rid types.RID
	}
	var want []kr
	for _, r := range o.rows {
		if r.live {
			want = append(want, kr{key: keyenc.Encode(keyVal(col, r.id)), rid: r.rid})
		}
	}
	sort.Slice(want, func(i, j int) bool {
		if c := bytes.Compare(want[i].key, want[j].key); c != 0 {
			return c < 0
		}
		return want[i].rid.Compare(want[j].rid) < 0
	})
	var got []kr
	err := o.db.IndexScan(tx, index, nil, nil, func(key []byte, rid types.RID) bool {
		got = append(got, kr{key: append([]byte(nil), key...), rid: rid})
		return true
	})
	if err != nil {
		return fmt.Errorf("read oracle step %d: scan: %w", o.n, err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("read oracle step %d: scan returned %d entries, shadow has %d live rows",
			o.n, len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].key, want[i].key) || got[i].rid != want[i].rid {
			return fmt.Errorf("read oracle step %d: scan entry %d = <%x,%v>, shadow says <%x,%v>",
				o.n, i, got[i].key, got[i].rid, want[i].key, want[i].rid)
		}
	}

	// Predicate-pushdown sequential scan on the id column, over a window that
	// includes seed rows and the script's inserts. The zone maps behind it
	// must only ever skip blocks with no match.
	lo, hi := keyenc.Int64(0), keyenc.Int64(int64(1_000_000+o.n))
	wantRids := map[types.RID]int64{}
	for _, r := range o.rows {
		if r.live && r.id >= 0 && r.id <= int64(1_000_000+o.n) {
			wantRids[r.rid] = r.id
		}
	}
	seen := map[types.RID]int64{}
	err = o.db.SeqScan(tx, o.table, &engine.Predicate{Col: 0, Lo: &lo, Hi: &hi},
		func(rid types.RID, row Row) bool {
			seen[rid] = row[0].I
			return true
		})
	if err != nil {
		return fmt.Errorf("read oracle step %d: seqscan: %w", o.n, err)
	}
	if len(seen) != len(wantRids) {
		return fmt.Errorf("read oracle step %d: seqscan returned %d rows, shadow has %d in range",
			o.n, len(seen), len(wantRids))
	}
	for rid, id := range wantRids {
		if got, ok := seen[rid]; !ok || got != id {
			return fmt.Errorf("read oracle step %d: seqscan missing/mismatched rid %v (id %d, got %d ok=%v)",
				o.n, rid, id, got, ok)
		}
	}
	return nil
}

// Row aliases the engine row type for the seqscan callback above.
type Row = engine.Row

// VerifyUnreadable asserts that reads of a still-building index fail with
// ErrIndexNotReadable rather than serving a half-built tree.
func (o *ReadOracle) VerifyUnreadable(index string) error {
	tx := o.db.Begin()
	defer tx.Rollback() //nolint:errcheck
	var notReadable *engine.ErrIndexNotReadable
	if _, err := o.db.IndexLookup(tx, index, keyenc.Int64(1)); !errors.As(err, &notReadable) {
		return fmt.Errorf("read oracle step %d: lookup of building index %q: err = %v, want ErrIndexNotReadable",
			o.n, index, err)
	}
	err := o.db.IndexScan(tx, index, nil, nil, func([]byte, types.RID) bool { return true })
	if !errors.As(err, &notReadable) {
		return fmt.Errorf("read oracle step %d: scan of building index %q: err = %v, want ErrIndexNotReadable",
			o.n, index, err)
	}
	return nil
}

// Hook packages Step + VerifyReads (+ VerifyUnreadable when building is
// non-empty) as a builder OnCheckpoint callback: DML and reads interleave
// with the build at every checkpoint, and every read is checked against the
// shadow at its commit point.
func (o *ReadOracle) Hook(readable string, readableCol int, building string) func(engine.IBPhase) error {
	return func(engine.IBPhase) error {
		if err := o.Step(); err != nil {
			return err
		}
		if err := o.VerifyReads(readable, readableCol); err != nil {
			return err
		}
		if building != "" {
			if err := o.VerifyUnreadable(building); err != nil {
				return err
			}
		}
		return nil
	}
}

// Steps reports how many scripted transactions have run.
func (o *ReadOracle) Steps() int { return o.n }

func ridsEqual(got, want []types.RID) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]types.RID(nil), got...)
	w := append([]types.RID(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i].Compare(g[j]) < 0 })
	sort.Slice(w, func(i, j int) bool { return w[i].Compare(w[j]) < 0 })
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}
