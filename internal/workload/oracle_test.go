package workload

import (
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
)

// TestReadOracleUnderBuild interleaves the scripted DML+read oracle with a
// live build at every builder checkpoint: the complete by_key index and the
// table's sequential scan must serve exactly the shadow's committed state
// the whole way through, the index being built must stay unreadable, and
// once the build completes the new index must agree with the shadow too.
func TestReadOracleUnderBuild(t *testing.T) {
	for _, tc := range []struct {
		name   string
		method catalog.BuildMethod
	}{
		{"nsf", catalog.MethodNSF},
		{"sf", catalog.MethodSF},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db, rids := setup(t, 400)
			if _, err := core.Build(db, engine.CreateIndexSpec{
				Name: "by_key", Table: "orders", Columns: []string{"key"}, Method: catalog.MethodOffline,
			}, core.Options{}); err != nil {
				t.Fatal(err)
			}

			o := NewReadOracle(db, "orders", rids)
			hook := o.Hook("by_key", 1, "by_id")
			opts := core.Options{SortMemory: 64, CheckpointPages: 2, CheckpointKeys: 40, BatchSize: 32}
			opts.OnCheckpoint = func(ph engine.IBPhase) error {
				if err := hook(ph); err != nil {
					return err
				}
				// Every few steps, GC the readable index under the reader's
				// feet: physical removal of pseudo-deleted entries must be
				// invisible to lookups and scans.
				if o.Steps()%4 == 0 {
					if _, err := core.GC(db, "by_key"); err != nil {
						return err
					}
				}
				return nil
			}
			if _, err := core.Build(db, engine.CreateIndexSpec{
				Name: "by_id", Table: "orders", Columns: []string{"id"}, Method: tc.method,
			}, opts); err != nil {
				t.Fatal(err)
			}
			if o.Steps() < 5 {
				t.Fatalf("only %d oracle steps ran — checkpoint knobs too loose for a meaningful test", o.Steps())
			}

			// The build is complete: the new index must now serve the shadow's
			// state exactly, as must by_key after all that DML and GC.
			if err := o.VerifyReads("by_id", 0); err != nil {
				t.Fatal(err)
			}
			if err := o.VerifyReads("by_key", 1); err != nil {
				t.Fatal(err)
			}
			if err := db.CheckIndexConsistency("by_id"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReadOracleQuiescent sanity-checks the oracle machinery itself with no
// build running: a few scripted steps against a complete index.
func TestReadOracleQuiescent(t *testing.T) {
	db, rids := setup(t, 150)
	if _, err := core.Build(db, engine.CreateIndexSpec{
		Name: "by_key", Table: "orders", Columns: []string{"key"}, Method: catalog.MethodOffline,
	}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	o := NewReadOracle(db, "orders", rids)
	for i := 0; i < 12; i++ {
		if err := o.Step(); err != nil {
			t.Fatal(err)
		}
		if err := o.VerifyReads("by_key", 1); err != nil {
			t.Fatal(err)
		}
	}
}
