package progress

import "fmt"

// Aggregate folds N per-shard build snapshots into one logical view: the
// partition coordinator registers the result (via the engine's progress
// groups) so a fan-out build shows the user a single fraction and ETA.
//
// Shards get equal weight — the partitioner spreads rows roughly evenly,
// and equal weighting keeps the aggregate monotone as long as each shard's
// own fraction is monotone (per-shard trackers already guarantee that).
// The aggregate ETA is the worst per-shard ETA, since the logical index
// commits only when the slowest shard finishes; Durable averages the
// per-shard durable floors (the most a crash could cost, summed over
// shards, normalized the same way as Fraction). Each input snapshot is
// folded into one synthetic "shard i" phase entry so the admin endpoint
// can show per-partition detail under the logical row.
func Aggregate(index, method string, shards []Snapshot) Snapshot {
	out := Snapshot{
		Index:      index,
		Method:     method,
		Complete:   len(shards) > 0,
		ETASeconds: -1,
	}
	if len(shards) == 0 {
		return out
	}
	n := float64(len(shards))
	for i, s := range shards {
		out.Fraction += s.Fraction / n
		out.Durable += s.Durable / n
		out.ResumeFloor += s.ResumeFloor / n
		out.Regressions += s.Regressions
		if !s.Complete {
			out.Complete = false
			if s.Phase != "" && out.Phase == "" {
				out.Phase = fmt.Sprintf("shard %d: %s", i, s.Phase)
			}
		}
		if s.ETASeconds > out.ETASeconds {
			out.ETASeconds = s.ETASeconds
		}
		if s.ElapsedSeconds > out.ElapsedSeconds {
			out.ElapsedSeconds = s.ElapsedSeconds
		}
		out.Phases = append(out.Phases, PhaseSnapshot{
			Name:     fmt.Sprintf("shard %d", i),
			Weight:   1 / n,
			Fraction: s.Fraction,
		})
	}
	if out.Complete {
		out.Phase = "complete"
		out.ETASeconds = 0
	}
	return out
}

// CompleteSnapshot synthesizes the terminal snapshot of a finished shard
// whose in-memory tracker is gone (e.g. a shard already complete before
// the last restart). A complete shard index is, truthfully, fraction 1.
func CompleteSnapshot(index, method string) Snapshot {
	return Snapshot{
		Index:    index,
		Method:   method,
		Phase:    "complete",
		Fraction: 1, Durable: 1,
		Complete: true,
	}
}
