package progress

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestNilTracker(t *testing.T) {
	var tr *Tracker
	tr.SetTotal(Scan, 10)
	tr.Advance(Scan, 5)
	tr.Step(Load, 1)
	tr.FinishPhase(Scan)
	tr.MarkDurable()
	tr.SeedResume()
	tr.Complete()
	if tr.Fraction() != 0 || tr.Regressions() != 0 {
		t.Fatalf("nil tracker must read zero")
	}
	if s := tr.Snapshot(); s.Index != "" {
		t.Fatalf("nil tracker snapshot must be zero: %+v", s)
	}
}

func TestWeightsNormalize(t *testing.T) {
	tr := New("ix", "sf", Scan, Sort, Load, SideFile)
	var sum float64
	for _, ps := range tr.Snapshot().Phases {
		sum += ps.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
}

func TestFractionAdvancesThroughPhases(t *testing.T) {
	tr := New("ix", "nsf", Scan, Sort, Load)
	if f := tr.Fraction(); f != 0 {
		t.Fatalf("fresh tracker fraction = %v", f)
	}
	tr.SetTotal(Scan, 100)
	tr.Advance(Scan, 50)
	f1 := tr.Fraction()
	if f1 <= 0 || f1 >= 1 {
		t.Fatalf("mid-scan fraction = %v", f1)
	}
	tr.FinishPhase(Scan)
	tr.FinishPhase(Sort)
	f2 := tr.Fraction()
	if f2 <= f1 {
		t.Fatalf("fraction did not advance: %v -> %v", f1, f2)
	}
	tr.SetTotal(Load, 1000)
	tr.Advance(Load, 1000)
	tr.FinishPhase(Load)
	tr.Complete()
	if f := tr.Fraction(); f != 1 {
		t.Fatalf("complete fraction = %v, want 1", f)
	}
	if s := tr.Snapshot(); !s.Complete || s.ETASeconds != 0 {
		t.Fatalf("complete snapshot: %+v", s)
	}
}

func TestMonotoneUnderGrowingTotal(t *testing.T) {
	tr := New("ix", "sf", Scan, Load)
	tr.SetTotal(Scan, 100)
	tr.Advance(Scan, 90)
	f1 := tr.Fraction()
	// chase-scan discovers appended pages: the raw fraction would dip, the
	// reported one must not.
	tr.SetTotal(Scan, 200)
	f2 := tr.Fraction()
	if f2 < f1 {
		t.Fatalf("reported fraction regressed: %v -> %v", f1, f2)
	}
	tr.Advance(Scan, 200)
	if f := tr.Fraction(); f < f2 {
		t.Fatalf("reported fraction regressed: %v -> %v", f2, f)
	}
}

func TestAdvanceClampsBackwards(t *testing.T) {
	tr := New("ix", "nsf", Scan)
	tr.SetTotal(Scan, 10)
	tr.Advance(Scan, 7)
	tr.Advance(Scan, 3) // stale sample
	if got := tr.Snapshot().Phases[0].Done; got != 7 {
		t.Fatalf("done = %d, want clamped 7", got)
	}
}

func TestResumeFloor(t *testing.T) {
	// A resumed build seeds phase counts from the durable checkpoint, then
	// SeedResume turns them into a floor the report never drops below.
	tr := New("ix", "nsf", Scan, Sort, Load)
	tr.FinishPhase(Scan)
	tr.FinishPhase(Sort)
	tr.SetTotal(Load, 100)
	tr.Advance(Load, 40)
	tr.SeedResume()
	floor := tr.Fraction()
	if floor <= 0 {
		t.Fatalf("floor = %v", floor)
	}
	if s := tr.Snapshot(); s.ResumeFloor != floor || s.Durable != floor {
		t.Fatalf("snapshot floor mismatch: %+v", s)
	}
	// Feeds after resume may only push the report up.
	tr.Advance(Load, 41)
	if f := tr.Fraction(); f < floor {
		t.Fatalf("post-resume fraction %v below floor %v", f, floor)
	}
	if tr.Regressions() != 0 {
		t.Fatalf("unexpected regressions: %d", tr.Regressions())
	}
}

func TestRegressionCounter(t *testing.T) {
	tr := New("ix", "nsf", Load)
	tr.SetTotal(Load, 100)
	tr.Advance(Load, 50)
	tr.MarkDurable()
	// A total growing after MarkDurable drops the raw fraction below the
	// durable floor: the report clamps, the counter records it.
	tr.SetTotal(Load, 1000)
	tr.Advance(Load, 51)
	if tr.Regressions() == 0 {
		t.Fatalf("raw dip below durable floor not counted")
	}
	if f := tr.Fraction(); f < 0.5 {
		t.Fatalf("reported fraction %v fell below durable 0.5", f)
	}
}

func TestMarkDurable(t *testing.T) {
	tr := New("ix", "sf", Scan, Load)
	tr.SetTotal(Scan, 10)
	tr.Advance(Scan, 5)
	tr.MarkDurable()
	s := tr.Snapshot()
	if s.Durable <= 0 || s.Durable > s.Fraction {
		t.Fatalf("durable = %v, fraction = %v", s.Durable, s.Fraction)
	}
}

func TestSnapshotJSON(t *testing.T) {
	tr := New("by_name", "sf", Scan, Sort, Load, SideFile)
	tr.SetTotal(Scan, 100)
	tr.Advance(Scan, 100)
	tr.FinishPhase(Scan)
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Index != "by_name" || back.Method != "sf" || len(back.Phases) != 4 {
		t.Fatalf("round-trip: %+v", back)
	}
}

func TestConcurrentFeeds(t *testing.T) {
	tr := New("ix", "nsf", Scan, Load)
	tr.SetTotal(Scan, 1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Advance(Scan, uint64(i))
				tr.Fraction()
				if i%100 == 0 {
					tr.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Snapshot().Phases[0].Done; got != 999 {
		t.Fatalf("done = %d, want 999", got)
	}
}
