// Package progress tracks an index build's completion fraction and ETA as a
// weighted state machine over the paper's phases: data scan → sort →
// merge/load → side-file catch-up → GC.
//
// The tracker is fed the same quantities the build's durable checkpoints
// record — the scan's page position (Current-RID's page for SF), the
// tournament/merge counter vectors, the side-file apply position — so a
// build resumed after a crash can seed the tracker from its last committed
// IBState and report a fraction that never falls behind what was durably
// done. Two mechanisms make the reported fraction monotone:
//
//   - a high-water mark within one incarnation (raw fractions can dip when
//     a phase's total grows, e.g. the SF chase-scan discovering appended
//     pages; the report clamps to the best fraction already shown);
//   - a resume floor across incarnations (seeded from the durable
//     checkpoint; the report never drops below it).
//
// Raw dips below the *durable* floor are counted in Regressions — they
// indicate the feed and the checkpoint disagree about completed work, which
// the crash sweep asserts never happens.
package progress

import (
	"sync"
	"time"
)

// Phase identifies one build phase. Phases always advance in declaration
// order; a build registers only the phases its method has (NSF has no
// side-file catch-up).
type Phase uint8

const (
	// Scan is the data-page scan (overlapped with run generation by
	// replacement selection; its unit is data pages).
	Scan Phase = iota
	// Sort is the run-finalization step between the scan and the merge
	// (draining the tournament tree; unit: sorted runs closed).
	Sort
	// Load is the merge feeding either the NSF batch inserter or the SF
	// bottom-up loader (unit: keys).
	Load
	// SideFile is the SF catch-up pass over captured updates (unit:
	// side-file entries applied).
	SideFile
	// GC is the optional pseudo-deleted-key cleanup (unit: index pages).
	GC
	numPhases
)

var phaseNames = [numPhases]string{"scan", "sort", "load", "sidefile", "gc"}

// String returns the phase's lowercase name.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// DefaultWeights are the relative durations observed on the E1 benchmark
// (scan+sort dominated by page I/O and key extraction, load by tree writes,
// catch-up proportional to the concurrent update rate). Absent phases are
// dropped and the rest renormalized, so the numbers only fix the ratios.
var DefaultWeights = map[Phase]float64{
	Scan:     0.35,
	Sort:     0.05,
	Load:     0.40,
	SideFile: 0.15,
	GC:       0.05,
}

type phaseState struct {
	present  bool
	weight   float64 // normalized at New
	done     uint64
	total    uint64
	finished bool
	started  time.Time // first Advance
	updated  time.Time // last Advance
}

// Tracker follows one build. All methods are safe for concurrent use; a nil
// *Tracker is a no-op on every method (builds run with tracking disabled
// exactly like they run with metrics disabled).
type Tracker struct {
	mu     sync.Mutex
	index  string
	method string

	phases  [numPhases]phaseState
	cur     Phase
	started time.Time

	high        float64 // high-water reported fraction (monotone report)
	durable     float64 // fraction at the last durable checkpoint
	resumeFloor float64 // durable fraction seeded at resume
	f0          float64 // fraction when this incarnation started (ETA base)
	regressions uint64
	complete    bool
}

// New creates a tracker for a build of the named index using the given
// phases (in order). Weights default to DefaultWeights renormalized over
// the registered subset.
func New(index, method string, phases ...Phase) *Tracker {
	t := &Tracker{index: index, method: method, started: time.Now()}
	var sum float64
	for _, p := range phases {
		sum += DefaultWeights[p]
	}
	if sum == 0 {
		sum = 1
	}
	for _, p := range phases {
		t.phases[p] = phaseState{present: true, weight: DefaultWeights[p] / sum}
	}
	return t
}

// SetTotal sets a phase's total work units. Totals only grow (the SF
// chase-scan extends the scan's page range; side-file appends extend the
// catch-up) and never fall below work already done.
func (t *Tracker) SetTotal(p Phase, total uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := &t.phases[p]
	if total > ps.total {
		ps.total = total
	}
	if ps.done > ps.total {
		ps.total = ps.done
	}
}

// Advance reports a phase's absolute completed-unit count. Counts are
// clamped monotone per phase; advancing a later phase finishes all earlier
// ones (the build moved on). Totals grow implicitly if done overtakes them.
func (t *Tracker) Advance(p Phase, done uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enterLocked(p)
	ps := &t.phases[p]
	now := time.Now()
	if ps.started.IsZero() {
		ps.started = now
	}
	ps.updated = now
	if done > ps.done {
		ps.done = done
	}
	if ps.done > ps.total {
		ps.total = ps.done
	}
	t.noteRawLocked()
}

// Step adds delta completed units to a phase (convenience over Advance for
// feeds that count incrementally).
func (t *Tracker) Step(p Phase, delta uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	done := t.phases[p].done + delta
	t.mu.Unlock()
	t.Advance(p, done)
}

// FinishPhase marks a phase complete (done = total, or 1/1 when the phase
// never learned a total — e.g. an empty table's scan).
func (t *Tracker) FinishPhase(p Phase) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enterLocked(p)
	ps := &t.phases[p]
	if ps.total == 0 {
		ps.total = 1
	}
	ps.done = ps.total
	ps.finished = true
	if t.cur == p && p+1 < numPhases {
		for q := p + 1; q < numPhases; q++ {
			if t.phases[q].present {
				t.cur = q
				break
			}
		}
	}
	t.noteRawLocked()
}

// enterLocked moves the current phase forward to p, finishing skipped ones.
func (t *Tracker) enterLocked(p Phase) {
	if p < t.cur {
		return // late sample from an earlier phase: counts still clamp
	}
	for q := t.cur; q < p; q++ {
		ps := &t.phases[q]
		if ps.present && !ps.finished {
			if ps.total == 0 {
				ps.total = 1
			}
			ps.done = ps.total
			ps.finished = true
		}
	}
	t.cur = p
}

// MarkDurable records the current fraction as durably checkpointed — called
// right after the builder's checkpoint transaction commits. A future resume
// may seed its floor from the same checkpoint, so the reported fraction can
// never fall behind this value again.
func (t *Tracker) MarkDurable() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if f := t.rawLocked(); f > t.durable {
		t.durable = f
	}
}

// SeedResume installs the durable floor a resumed build starts from: the
// phase counts recorded in its last committed checkpoint (already applied
// via SetTotal/Advance) yield the floor fraction. The ETA restarts from
// here — elapsed time before the crash is unknowable and irrelevant.
func (t *Tracker) SeedResume() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.rawLocked()
	t.resumeFloor = f
	t.durable = f
	t.f0 = f
	t.high = f
	t.started = time.Now()
}

// Complete marks the build finished: every phase done, fraction exactly 1.
func (t *Tracker) Complete() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for p := Phase(0); p < numPhases; p++ {
		ps := &t.phases[p]
		if ps.present && !ps.finished {
			if ps.total == 0 {
				ps.total = 1
			}
			ps.done = ps.total
			ps.finished = true
		}
	}
	t.complete = true
	t.high = 1
	t.durable = 1
}

// rawLocked computes the unclamped weighted fraction.
func (t *Tracker) rawLocked() float64 {
	var f float64
	for p := Phase(0); p < numPhases; p++ {
		ps := &t.phases[p]
		if !ps.present {
			continue
		}
		switch {
		case ps.finished:
			f += ps.weight
		case ps.total > 0:
			f += ps.weight * float64(ps.done) / float64(ps.total)
		}
	}
	if f > 1 {
		f = 1
	}
	return f
}

// noteRawLocked maintains the high-water mark and the regression counter.
func (t *Tracker) noteRawLocked() {
	f := t.rawLocked()
	if f < t.durable-1e-9 {
		// The feed claims less work than a durable checkpoint recorded:
		// either a bug, or (post-resume) a total that grew past what the
		// floor was computed against. The report clamps either way; the
		// counter lets tests distinguish.
		t.regressions++
	}
	if f > t.high {
		t.high = f
	}
}

// Fraction returns the monotone reported completion fraction in [0, 1].
// Returns 0 on a nil tracker.
func (t *Tracker) Fraction() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fractionLocked()
}

func (t *Tracker) fractionLocked() float64 {
	if t.complete {
		return 1
	}
	f := t.rawLocked()
	if f < t.high {
		f = t.high
	}
	if f < t.resumeFloor {
		f = t.resumeFloor
	}
	return f
}

// Regressions returns how many raw feed updates fell below the durable
// floor (see noteRawLocked). Zero on a nil tracker.
func (t *Tracker) Regressions() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.regressions
}

// PhaseSnapshot is one phase's state in a Snapshot.
type PhaseSnapshot struct {
	Name     string  `json:"name"`
	Weight   float64 `json:"weight"`
	Done     uint64  `json:"done"`
	Total    uint64  `json:"total"`
	Fraction float64 `json:"fraction"`
	// RatePerSec is done/elapsed within the phase (0 before the phase
	// starts or when it finished instantaneously).
	RatePerSec float64 `json:"rate_per_sec"`
}

// Snapshot is a JSON-friendly point-in-time view of a build's progress.
type Snapshot struct {
	Index    string  `json:"index"`
	Method   string  `json:"method"`
	Phase    string  `json:"phase"`
	Fraction float64 `json:"fraction"`
	// Durable is the fraction covered by the last committed builder
	// checkpoint — the most a crash right now could cost.
	Durable     float64 `json:"durable"`
	ResumeFloor float64 `json:"resume_floor"`
	// ETASeconds extrapolates from the work completed by this incarnation;
	// -1 while there is too little signal to extrapolate from.
	ETASeconds     float64         `json:"eta_seconds"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Regressions    uint64          `json:"regressions"`
	Complete       bool            `json:"complete"`
	Phases         []PhaseSnapshot `json:"phases"`
}

// Snapshot returns the current view. The zero Snapshot on a nil tracker.
func (t *Tracker) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	s := Snapshot{
		Index:          t.index,
		Method:         t.method,
		Phase:          t.cur.String(),
		Fraction:       t.fractionLocked(),
		Durable:        t.durable,
		ResumeFloor:    t.resumeFloor,
		ElapsedSeconds: now.Sub(t.started).Seconds(),
		Regressions:    t.regressions,
		Complete:       t.complete,
		ETASeconds:     -1,
	}
	if s.Complete {
		s.ETASeconds = 0
	} else if f := s.Fraction; f > t.f0+1e-6 && s.ElapsedSeconds > 0 {
		s.ETASeconds = s.ElapsedSeconds * (1 - f) / (f - t.f0)
	}
	for p := Phase(0); p < numPhases; p++ {
		ps := &t.phases[p]
		if !ps.present {
			continue
		}
		psn := PhaseSnapshot{
			Name:   p.String(),
			Weight: ps.weight,
			Done:   ps.done,
			Total:  ps.total,
		}
		switch {
		case ps.finished:
			psn.Fraction = 1
		case ps.total > 0:
			psn.Fraction = float64(ps.done) / float64(ps.total)
		}
		if !ps.started.IsZero() {
			if el := ps.updated.Sub(ps.started).Seconds(); el > 0 {
				psn.RatePerSec = float64(ps.done) / el
			}
		}
		s.Phases = append(s.Phases, psn)
	}
	return s
}
