// Package page defines the page abstraction shared by the buffer pool and
// the resource managers (heap, B+-tree, side-file).
//
// Pages live in the buffer pool as typed Go structs and are serialized to a
// fixed-size on-disk image only when flushed. Every page carries a PageLSN —
// the LSN of the last log record applied to it — which makes redo idempotent
// (ARIES: redo a record only if PageLSN < record LSN) and drives the WAL
// protocol (the log must be forced up to PageLSN before the page image may
// be written to disk).
//
// Concrete page types register an unmarshal factory here so the buffer pool
// can materialize pages without importing the resource-manager packages.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"onlineindex/internal/types"
)

// ErrBlank reports an all-zero page image: a region of the file that was
// durably extended (by the flush of a later page) but whose own page was
// never written. Restart redo recreates such pages from their format
// records.
var ErrBlank = errors.New("page: blank (never written) page image")

// Size is the page size in bytes. Resource managers use it as the capacity
// budget when deciding whether a page is full; the marshalled image of a
// page must never exceed it.
const Size = 8192

// Kind tags the concrete type of a page image.
type Kind uint8

// Page kinds.
const (
	KindInvalid  Kind = iota
	KindHeap          // slotted data page of a table
	KindBTree         // B+-tree node (leaf or internal)
	KindSideFile      // append-only side-file page
)

func (k Kind) String() string {
	switch k {
	case KindHeap:
		return "heap"
	case KindBTree:
		return "btree"
	case KindSideFile:
		return "sidefile"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Page is the interface all page types implement.
type Page interface {
	// Kind returns the page's type tag.
	Kind() Kind
	// PageLSN returns the LSN of the last log record applied to this page.
	PageLSN() types.LSN
	// SetPageLSN records that the log record at lsn was applied.
	SetPageLSN(types.LSN)
	// MarshalPage serializes the page into an image of exactly Size bytes.
	MarshalPage() ([]byte, error)
	// UnmarshalPage restores the page from an image produced by MarshalPage.
	UnmarshalPage([]byte) error
}

// Header is the common on-disk prefix every page image starts with and the
// common in-memory state every page struct embeds.
type Header struct {
	lsn types.LSN
}

// PageLSN implements Page.
func (h *Header) PageLSN() types.LSN { return h.lsn }

// SetPageLSN implements Page.
func (h *Header) SetPageLSN(lsn types.LSN) { h.lsn = lsn }

// HeaderSize is the marshalled size of the common prefix: kind byte plus
// 8-byte PageLSN.
const HeaderSize = 1 + 8

// MarshalHeader writes the common prefix (kind + PageLSN) into dst, which
// must be at least HeaderSize long.
func (h *Header) MarshalHeader(dst []byte, k Kind) {
	dst[0] = uint8(k)
	binary.LittleEndian.PutUint64(dst[1:], uint64(h.lsn))
}

// UnmarshalHeader reads the common prefix and returns the kind.
func (h *Header) UnmarshalHeader(src []byte) (Kind, error) {
	if len(src) < HeaderSize {
		return KindInvalid, fmt.Errorf("page: image too small (%d bytes)", len(src))
	}
	h.lsn = types.LSN(binary.LittleEndian.Uint64(src[1:]))
	return Kind(src[0]), nil
}

var (
	registryMu sync.RWMutex
	registry   = map[Kind]func() Page{}
)

// Register installs a factory for pages of kind k. Resource-manager packages
// call it from init so the buffer pool can materialize their pages.
func Register(k Kind, factory func() Page) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[k] = factory
}

// Unmarshal materializes a page from an on-disk image by dispatching on the
// kind byte.
func Unmarshal(img []byte) (Page, error) {
	if len(img) < HeaderSize {
		return nil, fmt.Errorf("page: image too small (%d bytes)", len(img))
	}
	k := Kind(img[0])
	registryMu.RLock()
	factory := registry[k]
	registryMu.RUnlock()
	if factory == nil {
		if k == KindInvalid {
			return nil, ErrBlank
		}
		return nil, fmt.Errorf("page: no factory registered for kind %s", k)
	}
	p := factory()
	if err := p.UnmarshalPage(img); err != nil {
		return nil, err
	}
	return p, nil
}
