// Package keyenc encodes typed column values into byte strings whose
// bytewise (memcmp) order equals the natural order of the values. The paper
// defines an index key as "the concatenation of the values of the columns
// over which the index is defined"; this package supplies a concatenation
// that preserves sort order across column boundaries, so the B+-tree and the
// external sort can compare keys with bytes.Compare alone.
//
// Encodings:
//
//	Int64:  0x01 followed by 8 big-endian bytes with the sign bit flipped.
//	Uint64: 0x02 followed by 8 big-endian bytes.
//	String: 0x03 followed by the bytes with 0x00 escaped as 0x00 0xFF,
//	        terminated by 0x00 0x01. Escaping keeps "a" < "a\x00b" < "ab".
//	Bytes:  0x04 with the same escape/terminator scheme.
//	Null:   0x00 (sorts before every non-null value).
//
// The leading type tags keep heterogenous comparisons well-defined; within a
// given index every column position always carries the same type, so tags
// never actually decide an ordering in practice.
package keyenc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind enumerates the value types that can appear in an index key.
type Kind uint8

// Value kinds, in sort order of their encoding tags.
const (
	KindNull Kind = iota
	KindInt64
	KindUint64
	KindString
	KindBytes
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt64:
		return "int64"
	case KindUint64:
		return "uint64"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one typed column value.
type Value struct {
	Kind Kind
	I    int64
	U    uint64
	S    string
	B    []byte
}

// Null returns the SQL-null value.
func Null() Value { return Value{Kind: KindNull} }

// Int64 wraps v as a Value.
func Int64(v int64) Value { return Value{Kind: KindInt64, I: v} }

// Uint64 wraps v as a Value.
func Uint64(v uint64) Value { return Value{Kind: KindUint64, U: v} }

// String wraps v as a Value.
func String(v string) Value { return Value{Kind: KindString, S: v} }

// Bytes wraps v as a Value.
func Bytes(v []byte) Value { return Value{Kind: KindBytes, B: v} }

func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt64:
		return fmt.Sprintf("%d", v.I)
	case KindUint64:
		return fmt.Sprintf("%du", v.U)
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindBytes:
		return fmt.Sprintf("%x", v.B)
	default:
		return "?"
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt64:
		return v.I == o.I
	case KindUint64:
		return v.U == o.U
	case KindString:
		return v.S == o.S
	case KindBytes:
		return string(v.B) == string(o.B)
	default:
		return false
	}
}

const (
	tagNull   = 0x00
	tagInt64  = 0x01
	tagUint64 = 0x02
	tagString = 0x03
	tagBytes  = 0x04

	escByte  = 0x00
	escPad   = 0xFF // 0x00 inside a string is encoded as 0x00 0xFF
	termByte = 0x01 // strings end with 0x00 0x01
)

// Append appends the order-preserving encoding of v to dst and returns the
// extended slice.
func Append(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(dst, tagNull)
	case KindInt64:
		dst = append(dst, tagInt64)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(v.I)^(1<<63))
		return append(dst, buf[:]...)
	case KindUint64:
		dst = append(dst, tagUint64)
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v.U)
		return append(dst, buf[:]...)
	case KindString:
		dst = append(dst, tagString)
		return appendEscaped(dst, []byte(v.S))
	case KindBytes:
		dst = append(dst, tagBytes)
		return appendEscaped(dst, v.B)
	default:
		panic(fmt.Sprintf("keyenc: unknown kind %d", v.Kind))
	}
}

func appendEscaped(dst, s []byte) []byte {
	for _, b := range s {
		if b == escByte {
			dst = append(dst, escByte, escPad)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, escByte, termByte)
}

// Encode returns the order-preserving concatenation of vals: the index key
// value for a row, per the paper's key definition.
func Encode(vals ...Value) []byte {
	var dst []byte
	for _, v := range vals {
		dst = Append(dst, v)
	}
	return dst
}

// ErrCorrupt is returned when a key cannot be decoded.
var ErrCorrupt = errors.New("keyenc: corrupt encoding")

// EncodedLen returns the byte length of the first encoded value in b without
// decoding or allocating, or ErrCorrupt if b does not begin with a
// well-formed encoding. It is the validation half of DecodeOne for callers
// that reuse stored encodings verbatim (zero-decode index-key extraction).
func EncodedLen(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, ErrCorrupt
	}
	switch b[0] {
	case tagNull:
		return 1, nil
	case tagInt64, tagUint64:
		if len(b) < 9 {
			return 0, ErrCorrupt
		}
		return 9, nil
	case tagString, tagBytes:
		i := 1
		for {
			j := bytes.IndexByte(b[i:], escByte)
			if j < 0 || i+j+1 >= len(b) {
				return 0, ErrCorrupt
			}
			i += j + 1 // index of the byte following the escape
			switch b[i] {
			case escPad:
				i++
			case termByte:
				return i + 1, nil
			default:
				return 0, ErrCorrupt
			}
		}
	default:
		return 0, fmt.Errorf("%w: tag %#x", ErrCorrupt, b[0])
	}
}

// Decode parses all values out of an encoded key.
func Decode(key []byte) ([]Value, error) {
	var vals []Value
	for len(key) > 0 {
		v, rest, err := DecodeOne(key)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		key = rest
	}
	return vals, nil
}

// DecodeOne parses the first value of an encoded key and returns it along
// with the remaining bytes.
func DecodeOne(key []byte) (Value, []byte, error) {
	if len(key) == 0 {
		return Value{}, nil, ErrCorrupt
	}
	switch key[0] {
	case tagNull:
		return Null(), key[1:], nil
	case tagInt64:
		if len(key) < 9 {
			return Value{}, nil, ErrCorrupt
		}
		u := binary.BigEndian.Uint64(key[1:9])
		return Int64(int64(u ^ (1 << 63))), key[9:], nil
	case tagUint64:
		if len(key) < 9 {
			return Value{}, nil, ErrCorrupt
		}
		return Uint64(binary.BigEndian.Uint64(key[1:9])), key[9:], nil
	case tagString, tagBytes:
		raw, rest, err := decodeEscaped(key[1:])
		if err != nil {
			return Value{}, nil, err
		}
		if key[0] == tagString {
			return String(string(raw)), rest, nil
		}
		return Bytes(raw), rest, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: tag %#x", ErrCorrupt, key[0])
	}
}

func decodeEscaped(b []byte) (raw, rest []byte, err error) {
	for i := 0; i < len(b); i++ {
		if b[i] != escByte {
			raw = append(raw, b[i])
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, ErrCorrupt
		}
		switch b[i+1] {
		case escPad:
			raw = append(raw, escByte)
			i++
		case termByte:
			return raw, b[i+2:], nil
		default:
			return nil, nil, ErrCorrupt
		}
	}
	return nil, nil, ErrCorrupt
}
