package keyenc

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := [][]Value{
		{Int64(0)},
		{Int64(-1), Int64(1)},
		{Int64(math.MinInt64), Int64(math.MaxInt64)},
		{Uint64(0), Uint64(math.MaxUint64)},
		{String("")},
		{String("hello"), Int64(42)},
		{String("with\x00null")},
		{String("with\x00\x00двойной")},
		{Bytes(nil)},
		{Bytes([]byte{0x00, 0xFF, 0x01, 0x00})},
		{Null()},
		{Null(), String("x"), Int64(-7), Bytes([]byte{0})},
	}
	for _, vals := range cases {
		enc := Encode(vals...)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", vals, err)
		}
		if len(dec) != len(vals) {
			t.Fatalf("decode %v: got %d values, want %d", vals, len(dec), len(vals))
		}
		for i := range vals {
			if !dec[i].Equal(vals[i]) {
				t.Errorf("round trip %v: value %d = %v, want %v", vals, i, dec[i], vals[i])
			}
		}
	}
}

func TestInt64OrderPreserved(t *testing.T) {
	ints := []int64{math.MinInt64, -1 << 32, -255, -2, -1, 0, 1, 2, 255, 1 << 32, math.MaxInt64}
	for i := 1; i < len(ints); i++ {
		a, b := Encode(Int64(ints[i-1])), Encode(Int64(ints[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding order violated: %d !< %d", ints[i-1], ints[i])
		}
	}
}

func TestStringOrderPreserved(t *testing.T) {
	strs := []string{"", "a", "a\x00", "a\x00b", "a\x01", "ab", "b", "ba"}
	for i := 1; i < len(strs); i++ {
		a, b := Encode(String(strs[i-1])), Encode(String(strs[i]))
		if bytes.Compare(a, b) >= 0 {
			t.Errorf("encoding order violated: %q !< %q", strs[i-1], strs[i])
		}
	}
}

func TestCompositeKeyColumnBoundary(t *testing.T) {
	// ("a", "b") must sort before ("ab", "") even though the raw
	// concatenations are equal; the terminator guarantees it.
	a := Encode(String("a"), String("b"))
	b := Encode(String("ab"), String(""))
	if bytes.Compare(a, b) >= 0 {
		t.Errorf(`("a","b") should sort before ("ab",""): %x vs %x`, a, b)
	}
}

func TestNullSortsFirst(t *testing.T) {
	null := Encode(Null())
	for _, v := range []Value{Int64(math.MinInt64), Uint64(0), String(""), Bytes(nil)} {
		if bytes.Compare(null, Encode(v)) >= 0 {
			t.Errorf("NULL should sort before %v", v)
		}
	}
}

func TestPropertyInt64OrderMatchesEncodingOrder(t *testing.T) {
	f := func(a, b int64) bool {
		ea, eb := Encode(Int64(a)), Encode(Int64(b))
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyStringOrderMatchesEncodingOrder(t *testing.T) {
	f := func(a, b string) bool {
		ea, eb := Encode(String(a)), Encode(String(b))
		return bytes.Compare(ea, eb) == bytes.Compare([]byte(a), []byte(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(b []byte, s string, i int64, u uint64) bool {
		vals := []Value{Bytes(b), String(s), Int64(i), Uint64(u)}
		dec, err := Decode(Encode(vals...))
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for j := range vals {
			if !dec[j].Equal(vals[j]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertySortedValuesSortedEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		vals := make([]int64, 100)
		for i := range vals {
			vals[i] = rng.Int63n(1000) - 500
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		encs := make([][]byte, len(vals))
		for i, v := range vals {
			encs[i] = Encode(Int64(v), String("suffix"))
		}
		if !sort.SliceIsSorted(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 }) {
			t.Fatal("encodings of sorted values are not sorted")
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		{0x01},                  // truncated int64
		{0x02, 1, 2, 3},         // truncated uint64
		{0x03, 'a'},             // unterminated string
		{0x03, 'a', 0x00},       // escape at end
		{0x03, 'a', 0x00, 0x02}, // bad escape
		{0x99},                  // unknown tag
	}
	for _, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("Decode(%x) should fail", c)
		}
	}
	if _, _, err := DecodeOne(nil); err == nil {
		t.Error("DecodeOne(nil) should fail")
	}
}
