package keyenc

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// parseValues interprets fuzz bytes as a value list: each value takes a kind
// byte followed by its operand (8 bytes for the integer kinds, a
// length-prefixed blob for string/bytes). The interpreter is total — any
// input yields some value list — so the fuzzer explores the semantic space,
// not the parser.
func parseValues(data []byte) []Value {
	var vals []Value
	for len(vals) < 8 && len(data) > 0 {
		kind := data[0] % 5
		data = data[1:]
		switch Kind(kind) {
		case KindNull:
			vals = append(vals, Null())
		case KindInt64:
			var buf [8]byte
			copy(buf[:], data)
			data = data[min(8, len(data)):]
			vals = append(vals, Int64(int64(binary.BigEndian.Uint64(buf[:]))))
		case KindUint64:
			var buf [8]byte
			copy(buf[:], data)
			data = data[min(8, len(data)):]
			vals = append(vals, Uint64(binary.BigEndian.Uint64(buf[:])))
		case KindString, KindBytes:
			n := 0
			if len(data) > 0 {
				n = int(data[0]) % 24
				data = data[1:]
			}
			if n > len(data) {
				n = len(data)
			}
			blob := append([]byte(nil), data[:n]...)
			data = data[n:]
			if Kind(kind) == KindString {
				vals = append(vals, String(string(blob)))
			} else {
				vals = append(vals, Bytes(blob))
			}
		}
	}
	return vals
}

// compareValues is the semantic comparator the encoding must agree with:
// position by position, first by kind tag, then by the natural order of the
// value; a shorter list that is a prefix of a longer one sorts first.
func compareValues(a, b []Value) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		av, bv := a[i], b[i]
		if av.Kind != bv.Kind {
			if av.Kind < bv.Kind {
				return -1
			}
			return 1
		}
		var c int
		switch av.Kind {
		case KindNull:
			c = 0
		case KindInt64:
			switch {
			case av.I < bv.I:
				c = -1
			case av.I > bv.I:
				c = 1
			}
		case KindUint64:
			switch {
			case av.U < bv.U:
				c = -1
			case av.U > bv.U:
				c = 1
			}
		case KindString:
			c = bytes.Compare([]byte(av.S), []byte(bv.S))
		case KindBytes:
			c = bytes.Compare(av.B, bv.B)
		}
		if c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// FuzzKeyEncOrder checks the package's one contract on arbitrary value
// lists: bytes.Compare of the encodings equals the semantic comparison of
// the values (memcmp-comparability), and Decode inverts Encode exactly.
func FuzzKeyEncOrder(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 5}, []byte{1, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{3, 1, 'a'}, []byte{3, 3, 'a', 0, 'b'})                                            // "a" vs "a\x00b"
	f.Add([]byte{3, 2, 'a', 'b'}, []byte{3, 1, 'a'})                                               // "ab" vs "a"
	f.Add([]byte{0, 1, 255, 255, 255, 255, 255, 255, 255, 255}, []byte{2, 0, 0, 0, 0, 0, 0, 0, 0}) // null,-1 vs uint 0
	f.Add([]byte{4, 3, 0, 0, 1}, []byte{4, 2, 0, 0})                                               // embedded zeros
	f.Add([]byte{1, 128, 0, 0, 0, 0, 0, 0, 0}, []byte{1, 127, 255, 255, 255, 255, 255, 255, 255})  // MinInt64 vs MaxInt64

	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a, b := parseValues(rawA), parseValues(rawB)
		ea, eb := Encode(a...), Encode(b...)

		if got, want := sign(bytes.Compare(ea, eb)), sign(compareValues(a, b)); got != want {
			t.Fatalf("order mismatch: bytes.Compare=%d semantic=%d\na=%v -> %x\nb=%v -> %x", got, want, a, ea, b, eb)
		}
		for _, pair := range []struct {
			vals []Value
			enc  []byte
		}{{a, ea}, {b, eb}} {
			dec, err := Decode(pair.enc)
			if err != nil {
				t.Fatalf("decode %x (from %v): %v", pair.enc, pair.vals, err)
			}
			if len(dec) != len(pair.vals) {
				t.Fatalf("decode %x: %d values, want %d", pair.enc, len(dec), len(pair.vals))
			}
			for i := range dec {
				if !dec[i].Equal(pair.vals[i]) {
					t.Fatalf("decode %x: value %d = %v, want %v", pair.enc, i, dec[i], pair.vals[i])
				}
			}
		}
	})
}
