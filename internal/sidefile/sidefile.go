// Package sidefile implements the SF algorithm's side-file: "an append-only
// (sequential) table in which the transactions insert tuples of the form
// <operation, key>, where operation is insert or delete. Transactions append
// entries without doing any locking of the appended entries" (§1.3, §3.1).
//
// Appends are logged with redo-only records ("transactions write redo-only
// log records for the appends that they make to the side-file") and are
// never undone — a rolled-back transaction *appends a compensating entry*
// instead (Fig. 2), preserving the strict append-only discipline. The index
// builder consumes entries by position, checkpointing its position so
// side-file processing is restartable (§3.2.5).
package sidefile

import (
	"encoding/binary"
	"fmt"
	"sync"

	"onlineindex/internal/buffer"
	"onlineindex/internal/enc"
	"onlineindex/internal/latch"
	"onlineindex/internal/metrics"
	"onlineindex/internal/page"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

func init() {
	page.Register(page.KindSideFile, func() page.Page { return &Page{} })
}

// Op is a side-file operation.
type Op uint8

// Side-file operations.
const (
	OpInsert Op = 1 // insert <key, RID> into the index
	OpDelete Op = 2 // delete <key, RID> from the index
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Entry is one side-file tuple.
type Entry struct {
	Op  Op
	Key []byte
	RID types.RID
}

func entrySize(e Entry) int { return 1 + 4 + len(e.Key) + 10 }

// Page is one side-file page: a sequence of entries plus the sequence number
// of the first one.
type Page struct {
	page.Header
	startSeq uint64
	entries  []Entry
	used     int
}

const sfFixed = page.HeaderSize + 8 + 2

// NewPage returns an empty side-file page starting at startSeq.
func NewPage(startSeq uint64) *Page {
	return &Page{startSeq: startSeq, used: sfFixed}
}

// Kind implements page.Page.
func (p *Page) Kind() page.Kind { return page.KindSideFile }

// MarshalPage implements page.Page.
func (p *Page) MarshalPage() ([]byte, error) {
	img := make([]byte, page.Size)
	p.MarshalHeader(img, page.KindSideFile)
	off := page.HeaderSize
	binary.LittleEndian.PutUint64(img[off:], p.startSeq)
	off += 8
	binary.LittleEndian.PutUint16(img[off:], uint16(len(p.entries)))
	off += 2
	for _, e := range p.entries {
		need := entrySize(e)
		if off+need > page.Size {
			return nil, fmt.Errorf("sidefile: page overflow at %d", off)
		}
		img[off] = uint8(e.Op)
		off++
		binary.LittleEndian.PutUint32(img[off:], uint32(len(e.Key)))
		off += 4
		copy(img[off:], e.Key)
		off += len(e.Key)
		binary.LittleEndian.PutUint32(img[off:], uint32(e.RID.PageID.File))
		binary.LittleEndian.PutUint32(img[off+4:], uint32(e.RID.PageID.Page))
		binary.LittleEndian.PutUint16(img[off+8:], uint16(e.RID.Slot))
		off += 10
	}
	return img, nil
}

// UnmarshalPage implements page.Page.
func (p *Page) UnmarshalPage(img []byte) error {
	if _, err := p.UnmarshalHeader(img); err != nil {
		return err
	}
	off := page.HeaderSize
	p.startSeq = binary.LittleEndian.Uint64(img[off:])
	off += 8
	n := int(binary.LittleEndian.Uint16(img[off:]))
	off += 2
	p.entries = make([]Entry, 0, n)
	p.used = sfFixed
	for i := 0; i < n; i++ {
		if off+5 > len(img) {
			return fmt.Errorf("sidefile: corrupt page (entry %d)", i)
		}
		e := Entry{Op: Op(img[off])}
		off++
		kl := int(binary.LittleEndian.Uint32(img[off:]))
		off += 4
		if off+kl+10 > len(img) {
			return fmt.Errorf("sidefile: corrupt page (entry %d key)", i)
		}
		e.Key = append([]byte(nil), img[off:off+kl]...)
		off += kl
		e.RID = types.RID{
			PageID: types.PageID{
				File: types.FileID(binary.LittleEndian.Uint32(img[off:])),
				Page: types.PageNum(binary.LittleEndian.Uint32(img[off+4:])),
			},
			Slot: types.SlotNum(binary.LittleEndian.Uint16(img[off+8:])),
		}
		off += 10
		p.entries = append(p.entries, e)
		p.used += entrySize(e)
	}
	return nil
}

// AppendPayload is the body of a TypeSFAppend log record.
type AppendPayload struct {
	Seq uint64
	E   Entry
}

// Encode serializes the payload.
func (p *AppendPayload) Encode() []byte {
	return enc.NewWriter().U64(p.Seq).U8(uint8(p.E.Op)).Bytes32(p.E.Key).RID(p.E.RID).Bytes()
}

// DecodeAppend parses an AppendPayload.
func DecodeAppend(b []byte) (AppendPayload, error) {
	r := enc.NewReader(b)
	p := AppendPayload{Seq: r.U64(), E: Entry{Op: Op(r.U8()), Key: r.Bytes32(), RID: r.RID()}}
	return p, r.Err()
}

// Metrics holds a side-file's registry handles; the zero value disables
// export. Appends is the producer side; Entries mirrors Count() as a gauge
// so a monitor can subtract the builder's apply position (exported by the
// build as sidefile.applied) to see the catch-up backlog.
type Metrics struct {
	Appends *metrics.Counter
	Entries *metrics.Gauge
}

// MetricsFrom resolves the side-file's standard instrument names on r.
// Side-files of concurrent builds share the handles: the backlog reported
// is engine-wide, which is what a capacity monitor wants.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Appends: r.Counter("sidefile.appends"),
		Entries: r.Gauge("sidefile.entries"),
	}
}

// File is one side-file.
type File struct {
	pool *buffer.Pool
	file types.FileID

	mu     sync.Mutex
	count  uint64          // total entries
	pages  []types.PageNum // page of each startSeq, in order (implicitly 0..n-1)
	starts []uint64        // startSeq per page
	met    Metrics
}

// SetMetrics attaches registry handles. Call before concurrent use. A
// reopened side-file (restart) re-exports its recovered entry count.
func (s *File) SetMetrics(m Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	m.Entries.Add(int64(s.count))
}

// Create formats a new side-file (one empty page) under tl.
func Create(pool *buffer.Pool, file types.FileID, tl rm.TxnLogger) (*File, error) {
	if err := pool.OpenFile(file); err != nil {
		return nil, err
	}
	n, err := pool.PageCount(file)
	if err != nil {
		return nil, err
	}
	if n != 0 {
		return nil, fmt.Errorf("sidefile: create on non-empty file %d", file)
	}
	f, err := pool.NewPage(file, NewPage(0))
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(f)
	lsn, err := tl.Log(&wal.Record{Type: wal.TypeSFFormat, Flags: wal.FlagRedo, PageID: f.ID})
	if err != nil {
		return nil, err
	}
	f.MarkDirty(lsn)
	return &File{pool: pool, file: file, pages: []types.PageNum{0}, starts: []uint64{0}}, nil
}

// Open loads an existing side-file, scanning its pages to rebuild the
// position index and the entry count.
func Open(pool *buffer.Pool, file types.FileID) (*File, error) {
	if err := pool.OpenFile(file); err != nil {
		return nil, err
	}
	n, err := pool.PageCount(file)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("sidefile: open of empty file %d", file)
	}
	sf := &File{pool: pool, file: file}
	for i := types.PageNum(0); i < n; i++ {
		pid := types.PageID{File: file, Page: i}
		err := rm.WithPage(pool, pid, latch.S, func(fr *buffer.Frame) error {
			p, ok := fr.Page().(*Page)
			if !ok {
				return fmt.Errorf("sidefile: page %s is not a side-file page", pid)
			}
			sf.pages = append(sf.pages, i)
			sf.starts = append(sf.starts, p.startSeq)
			sf.count = p.startSeq + uint64(len(p.entries))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return sf, nil
}

// FileID returns the side-file's file ID.
func (s *File) FileID() types.FileID { return s.file }

// Count returns the number of entries appended so far.
func (s *File) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Append adds e to the end of the side-file under tl (redo-only log record,
// no locks) and returns its sequence number.
func (s *File) Append(tl rm.TxnLogger, e Entry) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.count
	lastPg := s.pages[len(s.pages)-1]
	fr, err := s.pool.Fetch(types.PageID{File: s.file, Page: lastPg})
	if err != nil {
		return 0, err
	}
	fr.Latch.Acquire(latch.X)
	p := fr.Page().(*Page)
	if p.used+entrySize(e) > page.Size {
		fr.Latch.Release(latch.X)
		s.pool.Unpin(fr)
		nf, err := s.pool.NewPage(s.file, NewPage(seq))
		if err != nil {
			return 0, err
		}
		s.pages = append(s.pages, nf.ID.Page)
		s.starts = append(s.starts, seq)
		fr = nf
		fr.Latch.Acquire(latch.X)
		p = fr.Page().(*Page)
	}
	pl := AppendPayload{Seq: seq, E: e}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeSFAppend, Flags: wal.FlagRedo,
		PageID: fr.ID, Payload: pl.Encode(),
	})
	if err != nil {
		fr.Latch.Release(latch.X)
		s.pool.Unpin(fr)
		return 0, err
	}
	p.entries = append(p.entries, Entry{Op: e.Op, Key: append([]byte(nil), e.Key...), RID: e.RID})
	p.used += entrySize(e)
	fr.MarkDirty(lsn)
	fr.Latch.Release(latch.X)
	s.pool.Unpin(fr)
	s.count = seq + 1
	s.met.Appends.Inc()
	s.met.Entries.Inc()
	return seq, nil
}

// Read returns up to max entries starting at sequence number from. It
// returns the entries and the sequence number of the next unread entry.
func (s *File) Read(from uint64, max int) ([]Entry, uint64, error) {
	s.mu.Lock()
	count := s.count
	// Find the page containing `from` (last page whose startSeq <= from).
	pi := len(s.starts) - 1
	for pi > 0 && s.starts[pi] > from {
		pi--
	}
	pages := append([]types.PageNum(nil), s.pages[pi:]...)
	s.mu.Unlock()

	if from >= count {
		return nil, from, nil
	}
	var out []Entry
	next := from
	for _, pg := range pages {
		if len(out) >= max {
			break
		}
		pid := types.PageID{File: s.file, Page: pg}
		err := rm.WithPage(s.pool, pid, latch.S, func(fr *buffer.Frame) error {
			p := fr.Page().(*Page)
			for i, e := range p.entries {
				seq := p.startSeq + uint64(i)
				if seq < next || len(out) >= max {
					continue
				}
				out = append(out, Entry{Op: e.Op, Key: append([]byte(nil), e.Key...), RID: e.RID})
				next = seq + 1
			}
			return nil
		})
		if err != nil {
			return nil, from, err
		}
	}
	return out, next, nil
}

// Redo applies a side-file log record during restart recovery.
func Redo(pool *buffer.Pool, rec *wal.Record) error {
	f, err := pool.FetchOrCreate(rec.PageID, func() page.Page { return NewPage(0) }, rec.LSN)
	if err != nil {
		return err
	}
	defer pool.Unpin(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	p, ok := f.Page().(*Page)
	if !ok {
		return fmt.Errorf("sidefile: redo: page %s is not a side-file page", rec.PageID)
	}
	if p.PageLSN() >= rec.LSN {
		return nil
	}
	switch rec.Type {
	case wal.TypeSFFormat:
		*p = *NewPage(0)
	case wal.TypeSFAppend:
		pl, err := DecodeAppend(rec.Payload)
		if err != nil {
			return err
		}
		if len(p.entries) == 0 {
			p.startSeq = pl.Seq
		}
		want := p.startSeq + uint64(len(p.entries))
		if pl.Seq != want {
			return fmt.Errorf("sidefile: redo append LSN %d: seq %d, page expects %d", rec.LSN, pl.Seq, want)
		}
		p.entries = append(p.entries, pl.E)
		p.used += entrySize(pl.E)
	default:
		return fmt.Errorf("sidefile: redo of unexpected record type %s", rec.Type)
	}
	f.MarkDirty(rec.LSN)
	return nil
}
