package sidefile

import (
	"fmt"
	"sync"
	"testing"

	"onlineindex/internal/buffer"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

func setup(t *testing.T) (*vfs.MemFS, *wal.Log, *buffer.Pool, *File) {
	t.Helper()
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(fs, log, 64)
	sf, err := Create(pool, 9, &rm.SimpleLogger{L: log, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, log, pool, sf
}

func mkEntry(i int) Entry {
	op := OpInsert
	if i%3 == 0 {
		op = OpDelete
	}
	return Entry{Op: op, Key: []byte(fmt.Sprintf("key-%06d", i)), RID: types.RID{
		PageID: types.PageID{File: 1, Page: types.PageNum(i / 10)}, Slot: types.SlotNum(i % 10)}}
}

func TestAppendRead(t *testing.T) {
	_, log, _, sf := setup(t)
	tl := &rm.SimpleLogger{L: log, Txn: 2}
	const n = 2000 // spans multiple pages
	for i := 0; i < n; i++ {
		seq, err := sf.Append(tl, mkEntry(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if sf.Count() != n {
		t.Fatalf("count = %d", sf.Count())
	}
	// Read in chunks from various positions.
	got, next, err := sf.Read(0, 100)
	if err != nil || len(got) != 100 || next != 100 {
		t.Fatalf("read: %d entries, next=%d, err=%v", len(got), next, err)
	}
	for i, e := range got {
		want := mkEntry(i)
		if e.Op != want.Op || string(e.Key) != string(want.Key) || e.RID != want.RID {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want)
		}
	}
	got, next, _ = sf.Read(1995, 100)
	if len(got) != 5 || next != n {
		t.Fatalf("tail read: %d entries, next=%d", len(got), next)
	}
	got, next, _ = sf.Read(n, 10)
	if len(got) != 0 || next != n {
		t.Fatalf("read past end: %d, %d", len(got), next)
	}
}

func TestAppendsAreRedoOnly(t *testing.T) {
	_, log, _, sf := setup(t)
	tl := &rm.SimpleLogger{L: log, Txn: 2}
	sf.Append(tl, mkEntry(1))
	it, _ := log.NewIterator(1)
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		if r.Type == wal.TypeSFAppend {
			if r.Undoable() || !r.Redoable() {
				t.Fatalf("SF append flags = %v, want redo-only", r.Flags)
			}
		}
	}
}

func TestConcurrentAppends(t *testing.T) {
	_, log, _, sf := setup(t)
	const workers = 8
	const per = 200
	var wg sync.WaitGroup
	seqs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &rm.SimpleLogger{L: log, Txn: types.TxnID(w + 1)}
			for i := 0; i < per; i++ {
				seq, err := sf.Append(tl, mkEntry(w*per+i))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	if sf.Count() != workers*per {
		t.Fatalf("count = %d, want %d", sf.Count(), workers*per)
	}
	seen := make(map[uint64]bool)
	for _, ws := range seqs {
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("duplicate seq %d", s)
			}
			seen[s] = true
		}
	}
	all, next, err := sf.Read(0, workers*per+10)
	if err != nil || len(all) != workers*per || next != workers*per {
		t.Fatalf("read all: %d, next=%d, err=%v", len(all), next, err)
	}
}

func TestReopenAfterFlush(t *testing.T) {
	fs, log, pool, sf := setup(t)
	tl := &rm.SimpleLogger{L: log, Txn: 2}
	for i := 0; i < 500; i++ {
		sf.Append(tl, mkEntry(i))
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.New(fs, log, 64)
	sf2, err := Open(pool2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sf2.Count() != 500 {
		t.Fatalf("reopened count = %d", sf2.Count())
	}
	got, _, _ := sf2.Read(123, 7)
	for i, e := range got {
		want := mkEntry(123 + i)
		if string(e.Key) != string(want.Key) {
			t.Fatalf("entry %d = %q, want %q", i, e.Key, want.Key)
		}
	}
}

func TestRedoRebuildsSideFile(t *testing.T) {
	fs, log, _, sf := setup(t)
	tl := &rm.SimpleLogger{L: log, Txn: 2}
	const n = 800
	for i := 0; i < n; i++ {
		sf.Append(tl, mkEntry(i))
	}
	log.ForceAll()
	fs.Crash()
	fs.Recover()

	log2, _ := wal.Open(fs)
	pool2 := buffer.New(fs, log2, 64)
	it, _ := log2.NewIterator(1)
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Type == wal.TypeSFFormat || r.Type == wal.TypeSFAppend {
			if err := Redo(pool2, &r); err != nil {
				t.Fatalf("redo: %v", err)
			}
		}
	}
	sf2, err := Open(pool2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sf2.Count() != n {
		t.Fatalf("count after redo = %d, want %d", sf2.Count(), n)
	}
	all, _, _ := sf2.Read(0, n)
	for i, e := range all {
		want := mkEntry(i)
		if e.Op != want.Op || string(e.Key) != string(want.Key) || e.RID != want.RID {
			t.Fatalf("entry %d mismatch after redo", i)
		}
	}
}

func TestPageRoundTripWithLargeKeys(t *testing.T) {
	p := NewPage(77)
	for i := 0; i < 5; i++ {
		e := Entry{Op: OpInsert, Key: make([]byte, 1000), RID: types.RID{Slot: types.SlotNum(i)}}
		e.Key[0] = byte(i)
		p.entries = append(p.entries, e)
		p.used += entrySize(e)
	}
	img, err := p.MarshalPage()
	if err != nil {
		t.Fatal(err)
	}
	var q Page
	if err := q.UnmarshalPage(img); err != nil {
		t.Fatal(err)
	}
	if q.startSeq != 77 || len(q.entries) != 5 || q.used != p.used {
		t.Fatalf("round trip mismatch: %+v", q)
	}
}
