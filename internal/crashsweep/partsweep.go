package crashsweep

import (
	"bytes"
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/partition"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// verifyPartScenario is the partition-aware oracle. A crash may have landed
// anywhere in the coordinator's schedule — before the logical descriptor
// was durable, mid shard build, between shards, during the cross-shard
// uniqueness sweep, or at the completion-meta commit — and in every case
// the recovered system must converge to a complete, correct logical index:
//
//  1. partition.FinishPending resumes shard builds from their durable
//     checkpoints, rebuilds shards that never became durable, and re-runs
//     the completion protocol.
//  2. If the logical descriptor itself vanished (crash before its meta
//     commit, or an injected-error teardown), the fan-out build is rerun
//     offline from scratch — the vanish must have been atomic.
//  3. Every shard index must then pass the full single-shard oracle
//     (structural invariants, heap consistency, offline differential), the
//     logical index the cross-shard audit, and the aggregated progress
//     report must be terminal.
//  4. The routed read path must serve exactly the committed rows, the WAL
//     tail must parse end to end, and a routed post-crash insert must keep
//     all of it consistent.
func verifyPartScenario(db *engine.DB, mem *vfs.MemFS, sc *Scenario, pr *PointResult) error {
	pending, err := db.PendingBuilds()
	if err != nil {
		return fmt.Errorf("pending builds: %w", err)
	}
	pr.Resumed = len(pending)
	if err := partition.FinishPending(db, partition.BuildOptions{Options: sc.Opts, Serial: true}); err != nil {
		return fmt.Errorf("finish pending: %w", err)
	}

	r := partition.NewRouter(db)
	for _, spec := range sc.Specs {
		if _, ok := db.Catalog().PartIndex(spec.Name); !ok {
			pr.Rebuilt++
			ospec := spec
			ospec.Method = catalog.MethodOffline
			if _, err := partition.Build(db, ospec, partition.BuildOptions{Serial: true}); err != nil {
				return fmt.Errorf("rebuilding vanished logical index %q: %w", spec.Name, err)
			}
		}
		pi, ok := db.Catalog().PartIndex(spec.Name)
		if !ok {
			return fmt.Errorf("logical index %q missing after rebuild", spec.Name)
		}
		if pi.State != catalog.StateComplete {
			return fmt.Errorf("logical index %q in state %v after finish", spec.Name, pi.State)
		}
		snap, ok := partition.Progress(db, spec.Name)
		if !ok || !snap.Complete || snap.Fraction != 1 {
			return fmt.Errorf("logical index %q aggregate progress not terminal: ok=%v complete=%v fraction=%v",
				spec.Name, ok, snap.Complete, snap.Fraction)
		}
		if snap.Regressions != 0 {
			return fmt.Errorf("logical index %q progress fell below its durable floor %d times",
				spec.Name, snap.Regressions)
		}
		for i := 0; i < sc.Partitions; i++ {
			sname := catalog.PartShardIndexName(spec.Name, i)
			six, ok := db.Catalog().Index(sname)
			if !ok {
				return fmt.Errorf("shard index %q missing", sname)
			}
			if six.State != catalog.StateComplete {
				return fmt.Errorf("shard index %q in state %v", sname, six.State)
			}
			tree, err := db.TreeOf(six.ID)
			if err != nil {
				return fmt.Errorf("tree of %q: %w", sname, err)
			}
			if err := btree.CheckInvariants(tree); err != nil {
				return fmt.Errorf("shard index %q: %w", sname, err)
			}
			if err := db.CheckIndexConsistency(sname); err != nil {
				return err
			}
			sspec := spec
			sspec.Name = sname
			sspec.Table = catalog.PartShardTableName(spec.Table, i)
			if err := differential(db, sspec); err != nil {
				return err
			}
		}
		if err := r.CheckIndexConsistency(spec.Name); err != nil {
			return fmt.Errorf("cross-shard audit of %q: %w", spec.Name, err)
		}
	}

	if err := verifyPartReads(db, r, sc); err != nil {
		return fmt.Errorf("routed read oracle: %w", err)
	}

	ti, err := wal.VerifyTail(mem)
	if err != nil {
		return fmt.Errorf("wal tail: %w", err)
	}
	if ti.Torn || ti.Valid != ti.Size {
		return fmt.Errorf("wal tail invalid after recovery: %d of %d bytes parse (torn=%v)", ti.Valid, ti.Size, ti.Torn)
	}

	// Post-recovery smoke through the router: the insert routes to a shard,
	// maintains that shard's tree, and probes the siblings for uniqueness.
	tx := db.Begin()
	if _, err := r.Insert(tx, "items", sweepRow(9_999_999, sweepName(9_999_999), 1)); err != nil {
		return fmt.Errorf("post-recovery routed insert: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	for _, spec := range sc.Specs {
		if err := r.CheckIndexConsistency(spec.Name); err != nil {
			return fmt.Errorf("after post-recovery routed insert: %w", err)
		}
	}
	return nil
}

// verifyPartReads checks the routed read path against the heap itself:
// every committed row is found through a fan-out point lookup on the
// logical unique name index, and the merged scan returns exactly the
// table's rows in global key order.
func verifyPartReads(db *engine.DB, r *partition.Router, sc *Scenario) error {
	type refRow struct {
		rid  types.RID
		name string
	}
	var ref []refRow
	if err := r.TableScan("items", func(rid types.RID, row engine.Row) error {
		ref = append(ref, refRow{rid: rid, name: row[1].S})
		return nil
	}); err != nil {
		return err
	}
	if len(ref) == 0 {
		return fmt.Errorf("routed table scan found no rows")
	}

	tx := db.Begin()
	defer tx.Rollback() //nolint:errcheck // read-only: rollback just releases S locks
	for i := 0; i < len(ref); i += 7 {
		got, err := r.Lookup(tx, "by_name", keyenc.String(ref[i].name))
		if err != nil {
			return err
		}
		if len(got) != 1 || got[0] != ref[i].rid {
			return fmt.Errorf("routed lookup %q = %v, heap says [%v]", ref[i].name, got, ref[i].rid)
		}
	}

	want := make(map[types.RID]bool, len(ref))
	for _, rr := range ref {
		want[rr.rid] = true
	}
	var prev []byte
	n := 0
	err := r.Scan(tx, "by_name", nil, nil, func(key []byte, rid types.RID) bool {
		if prev != nil && bytes.Compare(key, prev) < 0 {
			prev = nil // flag misorder; checked below via n mismatch
			return false
		}
		prev = append(prev[:0], key...)
		if !want[rid] {
			return false
		}
		n++
		return true
	})
	if err != nil {
		return err
	}
	if n != len(ref) {
		return fmt.Errorf("merged scan returned %d ordered known rows, heap has %d", n, len(ref))
	}
	return nil
}
