package crashsweep

import (
	"errors"
	"fmt"
	"strings"

	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/partition"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// Scenario is one scripted build-plus-workload whose crash schedule the
// sweep explores. Run must be deterministic: single-goroutine, no
// wall-clock or map-iteration dependence, so the i'th I/O operation of
// every execution is the same operation. The sweep verifies this by
// comparing each faulted run's operation at point k against the count run's
// trace.
type Scenario struct {
	Name string
	// Rows seeds the "items" table before the harness arms fault counting.
	Rows int
	// Opts are the build options. Resume after a crash reuses them with the
	// DML hook stripped: a new incarnation of the system does not replay the
	// interleaved workload, it only finishes the build.
	Opts core.Options
	// Specs are the indexes Run creates, which the oracle verifies.
	Specs []engine.CreateIndexSpec
	// Setup, when set, runs after the seed rows are committed but before the
	// harness arms fault counting — state the scenario treats as
	// pre-existing (a complete index to read during the build, say). Its
	// I/O is not part of the fault-point numbering.
	Setup func(db *engine.DB, rids []types.RID) error
	// Run performs the faulted section. rids are the seed rows' RIDs in
	// insert order.
	Run func(db *engine.DB, rids []types.RID) error
	// ReadCheck extends the post-recovery oracle with the read-path
	// assertions: point lookups (tree and hash passes) against a
	// heap-derived reference, ordered index scans, and pruned-vs-full
	// sequential scan equivalence. Only meaningful for scenarios whose
	// Setup pre-built the by_id index readers use.
	ReadCheck bool
	// Shards is the buffer pool's page-table shard count (0 means 1, the
	// historical single-shard pool). Scenarios stay single-goroutine either
	// way; a multi-shard scenario exercises the sharded fetch/eviction paths
	// under the sweep, which stays deterministic because the shard hash is a
	// fixed function of the page ID. The lock manager is always 1 stripe.
	Shards int
	// Partitions, when > 0, hash-partitions the "items" table on "id" into
	// that many shards: the seed rows and the observer's DML route through a
	// partition.Router, Run drives the fan-out coordinator (in Serial mode,
	// so the shard order is fixed), and the oracle switches to the
	// partition-aware verifyPartScenario. Routing is FNV over the encoded
	// key — a fixed function — so determinism is preserved.
	Partitions int
}

// Table schema shared by all scenarios: id (unique by construction),
// a padded name (fat records keep the page count realistic at small row
// counts), and a low-cardinality qty.
func sweepSchema() catalog.Schema {
	return catalog.Schema{
		{Name: "id", Kind: keyenc.KindInt64},
		{Name: "name", Kind: keyenc.KindString},
		{Name: "qty", Kind: keyenc.KindInt64},
	}
}

func sweepRow(id int64, name string, qty int64) engine.Row {
	return engine.Row{keyenc.Int64(id), keyenc.String(name), keyenc.Int64(qty)}
}

func sweepName(i int) string {
	return fmt.Sprintf("name-%06d-%s", i, strings.Repeat("x", 80))
}

// dml is the write surface the observer drives. Both *engine.DB (the
// legacy single-heap scenarios) and *partition.Router (part2) satisfy it,
// so the same scripted workload exercises either topology.
type dml interface {
	Begin() *txn.Txn
	Insert(tx *txn.Txn, table string, row engine.Row) (types.RID, error)
	Update(tx *txn.Txn, table string, rid types.RID, row engine.Row) (types.RID, error)
	Delete(tx *txn.Txn, table string, rid types.RID) error
}

// observer returns an OnCheckpoint hook that runs one scripted transaction
// after every builder checkpoint: an insert of a fresh row, an update and a
// delete of seed rows. Targets are chosen by fixed arithmetic on the
// checkpoint ordinal, and the closure tracks row movement, so the DML
// stream is a pure function of the checkpoint sequence — which is exactly
// what (seed, point) reproducibility requires. During an SF scan this
// generates behind-Current-RID updates (applied directly) and ahead-of-it
// ones (captured in the side-file); during load and catch-up, every change
// lands in the side-file, growing the tail the drain must chase (§3.2.3).
func observer(db dml, rids []types.RID) func(engine.IBPhase) error {
	n := 0
	cur := append([]types.RID(nil), rids...) // current RID of each live seed row
	live := make([]bool, len(rids))
	for i := range live {
		live[i] = true
	}
	pick := func(start int) int {
		for i := 0; i < len(live); i++ {
			j := (start + i) % len(live)
			if live[j] {
				return j
			}
		}
		return -1
	}
	return func(engine.IBPhase) error {
		n++
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", sweepRow(int64(1_000_000+n), sweepName(1_000_000+n), int64(n))); err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		if u := pick(7 * n); u >= 0 {
			rid, err := db.Update(tx, "items", cur[u], sweepRow(int64(2_000_000+n), fmt.Sprintf("upd-%06d-%s", n, strings.Repeat("y", 80)), int64(n%7)))
			if err != nil {
				tx.Rollback() //nolint:errcheck
				return err
			}
			cur[u] = rid
		}
		if d := pick(11*n + 3); d >= 0 {
			if err := db.Delete(tx, "items", cur[d]); err != nil {
				tx.Rollback() //nolint:errcheck
				return err
			}
			live[d] = false
		}
		if err := tx.Commit(); err != nil {
			// A commit whose log force fails poisons itself to aborted
			// (undo, lock release, active-table removal all happen inside
			// Commit), so there is no zombie to clean up here — just
			// surface the error and let the incarnation unwind.
			return err
		}
		return nil
	}
}

// shadowRow is the readObserver's record of one committed row.
type shadowRow struct {
	rid  types.RID
	id   int64
	qty  int64
	live bool
}

// readObserver is observer with a reader bolted on: the same shape of
// scripted DML each checkpoint, now mirrored into a shadow of the table,
// followed by reads — point lookups on the pre-built by_id index (twice, so
// the second pass exercises the hash fast path), a lookup of the most
// recently deleted id (must miss through its pseudo-deleted entry), an
// unreadability probe of the index being built, and every third step a
// zone-mapped sequential scan — each checked against the shadow at its
// commit point. Everything runs on the builder goroutine, so the I/O
// schedule stays a pure function of the checkpoint sequence; a hash-cache
// hit legitimately does less I/O than a tree descent, deterministically so.
func readObserver(db *engine.DB, rids []types.RID, building string) func(engine.IBPhase) error {
	n := 0
	rows := make([]shadowRow, len(rids))
	for i, rid := range rids {
		rows[i] = shadowRow{rid: rid, id: int64(i), qty: int64(i % 97), live: true}
	}
	lastDeleted := int64(-1)
	pick := func(start int) int {
		for i := 0; i < len(rows); i++ {
			j := (start + i) % len(rows)
			if rows[j].live {
				return j
			}
		}
		return -1
	}
	return func(engine.IBPhase) error {
		n++
		tx := db.Begin()
		insID := int64(1_000_000 + n)
		insRID, err := db.Insert(tx, "items", sweepRow(insID, sweepName(1_000_000+n), int64(n)))
		if err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		upd, del := -1, -1
		updID := int64(2_000_000 + n)
		var updRID types.RID
		if u := pick(7 * n); u >= 0 {
			updRID, err = db.Update(tx, "items", rows[u].rid,
				sweepRow(updID, fmt.Sprintf("upd-%06d-%s", n, strings.Repeat("y", 80)), int64(n%7)))
			if err != nil {
				tx.Rollback() //nolint:errcheck
				return err
			}
			upd = u
		}
		if d := pick(11*n + 3); d >= 0 && d != upd {
			if err := db.Delete(tx, "items", rows[d].rid); err != nil {
				tx.Rollback() //nolint:errcheck
				return err
			}
			del = d
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		rows = append(rows, shadowRow{rid: insRID, id: insID, qty: int64(n), live: true})
		if upd >= 0 {
			rows[upd].rid, rows[upd].id, rows[upd].qty = updRID, updID, int64(n%7)
		}
		if del >= 0 {
			lastDeleted = rows[del].id
			rows[del].live = false
		}

		rtx := db.Begin()
		err = func() error {
			if j := pick(5 * n); j >= 0 {
				for pass := 0; pass < 2; pass++ {
					got, err := db.IndexLookup(rtx, "by_id", keyenc.Int64(rows[j].id))
					if err != nil {
						return err
					}
					if len(got) != 1 || got[0] != rows[j].rid {
						return fmt.Errorf("readpath step %d: by_id lookup %d pass %d = %v, want [%v]",
							n, rows[j].id, pass, got, rows[j].rid)
					}
				}
			}
			if lastDeleted >= 0 {
				for pass := 0; pass < 2; pass++ {
					got, err := db.IndexLookup(rtx, "by_id", keyenc.Int64(lastDeleted))
					if err != nil {
						return err
					}
					if len(got) != 0 {
						return fmt.Errorf("readpath step %d: deleted id %d pass %d still resolves to %v",
							n, lastDeleted, pass, got)
					}
				}
			}
			var notReadable *engine.ErrIndexNotReadable
			if _, err := db.IndexLookup(rtx, building, keyenc.String("x")); !errors.As(err, &notReadable) {
				return fmt.Errorf("readpath step %d: lookup of building index %q: err = %v, want ErrIndexNotReadable",
					n, building, err)
			}
			if n%3 == 0 {
				lo, hi := keyenc.Int64(2), keyenc.Int64(5)
				want := map[types.RID]bool{}
				for _, r := range rows {
					if r.live && r.qty >= 2 && r.qty <= 5 {
						want[r.rid] = true
					}
				}
				got := map[types.RID]bool{}
				err := db.SeqScan(rtx, "items", &engine.Predicate{Col: 2, Lo: &lo, Hi: &hi},
					func(rid types.RID, _ engine.Row) bool {
						got[rid] = true
						return true
					})
				if err != nil {
					return err
				}
				if len(got) != len(want) {
					return fmt.Errorf("readpath step %d: seqscan returned %d rows, shadow has %d in qty range",
						n, len(got), len(want))
				}
				for rid := range want {
					if !got[rid] {
						return fmt.Errorf("readpath step %d: seqscan missed rid %v", n, rid)
					}
				}
			}
			return nil
		}()
		if rbErr := rtx.Rollback(); err == nil {
			err = rbErr
		}
		return err
	}
}

func nameSpec(name string, method catalog.BuildMethod) engine.CreateIndexSpec {
	return engine.CreateIndexSpec{Name: name, Table: "items", Columns: []string{"name"}, Method: method}
}

// Scenarios returns the sweep's scenario set: the paper's two online
// algorithms, the single-scan multi-index variant (§6.2), and an external
// sort stressed into many runs (§5) under a unique index (§2.2).
func Scenarios() []*Scenario {
	nsfOpts := core.Options{SortMemory: 64, CheckpointPages: 2, CheckpointKeys: 40, BatchSize: 32}
	sfOpts := core.Options{SortMemory: 64, CheckpointPages: 2, CheckpointKeys: 40}
	multiOpts := core.Options{SortMemory: 64, CheckpointKeys: 40, SerialFinish: true}
	sortOpts := core.Options{SortMemory: 4, CheckpointPages: 2, CheckpointKeys: 64, BatchSize: 16}
	// Partitioned sort + merge→load overlap under SerialFinish: the feed is
	// inline round-robin and the overlap alternates produce/consume on one
	// goroutine, so the I/O schedule stays a pure function of the fault
	// point. SortMemory 24 over 4 partitions = 6 keys of tree per partition,
	// forcing several runs each; checkpoints land on vector sort states
	// during the scan and on overlap hand-off points during the load.
	sortparOpts := core.Options{SortMemory: 24, SortPartitions: 4, MergeOverlap: true,
		SerialFinish: true, CheckpointPages: 2, CheckpointKeys: 48}
	// Prefix compression end-to-end: delta-encoded run records and
	// prefix-truncated tree pages, with SortMemory small enough to force
	// several runs over the long shared-prefix "name-..." keys. Checkpoints
	// land on compressed sort states (mid-run delta chains restart from
	// RunMeta.High) and on loader states over compressed pages, so every
	// fault point exercises a format-aware resume.
	compressOpts := core.Options{SortMemory: 16, CompressKeys: true,
		CheckpointPages: 2, CheckpointKeys: 40}

	return []*Scenario{
		{
			Name:  "nsf",
			Rows:  360,
			Opts:  nsfOpts,
			Specs: []engine.CreateIndexSpec{nameSpec("by_name", catalog.MethodNSF)},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := nsfOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodNSF), opts)
				return err
			},
		},
		{
			Name:  "sf",
			Rows:  360,
			Opts:  sfOpts,
			Specs: []engine.CreateIndexSpec{nameSpec("by_name", catalog.MethodSF)},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sfOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodSF), opts)
				return err
			},
		},
		{
			Name: "multi",
			Rows: 300,
			Opts: multiOpts,
			Specs: []engine.CreateIndexSpec{
				nameSpec("by_name", catalog.MethodSF),
				{Name: "by_qty", Table: "items", Columns: []string{"qty"}, Method: catalog.MethodSF},
			},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := multiOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.BuildMany(db, []engine.CreateIndexSpec{
					nameSpec("by_name", catalog.MethodSF),
					{Name: "by_qty", Table: "items", Columns: []string{"qty"}, Method: catalog.MethodSF},
				}, opts)
				return err
			},
		},
		{
			Name:  "sortpar",
			Rows:  320,
			Opts:  sortparOpts,
			Specs: []engine.CreateIndexSpec{nameSpec("by_name", catalog.MethodSF)},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sortparOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodSF), opts)
				return err
			},
		},
		{
			Name: "extsort",
			Rows: 420,
			Opts: sortOpts,
			Specs: []engine.CreateIndexSpec{
				{Name: "by_id", Table: "items", Columns: []string{"id"}, Unique: true, Method: catalog.MethodNSF},
			},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sortOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, engine.CreateIndexSpec{
					Name: "by_id", Table: "items", Columns: []string{"id"}, Unique: true, Method: catalog.MethodNSF,
				}, opts)
				return err
			},
		},
		{
			// The SF build with readers in the loop: by_id is complete before
			// the harness arms, the observer serves scripted reads off it (and
			// off the heap's zone-mapped scan) at every checkpoint, and the
			// post-recovery oracle re-checks the whole read path — the crash
			// may land mid-lookup, mid-scan, or between a DML's tree change
			// and its cache invalidation, and recovery must leave nothing
			// stale (the cache and zone maps are memory-only, so a restart
			// empties them by construction; ReadCheck proves the rebuilt
			// state serves exactly the committed table).
			Name: "readpath",
			Rows: 240,
			Opts: sfOpts,
			Setup: func(db *engine.DB, rids []types.RID) error {
				_, err := core.Build(db, engine.CreateIndexSpec{
					Name: "by_id", Table: "items", Columns: []string{"id"}, Unique: true,
					Method: catalog.MethodOffline,
				}, core.Options{})
				return err
			},
			Specs: []engine.CreateIndexSpec{
				{Name: "by_id", Table: "items", Columns: []string{"id"}, Unique: true, Method: catalog.MethodOffline},
				nameSpec("by_name", catalog.MethodSF),
			},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sfOpts
				opts.OnCheckpoint = readObserver(db, rids, "by_name")
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodSF), opts)
				return err
			},
			ReadCheck: true,
		},
		{
			// The SF build with CompressKeys on: a crash can land mid delta
			// chain in a run, between a checkpoint and its run truncation, or
			// mid load over prefix-truncated pages, and resume must keep the
			// durable format (states carry the compression bit; pages carry
			// theirs). The full oracle — tree invariants, heap↔index
			// equivalence — runs at every fault point.
			Name:  "compress",
			Rows:  360,
			Opts:  compressOpts,
			Specs: []engine.CreateIndexSpec{nameSpec("by_name", catalog.MethodSF)},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := compressOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodSF), opts)
				return err
			},
		},
		{
			// The paper's machinery under horizontal partitioning: a unique
			// SF build fans out over two hash shards behind one logical
			// descriptor, with the coordinator in Serial mode so the shard
			// order — shard 0's build, shard 1's build, the cross-shard
			// uniqueness sweep, the completion-meta commit — is a fixed
			// schedule the sweep can crash at every point of. The observer's
			// DML routes through the partition.Router, so side-file capture,
			// cross-shard row migration (an update whose new id hashes to the
			// other shard), and the logical-metadata WAL records all sit
			// inside the faulted section. verifyPartScenario supplies the
			// partition-aware oracle.
			Name:       "part2",
			Rows:       300,
			Opts:       sfOpts,
			Partitions: 2,
			Specs: []engine.CreateIndexSpec{
				{Name: "by_name", Table: "items", Columns: []string{"name"}, Unique: true, Method: catalog.MethodSF},
			},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sfOpts
				opts.OnCheckpoint = observer(partition.NewRouter(db), rids)
				_, err := partition.Build(db, engine.CreateIndexSpec{
					Name: "by_name", Table: "items", Columns: []string{"name"}, Unique: true, Method: catalog.MethodSF,
				}, partition.BuildOptions{Options: opts, Serial: true})
				return err
			},
		},
		{
			// The SF build again, but on a 2-shard buffer pool: same scripted
			// DML, different fetch/eviction/flush internals (per-shard clocks,
			// occasional work-stealing at this small pool size). Its I/O
			// schedule differs from "sf" — pages flush in the same sorted
			// order but evict in shard-local clock order — and the sweep only
			// requires that the schedule be a deterministic function of the
			// scenario, which the fixed page-ID hash guarantees.
			Name:   "shard2",
			Rows:   300,
			Opts:   sfOpts,
			Shards: 2,
			Specs:  []engine.CreateIndexSpec{nameSpec("by_name", catalog.MethodSF)},
			Run: func(db *engine.DB, rids []types.RID) error {
				opts := sfOpts
				opts.OnCheckpoint = observer(db, rids)
				_, err := core.Build(db, nameSpec("by_name", catalog.MethodSF), opts)
				return err
			},
		},
	}
}

// ScenarioByName returns the named scenario, or nil.
func ScenarioByName(name string) *Scenario {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}
