package crashsweep

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"

	"onlineindex/internal/faultfs"
)

// Replay/paging knobs. Flags win over the SWEEP_* environment variables;
// the env fallbacks exist so a failure can be replayed without threading
// flags through wrapper scripts: e.g.
//
//	SWEEP_SCENARIO=sf SWEEP_POINT=143 go test ./internal/crashsweep -run Replay -v
var (
	flagSeed     = flag.Int64("sweep.seed", envInt64("SWEEP_SEED", 1), "fault-injection seed")
	flagPoint    = flag.Uint64("sweep.point", uint64(envInt64("SWEEP_POINT", 0)), "replay this single fault point (0 = off)")
	flagScenario = flag.String("sweep.scenario", os.Getenv("SWEEP_SCENARIO"), "restrict the sweep (or replay) to one scenario")
	flagMode     = flag.String("sweep.mode", envOr("SWEEP_MODE", "crash"), "fault mode for replay: crash|torn|error")
	flagFull     = flag.Bool("sweep.full", os.Getenv("SWEEP_FULL") != "", "run the exhaustive sweep even under -short")
)

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func envInt64(key string, def int64) int64 {
	v := os.Getenv(key)
	if v == "" {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		panic(fmt.Sprintf("bad %s=%q: %v", key, v, err))
	}
	return n
}

func parseMode(t *testing.T, s string) faultfs.Mode {
	switch s {
	case "crash":
		return faultfs.ModeCrash
	case "torn":
		return faultfs.ModeTorn
	case "error":
		return faultfs.ModeError
	default:
		t.Fatalf("unknown -sweep.mode %q (want crash|torn|error)", s)
		return 0
	}
}

// sweepConfig picks strides: exhaustive by default (every clean-crash
// point, every torn-eligible point, errors at stride 7); -short keeps a
// smoke-sized subset unless -sweep.full forces the exhaustive matrix.
func sweepConfig(t *testing.T) Config {
	cfg := Config{Seed: *flagSeed, Stride: 1, TornStride: 1, ErrorStride: 7, Logf: t.Logf}
	if testing.Short() && !*flagFull {
		cfg.Stride, cfg.TornStride, cfg.ErrorStride = 8, 4, 0
	}
	return cfg
}

// TestCrashSweep is the exhaustive crash-schedule exploration: for every
// scenario, crash at every fault point (plus torn and error passes) and
// require recovery + resume + the full oracle to pass each time.
func TestCrashSweep(t *testing.T) {
	cfg := sweepConfig(t)
	exhaustive := cfg.Stride == 1

	var mu sync.Mutex
	totalPoints, totalVerified := uint64(0), 0
	for _, sc := range Scenarios() {
		if *flagScenario != "" && sc.Name != *flagScenario {
			continue
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			scCfg := cfg
			scCfg.Logf = t.Logf
			rep, err := Sweep(sc, scCfg)
			if err != nil {
				// The error already carries the (scenario, seed, mode,
				// point) tuple; repeat the replay recipe prominently.
				t.Fatalf("%v\nreplay with: go test ./internal/crashsweep -run Replay -sweep.scenario=%s -sweep.seed=%d -sweep.point=<point> -sweep.mode=<mode>",
					err, sc.Name, scCfg.Seed)
			}
			t.Logf("%s: %d fault points, %d clean / %d torn / %d error injections verified; redone pages %s",
				sc.Name, rep.Points,
				rep.Crashes(faultfs.ModeCrash), rep.Crashes(faultfs.ModeTorn), rep.Crashes(faultfs.ModeError),
				redoneSummary(rep))
			mu.Lock()
			totalPoints += rep.Points
			totalVerified += len(rep.Results)
			mu.Unlock()
		})
	}
	t.Cleanup(func() {
		if *flagScenario != "" {
			return
		}
		t.Logf("sweep total: %d fault points enumerated, %d faulted runs verified", totalPoints, totalVerified)
		if exhaustive && totalPoints < 200 {
			t.Errorf("scenarios enumerate only %d fault points in total, want >= 200", totalPoints)
		}
		if exhaustive && totalVerified < 200 {
			t.Errorf("sweep verified only %d faulted runs, want >= 200", totalVerified)
		}
	})
}

// redoneSummary reports the distribution of re-done scan work across the
// clean-crash runs (EXPERIMENTS.md E12): the paper's checkpoint argument
// bounds it by one checkpoint interval.
func redoneSummary(rep *Report) string {
	var pages []int
	for _, pr := range rep.Results {
		if pr.Mode == faultfs.ModeCrash && pr.Resumed > 0 {
			pages = append(pages, int(pr.RedonePages))
		}
	}
	if len(pages) == 0 {
		return "(no resumed builds)"
	}
	sort.Ints(pages)
	return fmt.Sprintf("min=%d p50=%d max=%d over %d resumes",
		pages[0], pages[len(pages)/2], pages[len(pages)-1], len(pages))
}

// TestReplay re-runs a single (scenario, seed, mode, point) tuple — the
// reproduction path printed by a failing sweep. Without -sweep.point it
// replays a fixed smoke point per scenario so the path itself stays tested.
func TestReplay(t *testing.T) {
	if *flagPoint != 0 {
		name := *flagScenario
		if name == "" {
			t.Fatal("-sweep.point requires -sweep.scenario (or SWEEP_SCENARIO)")
		}
		sc := ScenarioByName(name)
		if sc == nil {
			t.Fatalf("no scenario %q", name)
		}
		mode := parseMode(t, *flagMode)
		pr, err := Replay(sc, *flagSeed, mode, *flagPoint)
		if err != nil {
			t.Fatalf("replay (scenario=%s seed=%d mode=%v point=%d): %v", name, *flagSeed, mode, *flagPoint, err)
		}
		t.Logf("replay ok: %+v", pr)
		return
	}
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			pr, err := Replay(sc, *flagSeed, faultfs.ModeCrash, 5)
			if err != nil {
				t.Fatalf("replay (scenario=%s seed=%d mode=crash point=5): %v", sc.Name, *flagSeed, err)
			}
			if pr.Op == 0 && pr.File == "" {
				t.Fatalf("replay recorded no fired event: %+v", pr)
			}
		})
	}
}
