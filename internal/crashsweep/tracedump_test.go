package crashsweep

import (
	"crypto/sha256"
	"fmt"
	"os"
	"testing"

	"onlineindex/internal/faultfs"
	"onlineindex/internal/vfs"
)

func TestDumpTraces(t *testing.T) {
	if os.Getenv("SWEEP_TRACE_DUMP") == "" {
		t.Skip("set SWEEP_TRACE_DUMP=1 to dump count-run trace hashes")
	}
	for _, sc := range Scenarios() {
		mem := vfs.NewMemFS()
		ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeCount, Trace: true})
		db, rids, err := openPopulated(ffs, sc)
		if err != nil {
			t.Fatal(err)
		}
		ffs.Arm()
		if err := sc.Run(db, rids); err != nil {
			t.Fatal(err)
		}
		ffs.Disarm()
		h := sha256.New()
		for _, ev := range ffs.Trace() {
			fmt.Fprintf(h, "%v\n", ev)
		}
		fmt.Printf("TRACE %s %d %x\n", sc.Name, ffs.Points(), h.Sum(nil))
	}
}
