package crashsweep

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"onlineindex/internal/faultfs"
	"onlineindex/internal/vfs"
)

// legacyTraceHashes pins the count-run I/O schedule of every scenario that
// predates the partition subsystem. The partition code paths (catalog
// registry, conditional snapshot section, router) must be invisible to an
// unpartitioned database: if one of these hashes moves, a legacy schedule
// changed and every historical (seed, point) reproduction recipe is silently
// invalidated. Regenerate deliberately with
//
//	SWEEP_TRACE_DUMP=1 go test ./internal/crashsweep -run TestDumpTraces -v
//
// and update the table only when the schedule change is intentional.
var legacyTraceHashes = map[string]struct {
	points uint64
	sha    string
}{
	"nsf":      {235, "5693332f9b626074c14c47adc44a65aa27665a66828283f8d41a20889d7c1f7e"},
	"sf":       {385, "6ced53454a78907d14a6f9173ff50f0ff1514893bfacda330cef3aaa82a36b80"},
	"multi":    {433, "5d443c6cc9013636b6ceb89d56a41d0abf2a40b1382e4ceb0d448bb6e59d31d3"},
	"sortpar":  {290, "435dd91ef8a51d329f4e52bbcaa4fd7bcb79048e56f2d764dd2ba0637662f718"},
	"extsort":  {51, "59bd26a0ebe5e750e515e8f990b76f69f007a77a098456fbab633346033e13c6"},
	"readpath": {277, "11803962d96f50defc0db8f8d8406ef7e1a3af0c4ff9c0945a8fbd2bc6b277d5"},
	"shard2":   {315, "25ebfd9d1ef1f877599cbef802c46441b4837d698d24d1218a1134f5ad6f1be9"},
}

// TestLegacyTracesByteIdentical re-runs each legacy scenario's count run and
// compares the sha256 of its full op trace against the pinned value.
func TestLegacyTracesByteIdentical(t *testing.T) {
	for _, sc := range Scenarios() {
		want, pinned := legacyTraceHashes[sc.Name]
		if !pinned {
			continue // new scenario: its determinism is checked by the sweep itself
		}
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			mem := vfs.NewMemFS()
			ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeCount, Trace: true})
			db, rids, err := openPopulated(ffs, sc)
			if err != nil {
				t.Fatalf("populate: %v", err)
			}
			ffs.Arm()
			if err := sc.Run(db, rids); err != nil {
				t.Fatalf("run: %v", err)
			}
			ffs.Disarm()
			if ffs.Points() != want.points {
				t.Errorf("fault points = %d, pinned %d", ffs.Points(), want.points)
			}
			h := sha256.New()
			for _, ev := range ffs.Trace() {
				fmt.Fprintf(h, "%v\n", ev)
			}
			if got := fmt.Sprintf("%x", h.Sum(nil)); got != want.sha {
				t.Errorf("trace hash = %s, pinned %s — a legacy I/O schedule changed; see legacyTraceHashes for the regeneration recipe", got, want.sha)
			}
		})
	}
}
