// Package crashsweep explores every crash schedule of a scripted index
// build mechanically. A scenario is run once under a counting faultfs to
// enumerate its N fault points, then re-run once per chosen point with a
// fault injected there — a clean crash, a torn crash, or an I/O error —
// followed by ARIES restart recovery, build resume, and a full oracle:
// B-tree structural invariants, index-vs-heap consistency, differential
// equivalence against a freshly built Offline index on the recovered data,
// and WAL-tail validity. The paper argues a failure loses at most one
// checkpoint interval of work (§2.2.3, §3.2.4, §5); this package checks
// that claim at every single I/O operation instead of at hand-picked
// moments.
package crashsweep

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/core"
	"onlineindex/internal/engine"
	"onlineindex/internal/faultfs"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/partition"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// Engine sizing shared by every run of a scenario. The pool is small enough
// to force mid-build evictions (more fault points on page files), the tree
// budget small enough for multi-level trees at a few hundred rows.
const (
	poolSize   = 96
	treeBudget = 512
)

// tornEligible confines torn-write injection to files whose formats detect
// and shed a torn tail: the CRC-framed WAL and the length-checkpointed
// external-sort runs. Page files carry no per-page checksums, so a torn
// page write is undetectable by construction and excluded from the fault
// model (see DESIGN.md §6); clean-crash injection still covers every page
// I/O point.
func tornEligible(name string) bool {
	return name == "wal.log" || strings.Contains(name, "-run-")
}

// Config parameterizes a sweep.
type Config struct {
	// Seed drives torn-write cut points and is part of every failure's
	// reproduction recipe.
	Seed int64
	// Stride runs the clean-crash pass at every Stride'th fault point
	// (1 = exhaustive). The final point is always included.
	Stride int
	// TornStride, when > 0, adds a torn-crash pass at every TornStride'th
	// torn-eligible point.
	TornStride int
	// ErrorStride, when > 0, adds an error-injection pass at every
	// ErrorStride'th point: the op fails with faultfs.ErrInjected, the
	// scenario unwinds (typically cancelling the build), the machine is
	// crashed anyway, and the oracle must still pass — the error path may
	// not corrupt durable state either.
	ErrorStride int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// PointResult describes one faulted run that passed the oracle.
type PointResult struct {
	K    uint64
	Mode faultfs.Mode
	Op   faultfs.Op
	File string
	// Resumed counts builds continued from a committed checkpoint;
	// Rebuilt counts descriptors that had not survived (crash before the
	// descriptor commit was durable, or an injected-error cancel) and were
	// rebuilt from scratch by the oracle.
	Resumed int
	Rebuilt int
	// RedonePages/RedoneKeys measure the work the resumed builds repeated
	// since their last checkpoint — the quantity §2.2.3 bounds by one
	// checkpoint interval.
	RedonePages uint64
	RedoneKeys  uint64
}

// Report is the outcome of sweeping one scenario.
type Report struct {
	Scenario string
	// Points is the scenario's fault-point count N from the count run.
	Points uint64
	// Trace is the count run's op sequence (index k-1 = fault point k).
	Trace []faultfs.Event
	// Results holds one entry per injected fault, all oracle-verified.
	Results []PointResult
}

// Crashes counts results of the given mode.
func (r *Report) Crashes(mode faultfs.Mode) int {
	n := 0
	for _, pr := range r.Results {
		if pr.Mode == mode {
			n++
		}
	}
	return n
}

// Sweep enumerates sc's fault points and injects faults per cfg. Any error
// is annotated with the (scenario, seed, mode, point) tuple that reproduces
// it via Replay.
func Sweep(sc *Scenario, cfg Config) (*Report, error) {
	if cfg.Stride <= 0 {
		cfg.Stride = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Count run: enumerate fault points and record the op trace.
	mem := vfs.NewMemFS()
	ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeCount, Trace: true})
	db, rids, err := openPopulated(ffs, sc)
	if err != nil {
		return nil, fmt.Errorf("crashsweep %s: populate: %w", sc.Name, err)
	}
	ffs.Arm()
	if err := sc.Run(db, rids); err != nil {
		return nil, fmt.Errorf("crashsweep %s: unfaulted run failed: %w", sc.Name, err)
	}
	ffs.Disarm()
	rep := &Report{Scenario: sc.Name, Points: ffs.Points(), Trace: ffs.Trace()}
	if rep.Points == 0 {
		return nil, fmt.Errorf("crashsweep %s: scenario performed no I/O", sc.Name)
	}
	// The unfaulted result must itself pass the oracle, or every faulted
	// verdict is meaningless.
	if err := verifyScenario(db, mem, sc, &PointResult{}); err != nil {
		return nil, fmt.Errorf("crashsweep %s: unfaulted oracle: %w", sc.Name, err)
	}
	logf("%s: %d fault points", sc.Name, rep.Points)

	runPoint := func(mode faultfs.Mode, k uint64) error {
		pr, err := replay(sc, cfg.Seed, mode, k, rep.Trace)
		if err != nil {
			return fmt.Errorf("crashsweep: FAIL (scenario=%s seed=%d mode=%v point=%d): %w",
				sc.Name, cfg.Seed, mode, k, err)
		}
		rep.Results = append(rep.Results, pr)
		return nil
	}

	for k := uint64(1); k <= rep.Points; k += uint64(cfg.Stride) {
		if err := runPoint(faultfs.ModeCrash, k); err != nil {
			return rep, err
		}
	}
	if last := rep.Points; (last-1)%uint64(cfg.Stride) != 0 {
		if err := runPoint(faultfs.ModeCrash, last); err != nil {
			return rep, err
		}
	}
	logf("%s: %d clean crashes verified", sc.Name, rep.Crashes(faultfs.ModeCrash))

	if cfg.TornStride > 0 {
		i := 0
		for _, ev := range rep.Trace {
			if (ev.Op != faultfs.OpWriteAt && ev.Op != faultfs.OpSync) || !tornEligible(ev.Name) {
				continue
			}
			if i%cfg.TornStride == 0 {
				if err := runPoint(faultfs.ModeTorn, ev.K); err != nil {
					return rep, err
				}
			}
			i++
		}
		logf("%s: %d torn crashes verified", sc.Name, rep.Crashes(faultfs.ModeTorn))
	}

	if cfg.ErrorStride > 0 {
		for k := uint64(1); k <= rep.Points; k += uint64(cfg.ErrorStride) {
			if err := runPoint(faultfs.ModeError, k); err != nil {
				return rep, err
			}
		}
		logf("%s: %d injected errors verified", sc.Name, rep.Crashes(faultfs.ModeError))
	}
	return rep, nil
}

// Replay re-runs one faulted point of a scenario — the reproduction path
// for a sweep failure, reachable from the -sweep.point test flag.
func Replay(sc *Scenario, seed int64, mode faultfs.Mode, k uint64) (PointResult, error) {
	return replay(sc, seed, mode, k, nil)
}

// replay performs one faulted run: populate, arm, run until the fault
// fires, recover, resume, verify. A non-nil trace additionally asserts the
// op at point k matches the count run — the determinism check that makes
// (seed, point) a complete reproduction recipe.
func replay(sc *Scenario, seed int64, mode faultfs.Mode, k uint64, trace []faultfs.Event) (PointResult, error) {
	pr := PointResult{K: k, Mode: mode}
	mem := vfs.NewMemFS()
	ffs := faultfs.Wrap(mem, faultfs.Config{Mode: mode, Point: k, Seed: seed, TornOK: tornEligible})
	db, rids, err := openPopulated(ffs, sc)
	if err != nil {
		return pr, fmt.Errorf("populate: %w", err)
	}
	ffs.Arm()
	runErr := sc.Run(db, rids)
	ffs.Disarm()

	ev, fired := ffs.Fired()
	if !fired {
		return pr, fmt.Errorf("fault point %d never fired: this run issued only %d ops — scenario is nondeterministic", k, ffs.Points())
	}
	if trace != nil && ev != trace[k-1] {
		return pr, fmt.Errorf("op at point %d diverged from the count run: got %v, count run did %v — scenario is nondeterministic", k, ev, trace[k-1])
	}
	pr.Op, pr.File = ev.Op, ev.Name

	switch mode {
	case faultfs.ModeCrash, faultfs.ModeTorn:
		if runErr == nil {
			return pr, fmt.Errorf("scenario reported success despite the crash at point %d", k)
		}
	case faultfs.ModeError:
		// The error must unwind without panicking; whether the build
		// cancelled (the usual case) or the scenario absorbed the failure,
		// the durable state it left behind must now survive a crash.
		mem.Crash()
	}

	mem.Recover()
	db2, err := engine.Recover(engine.Config{FS: mem, PoolSize: poolSize, TreeBudget: treeBudget,
		BufferShards: scenarioShards(sc), LockStripes: 1})
	if err != nil {
		return pr, fmt.Errorf("restart recovery: %w", err)
	}
	if err := verifyScenario(db2, mem, sc, &pr); err != nil {
		return pr, err
	}
	return pr, nil
}

// scenarioShards pins the engine's concurrency knobs for a scenario: the
// buffer pool uses the scenario's shard count (default 1) and the lock
// manager always one stripe, so fault-point schedules are a pure function of
// (scenario, seed, point) regardless of the host's core count.
func scenarioShards(sc *Scenario) int {
	if sc.Shards > 0 {
		return sc.Shards
	}
	return 1
}

// openPopulated opens a fresh engine on fs and seeds the "items" table with
// rows fat enough to span multiple pages, then takes a checkpoint so
// recovery has a master record. All of this happens before the harness
// arms, so populate I/O is not part of the fault-point numbering.
func openPopulated(fs vfs.FS, sc *Scenario) (*engine.DB, []types.RID, error) {
	rows := sc.Rows
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: poolSize, TreeBudget: treeBudget,
		BufferShards: scenarioShards(sc), LockStripes: 1})
	if err != nil {
		return nil, nil, err
	}
	var target dml = db
	if sc.Partitions > 0 {
		if _, err := partition.CreateTable(db, "items", sweepSchema(), partition.Spec{
			Partitions: sc.Partitions, Scheme: catalog.SchemeHash, KeyColumn: "id",
		}); err != nil {
			return nil, nil, err
		}
		target = partition.NewRouter(db)
	} else if _, err := db.CreateTable("items", sweepSchema()); err != nil {
		return nil, nil, err
	}
	rids := make([]types.RID, 0, rows)
	const batch = 120
	for i := 0; i < rows; {
		tx := db.Begin()
		for j := 0; j < batch && i < rows; j++ {
			rid, err := target.Insert(tx, "items", sweepRow(int64(i), sweepName(i), int64(i%97)))
			if err != nil {
				return nil, nil, err
			}
			rids = append(rids, rid)
			i++
		}
		if err := tx.Commit(); err != nil {
			return nil, nil, err
		}
	}
	if sc.Setup != nil {
		if err := sc.Setup(db, rids); err != nil {
			return nil, nil, fmt.Errorf("scenario setup: %w", err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		return nil, nil, err
	}
	return db, rids, nil
}

// verifyScenario is the oracle: every index the scenario was building must
// be completable and correct on the recovered database.
func verifyScenario(db *engine.DB, mem *vfs.MemFS, sc *Scenario, pr *PointResult) error {
	if sc.Partitions > 0 {
		return verifyPartScenario(db, mem, sc, pr)
	}
	pending, err := db.PendingBuilds()
	if err != nil {
		return fmt.Errorf("pending builds: %w", err)
	}
	pr.Resumed = len(pending)
	results, err := core.ResumeAll(db, sc.Opts)
	if err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	for _, res := range results {
		pr.RedonePages += res.Stats.PagesScanned
		pr.RedoneKeys += res.Stats.KeysInserted
	}

	for _, spec := range sc.Specs {
		if _, ok := db.Catalog().Index(spec.Name); !ok {
			// The descriptor never became durable, or an injected-error
			// cancel dropped it. The build vanished atomically; rebuild
			// offline to prove the recovered table is fully usable.
			pr.Rebuilt++
			ospec := spec
			ospec.Method = catalog.MethodOffline
			if _, err := core.Build(db, ospec, core.Options{}); err != nil {
				return fmt.Errorf("rebuilding vanished index %q: %w", spec.Name, err)
			}
		}
		ix, ok := db.Catalog().Index(spec.Name)
		if !ok {
			return fmt.Errorf("index %q missing after rebuild", spec.Name)
		}
		if ix.State != catalog.StateComplete {
			return fmt.Errorf("index %q in state %v after resume", spec.Name, ix.State)
		}
		// A resumed build's progress report must have ended terminal and
		// monotone: fraction exactly 1, and the live feed never below what a
		// durable checkpoint had already claimed.
		if tr := db.ProgressOf(ix.ID); tr != nil {
			snap := tr.Snapshot()
			if !snap.Complete || snap.Fraction != 1 {
				return fmt.Errorf("index %q progress not terminal after resume: complete=%v fraction=%v",
					spec.Name, snap.Complete, snap.Fraction)
			}
			if snap.Regressions != 0 {
				return fmt.Errorf("index %q progress fell below its durable floor %d times",
					spec.Name, snap.Regressions)
			}
		}
		tree, err := db.TreeOf(ix.ID)
		if err != nil {
			return fmt.Errorf("tree of %q: %w", spec.Name, err)
		}
		if err := btree.CheckInvariants(tree); err != nil {
			return fmt.Errorf("index %q: %w", spec.Name, err)
		}
		if err := db.CheckIndexConsistency(spec.Name); err != nil {
			return err
		}
		if err := differential(db, spec); err != nil {
			return err
		}
	}

	if sc.ReadCheck {
		if err := verifyReads(db, sc); err != nil {
			return fmt.Errorf("read oracle: %w", err)
		}
	}

	// The WAL on disk must be one valid record sequence end to end:
	// recovery truncates any torn tail and its final checkpoint forces the
	// log, so nothing invalid may remain.
	ti, err := wal.VerifyTail(mem)
	if err != nil {
		return fmt.Errorf("wal tail: %w", err)
	}
	if ti.Torn || ti.Valid != ti.Size {
		return fmt.Errorf("wal tail invalid after recovery: %d of %d bytes parse (torn=%v)", ti.Valid, ti.Size, ti.Torn)
	}

	// Post-recovery smoke: the engine must accept new work and keep every
	// index consistent with it.
	tx := db.Begin()
	if _, err := db.Insert(tx, "items", sweepRow(9_999_999, sweepName(9_999_999), 1)); err != nil {
		return fmt.Errorf("post-recovery insert: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("post-recovery commit: %w", err)
	}
	for _, spec := range sc.Specs {
		if err := db.CheckIndexConsistency(spec.Name); err != nil {
			return fmt.Errorf("after post-recovery insert: %w", err)
		}
	}
	return nil
}

// differential builds a fresh Offline index over the same columns on the
// recovered data and requires the surviving index to contain exactly the
// same live entries — the recovered build may hold extra pseudo-deleted
// entries (§2.2.2) but must agree on every visible <key, RID> pair.
func differential(db *engine.DB, spec engine.CreateIndexSpec) error {
	ospec := spec
	ospec.Name = "oracle_" + spec.Name
	ospec.Method = catalog.MethodOffline
	if _, err := core.Build(db, ospec, core.Options{}); err != nil {
		return fmt.Errorf("oracle build for %q: %w", spec.Name, err)
	}
	defer db.DropIndex(ospec.Name) //nolint:errcheck // scratch index
	got, err := liveEntries(db, spec.Name)
	if err != nil {
		return err
	}
	want, err := liveEntries(db, ospec.Name)
	if err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("index %q has %d live entries, offline oracle has %d", spec.Name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("index %q entry %d = %v, offline oracle has %v", spec.Name, i, got[i], want[i])
		}
	}
	return nil
}

// verifyReads is the ReadCheck half of the oracle: after recovery and
// resume, the read path (fresh, empty hash cache and all-unknown zone maps —
// both are memory-only and did not survive the crash) must serve exactly the
// committed table as derived from the heap itself.
func verifyReads(db *engine.DB, sc *Scenario) error {
	type refRow struct {
		rid  types.RID
		id   int64
		qty  int64
		name string
	}
	var ref []refRow
	if err := db.TableScan("items", func(rid types.RID, row engine.Row) error {
		ref = append(ref, refRow{rid: rid, id: row[0].I, qty: row[2].I, name: row[1].S})
		return nil
	}); err != nil {
		return err
	}
	tx := db.Begin()
	defer tx.Rollback() //nolint:errcheck // read-only: rollback just releases S locks

	// Point lookups: first pass descends the tree and fills the cache, the
	// second must hit it — both must agree with the heap.
	live := make(map[int64]types.RID, len(ref))
	for _, r := range ref {
		live[r.id] = r.rid
	}
	for i := 0; i < len(ref); i += 5 {
		for pass := 0; pass < 2; pass++ {
			got, err := db.IndexLookup(tx, "by_id", keyenc.Int64(ref[i].id))
			if err != nil {
				return err
			}
			if len(got) != 1 || got[0] != ref[i].rid {
				return fmt.Errorf("by_id lookup %d pass %d = %v, heap says [%v]", ref[i].id, pass, got, ref[i].rid)
			}
		}
	}
	// Every seed id the workload deleted must miss — through whatever
	// pseudo-deleted entries the recovered tree still carries.
	for id := int64(0); id < int64(sc.Rows); id++ {
		if _, ok := live[id]; ok {
			continue
		}
		got, err := db.IndexLookup(tx, "by_id", keyenc.Int64(id))
		if err != nil {
			return err
		}
		if len(got) != 0 {
			return fmt.Errorf("deleted id %d still resolves to %v after recovery", id, got)
		}
	}

	// Ordered scan of by_name: exactly the heap's rows, in key order.
	want := make([][]byte, 0, len(ref))
	for _, r := range ref {
		want = append(want, keyenc.Encode(keyenc.String(r.name)))
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	var got [][]byte
	if err := db.IndexScan(tx, "by_name", nil, nil, func(key []byte, _ types.RID) bool {
		got = append(got, append([]byte(nil), key...))
		return true
	}); err != nil {
		return err
	}
	if len(got) != len(want) {
		return fmt.Errorf("by_name scan returned %d entries, heap has %d rows", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			return fmt.Errorf("by_name scan entry %d = %x, heap order says %x", i, got[i], want[i])
		}
	}

	// Sequential scan with a qty predicate, twice: the first pass rebuilds
	// zone-map summaries as it goes, the second prunes on them — both must
	// equal the unpruned reference.
	wantRids := map[types.RID]bool{}
	for _, r := range ref {
		if r.qty >= 2 && r.qty <= 5 {
			wantRids[r.rid] = true
		}
	}
	lo, hi := keyenc.Int64(2), keyenc.Int64(5)
	for pass := 0; pass < 2; pass++ {
		seen := map[types.RID]bool{}
		err := db.SeqScan(tx, "items", &engine.Predicate{Col: 2, Lo: &lo, Hi: &hi},
			func(rid types.RID, _ engine.Row) bool {
				seen[rid] = true
				return true
			})
		if err != nil {
			return err
		}
		if len(seen) != len(wantRids) {
			return fmt.Errorf("seqscan pass %d returned %d rows, heap has %d in range", pass, len(seen), len(wantRids))
		}
		for rid := range wantRids {
			if !seen[rid] {
				return fmt.Errorf("seqscan pass %d missed rid %v", pass, rid)
			}
		}
	}
	return nil
}

// liveEntry is a comparable <key, RID> pair.
type liveEntry struct {
	key string
	rid types.RID
}

func (e liveEntry) String() string { return fmt.Sprintf("<%x,%v>", e.key, e.rid) }

func liveEntries(db *engine.DB, index string) ([]liveEntry, error) {
	ix, ok := db.Catalog().Index(index)
	if !ok {
		return nil, fmt.Errorf("no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return nil, err
	}
	var out []liveEntry
	if err := tree.ScanRange(nil, nil, func(e btree.Entry) bool {
		if !e.Pseudo {
			out = append(out, liveEntry{key: string(e.Key), rid: e.RID})
		}
		return true
	}); err != nil {
		return nil, err
	}
	return out, nil
}
