package crashsweep

import (
	"fmt"
	"sync"
	"testing"

	"onlineindex/internal/engine"
	"onlineindex/internal/faultfs"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// committerResult is one concurrent committer's claim about its transaction.
type committerResult struct {
	id        int64
	rid       types.RID
	attempted bool // the insert succeeded and Commit was called
	committed bool // Commit returned nil: the engine promised durability
}

// TestGroupCommitCrashAtomicity crashes at every fault point of a workload
// where four committers commit concurrently (sharing group-commit flush
// epochs), twice in a row, and checks the durability contract transaction by
// transaction on the recovered engine: every commit that returned nil must
// have its row, every commit that returned an error must not. A group flush
// makes this sharper than the scripted sweep scenarios — several committers
// ride one fsync, so a crash inside it must fail ALL of them, and a crash
// after it must lose NONE.
//
// Unlike the scripted scenarios this workload is intentionally concurrent,
// so which operation lands on fault point k varies run to run; the oracle
// therefore keys on what Commit *returned*, not on a fixed schedule.
func TestGroupCommitCrashAtomicity(t *testing.T) {
	const (
		committers = 4
		rounds     = 2
		seedRows   = 40
		maxPoints  = 200 // backstop; the schedule exhausts long before this
	)
	fired := 0
	for k := uint64(1); k <= maxPoints; k++ {
		mem := vfs.NewMemFS()
		ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeCrash, Point: k, Seed: 1})
		db, _, err := openPopulated(ffs, &Scenario{Rows: seedRows})
		if err != nil {
			t.Fatalf("point %d: populate: %v", k, err)
		}
		ffs.Arm()

		var all []committerResult
		for round := 0; round < rounds; round++ {
			results := make([]committerResult, committers)
			var ready, done sync.WaitGroup
			start := make(chan struct{})
			ready.Add(committers)
			done.Add(committers)
			for w := 0; w < committers; w++ {
				go func(w int) {
					defer done.Done()
					tx := db.Begin()
					id := int64(5_000_000 + round*100 + w)
					rid, err := db.Insert(tx, "items", sweepRow(id, sweepName(int(id%1_000_000)), int64(w)))
					ready.Done()
					// Barrier: all four hold their insert until everyone is
					// ready, so the commits race into shared flush epochs.
					<-start
					if err != nil {
						tx.Rollback() //nolint:errcheck
						return
					}
					results[w] = committerResult{id: id, rid: rid, attempted: true}
					if tx.Commit() == nil {
						results[w].committed = true
					}
				}(w)
			}
			ready.Wait()
			close(start)
			done.Wait()
			all = append(all, results...)
		}
		ffs.Disarm()

		if _, ok := ffs.Fired(); !ok {
			// Past the end of the schedule: every fault point is covered.
			if fired == 0 {
				t.Fatal("no fault point ever fired; the workload performs no I/O?")
			}
			t.Logf("swept %d fault points", fired)
			return
		}
		fired++

		mem.Recover()
		db2, err := engine.Recover(engine.Config{FS: mem, PoolSize: poolSize, TreeBudget: treeBudget})
		if err != nil {
			t.Fatalf("point %d: restart recovery: %v", k, err)
		}
		if ti, err := wal.VerifyTail(mem); err != nil || ti.Torn {
			t.Fatalf("point %d: log tail: torn=%v err=%v", k, ti.Torn, err)
		}
		check := db2.Begin()
		for _, r := range all {
			if !r.attempted {
				continue
			}
			row, ok, err := db2.Get(check, "items", r.rid)
			// Slot reuse can put a different row at a loser's RID; only the
			// original row counts as "survived".
			same := ok && err == nil && len(row) > 0 &&
				fmt.Sprint(row[0]) == fmt.Sprint(keyenc.Int64(r.id))
			if r.committed && !same {
				t.Fatalf("point %d: txn for row %d committed (Commit returned nil) but its row is gone after recovery (ok=%v err=%v)",
					k, r.id, ok, err)
			}
			if !r.committed && same {
				t.Fatalf("point %d: txn for row %d failed to commit but its row survived recovery", k, r.id)
			}
		}
		if err := check.Rollback(); err != nil {
			t.Fatalf("point %d: %v", k, err)
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("point %d: close recovered engine: %v", k, err)
		}
	}
	t.Fatalf("fault schedule still firing after %d points", maxPoints)
}
