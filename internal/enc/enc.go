// Package enc provides tiny append-style binary encoding helpers used by
// log-record payloads, checkpoint images and index-builder state. All
// integers are little-endian; byte strings are length-prefixed with uint32.
package enc

import (
	"encoding/binary"
	"errors"

	"onlineindex/internal/types"
)

// ErrShort is returned when a reader runs out of bytes.
var ErrShort = errors.New("enc: short buffer")

// Writer accumulates an encoded byte string.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends a uint8.
func (w *Writer) U8(v uint8) *Writer { w.buf = append(w.buf, v); return w }

// U16 appends a uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	return w
}

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) *Writer {
	if v {
		return w.U8(1)
	}
	return w.U8(0)
}

// Bytes32 appends a uint32 length prefix followed by b.
func (w *Writer) Bytes32(b []byte) *Writer {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// String32 appends s as a length-prefixed byte string.
func (w *Writer) String32(s string) *Writer { return w.Bytes32([]byte(s)) }

// LSN appends a log sequence number.
func (w *Writer) LSN(l types.LSN) *Writer { return w.U64(uint64(l)) }

// PageID appends a page identifier.
func (w *Writer) PageID(p types.PageID) *Writer {
	return w.U32(uint32(p.File)).U32(uint32(p.Page))
}

// RID appends a record identifier.
func (w *Writer) RID(r types.RID) *Writer {
	return w.PageID(r.PageID).U16(uint16(r.Slot))
}

// Reader consumes an encoded byte string. Errors are sticky: after the
// first failure every further read returns the zero value and Err() reports
// the failure, so call sites can decode a full struct and check once.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrShort
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

// U8 reads a uint8.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 reads a length-prefixed byte string (copied).
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	c := make([]byte, len(b))
	copy(c, b)
	return c
}

// String32 reads a length-prefixed string.
func (r *Reader) String32() string { return string(r.Bytes32()) }

// LSN reads a log sequence number.
func (r *Reader) LSN() types.LSN { return types.LSN(r.U64()) }

// PageID reads a page identifier.
func (r *Reader) PageID() types.PageID {
	return types.PageID{File: types.FileID(r.U32()), Page: types.PageNum(r.U32())}
}

// RID reads a record identifier.
func (r *Reader) RID() types.RID {
	return types.RID{PageID: r.PageID(), Slot: types.SlotNum(r.U16())}
}
