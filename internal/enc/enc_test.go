package enc

import (
	"errors"
	"testing"
	"testing/quick"

	"onlineindex/internal/types"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter().
		U8(7).U16(300).U32(1 << 20).U64(1 << 40).
		Bool(true).Bool(false).
		Bytes32([]byte("hello")).String32("world").
		LSN(12345).
		PageID(types.PageID{File: 3, Page: 9}).
		RID(types.RID{PageID: types.PageID{File: 1, Page: 2}, Slot: 5})
	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U16() != 300 || r.U32() != 1<<20 || r.U64() != 1<<40 {
		t.Fatal("integer round trip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip failed")
	}
	if string(r.Bytes32()) != "hello" || r.String32() != "world" {
		t.Fatal("bytes round trip failed")
	}
	if r.LSN() != 12345 {
		t.Fatal("LSN round trip failed")
	}
	if p := r.PageID(); p.File != 3 || p.Page != 9 {
		t.Fatal("PageID round trip failed")
	}
	if rid := r.RID(); rid.Slot != 5 || rid.PageID.File != 1 {
		t.Fatal("RID round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2}) // too short for U32
	_ = r.U32()
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
	// Further reads return zero values without panicking.
	if r.U64() != 0 || r.Bytes32() != nil || r.String32() != "" {
		t.Fatal("reads after error should be zero")
	}
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatal("error not sticky")
	}
}

func TestBytes32HugeLengthRejected(t *testing.T) {
	// A corrupt length prefix larger than the buffer must not allocate or
	// panic.
	w := NewWriter().U32(1 << 31)
	r := NewReader(w.Bytes())
	if r.Bytes32() != nil || r.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestPropertyBytesRoundTrip(t *testing.T) {
	f := func(a []byte, b string, c uint64) bool {
		w := NewWriter().Bytes32(a).String32(b).U64(c)
		r := NewReader(w.Bytes())
		ra, rb, rc := r.Bytes32(), r.String32(), r.U64()
		if r.Err() != nil {
			return false
		}
		return string(ra) == string(a) && rb == b && rc == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytes32CopiesData(t *testing.T) {
	w := NewWriter().Bytes32([]byte("abc"))
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 'X' // mutate the source after read
	if string(got) != "abc" {
		t.Fatalf("Bytes32 did not copy: %q", got)
	}
}
