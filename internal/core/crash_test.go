package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// crashAtPhase starts a build under a light workload, crashes the system the
// first time a committed builder checkpoint reaches the wanted phase, then
// recovers and resumes. It returns false if the build completed before the
// phase was observed (caller may retry with different tuning).
func crashAtPhase(t *testing.T, method catalog.BuildMethod, want engine.IBPhase, rows int, opts Options) bool {
	return crashAtPhaseStopEarly(t, method, want, 0, rows, opts)
}

// crashAtPhaseStopEarly additionally drains the workload as soon as the
// build reaches stopAt (0: drain right before the crash). Draining early
// lets the crash land immediately when the wanted phase appears — needed for
// short windows like side-file processing.
func crashAtPhaseStopEarly(t *testing.T, method catalog.BuildMethod, want, stopAt engine.IBPhase, rows int, opts Options) bool {
	t.Helper()
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("items", schema())
	rids := make([]types.RID, 0, rows)
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0))
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		rids = append(rids, rid)
	}
	stop := make(chan struct{})
	wg := runWorkload(t, db, rids, 2, stop)

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		Build(db, spec("by_name", method, false), opts) //nolint:errcheck
	}()

	// Find the index id once the descriptor appears, then watch the
	// committed checkpoints for the wanted phase.
	var ixID types.IndexID
	deadline := time.Now().Add(20 * time.Second)
	hit := false
	drained := false
	drain := func() {
		if !drained {
			close(stop)
			wg.Wait()
			drained = true
		}
	}
	for time.Now().Before(deadline) {
		if ixID == 0 {
			if ix, ok := db.Catalog().Index("by_name"); ok {
				ixID = ix.ID
			}
		}
		if ixID != 0 {
			if ix, ok := db.Catalog().Index("by_name"); ok && ix.State == catalog.StateComplete {
				break // finished before the phase was seen
			}
			if st := db.LastIBState(ixID); st != nil {
				if stopAt != 0 && st.Phase >= stopAt {
					// Drain the workload early so the crash below can land
					// the instant the wanted phase appears.
					drain()
				}
				if st.Phase == want {
					hit = true
					break
				}
			}
		}
		time.Sleep(200 * time.Microsecond)
	}
	if hit && drained {
		db.Crash() // land the crash immediately: the workload is already gone
	} else {
		// Drain the workload before pulling the plug: a worker blocked on a
		// lock held by the about-to-die builder would never wake (its waiter
		// lives in the old incarnation's volatile lock manager).
		drain()
		db.Crash()
	}
	<-done
	if !hit {
		return false
	}

	db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := db2.PendingBuilds()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) == 0 {
		// The builder finished (and durably committed completion) during
		// the workload drain between observation and the crash. The index
		// must then be complete and consistent; the phase-targeted crash
		// didn't land, so report a miss.
		ix, ok := db2.Catalog().Index("by_name")
		if !ok || ix.State != catalog.StateComplete {
			t.Fatalf("no pending build but index state = %v ok=%v", ix.State, ok)
		}
		if err := db2.CheckIndexConsistency("by_name"); err != nil {
			t.Fatal(err)
		}
		return false
	}
	if pending[0].State == nil || pending[0].State.Phase != want {
		t.Fatalf("recovered phase = %+v, want %v", pending[0].State, want)
	}
	if _, err := Resume(db2, pending[0], opts); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	// The resumed database keeps working (direct maintenance now).
	tx := db2.Begin()
	if _, err := db2.Insert(tx, "items", rowOf(99_999_999, "post-resume", 0)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	return true
}

func TestCrashAtScanPhaseAndResume(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", method, workers), func(t *testing.T) {
				ok := crashAtPhase(t, method, engine.IBPhaseScan, 6000,
					Options{CheckpointPages: 2, CheckpointKeys: 100_000, ScanWorkers: workers})
				if !ok {
					t.Skip("build completed before the scan checkpoint was observed")
				}
			})
		}
	}
}

// TestCrashMidScanParallelResumeByteIdentical crashes a ScanWorkers=4 build
// mid-scan, resumes it from the pipeline's watermark checkpoint (still at 4
// workers), and requires the final index to be byte-identical — same entry
// stream, same page count — to an uninterrupted single-worker build of an
// identically populated table. This is what "checkpoints cover only the
// drained watermark" buys: worker count and crash point are unobservable in
// the result.
func TestCrashMidScanParallelResumeByteIdentical(t *testing.T) {
	const rows = 20_000
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			// Reference: uninterrupted, serial scan.
			refDB, _ := newDB(t, rows)
			refRes, err := Build(refDB, spec("by_name", method, false), Options{})
			if err != nil {
				t.Fatal(err)
			}
			ref := indexEntries(t, refDB, "by_name")
			refTree, err := refDB.TreeOf(refRes.Index.ID)
			if err != nil {
				t.Fatal(err)
			}
			refPages, err := refTree.PageCount()
			if err != nil {
				t.Fatal(err)
			}

			// Same table again; this build runs at 4 workers with frequent
			// scan checkpoints (each checkpoint commit forces the log, which
			// also keeps the scan phase long enough to crash into).
			fs := vfs.NewMemFS()
			db, err := engine.Open(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			db.CreateTable("items", schema())
			for i := 0; i < rows; i++ {
				tx := db.Begin()
				if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), int64(i%97))); err != nil {
					t.Fatal(err)
				}
				tx.Commit()
			}
			opts := Options{ScanWorkers: 4, CheckpointPages: 2, CheckpointKeys: 100_000}
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { recover() }()
				Build(db, spec("by_name", method, false), opts) //nolint:errcheck
			}()
			var ixID types.IndexID
			deadline := time.Now().Add(20 * time.Second)
			hit := false
			for time.Now().Before(deadline) {
				if ixID == 0 {
					if ix, ok := db.Catalog().Index("by_name"); ok {
						ixID = ix.ID
					}
				}
				if ixID != 0 {
					if ix, ok := db.Catalog().Index("by_name"); ok && ix.State == catalog.StateComplete {
						break
					}
					if st := db.LastIBState(ixID); st != nil && st.Phase == engine.IBPhaseScan {
						hit = true
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
			}
			db.Crash()
			<-done
			if !hit {
				t.Skip("build completed before a scan checkpoint was observed")
			}

			db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			pending, err := db2.PendingBuilds()
			if err != nil {
				t.Fatal(err)
			}
			if len(pending) != 1 {
				t.Fatalf("pending = %d, want 1", len(pending))
			}
			if pending[0].State == nil || pending[0].State.Phase != engine.IBPhaseScan {
				t.Fatalf("recovered state = %+v, want mid-scan", pending[0].State)
			}
			if _, err := Resume(db2, pending[0], opts); err != nil {
				t.Fatal(err)
			}
			if err := db2.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
			got := indexEntries(t, db2, "by_name")
			if !bytes.Equal(got, ref) {
				t.Fatalf("resumed index entry stream differs from uninterrupted serial build (%d vs %d bytes)", len(got), len(ref))
			}
			ix2, _ := db2.Catalog().Index("by_name")
			tree2, err := db2.TreeOf(ix2.ID)
			if err != nil {
				t.Fatal(err)
			}
			pages2, err := tree2.PageCount()
			if err != nil {
				t.Fatal(err)
			}
			if pages2 != refPages {
				t.Fatalf("resumed index has %d pages, uninterrupted serial build had %d", pages2, refPages)
			}
		})
	}
}

func TestCrashAtInsertPhaseAndResumeNSF(t *testing.T) {
	ok := crashAtPhase(t, catalog.MethodNSF, engine.IBPhaseInsert, 50_000,
		Options{CheckpointKeys: 500})
	if !ok {
		t.Skip("build completed before an insert checkpoint was observed")
	}
}

func TestCrashAtLoadPhaseAndResumeSF(t *testing.T) {
	ok := crashAtPhase(t, catalog.MethodSF, engine.IBPhaseLoad, 50_000,
		Options{CheckpointKeys: 500})
	if !ok {
		t.Skip("build completed before a load checkpoint was observed")
	}
}

func TestCrashAtSideFilePhaseAndResumeSF(t *testing.T) {
	// Deterministic construction: once the build reaches its load phase
	// (Current-RID = infinity, so every operation is captured), the test
	// thread itself performs a burst of updates — guaranteeing a side-file
	// long enough that processing it spans several committed checkpoints,
	// one of which the crash then lands on.
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 2048, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("items", schema())
	const rows = 40_000
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0)); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	opts := Options{CheckpointKeys: 100}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		Build(db, spec("by_name", catalog.MethodSF, false), opts) //nolint:errcheck
	}()

	// Wait for the load phase, then burst.
	var ixID types.IndexID
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if ixID == 0 {
			if ix, ok := db.Catalog().Index("by_name"); ok {
				ixID = ix.ID
			}
		}
		if ixID != 0 {
			if st := db.LastIBState(ixID); st != nil && st.Phase >= engine.IBPhaseLoad {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Burst inserts while watching for a mid-drain checkpoint (SFPos > 0):
	// the drain races the burst, so the check interleaves with the inserts
	// and the crash lands the instant such a checkpoint commits.
	burst := 0
	hit := false
	for i := 0; time.Now().Before(deadline); i++ {
		if ix, ok := db.Catalog().Index("by_name"); !ok || ix.State == catalog.StateComplete {
			break // too late: the build already finished
		}
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(10_000_000+i), fmt.Sprintf("burst-%06d", i), 0)); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		burst++
		if st := db.LastIBState(ixID); st != nil && st.Phase == engine.IBPhaseSideFile && st.SFPos > 0 {
			hit = true
			break
		}
	}
	db.Crash()
	<-done
	if !hit {
		t.Skipf("side-file drain outran the watcher (burst=%d)", burst)
	}

	db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 2048, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := db2.PendingBuilds()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(pending))
	}
	if pending[0].State == nil || pending[0].State.Phase != engine.IBPhaseSideFile || pending[0].State.SFPos == 0 {
		t.Fatalf("recovered state = %+v, want mid-side-file", pending[0].State)
	}
	if _, err := Resume(db2, pending[0], opts); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCrashesSameBuild(t *testing.T) {
	// Crash, resume, crash the resume, resume again: checkpoints must keep
	// the build convergent across multiple failures.
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("items", schema())
	const rows = 6000
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0)); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	opts := Options{CheckpointPages: 2, CheckpointKeys: 300}

	launch := func(d *engine.DB, resume bool) chan struct{} {
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() { recover() }()
			if resume {
				pending, err := d.PendingBuilds()
				if err != nil || len(pending) != 1 {
					return
				}
				Resume(d, pending[0], opts) //nolint:errcheck
			} else {
				Build(d, spec("by_name", catalog.MethodSF, false), opts) //nolint:errcheck
			}
		}()
		return done
	}

	done := launch(db, false)
	time.Sleep(20 * time.Millisecond)
	db.Crash()
	<-done

	for round := 0; round < 2; round++ {
		db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		pending, err := db2.PendingBuilds()
		if err != nil {
			t.Fatal(err)
		}
		if len(pending) == 0 {
			// Build had completed; verify and stop.
			if err := db2.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
			return
		}
		if round == 0 {
			done := launch(db2, true)
			time.Sleep(15 * time.Millisecond)
			db2.Crash()
			<-done
			continue
		}
		// Final round: run to completion.
		if _, err := Resume(db2, pending[0], opts); err != nil {
			t.Fatal(err)
		}
		if err := db2.CheckIndexConsistency("by_name"); err != nil {
			t.Fatal(err)
		}
	}
}
