package core

import (
	"fmt"
	"sync"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/progress"
	"onlineindex/internal/types"
)

// BuildMany builds several indexes on one table in a single data scan
// (§6.2: "since the cost of accessing all the data pages may be a
// significant part of the overall cost of index build, it would be very
// beneficial to build multiple indexes in one data scan"). All specs must
// name the same table and the same method. The scan feeds one sorter per
// index; afterwards each index finishes its own merge/load/side-file phases.
//
// For SF, all the builds share the single scan position: each index's
// Current-RID advances in lockstep under the page latch, so transactions
// route changes for every index consistently.
func BuildMany(db *engine.DB, specs []engine.CreateIndexSpec, opts Options) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	table, method := specs[0].Table, specs[0].Method
	for _, s := range specs[1:] {
		if s.Table != table || s.Method != method {
			return nil, fmt.Errorf("core: BuildMany requires one table and one method")
		}
	}
	if method == catalog.MethodOffline {
		return buildManyOffline(db, specs, opts)
	}

	tbl, ok := db.Catalog().Table(table)
	if !ok {
		return nil, fmt.Errorf("core: no table %q", table)
	}

	// Create all descriptors (NSF quiesces per descriptor — each quiesce is
	// short; SF quiesces nothing).
	builders := make([]*builder, len(specs))
	for i, spec := range specs {
		b := &builder{db: db, tbl: tbl, opts: opts}
		b.st.Method = method
		var ix catalog.Index
		var err error
		if method == catalog.MethodSF {
			ix, err = db.CreateIndexDescriptorWithCtl(spec, func(ix catalog.Index) *engine.BuildCtl {
				b.ctl = engine.NewBuildCtl(ix.ID, catalog.MethodSF, engine.PhaseCapture)
				b.ctl.SetCurrentRID(types.RID{PageID: types.PageID{File: tbl.FileID}})
				return b.ctl
			})
		} else {
			ix, err = db.CreateIndexDescriptor(spec)
		}
		if err != nil {
			for _, done := range builders[:i] {
				done.cancel(err) //nolint:errcheck // best-effort cleanup
			}
			return nil, err
		}
		b.ix = ix
		b.tx = db.Begin()
		b.startProgress()
		builders[i] = b
	}

	// One shared scan feeding every sorter through the staged pipeline —
	// one feed per index, all fed from the same page batches, so each page
	// is visited (and each record decoded per index) exactly once. For SF
	// the scan chases the file's actual end before Current-RID goes to
	// infinity (see chaseScan); for NSF the noted end is enough because
	// transactions maintain the new indexes directly.
	h, err := db.HeapOf(tbl.ID)
	if err != nil {
		return nil, err
	}
	sorters := make([]*extsort.PartSorter, len(builders))
	feeds := make([]*scanFeed, len(builders))
	for i, b := range builders {
		sorters[i] = b.newSorter()
		feeds[i] = &scanFeed{ix: &b.ix, sorter: sorters[i], st: &b.st,
			prog: b.prog, met: db.Metrics()}
	}
	defer func() {
		// Idempotent (Finish closes too); stops partition workers on the
		// error paths that return before the finish phase.
		for _, s := range sorters {
			s.Close()
		}
	}()
	advance := func(next types.PageNum) {
		// Every index's Current-RID advances in lockstep under the page
		// latch (the serial stage-1 visitor is the only caller).
		for _, b := range builders {
			if b.ctl != nil {
				b.ctl.AdvanceCurrentRID(types.RID{PageID: types.PageID{File: tbl.FileID, Page: next}})
			}
		}
	}
	scanRange := func(from, to types.PageNum) error {
		for _, b := range builders {
			b.prog.SetTotal(progress.Scan, uint64(to)+1)
		}
		return pipelineScan(h, from, to, feeds, opts.ScanWorkers, advance, 0, nil)
	}
	start := time.Now()
	if method == catalog.MethodNSF {
		// Noted end is enough: transactions maintain NSF directly.
		if m, err := h.PageCount(); err != nil {
			return nil, err
		} else if m > 0 {
			if err := scanRange(0, m-1); err != nil {
				return nil, err
			}
		}
	} else {
		err := chaseScan(h, 0, scanRange, func() {
			for _, b := range builders {
				b.ctl.SetCurrentRID(types.MaxRID)
			}
		})
		if err != nil {
			return nil, err
		}
	}
	scanDur := time.Since(start)
	for _, b := range builders {
		b.st.ScanSort += scanDur
		b.prog.FinishPhase(progress.Scan)
	}

	// Finish each index concurrently — "a process can be spawned for each
	// index to sort the keys, insert them and process the side-file" (§6.2).
	// Concurrency matters beyond wall-clock: while one SF index catches up
	// on its side-file, the others would otherwise keep capturing and their
	// side-files would keep growing. Options.SerialFinish trades that for a
	// deterministic I/O order (the later indexes' side-files then absorb the
	// catch-up of the earlier ones).
	results := make([]*Result, len(builders))
	errs := make([]error, len(builders))
	finish := func(i int, b *builder) {
		if method == catalog.MethodNSF {
			results[i], errs[i] = b.finishNSFFromSorter(sorters[i])
			return
		}
		runs, err := sorters[i].Finish()
		if err != nil {
			errs[i] = b.cancel(err)
			return
		}
		b.st.Runs = len(runs)
		if err := b.sfLoadPhase(runs, nil, nil); err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = b.sfSideFilePhase(0)
	}
	if opts.SerialFinish {
		for i, b := range builders {
			finish(i, b)
		}
	} else {
		var wg sync.WaitGroup
		for i, b := range builders {
			wg.Add(1)
			go func(i int, b *builder) {
				defer wg.Done()
				finish(i, b)
			}(i, b)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// buildManyOffline builds all indexes under one quiesce and one scan.
func buildManyOffline(db *engine.DB, specs []engine.CreateIndexSpec, opts Options) ([]*Result, error) {
	results := make([]*Result, 0, len(specs))
	tbl, ok := db.Catalog().Table(specs[0].Table)
	if !ok {
		return nil, fmt.Errorf("core: no table %q", specs[0].Table)
	}
	quiesce, err := db.QuiesceTable(tbl.ID)
	if err != nil {
		return nil, err
	}
	defer quiesce.Commit() //nolint:errcheck
	for _, spec := range specs {
		b := &builder{db: db, opts: opts}
		b.st.Method = catalog.MethodOffline
		res, err := b.buildOffline(spec)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}
