package core

import (
	"fmt"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
)

// Resume continues one interrupted index build found by restart recovery.
// The build picks up from its last committed checkpoint: the restartable
// sort repositions its runs and scan, the bottom-up loader truncates back to
// its checkpoint, side-file processing resumes at the recorded position —
// "in case a system failure were to interrupt the completion of the creation
// of the index, not all the so-far-accomplished work is lost" (§1.3).
func Resume(db *engine.DB, pb engine.PendingBuild, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	tbl, ok := db.Catalog().TableByID(pb.Index.Table)
	if !ok {
		return nil, fmt.Errorf("core: resumed index %q references missing table %d", pb.Index.Name, pb.Index.Table)
	}
	b := &builder{db: db, ix: pb.Index, tbl: tbl, opts: opts}
	b.st.Method = pb.Index.Method
	switch pb.Index.Method {
	case catalog.MethodNSF:
		return b.resumeNSF(pb.State)
	case catalog.MethodSF:
		b.ctl = db.BuildCtlOf(pb.Index.ID)
		if b.ctl == nil {
			return nil, fmt.Errorf("core: SF build of %q has no registered control after recovery", pb.Index.Name)
		}
		return b.resumeSF(pb.State)
	default:
		return nil, fmt.Errorf("core: build method %v is not resumable", pb.Index.Method)
	}
}

// ResumeAll resumes every interrupted build after recovery, in index-ID
// order, returning the results.
func ResumeAll(db *engine.DB, opts Options) ([]*Result, error) {
	pending, err := db.PendingBuilds()
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, pb := range pending {
		res, err := Resume(db, pb, opts)
		if err != nil {
			return out, fmt.Errorf("core: resuming %q: %w", pb.Index.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// Cancel aborts an in-progress build from outside (§2.3.2): quiesce the
// table, drop the descriptor, discard the builder state.
func Cancel(db *engine.DB, indexName string) error {
	ix, ok := db.Catalog().Index(indexName)
	if !ok {
		return fmt.Errorf("core: no index %q", indexName)
	}
	if ix.State != catalog.StateBuilding {
		return fmt.Errorf("core: index %q is not being built", indexName)
	}
	db.UnregisterBuild(ix.ID)
	db.DropIBCheckpoint(ix.ID)
	return db.DropIndex(indexName)
}
