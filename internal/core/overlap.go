package core

// Merge→load overlap: §2.2.2 observes that "the final merge phase of sort
// can be performed as keys are being inserted into the index". Here the
// merge hands decoded entries to the bottom-up loader in small batches
// through a bounded buffer, so run-file reads and leaf construction
// proceed concurrently. The batch boundaries are the quiescent hand-off
// points: each batch carries the merge-counter vector as of *after* its
// last entry, so a consumer that has loaded exactly that prefix can
// checkpoint (counters, loader position) as a consistent §5.2/§3.2.4 pair
// without stopping the producer more than one hand-off.

import (
	"onlineindex/internal/btree"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/progress"
	"onlineindex/internal/types"
)

// overlapBatchSize is the hand-off granularity in entries. Small enough
// that the loader never waits long for the first key of a batch, large
// enough that channel traffic is negligible against tournament work.
const overlapBatchSize = 256

// overlapDepth bounds the producer's lead, in batches: the merge stays at
// most overlapDepth hand-offs ahead of the loader.
const overlapDepth = 2

// loadBatch is one merge→load hand-off unit.
type loadBatch struct {
	entries []btree.Entry
	state   extsort.MergeState // merge position after the batch's last entry
	merged  uint64             // absolute keys consumed after this batch
	done    bool               // merge exhausted
	err     error
}

// nextLoadBatch consumes up to overlapBatchSize entries from the merger.
func nextLoadBatch(merger *extsort.Merger, merged uint64) loadBatch {
	bt := loadBatch{merged: merged}
	for len(bt.entries) < overlapBatchSize {
		item, _, ok, err := merger.Next()
		if err != nil {
			bt.err = err
			return bt
		}
		if !ok {
			bt.done = true
			break
		}
		key, rid, err := decodeItem(item)
		if err != nil {
			bt.err = err
			return bt
		}
		bt.entries = append(bt.entries, btree.Entry{Key: append([]byte(nil), key...), RID: rid})
		bt.merged++
	}
	bt.state = merger.State()
	return bt
}

// overlapMerge drives merge batches into consume. Concurrent mode runs the
// producer on its own goroutine, at most overlapDepth batches ahead of the
// consumer. Serial mode alternates produce and consume on the calling
// goroutine: identical batches and hand-off points, single-goroutine I/O
// order — the shape the deterministic fault-injection harness sweeps.
// consume never runs concurrently with merger.Next, and the merger is
// quiescent again by the time overlapMerge returns.
func overlapMerge(merger *extsort.Merger, merged uint64, concurrent bool, consume func(loadBatch) error) error {
	if !concurrent {
		for {
			bt := nextLoadBatch(merger, merged)
			merged = bt.merged
			if bt.err != nil {
				return bt.err
			}
			if err := consume(bt); err != nil {
				return err
			}
			if bt.done {
				return nil
			}
		}
	}
	ch := make(chan loadBatch, overlapDepth)
	stop := make(chan struct{})
	go func() {
		defer close(ch)
		m := merged
		for {
			bt := nextLoadBatch(merger, m)
			m = bt.merged
			select {
			case ch <- bt:
			case <-stop:
				return
			}
			if bt.err != nil || bt.done {
				return
			}
		}
	}()
	defer func() {
		// Unstick a blocked producer and wait it out (closing ch is its
		// last act), so the caller may close the merger afterwards.
		close(stop)
		for range ch {
		}
	}()
	for bt := range ch {
		if bt.err != nil {
			return bt.err
		}
		if err := consume(bt); err != nil {
			return err
		}
		if bt.done {
			return nil
		}
	}
	return nil
}

// sfLoadOverlapped streams the merge into the loader through overlapMerge,
// checkpointing the (merge counters, loader position) pair only at batch
// boundaries. Returns the total number of keys consumed from the merge.
// Non-unique indexes only: the unique path's held-back entry and
// both-records-locked verification need the one-at-a-time serial loop.
func (b *builder) sfLoadOverlapped(merger *extsort.Merger, loader *btree.Loader, merged uint64) (uint64, error) {
	sinceCkpt := 0
	err := overlapMerge(merger, merged, !b.opts.SerialFinish, func(bt loadBatch) error {
		if err := loader.AddBatch(bt.entries); err != nil {
			return err
		}
		b.st.KeysInserted += uint64(len(bt.entries))
		merged = bt.merged
		b.prog.Advance(progress.Load, bt.merged)
		sinceCkpt += len(bt.entries)
		if b.opts.CheckpointKeys > 0 && sinceCkpt >= b.opts.CheckpointKeys {
			ls, err := loader.Checkpoint() // flushes the index file first
			if err != nil {
				return err
			}
			st := engine.IBState{
				Index: b.ix.ID, Phase: engine.IBPhaseLoad,
				CurrentRID: types.MaxRID,
				MergeState: bt.state.Encode(), LoadState: ls.Encode(),
			}
			if err := b.rotate(st); err != nil {
				return err
			}
			sinceCkpt = 0
		}
		return nil
	})
	return merged, err
}
