// Package core implements the paper's contribution: building a B+-tree
// index on a table without quiescing updates, by the NSF (No Side-File,
// §2) and SF (Side-File, §3) algorithms, plus the offline baseline the
// paper's introduction criticizes (quiesce updates for the whole build).
//
// Both online algorithms share the pipeline
//
//	scan data pages (share-latching only, no locks)
//	  → restartable sort (tournament tree, run files, checkpoints)
//	  → restartable merge feeding the index
//	  → completion,
//
// and checkpoint their progress in TypeIBCheckpoint log records committed by
// the builder's rotating transaction, so a system failure loses at most one
// checkpoint interval of work (§2.2.3, §3.2.4, §5). Resume continues an
// interrupted build from its last checkpoint after restart recovery.
package core

import (
	"errors"
	"fmt"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/enc"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/lock"
	"onlineindex/internal/progress"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// Options tunes an index build. The zero value of every field means "use
// the documented default"; Validate rejects values that are out of range
// (negative counts, an impossible fill factor) instead of silently
// clamping them.
type Options struct {
	// SortMemory is the tournament-tree capacity in keys.
	// Default 4096; minimum 2 (replacement selection needs a tournament).
	SortMemory int
	// FillFactor is the bottom-up loader's node fill fraction, in (0, 1].
	// Default 0.9.
	FillFactor float64
	// CheckpointPages: take a scan-phase checkpoint every N data pages.
	// Default 0: no mid-scan checkpoints.
	CheckpointPages int
	// CheckpointKeys: take an insert/load-phase checkpoint every N keys.
	// Default 0: no mid-insert checkpoints.
	CheckpointKeys int
	// BatchSize is the NSF multi-key insert batch. Default 64.
	BatchSize int
	// ScanWorkers is the number of parallel key-extraction workers in the
	// staged scan pipeline (see pipeline.go). Default 1: extraction runs
	// inline on the scan goroutine. At any worker count the page visit and
	// the sorter feed stay in strict page order, so the SF Current-RID
	// invariant (§3.2.2) and the scan checkpoints are unaffected; workers
	// only spread the key extraction between the two serial stages.
	ScanWorkers int
	// SortPartitions fans run generation out over N independent
	// replacement-selection sorters, fed round-robin by page from the
	// in-order feed (partition.go in extsort). SortMemory is split across
	// the partitions, each emits its own run stream under a disjoint file
	// prefix, and the merge simply sees a wider set of inputs — §5.2's
	// per-stream counter vector makes a wide merge exactly as restartable
	// as a narrow one. Default 1: the serial sorter with today's I/O
	// sequence, op for op. With SerialFinish set, the partitions are fed
	// inline on the scan goroutine (same runs and checkpoints,
	// deterministic I/O order for the fault-injection harness).
	SortPartitions int
	// MergeOverlap hands merged keys to the bottom-up loader through a
	// small bounded buffer so the final merge runs concurrently with leaf
	// construction — §2.2.2's "the final merge phase of sort can be
	// performed as keys are being inserted into the index". Checkpoints
	// are taken only at batch hand-off points, where the merge-counter
	// vector and the loader position form a consistent pair. Applies to
	// the SF load phase (non-unique indexes; the unique path's held-back
	// dup verification needs the serial loop) and the offline baseline.
	// With SerialFinish set, produce and consume alternate on one
	// goroutine — identical batches and checkpoints, deterministic I/O.
	MergeOverlap bool
	// CompressKeys stores sort-run items prefix-delta encoded against their
	// predecessor and builds the index's leaf/branch pages with per-page
	// prefix truncation, shrinking spill I/O and widening fanout when keys
	// share long prefixes (composite keys, URLs, timestamps). The compression
	// flag travels in the durable sort/merge/loader states, so a resumed
	// build keeps the format its runs and pages were written with regardless
	// of the option's value at resume time. Default off.
	CompressKeys bool
	// SortSideFile applies the side-file sorted ("for improved performance,
	// IB could sort the entries of the side-file, without modifying the
	// relative positions of the identical keys", §3.2.5). The tail appended
	// during the sorted pass is still processed sequentially.
	SortSideFile bool
	// GCAfterBuild schedules a pseudo-deleted key cleanup pass after an NSF
	// build (§2.2.4).
	GCAfterBuild bool
	// OnCheckpoint, when set, is called after every committed builder
	// checkpoint, on the builder's goroutine with no page latches or builder
	// transaction in flight. The fault-injection sweep uses it to interleave
	// scripted DML with the build at deterministic points; a non-nil error
	// aborts the build. The phase argument tells the script where the build
	// is (scan, insert, load, side-file catch-up).
	OnCheckpoint func(phase engine.IBPhase) error
	// SerialFinish makes BuildMany run its per-index finish phases (merge,
	// load, side-file catch-up) sequentially in spec order instead of
	// spawning one goroutine per index. Real builds want the concurrency
	// (§6.2: "a process can be spawned for each index"); the deterministic
	// fault-injection harness needs a single-goroutine I/O order.
	SerialFinish bool
}

// ErrInvalidOptions tags every option-validation failure, so callers can
// errors.Is for the whole class.
var ErrInvalidOptions = errors.New("core: invalid build options")

// Validate rejects option values that are out of range. Zero values are
// valid everywhere (they select the documented defaults).
func (o Options) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: "+format, append([]any{ErrInvalidOptions}, args...)...)
	}
	if o.SortMemory < 0 {
		return fail("SortMemory %d is negative", o.SortMemory)
	}
	if o.SortMemory == 1 {
		return fail("SortMemory 1: replacement selection needs a tournament of >= 2 keys")
	}
	if o.FillFactor < 0 || o.FillFactor > 1 {
		return fail("FillFactor %v is outside (0, 1]", o.FillFactor)
	}
	if o.CheckpointPages < 0 {
		return fail("CheckpointPages %d is negative", o.CheckpointPages)
	}
	if o.CheckpointKeys < 0 {
		return fail("CheckpointKeys %d is negative", o.CheckpointKeys)
	}
	if o.BatchSize < 0 {
		return fail("BatchSize %d is negative", o.BatchSize)
	}
	if o.ScanWorkers < 0 {
		return fail("ScanWorkers %d is negative", o.ScanWorkers)
	}
	if o.SortPartitions < 0 {
		return fail("SortPartitions %d is negative", o.SortPartitions)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.SortMemory == 0 {
		o.SortMemory = 4096
	}
	if o.FillFactor == 0 {
		o.FillFactor = 0.9
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.ScanWorkers == 0 {
		o.ScanWorkers = 1
	}
	if o.SortPartitions == 0 {
		o.SortPartitions = 1
	}
	return o
}

// Stats reports what a build did.
type Stats struct {
	Method          catalog.BuildMethod
	PagesScanned    uint64
	KeysExtracted   uint64
	KeysInserted    uint64
	KeysSkipped     uint64 // duplicates rejected (races IB lost)
	SideFileLen     uint64 // entries the side-file accumulated (SF)
	SideFileApplied uint64
	Checkpoints     uint64
	Runs            int    // sorted runs produced
	BytesSpilled    uint64 // run-file bytes written by the sort (post-compression)
	ScanSort        time.Duration
	Insert          time.Duration // key insertion / bottom-up load
	SideFile        time.Duration // side-file processing (SF)
	QuiesceWait     time.Duration // time spent waiting to quiesce (NSF DDL / offline)
	// Pipeline breaks the scan phase down by pipeline stage (prefetch /
	// extraction / sorter feed) so ScanSort's wall clock stays explainable
	// when extraction fans out over Options.ScanWorkers.
	Pipeline harness.PipelineStats
	GC       struct {
		Collected, Skipped int
	}
}

// Result of a completed build.
type Result struct {
	Index catalog.Index
	Stats Stats
}

// ErrBuildCancelled is returned when a unique violation (or explicit cancel)
// aborts the build: "the index-build operation is abnormally terminated
// since a unique index cannot be built on this table" (§2.2.3).
var ErrBuildCancelled = errors.New("core: index build cancelled")

// builder carries one build's state.
type builder struct {
	db   *engine.DB
	ix   catalog.Index
	tbl  catalog.Table
	opts Options
	ctl  *engine.BuildCtl
	tx   *txn.Txn // rotating builder transaction, committed at checkpoints
	st   Stats
	// runCompress is the run/page format actually in effect: CompressKeys for
	// a fresh build, the durable sort state's flag for a resumed one.
	runCompress bool
	// prog is the build's progress tracker (nil when the engine runs with
	// metrics disabled; all feeds are nil-safe).
	prog *progress.Tracker
}

// Build creates an index with the given method, concurrently with updates
// for the online methods. It blocks until the index is complete (run it in
// a goroutine to overlap with a workload).
func Build(db *engine.DB, spec engine.CreateIndexSpec, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	b := &builder{db: db, opts: opts}
	b.st.Method = spec.Method

	switch spec.Method {
	case catalog.MethodNSF:
		return b.buildNSF(spec)
	case catalog.MethodSF:
		return b.buildSF(spec)
	case catalog.MethodOffline:
		return b.buildOffline(spec)
	default:
		return nil, fmt.Errorf("core: unknown build method %v", spec.Method)
	}
}

// item encoding for the external sort: key bytes followed by a fixed-width
// RID suffix, so bytes.Compare on items equals the (key value, RID) entry
// order of the index.
const ridSuffix = 10

func encodeItem(key []byte, rid types.RID) []byte {
	out := make([]byte, 0, len(key)+ridSuffix)
	out = append(out, key...)
	var tail [ridSuffix]byte
	putRIDBytes(tail[:], rid)
	return append(out, tail[:]...)
}

func decodeItem(item []byte) (key []byte, rid types.RID, err error) {
	if len(item) < ridSuffix {
		return nil, types.RID{}, fmt.Errorf("core: sort item too short (%d bytes)", len(item))
	}
	cut := len(item) - ridSuffix
	return item[:cut], getRIDBytes(item[cut:]), nil
}

func putRIDBytes(dst []byte, r types.RID) {
	be := func(off int, v uint32) {
		dst[off] = byte(v >> 24)
		dst[off+1] = byte(v >> 16)
		dst[off+2] = byte(v >> 8)
		dst[off+3] = byte(v)
	}
	be(0, uint32(r.PageID.File))
	be(4, uint32(r.PageID.Page))
	dst[8] = byte(uint16(r.Slot) >> 8)
	dst[9] = byte(r.Slot)
}

func getRIDBytes(src []byte) types.RID {
	be := func(off int) uint32 {
		return uint32(src[off])<<24 | uint32(src[off+1])<<16 | uint32(src[off+2])<<8 | uint32(src[off+3])
	}
	return types.RID{
		PageID: types.PageID{File: types.FileID(be(0)), Page: types.PageNum(be(4))},
		Slot:   types.SlotNum(uint16(src[8])<<8 | uint16(src[9])),
	}
}

// sortPrefix names a build's run files deterministically so restart finds
// them.
func sortPrefix(ix types.IndexID) string { return fmt.Sprintf("ib-%06d", ix) }

// rotate commits the builder transaction with a checkpoint record and
// starts a fresh one. The commit forces the log, making the checkpoint (and
// everything the builder logged before it) durable — "this involves IB
// recording on stable storage the highest key and issuing a commit call"
// (§2.2.3).
func (b *builder) rotate(st engine.IBState) error {
	payload := st.Encode()
	if _, err := b.tx.Log(&wal.Record{Type: wal.TypeIBCheckpoint, Flags: wal.FlagRedo, Payload: payload}); err != nil {
		return err
	}
	if err := b.tx.Commit(); err != nil {
		return err
	}
	b.db.NoteIBCheckpoint(b.ix.ID, payload)
	b.prog.MarkDurable()
	b.st.Checkpoints++
	b.tx = b.db.Begin()
	if b.opts.OnCheckpoint != nil {
		if err := b.opts.OnCheckpoint(st.Phase); err != nil {
			return err
		}
	}
	return nil
}

// scanPosition encodes the data scan cursor stored inside the sort state.
func scanPosition(next, end types.PageNum) []byte {
	return enc.NewWriter().U32(uint32(next)).U32(uint32(end)).Bytes()
}

func parseScanPosition(b []byte) (next, end types.PageNum, err error) {
	r := enc.NewReader(b)
	next = types.PageNum(r.U32())
	end = types.PageNum(r.U32())
	return next, end, r.Err()
}

// cancel aborts the build: roll back the in-flight builder transaction and
// drop the descriptor under the §2.3.2 quiesce.
func (b *builder) cancel(cause error) error {
	if errors.Is(cause, vfs.ErrCrashed) {
		// The file system is gone: no compensation can run on this
		// incarnation (DropIndex would block on locks held by transactions
		// that died with the machine). Restart recovery owns the cleanup.
		return fmt.Errorf("%w: %w", ErrBuildCancelled, cause)
	}
	if b.tx != nil && b.tx.State() == txn.StateActive {
		if err := b.tx.Rollback(); err != nil {
			return err
		}
	}
	if b.ctl != nil {
		b.db.UnregisterBuild(b.ix.ID)
	}
	b.db.DropIBCheckpoint(b.ix.ID)
	if err := b.db.DropIndex(b.ix.Name); err != nil {
		return fmt.Errorf("core: cancelling build of %q: %w (cause: %v)", b.ix.Name, err, cause)
	}
	return fmt.Errorf("%w: %w", ErrBuildCancelled, cause)
}

// verifyIBConflict runs the §2.2.3 unique-check: "IB would lock both records
// in share mode, and then access the index page and the corresponding data
// page(s) to verify whether the duplicate key value condition still exists."
// Returns action: skip the key (its record changed), replace the terminated
// pseudo entry, or fail the build.
type conflictAction int

const (
	conflictSkipKey conflictAction = iota
	conflictReplace
	conflictFatal
	conflictRetry
)

func (b *builder) verifyIBConflict(tree treeLike, key []byte, rid, other types.RID, otherPseudo bool) (conflictAction, error) {
	// Lock both records in share mode (waits out uncommitted owners).
	if err := b.tx.Lock(lock.RecordName(rid), lock.S); err != nil {
		return 0, err
	}
	if err := b.tx.Lock(lock.RecordName(other), lock.S); err != nil {
		return 0, err
	}
	// (1) Does our record still produce this key?
	if ok, err := b.recordHasKey(rid, key); err != nil {
		return 0, err
	} else if !ok {
		return conflictSkipKey, nil // record deleted/updated since extraction
	}
	// (2) Does the competing entry still exist, and in what state?
	found, pseudo, err := tree.SearchEntry(key, other)
	if err != nil {
		return 0, err
	}
	if !found {
		return conflictRetry, nil
	}
	if pseudo {
		return conflictReplace, nil
	}
	// (3) Does the competing record still produce this key value?
	if ok, err := b.recordHasKey(other, key); err != nil {
		return 0, err
	} else if !ok {
		// Stale live entry for a changed record: the owning transaction's
		// delete must still be in flight elsewhere; retry.
		return conflictRetry, nil
	}
	return conflictFatal, nil
}

// treeLike is the slice of the btree API conflict verification needs.
type treeLike interface {
	SearchEntry(key []byte, rid types.RID) (bool, bool, error)
}

// recordHasKey reports whether the record at rid exists and its key columns
// encode to key.
func (b *builder) recordHasKey(rid types.RID, key []byte) (bool, error) {
	h, err := b.db.HeapOf(b.tbl.ID)
	if err != nil {
		return false, err
	}
	rec, ok, err := h.Get(rid)
	if err != nil || !ok {
		return false, err
	}
	got, err := engine.IndexKeyFromRecord(&b.ix, rec)
	if err != nil {
		return false, err
	}
	return string(got) == string(key), nil
}

// extractAndSort runs the shared scan phase over pages [from..end] through
// the staged pipeline (pipeline.go): the page visitor S-latches pages in
// order (advancing the SF Current-RID under the latch), ScanWorkers
// extraction workers build the sort items, and the in-order sorter feed
// takes a watermark checkpoint every CheckpointPages pages.
func (b *builder) extractAndSort(sorter *extsort.PartSorter, from, end types.PageNum, phase engine.IBPhase) error {
	h, err := b.db.HeapOf(b.tbl.ID)
	if err != nil {
		return err
	}
	feeds := []*scanFeed{{ix: &b.ix, sorter: sorter, st: &b.st, prog: b.prog, met: b.db.Metrics()}}
	var advance func(next types.PageNum)
	if b.ctl != nil {
		advance = func(next types.PageNum) {
			// Under the page latch: advance Current-RID past the whole page
			// so every later modification of it routes to the side-file.
			b.ctl.AdvanceCurrentRID(types.RID{PageID: types.PageID{File: b.tbl.FileID, Page: next}})
		}
	}
	checkpoint := func(next types.PageNum) error {
		ss, err := sorter.Checkpoint(scanPosition(next, end))
		if err != nil {
			return err
		}
		st := engine.IBState{
			Index: b.ix.ID, Phase: phase, EndPage: end,
			SortState: ss.Encode(),
		}
		if b.ctl != nil {
			// The checkpoint covers exactly the drained watermark [from..next):
			// the visitor may have prefetched further and advanced the live
			// Current-RID with it, but recovery must restore the position that
			// matches the sorter state, so resume rescans from `next` at any
			// worker count. An update between the watermark and the prefetch
			// head that reached the side-file before a crash is re-extracted
			// by the resumed scan and absorbed by duplicate rejection, like
			// the §3.2.2 race-window pages.
			st.CurrentRID = types.RID{PageID: types.PageID{File: b.tbl.FileID, Page: next}}
		}
		return b.rotate(st)
	}
	start := time.Now()
	err = pipelineScan(h, from, end, feeds, b.opts.ScanWorkers, advance,
		b.opts.CheckpointPages, checkpoint)
	b.st.ScanSort += time.Since(start)
	return err
}
