package core

// Progress feeding: every builder phase reports the same quantities its
// durable checkpoints record (scan page position, merge counter vectors,
// side-file apply position), so a resumed build seeds its tracker from the
// last committed IBState and the reported fraction never falls behind work
// that was durably done.

import (
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/progress"
)

// startProgress creates and registers the build's tracker. Tracking follows
// the engine's metrics switch: with Config.DisableMetrics set no tracker is
// created, and every feed below is a nil-safe no-op.
func (b *builder) startProgress() {
	if b.db.Metrics() == nil {
		return
	}
	b.prog = progress.New(b.ix.Name, b.ix.Method.String(), b.progressPhases()...)
	b.db.RegisterProgress(b.ix.ID, b.prog)
}

func (b *builder) progressPhases() []progress.Phase {
	switch b.ix.Method {
	case catalog.MethodSF:
		return []progress.Phase{progress.Scan, progress.Sort, progress.Load, progress.SideFile}
	default:
		ph := []progress.Phase{progress.Scan, progress.Sort, progress.Load}
		if b.opts.GCAfterBuild {
			ph = append(ph, progress.GC)
		}
		return ph
	}
}

// seedProgress primes a resumed build's tracker from the durable checkpoint,
// then installs the resulting fraction as the floor the report never drops
// below. No-op for a build that never checkpointed.
func (b *builder) seedProgress(state *engine.IBState) {
	if b.prog == nil || state == nil {
		return
	}
	switch state.Phase {
	case engine.IBPhaseScan:
		if ss, err := extsort.DecodePartSortState(state.SortState); err == nil {
			if next, end, err := parseScanPosition(ss.ScanPos); err == nil {
				b.prog.SetTotal(progress.Scan, uint64(end)+1)
				b.prog.Advance(progress.Scan, uint64(next))
			}
		}
	case engine.IBPhaseInsert, engine.IBPhaseLoad:
		if ms, err := extsort.DecodeMergeState(state.MergeState); err == nil {
			done, total := mergeProgress(&ms)
			b.prog.SetTotal(progress.Load, total)
			b.prog.Advance(progress.Load, done)
		}
	case engine.IBPhaseSideFile:
		b.prog.FinishPhase(progress.Load)
		b.prog.Advance(progress.SideFile, state.SFPos)
	}
	b.prog.SeedResume()
}

// mergeProgress returns the merge's completed and total key counts: the sum
// of the per-stream counters against the sum of the run lengths — exactly
// the restartable merge's checkpoint vector (§5.2).
func mergeProgress(ms *extsort.MergeState) (done, total uint64) {
	for _, r := range ms.Runs {
		total += r.Count
	}
	for _, c := range ms.Counters {
		done += c
	}
	return done, total
}

// partCapacity splits the configured sort memory across partitions:
// SortMemory is the build's total in-memory working set, so fanning out
// does not multiply it.
func partCapacity(sortMemory, parts int) int {
	if parts > 1 {
		sortMemory /= parts
	}
	return max(2, sortMemory)
}

// newSorter creates the build's (possibly partitioned) run sorter with the
// engine's sort metrics attached. SerialFinish keeps the partition feed
// inline on the scan goroutine for a deterministic I/O order.
func (b *builder) newSorter() *extsort.PartSorter {
	s := extsort.NewPartSorterWith(b.db.FS(), sortPrefix(b.ix.ID),
		partCapacity(b.opts.SortMemory, b.opts.SortPartitions),
		b.opts.SortPartitions, !b.opts.SerialFinish, b.opts.CompressKeys)
	s.SetMetrics(extsort.MetricsFrom(b.db.Metrics()))
	b.runCompress = b.opts.CompressKeys
	return s
}

// resumeSorter rebuilds the run sorter from a checkpointed sort state. The
// partition count comes from the durable state (the runs on disk decide),
// not from the current options; only the tree capacity is re-derived.
func (b *builder) resumeSorter(sortState []byte) (*extsort.PartSorter, []byte, error) {
	ss, err := extsort.DecodePartSortState(sortState)
	if err != nil {
		return nil, nil, err
	}
	s, scanPos, err := extsort.ResumePartSorter(b.db.FS(), ss,
		partCapacity(b.opts.SortMemory, len(ss.Parts)), !b.opts.SerialFinish)
	if err != nil {
		return nil, nil, err
	}
	s.SetMetrics(extsort.MetricsFrom(b.db.Metrics()))
	b.runCompress = s.Compressed() // the runs on disk decide, not the options
	return s, scanPos, nil
}

// mergeOpts selects the merge's I/O options: run-reader readahead only for
// the configurations that are concurrent anyway (partitioned sort or
// merge→load overlap, without SerialFinish), so the default and the
// fault-injection configurations keep the exact single-goroutine read
// order they have today.
func (b *builder) mergeOpts() extsort.MergeOptions {
	return extsort.MergeOptions{
		Readahead: !b.opts.SerialFinish && (b.opts.SortPartitions > 1 || b.opts.MergeOverlap),
		Compress:  b.runCompress,
	}
}

// noteMerge records a merge's fan-in and tells the tracker the load phase's
// key total, called wherever a merger is opened.
func (b *builder) noteMerge(runs []extsort.RunMeta, counters []uint64) {
	met := extsort.MetricsFrom(b.db.Metrics())
	met.MergeFanIn.Observe(uint64(len(runs)))
	met.FanIn.Set(int64(len(runs)))
	b.st.BytesSpilled = 0
	for _, r := range runs {
		b.st.BytesSpilled += uint64(r.Bytes)
	}
	ms := extsort.MergeState{Runs: runs, Counters: counters}
	done, total := mergeProgress(&ms)
	b.prog.FinishPhase(progress.Sort)
	b.prog.SetTotal(progress.Load, total)
	if done > 0 {
		b.prog.Advance(progress.Load, done)
	}
}
