package core

import (
	"bytes"
	"fmt"
	"testing"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// compressDML returns a deterministic OnCheckpoint mutator: an insert and an
// in-place-key update at every builder checkpoint. Determinism matters here —
// the compressed and uncompressed builds each run it against their own DB,
// and the differential below compares the resulting indexes entry for entry.
func compressDML(db *engine.DB, rids []types.RID) func(engine.IBPhase) error {
	n := 0
	return func(engine.IBPhase) error {
		n++
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(1_000_000+n), nameOf(1_000_000+n), int64(n))); err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		victim := rids[(37*n)%len(rids)]
		if _, err := db.Update(tx, "items", victim, rowOf(int64(2_000_000+n), nameOf(2_000_000+n), int64(n%7))); err != nil {
			tx.Rollback() //nolint:errcheck
			return err
		}
		return tx.Commit()
	}
}

func allEntries(t *testing.T, db *engine.DB, index string) []btree.Entry {
	t.Helper()
	ix, ok := db.Catalog().Index(index)
	if !ok {
		t.Fatalf("no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		t.Fatal(err)
	}
	var out []btree.Entry
	err = tree.ScanRange(nil, nil, func(e btree.Entry) bool {
		out = append(out, btree.Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// buildOne seeds a fresh DB, runs one build with the given compression flag
// (mutating at checkpoints for the online methods), and returns the final
// index entries plus the build stats.
func buildOne(t *testing.T, method catalog.BuildMethod, unique, compress bool) ([]btree.Entry, Stats) {
	t.Helper()
	db, rids := newDB(t, 1200)
	opts := Options{SortMemory: 64, CheckpointPages: 4, CheckpointKeys: 300, CompressKeys: compress}
	if method != catalog.MethodOffline {
		// Offline quiesces the table; checkpoint DML would deadlock on it.
		opts.OnCheckpoint = compressDML(db, rids)
	}
	res, err := Build(db, spec("by_x", method, unique), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIndexConsistency("by_x"); err != nil {
		t.Fatalf("compress=%v: %v", compress, err)
	}
	return allEntries(t, db, "by_x"), res.Stats
}

func TestCompressedBuildDifferential(t *testing.T) {
	// The tentpole's end-to-end oracle: for every build method, unique and
	// non-unique, a compressed build over an identical history must produce
	// an index with exactly the same entries as an uncompressed one — while
	// spilling measurably fewer run bytes.
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		for _, unique := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/unique=%v", method, unique), func(t *testing.T) {
				plain, pst := buildOne(t, method, unique, false)
				comp, cst := buildOne(t, method, unique, true)
				if len(plain) != len(comp) {
					t.Fatalf("entry counts differ: %d uncompressed, %d compressed", len(plain), len(comp))
				}
				for i := range plain {
					if !bytes.Equal(plain[i].Key, comp[i].Key) || plain[i].RID != comp[i].RID || plain[i].Pseudo != comp[i].Pseudo {
						t.Fatalf("entry %d differs: %+v vs %+v", i, plain[i], comp[i])
					}
				}
				if pst.BytesSpilled == 0 || cst.BytesSpilled == 0 {
					t.Fatalf("no spill measured (plain=%d comp=%d); SortMemory too large for the row count",
						pst.BytesSpilled, cst.BytesSpilled)
				}
				if cst.BytesSpilled >= pst.BytesSpilled {
					t.Fatalf("compression did not shrink the spill: %d >= %d", cst.BytesSpilled, pst.BytesSpilled)
				}
				t.Logf("spilled %d vs %d bytes (%.1f%%)", cst.BytesSpilled, pst.BytesSpilled,
					100*float64(cst.BytesSpilled)/float64(pst.BytesSpilled))
			})
		}
	}
}

func TestCompressedResumeKeepsFormat(t *testing.T) {
	// A build checkpointed with CompressKeys on must keep the compressed run
	// and page formats when resumed with the flag off (the durable states
	// carry the bit; resume-time options must not corrupt the runs).
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", schema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0)); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	opts := Options{SortMemory: 32, CheckpointPages: 2, CheckpointKeys: 200, CompressKeys: true}
	n := 0
	opts.OnCheckpoint = func(engine.IBPhase) error {
		if n++; n == 3 {
			db.Crash()
			return fmt.Errorf("crashed after checkpoint %d", n)
		}
		return nil
	}
	func() {
		defer func() { recover() }() // the dying incarnation may panic on I/O
		Build(db, spec("by_name", catalog.MethodSF, false), opts) //nolint:errcheck
	}()

	db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := db2.PendingBuilds()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending builds = %d, want 1", len(pending))
	}
	// Resume with compression off: the durable state's format must win.
	resumeOpts := Options{SortMemory: 32, CheckpointPages: 2, CheckpointKeys: 200, CompressKeys: false}
	if _, err := Resume(db2, pending[0], resumeOpts); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}
