package core

import (
	"errors"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/vfs"
)

// TestProgressMonotoneAcrossCrashResume kills an NSF build mid-merge and
// asserts the resumed build's reported progress never goes backwards past the
// last durable checkpoint: the tracker seeds its floor from the committed
// IBState, every sampled fraction is monotone from there, the raw feed never
// dips below the durable floor (Regressions == 0), and the terminal fraction
// is exactly 1.
func TestProgressMonotoneAcrossCrashResume(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", schema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), int64(i%97))); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}

	// Crash after the third insert-phase (mid-merge) checkpoint: the hook
	// runs with no builder transaction in flight, so the committed IBState
	// carries the merge counter vector the resume will seed from.
	errCrash := errors.New("injected crash")
	inserts := 0
	opts := Options{CheckpointPages: 8, CheckpointKeys: 200,
		OnCheckpoint: func(ph engine.IBPhase) error {
			if ph == engine.IBPhaseInsert {
				if inserts++; inserts == 3 {
					db.Crash()
					return errCrash
				}
			}
			return nil
		}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()                               // post-crash engine calls may panic
		Build(db, spec("by_name", catalog.MethodNSF, false), opts) //nolint:errcheck
	}()
	<-done
	if inserts < 3 {
		t.Fatalf("build finished after %d insert checkpoints; crash never fired", inserts)
	}

	db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := db2.PendingBuilds()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending builds = %d, want 1", len(pending))
	}
	pb := pending[0]
	if pb.State == nil || pb.State.Phase != engine.IBPhaseInsert {
		t.Fatalf("checkpointed phase = %v, want mid-merge (insert)", pb.State)
	}

	// Resume, sampling the reported fraction at every checkpoint of the new
	// incarnation.
	var samples []float64
	opts2 := Options{CheckpointPages: 8, CheckpointKeys: 200,
		OnCheckpoint: func(engine.IBPhase) error {
			samples = append(samples, db2.ProgressOf(pb.Index.ID).Fraction())
			return nil
		}}
	if _, err := Resume(db2, pb, opts2); err != nil {
		t.Fatal(err)
	}
	tr := db2.ProgressOf(pb.Index.ID)
	if tr == nil {
		t.Fatal("resumed build registered no tracker")
	}
	snap := tr.Snapshot()

	// The floor must reflect the mid-merge checkpoint: scan done plus three
	// checkpoints' worth of merged keys — well past zero.
	if snap.ResumeFloor <= 0.3 {
		t.Fatalf("resume floor %.4f: not seeded from the mid-merge checkpoint", snap.ResumeFloor)
	}
	if len(samples) == 0 {
		t.Fatal("resumed build took no checkpoints to sample at")
	}
	prev := snap.ResumeFloor
	for i, f := range samples {
		if f+1e-9 < prev {
			t.Fatalf("sample %d: fraction %.6f fell below %.6f", i, f, prev)
		}
		prev = f
	}
	if !snap.Complete || snap.Fraction != 1.0 {
		t.Fatalf("terminal snapshot: complete=%v fraction=%v", snap.Complete, snap.Fraction)
	}
	if got := tr.Regressions(); got != 0 {
		t.Fatalf("raw progress feed dipped below the durable floor %d times", got)
	}
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}
