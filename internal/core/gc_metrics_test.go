package core

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
)

// TestGCDrainsPseudoDeletedGauge exercises gc.go under concurrent DML and
// asserts the engine-wide btree.pseudo_deleted gauge is exact: deletes and
// key-changing updates drive it up, GC passes drive it back down, and once
// the workload quiesces it drains to exactly zero while the tree invariants
// keep holding.
func TestGCDrainsPseudoDeletedGauge(t *testing.T) {
	db, rids := newDB(t, 1500)
	if _, err := Build(db, spec("by_name", catalog.MethodNSF, false), Options{}); err != nil {
		t.Fatal(err)
	}

	gauge := func() int64 {
		s := db.Metrics().Snapshot()
		return s.Gauge("btree.pseudo_deleted")
	}

	// Concurrent DML: one deleter, one key-changing updater. Both pseudo-
	// delete entries in the visible index (deletes mark the key; updates mark
	// the old key and insert the new one).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				k := rng.Intn(len(rids))
				if w == 0 {
					db.Delete(tx, "items", rids[k]) //nolint:errcheck // double deletes just error
				} else {
					// A new name pseudo-deletes the old index key.
					_, _ = db.Update(tx, "items", rids[k], rowOf(int64(k), nameOf(k+100000), 1))
				}
				tx.Commit()
			}
		}(w)
	}

	// Let pseudo-deletes accumulate, then GC while the workload is still
	// running: uncommitted deletions are skipped, invariants must hold.
	deadline := time.Now().Add(10 * time.Second)
	for gauge() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no pseudo-deletes accumulated")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := GC(db, "by_name"); err != nil {
		close(stop)
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Quiesced: every deletion is committed, so GC passes must drain the
	// gauge to exactly zero (the Commit_LSN check admits every page once no
	// transactions are active).
	before := gauge()
	var collected int
	for i := 0; gauge() != 0; i++ {
		if i >= 5 {
			t.Fatalf("gauge stuck at %d after %d GC passes (started at %d)", gauge(), i, before)
		}
		res, err := GC(db, "by_name")
		if err != nil {
			t.Fatal(err)
		}
		collected += res.Collected
	}
	if before > 0 && collected == 0 {
		t.Fatalf("gauge went %d -> 0 with nothing collected", before)
	}
	t.Logf("pseudo_deleted %d -> 0, collected %d", before, collected)

	ix, ok := db.Catalog().Index("by_name")
	if !ok {
		t.Fatal("index lost")
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := btree.CheckInvariants(tree); err != nil {
		t.Fatalf("invariants after GC: %v", err)
	}
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}
