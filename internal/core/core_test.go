package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

func schema() catalog.Schema {
	return catalog.Schema{
		{Name: "id", Kind: keyenc.KindInt64},
		{Name: "name", Kind: keyenc.KindString},
		{Name: "qty", Kind: keyenc.KindInt64},
	}
}

func rowOf(id int64, name string, qty int64) engine.Row {
	return engine.Row{keyenc.Int64(id), keyenc.String(name), keyenc.Int64(qty)}
}

func nameOf(i int) string { return fmt.Sprintf("name-%06d", i) }

// newDB opens a DB with a populated "items" table of n rows and returns the
// RIDs.
func newDB(t testing.TB, n int) (*engine.DB, []types.RID) {
	t.Helper()
	db, err := engine.Open(engine.Config{FS: vfs.NewMemFS(), PoolSize: 512, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", schema()); err != nil {
		t.Fatal(err)
	}
	rids := make([]types.RID, 0, n)
	for i := 0; i < n; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), int64(i%97)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	return db, rids
}

func spec(name string, method catalog.BuildMethod, unique bool) engine.CreateIndexSpec {
	cols := []string{"name"}
	if unique {
		cols = []string{"id"}
	}
	return engine.CreateIndexSpec{Name: name, Table: "items", Columns: cols, Unique: unique, Method: method}
}

func TestBuildQuietTable(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, _ := newDB(t, 2000)
			res, err := Build(db, spec("by_name", method, false), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Index.State != catalog.StateComplete {
				t.Fatalf("state = %v", res.Index.State)
			}
			if res.Stats.KeysInserted != 2000 {
				t.Fatalf("inserted = %d, want 2000", res.Stats.KeysInserted)
			}
			if err := db.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
			// The index is usable.
			tx := db.Begin()
			rids, err := db.IndexLookup(tx, "by_name", keyenc.String(nameOf(777)))
			if err != nil || len(rids) != 1 {
				t.Fatalf("lookup: %v, %v", rids, err)
			}
			tx.Commit()
		})
	}
}

func TestBuildUniqueQuietTable(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, _ := newDB(t, 500)
			if _, err := Build(db, spec("uniq_id", method, true), Options{}); err != nil {
				t.Fatal(err)
			}
			if err := db.CheckIndexConsistency("uniq_id"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildUniqueDetectsDuplicates(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, _ := newDB(t, 100)
			// Add a duplicate id.
			tx := db.Begin()
			if _, err := db.Insert(tx, "items", rowOf(42, "dup", 0)); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
			_, err := Build(db, spec("uniq_id", method, true), Options{})
			var uv *engine.UniqueViolationError
			if !errors.As(err, &uv) && !errors.Is(err, ErrBuildCancelled) {
				t.Fatalf("err = %v, want unique violation / cancelled", err)
			}
			if err == nil {
				t.Fatal("duplicate table accepted by unique build")
			}
			// The descriptor is gone; updates keep working.
			if _, ok := db.Catalog().Index("uniq_id"); ok {
				t.Fatal("cancelled index still in catalog")
			}
			tx2 := db.Begin()
			if _, err := db.Insert(tx2, "items", rowOf(9999, "after", 0)); err != nil {
				t.Fatal(err)
			}
			tx2.Commit()
		})
	}
}

// workload runs concurrent inserts/deletes/updates against the items table
// until stop is closed, returning counters.
type workloadStats struct {
	inserts, deletes, updates, rollbacks int
}

func runWorkload(t testing.TB, db *engine.DB, rids []types.RID, workers int, stop chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			nextID := int64(1_000_000 + w*100_000)
			myRIDs := append([]types.RID(nil), rids[w*len(rids)/workers:(w+1)*len(rids)/workers]...)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Pace the workload so the builder always gets CPU even
				// under the race detector's ~20x slowdown; the throughput
				// experiments (which need an unthrottled load) live in the
				// benchmark harness, not here.
				time.Sleep(200 * time.Microsecond)
				tx := db.Begin()
				var err error
				rollback := rng.Intn(10) == 0
				switch rng.Intn(3) {
				case 0: // insert
					nextID++
					var rid types.RID
					rid, err = db.Insert(tx, "items", rowOf(nextID, fmt.Sprintf("w%d-new-%d", w, nextID), 0))
					if err == nil && !rollback {
						myRIDs = append(myRIDs, rid)
					}
				case 1: // delete
					if len(myRIDs) > 0 {
						k := rng.Intn(len(myRIDs))
						err = db.Delete(tx, "items", myRIDs[k])
						if err == nil && !rollback {
							myRIDs = append(myRIDs[:k], myRIDs[k+1:]...)
						}
					}
				case 2: // update (key change)
					if len(myRIDs) > 0 {
						k := rng.Intn(len(myRIDs))
						nextID++
						var newRID types.RID
						newRID, err = db.Update(tx, "items", myRIDs[k], rowOf(nextID, fmt.Sprintf("w%d-upd-%d", w, nextID), 1))
						if err == nil && !rollback {
							myRIDs[k] = newRID
						}
					}
				}
				stopped := func() bool {
					select {
					case <-stop:
						return true
					default:
						return false
					}
				}
				if err != nil {
					tx.Rollback()
					if !stopped() {
						t.Errorf("workload op: %v", err)
					}
					return
				}
				if rollback {
					if err := tx.Rollback(); err != nil {
						if !stopped() {
							t.Errorf("rollback: %v", err)
						}
						return
					}
				} else if err := tx.Commit(); err != nil {
					if !stopped() {
						t.Errorf("commit: %v", err)
					}
					return
				}
			}
		}(w)
	}
	return &wg
}

func TestBuildWithConcurrentUpdates(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, rids := newDB(t, 3000)
			stop := make(chan struct{})
			wg := runWorkload(t, db, rids, 4, stop)

			res, err := Build(db, spec("by_name", method, false), Options{
				CheckpointPages: 8, CheckpointKeys: 500,
			})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if t.Failed() {
				return
			}
			_ = res
			if err := db.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildSFWithSortedSideFile(t *testing.T) {
	db, rids := newDB(t, 2000)
	stop := make(chan struct{})
	wg := runWorkload(t, db, rids, 4, stop)
	res, err := Build(db, spec("by_name", catalog.MethodSF, false), Options{SortSideFile: true})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		return
	}
	_ = res
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUniqueWithConcurrentUpdates(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, rids := newDB(t, 1500)
			stop := make(chan struct{})
			wg := runWorkload(t, db, rids, 3, stop)
			_, err := Build(db, spec("uniq_id", method, true), Options{CheckpointKeys: 400})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if t.Failed() {
				return
			}
			if err := db.CheckIndexConsistency("uniq_id"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPaperExampleNineSteps(t *testing.T) {
	// The §2.2.3 worked example, against an NSF-building index:
	//  1. T1 inserts record (RID R, key K); 2. T1 inserts the key;
	//  3-4. IB's insert of the same key is rejected; 5-6. T1 rolls back,
	//  pseudo-deleting the key; 7-8. T2 inserts at the same RID and key,
	//  reactivating the entry; 9. T2 commits.
	db, _ := newDB(t, 10)
	ix, err := db.CreateIndexDescriptor(spec("by_name", catalog.MethodNSF, false))
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := db.TreeOf(ix.ID)

	// 1-2: T1 inserts; the index is visible for updates.
	t1 := db.Begin()
	rid, err := db.Insert(t1, "items", rowOf(100, "K", 0))
	if err != nil {
		t.Fatal(err)
	}
	key, _ := engine.IndexKeyFromRecord(&ix, engine.EncodeRow(rowOf(100, "K", 0)))
	found, pseudo, _ := tree.SearchEntry(key, rid)
	if !found || pseudo {
		t.Fatal("step 2: T1's key not live in index")
	}

	// 3-4: IB tries to insert the same key; rejected without any logging.
	ibTx := db.Begin()
	before := db.Log().Stats()
	cur := &btree.IBCursor{}
	resIB, conflict, _, err := tree.IBInsertBatch(ibTx, []btree.Entry{{Key: key, RID: rid}}, cur)
	if err != nil || conflict != nil {
		t.Fatal(err, conflict)
	}
	if resIB.Skipped != 1 || resIB.Inserted != 0 {
		t.Fatalf("step 4: IB duplicate handling = %+v", resIB)
	}
	if d := db.Log().Stats().Delta(before); d.Records != 0 {
		t.Fatalf("step 4: IB wrote %d log records for a rejected duplicate", d.Records)
	}
	ibTx.Rollback()

	// 5-6: T1 rolls back; the key becomes pseudo-deleted.
	if err := t1.Rollback(); err != nil {
		t.Fatal(err)
	}
	found, pseudo, _ = tree.SearchEntry(key, rid)
	if !found || !pseudo {
		t.Fatalf("step 6: key should be pseudo-deleted, found=%v pseudo=%v", found, pseudo)
	}
	if _, ok, _ := db.Get(db.Begin(), "items", rid); ok {
		t.Fatal("step 6: record should be gone")
	}

	// 7-8: T2 inserts the same key value; with slot reuse it may land on the
	// same RID, reactivating the pseudo-deleted entry.
	t2 := db.Begin()
	rid2, err := db.Insert(t2, "items", rowOf(100, "K", 0))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 == rid {
		found, pseudo, _ = tree.SearchEntry(key, rid)
		if !found || pseudo {
			t.Fatal("step 8: entry should be reactivated")
		}
	}
	// 9: T2 commits; <K, R> is in the index with a valid record.
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	found, pseudo, _ = tree.SearchEntry(key, rid2)
	if !found || pseudo {
		t.Fatal("step 9: final entry missing or pseudo")
	}
}

func TestCrashDuringScanAndResume(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			fs := vfs.NewMemFS()
			db, err := engine.Open(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			db.CreateTable("items", schema())
			for i := 0; i < 3000; i++ {
				tx := db.Begin()
				if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0)); err != nil {
					t.Fatal(err)
				}
				tx.Commit()
			}

			// Run the build in a goroutine and crash partway: the builder
			// goroutine will start failing; we only care about durable state.
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { recover() }() // the crash makes the builder panic-or-error; both fine
				Build(db, spec("by_name", method, false), Options{CheckpointPages: 4, CheckpointKeys: 300})
			}()
			// Let it make some progress, then pull the plug.
			for db.Log().Stats().Records < 100 {
			}
			db.Crash()
			<-done

			db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 512, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			pending, err := db2.PendingBuilds()
			if err != nil {
				t.Fatal(err)
			}
			if len(pending) == 1 {
				if _, err := Resume(db2, pending[0], Options{CheckpointPages: 4, CheckpointKeys: 300}); err != nil {
					t.Fatal(err)
				}
			} else if len(pending) != 0 {
				t.Fatalf("pending builds = %d", len(pending))
			} else {
				// The crash hit before the descriptor was durable; rebuild.
				if _, err := Build(db2, spec("by_name", method, false), Options{}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db2.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGCAfterNSFBuildWithDeletes(t *testing.T) {
	db, rids := newDB(t, 1000)
	// Delete-heavy workload while building: pseudo-deleted keys accumulate.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			k := rng.Intn(len(rids))
			db.Delete(tx, "items", rids[k]) // double deletes just error; ignore
			tx.Commit()
		}
	}()
	res, err := Build(db, spec("by_name", catalog.MethodNSF, false), Options{GCAfterBuild: true})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	t.Logf("GC collected %d, skipped %d", res.Stats.GC.Collected, res.Stats.GC.Skipped)
}

func TestBuildManySingleScan(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, _ := newDB(t, 1500)
			specs := []engine.CreateIndexSpec{
				{Name: "m_name", Table: "items", Columns: []string{"name"}, Method: method},
				{Name: "m_qty", Table: "items", Columns: []string{"qty"}, Method: method},
				{Name: "m_id", Table: "items", Columns: []string{"id"}, Method: method},
			}
			results, err := BuildMany(db, specs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 3 {
				t.Fatalf("results = %d", len(results))
			}
			for _, name := range []string{"m_name", "m_qty", "m_id"} {
				if err := db.CheckIndexConsistency(name); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

func TestCancelBuild(t *testing.T) {
	db, _ := newDB(t, 500)
	ix, err := db.CreateIndexDescriptor(spec("doomed", catalog.MethodNSF, false))
	if err != nil {
		t.Fatal(err)
	}
	_ = ix
	if err := Cancel(db, "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Catalog().Index("doomed"); ok {
		t.Fatal("cancelled index still visible")
	}
	// Table still fully usable.
	tx := db.Begin()
	if _, err := db.Insert(tx, "items", rowOf(7777, "post-cancel", 0)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}
