package core

// The staged scan pipeline shared by every build method (NSF §2, SF §3, the
// offline baseline, and BuildMany's shared scan). The paper's dominant cost
// is the data-page scan ("the I/O time to scan the data pages would be a
// significant portion of the total elapsed time", §4); the pipeline splits
// that hot path into three stages so key extraction — the CPU half of the
// scan — can fan out across goroutines without weakening any of the
// protocols the scan order carries:
//
//	stage 1  page visitor   (serial, page order)  S-latch each data page,
//	         copy its live records into a heap.PageBatch, and run the
//	         under-latch hook (SF advances Current-RID here, §3.2.2).
//	stage 2  extraction     (Options.ScanWorkers goroutines)  decode each
//	         record and encode its (key, RID) sort items, one set per feed.
//	stage 3  sorter feed    (serial, page order)  an in-order sequencer
//	         re-serializes the extractions and pushes them into each feed's
//	         replacement-selection sorter, taking watermark checkpoints.
//
// Two invariants make the parallelism safe:
//
//   - Current-RID advances monotonically in page order under the page
//     latch, because only the serial stage-1 visitor touches it. An
//     out-of-order scan would let an update to an already-extracted page
//     skip both the side-file and the scan (§3.2.2); here pages are
//     latched, copied and passed the Current-RID in strictly ascending
//     order, exactly as in the serial implementation.
//   - Scan checkpoints cover only the drained-prefix watermark: a
//     checkpoint fires after page P only once every page <= P has been fed
//     to the sorters, and it records scan position P+1 — not the visitor's
//     (possibly further ahead) prefetch position. Crash/restart therefore
//     resumes identically at any worker count. Updates to pages between
//     the watermark and the prefetch head that routed to the side-file
//     before a crash are re-extracted by the resumed scan and absorbed by
//     duplicate rejection, the same way §3.2.2's race-window pages are.

import (
	"sync"
	"sync/atomic"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/harness"
	"onlineindex/internal/heap"
	"onlineindex/internal/metrics"
	"onlineindex/internal/progress"
	"onlineindex/internal/types"
)

// scanFeed couples one index's key extraction with its sorter and stats.
// A single build has one feed; BuildMany has one per index, all fed from
// the same page visits (§6.2).
type scanFeed struct {
	ix     *catalog.Index
	sorter *extsort.PartSorter
	st     *Stats
	prog   *progress.Tracker // may be nil; fed one step per page
	met    *metrics.Registry // may be nil; receives the pipeline counters
}

// scanJob is one visited page on its way to an extraction worker.
type scanJob struct {
	seq   int
	batch heap.PageBatch
}

// pageResult is one page's extracted sort items (items[feed][record]).
type pageResult struct {
	seq   int
	items [][][]byte
	n     int // record count
	busy  time.Duration
	err   error
}

// pipelineScan runs the staged scan over pages [from..end] of h, feeding
// every feed's sorter in strict page order. advance (may be nil) runs under
// each page's S latch with the number of the next page — the SF builder
// advances Current-RID there. checkpoint (may be nil) is invoked with the
// next unscanned page number after every checkpointPages fully-fed pages,
// never after the final page; it runs on the caller's goroutine, so it may
// use the builder transaction.
func pipelineScan(h *heap.Table, from, end types.PageNum, feeds []*scanFeed,
	workers int, advance func(next types.PageNum),
	checkpointPages int, checkpoint func(next types.PageNum) error) error {
	if len(feeds) == 0 || from > end {
		return nil
	}
	if workers <= 1 {
		return serialScan(h, from, end, feeds, advance, checkpointPages, checkpoint)
	}
	return parallelScan(h, from, end, feeds, workers, advance, checkpointPages, checkpoint)
}

// extractScratch is one extraction worker's reusable key-assembly buffer.
// Sort items are handed to the sorters with ownership (Sorter.AddOwned
// retains them), so each item still needs its own exact-size allocation; the
// scratch absorbs the variable-length key assembly and its growth, taking
// extraction from ~10 heap allocations per record (row decode, per-column
// copies, key growth, item copy) down to the one retained item.
type extractScratch struct {
	key []byte
}

// extractPage builds every feed's sort items for one page batch. Pure CPU
// work over the batch's snapshot — safe off the latch and off the scan
// goroutine. sc is owned by the calling worker and reused across pages.
func extractPage(feeds []*scanFeed, batch *heap.PageBatch, sc *extractScratch) ([][][]byte, error) {
	out := make([][][]byte, len(feeds))
	for fi, f := range feeds {
		items := make([][]byte, batch.Len())
		for i := range items {
			key, err := engine.AppendIndexKeyFromRecord(sc.key[:0], f.ix, batch.Rec(i))
			if err != nil {
				return nil, err
			}
			sc.key = key[:0] // keep any growth for the next record
			item := make([]byte, len(key)+ridSuffix)
			copy(item, key)
			putRIDBytes(item[len(key):], batch.RID(i))
			items[i] = item
		}
		out[fi] = items
	}
	return out, nil
}

// feedPage pushes one page's extracted items into the sorters (stage 3) and
// updates the per-feed counters. Items are owned by the pipeline, so the
// copy inside Sorter.Add is skipped. Whole pages go in at once: the
// partitioned sorter assigns pages to partitions round-robin, and in
// concurrent mode the push is a channel hand-off rather than tournament
// work on this goroutine.
func feedPage(feeds []*scanFeed, items [][][]byte, n int) error {
	for fi, f := range feeds {
		if err := f.sorter.FeedPage(items[fi]); err != nil {
			return err
		}
		f.st.KeysExtracted += uint64(n)
		f.st.PagesScanned++
		f.prog.Step(progress.Scan, 1)
	}
	return nil
}

// mergePipelineStats folds one scan's pipeline counters into every feed and
// exports them once into the engine registry (all feeds of one scan share the
// engine, so the first feed's registry stands for the scan).
func mergePipelineStats(feeds []*scanFeed, ps harness.PipelineStats) {
	for _, f := range feeds {
		f.st.Pipeline.Merge(ps)
	}
	if len(feeds) > 0 {
		ps.Export(feeds[0].met)
	}
}

// serialScan is the workers<=1 path: visit, extract and feed alternate on
// the calling goroutine. It shares every stage helper with the parallel
// path, so the two paths cannot drift.
func serialScan(h *heap.Table, from, end types.PageNum, feeds []*scanFeed,
	advance func(next types.PageNum),
	checkpointPages int, checkpoint func(next types.PageNum) error) error {
	var busy, feedBusy time.Duration
	var sc extractScratch
	for pg := from; pg <= end; pg++ {
		batch, err := h.ReadPageBatch(pg, underLatch(advance, pg))
		if err != nil {
			return err
		}
		t0 := time.Now()
		items, err := extractPage(feeds, &batch, &sc)
		busy += time.Since(t0)
		if err != nil {
			return err
		}
		t1 := time.Now()
		err = feedPage(feeds, items, batch.Len())
		feedBusy += time.Since(t1)
		if err != nil {
			return err
		}
		if checkpointPages > 0 && int(pg-from+1)%checkpointPages == 0 && pg != end {
			if err := checkpoint(pg + 1); err != nil {
				return err
			}
		}
	}
	mergePipelineStats(feeds, harness.PipelineStats{Workers: 1, ExtractBusy: busy, FeedBusy: feedBusy})
	return nil
}

// underLatch adapts advance to VisitPage/ReadPageBatch's doneFn contract.
func underLatch(advance func(next types.PageNum), pg types.PageNum) func() error {
	if advance == nil {
		return nil
	}
	return func() error {
		advance(pg + 1)
		return nil
	}
}

// parallelScan is the workers>1 path: one visitor goroutine (stage 1), a
// worker pool (stage 2), and the calling goroutine as the in-order
// sequencer (stage 3).
func parallelScan(h *heap.Table, from, end types.PageNum, feeds []*scanFeed,
	workers int, advance func(next types.PageNum),
	checkpointPages int, checkpoint func(next types.PageNum) error) error {
	total := int(end-from) + 1
	if workers > total {
		workers = total
	}
	// Buffer sizes bound the visitor's read-ahead: at most
	// len(jobs) + workers + len(results) pages are in flight beyond the
	// watermark, so memory stays O(workers) pages. The 4x depth absorbs
	// head-of-line bursts — the sequencer consumes pages in order, so a
	// slow extraction of page k parks every later page in the channels;
	// with cap == workers the whole pool then stalls until k arrives.
	// Checkpoints still cover only the drained watermark, so the deeper
	// read-ahead changes no durable state.
	jobs := make(chan scanJob, workers*4)
	results := make(chan pageResult, workers*4)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	var fed atomic.Int64 // pages the sequencer has fully fed (watermark)
	var ps harness.PipelineStats
	ps.Workers = workers

	var wg sync.WaitGroup
	// Stage 1: the visitor. Serial and in page order — the only stage that
	// latches data pages or moves Current-RID.
	wg.Add(1)
	go func() {
		defer wg.Done()
		read := int64(0)
		for pg := from; pg <= end; pg++ {
			select {
			case <-stop:
				return
			default:
			}
			batch, err := h.ReadPageBatch(pg, underLatch(advance, pg))
			if err != nil {
				results <- pageResult{seq: int(pg - from), err: err}
				return
			}
			read++
			if read-fed.Load() > 1 {
				atomic.AddUint64(&ps.PagesPrefetched, 1)
			}
			select {
			case jobs <- scanJob{seq: int(pg - from), batch: batch}:
			case <-stop:
				return
			}
		}
	}()
	// Stage 2: extraction workers.
	workersWG := sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			var sc extractScratch
			for j := range jobs {
				t0 := time.Now()
				items, err := extractPage(feeds, &j.batch, &sc)
				r := pageResult{seq: j.seq, items: items, n: j.batch.Len(),
					busy: time.Since(t0), err: err}
				select {
				case results <- r:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()        // visitor done (or stopped)
		close(jobs)      // lets workers drain and exit
		workersWG.Wait() // all results delivered
		close(results)
	}()

	// Stage 3: the sequencer. Re-serializes extractions into page order,
	// feeds the sorters, and takes watermark checkpoints. It never blocks
	// on anything but the results channel, so the workers cannot deadlock
	// against it.
	next := 0
	pending := make(map[int]pageResult, workers*2)
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
		halt()
	}
	for {
		t0 := time.Now()
		r, ok := <-results
		ps.FeedWait += time.Since(t0)
		if !ok {
			break
		}
		if r.err != nil {
			fail(r.err)
			continue
		}
		if firstErr != nil {
			continue // draining
		}
		pending[r.seq] = r
		for {
			pr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			ps.ExtractBusy += pr.busy
			t1 := time.Now()
			err := feedPage(feeds, pr.items, pr.n)
			ps.FeedBusy += time.Since(t1)
			if err != nil {
				fail(err)
				break
			}
			next++
			fed.Store(int64(next))
			pg := from + types.PageNum(next-1)
			if checkpointPages > 0 && next%checkpointPages == 0 && pg != end {
				if err := checkpoint(pg + 1); err != nil {
					fail(err)
					break
				}
			}
		}
		if next == total {
			halt() // all pages fed; unblock any worker parked on send
		}
	}
	if firstErr != nil {
		return firstErr
	}
	mergePipelineStats(feeds, ps)
	return nil
}

// chaseScan drives scanRange over the table from page `from` until no new
// pages appear. The SF scan must cover every page that exists while
// Current-RID is still finite — a record inserted into a freshly extended
// page has Target-RID >= Current-RID, so its transaction deliberately made
// no side-file entry, counting on the scan to pick it up (§3.2.2).
// setInfinity then publishes Current-RID = ∞ ("when IB finishes processing
// the last data page, it sets Current-RID to infinity"), and one final
// sweep picks up pages allocated in the race window before infinity was
// visible; records there may be double-covered by side-file entries, which
// duplicate rejection absorbs at insert time.
func chaseScan(h *heap.Table, from types.PageNum,
	scanRange func(from, to types.PageNum) error, setInfinity func()) error {
	scanned := from
	for {
		m, err := h.PageCount()
		if err != nil {
			return err
		}
		if m <= scanned {
			break
		}
		if err := scanRange(scanned, m-1); err != nil {
			return err
		}
		scanned = m
	}
	setInfinity()
	if m, err := h.PageCount(); err != nil {
		return err
	} else if m > scanned {
		return scanRange(scanned, m-1)
	}
	return nil
}
