package core

import (
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/engine"
	"onlineindex/internal/lock"
	"onlineindex/internal/types"
)

// GC garbage-collects pseudo-deleted keys from an index, per §2.2.4:
//
//	"Scan the leaf pages. For each page, latch the page and check if there
//	are any pseudo-deleted keys. If there are, then apply the Commit_LSN
//	check. If it is successful, then garbage collect those keys; otherwise,
//	for each pseudo-deleted key, request a conditional instant share lock on
//	it. If the lock is granted, then delete the key; otherwise, skip it
//	since the key's deletion is probably uncommitted."
//
// The Commit_LSN check ([Moha90b]) lets whole pages skip per-key locking:
// a page whose PageLSN is below the first LSN of the oldest active
// transaction contains only committed changes.
func GC(db *engine.DB, indexName string) (btree.GCResult, error) {
	ix, ok := db.Catalog().Index(indexName)
	if !ok {
		return btree.GCResult{}, fmt.Errorf("core: no index %q", indexName)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return btree.GCResult{}, err
	}
	tx := db.Begin()
	commitLSN := db.Txns().CommitLSN()
	res, err := tree.GC(tx,
		func(pageLSN types.LSN) bool { return pageLSN < commitLSN },
		func(key []byte, rid types.RID) bool {
			// With data-only locking the key lock is the record lock (§6.2).
			return tx.LockConditionalInstant(lock.RecordName(rid), lock.S) == nil
		})
	if err != nil {
		tx.Rollback()
		return res, err
	}
	return res, tx.Commit()
}
