package core

import (
	"testing"

	"onlineindex/internal/catalog"
)

func BenchmarkLoadPhaseOnly(b *testing.B) {
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db, _ := newDB(b, 20000)
				b.StartTimer()
				res, err := Build(db, spec("bench", method, false), Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.Insert.Seconds()*1000, "insert-ms")
				b.ReportMetric(res.Stats.ScanSort.Seconds()*1000, "scan-ms")
			}
		})
	}
}
