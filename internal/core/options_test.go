package core

import (
	"errors"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
)

func TestOptionsValidate(t *testing.T) {
	valid := []Options{
		{}, // all defaults
		{SortMemory: 2},
		{FillFactor: 1},
		{FillFactor: 0.5},
		{CheckpointPages: 10, CheckpointKeys: 100},
		{BatchSize: 1},
		{ScanWorkers: 8},
	}
	for _, o := range valid {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
	invalid := []Options{
		{SortMemory: -1},
		{SortMemory: 1}, // a tournament needs two keys
		{FillFactor: -0.1},
		{FillFactor: 1.5},
		{CheckpointPages: -1},
		{CheckpointKeys: -2},
		{BatchSize: -64},
		{ScanWorkers: -4},
	}
	for _, o := range invalid {
		err := o.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", o)
			continue
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Validate(%+v) = %v, not an ErrInvalidOptions", o, err)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SortMemory != 4096 || o.FillFactor != 0.9 || o.BatchSize != 64 || o.ScanWorkers != 1 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestBuildRejectsInvalidOptions(t *testing.T) {
	db, _ := newDB(t, 10)
	bad := Options{ScanWorkers: -1}
	if _, err := Build(db, spec("bad_idx", catalog.MethodNSF, false), bad); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Build err = %v, want ErrInvalidOptions", err)
	}
	// Validation fails before the descriptor exists: nothing to clean up.
	if _, ok := db.Catalog().Index("bad_idx"); ok {
		t.Fatal("invalid build left an index descriptor behind")
	}
	specs := []engine.CreateIndexSpec{spec("bad_idx", catalog.MethodSF, false)}
	if _, err := BuildMany(db, specs, Options{FillFactor: 2}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("BuildMany err = %v, want ErrInvalidOptions", err)
	}
	if _, err := Resume(db, engine.PendingBuild{}, Options{CheckpointPages: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("Resume err = %v, want ErrInvalidOptions", err)
	}
}
