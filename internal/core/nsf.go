package core

import (
	"fmt"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/progress"
)

// buildNSF runs the No Side-File algorithm (§2):
//
//  1. Create the index descriptor under a short table-S-lock quiesce; from
//     then on transactions maintain the new index directly.
//  2. Scan the data pages (share latches only), extracting and sorting the
//     keys in a pipelined, restartable sort.
//  3. Merge the runs and insert the keys through the multi-key interface
//     with the remembered-path cursor, checkpointing the highest inserted
//     key periodically. Duplicates lost to transaction races are rejected
//     without logging; unique conflicts run the both-records-locked
//     verification.
//  4. Make the index available for reads.
//  5. Optionally garbage-collect pseudo-deleted keys.
func (b *builder) buildNSF(spec engine.CreateIndexSpec) (*Result, error) {
	tbl, ok := b.db.Catalog().Table(spec.Table)
	if !ok {
		return nil, fmt.Errorf("core: no table %q", spec.Table)
	}
	b.tbl = tbl

	// Step 1: descriptor under the short quiesce (inside the engine call).
	qStart := time.Now()
	ix, err := b.db.CreateIndexDescriptor(spec)
	if err != nil {
		return nil, err
	}
	b.ix = ix
	b.st.QuiesceWait = time.Since(qStart)
	b.tx = b.db.Begin()
	b.startProgress()

	// Step 2: note the scan end before starting ("the last page to be
	// processed by the data page scan can be noted before starting IB's
	// data scan... transactions would insert directly into the index the
	// keys of records belonging to those new pages").
	h, err := b.db.HeapOf(tbl.ID)
	if err != nil {
		return nil, err
	}
	nPages, err := h.PageCount()
	if err != nil {
		return nil, err
	}
	sorter := b.newSorter()
	defer sorter.Close()
	b.prog.SetTotal(progress.Scan, uint64(nPages))
	if nPages > 0 {
		if err := b.extractAndSort(sorter, 0, nPages-1, engine.IBPhaseScan); err != nil {
			return nil, b.cancel(err)
		}
	}
	b.prog.FinishPhase(progress.Scan)
	runs, err := sorter.Finish()
	if err != nil {
		return nil, b.cancel(err)
	}
	b.st.Runs = len(runs)

	// Step 3: merge + insert (steps 4-5 shared with the resume path).
	merger, err := extsort.NewMergerWith(b.db.FS(), runs, nil, b.mergeOpts())
	if err != nil {
		return nil, b.cancel(err)
	}
	defer merger.Close()
	b.noteMerge(runs, nil)
	if err := b.nsfInsertPhase(merger, runs); err != nil {
		return nil, err // cancel already handled inside
	}
	return b.completeNSF()
}

// nsfInsertPhase streams the merged keys into the tree in multi-key batches.
func (b *builder) nsfInsertPhase(merger *extsort.Merger, runs []extsort.RunMeta) error {
	tree, err := b.db.TreeOf(b.ix.ID)
	if err != nil {
		return b.cancel(err)
	}
	start := time.Now()
	cursor := &btree.IBCursor{}
	var batch []btree.Entry
	var sinceCkpt int
	var lastItem []byte
	// merged counts every key consumed from the merge (absolute, so it lines
	// up with the counter vector a resumed merger starts from).
	var merged uint64
	for _, c := range merger.Counters() {
		merged += c
	}

	flush := func() error {
		for len(batch) > 0 {
			res, conflict, at, err := tree.IBInsertBatch(b.tx, batch, cursor)
			b.st.KeysInserted += uint64(res.Inserted)
			b.st.KeysSkipped += uint64(res.Skipped)
			if err != nil {
				return err
			}
			if conflict == nil {
				batch = batch[:0]
				return nil
			}
			e := batch[at]
			action, err := b.verifyIBConflict(tree, e.Key, e.RID, conflict.OtherRID, conflict.Pseudo)
			if err != nil {
				return err
			}
			switch action {
			case conflictFatal:
				return &engine.UniqueViolationError{Index: b.ix.Name, Key: e.Key, Existing: conflict.OtherRID}
			case conflictSkipKey:
				batch = batch[at+1:]
				b.st.KeysSkipped++
			case conflictReplace:
				if err := tree.ReplaceRID(b.tx, e.Key, conflict.OtherRID, e.RID); err != nil {
					if _, isConflict := err.(*btree.UniqueConflict); isConflict {
						batch = batch[at:] // retry the whole entry
						continue
					}
					return err
				}
				b.st.KeysInserted++
				batch = batch[at+1:]
			case conflictRetry:
				batch = batch[at:]
			}
		}
		return nil
	}

	for {
		item, _, ok, err := merger.Next()
		if err != nil {
			return b.cancel(err)
		}
		if !ok {
			break
		}
		key, rid, err := decodeItem(item)
		if err != nil {
			return b.cancel(err)
		}
		batch = append(batch, btree.Entry{Key: append([]byte(nil), key...), RID: rid})
		lastItem = item
		merged++
		if len(batch) >= b.opts.BatchSize {
			if err := flush(); err != nil {
				return b.cancel(err)
			}
			b.prog.Advance(progress.Load, merged)
		}
		sinceCkpt++
		if b.opts.CheckpointKeys > 0 && sinceCkpt >= b.opts.CheckpointKeys {
			if err := flush(); err != nil {
				return b.cancel(err)
			}
			b.prog.Advance(progress.Load, merged)
			ms := merger.State()
			st := engine.IBState{
				Index: b.ix.ID, Phase: engine.IBPhaseInsert,
				MergeState: ms.Encode(), HighKey: append([]byte(nil), lastItem...),
			}
			if err := b.rotate(st); err != nil {
				return b.cancel(err)
			}
			sinceCkpt = 0
		}
	}
	if err := flush(); err != nil {
		return b.cancel(err)
	}
	b.prog.Advance(progress.Load, merged)
	b.prog.FinishPhase(progress.Load)
	b.st.Insert += time.Since(start)
	_ = runs
	return nil
}

// resumeNSF continues an interrupted NSF build from its last checkpoint.
func (b *builder) resumeNSF(state *engine.IBState) (*Result, error) {
	b.tx = b.db.Begin()
	b.startProgress()
	b.seedProgress(state)
	switch {
	case state == nil:
		// Crashed before the first checkpoint: everything before the
		// descriptor is durable; redo the scan from the beginning.
		h, err := b.db.HeapOf(b.tbl.ID)
		if err != nil {
			return nil, err
		}
		n, err := h.PageCount()
		if err != nil {
			return nil, err
		}
		sorter := b.newSorter()
		defer sorter.Close()
		b.prog.SetTotal(progress.Scan, uint64(n))
		if n > 0 {
			if err := b.extractAndSort(sorter, 0, n-1, engine.IBPhaseScan); err != nil {
				return nil, b.cancel(err)
			}
		}
		return b.finishNSFFromSorter(sorter)

	case state.Phase == engine.IBPhaseScan:
		sorter, scanPos, err := b.resumeSorter(state.SortState)
		if err != nil {
			return nil, err
		}
		defer sorter.Close()
		next, end, err := parseScanPosition(scanPos)
		if err != nil {
			return nil, err
		}
		if next <= end {
			if err := b.extractAndSort(sorter, next, end, engine.IBPhaseScan); err != nil {
				return nil, b.cancel(err)
			}
		}
		return b.finishNSFFromSorter(sorter)

	case state.Phase == engine.IBPhaseInsert:
		ms, err := extsort.DecodeMergeState(state.MergeState)
		if err != nil {
			return nil, err
		}
		merger, err := extsort.ResumeMergerWith(b.db.FS(), ms, b.mergeOpts())
		if err != nil {
			return nil, err
		}
		defer merger.Close()
		b.st.Runs = len(ms.Runs)
		b.noteMerge(ms.Runs, ms.Counters)
		if err := b.nsfInsertPhase(merger, ms.Runs); err != nil {
			return nil, err
		}
		return b.completeNSF()

	default:
		return nil, fmt.Errorf("core: NSF build of %q in unexpected phase %v", b.ix.Name, state.Phase)
	}
}

func (b *builder) finishNSFFromSorter(sorter *extsort.PartSorter) (*Result, error) {
	b.prog.FinishPhase(progress.Scan)
	runs, err := sorter.Finish()
	if err != nil {
		return nil, b.cancel(err)
	}
	b.st.Runs = len(runs)
	merger, err := extsort.NewMergerWith(b.db.FS(), runs, nil, b.mergeOpts())
	if err != nil {
		return nil, b.cancel(err)
	}
	defer merger.Close()
	b.noteMerge(runs, nil)
	if err := b.nsfInsertPhase(merger, runs); err != nil {
		return nil, err
	}
	return b.completeNSF()
}

func (b *builder) completeNSF() (*Result, error) {
	if err := b.db.SetIndexComplete(b.tx, b.ix.ID); err != nil {
		return nil, b.cancel(err)
	}
	if err := b.tx.Commit(); err != nil {
		return nil, err
	}
	b.db.DropIBCheckpoint(b.ix.ID)
	if b.opts.GCAfterBuild {
		res, err := GC(b.db, b.ix.Name)
		if err != nil {
			return nil, err
		}
		b.st.GC.Collected = res.Collected
		b.st.GC.Skipped = res.Skipped
		b.prog.FinishPhase(progress.GC)
	}
	b.prog.Complete()
	done, _ := b.db.Catalog().Index(b.ix.Name)
	return &Result{Index: done, Stats: b.st}, nil
}
