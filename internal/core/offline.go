package core

import (
	"fmt"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// buildOffline is the baseline the paper's introduction argues against:
// "current DBMSs do not allow updates to a table while building an index on
// it." The whole build runs under a table share lock, so update transactions
// block from start to finish. It is otherwise the ideal case — exclusive
// bottom-up build with perfect clustering — which is exactly what the
// availability experiments compare the online algorithms' overheads against.
//
// Offline builds are not restartable: a crash cancels them (recovery drops
// the descriptor), since the restartability machinery is precisely what the
// online algorithms add.
func (b *builder) buildOffline(spec engine.CreateIndexSpec) (*Result, error) {
	tbl, ok := b.db.Catalog().Table(spec.Table)
	if !ok {
		return nil, fmt.Errorf("core: no table %q", spec.Table)
	}
	b.tbl = tbl

	// Quiesce for the entire build.
	qStart := time.Now()
	quiesce, err := b.db.QuiesceTable(tbl.ID)
	if err != nil {
		return nil, err
	}
	b.st.QuiesceWait = time.Since(qStart)
	defer func() {
		if quiesce.State() == txn.StateActive {
			quiesce.Commit()
		}
	}()

	ix, err := b.db.CreateIndexDescriptor(spec)
	if err != nil {
		return nil, err
	}
	b.ix = ix
	b.tx = b.db.Begin()

	h, err := b.db.HeapOf(tbl.ID)
	if err != nil {
		return nil, err
	}
	nPages, err := h.PageCount()
	if err != nil {
		return nil, err
	}
	sorter := b.newSorter()
	defer sorter.Close()
	if nPages > 0 {
		if err := b.extractAndSort(sorter, 0, nPages-1, engine.IBPhaseScan); err != nil {
			return nil, b.cancel(err)
		}
	}
	runs, err := sorter.Finish()
	if err != nil {
		return nil, b.cancel(err)
	}
	b.st.Runs = len(runs)
	for _, r := range runs {
		b.st.BytesSpilled += uint64(r.Bytes)
	}

	tree, err := b.db.TreeOf(ix.ID)
	if err != nil {
		return nil, b.cancel(err)
	}
	start := time.Now()
	merger, err := extsort.NewMergerWith(b.db.FS(), runs, nil, b.mergeOpts())
	if err != nil {
		return nil, b.cancel(err)
	}
	defer merger.Close()
	loader := tree.NewLoaderWith(b.opts.FillFactor, b.runCompress)
	// With the table quiesced there is nothing to verify on a unique
	// conflict: adjacent identical keys in the sorted stream are a genuine
	// violation.
	var uniquePrev []byte
	checkUnique := func(key []byte, rid types.RID) error {
		if uniquePrev != nil && string(uniquePrev) == string(key) {
			return &engine.UniqueViolationError{Index: ix.Name, Key: key, Existing: rid}
		}
		uniquePrev = append(uniquePrev[:0], key...)
		return nil
	}
	if b.opts.MergeOverlap {
		// §2.2.2 pipelining; batches preserve adjacency, so the unique
		// check runs unchanged on the consumer side (across batch
		// boundaries via uniquePrev).
		err := overlapMerge(merger, 0, !b.opts.SerialFinish, func(bt loadBatch) error {
			if ix.Unique {
				for _, e := range bt.entries {
					if err := checkUnique(e.Key, e.RID); err != nil {
						return err
					}
				}
			}
			if err := loader.AddBatch(bt.entries); err != nil {
				return err
			}
			b.st.KeysInserted += uint64(len(bt.entries))
			return nil
		})
		if err != nil {
			return nil, b.cancel(err)
		}
	} else {
		for {
			item, _, ok, err := merger.Next()
			if err != nil {
				return nil, b.cancel(err)
			}
			if !ok {
				break
			}
			key, rid, err := decodeItem(item)
			if err != nil {
				return nil, b.cancel(err)
			}
			if ix.Unique {
				if err := checkUnique(key, rid); err != nil {
					return nil, b.cancel(err)
				}
			}
			if err := loader.Add(btree.Entry{Key: key, RID: rid}); err != nil {
				return nil, b.cancel(err)
			}
			b.st.KeysInserted++
		}
	}
	if err := loader.Finish(); err != nil {
		return nil, b.cancel(err)
	}
	if err := b.db.Pool().FlushFile(ix.FileID); err != nil {
		return nil, b.cancel(err)
	}
	b.st.Insert += time.Since(start)

	if err := b.db.SetIndexComplete(b.tx, ix.ID); err != nil {
		return nil, b.cancel(err)
	}
	if err := b.tx.Commit(); err != nil {
		return nil, err
	}
	if err := quiesce.Commit(); err != nil {
		return nil, err
	}
	done, _ := b.db.Catalog().Index(ix.Name)
	return &Result{Index: done, Stats: b.st}, nil
}
