package core

import (
	"bytes"
	"fmt"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/types"
)

// indexEntries dumps a complete index's live (key, RID) entries in key
// order as one byte string, so two builds can be compared byte for byte.
func indexEntries(t testing.TB, db *engine.DB, name string) []byte {
	t.Helper()
	var out []byte
	err := db.IndexScan(nil, name, nil, nil, func(key []byte, rid types.RID) bool {
		out = append(out, key...)
		var tail [ridSuffix]byte
		putRIDBytes(tail[:], rid)
		out = append(out, tail[:]...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelScanMatchesSerial builds the same index on identically
// populated tables with ScanWorkers 1 and 4 and requires byte-identical
// entry streams (and, for the bottom-up methods, the same page count): the
// pipeline's in-order sorter feed must make worker count unobservable.
func TestParallelScanMatchesSerial(t *testing.T) {
	const rows = 5000
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			var ref []byte
			var refPages int
			for _, workers := range []int{1, 4} {
				db, _ := newDB(t, rows)
				res, err := Build(db, spec("by_name", method, false), Options{ScanWorkers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.KeysExtracted != rows {
					t.Fatalf("workers=%d: extracted %d keys, want %d", workers, res.Stats.KeysExtracted, rows)
				}
				if err := db.CheckIndexConsistency("by_name"); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := indexEntries(t, db, "by_name")
				tree, err := db.TreeOf(res.Index.ID)
				if err != nil {
					t.Fatal(err)
				}
				pages, err := tree.PageCount()
				if err != nil {
					t.Fatal(err)
				}
				if workers == 1 {
					ref, refPages = got, int(pages)
					continue
				}
				if !bytes.Equal(got, ref) {
					t.Fatalf("workers=%d: entry stream differs from serial build (%d vs %d bytes)", workers, len(got), len(ref))
				}
				if int(pages) != refPages {
					t.Fatalf("workers=%d: index has %d pages, serial build had %d", workers, pages, refPages)
				}
			}
		})
	}
}

// TestParallelScanUnderWorkload runs the online methods with a concurrent
// update workload at ScanWorkers=4: the SF Current-RID invariant and the
// NSF race rules must hold with extraction fanned out.
func TestParallelScanUnderWorkload(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, rids := newDB(t, 3000)
			stop := make(chan struct{})
			wg := runWorkload(t, db, rids, 3, stop)
			res, err := Build(db, spec("by_name", method, false),
				Options{ScanWorkers: 4, CheckpointPages: 4, CheckpointKeys: 500})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if res.Index.State != catalog.StateComplete {
				t.Fatalf("state = %v", res.Index.State)
			}
			if err := db.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBuildManyParallelScan drives the multi-index shared scan through the
// pipeline with several workers.
func TestBuildManyParallelScan(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, rids := newDB(t, 3000)
			stop := make(chan struct{})
			wg := runWorkload(t, db, rids, 2, stop)
			specs := []engine.CreateIndexSpec{
				{Name: "m_name", Table: "items", Columns: []string{"name"}, Method: method},
				{Name: "m_qty", Table: "items", Columns: []string{"qty"}, Method: method},
			}
			results, err := BuildMany(db, specs, Options{ScanWorkers: 4})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("results = %d", len(results))
			}
			for _, name := range []string{"m_name", "m_qty"} {
				if err := db.CheckIndexConsistency(name); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		})
	}
}

// TestPipelineStatsPopulated checks the new stage counters are wired: a
// parallel scan must report its worker count and extraction busy time.
func TestPipelineStatsPopulated(t *testing.T) {
	db, _ := newDB(t, 4000)
	res, err := Build(db, spec("by_name", catalog.MethodSF, false), Options{ScanWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Stats.Pipeline
	if p.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", p.Workers)
	}
	if p.ExtractBusy <= 0 {
		t.Fatalf("ExtractBusy = %v, want > 0", p.ExtractBusy)
	}
	fmt.Printf("pipeline stats: %+v\n", p)
}
