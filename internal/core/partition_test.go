package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// TestPartitionedBuildMatchesSerial builds each method with the full new
// back half enabled — 4 sort partitions, merge→load overlap, parallel scan —
// and requires a byte-identical entry stream (and page count) to the plain
// serial build. The tentpole's compatibility rule, observed end to end.
func TestPartitionedBuildMatchesSerial(t *testing.T) {
	const rows = 5000
	for _, method := range []catalog.BuildMethod{catalog.MethodOffline, catalog.MethodNSF, catalog.MethodSF} {
		for _, unique := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/unique=%v", method, unique), func(t *testing.T) {
				var ref []byte
				var refPages int
				for _, par := range []bool{false, true} {
					db, _ := newDB(t, rows)
					opts := Options{}
					if par {
						opts = Options{ScanWorkers: 4, SortPartitions: 4, MergeOverlap: true, SortMemory: 256}
					}
					res, err := Build(db, spec("by_name", method, unique), opts)
					if err != nil {
						t.Fatal(err)
					}
					if res.Stats.KeysExtracted != rows {
						t.Fatalf("par=%v: extracted %d keys, want %d", par, res.Stats.KeysExtracted, rows)
					}
					if err := db.CheckIndexConsistency("by_name"); err != nil {
						t.Fatalf("par=%v: %v", par, err)
					}
					got := indexEntries(t, db, "by_name")
					tree, err := db.TreeOf(res.Index.ID)
					if err != nil {
						t.Fatal(err)
					}
					pages, err := tree.PageCount()
					if err != nil {
						t.Fatal(err)
					}
					if !par {
						ref, refPages = got, int(pages)
						continue
					}
					if !bytes.Equal(got, ref) {
						t.Fatalf("partitioned entry stream differs from serial build (%d vs %d bytes)", len(got), len(ref))
					}
					if int(pages) != refPages {
						t.Fatalf("partitioned index has %d pages, serial build had %d", pages, refPages)
					}
				}
			})
		}
	}
}

// TestPartitionedBuildUnderWorkload runs the online methods against a
// concurrent update workload with partitions and overlap on: the capture
// invariants must hold regardless of how the back half is parallelised.
func TestPartitionedBuildUnderWorkload(t *testing.T) {
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			db, rids := newDB(t, 3000)
			stop := make(chan struct{})
			wg := runWorkload(t, db, rids, 3, stop)
			res, err := Build(db, spec("by_name", method, false),
				Options{ScanWorkers: 4, SortPartitions: 4, MergeOverlap: true,
					CheckpointPages: 4, CheckpointKeys: 500})
			close(stop)
			wg.Wait()
			if err != nil {
				t.Fatal(err)
			}
			if res.Index.State != catalog.StateComplete {
				t.Fatalf("state = %v", res.Index.State)
			}
			if err := db.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashMidScanPartitionedResume crashes a SortPartitions=4 build
// mid-scan and resumes it. The vector checkpoint (one SortState per
// partition at a single scan watermark) must restore every partition, and
// the finished index must be byte-identical to an uninterrupted serial
// build — partition count, crash point, and worker count all unobservable.
func TestCrashMidScanPartitionedResume(t *testing.T) {
	const rows = 20_000
	for _, method := range []catalog.BuildMethod{catalog.MethodNSF, catalog.MethodSF} {
		t.Run(method.String(), func(t *testing.T) {
			refDB, _ := newDB(t, rows)
			if _, err := Build(refDB, spec("by_name", method, false), Options{}); err != nil {
				t.Fatal(err)
			}
			ref := indexEntries(t, refDB, "by_name")

			fs := vfs.NewMemFS()
			db, err := engine.Open(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			db.CreateTable("items", schema())
			for i := 0; i < rows; i++ {
				tx := db.Begin()
				if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), int64(i%97))); err != nil {
					t.Fatal(err)
				}
				tx.Commit()
			}
			opts := Options{ScanWorkers: 4, SortPartitions: 4, MergeOverlap: true,
				SortMemory: 256, CheckpointPages: 2, CheckpointKeys: 100_000}
			done := make(chan struct{})
			go func() {
				defer close(done)
				defer func() { recover() }()
				Build(db, spec("by_name", method, false), opts) //nolint:errcheck
			}()
			var ixID types.IndexID
			deadline := time.Now().Add(20 * time.Second)
			hit := false
			for time.Now().Before(deadline) {
				if ixID == 0 {
					if ix, ok := db.Catalog().Index("by_name"); ok {
						ixID = ix.ID
					}
				}
				if ixID != 0 {
					if ix, ok := db.Catalog().Index("by_name"); ok && ix.State == catalog.StateComplete {
						break
					}
					if st := db.LastIBState(ixID); st != nil && st.Phase == engine.IBPhaseScan {
						hit = true
						break
					}
				}
				time.Sleep(100 * time.Microsecond)
			}
			db.Crash()
			<-done
			if !hit {
				t.Skip("build completed before a scan checkpoint was observed")
			}

			db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
			if err != nil {
				t.Fatal(err)
			}
			pending, err := db2.PendingBuilds()
			if err != nil {
				t.Fatal(err)
			}
			if len(pending) != 1 {
				t.Fatalf("pending = %d, want 1", len(pending))
			}
			if pending[0].State == nil || pending[0].State.Phase != engine.IBPhaseScan {
				t.Fatalf("recovered state = %+v, want mid-scan", pending[0].State)
			}
			if _, err := Resume(db2, pending[0], opts); err != nil {
				t.Fatal(err)
			}
			if err := db2.CheckIndexConsistency("by_name"); err != nil {
				t.Fatal(err)
			}
			got := indexEntries(t, db2, "by_name")
			if !bytes.Equal(got, ref) {
				t.Fatalf("resumed partitioned index differs from uninterrupted serial build (%d vs %d bytes)", len(got), len(ref))
			}
		})
	}
}

// TestCrashAtLoadPhaseOverlapResumeSF lands a crash on a checkpoint taken
// at an overlapped-batch hand-off point and resumes. The (merge counters,
// loader state) pair recorded there must be mutually consistent even though
// producer and consumer ran concurrently.
func TestCrashAtLoadPhaseOverlapResumeSF(t *testing.T) {
	ok := crashAtPhase(t, catalog.MethodSF, engine.IBPhaseLoad, 50_000,
		Options{CheckpointKeys: 500, SortPartitions: 4, MergeOverlap: true, SortMemory: 512})
	if !ok {
		t.Skip("build completed before a load checkpoint was observed")
	}
}

// TestResumePartitionCountFromState resumes a build whose durable checkpoint
// recorded 4 partitions using options that say 1 (and vice versa): the
// durable vector, not the current option, dictates the resumed shape.
func TestResumePartitionCountFromState(t *testing.T) {
	const rows = 20_000
	refDB, _ := newDB(t, rows)
	if _, err := Build(refDB, spec("by_name", catalog.MethodSF, false), Options{}); err != nil {
		t.Fatal(err)
	}
	ref := indexEntries(t, refDB, "by_name")

	fs := vfs.NewMemFS()
	db, err := engine.Open(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("items", schema())
	for i := 0; i < rows; i++ {
		tx := db.Begin()
		if _, err := db.Insert(tx, "items", rowOf(int64(i), nameOf(i), 0)); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	opts := Options{SortPartitions: 4, SortMemory: 256, CheckpointPages: 2, CheckpointKeys: 100_000}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		Build(db, spec("by_name", catalog.MethodSF, false), opts) //nolint:errcheck
	}()
	var ixID types.IndexID
	deadline := time.Now().Add(20 * time.Second)
	hit := false
	for time.Now().Before(deadline) {
		if ixID == 0 {
			if ix, ok := db.Catalog().Index("by_name"); ok {
				ixID = ix.ID
			}
		}
		if ixID != 0 {
			if ix, ok := db.Catalog().Index("by_name"); ok && ix.State == catalog.StateComplete {
				break
			}
			if st := db.LastIBState(ixID); st != nil && st.Phase == engine.IBPhaseScan {
				hit = true
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	db.Crash()
	<-done
	if !hit {
		t.Skip("build completed before a scan checkpoint was observed")
	}

	db2, err := engine.Recover(engine.Config{FS: fs, PoolSize: 1024, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	pending, err := db2.PendingBuilds()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("pending = %d, want 1", len(pending))
	}
	// Resume with SortPartitions unset: the durable state still says 4.
	if _, err := Resume(db2, pending[0], Options{CheckpointPages: 2, CheckpointKeys: 100_000}); err != nil {
		t.Fatal(err)
	}
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	got := indexEntries(t, db2, "by_name")
	if !bytes.Equal(got, ref) {
		t.Fatalf("index resumed with mismatched partition option differs from serial build")
	}
}
