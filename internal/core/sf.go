package core

import (
	"fmt"
	"sort"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/engine"
	"onlineindex/internal/extsort"
	"onlineindex/internal/lock"
	"onlineindex/internal/progress"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/types"
)

// buildSF runs the Side-File algorithm (§3):
//
//  1. Create the descriptor and the side-file with no quiescing; register
//     the build control (Index_Build flag + Current-RID) first so the
//     descriptor and the protocol state appear together.
//  2. Scan the data pages, advancing Current-RID past each page under its
//     latch; extract and sort (restartable). Transactions route changes
//     behind the scan position to the side-file.
//  3. At scan end set Current-RID to infinity, then merge the runs into the
//     bottom-up loader — no logging, no traversals, sequential page
//     allocation (checkpointed via the loader state).
//  4. Flush the loaded tree, then process the side-file from the beginning,
//     logging undo-redo records like a normal transaction and checkpointing
//     the position.
//  5. When the side-file is drained, freeze appends, drain stragglers, mark
//     the index complete and flip transactions to direct maintenance.
func (b *builder) buildSF(spec engine.CreateIndexSpec) (*Result, error) {
	tbl, ok := b.db.Catalog().Table(spec.Table)
	if !ok {
		return nil, fmt.Errorf("core: no table %q", spec.Table)
	}
	b.tbl = tbl

	// Step 1: descriptor without quiesce; ctl registered before visibility.
	ix, err := b.db.CreateIndexDescriptorWithCtl(spec, func(ix catalog.Index) *engine.BuildCtl {
		b.ctl = engine.NewBuildCtl(ix.ID, catalog.MethodSF, engine.PhaseCapture)
		// Current-RID starts at the first record of the table file: nothing
		// is behind the scan yet, so no transaction appends to the
		// side-file until the scan begins to pass them.
		b.ctl.SetCurrentRID(types.RID{PageID: types.PageID{File: tbl.FileID}})
		return b.ctl
	})
	if err != nil {
		return nil, err
	}
	b.ix = ix
	b.tx = b.db.Begin()
	b.startProgress()

	// Step 2: scan + sort.
	sorter := b.newSorter()
	defer sorter.Close()
	if err := b.sfScan(sorter, 0); err != nil {
		return nil, b.cancel(err)
	}

	runs, err := sorter.Finish()
	if err != nil {
		return nil, b.cancel(err)
	}
	b.st.Runs = len(runs)

	// Step 3: bottom-up load.
	if err := b.sfLoadPhase(runs, nil, nil); err != nil {
		return nil, err
	}

	// Steps 4-5: side-file processing and the switch.
	return b.sfSideFilePhase(0)
}

// sfScan runs the SF data scan from page `from`, chasing the file's actual
// end before setting Current-RID to infinity.
//
// Unlike NSF — where "the last page to be processed by the data page scan
// can be noted before starting" because transactions maintain the index
// directly for records in newer pages (§2.3.1) — the SF scan must cover
// every page that exists while Current-RID is still finite; chaseScan
// (pipeline.go) implements the loop and the post-infinity race-window
// sweep for every SF scan, single- or multi-index.
func (b *builder) sfScan(sorter *extsort.PartSorter, from types.PageNum) error {
	h, err := b.db.HeapOf(b.tbl.ID)
	if err != nil {
		return err
	}
	return chaseScan(h, from, func(lo, hi types.PageNum) error {
		// The chase discovers appended pages round by round: the scan total
		// grows with each round and the tracker clamps the reported fraction.
		b.prog.SetTotal(progress.Scan, uint64(hi)+1)
		return b.extractAndSort(sorter, lo, hi, engine.IBPhaseScan)
	}, func() {
		// "When IB finishes processing the last data page, it sets
		// Current-RID to infinity" — from here on, file extensions go to
		// the side-file.
		b.ctl.SetCurrentRID(types.MaxRID)
	})
}

// sfLoadPhase merges the runs into the bottom-up loader, optionally resuming
// from checkpointed merge/loader state.
func (b *builder) sfLoadPhase(runs []extsort.RunMeta, mergeState *extsort.MergeState, loadState *btree.LoaderState) error {
	tree, err := b.db.TreeOf(b.ix.ID)
	if err != nil {
		return b.cancel(err)
	}
	start := time.Now()

	var merger *extsort.Merger
	var loader *btree.Loader
	if mergeState != nil {
		merger, err = extsort.ResumeMergerWith(b.db.FS(), *mergeState, b.mergeOpts())
		if err != nil {
			return b.cancel(err)
		}
		loader, err = tree.RestartLoaderWith(*loadState, b.opts.FillFactor, b.runCompress)
		if err != nil {
			return b.cancel(err)
		}
		b.noteMerge(mergeState.Runs, mergeState.Counters)
	} else {
		merger, err = extsort.NewMergerWith(b.db.FS(), runs, nil, b.mergeOpts())
		if err != nil {
			return b.cancel(err)
		}
		loader = tree.NewLoaderWith(b.opts.FillFactor, b.runCompress)
		b.noteMerge(runs, nil)
	}
	defer merger.Close()
	// merged counts keys consumed from the merge (absolute, aligned with the
	// counter vector a resumed merger starts from).
	var merged uint64
	for _, c := range merger.Counters() {
		merged += c
	}

	if b.opts.MergeOverlap && !b.ix.Unique {
		// §2.2.2 pipelining: the merge runs concurrently with leaf
		// construction (overlap.go), checkpointing only at batch hand-offs.
		merged, err = b.sfLoadOverlapped(merger, loader, merged)
		if err != nil {
			return b.cancel(err)
		}
		return b.sfLoadTail(loader, merged, start)
	}

	// For a unique index, the sorted stream makes duplicate key values
	// adjacent; hold one entry back so a duplicate pair can be verified
	// with the §2.2.3 both-records-locked protocol before anything reaches
	// the loader. pendMergeState remembers the merge position from before
	// the held-back entry was consumed, so checkpoints never lose it.
	var pend *btree.Entry
	var pendMergeState extsort.MergeState
	verifyDup := func(next btree.Entry) error {
		// Lock both records S and re-extract their keys.
		if err := b.tx.Lock(lock.RecordName(pend.RID), lock.S); err != nil {
			return err
		}
		if err := b.tx.Lock(lock.RecordName(next.RID), lock.S); err != nil {
			return err
		}
		okPend, err := b.recordHasKey(pend.RID, pend.Key)
		if err != nil {
			return err
		}
		okNext, err := b.recordHasKey(next.RID, next.Key)
		if err != nil {
			return err
		}
		switch {
		case okPend && okNext:
			return &engine.UniqueViolationError{Index: b.ix.Name, Key: next.Key, Existing: pend.RID}
		case okPend:
			// next's record changed since extraction: drop next, keep pend.
		case okNext:
			*pend = next // pend's record changed: replace
		default:
			pend = nil // both gone
		}
		return nil
	}

	sinceCkpt := 0
	for {
		var preState extsort.MergeState
		if b.ix.Unique {
			// Snapshot the merge position before consuming the item that
			// may become the held-back entry (checkpoint repositioning).
			preState = merger.State()
		}
		item, _, ok, err := merger.Next()
		if err != nil {
			return b.cancel(err)
		}
		if !ok {
			break
		}
		key, rid, err := decodeItem(item)
		if err != nil {
			return b.cancel(err)
		}
		merged++
		if merged%64 == 0 {
			b.prog.Advance(progress.Load, merged)
		}
		e := btree.Entry{Key: append([]byte(nil), key...), RID: rid}
		if b.ix.Unique {
			switch {
			case pend == nil:
				pend = &e
				pendMergeState = preState
			case string(pend.Key) == string(e.Key):
				if err := verifyDup(e); err != nil {
					return b.cancel(err)
				}
				if pend == nil {
					continue
				}
			default:
				if err := loader.Add(*pend); err != nil {
					return b.cancel(err)
				}
				b.st.KeysInserted++
				pend = &e
				pendMergeState = preState
			}
		} else {
			if err := loader.Add(e); err != nil {
				return b.cancel(err)
			}
			b.st.KeysInserted++
		}
		sinceCkpt++
		if b.opts.CheckpointKeys > 0 && sinceCkpt >= b.opts.CheckpointKeys {
			ls, err := loader.Checkpoint() // flushes the index file first
			if err != nil {
				return b.cancel(err)
			}
			ms := merger.State()
			if pend != nil {
				ms = pendMergeState // resume re-reads the held-back entry
			}
			// Durable progress is what the checkpoint records: the (possibly
			// repositioned) counter vector, not the in-memory consumption.
			ckptDone, _ := mergeProgress(&ms)
			b.prog.Advance(progress.Load, ckptDone)
			st := engine.IBState{
				Index: b.ix.ID, Phase: engine.IBPhaseLoad,
				CurrentRID: types.MaxRID,
				MergeState: ms.Encode(), LoadState: ls.Encode(),
			}
			if err := b.rotate(st); err != nil {
				return b.cancel(err)
			}
			sinceCkpt = 0
		}
	}
	if pend != nil {
		if err := loader.Add(*pend); err != nil {
			return b.cancel(err)
		}
		b.st.KeysInserted++
	}
	return b.sfLoadTail(loader, merged, start)
}

// sfLoadTail completes the load phase: finish the loader, flush the
// unlogged tree, and rotate into the side-file phase.
func (b *builder) sfLoadTail(loader *btree.Loader, merged uint64, start time.Time) error {
	if err := loader.Finish(); err != nil {
		return b.cancel(err)
	}
	b.prog.Advance(progress.Load, merged)
	b.prog.FinishPhase(progress.Load)
	// Durability boundary before logged side-file processing: the loaded
	// (unlogged) tree must be on disk before records start referencing it.
	if err := b.db.Pool().FlushFile(b.ix.FileID); err != nil {
		return b.cancel(err)
	}
	st := engine.IBState{Index: b.ix.ID, Phase: engine.IBPhaseSideFile, CurrentRID: types.MaxRID, SFPos: 0}
	if err := b.rotate(st); err != nil {
		return b.cancel(err)
	}
	b.st.Insert += time.Since(start)
	return nil
}

// sfSideFilePhase applies side-file entries from position pos onward and
// performs the final switch.
func (b *builder) sfSideFilePhase(pos uint64) (*Result, error) {
	tree, err := b.db.TreeOf(b.ix.ID)
	if err != nil {
		return nil, b.cancel(err)
	}
	sf, err := b.db.SideFileOf(b.ix.ID)
	if err != nil {
		return nil, b.cancel(err)
	}
	start := time.Now()
	const batch = 256
	// "sidefile.applied" mirrors the builder's apply position on the
	// registry; the side-file's "sidefile.entries" gauge minus this counter
	// is the catch-up backlog a monitor watches drain to zero. Seeded with
	// the resume position so the difference is the true remaining backlog.
	appliedCtr := b.db.Metrics().Counter("sidefile.applied")
	appliedCtr.Add(pos)
	b.prog.SetTotal(progress.SideFile, sf.Count())
	last := pos
	noteApplied := func(pos uint64) {
		appliedCtr.Add(pos - last)
		last = pos
		b.prog.SetTotal(progress.SideFile, sf.Count())
		b.prog.Advance(progress.SideFile, pos)
	}

	if b.opts.SortSideFile && pos == 0 {
		// §3.2.5's performance option: apply the entries accumulated so far
		// in sorted order (stable, so identical keys keep their relative
		// positions); the tail appended meanwhile is processed sequentially
		// below. Restart granularity is the whole sorted pass.
		count := sf.Count()
		if count > 0 {
			entries, next, err := sf.Read(0, int(count))
			if err != nil {
				return nil, b.cancel(err)
			}
			sort.SliceStable(entries, func(i, j int) bool {
				return btree.CompareEntry(entries[i].Key, entries[i].RID, entries[j].Key, entries[j].RID) < 0
			})
			for _, e := range entries {
				if err := b.applySideFileEntry(tree, e); err != nil {
					return nil, err
				}
			}
			pos = next
			b.st.SideFileApplied += uint64(len(entries))
			noteApplied(pos)
			st := engine.IBState{Index: b.ix.ID, Phase: engine.IBPhaseSideFile, CurrentRID: types.MaxRID, SFPos: pos}
			if err := b.rotate(st); err != nil {
				return nil, b.cancel(err)
			}
		}
	}

	var sinceCkpt int
	for {
		entries, next, err := sf.Read(pos, batch)
		if err != nil {
			return nil, b.cancel(err)
		}
		if len(entries) == 0 {
			// Possibly caught up: freeze appends, drain stragglers, switch.
			b.ctl.FreezeAppends()
			entries, next, err = sf.Read(pos, 1<<30)
			if err != nil {
				b.ctl.UnfreezeAppends()
				return nil, b.cancel(err)
			}
			for _, e := range entries {
				if err := b.applySideFileEntry(tree, e); err != nil {
					b.ctl.UnfreezeAppends()
					return nil, err
				}
			}
			b.st.SideFileApplied += uint64(len(entries))
			pos = next
			noteApplied(pos)

			// The switch: "after processing the last entry in the side-file,
			// IB resets the Index_Build flag so that subsequently
			// transactions would modify the index directly."
			if err := b.db.SetIndexComplete(b.tx, b.ix.ID); err != nil {
				b.ctl.UnfreezeAppends()
				return nil, b.cancel(err)
			}
			b.ctl.SetPhase(engine.PhaseDirect)
			b.ctl.UnfreezeAppends()
			if err := b.tx.Commit(); err != nil {
				return nil, err
			}
			break
		}
		for _, e := range entries {
			if err := b.applySideFileEntry(tree, e); err != nil {
				return nil, err
			}
		}
		b.st.SideFileApplied += uint64(len(entries))
		pos = next
		noteApplied(pos)
		sinceCkpt += len(entries)
		if b.opts.CheckpointKeys > 0 && sinceCkpt >= b.opts.CheckpointKeys {
			st := engine.IBState{Index: b.ix.ID, Phase: engine.IBPhaseSideFile, CurrentRID: types.MaxRID, SFPos: pos}
			if err := b.rotate(st); err != nil {
				return nil, b.cancel(err)
			}
			sinceCkpt = 0
		}
	}
	b.st.SideFile += time.Since(start)
	b.st.SideFileLen = sf.Count()
	b.prog.FinishPhase(progress.SideFile)
	b.prog.Complete()

	b.db.UnregisterBuild(b.ix.ID)
	b.db.DropIBCheckpoint(b.ix.ID)
	done, _ := b.db.Catalog().Index(b.ix.Name)
	return &Result{Index: done, Stats: b.st}, nil
}

// applySideFileEntry applies one <operation, key> tuple "as a normal
// transaction would do" (§3.2.5), including the unique-conflict protocol.
func (b *builder) applySideFileEntry(tree *btree.Tree, e sidefile.Entry) error {
	switch e.Op {
	case sidefile.OpInsert:
		for attempt := 0; attempt < 32; attempt++ {
			_, conflict, err := tree.TxnInsert(b.tx, e.Key, e.RID)
			if err != nil {
				return b.cancel(err)
			}
			if conflict == nil {
				return nil
			}
			action, err := b.verifyIBConflict(tree, e.Key, e.RID, conflict.OtherRID, conflict.Pseudo)
			if err != nil {
				return b.cancel(err)
			}
			switch action {
			case conflictFatal:
				return b.cancel(&engine.UniqueViolationError{Index: b.ix.Name, Key: e.Key, Existing: conflict.OtherRID})
			case conflictSkipKey:
				return nil
			case conflictReplace:
				if err := tree.ReplaceRID(b.tx, e.Key, conflict.OtherRID, e.RID); err != nil {
					if _, isConflict := err.(*btree.UniqueConflict); isConflict {
						continue
					}
					return b.cancel(err)
				}
				return nil
			case conflictRetry:
				continue
			}
		}
		return b.cancel(fmt.Errorf("side-file insert conflict did not converge"))
	case sidefile.OpDelete:
		_, err := tree.TxnPseudoDelete(b.tx, e.Key, e.RID)
		if err != nil {
			return b.cancel(err)
		}
		return nil
	default:
		return b.cancel(fmt.Errorf("side-file entry with unknown op %v", e.Op))
	}
}

// resumeSF continues an interrupted SF build from its last checkpoint.
func (b *builder) resumeSF(state *engine.IBState) (*Result, error) {
	b.tx = b.db.Begin()
	b.startProgress()
	b.seedProgress(state)
	switch {
	case state == nil:
		// No checkpoint: rescan from the beginning. Current-RID was
		// restored to the zero position by recovery, so nothing was lost.
		sorter := b.newSorter()
		defer sorter.Close()
		if err := b.sfScan(sorter, 0); err != nil {
			return nil, b.cancel(err)
		}
		runs, err := sorter.Finish()
		if err != nil {
			return nil, b.cancel(err)
		}
		b.st.Runs = len(runs)
		if err := b.sfLoadPhase(runs, nil, nil); err != nil {
			return nil, err
		}
		return b.sfSideFilePhase(0)

	case state.Phase == engine.IBPhaseScan:
		sorter, scanPos, err := b.resumeSorter(state.SortState)
		if err != nil {
			return nil, err
		}
		defer sorter.Close()
		next, _, err := parseScanPosition(scanPos)
		if err != nil {
			return nil, err
		}
		// Recovery restored Current-RID to the checkpointed position, which
		// matches the sort's scan position by construction. The scan chases
		// the file's current end, not the end recorded at checkpoint time.
		if err := b.sfScan(sorter, next); err != nil {
			return nil, b.cancel(err)
		}
		runs, err := sorter.Finish()
		if err != nil {
			return nil, b.cancel(err)
		}
		b.st.Runs = len(runs)
		if err := b.sfLoadPhase(runs, nil, nil); err != nil {
			return nil, err
		}
		return b.sfSideFilePhase(0)

	case state.Phase == engine.IBPhaseLoad:
		ms, err := extsort.DecodeMergeState(state.MergeState)
		if err != nil {
			return nil, err
		}
		ls, err := btree.DecodeLoaderState(state.LoadState)
		if err != nil {
			return nil, err
		}
		b.st.Runs = len(ms.Runs)
		if err := b.sfLoadPhase(nil, &ms, &ls); err != nil {
			return nil, err
		}
		return b.sfSideFilePhase(0)

	case state.Phase == engine.IBPhaseSideFile:
		return b.sfSideFilePhase(state.SFPos)

	default:
		return nil, fmt.Errorf("core: SF build of %q in unexpected phase %v", b.ix.Name, state.Phase)
	}
}
