package zonemap

import (
	"testing"

	"onlineindex/internal/keyenc"
	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

func isNull(v []byte) bool {
	k, _, err := keyenc.DecodeOne(v)
	return err == nil && k.Kind == keyenc.KindNull
}

func enc(v keyenc.Value) []byte { return keyenc.Encode(v) }

func row(id int64, name string) [][]byte {
	return [][]byte{enc(keyenc.Int64(id)), enc(keyenc.String(name))}
}

func TestRebuildInstallAndPrune(t *testing.T) {
	m := New(4, Metrics{})
	// Block 0 unknown: never prunes.
	if m.CanPrune(0, 0, enc(keyenc.Int64(100)), enc(keyenc.Int64(200))) {
		t.Fatal("unknown block pruned")
	}
	ver := m.BeginRebuild(0)
	sum := Summary{Live: 2, MinCols: 2}
	for _, r := range [][][]byte{row(10, "aa"), row(20, "bb")} {
		noteCols(&sum, r, isNull, 1)
	}
	if !m.CompleteRebuild(0, ver, sum) {
		t.Fatal("uncontended rebuild discarded")
	}
	// id range [100,200] misses [10,20] entirely.
	if !m.CanPrune(0, 0, enc(keyenc.Int64(100)), enc(keyenc.Int64(200))) {
		t.Fatal("disjoint range not pruned")
	}
	// id range [15,200] overlaps.
	if m.CanPrune(0, 0, enc(keyenc.Int64(15)), enc(keyenc.Int64(200))) {
		t.Fatal("overlapping range pruned")
	}
	// Unbounded predicate on a live block never prunes.
	if m.CanPrune(0, -1, nil, nil) {
		t.Fatal("live block pruned with no predicate")
	}
}

func TestRebuildDiscardedOnConcurrentDML(t *testing.T) {
	reg := metrics.New()
	m := New(4, MetricsFrom(reg, "zm"))
	ver := m.BeginRebuild(0)
	m.NoteInsert(types.PageNum(1), row(5, "x"), isNull) // races the rebuild
	if m.CompleteRebuild(0, ver, Summary{Live: 1, MinCols: 2}) {
		t.Fatal("rebuild landed despite concurrent insert")
	}
	if m.Known(0) {
		t.Fatal("block known after discarded rebuild")
	}
}

func TestSupersetInvariantUnderDML(t *testing.T) {
	m := New(4, Metrics{})
	ver := m.BeginRebuild(0)
	sum := Summary{}
	noteCols(&sum, row(50, "mm"), isNull, 1)
	sum.Live = 1
	if !m.CompleteRebuild(0, ver, sum) {
		t.Fatal("rebuild discarded")
	}
	// Insert outside the bounds widens them.
	m.NoteInsert(0, row(5, "aa"), isNull)
	if m.CanPrune(0, 0, enc(keyenc.Int64(1)), enc(keyenc.Int64(7))) {
		t.Fatal("block pruned after insert widened bounds into the range")
	}
	// Delete does not shrink bounds: range [1,7] still unprunable even after
	// the only row in it is gone (conservative, correct).
	m.NoteDelete(0, row(5, "aa"), isNull)
	if m.CanPrune(0, 0, enc(keyenc.Int64(1)), enc(keyenc.Int64(7))) {
		t.Fatal("delete shrank bounds")
	}
	// But when live hits zero the block prunes for any predicate.
	m.NoteDelete(0, row(50, "mm"), isNull)
	if !m.CanPrune(0, -1, nil, nil) {
		t.Fatal("empty block not pruned")
	}
	// Update moves a row: bounds widen to the new value, old bound remains.
	m.NoteInsert(0, row(50, "mm"), isNull)
	m.NoteUpdate(0, row(50, "mm"), row(500, "zz"), isNull)
	if m.CanPrune(0, 0, enc(keyenc.Int64(400)), enc(keyenc.Int64(600))) {
		t.Fatal("update did not widen bounds to the new value")
	}
}

func TestShortRowsDisableColumnPrune(t *testing.T) {
	m := New(4, Metrics{})
	ver := m.BeginRebuild(0)
	sum := Summary{Live: 2}
	noteCols(&sum, row(10, "aa"), isNull, 1)
	noteCols(&sum, [][]byte{enc(keyenc.Int64(20))}, isNull, 1) // only one column
	if !m.CompleteRebuild(0, ver, sum) {
		t.Fatal("rebuild discarded")
	}
	// Column 1 bounds only describe the two-column row; the short row could
	// be anything, so pruning on column 1 must be off.
	if m.CanPrune(0, 1, enc(keyenc.String("zz")), nil) {
		t.Fatal("pruned on a column some rows lack")
	}
	// Column 0 is present in every row and prunes normally.
	if !m.CanPrune(0, 0, enc(keyenc.Int64(100)), nil) {
		t.Fatal("column 0 prune lost")
	}
}

func TestNullsInsideBounds(t *testing.T) {
	m := New(4, Metrics{})
	ver := m.BeginRebuild(0)
	sum := Summary{Live: 2, MinCols: 2}
	noteCols(&sum, [][]byte{enc(keyenc.Int64(10)), enc(keyenc.Null())}, isNull, 1)
	noteCols(&sum, row(20, "bb"), isNull, 1)
	if !m.CompleteRebuild(0, ver, sum) {
		t.Fatal("rebuild discarded")
	}
	s, ok := m.SummaryOf(0)
	if !ok || s.Cols[1].Nulls != 1 {
		t.Fatalf("null count = %d, want 1", s.Cols[1].Nulls)
	}
	// Null sorts first: a predicate range starting at null must not prune.
	if m.CanPrune(0, 1, enc(keyenc.Null()), enc(keyenc.Null())) {
		t.Fatal("pruned a block containing a null in range")
	}
}
