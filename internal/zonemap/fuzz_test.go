package zonemap

import (
	"bytes"
	"testing"

	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
)

// FuzzZoneMapPrune drives a model heap and a Map through a fuzzer-chosen
// op sequence (inserts, deletes, updates, per-block rebuilds — some racing
// DML), then checks a fuzzer-chosen range predicate: a scan that skips every
// CanPrune block must see exactly the rows a full scan sees. This is the
// zone map's whole contract — pruning is pure optimization, never wrong.
func FuzzZoneMapPrune(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x22, 0x33, 0x44, 0x55}, int64(5), int64(40))
	f.Add([]byte{0xff, 0xee, 0x07, 0x81, 0x00, 0x13, 0x29}, int64(-3), int64(3))
	f.Add([]byte{}, int64(0), int64(0))
	f.Fuzz(func(t *testing.T, ops []byte, lo, hi int64) {
		const blockPages = 2
		const numPages = 8 // 4 blocks
		m := New(blockPages, Metrics{})
		// model[page] holds the live rows (their id column values).
		model := make([][]int64, numPages)

		rowOf := func(id int64) [][]byte {
			return [][]byte{keyenc.Encode(keyenc.Int64(id)), keyenc.Encode(keyenc.String("pad"))}
		}
		rebuild := func(blk int, interleaved byte) {
			ver := m.BeginRebuild(blk)
			sum := Summary{}
			for p := blk * blockPages; p < (blk+1)*blockPages && p < numPages; p++ {
				for _, id := range model[p] {
					sum.Live++
					noteCols(&sum, rowOf(id), isNull, 1)
				}
			}
			// Optionally mutate between scan and install: the version check
			// must discard the now-stale summary.
			if interleaved&1 != 0 {
				p := int(interleaved>>1) % numPages
				model[p] = append(model[p], int64(interleaved))
				m.NoteInsert(types.PageNum(p), rowOf(int64(interleaved)), isNull)
				if m.CompleteRebuild(blk, ver, sum) && m.BlockOf(types.PageNum(p)) == blk {
					t.Fatal("stale rebuild installed over a concurrent insert")
				}
				return
			}
			m.CompleteRebuild(blk, ver, sum)
		}

		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i], ops[i+1], ops[i+2]
			page := int(a) % numPages
			id := int64(int8(b)) // signed ids exercise the keyenc int order
			switch op % 4 {
			case 0: // insert
				model[page] = append(model[page], id)
				m.NoteInsert(types.PageNum(page), rowOf(id), isNull)
			case 1: // delete first matching row on the page, if any
				for j, v := range model[page] {
					if v == id {
						model[page] = append(model[page][:j], model[page][j+1:]...)
						m.NoteDelete(types.PageNum(page), rowOf(id), isNull)
						break
					}
				}
			case 2: // update first row on the page to id
				if len(model[page]) > 0 {
					old := model[page][0]
					model[page][0] = id
					m.NoteUpdate(types.PageNum(page), rowOf(old), rowOf(id), isNull)
				}
			case 3: // rebuild the block containing page
				rebuild(m.BlockOf(types.PageNum(page)), b)
			}
		}

		if lo > hi {
			lo, hi = hi, lo
		}
		loB := keyenc.Encode(keyenc.Int64(lo))
		hiB := keyenc.Encode(keyenc.Int64(hi))

		var full, pruned []int64
		for p := 0; p < numPages; p++ {
			for _, id := range model[p] {
				if id >= lo && id <= hi {
					full = append(full, id)
				}
			}
		}
		for blk := 0; blk*blockPages < numPages; blk++ {
			if m.CanPrune(blk, 0, loB, hiB) {
				continue
			}
			for p := blk * blockPages; p < (blk+1)*blockPages && p < numPages; p++ {
				for _, id := range model[p] {
					if id >= lo && id <= hi {
						pruned = append(pruned, id)
					}
				}
			}
		}
		if len(full) != len(pruned) {
			t.Fatalf("pruned scan saw %d rows, full scan %d (range [%d,%d])", len(pruned), len(full), lo, hi)
		}
		for i := range full {
			if full[i] != pruned[i] {
				t.Fatalf("row %d: pruned %d != full %d", i, pruned[i], full[i])
			}
		}
		// Sanity: byte order of the predicate encodings matches int order.
		if lo < hi && bytes.Compare(loB, hiB) >= 0 {
			t.Fatal("keyenc order broken")
		}
	})
}
