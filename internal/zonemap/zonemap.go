// Package zonemap is a per-heap block-summary sidecar (the sieswi .sidx
// idea): the heap's pages are grouped into fixed-size blocks, and each block
// carries a summary — live row count, per-column min/max over the keyenc
// encodings, per-column null counts — that a sequential scan consults to
// skip blocks that cannot contain a match.
//
// Correctness rests on a superset invariant: a known block's bounds always
// cover every live row in the block. Inserts and updates widen bounds under
// the heap page's X latch; deletes only decrement counts and never shrink
// bounds. Pruning can therefore only err toward scanning too much, never
// toward skipping a matching row. Exact bounds are restored by a rebuild: a
// scan over the block's pages computes the summary from scratch and installs
// it version-checked — every mutation bumps the block's version, so a
// rebuild that raced any DML is discarded and retried later.
//
// The map is memory-only. After a crash or restart every block starts
// unknown, which makes stale pruning after recovery impossible by
// construction; the first sequential scan rebuilds summaries as it goes.
package zonemap

import (
	"bytes"
	"sync"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

// DefaultBlockPages is how many heap pages share one summary block.
const DefaultBlockPages = 8

// Metrics are the map's nil-safe counters.
type Metrics struct {
	Prunes          *metrics.Counter // blocks skipped by a scan
	Rebuilds        *metrics.Counter // summaries installed
	RebuildDiscards *metrics.Counter // rebuilds lost to concurrent DML
	Notes           *metrics.Counter // DML notifications applied
}

// MetricsFrom registers the map counters under prefix (e.g. "zonemap").
func MetricsFrom(r *metrics.Registry, prefix string) Metrics {
	return Metrics{
		Prunes:          r.Counter(prefix + ".prunes"),
		Rebuilds:        r.Counter(prefix + ".rebuilds"),
		RebuildDiscards: r.Counter(prefix + ".rebuild_discards"),
		Notes:           r.Counter(prefix + ".notes"),
	}
}

// ColStats summarizes one column across a block's live rows. Min/Max compare
// as raw bytes, which is the keyenc order (nulls encode as 0x00 and sort
// first, so they are inside the bounds like any other value).
type ColStats struct {
	Min, Max []byte
	Nulls    int
}

// Summary is one block's contents as the map knows them.
type Summary struct {
	Live    int        // live rows in the block
	MinCols int        // smallest column count of any row ever noted/seen
	Cols    []ColStats // indexed by column position
}

// AddRow folds one live row into a summary being computed by a rebuild scan
// (same folding the map applies for inserts on known blocks).
func (s *Summary) AddRow(cols [][]byte, isNull func([]byte) bool) {
	s.Live++
	noteCols(s, cols, isNull, 1)
}

type block struct {
	known bool
	ver   uint64
	sum   Summary
}

// Map is one heap's zone-map sidecar.
type Map struct {
	mu         sync.Mutex
	blockPages int
	blocks     []*block
	met        Metrics
}

// New creates an empty map (every block unknown). blockPages <= 0 uses
// DefaultBlockPages.
func New(blockPages int, met Metrics) *Map {
	if blockPages <= 0 {
		blockPages = DefaultBlockPages
	}
	return &Map{blockPages: blockPages, met: met}
}

// BlockPages reports the block size in pages.
func (m *Map) BlockPages() int { return m.blockPages }

// BlockOf maps a heap page to its block index.
func (m *Map) BlockOf(page types.PageNum) int { return int(page) / m.blockPages }

// blockFor grows the block table on demand. Caller holds m.mu.
func (m *Map) blockFor(idx int) *block {
	for len(m.blocks) <= idx {
		m.blocks = append(m.blocks, &block{})
	}
	return m.blocks[idx]
}

func widen(cs *ColStats, v []byte) {
	if cs.Min == nil || bytes.Compare(v, cs.Min) < 0 {
		cs.Min = append([]byte(nil), v...)
	}
	if cs.Max == nil || bytes.Compare(v, cs.Max) > 0 {
		cs.Max = append([]byte(nil), v...)
	}
}

// noteCols folds one row's column encodings into the summary. isNull reports
// whether a column encoding is the null value (the caller knows keyenc).
func noteCols(sum *Summary, cols [][]byte, isNull func([]byte) bool, add int) {
	if sum.MinCols == 0 || len(cols) < sum.MinCols {
		sum.MinCols = len(cols)
	}
	for len(sum.Cols) < len(cols) {
		sum.Cols = append(sum.Cols, ColStats{})
	}
	for i, v := range cols {
		cs := &sum.Cols[i]
		if add > 0 {
			widen(cs, v)
		}
		if isNull(v) {
			cs.Nulls += add
		}
	}
}

// NoteInsert records a row landing on page. cols are the row's per-column
// keyenc encodings; isNull identifies the null encoding. Called under the
// page's X latch.
func (m *Map) NoteInsert(page types.PageNum, cols [][]byte, isNull func([]byte) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.blockFor(m.BlockOf(page))
	b.ver++
	m.met.Notes.Inc()
	if !b.known {
		return
	}
	b.sum.Live++
	noteCols(&b.sum, cols, isNull, 1)
}

// NoteDelete records a row leaving page. Bounds are left alone (superset
// invariant); only the counts move. Called under the page's X latch.
func (m *Map) NoteDelete(page types.PageNum, old [][]byte, isNull func([]byte) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.blockFor(m.BlockOf(page))
	b.ver++
	m.met.Notes.Inc()
	if !b.known {
		return
	}
	b.sum.Live--
	for i, v := range old {
		if i < len(b.sum.Cols) && isNull(v) {
			b.sum.Cols[i].Nulls--
		}
	}
}

// NoteUpdate records a row on page changing in place. Called under the
// page's X latch.
func (m *Map) NoteUpdate(page types.PageNum, old, new [][]byte, isNull func([]byte) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.blockFor(m.BlockOf(page))
	b.ver++
	m.met.Notes.Inc()
	if !b.known {
		return
	}
	for i, v := range old {
		if i < len(b.sum.Cols) && isNull(v) {
			b.sum.Cols[i].Nulls--
		}
	}
	noteCols(&b.sum, new, isNull, 1)
}

// BeginRebuild samples the block's version before the caller scans its
// pages. Pair with CompleteRebuild.
func (m *Map) BeginRebuild(idx int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.blockFor(idx).ver
}

// CompleteRebuild installs a freshly computed summary iff no mutation
// touched the block since BeginRebuild. Reports whether it landed.
func (m *Map) CompleteRebuild(idx int, ver uint64, sum Summary) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := m.blockFor(idx)
	if b.ver != ver {
		m.met.RebuildDiscards.Inc()
		return false
	}
	b.sum = sum
	b.known = true
	m.met.Rebuilds.Inc()
	return true
}

// CanPrune reports whether a scan may skip block idx entirely for a
// predicate bounding column col to [lo, hi] in keyenc byte order (nil bound
// = unbounded; col < 0 means no column predicate — then only an empty block
// prunes). Unknown blocks never prune.
func (m *Map) CanPrune(idx, col int, lo, hi []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= len(m.blocks) {
		return false
	}
	b := m.blocks[idx]
	if !b.known {
		return false
	}
	if b.sum.Live <= 0 {
		m.met.Prunes.Inc()
		return true
	}
	if col < 0 {
		return false
	}
	// Rows with fewer columns than col+1 have no value there; the bounds say
	// nothing about them, so the block must be scanned.
	if col >= b.sum.MinCols || col >= len(b.sum.Cols) {
		return false
	}
	cs := b.sum.Cols[col]
	if cs.Min == nil { // no live row ever contributed a value
		return false
	}
	if hi != nil && bytes.Compare(cs.Min, hi) > 0 {
		m.met.Prunes.Inc()
		return true
	}
	if lo != nil && bytes.Compare(cs.Max, lo) < 0 {
		m.met.Prunes.Inc()
		return true
	}
	return false
}

// Known reports whether block idx currently has an installed summary.
func (m *Map) Known(idx int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return idx < len(m.blocks) && m.blocks[idx].known
}

// SummaryOf returns a copy of block idx's summary for tests and admin
// display; ok=false if the block is unknown.
func (m *Map) SummaryOf(idx int) (Summary, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx >= len(m.blocks) || !m.blocks[idx].known {
		return Summary{}, false
	}
	b := m.blocks[idx]
	out := Summary{Live: b.sum.Live, MinCols: b.sum.MinCols, Cols: make([]ColStats, len(b.sum.Cols))}
	copy(out.Cols, b.sum.Cols)
	return out, true
}
