// Package engine assembles the substrates — VFS, WAL, buffer pool, lock
// manager, heap tables, B+-tree indexes, side-files, transactions, restart
// recovery — into a small database engine, and implements the transaction
// side of the paper's two online index build algorithms:
//
//   - the Fig. 1 forward-processing logic (count visible indexes under the
//     data page latch; route changes for an SF-building index to its
//     side-file iff Target-RID < Current-RID; maintain all other visible
//     indexes directly with the NSF duplicate/pseudo-delete rules);
//   - the Fig. 2 rollback logic (compare the visible-index count in the data
//     page log record with the current count and compensate indexes that
//     became visible in between);
//   - the unique-index conflict-resolution protocol (§2.2.3): lock the
//     competing records in share mode, re-verify, and either reactivate,
//     replace the RID of a terminated pseudo entry, or fail.
//
// The index builders themselves live in package core; the engine exposes the
// BuildCtl handshake they share with transactions.
package engine

import (
	"fmt"
	"sync"
	"time"

	"onlineindex/internal/btree"
	"onlineindex/internal/buffer"
	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/lock"
	"onlineindex/internal/metrics"
	"onlineindex/internal/progress"
	"onlineindex/internal/readcache"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
	"onlineindex/internal/zonemap"
)

// Config tunes a DB.
type Config struct {
	// FS is the stable storage; nil means a fresh MemFS.
	FS vfs.FS
	// PoolSize is the buffer pool capacity in frames (default 1024).
	PoolSize int
	// TreeBudget caps index node size in bytes (tests use small values to
	// force deep trees); 0 means the page size.
	TreeBudget int
	// DisableMetrics turns off the metrics registry: every subsystem gets
	// nil instrument handles, whose methods are no-ops (the overhead
	// benchmark compares the two modes).
	DisableMetrics bool
	// CommitBatchDelay is the WAL group-commit max batch delay: how long a
	// flush leader lingers before writing, letting more concurrent
	// committers ride the same fsync. 0 (the default) flushes immediately;
	// commit batching then comes only from flushes that overlap in time.
	CommitBatchDelay time.Duration
	// SerialCommitForce disables group commit and restores the serial
	// hold-the-mutex-across-fsync Force. Benchmark baseline only.
	SerialCommitForce bool
	// BufferShards is the buffer pool's page-table shard count (rounded up
	// to a power of two). 0 means min(16, GOMAXPROCS). The deterministic
	// fault-injection sweep pins it to 1 so I/O schedules replay unchanged.
	BufferShards int
	// LockStripes is the lock manager's bucket-map stripe count (rounded up
	// to a power of two). 0 means min(16, GOMAXPROCS); the fault sweep pins
	// it to 1.
	LockStripes int
	// DisableReadCache turns off the hash point-lookup fast path; IndexLookup
	// then always descends the tree. The deterministic fault sweep pins it
	// off in legacy scenarios (the cache is memory-only, so this is about
	// keeping the read code path identical, not about I/O schedules).
	DisableReadCache bool
	// ReadCacheSize caps the cached key runs per index (0 = 4096).
	ReadCacheSize int
	// DisableZoneMap turns off heap zone-map maintenance and sequential-scan
	// block pruning.
	DisableZoneMap bool
}

// DB is the engine instance.
type DB struct {
	fs   vfs.FS
	log  *wal.Log
	pool *buffer.Pool
	lock *lock.Manager
	txns *txn.Manager
	cat  *catalog.Catalog
	cfg  Config

	// met is the engine-wide metrics registry; nil when Config.DisableMetrics
	// is set (nil registries hand out nil no-op instrument handles).
	met *metrics.Registry

	mu     sync.Mutex
	tables map[types.TableID]*heap.Table
	trees  map[types.IndexID]*btree.Tree
	// treeFiles maps each open tree's index file back to its index ID, so
	// the undo path (which only has a log record's PageID) can invalidate
	// read caches without scanning every tree.
	treeFiles map[types.FileID]types.IndexID
	sfiles    map[types.IndexID]*sidefile.File
	builds    map[types.IndexID]*BuildCtl
	// progs holds one progress tracker per in-flight (or just-finished)
	// index build, registered by the builders in package core.
	progs map[types.IndexID]*progress.Tracker
	// progGroups holds named snapshot closures that aggregate several
	// builds into one logical progress view (the partition coordinator
	// registers one per fan-out index build).
	progGroups map[string]func() progress.Snapshot
	// lastIBCkpt holds each building index's latest committed builder
	// checkpoint payload, included in fuzzy checkpoints so restart can find
	// it without scanning the whole log.
	lastIBCkpt map[types.IndexID][]byte
	// rcaches holds each readable index's hash point-lookup cache, created
	// lazily on first read. Memory-only: restart starts cold.
	rcaches map[types.IndexID]*readcache.Cache
	// zmaps holds each table's zone-map sidecar. Memory-only: restart starts
	// with every block unknown, so stale pruning after recovery is impossible.
	zmaps map[types.TableID]*zonemap.Map

	crashed bool
}

// Open creates a fresh database on cfg.FS. Use Recover to reopen one that
// has existing state.
func Open(cfg Config) (*DB, error) {
	if cfg.FS == nil {
		cfg.FS = vfs.NewMemFS()
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 1024
	}
	log, err := wal.Open(cfg.FS)
	if err != nil {
		return nil, err
	}
	var reg *metrics.Registry
	if !cfg.DisableMetrics {
		reg = metrics.New()
	}
	db := &DB{
		fs:         cfg.FS,
		log:        log,
		pool:       buffer.NewSharded(cfg.FS, log, cfg.PoolSize, cfg.BufferShards),
		lock:       lock.NewManagerStriped(cfg.LockStripes),
		cat:        catalog.New(),
		cfg:        cfg,
		met:        reg,
		tables:     make(map[types.TableID]*heap.Table),
		trees:      make(map[types.IndexID]*btree.Tree),
		treeFiles:  make(map[types.FileID]types.IndexID),
		sfiles:     make(map[types.IndexID]*sidefile.File),
		builds:     make(map[types.IndexID]*BuildCtl),
		progs:      make(map[types.IndexID]*progress.Tracker),
		progGroups: make(map[string]func() progress.Snapshot),
		lastIBCkpt: make(map[types.IndexID][]byte),
		rcaches:    make(map[types.IndexID]*readcache.Cache),
		zmaps:      make(map[types.TableID]*zonemap.Map),
	}
	db.log.SetMetrics(wal.MetricsFrom(reg))
	db.log.SetBatchDelay(cfg.CommitBatchDelay)
	db.log.SetSerialForce(cfg.SerialCommitForce)
	db.pool.SetMetrics(buffer.MetricsFrom(reg, db.pool.Shards()))
	db.lock.SetMetrics(lock.MetricsFrom(reg, db.lock.Stripes()))
	db.txns = txn.NewManager(log, db.lock)
	db.txns.SetDispatcher(db)
	return db, nil
}

// Metrics returns the engine-wide metrics registry (nil when disabled).
func (db *DB) Metrics() *metrics.Registry { return db.met }

// RegisterProgress installs the progress tracker of an index build. The
// builders call it at build start and at resume; a second registration for
// the same index replaces the first (a resumed build starts a fresh tracker
// seeded from the durable checkpoint).
func (db *DB) RegisterProgress(id types.IndexID, tr *progress.Tracker) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.progs[id] = tr
}

// DropProgress forgets a build's tracker (e.g. after a cancelled build; a
// completed build's tracker is kept so its terminal fraction==1 snapshot
// stays observable).
func (db *DB) DropProgress(id types.IndexID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.progs, id)
}

// ProgressOf returns the progress tracker of an index build, or nil. All
// tracker methods are nil-safe, so callers may use the result unchecked.
func (db *DB) ProgressOf(id types.IndexID) *progress.Tracker {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.progs[id]
}

// RegisterProgressGroup installs a named aggregate progress view (one
// snapshot summarizing several shard builds). Re-registering a name
// replaces the previous closure.
func (db *DB) RegisterProgressGroup(name string, fn func() progress.Snapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.progGroups[name] = fn
}

// DropProgressGroup forgets an aggregate progress view.
func (db *DB) DropProgressGroup(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.progGroups, name)
}

// ProgressSnapshots returns a snapshot of every registered build tracker
// followed by every registered aggregate group view, in unspecified order.
func (db *DB) ProgressSnapshots() []progress.Snapshot {
	db.mu.Lock()
	trs := make([]*progress.Tracker, 0, len(db.progs))
	for _, tr := range db.progs {
		trs = append(trs, tr)
	}
	fns := make([]func() progress.Snapshot, 0, len(db.progGroups))
	for _, fn := range db.progGroups {
		fns = append(fns, fn)
	}
	db.mu.Unlock()
	out := make([]progress.Snapshot, 0, len(trs)+len(fns))
	for _, tr := range trs {
		out = append(out, tr.Snapshot())
	}
	for _, fn := range fns {
		out = append(out, fn())
	}
	return out
}

// FS returns the underlying stable storage.
func (db *DB) FS() vfs.FS { return db.fs }

// Log returns the write-ahead log (stats and forced reads for the harness).
func (db *DB) Log() *wal.Log { return db.log }

// Pool returns the buffer pool.
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Locks returns the lock manager.
func (db *DB) Locks() *lock.Manager { return db.lock }

// Catalog returns the catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Txns returns the transaction manager.
func (db *DB) Txns() *txn.Manager { return db.txns }

// Begin starts a transaction.
func (db *DB) Begin() *txn.Txn { return db.txns.Begin() }

// heapOf returns the heap handle of a table.
func (db *DB) heapOf(id types.TableID) (*heap.Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[id]
	if !ok {
		return nil, fmt.Errorf("engine: no open heap for table %d", id)
	}
	return t, nil
}

// HeapOf exposes a table's heap handle to the index builders, which drive
// the page-at-a-time scan themselves to manage their scan position.
func (db *DB) HeapOf(id types.TableID) (*heap.Table, error) { return db.heapOf(id) }

// TreeOf returns the B+-tree of an index (exported for the builders and the
// verification harness).
func (db *DB) TreeOf(id types.IndexID) (*btree.Tree, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.trees[id]
	if !ok {
		return nil, fmt.Errorf("engine: no open tree for index %d", id)
	}
	return t, nil
}

// SideFileOf returns the side-file of an SF-building index.
func (db *DB) SideFileOf(id types.IndexID) (*sidefile.File, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	sf, ok := db.sfiles[id]
	if !ok {
		return nil, fmt.Errorf("engine: no side-file for index %d", id)
	}
	return sf, nil
}

// BuildCtlOf returns the build control of an index, or nil when no build is
// registered.
func (db *DB) BuildCtlOf(id types.IndexID) *BuildCtl {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.builds[id]
}

// RegisterBuild installs build control state (called by the builder before
// the descriptor becomes visible, and by recovery when it finds an
// interrupted build).
func (db *DB) RegisterBuild(ctl *BuildCtl) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.builds[ctl.Index] = ctl
}

// UnregisterBuild removes build control state after completion or cancel.
func (db *DB) UnregisterBuild(id types.IndexID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.builds, id)
}

// NoteIBCheckpoint records the latest committed builder checkpoint payload
// for inclusion in fuzzy checkpoints.
func (db *DB) NoteIBCheckpoint(id types.IndexID, payload []byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.lastIBCkpt[id] = append([]byte(nil), payload...)
}

// LastIBState returns the latest committed builder checkpoint for an index,
// or nil. The crash experiments use it to aim failures at specific build
// phases.
func (db *DB) LastIBState(id types.IndexID) *IBState {
	db.mu.Lock()
	b := db.lastIBCkpt[id]
	db.mu.Unlock()
	if b == nil {
		return nil
	}
	st, err := DecodeIBState(b)
	if err != nil {
		return nil
	}
	return &st
}

// DropIBCheckpoint forgets builder state after build completion.
func (db *DB) DropIBCheckpoint(id types.IndexID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.lastIBCkpt, id)
}

// Crash simulates a system failure: every volatile structure is dropped and
// only forced state survives on the FS. The DB is unusable afterwards;
// Recover(fs) brings up a new incarnation.
func (db *DB) Crash() vfs.FS {
	db.mu.Lock()
	db.crashed = true
	db.mu.Unlock()
	if mem, ok := db.fs.(*vfs.MemFS); ok {
		mem.Crash()
		mem.Recover() // disks come back; volatile contents are gone
	}
	return db.fs
}

// Close flushes everything and closes files (clean shutdown).
func (db *DB) Close() error {
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	if err := db.log.ForceAll(); err != nil {
		return err
	}
	if err := db.Checkpoint(); err != nil {
		return err
	}
	return db.pool.Close()
}
