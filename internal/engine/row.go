package engine

import (
	"fmt"

	"onlineindex/internal/catalog"
	"onlineindex/internal/enc"
	"onlineindex/internal/keyenc"
)

// Row is one table row: typed column values matching the table schema.
type Row []keyenc.Value

// EncodeRow serializes a row for heap storage.
func EncodeRow(row Row) []byte {
	w := enc.NewWriter().U16(uint16(len(row)))
	for _, v := range row {
		w.Bytes32(keyenc.Encode(v))
	}
	return w.Bytes()
}

// DecodeRow parses a heap record back into a row.
func DecodeRow(rec []byte) (Row, error) {
	r := enc.NewReader(rec)
	n := int(r.U16())
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		b := r.Bytes32()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, rest, err := keyenc.DecodeOne(b)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("engine: trailing bytes in column %d", i)
		}
		row = append(row, v)
	}
	return row, r.Err()
}

// checkRow validates a row against a schema.
func checkRow(schema catalog.Schema, row Row) error {
	if len(row) != len(schema) {
		return fmt.Errorf("engine: row has %d columns, schema has %d", len(row), len(schema))
	}
	for i, v := range row {
		if v.Kind != schema[i].Kind && v.Kind != keyenc.KindNull {
			return fmt.Errorf("engine: column %q: got %s, want %s", schema[i].Name, v.Kind, schema[i].Kind)
		}
	}
	return nil
}

// indexKey extracts an index's key value from a row: "the concatenation of
// the values of the columns over which the index is defined" in the
// order-preserving encoding.
func indexKey(ix *catalog.Index, row Row) ([]byte, error) {
	var key []byte
	for _, c := range ix.Columns {
		if c < 0 || c >= len(row) {
			return nil, fmt.Errorf("engine: index %q references column %d of %d-column row", ix.Name, c, len(row))
		}
		key = keyenc.Append(key, row[c])
	}
	return key, nil
}

// indexKeyFromRecord extracts the key directly from an encoded heap record.
func indexKeyFromRecord(ix *catalog.Index, rec []byte) ([]byte, error) {
	row, err := DecodeRow(rec)
	if err != nil {
		return nil, err
	}
	return indexKey(ix, row)
}

// IndexKeyFromRecord is indexKeyFromRecord for the index builders: "the
// index-builder scans the data pages, builds index keys" (§1.1).
func IndexKeyFromRecord(ix *catalog.Index, rec []byte) ([]byte, error) {
	return indexKeyFromRecord(ix, rec)
}

// IndexKey extracts an index key from a decoded row.
func IndexKey(ix *catalog.Index, row Row) ([]byte, error) { return indexKey(ix, row) }
