package engine

import (
	"encoding/binary"
	"fmt"

	"onlineindex/internal/catalog"
	"onlineindex/internal/enc"
	"onlineindex/internal/keyenc"
)

// Row is one table row: typed column values matching the table schema.
type Row []keyenc.Value

// EncodeRow serializes a row for heap storage.
func EncodeRow(row Row) []byte {
	w := enc.NewWriter().U16(uint16(len(row)))
	for _, v := range row {
		w.Bytes32(keyenc.Encode(v))
	}
	return w.Bytes()
}

// DecodeRow parses a heap record back into a row.
func DecodeRow(rec []byte) (Row, error) {
	r := enc.NewReader(rec)
	n := int(r.U16())
	row := make(Row, 0, n)
	for i := 0; i < n; i++ {
		b := r.Bytes32()
		if r.Err() != nil {
			return nil, r.Err()
		}
		v, rest, err := keyenc.DecodeOne(b)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, fmt.Errorf("engine: trailing bytes in column %d", i)
		}
		row = append(row, v)
	}
	return row, r.Err()
}

// checkRow validates a row against a schema.
func checkRow(schema catalog.Schema, row Row) error {
	if len(row) != len(schema) {
		return fmt.Errorf("engine: row has %d columns, schema has %d", len(row), len(schema))
	}
	for i, v := range row {
		if v.Kind != schema[i].Kind && v.Kind != keyenc.KindNull {
			return fmt.Errorf("engine: column %q: got %s, want %s", schema[i].Name, v.Kind, schema[i].Kind)
		}
	}
	return nil
}

// indexKey extracts an index's key value from a row: "the concatenation of
// the values of the columns over which the index is defined" in the
// order-preserving encoding.
func indexKey(ix *catalog.Index, row Row) ([]byte, error) {
	var key []byte
	for _, c := range ix.Columns {
		if c < 0 || c >= len(row) {
			return nil, fmt.Errorf("engine: index %q references column %d of %d-column row", ix.Name, c, len(row))
		}
		key = keyenc.Append(key, row[c])
	}
	return key, nil
}

// AppendIndexKeyFromRecord appends ix's key for the encoded heap record rec
// onto dst and returns the extended slice, without materializing a Row.
// EncodeRow stores every column as its canonical order-preserving keyenc
// encoding, so the key — "the concatenation of the values of the columns
// over which the index is defined" — is a straight copy of the stored column
// byte ranges; the bytes are identical to what decode + keyenc.Append would
// produce. Each copied range is still validated (a well-formed encoding
// spanning exactly the stored column length), so corruption in an indexed
// column is caught exactly where the decoding path would have caught it.
//
// This is the build scan's per-record hot path: the decoding version costs
// ~8 heap allocations per record (Row, per-column copies, string
// conversions, key growth); this one costs none beyond dst growth.
func AppendIndexKeyFromRecord(dst []byte, ix *catalog.Index, rec []byte) ([]byte, error) {
	if len(rec) < 2 {
		return nil, enc.ErrShort
	}
	ncols := int(binary.LittleEndian.Uint16(rec))
	maxCol := -1
	for _, c := range ix.Columns {
		if c < 0 || c >= ncols {
			return nil, fmt.Errorf("engine: index %q references column %d of %d-column row", ix.Name, c, ncols)
		}
		if c > maxCol {
			maxCol = c
		}
	}
	// Walk the stored columns up to the highest one the index references,
	// recording their byte ranges. The fixed array keeps typical schemas
	// (a handful of columns) off the heap.
	var offsArr [16][2]int
	offs := offsArr[:0]
	if maxCol >= len(offsArr) {
		offs = make([][2]int, 0, maxCol+1)
	}
	pos := 2
	for c := 0; c <= maxCol; c++ {
		if len(rec)-pos < 4 {
			return nil, enc.ErrShort
		}
		n := int(binary.LittleEndian.Uint32(rec[pos:]))
		pos += 4
		if len(rec)-pos < n {
			return nil, enc.ErrShort
		}
		offs = append(offs, [2]int{pos, n})
		pos += n
	}
	for _, c := range ix.Columns {
		col := rec[offs[c][0] : offs[c][0]+offs[c][1]]
		n, err := keyenc.EncodedLen(col)
		if err != nil {
			return nil, err
		}
		if n != len(col) {
			return nil, fmt.Errorf("engine: trailing bytes in column %d", c)
		}
		dst = append(dst, col...)
	}
	return dst, nil
}

// indexKeyFromRecord extracts the key directly from an encoded heap record.
func indexKeyFromRecord(ix *catalog.Index, rec []byte) ([]byte, error) {
	return AppendIndexKeyFromRecord(nil, ix, rec)
}

// IndexKeyFromRecord is indexKeyFromRecord for the index builders: "the
// index-builder scans the data pages, builds index keys" (§1.1).
func IndexKeyFromRecord(ix *catalog.Index, rec []byte) ([]byte, error) {
	return indexKeyFromRecord(ix, rec)
}

// IndexKey extracts an index key from a decoded row.
func IndexKey(ix *catalog.Index, row Row) ([]byte, error) { return indexKey(ix, row) }
