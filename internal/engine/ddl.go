package engine

import (
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/lock"
	"onlineindex/internal/rm"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// CreateTable creates a table and opens its heap. DDL is logged redo-only
// and committed immediately.
func (db *DB) CreateTable(name string, schema catalog.Schema) (catalog.Table, error) {
	t := catalog.Table{
		ID:     db.cat.NextTableID(),
		Name:   name,
		FileID: db.cat.AllocFileID(),
		Schema: schema,
	}
	tx := db.Begin()
	if _, err := tx.Log(&wal.Record{
		Type: wal.TypeCreateTable, Flags: wal.FlagRedo,
		Payload: catalog.EncodeCreateTable(&t),
	}); err != nil {
		return catalog.Table{}, err
	}
	if err := db.cat.AddTable(&t); err != nil {
		return catalog.Table{}, err
	}
	h, err := heap.Open(db.pool, t.FileID)
	if err != nil {
		return catalog.Table{}, err
	}
	db.mu.Lock()
	db.tables[t.ID] = h
	db.mu.Unlock()
	db.installZoneMap(t.ID, h)
	if err := tx.Commit(); err != nil {
		return catalog.Table{}, err
	}
	return t, nil
}

// CreateIndexSpec describes a new index.
type CreateIndexSpec struct {
	Name    string
	Table   string
	Columns []string // column names
	Unique  bool
	Method  catalog.BuildMethod
}

// CreateIndexDescriptor performs the descriptor-creation step of an index
// build — the step whose quiescing behaviour distinguishes the algorithms:
//
//   - NSF: "this is a short term quiesce of updates against the table ...
//     achieved by IB acquiring a share (S) lock on the table and holding it
//     for the duration of the index descriptor create operation" (§2.2.1).
//     The quiesce guarantees no transaction has uncommitted updates that
//     predate the descriptor, so every later rollback finds its index log
//     records. The lock is released as soon as the descriptor commit is
//     durable.
//   - SF: "the descriptor for the new index is created and appended ...
//     without quiescing (update) transactions" (§3.2.1).
//   - Offline: the caller holds the table S lock for the whole build.
//
// The returned transaction has already committed. The BuildCtl must be
// registered by the caller *before* calling this for SF (transactions start
// consulting it the moment the descriptor is visible).
func (db *DB) CreateIndexDescriptor(spec CreateIndexSpec) (catalog.Index, error) {
	return db.CreateIndexDescriptorWithCtl(spec, nil)
}

// CreateIndexDescriptorWithCtl is CreateIndexDescriptor with a hook that
// supplies the build control to register together with the descriptor: the
// SF algorithm's Index_Build flag and Current-RID must be observable by the
// very first transaction that sees the new descriptor.
func (db *DB) CreateIndexDescriptorWithCtl(spec CreateIndexSpec, makeCtl func(catalog.Index) *BuildCtl) (catalog.Index, error) {
	tbl, ok := db.cat.Table(spec.Table)
	if !ok {
		return catalog.Index{}, fmt.Errorf("engine: no table %q", spec.Table)
	}
	var cols []int
	for _, cn := range spec.Columns {
		found := -1
		for i, c := range tbl.Schema {
			if c.Name == cn {
				found = i
				break
			}
		}
		if found < 0 {
			return catalog.Index{}, fmt.Errorf("engine: table %q has no column %q", spec.Table, cn)
		}
		cols = append(cols, found)
	}

	ix := catalog.Index{
		ID:      db.cat.NextIndexID(),
		Name:    spec.Name,
		Table:   tbl.ID,
		FileID:  db.cat.AllocFileID(),
		Columns: cols,
		Unique:  spec.Unique,
		Method:  spec.Method,
		State:   catalog.StateBuilding,
	}
	if spec.Method == catalog.MethodSF {
		ix.SideFile = db.cat.AllocFileID()
	}

	tx := db.Begin()
	quiesced := spec.Method == catalog.MethodNSF
	if quiesced {
		// The short-term quiesce: waits out all update transactions (they
		// hold IX on the table) and blocks new ones until the descriptor
		// commit.
		if err := tx.Lock(lock.TableName(tbl.ID), lock.S); err != nil {
			tx.Rollback()
			return catalog.Index{}, err
		}
	}

	if _, err := tx.Log(&wal.Record{
		Type: wal.TypeCreateIndex, Flags: wal.FlagRedo,
		Payload: catalog.EncodeCreateIndex(&ix),
	}); err != nil {
		tx.Rollback()
		return catalog.Index{}, err
	}

	// Create the physical structures.
	tree, err := btree.Create(db.pool, ix.FileID, btree.Config{Unique: ix.Unique, Budget: db.cfg.TreeBudget}, tx)
	if err != nil {
		tx.Rollback()
		return catalog.Index{}, err
	}
	tree.SetMetrics(btree.MetricsFrom(db.met))
	var sf *sidefile.File
	if ix.SideFile != 0 {
		sf, err = sidefile.Create(db.pool, ix.SideFile, tx)
		if err != nil {
			tx.Rollback()
			return catalog.Index{}, err
		}
		sf.SetMetrics(sidefile.MetricsFrom(db.met))
	}

	// Install in the catalog and open handles — under the engine mutex so
	// the descriptor, tree, side-file and build control appear to
	// transactions atomically.
	db.mu.Lock()
	if err := db.cat.AddIndex(&ix); err != nil {
		db.mu.Unlock()
		tx.Rollback()
		return catalog.Index{}, err
	}
	db.trees[ix.ID] = tree
	db.treeFiles[ix.FileID] = ix.ID
	if sf != nil {
		db.sfiles[ix.ID] = sf
	}
	if makeCtl != nil {
		db.builds[ix.ID] = makeCtl(ix)
	}
	db.mu.Unlock()

	// Commit makes the DDL durable and, for NSF, ends the quiesce.
	if err := tx.Commit(); err != nil {
		return catalog.Index{}, err
	}
	return ix, nil
}

// SetIndexComplete transitions a built index to the readable state; the
// state-change record's LSN becomes the index's CompleteLSN (the watershed
// between side-file-era and direct-era updates that rollback consults).
func (db *DB) SetIndexComplete(tl rm.TxnLogger, ix types.IndexID) error {
	pl := catalog.StateChangePayload{Index: ix, State: catalog.StateComplete}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIndexStateChange, Flags: wal.FlagRedo,
		Payload: pl.Encode(),
	})
	if err != nil {
		return err
	}
	return db.cat.SetIndexState(ix, catalog.StateComplete, lsn)
}

// DropIndex removes an index (or cancels a build, §2.3.2: "since canceling
// an in-progress index build requires that the descriptor of the index be
// deleted, we need to quiesce update transactions by acquiring a share lock
// on the table"). The same quiesce covers ordinary drops: "an index cannot
// be dropped while update transactions are active" (§3 footnote).
func (db *DB) DropIndex(name string) error {
	ix, ok := db.cat.Index(name)
	if !ok {
		return fmt.Errorf("engine: no index %q", name)
	}
	tx := db.Begin()
	if err := tx.Lock(lock.TableName(ix.Table), lock.S); err != nil {
		tx.Rollback()
		return err
	}
	pl := catalog.StateChangePayload{Index: ix.ID, State: catalog.StateDropped}
	if _, err := tx.Log(&wal.Record{
		Type: wal.TypeDropIndex, Flags: wal.FlagRedo,
		Payload: pl.Encode(),
	}); err != nil {
		tx.Rollback()
		return err
	}
	if err := db.cat.SetIndexState(ix.ID, catalog.StateDropped, types.NilLSN); err != nil {
		tx.Rollback()
		return err
	}
	db.mu.Lock()
	delete(db.trees, ix.ID)
	delete(db.treeFiles, ix.FileID)
	delete(db.sfiles, ix.ID)
	delete(db.builds, ix.ID)
	delete(db.lastIBCkpt, ix.ID)
	delete(db.rcaches, ix.ID)
	db.mu.Unlock()
	return tx.Commit()
}

// QuiesceTable acquires a table S lock under a dedicated transaction and
// returns it; the offline baseline holds it for the whole build. Callers
// must Commit (or Rollback) the returned transaction to end the quiesce.
func (db *DB) QuiesceTable(table types.TableID) (*txn.Txn, error) {
	tx := db.Begin()
	if err := tx.Lock(lock.TableName(table), lock.S); err != nil {
		tx.Rollback()
		return nil, err
	}
	return tx, nil
}
