package engine

import (
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// ErrIndexNotReadable is returned when an index is used as an access path
// before its build completes: "the index is still not available to the
// transactions to use it as an access path for retrievals. Such usage has to
// be delayed until the entire index is built" (§2.2.1).
type ErrIndexNotReadable struct{ Name string }

func (e *ErrIndexNotReadable) Error() string {
	return fmt.Sprintf("engine: index %q is still being built and cannot be read", e.Name)
}

// IndexLookup returns the RIDs matching the key values in the named
// (complete) index.
func (db *DB) IndexLookup(tx *txn.Txn, index string, vals ...keyenc.Value) ([]types.RID, error) {
	ix, tree, err := db.readableIndex(index)
	if err != nil {
		return nil, err
	}
	_ = ix
	_ = tx
	return tree.Lookup(keyenc.Encode(vals...))
}

// IndexScan streams the live entries of a complete index with lo <= key <=
// hi (nil bounds are open). fn returning false stops the scan.
func (db *DB) IndexScan(tx *txn.Txn, index string, lo, hi []keyenc.Value, fn func(key []byte, rid types.RID) bool) error {
	_, tree, err := db.readableIndex(index)
	if err != nil {
		return err
	}
	_ = tx
	var loB, hiB []byte
	if lo != nil {
		loB = keyenc.Encode(lo...)
	}
	if hi != nil {
		hiB = keyenc.Encode(hi...)
	}
	return tree.ScanRange(loB, hiB, func(e btree.Entry) bool {
		if e.Pseudo {
			return true
		}
		return fn(e.Key, e.RID)
	})
}

func (db *DB) readableIndex(name string) (catalog.Index, *btree.Tree, error) {
	ix, ok := db.cat.Index(name)
	if !ok {
		return catalog.Index{}, nil, fmt.Errorf("engine: no index %q", name)
	}
	if ix.State != catalog.StateComplete {
		return catalog.Index{}, nil, &ErrIndexNotReadable{Name: name}
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return catalog.Index{}, nil, err
	}
	return ix, tree, nil
}

// TableScan streams every live row of a table in RID order (no record
// locking: the harness uses it at quiescent points; concurrent use sees
// latch-consistent page states).
func (db *DB) TableScan(table string, fn func(rid types.RID, row Row) error) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return err
	}
	return h.Scan(func(rid types.RID, rec []byte) error {
		row, err := DecodeRow(rec)
		if err != nil {
			return err
		}
		return fn(rid, row)
	})
}

// CheckIndexConsistency verifies that a complete index exactly reflects its
// table: every row's key has a live entry, no live entry lacks a row, and
// unique indexes have no duplicate key values. It is the harness's ground
// truth after every experiment.
func (db *DB) CheckIndexConsistency(index string) error {
	ix, ok := db.cat.Index(index)
	if !ok {
		return fmt.Errorf("engine: no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return err
	}
	tbl, _ := db.cat.TableByID(ix.Table)
	h, err := db.heapOf(ix.Table)
	if err != nil {
		return err
	}

	want := make(map[string]types.RID) // key+rid -> rid
	err = h.Scan(func(rid types.RID, rec []byte) error {
		key, err := indexKeyFromRecord(&ix, rec)
		if err != nil {
			return err
		}
		want[string(key)+"|"+rid.String()] = rid
		return nil
	})
	if err != nil {
		return err
	}

	got := 0
	var verr error
	uniqueSeen := make(map[string]types.RID)
	err = tree.ScanRange(nil, nil, func(e btree.Entry) bool {
		if e.Pseudo {
			return true
		}
		got++
		k := string(e.Key) + "|" + e.RID.String()
		if _, ok := want[k]; !ok {
			verr = fmt.Errorf("engine: index %q has live entry <%x,%s> with no matching row", index, e.Key, e.RID)
			return false
		}
		if ix.Unique {
			if prev, dup := uniqueSeen[string(e.Key)]; dup {
				verr = fmt.Errorf("engine: unique index %q has duplicate key %x (records %s, %s)", index, e.Key, prev, e.RID)
				return false
			}
			uniqueSeen[string(e.Key)] = e.RID
		}
		delete(want, k)
		return true
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if len(want) != 0 {
		for k, rid := range want {
			// Distinguish "entry absent" from "entry present but
			// pseudo-deleted" — different bugs.
			keyPart := k[:len(k)-len("|")-len(rid.String())]
			found, pseudo, _ := tree.SearchEntry([]byte(keyPart), rid)
			return fmt.Errorf("engine: index %q (table %q) is missing entry %q (%d missing of %d rows; exact entry found=%v pseudo=%v)",
				index, tbl.Name, k, len(want), got+len(want), found, pseudo)
		}
	}
	return nil
}
