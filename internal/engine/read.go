package engine

import (
	"bytes"
	"errors"
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/lock"
	"onlineindex/internal/readcache"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/zonemap"
)

// ErrIndexNotReadable is returned when an index is used as an access path
// before its build completes: "the index is still not available to the
// transactions to use it as an access path for retrievals. Such usage has to
// be delayed until the entire index is built" (§2.2.1).
type ErrIndexNotReadable struct{ Name string }

func (e *ErrIndexNotReadable) Error() string {
	return fmt.Sprintf("engine: index %q is still being built and cannot be read", e.Name)
}

// IndexLookup returns the RIDs whose index key equals the given values, with
// an S record lock held on each returned RID for the rest of the
// transaction (data-only locking: the record lock IS the key lock, §6.2).
//
// Two paths. The hash fast path consults the read cache: on a hit it takes
// conditional (non-waiting) S locks on every cached entry and then
// re-validates the cache version — every writer invalidates the key while
// still holding its X locks, so an unchanged version after our locks are
// granted proves the cached run equals the committed tree state. Any
// would-block or version change falls back to the tree path, which descends
// the tree, refills the cache, and runs the full per-entry lock protocol
// (blocking S locks on live entries, the conditional-instant probe on
// pseudo-deleted ones, re-checking the entry state after every wait).
func (db *DB) IndexLookup(tx *txn.Txn, index string, vals ...keyenc.Value) ([]types.RID, error) {
	ix, tree, err := db.readableIndex(index)
	if err != nil {
		return nil, err
	}
	if tx == nil {
		// Quiescent-point read (harness/oracle use): no locks, no cache.
		return tree.Lookup(keyenc.Encode(vals...))
	}
	if err := tx.Lock(lock.TableName(ix.Table), lock.IS); err != nil {
		return nil, err
	}
	key := keyenc.Encode(vals...)
	rc := db.readCacheOf(ix.ID)
	if rc != nil {
		if rids, ok := db.lookupFast(tx, rc, key); ok {
			return rids, nil
		}
	}
	return db.lookupTree(tx, rc, tree, key)
}

// lookupFast is the hash-hit path; ok=false sends the caller to the tree
// path. No tree descent and no lock-manager waiting happen here: every lock
// is conditional, and the version re-validation after the locks are granted
// is what makes the cached run trustworthy — a writer that changed the key's
// entry run between our Get and our locks must have bumped the version
// before releasing the X locks our grants waited on.
func (db *DB) lookupFast(tx *txn.Txn, rc *readcache.Cache, key []byte) ([]types.RID, bool) {
	entries, ver, ok := rc.Get(key)
	if !ok {
		return nil, false
	}
	for _, e := range entries {
		if e.Pseudo {
			// A granted instant probe proves the deleter terminated — but an
			// aborted deleter reactivates the entry, which bumps the version
			// and fails Validate below, so skipping here is safe.
			if tx.LockConditionalInstant(lock.RecordName(e.RID), lock.S) != nil {
				return nil, false
			}
		} else {
			if tx.LockConditional(lock.RecordName(e.RID), lock.S) != nil {
				return nil, false
			}
		}
	}
	if !rc.Validate(key, ver) {
		return nil, false
	}
	rids := make([]types.RID, 0, len(entries))
	for _, e := range entries {
		if !e.Pseudo {
			rids = append(rids, e.RID)
		}
	}
	return rids, true
}

// lookupTree is the tree path: scan the key's entry run, refill the cache,
// and apply the read lock protocol entry by entry.
func (db *DB) lookupTree(tx *txn.Txn, rc *readcache.Cache, tree *btree.Tree, key []byte) ([]types.RID, error) {
	var fillVer uint64
	if rc != nil {
		fillVer = rc.Begin(key)
	}
	var run []readcache.Entry
	err := tree.ScanRange(key, key, func(e btree.Entry) bool {
		run = append(run, readcache.Entry{RID: e.RID, Pseudo: e.Pseudo})
		return true
	})
	if err != nil {
		return nil, err
	}
	if rc != nil {
		// Fill before locking: if any writer changes the run while we wait on
		// locks below, it bumps the version and the fill is already dead.
		rc.Put(key, fillVer, run)
	}
	var rids []types.RID
	for _, e := range run {
		visible, err := db.verifyEntry(tx, tree, key, e.RID, e.Pseudo)
		if err != nil {
			return nil, err
		}
		if visible {
			rids = append(rids, e.RID)
		}
	}
	return rids, nil
}

// IndexScan streams the live entries of a complete index with lo <= key <=
// hi (nil bounds are open) in key order, S-locking each returned record. fn
// returning false stops the scan. The scan uses a latch-coupled cursor:
// between batches the tree is completely unlatched, so concurrent splits,
// GC and DML proceed; each entry's liveness is re-verified after its lock is
// acquired, so the results are committed reads.
func (db *DB) IndexScan(tx *txn.Txn, index string, lo, hi []keyenc.Value, fn func(key []byte, rid types.RID) bool) error {
	ix, tree, err := db.readableIndex(index)
	if err != nil {
		return err
	}
	if tx != nil {
		if err := tx.Lock(lock.TableName(ix.Table), lock.IS); err != nil {
			return err
		}
	}
	var loB, hiB []byte
	if lo != nil {
		loB = keyenc.Encode(lo...)
	}
	if hi != nil {
		hiB = keyenc.Encode(hi...)
	}
	c := tree.NewCursor(loB, hiB)
	for {
		e, ok, err := c.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		visible := !e.Pseudo // nil tx: quiescent-point read, no lock protocol
		if tx != nil {
			if visible, err = db.verifyEntry(tx, tree, e.Key, e.RID, e.Pseudo); err != nil {
				return err
			}
		}
		if visible && !fn(e.Key, e.RID) {
			return nil
		}
	}
}

// verifyEntry applies the read lock protocol to one index entry observed
// without locks (from a cursor batch or a cache run) and reports whether the
// entry is a committed live entry the reader may return. On return the
// reader holds an S lock on the RID iff visible.
//
//   - live entry: blocking S lock (waits out a concurrent deleter), then
//     re-check — the entry may have gone pseudo (deleter committed) or
//     vanished (GC) while we waited or between observation and lock;
//   - pseudo entry: conditional instant S probe. Granted means its writer
//     has terminated, but termination may have been an abort that
//     reactivated the entry, so re-check rather than skip. Would-block means
//     the deleter is still active; wait it out with a blocking instant lock
//     and then re-check.
func (db *DB) verifyEntry(tx *txn.Txn, tree *btree.Tree, key []byte, rid types.RID, pseudo bool) (bool, error) {
	if pseudo {
		if err := tx.LockConditionalInstant(lock.RecordName(rid), lock.S); err != nil {
			if !errors.Is(err, lock.ErrWouldBlock) {
				return false, err
			}
			if err := tx.LockInstant(lock.RecordName(rid), lock.S); err != nil {
				return false, err
			}
		}
		found, stillPseudo, err := tree.SearchEntry(key, rid)
		if err != nil || !found || stillPseudo {
			return false, err
		}
		// Reactivated under us (the deleter rolled back): fall through to the
		// live-entry protocol.
	}
	if err := tx.Lock(lock.RecordName(rid), lock.S); err != nil {
		return false, err
	}
	found, stillPseudo, err := tree.SearchEntry(key, rid)
	if err != nil {
		return false, err
	}
	return found && !stillPseudo, nil
}

func (db *DB) readableIndex(name string) (catalog.Index, *btree.Tree, error) {
	ix, ok := db.cat.Index(name)
	if !ok {
		return catalog.Index{}, nil, fmt.Errorf("engine: no index %q", name)
	}
	if ix.State != catalog.StateComplete {
		return catalog.Index{}, nil, &ErrIndexNotReadable{Name: name}
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return catalog.Index{}, nil, err
	}
	return ix, tree, nil
}

// TableScan streams every live row of a table in RID order (no record
// locking: the harness uses it at quiescent points; concurrent use sees
// latch-consistent page states).
func (db *DB) TableScan(table string, fn func(rid types.RID, row Row) error) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return err
	}
	return h.Scan(func(rid types.RID, rec []byte) error {
		row, err := DecodeRow(rec)
		if err != nil {
			return err
		}
		return fn(rid, row)
	})
}

// Predicate is a single-column range restriction for SeqScan: keep rows with
// Lo <= row[Col] <= Hi in keyenc order. Nil bounds are open; a nil Predicate
// matches every row.
type Predicate struct {
	Col int
	Lo  *keyenc.Value
	Hi  *keyenc.Value
}

func (p *Predicate) bounds() (col int, lo, hi []byte) {
	if p == nil {
		return -1, nil, nil
	}
	col = p.Col
	if p.Lo != nil {
		lo = keyenc.Encode(*p.Lo)
	}
	if p.Hi != nil {
		hi = keyenc.Encode(*p.Hi)
	}
	return col, lo, hi
}

// match evaluates the predicate against a record's raw column encodings.
func (p *Predicate) match(cols [][]byte) bool {
	if p == nil {
		return true
	}
	if p.Col < 0 || p.Col >= len(cols) {
		return false
	}
	v := cols[p.Col]
	if p.Lo != nil && bytes.Compare(v, keyenc.Encode(*p.Lo)) < 0 {
		return false
	}
	if p.Hi != nil && bytes.Compare(v, keyenc.Encode(*p.Hi)) > 0 {
		return false
	}
	return true
}

// SeqScan streams the table's rows that satisfy pred in RID order, with an S
// record lock on each returned row. The scan is block-at-a-time: the
// table's zone map is consulted per block, blocks whose summary excludes the
// predicate range (or that hold no live rows) are skipped without touching
// their pages, and unknown blocks are summarized as a side effect of
// scanning them (installed only if no DML raced the block — the map's
// version check). Each candidate row is re-read and re-checked after its
// lock is granted, so results are committed reads; rows inserted behind the
// scan position are not revisited (the usual cursor-stability contract).
func (db *DB) SeqScan(tx *txn.Txn, table string, pred *Predicate, fn func(rid types.RID, row Row) bool) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return err
	}
	if tx != nil {
		if err := tx.Lock(lock.TableName(tbl.ID), lock.IS); err != nil {
			return err
		}
	}
	zm := db.zoneMapOf(tbl.ID)
	nPages, err := h.PageCount()
	if err != nil {
		return err
	}
	col, loB, hiB := pred.bounds()

	blockPages := types.PageNum(8)
	if zm != nil {
		blockPages = types.PageNum(zm.BlockPages())
	}
	for blkStart := types.PageNum(0); blkStart < nPages; blkStart += blockPages {
		blkEnd := blkStart + blockPages
		if blkEnd > nPages {
			blkEnd = nPages
		}
		blk := int(blkStart / blockPages)
		if zm != nil && zm.CanPrune(blk, col, loB, hiB) {
			continue
		}
		rebuild := zm != nil && !zm.Known(blk)
		var ver uint64
		var sum zonemap.Summary
		if rebuild {
			ver = zm.BeginRebuild(blk)
		}

		// Collect candidates under the page S latches, then lock and re-read
		// them off-latch (lock-then-latch would invert the latch order).
		var cands []types.RID
		for p := blkStart; p < blkEnd; p++ {
			err := h.VisitPage(p, func(rid types.RID, rec []byte) error {
				cols := colSlices(rec)
				if rebuild {
					sum.AddRow(cols, colIsNull)
				}
				if pred.match(cols) {
					cands = append(cands, rid)
				}
				return nil
			}, nil)
			if err != nil {
				return err
			}
		}
		if rebuild {
			zm.CompleteRebuild(blk, ver, sum)
		}

		for _, rid := range cands {
			if tx != nil {
				if err := tx.Lock(lock.RecordName(rid), lock.S); err != nil {
					return err
				}
			}
			rec, found, err := h.Get(rid)
			if err != nil {
				return err
			}
			if !found || !pred.match(colSlices(rec)) {
				continue // deleted or mutated out of range while we waited
			}
			row, err := DecodeRow(rec)
			if err != nil {
				return err
			}
			if !fn(rid, row) {
				return nil
			}
		}
	}
	return nil
}

// CheckIndexConsistency verifies that a complete index exactly reflects its
// table: every row's key has a live entry, no live entry lacks a row, and
// unique indexes have no duplicate key values. It is the harness's ground
// truth after every experiment.
func (db *DB) CheckIndexConsistency(index string) error {
	ix, ok := db.cat.Index(index)
	if !ok {
		return fmt.Errorf("engine: no index %q", index)
	}
	tree, err := db.TreeOf(ix.ID)
	if err != nil {
		return err
	}
	tbl, _ := db.cat.TableByID(ix.Table)
	h, err := db.heapOf(ix.Table)
	if err != nil {
		return err
	}

	want := make(map[string]types.RID) // key+rid -> rid
	err = h.Scan(func(rid types.RID, rec []byte) error {
		key, err := indexKeyFromRecord(&ix, rec)
		if err != nil {
			return err
		}
		want[string(key)+"|"+rid.String()] = rid
		return nil
	})
	if err != nil {
		return err
	}

	got := 0
	var verr error
	uniqueSeen := make(map[string]types.RID)
	err = tree.ScanRange(nil, nil, func(e btree.Entry) bool {
		if e.Pseudo {
			return true
		}
		got++
		k := string(e.Key) + "|" + e.RID.String()
		if _, ok := want[k]; !ok {
			verr = fmt.Errorf("engine: index %q has live entry <%x,%s> with no matching row", index, e.Key, e.RID)
			return false
		}
		if ix.Unique {
			if prev, dup := uniqueSeen[string(e.Key)]; dup {
				verr = fmt.Errorf("engine: unique index %q has duplicate key %x (records %s, %s)", index, e.Key, prev, e.RID)
				return false
			}
			uniqueSeen[string(e.Key)] = e.RID
		}
		delete(want, k)
		return true
	})
	if err != nil {
		return err
	}
	if verr != nil {
		return verr
	}
	if len(want) != 0 {
		for k, rid := range want {
			// Distinguish "entry absent" from "entry present but
			// pseudo-deleted" — different bugs.
			keyPart := k[:len(k)-len("|")-len(rid.String())]
			found, pseudo, _ := tree.SearchEntry([]byte(keyPart), rid)
			return fmt.Errorf("engine: index %q (table %q) is missing entry %q (%d missing of %d rows; exact entry found=%v pseudo=%v)",
				index, tbl.Name, k, len(want), got+len(want), found, pseudo)
		}
	}
	return nil
}
