package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"onlineindex/internal/keyenc"
	"onlineindex/internal/lock"
	"onlineindex/internal/types"
)

// TestReadPathStress hammers every read primitive while writers churn the
// table, a GC goroutine physically removes pseudo-deleted entries, and the
// hash point-lookup cache is filled and invalidated under their feet. Run
// under -race this is the read path's schedule fuzzer; the assertions are
// the locking invariants the race detector cannot see:
//
//   - every RID a lookup returns is, while the lookup transaction's S locks
//     are still held, a live heap row bearing the looked-up key;
//   - an index scan yields strictly increasing (key, RID) pairs — no
//     duplicates, no order inversions across leaf boundaries, whatever
//     splits and GC did meanwhile;
//   - a predicate-pushdown sequential scan returns only rows matching the
//     predicate.
//
// Deadlocks are expected (readers lock in key order, writers in RID order)
// and handled the way applications do: roll back and retry.
func TestReadPathStress(t *testing.T) {
	dur := 800 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)

	// 50 distinct names × 8 rows each: multi-RID key runs for the cache.
	nameOf := func(id int64) string { return fmt.Sprintf("n-%03d", id%50) }
	const seedRows = 400
	var seed []types.RID
	tx := db.Begin()
	for i := int64(0); i < seedRows; i++ {
		rid, err := db.Insert(tx, "items", rowOf(i, nameOf(i), i%11))
		if err != nil {
			t.Fatal(err)
		}
		seed = append(seed, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	failf := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}
	tolerable := func(err error) bool {
		return err == nil || errors.Is(err, lock.ErrDeadlock)
	}

	// Writers: each owns a disjoint slice of the seed rows and a private id
	// range, and cycles insert/update/delete/rollback against them.
	const writers = 2
	for w := 0; w < writers; w++ {
		mine := append([]types.RID(nil), seed[w*seedRows/writers:(w+1)*seedRows/writers]...)
		wg.Add(1)
		go func(w int, mine []types.RID) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*101 + 7))
			nextID := int64(1_000_000 * (w + 1))
			for !stop.Load() {
				tx := db.Begin()
				var err error
				commitHook := func() {}
				switch rng.Intn(4) {
				case 0:
					nextID++
					var rid types.RID
					rid, err = db.Insert(tx, "items", rowOf(nextID, nameOf(nextID), nextID%11))
					commitHook = func() { mine = append(mine, rid) }
				case 1:
					if len(mine) == 0 {
						tx.Rollback()
						continue
					}
					k := rng.Intn(len(mine))
					err = db.Delete(tx, "items", mine[k])
					commitHook = func() { mine = append(mine[:k], mine[k+1:]...) }
				case 2:
					if len(mine) == 0 {
						tx.Rollback()
						continue
					}
					k := rng.Intn(len(mine))
					nextID++
					var rid types.RID
					rid, err = db.Update(tx, "items", mine[k], rowOf(nextID, nameOf(nextID), nextID%11))
					commitHook = func() { mine[k] = rid }
				default:
					// A rollback cycle: do a change and abort it, so readers
					// race undo-driven cache invalidation and pseudo-delete
					// reactivation.
					if len(mine) > 0 {
						_ = db.Delete(tx, "items", mine[rng.Intn(len(mine))])
					}
					tx.Rollback()
					continue
				}
				if err != nil {
					tx.Rollback()
					if !tolerable(err) {
						failf("writer %d: %v", w, err)
						return
					}
					continue
				}
				if err := tx.Commit(); err != nil {
					failf("writer %d commit: %v", w, err)
					return
				}
				commitHook()
			}
		}(w, mine)
	}

	// GC: §2.2.4 physical removal of committed pseudo-deleted entries,
	// racing the scans' latch coupling and the cache's cached runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ix, _ := db.Catalog().Index("by_name")
		tree, err := db.TreeOf(ix.ID)
		if err != nil {
			failf("gc: %v", err)
			return
		}
		for !stop.Load() {
			tx := db.Begin()
			commitLSN := db.Txns().CommitLSN()
			_, err := tree.GC(tx,
				func(pageLSN types.LSN) bool { return pageLSN < commitLSN },
				func(key []byte, rid types.RID) bool {
					return tx.LockConditionalInstant(lock.RecordName(rid), lock.S) == nil
				})
			if err != nil {
				tx.Rollback()
				failf("gc: %v", err)
				return
			}
			if err := tx.Commit(); err != nil {
				failf("gc commit: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Point lookups: hot keys, so the cache cycles fill→hit→invalidate.
	// While the lookup tx's S locks are held, every returned RID must be a
	// live row with the looked-up name.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)*977 + 3))
			for !stop.Load() {
				name := fmt.Sprintf("n-%03d", rng.Intn(50))
				tx := db.Begin()
				rids, err := db.IndexLookup(tx, "by_name", keyenc.String(name))
				if err != nil {
					tx.Rollback()
					if !tolerable(err) {
						failf("lookup %q: %v", name, err)
						return
					}
					continue
				}
				for _, rid := range rids {
					row, ok, err := db.Get(tx, "items", rid)
					if err != nil || !ok {
						failf("lookup %q returned rid %v: Get ok=%v err=%v", name, rid, ok, err)
						tx.Rollback()
						return
					}
					if row[1].S != name {
						failf("lookup %q returned rid %v whose row has name %q", name, rid, row[1].S)
						tx.Rollback()
						return
					}
				}
				tx.Rollback()
			}
		}(r)
	}

	// Range scans: strictly increasing (key, RID) order end to end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			tx := db.Begin()
			var lastKey []byte
			var lastRID types.RID
			n := 0
			err := db.IndexScan(tx, "by_name", nil, nil, func(key []byte, rid types.RID) bool {
				if lastKey != nil {
					if c := bytes.Compare(lastKey, key); c > 0 || (c == 0 && lastRID.Compare(rid) >= 0) {
						failf("scan order inversion: <%x,%v> then <%x,%v>", lastKey, lastRID, key, rid)
						return false
					}
				}
				lastKey = append(lastKey[:0], key...)
				lastRID = rid
				n++
				return true
			})
			tx.Rollback()
			if !tolerable(err) {
				failf("scan: %v", err)
				return
			}
			if err == nil && n == 0 {
				failf("scan returned no entries from a table that always has rows")
				return
			}
		}
	}()

	// Sequential scans with a qty predicate: zone-map pruning and the
	// opportunistic rebuilds race the writers; only matching rows may come
	// back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			lo, hi := keyenc.Int64(3), keyenc.Int64(7)
			tx := db.Begin()
			err := db.SeqScan(tx, "items", &Predicate{Col: 2, Lo: &lo, Hi: &hi},
				func(rid types.RID, row Row) bool {
					if row[2].I < 3 || row[2].I > 7 {
						failf("seqscan returned qty %d outside [3,7]", row[2].I)
						return false
					}
					return true
				})
			tx.Rollback()
			if !tolerable(err) {
				failf("seqscan: %v", err)
				return
			}
		}
	}()

	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}
