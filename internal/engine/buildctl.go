package engine

import (
	"sync"

	"onlineindex/internal/catalog"
	"onlineindex/internal/types"
)

// BuildPhase is where an in-progress index build stands, as far as the DML
// path needs to know.
type BuildPhase uint8

// Build phases relevant to transactions.
const (
	// PhaseCapture (SF): the Index_Build flag is set; transactions route
	// changes behind the scan position to the side-file.
	PhaseCapture BuildPhase = iota + 1
	// PhaseDirect: transactions maintain the index directly. This is the
	// whole build for NSF ("the new index is visible for key insert and
	// delete operations by transactions" from descriptor creation, §2.2.1)
	// and the post-side-file tail for SF.
	PhaseDirect
	// PhaseFrozen (offline baseline): updates are excluded by the table
	// lock; transactions never see this phase in a decide callback.
	PhaseFrozen
)

// BuildCtl is the runtime state of one in-progress index build, shared
// between the index builder and the transactions' DML path. It carries the
// two pieces of shared state the SF algorithm depends on — the Index_Build
// flag (as Phase) and the builder's Current-RID scan position — plus the
// switch gate that makes the final side-file drain atomic.
type BuildCtl struct {
	Index  types.IndexID
	Method catalog.BuildMethod

	mu      sync.Mutex
	phase   BuildPhase
	current types.RID // SF scan position (Current-RID)

	// gate spans a transaction's [visibility decision .. side-file append]
	// window in read mode; the builder takes it in write mode for the final
	// switch (drain the side-file tail, set PhaseDirect), so no append can
	// slip in after the builder has read the final count. The paper leaves
	// this switch protocol implicit ("after processing the last entry in
	// the side-file, IB resets the Index_Build flag"); the gate is the
	// minimal mutual exclusion that makes it exact.
	gate sync.RWMutex
}

// NewBuildCtl returns build state in the given phase.
func NewBuildCtl(ix types.IndexID, method catalog.BuildMethod, phase BuildPhase) *BuildCtl {
	return &BuildCtl{Index: ix, Method: method, phase: phase}
}

// Phase returns the current phase.
func (b *BuildCtl) Phase() BuildPhase {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.phase
}

// SetPhase transitions the phase.
func (b *BuildCtl) SetPhase(p BuildPhase) {
	b.mu.Lock()
	b.phase = p
	b.mu.Unlock()
}

// CurrentRID returns the builder's scan position.
func (b *BuildCtl) CurrentRID() types.RID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.current
}

// SetCurrentRID installs the scan position unconditionally (recovery
// restoring a checkpointed position).
func (b *BuildCtl) SetCurrentRID(r types.RID) {
	b.mu.Lock()
	b.current = r
	b.mu.Unlock()
}

// AdvanceCurrentRID moves the scan position forward, never backward: once
// the builder has declared a range behind it (in particular, once
// Current-RID is infinity), a re-scan of late-allocated pages must not make
// the index invisible again. The builder calls it under the data page's
// share latch (via heap.Table.VisitPage's doneFn), which is what makes the
// Target-RID comparison race-free.
func (b *BuildCtl) AdvanceCurrentRID(r types.RID) {
	b.mu.Lock()
	if b.current.Less(r) {
		b.current = r
	}
	b.mu.Unlock()
}

// EnterAppend takes the gate in read mode (transaction decided to append).
func (b *BuildCtl) EnterAppend() { b.gate.RLock() }

// LeaveAppend releases the read gate after the side-file append completed.
func (b *BuildCtl) LeaveAppend() { b.gate.RUnlock() }

// FreezeAppends takes the gate exclusively for the builder's final switch.
func (b *BuildCtl) FreezeAppends() { b.gate.Lock() }

// UnfreezeAppends releases the exclusive gate.
func (b *BuildCtl) UnfreezeAppends() { b.gate.Unlock() }
