package engine

import (
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// sfFixture creates a table with an SF-building index whose BuildCtl the
// test drives by hand, exposing the Fig. 1 / Fig. 2 protocol directly.
func sfFixture(t *testing.T) (*DB, catalog.Index, *BuildCtl) {
	t.Helper()
	db := openDB(t)
	var ctl *BuildCtl
	ix, err := db.CreateIndexDescriptorWithCtl(CreateIndexSpec{
		Name: "sf_idx", Table: "items", Columns: []string{"name"}, Method: catalog.MethodSF,
	}, func(ix catalog.Index) *BuildCtl {
		ctl = NewBuildCtl(ix.ID, catalog.MethodSF, PhaseCapture)
		tbl, _ := db.Catalog().Table("items")
		ctl.SetCurrentRID(types.RID{PageID: types.PageID{File: tbl.FileID}})
		return ctl
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, ix, ctl
}

func sfEntries(t *testing.T, db *DB, ix catalog.Index) []sidefile.Entry {
	t.Helper()
	sf, err := db.SideFileOf(ix.ID)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := sf.Read(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return all
}

func TestSFRoutingByScanPosition(t *testing.T) {
	db, ix, ctl := sfFixture(t)

	// Scan at position zero: every operation is AHEAD of the scan — the
	// index is invisible, nothing goes to the side-file.
	tx := db.Begin()
	ridA, err := db.Insert(tx, "items", rowOf(1, "ahead", 0))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if got := len(sfEntries(t, db, ix)); got != 0 {
		t.Fatalf("side-file after ahead-of-scan insert: %d entries, want 0", got)
	}

	// Advance the scan past every page: operations are now BEHIND the scan
	// and must be captured.
	ctl.SetCurrentRID(types.MaxRID)
	tx2 := db.Begin()
	if err := db.Delete(tx2, "items", ridA); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	ents := sfEntries(t, db, ix)
	if len(ents) != 1 || ents[0].Op != sidefile.OpDelete || ents[0].RID != ridA {
		t.Fatalf("side-file after behind-scan delete: %+v", ents)
	}

	// Updates that change the key append a delete + an insert.
	tx3 := db.Begin()
	ridB, _ := db.Insert(tx3, "items", rowOf(2, "second", 0))
	tx3.Commit()
	tx4 := db.Begin()
	if _, err := db.Update(tx4, "items", ridB, rowOf(2, "renamed", 0)); err != nil {
		t.Fatal(err)
	}
	tx4.Commit()
	ents = sfEntries(t, db, ix)
	// delete(A), insert(B), delete(old B key), insert(new B key)
	if len(ents) != 4 || ents[2].Op != sidefile.OpDelete || ents[3].Op != sidefile.OpInsert {
		t.Fatalf("side-file after update: %+v", ents)
	}
}

func TestSFVisCountInDataPageRecords(t *testing.T) {
	db, _, ctl := sfFixture(t)

	// Invisible (ahead of scan): visCount must be 0.
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "x", 0))
	tx.Commit()

	// Visible (behind scan): visCount must be 1.
	ctl.SetCurrentRID(types.MaxRID)
	tx2 := db.Begin()
	db.Delete(tx2, "items", rid)
	tx2.Commit()

	var counts []uint16
	it, _ := db.Log().NewIterator(1)
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		switch r.Type {
		case wal.TypeHeapInsert:
			if pl, err := decodeHeapInsert(r.Payload); err == nil {
				counts = append(counts, pl)
			}
		case wal.TypeHeapDelete:
			if pl, err := decodeHeapDelete(r.Payload); err == nil {
				counts = append(counts, pl)
			}
		}
	}
	if len(counts) < 2 {
		t.Fatalf("found %d data-page records", len(counts))
	}
	if counts[len(counts)-2] != 0 {
		t.Fatalf("insert visCount = %d, want 0 (index invisible)", counts[len(counts)-2])
	}
	if counts[len(counts)-1] != 1 {
		t.Fatalf("delete visCount = %d, want 1 (index visible)", counts[len(counts)-1])
	}
}

func TestSFRollbackAcrossVisibilityChange(t *testing.T) {
	// Fig. 2's core case: forward processing ran with the index INVISIBLE
	// (no side-file entry), the scan then passed the page, and the rollback
	// must compensate — "IB will reflect in new index old state of record",
	// so the undo of an insert appends a DELETE entry.
	db, ix, ctl := sfFixture(t)

	tx := db.Begin()
	rid, err := db.Insert(tx, "items", rowOf(1, "phantom", 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sfEntries(t, db, ix)); got != 0 {
		t.Fatalf("insert ahead of scan should not be captured, got %d entries", got)
	}

	// The scan passes the record's page (IB extracted the uncommitted key).
	ctl.SetCurrentRID(types.MaxRID)

	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	ents := sfEntries(t, db, ix)
	if len(ents) != 1 || ents[0].Op != sidefile.OpDelete || ents[0].RID != rid {
		t.Fatalf("rollback compensation entries = %+v, want one delete for %v", ents, rid)
	}
}

func TestSFRollbackBothInvisible(t *testing.T) {
	// If the scan has not passed the page by undo time either, no entry is
	// made: IB will scan the rolled-back (old) state.
	db, ix, _ := sfFixture(t)
	tx := db.Begin()
	if _, err := db.Insert(tx, "items", rowOf(1, "x", 0)); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if got := len(sfEntries(t, db, ix)); got != 0 {
		t.Fatalf("entries = %d, want 0 (invisible at op and at undo)", got)
	}
}

func TestSFRollbackBothVisible(t *testing.T) {
	// Visible at op time (captured) and still capture-mode at undo: the undo
	// appends the compensating entry; net effect insert+delete.
	db, ix, ctl := sfFixture(t)
	ctl.SetCurrentRID(types.MaxRID)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "x", 0))
	tx.Rollback()
	ents := sfEntries(t, db, ix)
	if len(ents) != 2 || ents[0].Op != sidefile.OpInsert || ents[1].Op != sidefile.OpDelete {
		t.Fatalf("entries = %+v, want [insert delete]", ents)
	}
	if ents[0].RID != rid || ents[1].RID != rid {
		t.Fatalf("entries reference %v/%v, want %v", ents[0].RID, ents[1].RID, rid)
	}
}

func TestSFDirectAfterSwitch(t *testing.T) {
	// After the side-file switch (PhaseDirect + complete), transactions
	// maintain the index directly.
	db, ix, ctl := sfFixture(t)
	ctl.FreezeAppends()
	tx0 := db.Begin()
	if err := db.SetIndexComplete(tx0, ix.ID); err != nil {
		t.Fatal(err)
	}
	ctl.SetPhase(PhaseDirect)
	ctl.UnfreezeAppends()
	tx0.Commit()
	db.UnregisterBuild(ix.ID)

	tx := db.Begin()
	rid, err := db.Insert(tx, "items", rowOf(1, "direct", 0))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	tx2 := db.Begin()
	rids, err := db.IndexLookup(tx2, "sf_idx", keyenc.String("direct"))
	if err != nil || len(rids) != 1 || rids[0] != rid {
		t.Fatalf("direct lookup = %v, %v", rids, err)
	}
	tx2.Commit()
}

func decodeHeapInsert(b []byte) (uint16, error) {
	pl, err := heap.DecodeInsert(b)
	return pl.VisCount, err
}

func decodeHeapDelete(b []byte) (uint16, error) {
	pl, err := heap.DecodeDelete(b)
	return pl.VisCount, err
}
