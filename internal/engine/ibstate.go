package engine

import (
	"fmt"

	"onlineindex/internal/enc"
	"onlineindex/internal/types"
)

// IBPhase is where an index build stands for restart purposes.
type IBPhase uint8

// Build phases recorded in builder checkpoints.
const (
	// IBPhaseScan: extracting keys from data pages and sorting (both
	// algorithms; pipelined, §2.2.2/§3.2.2). State: sort-phase checkpoint
	// (runs + scan position) and, for SF, the Current-RID.
	IBPhaseScan IBPhase = iota + 1
	// IBPhaseInsert (NSF): merging the sorted runs and inserting keys into
	// the index. State: merge counters + highest key inserted (§2.2.3
	// "periodic checkpointing by IB").
	IBPhaseInsert
	// IBPhaseLoad (SF): merging the runs into the bottom-up loader. State:
	// merge counters + loader state (§3.2.4).
	IBPhaseLoad
	// IBPhaseSideFile (SF): applying side-file entries. State: side-file
	// position (§3.2.5).
	IBPhaseSideFile
)

func (p IBPhase) String() string {
	switch p {
	case IBPhaseScan:
		return "scan"
	case IBPhaseInsert:
		return "insert"
	case IBPhaseLoad:
		return "load"
	case IBPhaseSideFile:
		return "side-file"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// IBState is the payload of a TypeIBCheckpoint log record: everything the
// index builder needs to resume after a failure without redoing all work.
// The sub-states are opaque encodings owned by extsort (SortState,
// MergeState) and btree (LoaderState); the engine only stores and returns
// them.
type IBState struct {
	Index      types.IndexID
	Phase      IBPhase
	CurrentRID types.RID     // SF: scan position at checkpoint time
	EndPage    types.PageNum // data scan stops after this page (fixed at start)
	SortState  []byte        // IBPhaseScan: extsort.SortState
	MergeState []byte        // IBPhaseInsert/IBPhaseLoad: extsort.MergeState
	LoadState  []byte        // IBPhaseLoad: btree.LoaderState
	HighKey    []byte        // IBPhaseInsert: highest sort item inserted
	SFPos      uint64        // IBPhaseSideFile: next side-file sequence number
}

// Encode serializes the state.
func (s *IBState) Encode() []byte {
	return enc.NewWriter().
		U32(uint32(s.Index)).U8(uint8(s.Phase)).RID(s.CurrentRID).U32(uint32(s.EndPage)).
		Bytes32(s.SortState).Bytes32(s.MergeState).Bytes32(s.LoadState).
		Bytes32(s.HighKey).U64(s.SFPos).
		Bytes()
}

// DecodeIBState parses an IBState.
func DecodeIBState(b []byte) (IBState, error) {
	r := enc.NewReader(b)
	s := IBState{
		Index: types.IndexID(r.U32()), Phase: IBPhase(r.U8()),
		CurrentRID: r.RID(), EndPage: types.PageNum(r.U32()),
		SortState: r.Bytes32(), MergeState: r.Bytes32(), LoadState: r.Bytes32(),
		HighKey: r.Bytes32(), SFPos: r.U64(),
	}
	return s, r.Err()
}
