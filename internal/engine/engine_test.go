package engine

import (
	"errors"
	"fmt"
	"testing"

	"onlineindex/internal/catalog"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

func testSchema() catalog.Schema {
	return catalog.Schema{
		{Name: "id", Kind: keyenc.KindInt64},
		{Name: "name", Kind: keyenc.KindString},
		{Name: "qty", Kind: keyenc.KindInt64},
	}
}

func rowOf(id int64, name string, qty int64) Row {
	return Row{keyenc.Int64(id), keyenc.String(name), keyenc.Int64(qty)}
}

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{PoolSize: 256, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", testSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

// createCompleteIndex fabricates a complete, empty index directly (the
// builders are in package core; engine tests exercise the DML paths).
func createCompleteIndex(t *testing.T, db *DB, name string, cols []string, unique bool) catalog.Index {
	t.Helper()
	ix, err := db.CreateIndexDescriptor(CreateIndexSpec{
		Name: name, Table: "items", Columns: cols, Unique: unique, Method: catalog.MethodNSF,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := db.SetIndexComplete(tx, ix.ID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ix2, _ := db.Catalog().Index(name)
	return ix2
}

func TestInsertAndIndexLookup(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)

	tx := db.Begin()
	rid, err := db.Insert(tx, "items", rowOf(1, "widget", 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2 := db.Begin()
	rids, err := db.IndexLookup(tx2, "by_name", keyenc.String("widget"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rids) != 1 || rids[0] != rid {
		t.Fatalf("lookup = %v, want [%v]", rids, rid)
	}
	tx2.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMaintainsIndex(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "gone", 1))
	tx.Commit()

	tx2 := db.Begin()
	if err := db.Delete(tx2, "items", rid); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := db.Begin()
	rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("gone"))
	if len(rids) != 0 {
		t.Fatalf("lookup after delete = %v", rids)
	}
	tx3.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateKeyChange(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "old", 1))
	tx.Commit()

	tx2 := db.Begin()
	if _, err := db.Update(tx2, "items", rid, rowOf(1, "new", 1)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := db.Begin()
	if rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("old")); len(rids) != 0 {
		t.Fatalf("old key still live: %v", rids)
	}
	if rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("new")); len(rids) != 1 {
		t.Fatalf("new key missing: %v", rids)
	}
	tx3.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNonKeyColumnsSkipsIndex(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "same", 1))
	tx.Commit()
	before := db.Log().Stats()

	tx2 := db.Begin()
	if _, err := db.Update(tx2, "items", rid, rowOf(1, "same", 99)); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	// No index records should have been written for the non-key update.
	d := db.Log().Stats().Delta(before)
	idxRecords := uint64(0)
	for ty := 0; ty < 32; ty++ {
		// crude: count everything except heap/commit/end
	}
	_ = idxRecords
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
	_ = d
}

func TestRollbackInsertRemovesKey(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	if _, err := db.Insert(tx, "items", rowOf(1, "phantom", 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	rids, _ := db.IndexLookup(tx2, "by_name", keyenc.String("phantom"))
	if len(rids) != 0 {
		t.Fatalf("rolled-back insert visible in index: %v", rids)
	}
	tx2.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackDeleteRestoresKey(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "keepme", 1))
	tx.Commit()

	tx2 := db.Begin()
	db.Delete(tx2, "items", rid)
	if err := tx2.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx3 := db.Begin()
	rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("keepme"))
	if len(rids) != 1 || rids[0] != rid {
		t.Fatalf("rolled-back delete lost key: %v", rids)
	}
	tx3.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackUpdateRestoresKeys(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "by_name", []string{"name"}, false)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "alpha", 1))
	tx.Commit()

	tx2 := db.Begin()
	db.Update(tx2, "items", rid, rowOf(1, "beta", 1)) //nolint:errcheck
	tx2.Rollback()

	tx3 := db.Begin()
	if rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("alpha")); len(rids) != 1 {
		t.Fatalf("alpha missing after rollback: %v", rids)
	}
	if rids, _ := db.IndexLookup(tx3, "by_name", keyenc.String("beta")); len(rids) != 0 {
		t.Fatalf("beta visible after rollback: %v", rids)
	}
	tx3.Commit()
	if err := db.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueViolation(t *testing.T) {
	db := openDB(t)
	createCompleteIndex(t, db, "uniq_id", []string{"id"}, true)
	tx := db.Begin()
	if _, err := db.Insert(tx, "items", rowOf(7, "first", 1)); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := db.Begin()
	_, err := db.Insert(tx2, "items", rowOf(7, "second", 1))
	var uv *UniqueViolationError
	if !errors.As(err, &uv) {
		t.Fatalf("err = %v, want UniqueViolationError", err)
	}
	tx2.Rollback()
	if err := db.CheckIndexConsistency("uniq_id"); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueReinsertAfterCommittedDelete(t *testing.T) {
	// Delete commits, then another record takes over the key value: the
	// pseudo-deleted entry's RID is replaced (§2.2.3 example tail).
	db := openDB(t)
	createCompleteIndex(t, db, "uniq_id", []string{"id"}, true)
	tx := db.Begin()
	rid1, _ := db.Insert(tx, "items", rowOf(7, "first", 1))
	tx.Commit()

	tx2 := db.Begin()
	db.Delete(tx2, "items", rid1)
	tx2.Commit()

	tx3 := db.Begin()
	rid2, err := db.Insert(tx3, "items", rowOf(7, "second", 1))
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()

	tx4 := db.Begin()
	rids, _ := db.IndexLookup(tx4, "uniq_id", keyenc.Int64(7))
	if len(rids) != 1 || rids[0] != rid2 {
		t.Fatalf("lookup = %v, want [%v]", rids, rid2)
	}
	tx4.Commit()
	if err := db.CheckIndexConsistency("uniq_id"); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueInsertBlocksOnUncommittedDelete(t *testing.T) {
	// An inserter of a key value pseudo-deleted by an UNCOMMITTED deleter
	// must wait; if the deleter rolls back, the insert fails with a
	// violation; if it commits, the insert succeeds.
	db := openDB(t)
	createCompleteIndex(t, db, "uniq_id", []string{"id"}, true)
	tx := db.Begin()
	rid1, _ := db.Insert(tx, "items", rowOf(7, "owner", 1))
	tx.Commit()

	deleter := db.Begin()
	if err := db.Delete(deleter, "items", rid1); err != nil {
		t.Fatal(err)
	}

	result := make(chan error, 1)
	go func() {
		ins := db.Begin()
		_, err := db.Insert(ins, "items", rowOf(7, "taker", 1))
		if err != nil {
			ins.Rollback()
		} else {
			err = ins.Commit()
		}
		result <- err
	}()

	// The inserter should be blocked on the deleter's record lock.
	select {
	case err := <-result:
		t.Fatalf("insert finished while deleter uncommitted: %v", err)
	default:
	}
	if err := deleter.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-result; err != nil {
		t.Fatalf("insert after committed delete: %v", err)
	}
	if err := db.CheckIndexConsistency("uniq_id"); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryRoundTrip(t *testing.T) {
	fs := vfs.NewMemFS()
	db, err := Open(Config{FS: fs, PoolSize: 128, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("items", testSchema()); err != nil {
		t.Fatal(err)
	}
	ix, err := db.CreateIndexDescriptor(CreateIndexSpec{
		Name: "by_name", Table: "items", Columns: []string{"name"}, Method: catalog.MethodNSF,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx0 := db.Begin()
	if err := db.SetIndexComplete(tx0, ix.ID); err != nil {
		t.Fatal(err)
	}
	tx0.Commit()

	// Committed work.
	var rids []types.RID
	for i := 0; i < 200; i++ {
		tx := db.Begin()
		rid, err := db.Insert(tx, "items", rowOf(int64(i), fmt.Sprintf("item-%04d", i), 1))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	tx := db.Begin()
	db.Delete(tx, "items", rids[5])
	tx.Commit()

	// A loser: uncommitted at crash.
	loser := db.Begin()
	if _, err := db.Insert(loser, "items", rowOf(999, "uncommitted", 1)); err != nil {
		t.Fatal(err)
	}
	db.Delete(loser, "items", rids[10])

	db.Crash()

	db2, err := Recover(Config{FS: fs, PoolSize: 128, TreeBudget: 1024})
	if err != nil {
		t.Fatal(err)
	}

	// Committed state survives; loser is rolled back.
	tx2 := db2.Begin()
	if rids2, _ := db2.IndexLookup(tx2, "by_name", keyenc.String("item-0042")); len(rids2) != 1 {
		t.Errorf("committed key missing after recovery: %v", rids2)
	}
	if rids2, _ := db2.IndexLookup(tx2, "by_name", keyenc.String("item-0005")); len(rids2) != 0 {
		t.Errorf("deleted key resurrected: %v", rids2)
	}
	if rids2, _ := db2.IndexLookup(tx2, "by_name", keyenc.String("uncommitted")); len(rids2) != 0 {
		t.Errorf("loser insert visible: %v", rids2)
	}
	if rids2, _ := db2.IndexLookup(tx2, "by_name", keyenc.String("item-0010")); len(rids2) != 1 {
		t.Errorf("loser delete not rolled back: %v", rids2)
	}
	tx2.Commit()
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}

	// The engine remains usable.
	tx3 := db2.Begin()
	if _, err := db2.Insert(tx3, "items", rowOf(1000, "after-recovery", 1)); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	if err := db2.CheckIndexConsistency("by_name"); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryIdempotentDoubleCrash(t *testing.T) {
	fs := vfs.NewMemFS()
	db, _ := Open(Config{FS: fs, PoolSize: 128})
	db.CreateTable("items", testSchema())
	for i := 0; i < 50; i++ {
		tx := db.Begin()
		db.Insert(tx, "items", rowOf(int64(i), fmt.Sprintf("n%d", i), 1))
		tx.Commit()
	}
	loser := db.Begin()
	db.Insert(loser, "items", rowOf(100, "loser", 1))
	db.Crash()

	db2, err := Recover(Config{FS: fs, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Crash again immediately after recovery, then recover again.
	db2.Crash()
	db3, err := Recover(Config{FS: fs, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	db3.TableScan("items", func(rid types.RID, row Row) error {
		count++
		return nil
	})
	if count != 50 {
		t.Fatalf("rows after double recovery = %d, want 50", count)
	}
}

func TestCheckpointBoundsRecovery(t *testing.T) {
	fs := vfs.NewMemFS()
	db, _ := Open(Config{FS: fs, PoolSize: 128})
	db.CreateTable("items", testSchema())
	for i := 0; i < 100; i++ {
		tx := db.Begin()
		db.Insert(tx, "items", rowOf(int64(i), fmt.Sprintf("n%d", i), 1))
		tx.Commit()
		if i == 49 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.Crash()
	db2, err := Recover(Config{FS: fs, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	db2.TableScan("items", func(rid types.RID, row Row) error { count++; return nil })
	if count != 100 {
		t.Fatalf("rows = %d, want 100", count)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	row := rowOf(-42, "héllo\x00world", 7)
	dec, err := DecodeRow(EncodeRow(row))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 3 || !dec[0].Equal(row[0]) || !dec[1].Equal(row[1]) || !dec[2].Equal(row[2]) {
		t.Fatalf("round trip = %v", dec)
	}
}

func TestSchemaValidation(t *testing.T) {
	db := openDB(t)
	tx := db.Begin()
	defer tx.Rollback()
	if _, err := db.Insert(tx, "items", Row{keyenc.Int64(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := db.Insert(tx, "items", Row{keyenc.String("x"), keyenc.String("y"), keyenc.Int64(1)}); err == nil {
		t.Fatal("mistyped row accepted")
	}
	if _, err := db.Insert(tx, "nosuch", rowOf(1, "a", 1)); err == nil {
		t.Fatal("insert into missing table accepted")
	}
}

func TestIndexNotReadableWhileBuilding(t *testing.T) {
	db := openDB(t)
	_, err := db.CreateIndexDescriptor(CreateIndexSpec{
		Name: "building", Table: "items", Columns: []string{"name"}, Method: catalog.MethodNSF,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	defer tx.Rollback()
	_, err = db.IndexLookup(tx, "building", keyenc.String("x"))
	var nr *ErrIndexNotReadable
	if !errors.As(err, &nr) {
		t.Fatalf("err = %v, want ErrIndexNotReadable", err)
	}
}

func TestSlotNotReusedWhileDeleterUncommitted(t *testing.T) {
	db := openDB(t)
	tx := db.Begin()
	rid, _ := db.Insert(tx, "items", rowOf(1, "victim", 1))
	tx.Commit()

	deleter := db.Begin()
	if err := db.Delete(deleter, "items", rid); err != nil {
		t.Fatal(err)
	}
	// Another transaction inserting now must NOT land on the same RID.
	other := db.Begin()
	rid2, err := db.Insert(other, "items", rowOf(2, "newcomer", 1))
	if err != nil {
		t.Fatal(err)
	}
	if rid2 == rid {
		t.Fatalf("slot of uncommitted delete reused: %v", rid2)
	}
	other.Commit()
	// Rollback of the deleter must find its slot free.
	if err := deleter.Rollback(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	row, ok, err := db.Get(tx2, "items", rid)
	if err != nil || !ok {
		t.Fatalf("victim not restored: ok=%v err=%v", ok, err)
	}
	if row[1].S != "victim" {
		t.Fatalf("restored row = %v", row)
	}
	tx2.Commit()
}
