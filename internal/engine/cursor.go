package engine

import (
	"onlineindex/internal/btree"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/lock"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
)

// IndexCursor is a pull-style reader over one readable index, applying the
// same latch-coupled crawl plus entry-verification lock protocol as
// IndexScan. It exists so higher layers can compose several per-shard
// streams (the partition router's k-way merge) without re-implementing the
// read protocol. With a nil transaction entries are returned unverified
// (quiescent-point reads), matching IndexScan's nil-tx semantics.
type IndexCursor struct {
	db   *DB
	tx   *txn.Txn
	tree *btree.Tree
	cur  *btree.Cursor
}

// NewIndexCursor opens a cursor over index for keys in [lo, hi] (nil means
// unbounded), taking the table IS lock when tx is non-nil.
func (db *DB) NewIndexCursor(tx *txn.Txn, index string, lo, hi []keyenc.Value) (*IndexCursor, error) {
	var loB, hiB []byte
	if lo != nil {
		loB = keyenc.Encode(lo...)
	}
	if hi != nil {
		hiB = keyenc.Encode(hi...)
	}
	return db.NewIndexCursorRaw(tx, index, loB, hiB)
}

// NewIndexCursorRaw is NewIndexCursor with pre-encoded key bounds, for
// callers that already hold keyenc-encoded keys (the partition merge).
func (db *DB) NewIndexCursorRaw(tx *txn.Txn, index string, loB, hiB []byte) (*IndexCursor, error) {
	ix, tree, err := db.readableIndex(index)
	if err != nil {
		return nil, err
	}
	if tx != nil {
		if err := tx.Lock(lock.TableName(ix.Table), lock.IS); err != nil {
			return nil, err
		}
	}
	return &IndexCursor{db: db, tx: tx, tree: tree, cur: tree.NewCursor(loB, hiB)}, nil
}

// Next returns the next committed live entry, or ok=false at the end of
// the range. The returned key aliases cursor-internal storage only until
// the next call; copy it to retain it.
func (c *IndexCursor) Next() (key []byte, rid types.RID, ok bool, err error) {
	for {
		e, more, err := c.cur.Next()
		if err != nil || !more {
			return nil, types.RID{}, false, err
		}
		visible := !e.Pseudo
		if c.tx != nil {
			visible, err = c.db.verifyEntry(c.tx, c.tree, e.Key, e.RID, e.Pseudo)
			if err != nil {
				return nil, types.RID{}, false, err
			}
		}
		if visible {
			return e.Key, e.RID, true, nil
		}
	}
}

// VerifyIndexEntry applies the read-path entry verification protocol to a
// (key, rid) pair observed in index id's tree without locks: blocking S
// lock on the RID, then a SearchEntry re-check. It reports whether the
// entry is still a committed live entry. The partition layer's cross-shard
// unique probe uses it — the blocking S lock against a concurrent
// inserter's X record lock is what turns a symmetric cross-shard duplicate
// race into a deadlock the lock manager resolves to exactly one winner.
func (db *DB) VerifyIndexEntry(tx *txn.Txn, id types.IndexID, key []byte, rid types.RID, pseudo bool) (bool, error) {
	tree, err := db.TreeOf(id)
	if err != nil {
		return false, err
	}
	return db.verifyEntry(tx, tree, key, rid, pseudo)
}
