package engine

import (
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/lock"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// PendingBuild describes an index build interrupted by a crash: the catalog
// descriptor plus the builder's last committed checkpoint (nil if the build
// never checkpointed).
type PendingBuild struct {
	Index catalog.Index
	State *IBState
}

// Recover brings up a database from the durable state on fs, running
// ARIES-style restart: analysis (rebuild the catalog, transaction table,
// dirty page table and index-builder states from the master checkpoint and
// the log tail), redo (repeat history), and undo (roll back losers with
// compensation records). Interrupted index builds are left registered in
// StateBuilding with their Current-RID restored, so transactions immediately
// observe the correct side-file protocol; the caller resumes them through
// the builders in package core (see PendingBuilds).
func Recover(cfg Config) (*DB, error) {
	if cfg.FS == nil {
		return nil, fmt.Errorf("engine: Recover requires the FS to recover from")
	}
	if mem, ok := cfg.FS.(*vfs.MemFS); ok {
		mem.Recover() // idempotent: mount the disks
	}
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// ----- Analysis ------------------------------------------------------
	master, err := wal.ReadMaster(db.fs)
	if err != nil {
		return nil, err
	}
	type ttEntry struct {
		first, last types.LSN
		committed   bool
	}
	tt := make(map[types.TxnID]*ttEntry)
	dpt := make(map[types.PageID]types.LSN)
	ibCandidates := make(map[types.IndexID]struct {
		txn     types.TxnID
		payload []byte
	})
	committedIB := make(map[types.IndexID][]byte)
	createIdxTxn := make(map[types.IndexID]types.TxnID)
	committedTxns := make(map[types.TxnID]bool) // survives the End-record delete from tt
	type stateChange struct {
		lsn types.LSN
		txn types.TxnID
		pl  catalog.StateChangePayload
	}
	var stateChanges []stateChange
	var maxTxn types.TxnID

	scanFrom := types.LSN(1)
	if master != types.NilLSN {
		rec, err := db.log.ReadAt(master)
		if err != nil {
			return nil, fmt.Errorf("engine: read checkpoint: %w", err)
		}
		img, err := decodeCheckpoint(rec.Payload)
		if err != nil {
			return nil, err
		}
		cat, err := catalog.FromSnapshot(img.Catalog)
		if err != nil {
			return nil, err
		}
		db.cat = cat
		for _, t := range img.Txns {
			tt[t.ID] = &ttEntry{first: t.FirstLSN, last: t.LastLSN}
			if t.ID > maxTxn {
				maxTxn = t.ID
			}
		}
		for _, d := range img.Dirty {
			dpt[d.ID] = d.RecLSN
		}
		for id, b := range img.IBStates {
			committedIB[id] = b
		}
		if img.NextTxnID > maxTxn {
			maxTxn = img.NextTxnID
		}
		scanFrom = master
	}

	it, err := db.log.NewIterator(scanFrom)
	if err != nil {
		return nil, err
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if rec.TxnID != types.NilTxn {
			if rec.TxnID > maxTxn {
				maxTxn = rec.TxnID
			}
			e := tt[rec.TxnID]
			if e == nil {
				e = &ttEntry{first: rec.LSN}
				tt[rec.TxnID] = e
			}
			e.last = rec.LSN
			switch rec.Type {
			case wal.TypeCommit:
				e.committed = true
				committedTxns[rec.TxnID] = true
			case wal.TypeAbort:
				// An abort after a commit record means the commit's force
				// failed and the transaction was poisoned to the rollback
				// path: the commit never became durable on its own terms,
				// and the abort outcome wins.
				e.committed = false
				delete(committedTxns, rec.TxnID)
			case wal.TypeEnd:
				if e.committed {
					// Late-bind the builder checkpoints this txn carried.
					for id, c := range ibCandidates {
						if c.txn == rec.TxnID {
							committedIB[id] = c.payload
							delete(ibCandidates, id)
						}
					}
				}
				delete(tt, rec.TxnID)
			}
		}
		switch rec.Type {
		case wal.TypeCreateTable:
			t, err := catalog.DecodeCreateTable(rec.Payload)
			if err != nil {
				return nil, err
			}
			if _, exists := db.cat.TableByID(t.ID); !exists {
				if err := db.cat.AddTable(&t); err != nil {
					return nil, err
				}
			}
		case wal.TypeCreateIndex:
			ix, err := catalog.DecodeCreateIndex(rec.Payload)
			if err != nil {
				return nil, err
			}
			if _, exists := db.cat.IndexByID(ix.ID); !exists {
				if err := db.cat.AddIndex(&ix); err != nil {
					return nil, err
				}
				createIdxTxn[ix.ID] = rec.TxnID
			}
		case wal.TypeDropIndex, wal.TypeIndexStateChange:
			pl, err := catalog.DecodeStateChange(rec.Payload)
			if err != nil {
				return nil, err
			}
			// Deferred: a state change is only as durable as the transaction
			// that logged it, which isn't known until the scan finds (or fails
			// to find) its commit record.
			stateChanges = append(stateChanges, stateChange{lsn: rec.LSN, txn: rec.TxnID, pl: pl})
		case wal.TypePartMeta:
			// Partition metadata is applied unconditionally like the other
			// DDL records; the payloads are idempotent upserts/deletes so
			// replay over a snapshot-restored registry is harmless.
			if err := db.cat.ApplyPartMeta(rec.Payload); err != nil {
				return nil, err
			}
		case wal.TypeIBCheckpoint:
			st, err := DecodeIBState(rec.Payload)
			if err != nil {
				return nil, err
			}
			ibCandidates[st.Index] = struct {
				txn     types.TxnID
				payload []byte
			}{rec.TxnID, append([]byte(nil), rec.Payload...)}
		}
		if rec.Redoable() && !rec.PageID.IsNil() {
			if _, in := dpt[rec.PageID]; !in {
				dpt[rec.PageID] = rec.LSN
			}
		}
	}
	// A commit record without its end record still means committed.
	for id, c := range ibCandidates {
		if e := tt[c.txn]; e != nil && e.committed {
			committedIB[id] = c.payload
		}
	}

	// Apply the state changes of winners only, in log order. SetIndexComplete
	// rides in the same transaction as the builder's final side-file
	// applications; if that commit was torn off the log tail, undo below will
	// strip those RU records back out, and replaying the redo-only state
	// change alone would declare complete an index that is missing them.
	// Skipping a loser's change leaves the index in StateBuilding with its
	// last committed checkpoint intact, so the build is resumed instead.
	for _, sc := range stateChanges {
		if sc.txn != types.NilTxn && !committedTxns[sc.txn] {
			continue
		}
		if err := db.cat.SetIndexState(sc.pl.Index, sc.pl.State, sc.lsn); err != nil {
			return nil, err
		}
		if sc.pl.State != catalog.StateBuilding {
			delete(committedIB, sc.pl.Index)
			delete(ibCandidates, sc.pl.Index)
		}
	}

	// A CreateIndex whose transaction never committed is dropped before any
	// handle is opened: the log can end between the descriptor record and its
	// commit (a torn tail lands on an arbitrary record boundary), or the
	// creating transaction can have rolled back after the record (an I/O
	// error creating the index file) and ended cleanly — either way leaving a
	// descriptor whose index file may hold nothing, not even a formatted
	// root. Nothing committed can reference the index (the descriptor only
	// becomes visible at commit), and TypeCreateIndex is redo-only, so undo
	// would not clean it up either. AddIndex already advanced the catalog's
	// file-ID high-water mark, so the orphaned file's ID is never reused.
	for id, txnID := range createIdxTxn {
		if !committedTxns[txnID] {
			if err := db.cat.SetIndexState(id, catalog.StateDropped, types.NilLSN); err != nil {
				return nil, err
			}
			delete(committedIB, id)
			delete(ibCandidates, id)
		}
	}

	// ----- Redo (repeating history) --------------------------------------
	redoStart := scanFrom
	for _, recLSN := range dpt {
		if recLSN < redoStart {
			redoStart = recLSN
		}
	}
	it, err = db.log.NewIterator(redoStart)
	if err != nil {
		return nil, err
	}
	for {
		rec, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !rec.Redoable() || rec.PageID.IsNil() {
			continue
		}
		switch rec.Type {
		case wal.TypeHeapFormat, wal.TypeHeapInsert, wal.TypeHeapDelete, wal.TypeHeapUpdate:
			err = heap.Redo(db.pool, &rec)
		case wal.TypeIdxFormat, wal.TypeIdxInsert, wal.TypeIdxMultiInsert, wal.TypeIdxDelete,
			wal.TypeIdxPseudoDel, wal.TypeIdxReactivate, wal.TypeIdxSplit, wal.TypeIdxNewRoot:
			err = btree.Redo(db.pool, &rec)
		case wal.TypeSFFormat, wal.TypeSFAppend:
			err = sidefile.Redo(db.pool, &rec)
		default:
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("engine: redo of %s: %w", &rec, err)
		}
	}

	// ----- Open handles ---------------------------------------------------
	for _, t := range db.cat.Tables() {
		h, err := heap.Open(db.pool, t.FileID)
		if err != nil {
			return nil, err
		}
		db.tables[t.ID] = h
		// Fresh zone map, every block unknown: derived read-path state never
		// survives a restart, so post-recovery pruning can't be stale.
		db.installZoneMap(t.ID, h)
	}
	for _, ix := range db.cat.Indexes() {
		tree, err := btree.Open(db.pool, ix.FileID, btree.Config{Unique: ix.Unique, Budget: db.cfg.TreeBudget})
		if err != nil {
			return nil, fmt.Errorf("engine: reopen index %q: %w", ix.Name, err)
		}
		tree.SetMetrics(btree.MetricsFrom(db.met))
		db.trees[ix.ID] = tree
		db.treeFiles[ix.FileID] = ix.ID
		if ix.SideFile != 0 && ix.State == catalog.StateBuilding {
			sf, err := sidefile.Open(db.pool, ix.SideFile)
			if err != nil {
				return nil, fmt.Errorf("engine: reopen side-file of %q: %w", ix.Name, err)
			}
			sf.SetMetrics(sidefile.MetricsFrom(db.met))
			db.sfiles[ix.ID] = sf
		}
	}

	// ----- Rebuild builder state so the DML protocol is correct from the
	// first post-recovery transaction, before any build is resumed. --------
	for _, ix := range db.cat.Indexes() {
		if ix.State != catalog.StateBuilding {
			continue
		}
		switch ix.Method {
		case catalog.MethodSF:
			ctl := NewBuildCtl(ix.ID, ix.Method, PhaseCapture)
			if b, ok := committedIB[ix.ID]; ok {
				st, err := DecodeIBState(b)
				if err != nil {
					return nil, err
				}
				ctl.SetCurrentRID(st.CurrentRID)
				db.lastIBCkpt[ix.ID] = append([]byte(nil), b...)
			}
			db.RegisterBuild(ctl)
		case catalog.MethodNSF:
			if b, ok := committedIB[ix.ID]; ok {
				db.lastIBCkpt[ix.ID] = append([]byte(nil), b...)
			}
			// NSF needs no ctl: the index is maintained directly.
		case catalog.MethodOffline:
			// The offline baseline is not restartable (the paper's
			// restartability machinery is exactly what it lacks); cancel it.
			if err := db.cancelBuildInternal(ix); err != nil {
				return nil, err
			}
		}
	}

	// ----- Undo losers -----------------------------------------------------
	db.txns.SetNextTxnID(maxTxn)
	for id, e := range tt {
		if e.committed {
			// Commit was durable but the end record was lost: the
			// transaction wins; just note completion.
			continue
		}
		loser := db.txns.Adopt(id, e.first, e.last)
		if err := loser.Rollback(); err != nil {
			return nil, fmt.Errorf("engine: rollback of loser %d: %w", id, err)
		}
	}

	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return db, nil
}

// cancelBuildInternal drops an interrupted, non-resumable build.
func (db *DB) cancelBuildInternal(ix catalog.Index) error {
	tx := db.Begin()
	pl := catalog.StateChangePayload{Index: ix.ID, State: catalog.StateDropped}
	if _, err := tx.Log(&wal.Record{Type: wal.TypeDropIndex, Flags: wal.FlagRedo, Payload: pl.Encode()}); err != nil {
		tx.Rollback()
		return err
	}
	if err := db.cat.SetIndexState(ix.ID, catalog.StateDropped, types.NilLSN); err != nil {
		tx.Rollback()
		return err
	}
	db.mu.Lock()
	delete(db.trees, ix.ID)
	delete(db.treeFiles, ix.FileID)
	delete(db.sfiles, ix.ID)
	delete(db.builds, ix.ID)
	delete(db.lastIBCkpt, ix.ID)
	db.mu.Unlock()
	return tx.Commit()
}

// PendingBuilds returns the interrupted index builds found by recovery, for
// the core builders to resume.
func (db *DB) PendingBuilds() ([]PendingBuild, error) {
	var out []PendingBuild
	for _, ix := range db.cat.Indexes() {
		if ix.State != catalog.StateBuilding {
			continue
		}
		pb := PendingBuild{Index: ix}
		db.mu.Lock()
		b := db.lastIBCkpt[ix.ID]
		db.mu.Unlock()
		if b != nil {
			st, err := DecodeIBState(b)
			if err != nil {
				return nil, err
			}
			pb.State = &st
		}
		out = append(out, pb)
	}
	return out, nil
}

// Quiesce helper used by the offline baseline and DDL paths: acquire the
// table lock under tx, returning a function that releases it.
func (db *DB) lockTableS(tx *txn.Txn, table types.TableID) (func(), error) {
	if err := tx.Lock(lock.TableName(table), lock.S); err != nil {
		return nil, err
	}
	return func() { tx.Unlock(lock.TableName(table)) }, nil
}
