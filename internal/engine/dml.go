package engine

import (
	"bytes"
	"errors"
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/lock"
	"onlineindex/internal/rm"
	"onlineindex/internal/sidefile"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// planMode is how one index is maintained for one record operation.
type planMode uint8

const (
	planSkip     planMode = iota // index invisible: ignore completely
	planDirect                   // maintain directly in the tree
	planSideFile                 // append to the side-file (gate held)
)

// idxPlan is the visibility decision for one index, made under the data
// page latch (Fig. 1).
type idxPlan struct {
	ix   catalog.Index
	mode planMode
	ctl  *BuildCtl // side-file plans hold the append gate until released
}

// opPlan is the full under-latch decision for one record operation.
type opPlan struct {
	visCount uint16
	plans    []idxPlan
	err      error
}

// release drops any append gates still held (idempotent per plan).
func (p *opPlan) release() {
	for i := range p.plans {
		if p.plans[i].mode == planSideFile && p.plans[i].ctl != nil {
			p.plans[i].ctl.LeaveAppend()
			p.plans[i].ctl = nil
		}
	}
}

// planUnderLatch computes the Fig. 1 visibility decisions for an operation
// on rid. It runs under the data page X latch. For every index of the table
// (in creation order):
//
//   - complete, or building with NSF: visible, maintained directly;
//   - building with SF: visible iff Target-RID < Current-RID, in which case
//     the change goes to the side-file (and the append gate is entered);
//     after the side-file switch (PhaseDirect) it is maintained directly;
//   - building offline: unreachable (the table S lock excludes updaters).
//
// The returned visCount is recorded in the data page log record (§3.1.2).
func (db *DB) planUnderLatch(table types.TableID, rid types.RID) opPlan {
	var p opPlan
	for _, ix := range db.cat.TableIndexes(table) {
		switch {
		case ix.State == catalog.StateComplete:
			p.plans = append(p.plans, idxPlan{ix: ix, mode: planDirect})
			p.visCount++
		case ix.State == catalog.StateBuilding && ix.Method == catalog.MethodNSF:
			p.plans = append(p.plans, idxPlan{ix: ix, mode: planDirect})
			p.visCount++
		case ix.State == catalog.StateBuilding && ix.Method == catalog.MethodOffline:
			// The offline baseline quiesces updates; reaching here means the
			// caller bypassed the table lock.
			p.err = fmt.Errorf("engine: update during offline build of %q", ix.Name)
			return p
		case ix.State == catalog.StateBuilding && ix.Method == catalog.MethodSF:
			ctl := db.BuildCtlOf(ix.ID)
			if ctl == nil {
				// The Building snapshot can be stale: the builder commits
				// StateComplete before unregistering its control, so the ctl
				// may vanish between the catalog read above and this lookup.
				// Re-read the live state; only Building-without-ctl is an
				// invariant violation.
				switch cur, ok := db.cat.IndexByID(ix.ID); {
				case ok && cur.State == catalog.StateComplete:
					p.plans = append(p.plans, idxPlan{ix: cur, mode: planDirect})
					p.visCount++
					continue
				case !ok || cur.State == catalog.StateDropped:
					// Cancelled underneath us; the index no longer exists.
					continue
				}
				p.err = fmt.Errorf("engine: SF index %q building but no BuildCtl registered", ix.Name)
				return p
			}
			// Enter the gate BEFORE reading the phase: the builder's final
			// switch flips the phase to direct while holding the gate
			// exclusively, so a capture decision made under the gate cannot
			// be followed by an append that lands after the switch.
			ctl.EnterAppend()
			switch ctl.Phase() {
			case PhaseDirect:
				ctl.LeaveAppend()
				p.plans = append(p.plans, idxPlan{ix: ix, mode: planDirect})
				p.visCount++
			case PhaseCapture:
				if rid.Less(ctl.CurrentRID()) {
					// "New index is VISIBLE; need to make entry in SF." The
					// gate stays held until the append executes.
					p.plans = append(p.plans, idxPlan{ix: ix, mode: planSideFile, ctl: ctl})
					p.visCount++
				} else {
					// "New index INVISIBLE; no SF entry made."
					ctl.LeaveAppend()
					p.plans = append(p.plans, idxPlan{ix: ix, mode: planSkip})
				}
			default:
				ctl.LeaveAppend()
				p.err = fmt.Errorf("engine: SF index %q in unexpected phase", ix.Name)
				return p
			}
		}
	}
	return p
}

// UniqueViolationError reports a genuine unique-key violation.
type UniqueViolationError struct {
	Index    string
	Key      []byte
	Existing types.RID
}

func (e *UniqueViolationError) Error() string {
	return fmt.Sprintf("engine: unique violation on index %q (existing record %s)", e.Index, e.Existing)
}

// Insert inserts a row, maintaining every visible index per Fig. 1.
func (db *DB) Insert(tx *txn.Txn, table string, row Row) (types.RID, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return types.NilRID, fmt.Errorf("engine: no table %q", table)
	}
	if err := checkRow(tbl.Schema, row); err != nil {
		return types.NilRID, err
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return types.NilRID, err
	}
	if err := tx.Lock(lock.TableName(tbl.ID), lock.IX); err != nil {
		return types.NilRID, err
	}
	rec := EncodeRow(row)

	var plan opPlan
	accept := func(rid types.RID) bool {
		// Conditional X lock on the candidate RID under the page latch: a
		// slot whose deleter is still uncommitted stays reserved for the
		// deleter's possible rollback.
		return db.lock.LockConditional(tx.ID(), lock.RecordName(rid), lock.X) == nil
	}
	rid, err := h.Insert(tx, rec, accept, func(r types.RID) uint16 {
		plan = db.planUnderLatch(tbl.ID, r)
		return plan.visCount
	})
	defer plan.release()
	if err != nil {
		return types.NilRID, err
	}
	if plan.err != nil {
		return types.NilRID, plan.err
	}
	if err := db.applyIndexOps(tx, tx, &plan, nil, rec, rid); err != nil {
		return types.NilRID, err
	}
	return rid, nil
}

// Delete deletes the record at rid, maintaining every visible index.
func (db *DB) Delete(tx *txn.Txn, table string, rid types.RID) error {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return fmt.Errorf("engine: no table %q", table)
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return err
	}
	if err := tx.Lock(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := tx.Lock(lock.RecordName(rid), lock.X); err != nil {
		return err
	}
	var plan opPlan
	old, err := h.Delete(tx, rid, func(r types.RID) uint16 {
		plan = db.planUnderLatch(tbl.ID, r)
		return plan.visCount
	})
	defer plan.release()
	if err != nil {
		return err
	}
	if plan.err != nil {
		return plan.err
	}
	return db.applyIndexOps(tx, tx, &plan, old, nil, rid)
}

// Update replaces the record at rid in place, maintaining key changes in
// every visible index (a key delete plus a key insert when the key columns
// changed). If the grown record no longer fits its page, the update falls
// back to a relocation — delete plus reinsert — and the returned RID is the
// record's new identity.
func (db *DB) Update(tx *txn.Txn, table string, rid types.RID, row Row) (types.RID, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return types.NilRID, fmt.Errorf("engine: no table %q", table)
	}
	if err := checkRow(tbl.Schema, row); err != nil {
		return types.NilRID, err
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return types.NilRID, err
	}
	if err := tx.Lock(lock.TableName(tbl.ID), lock.IX); err != nil {
		return types.NilRID, err
	}
	if err := tx.Lock(lock.RecordName(rid), lock.X); err != nil {
		return types.NilRID, err
	}
	rec := EncodeRow(row)
	var plan opPlan
	old, err := h.Update(tx, rid, rec, func(r types.RID) uint16 {
		plan = db.planUnderLatch(tbl.ID, r)
		return plan.visCount
	})
	if errors.Is(err, heap.ErrPageFull) {
		// Relocate: the record moves, so every visible index sees a delete
		// plus an insert under the new RID — the ordinary operations handle
		// it (the in-place attempt logged nothing).
		plan.release()
		if err := db.Delete(tx, table, rid); err != nil {
			return types.NilRID, err
		}
		return db.Insert(tx, table, row)
	}
	defer plan.release()
	if err != nil {
		return types.NilRID, err
	}
	if plan.err != nil {
		return types.NilRID, plan.err
	}
	return rid, db.applyIndexOps(tx, tx, &plan, old, rec, rid)
}

// applyIndexOps executes the planned index maintenance after the data page
// latch has been released ("Unlatch(Target_Page); Make entry in side-file
// ...; Update all other indexes directly"). oldRec/newRec select the
// operation: insert (old nil), delete (new nil) or update (both).
//
// lockTx is the transaction whose locks are used for unique-conflict
// resolution; logger is the TxnLogger records are written under. During
// forward processing both are the transaction; during rollback the logger is
// the CLR-emitting wrapper.
func (db *DB) applyIndexOps(lockTx *txn.Txn, logger rm.TxnLogger, plan *opPlan, oldRec, newRec []byte, rid types.RID) error {
	for i := range plan.plans {
		p := &plan.plans[i]
		if p.mode == planSkip {
			continue
		}
		var oldKey, newKey []byte
		var err error
		if oldRec != nil {
			if oldKey, err = indexKeyFromRecord(&p.ix, oldRec); err != nil {
				return err
			}
		}
		if newRec != nil {
			if newKey, err = indexKeyFromRecord(&p.ix, newRec); err != nil {
				return err
			}
		}
		if oldRec != nil && newRec != nil && bytes.Equal(oldKey, newKey) {
			// Update that did not change this index's key columns.
			if p.mode == planSideFile {
				p.ctl.LeaveAppend()
				p.ctl = nil
			}
			continue
		}
		switch p.mode {
		case planSideFile:
			sf, err := db.SideFileOf(p.ix.ID)
			if err != nil {
				return err
			}
			if oldKey != nil {
				if _, err := sf.Append(logger, sidefile.Entry{Op: sidefile.OpDelete, Key: oldKey, RID: rid}); err != nil {
					return err
				}
			}
			if newKey != nil {
				if _, err := sf.Append(logger, sidefile.Entry{Op: sidefile.OpInsert, Key: newKey, RID: rid}); err != nil {
					return err
				}
			}
			p.ctl.LeaveAppend()
			p.ctl = nil
		case planDirect:
			tree, err := db.TreeOf(p.ix.ID)
			if err != nil {
				return err
			}
			// Invalidate the point-lookup cache for every key this op touches,
			// after the tree op and while the transaction still holds its X
			// locks on the affected records — the ordering the fast path's
			// Validate-after-lock check relies on. This also covers rollback
			// compensations, which route through here under the CLR logger.
			if oldKey != nil {
				if _, err := tree.TxnPseudoDelete(logger, oldKey, rid); err != nil {
					return err
				}
				db.invalidateKey(p.ix.ID, oldKey)
			}
			if newKey != nil {
				if err := db.directInsert(lockTx, logger, &p.ix, tree, newKey, rid); err != nil {
					return err
				}
				db.invalidateKey(p.ix.ID, newKey)
			}
		}
	}
	return nil
}

// directInsert inserts a key into a directly-maintained index, running the
// §2.2.3 unique-conflict protocol when needed: lock the competing record in
// share mode (waiting out its transaction), re-verify the conflict, and
// either fail with a unique violation (committed live duplicate), take over
// a terminated pseudo-deleted entry with ReplaceRID, or retry.
func (db *DB) directInsert(lockTx *txn.Txn, logger rm.TxnLogger, ix *catalog.Index, tree *btree.Tree, key []byte, rid types.RID) error {
	for attempt := 0; attempt < 32; attempt++ {
		_, conflict, err := tree.TxnInsert(logger, key, rid)
		if err != nil {
			return err
		}
		if conflict == nil {
			return nil
		}
		// Wait out whoever owns the conflicting entry: with data-only
		// locking the key lock is the record lock (§6.2).
		if err := lockTx.Lock(lock.RecordName(conflict.OtherRID), lock.S); err != nil {
			return err
		}
		found, pseudo, err := tree.SearchEntry(key, conflict.OtherRID)
		if err != nil {
			return err
		}
		switch {
		case !found:
			// Entry vanished (GC or ReplaceRID by someone else): retry.
		case pseudo:
			// The pseudo entry's owner has terminated (we hold its record
			// lock): replace R with R1, as in the paper's example.
			if err := tree.ReplaceRID(logger, key, conflict.OtherRID, rid); err != nil {
				var uc *btree.UniqueConflict
				if errors.As(err, &uc) {
					continue // someone slipped in: re-run the protocol
				}
				return err
			}
			return nil
		default:
			// Live committed duplicate: genuine unique violation.
			return &UniqueViolationError{Index: ix.Name, Key: key, Existing: conflict.OtherRID}
		}
	}
	return fmt.Errorf("engine: unique-conflict resolution did not converge on %q", ix.Name)
}

// Get returns the row at rid (share record lock for the duration of the
// read).
func (db *DB) Get(tx *txn.Txn, table string, rid types.RID) (Row, bool, error) {
	tbl, ok := db.cat.Table(table)
	if !ok {
		return nil, false, fmt.Errorf("engine: no table %q", table)
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return nil, false, err
	}
	if err := tx.Lock(lock.TableName(tbl.ID), lock.IS); err != nil {
		return nil, false, err
	}
	if err := tx.Lock(lock.RecordName(rid), lock.S); err != nil {
		return nil, false, err
	}
	rec, found, err := h.Get(rid)
	if err != nil || !found {
		return nil, false, err
	}
	row, err := DecodeRow(rec)
	if err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// logOnly is a tiny TxnLogger adapter for state changes logged under a
// transaction but emitted by engine helpers.
type logOnly struct{ tx *txn.Txn }

func (l logOnly) ID() types.TxnID { return l.tx.ID() }
func (l logOnly) Log(r *wal.Record) (types.LSN, error) {
	return l.tx.Log(r)
}
func (l logOnly) LogCLR(r *wal.Record, undoNext types.LSN) (types.LSN, error) {
	return l.tx.LogCLR(r, undoNext)
}
