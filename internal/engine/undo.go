package engine

import (
	"fmt"

	"onlineindex/internal/btree"
	"onlineindex/internal/catalog"
	"onlineindex/internal/heap"
	"onlineindex/internal/rm"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// clrLogger wraps a rolling-back transaction so every record emitted by a
// compensation path is a redo-only CLR chained to the proper UndoNextLSN —
// compensations are never undone.
type clrLogger struct {
	tx       *txn.Txn
	undoNext types.LSN
}

func (c clrLogger) ID() types.TxnID { return c.tx.ID() }

func (c clrLogger) Log(r *wal.Record) (types.LSN, error) {
	r.Flags &^= wal.FlagUndo
	return c.tx.LogCLR(r, c.undoNext)
}

func (c clrLogger) LogCLR(r *wal.Record, _ types.LSN) (types.LSN, error) {
	r.Flags &^= wal.FlagUndo
	return c.tx.LogCLR(r, c.undoNext)
}

var _ rm.TxnLogger = clrLogger{}

// Undo implements txn.UndoDispatcher: it reverses one undoable log record,
// including the paper's Fig. 2 logic for data-page records — comparing the
// visible-index count stored in the record with the count visible at undo
// time and compensating the difference through the side-file or by logical
// index undo.
func (db *DB) Undo(tx *txn.Txn, rec *wal.Record, undoNext types.LSN) error {
	logger := clrLogger{tx: tx, undoNext: undoNext}
	switch rec.Type {
	case wal.TypeHeapInsert:
		pl, err := heap.DecodeInsert(rec.Payload)
		if err != nil {
			return err
		}
		// Undoing an insert deletes the record: old state = no record.
		return db.undoHeapOp(tx, logger, rec, pl.VisCount, pl.RID, pl.Rec, nil,
			func(h *heap.Table, decide heap.DecideFn) error {
				return h.UndoInsert(tx, pl, undoNext, decide)
			})

	case wal.TypeHeapDelete:
		pl, err := heap.DecodeDelete(rec.Payload)
		if err != nil {
			return err
		}
		// Undoing a delete reinserts the old record.
		return db.undoHeapOp(tx, logger, rec, pl.VisCount, pl.RID, nil, pl.Old,
			func(h *heap.Table, decide heap.DecideFn) error {
				return h.UndoDelete(tx, pl, undoNext, decide)
			})

	case wal.TypeHeapUpdate:
		pl, err := heap.DecodeUpdate(rec.Payload)
		if err != nil {
			return err
		}
		// Undoing an update restores the old image: delete the new key,
		// insert the old key.
		return db.undoHeapOp(tx, logger, rec, pl.VisCount, pl.RID, pl.New, pl.Old,
			func(h *heap.Table, decide heap.DecideFn) error {
				return h.UndoUpdate(tx, pl, undoNext, decide)
			})

	case wal.TypeIdxInsert:
		pl, err := btree.DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		// Every logical index undo changes the key's entry run, so the hash
		// fast path's cached run for that key must be invalidated — while the
		// rolling-back transaction still holds its X locks, same as forward
		// processing. The rollback-reactivates-a-pseudo-entry case is exactly
		// what stops the fast path from skipping entries whose deleter
		// aborted.
		err = tree.UndoInsert(tx, pl, undoNext)
		db.invalidateKeyByFile(rec.PageID.File, pl.Key)
		return err

	case wal.TypeIdxInsertNoop:
		pl, err := btree.DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		err = tree.UndoInsertNoop(tx, pl, undoNext)
		db.invalidateKeyByFile(rec.PageID.File, pl.Key)
		return err

	case wal.TypeIdxPseudoDel:
		pl, err := btree.DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		err = tree.UndoPseudoDelete(tx, pl, undoNext)
		db.invalidateKeyByFile(rec.PageID.File, pl.Key)
		return err

	case wal.TypeIdxReactivate:
		pl, err := btree.DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		err = tree.UndoReactivate(tx, pl, undoNext)
		db.invalidateKeyByFile(rec.PageID.File, pl.Key)
		return err

	case wal.TypeIdxDelete:
		pl, err := btree.DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		err = tree.UndoRemoveEntry(tx, pl, undoNext)
		db.invalidateKeyByFile(rec.PageID.File, pl.Key)
		return err

	case wal.TypeIdxMultiInsert:
		// Builder load-path batches only: the index is never readable while
		// its loader runs, so no point-lookup cache can exist to invalidate.
		pl, err := btree.DecodeMultiInsert(rec.Payload)
		if err != nil {
			return err
		}
		tree, err := db.treeByFile(rec.PageID.File)
		if err != nil {
			return err
		}
		return tree.UndoMultiInsert(tx, pl, undoNext)

	default:
		return fmt.Errorf("engine: no undo handler for record type %s", rec.Type)
	}
}

// treeByFile resolves the tree whose index file is f.
func (db *DB) treeByFile(f types.FileID) (*btree.Tree, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, t := range db.trees {
		if t.FileID() == f {
			return t, nil
		}
	}
	return nil, fmt.Errorf("engine: no open tree for index file %d", f)
}

// undoHeapOp undoes one data-page record and performs the index
// compensation of Fig. 2. delKey is the key the undo removes from indexes
// (the key of the record image being undone away); insKey is the key the
// undo adds back. Either may be nil.
//
// For each index visible at undo time, three cases:
//
//   - it was visible at op time (position < opVisCount) and was maintained
//     directly then (NSF/offline method, or an SF index whose build had
//     already completed when the op ran, rec.LSN >= CompleteLSN): the
//     transaction has its own index log records — nothing to do here;
//   - it was visible at op time through the side-file (SF method and
//     rec.LSN < CompleteLSN): mirror the compensation the forward pass would
//     have logged — a side-file append while capture is still on, or a
//     logical index undo if the build has since completed;
//   - it became visible after the op (position >= opVisCount, Fig. 2's
//     "data page log record's count < Current_Count"): compensate the index
//     builder's view — the builder extracted (or will extract) the post-op
//     record state, so apply the inverse through the side-file or the tree.
func (db *DB) undoHeapOp(tx *txn.Txn, logger clrLogger, rec *wal.Record, opVisCount uint16,
	rid types.RID, delRec, insRec []byte,
	heapUndo func(h *heap.Table, decide heap.DecideFn) error) error {

	tbl, err := db.tableByFile(rec.PageID.File)
	if err != nil {
		return err
	}
	h, err := db.heapOf(tbl.ID)
	if err != nil {
		return err
	}

	var plan opPlan
	if err := heapUndo(h, func(r types.RID) uint16 {
		plan = db.planUnderLatch(tbl.ID, r)
		return plan.visCount
	}); err != nil {
		return err
	}
	defer plan.release()
	if plan.err != nil {
		return plan.err
	}

	// Fig. 2's count comparison has a second direction that only restart can
	// produce: recovery restores an SF build's Current-RID from its last
	// *committed* checkpoint, which may trail the Current-RID the op saw, so
	// an index that was visible at op time (rid < Current-RID then) can be
	// invisible at undo time (rid >= Current-RID now). The op's side-file
	// entry is durable, but the resumed scan re-extracts the rid's region
	// from the post-undo heap and will not see the record — without a
	// compensating side-file entry the drain would replay the rolled-back
	// change. The record count exceeding the currently-visible count detects
	// exactly this; the surplus is matched to skipped SF plans in creation
	// order (exact whenever the table's SF builds share one builder's
	// Current-RID, which is how builds are run here).
	visibleNow := 0
	for i := range plan.plans {
		if plan.plans[i].mode != planSkip {
			visibleNow++
		}
	}
	deficit := int(opVisCount) - visibleNow

	visIdx := -1 // position among *visible* indexes, for the count comparison
	for i := range plan.plans {
		p := &plan.plans[i]
		if p.mode == planSkip {
			if deficit > 0 && p.ix.Method == catalog.MethodSF && p.ix.State == catalog.StateBuilding {
				deficit--
				if ctl := db.BuildCtlOf(p.ix.ID); ctl != nil {
					ctl.EnterAppend()
					if ctl.Phase() == PhaseCapture {
						sub := opPlan{plans: []idxPlan{{ix: p.ix, mode: planSideFile, ctl: ctl}}}
						if err := db.applyIndexOps(tx, logger, &sub, delRec, insRec, rid); err != nil {
							return err
						}
					} else {
						ctl.LeaveAppend()
					}
				}
			}
			continue
		}
		visIdx++
		visibleAtOp := visIdx < int(opVisCount)
		if visibleAtOp {
			maintainedBySideFile := p.ix.Method == catalog.MethodSF &&
				(p.ix.CompleteLSN == types.NilLSN || rec.LSN < p.ix.CompleteLSN)
			if !maintainedBySideFile {
				// The transaction logged its own index records; they are
				// undone individually. Just drop the gate if held.
				if p.mode == planSideFile {
					p.ctl.LeaveAppend()
					p.ctl = nil
				}
				continue
			}
		}
		// Compensate: remove delKey's effect / restore insKey.
		var delKey, insKey []byte
		if delRec != nil {
			if delKey, err = indexKeyFromRecord(&p.ix, delRec); err != nil {
				return err
			}
		}
		if insRec != nil {
			if insKey, err = indexKeyFromRecord(&p.ix, insRec); err != nil {
				return err
			}
		}
		if delRec != nil && insRec != nil && string(delKey) == string(insKey) {
			if p.mode == planSideFile {
				p.ctl.LeaveAppend()
				p.ctl = nil
			}
			continue
		}
		if err := db.applyIndexOps(tx, logger, &opPlan{plans: plan.plans[i : i+1]}, delRec, insRec, rid); err != nil {
			return err
		}
	}
	return nil
}

// tableByFile resolves the table whose heap file is f.
func (db *DB) tableByFile(f types.FileID) (catalog.Table, error) {
	for _, t := range db.cat.Tables() {
		if t.FileID == f {
			return t, nil
		}
	}
	return catalog.Table{}, fmt.Errorf("engine: no table for heap file %d", f)
}
