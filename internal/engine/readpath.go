package engine

import (
	"onlineindex/internal/enc"
	"onlineindex/internal/heap"
	"onlineindex/internal/readcache"
	"onlineindex/internal/types"
	"onlineindex/internal/zonemap"
)

// readCacheOf returns the index's hash point-lookup cache, creating it on
// first use; nil when the cache is disabled or the index is gone.
func (db *DB) readCacheOf(id types.IndexID) *readcache.Cache {
	if db.cfg.DisableReadCache {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if rc, ok := db.rcaches[id]; ok {
		return rc
	}
	if _, ok := db.trees[id]; !ok {
		return nil // dropped underneath us; don't resurrect state for it
	}
	rc := readcache.New(db.cfg.ReadCacheSize, readcache.MetricsFrom(db.met, "readcache"))
	db.rcaches[id] = rc
	return rc
}

// invalidateKey bumps the cached run of key in index id's cache, if one
// exists. Writers call it while still holding their X key locks, which is
// what makes the fast path's Validate-after-lock protocol sound.
func (db *DB) invalidateKey(id types.IndexID, key []byte) {
	db.mu.Lock()
	rc := db.rcaches[id]
	db.mu.Unlock()
	if rc != nil {
		rc.Invalidate(key)
	}
}

// invalidateKeyByFile is invalidateKey addressed by index file — the undo
// path only has the log record's PageID. treeFiles makes it a constant-time
// lookup; rollback-heavy workloads call this once per undone index record.
func (db *DB) invalidateKeyByFile(f types.FileID, key []byte) {
	db.mu.Lock()
	var rc *readcache.Cache
	if id, ok := db.treeFiles[f]; ok {
		rc = db.rcaches[id]
	}
	db.mu.Unlock()
	if rc != nil {
		rc.Invalidate(key)
	}
}

// zoneMapOf returns the table's zone-map sidecar, or nil when disabled.
func (db *DB) zoneMapOf(id types.TableID) *zonemap.Map {
	if db.cfg.DisableZoneMap {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.zmaps[id]
}

// installZoneMap creates the table's zone map and hooks it into the heap's
// mutation observer. Called wherever a heap is opened (CreateTable and
// recovery); a no-op when zone maps are disabled.
func (db *DB) installZoneMap(id types.TableID, h *heap.Table) {
	if db.cfg.DisableZoneMap {
		return
	}
	zm := zonemap.New(zonemap.DefaultBlockPages, zonemap.MetricsFrom(db.met, "zonemap"))
	db.mu.Lock()
	db.zmaps[id] = zm
	db.mu.Unlock()
	h.SetObserver(zmObserver{m: zm})
}

// zmObserver adapts heap mutation callbacks (raw record bytes, under the
// page X latch) to zone-map notes (per-column keyenc encodings).
type zmObserver struct{ m *zonemap.Map }

func (o zmObserver) HeapInsert(page types.PageNum, rec []byte) {
	o.m.NoteInsert(page, colSlices(rec), colIsNull)
}

func (o zmObserver) HeapDelete(page types.PageNum, old []byte) {
	o.m.NoteDelete(page, colSlices(old), colIsNull)
}

func (o zmObserver) HeapUpdate(page types.PageNum, old, new []byte) {
	o.m.NoteUpdate(page, colSlices(old), colSlices(new), colIsNull)
}

// colSlices splits an encoded heap record into its per-column keyenc
// encodings without decoding the values (EncodeRow is a count plus
// length-prefixed keyenc blobs, so this is pure slicing). A malformed record
// yields nil columns — the zone map then records the row with no bounds,
// which disables column pruning for the block (conservative, never wrong).
func colSlices(rec []byte) [][]byte {
	r := enc.NewReader(rec)
	n := int(r.U16())
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		b := r.Bytes32()
		if r.Err() != nil {
			return nil
		}
		out = append(out, b)
	}
	return out
}

// colIsNull reports whether a column encoding is the keyenc null (tag 0x00,
// one byte).
func colIsNull(v []byte) bool { return len(v) == 1 && v[0] == 0x00 }
