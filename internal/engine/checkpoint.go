package engine

import (
	"sort"

	"onlineindex/internal/buffer"
	"onlineindex/internal/enc"
	"onlineindex/internal/txn"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// checkpointImage is the payload of a TypeCheckpoint record: a fuzzy
// snapshot of the transaction table, the dirty page table, the catalog and
// the latest committed index-builder checkpoints. Restart analysis starts
// here instead of at the beginning of the log.
type checkpointImage struct {
	NextTxnID types.TxnID
	Txns      []txn.TxnSnapshot
	Dirty     []buffer.DirtyPage
	Catalog   []byte
	IBStates  map[types.IndexID][]byte
}

func (c *checkpointImage) encode() []byte {
	w := enc.NewWriter().U64(uint64(c.NextTxnID)).U32(uint32(len(c.Txns)))
	for _, t := range c.Txns {
		w.U64(uint64(t.ID)).LSN(t.FirstLSN).LSN(t.LastLSN)
	}
	w.U32(uint32(len(c.Dirty)))
	for _, d := range c.Dirty {
		w.PageID(d.ID).LSN(d.RecLSN)
	}
	w.Bytes32(c.Catalog)
	var ids []types.IndexID
	for id := range c.IBStates {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U32(uint32(id)).Bytes32(c.IBStates[id])
	}
	return w.Bytes()
}

func decodeCheckpoint(b []byte) (checkpointImage, error) {
	r := enc.NewReader(b)
	c := checkpointImage{NextTxnID: types.TxnID(r.U64()), IBStates: make(map[types.IndexID][]byte)}
	nt := int(r.U32())
	for i := 0; i < nt; i++ {
		c.Txns = append(c.Txns, txn.TxnSnapshot{
			ID: types.TxnID(r.U64()), FirstLSN: r.LSN(), LastLSN: r.LSN(),
		})
	}
	nd := int(r.U32())
	for i := 0; i < nd; i++ {
		c.Dirty = append(c.Dirty, buffer.DirtyPage{ID: r.PageID(), RecLSN: r.LSN()})
	}
	c.Catalog = r.Bytes32()
	ni := int(r.U32())
	for i := 0; i < ni; i++ {
		id := types.IndexID(r.U32())
		c.IBStates[id] = r.Bytes32()
	}
	return c, r.Err()
}

// Checkpoint writes a fuzzy checkpoint: no quiescing, just consistent-enough
// snapshots of the volatile tables, then the master record pointing at it.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	ib := make(map[types.IndexID][]byte, len(db.lastIBCkpt))
	for id, b := range db.lastIBCkpt {
		ib[id] = append([]byte(nil), b...)
	}
	db.mu.Unlock()
	img := checkpointImage{
		NextTxnID: 0, // analysis recomputes from the TT and the tail scan
		Txns:      db.txns.ActiveTxns(),
		Dirty:     db.pool.DirtyPages(),
		Catalog:   db.cat.Snapshot(),
		IBStates:  ib,
	}
	for _, t := range img.Txns {
		if t.ID > img.NextTxnID {
			img.NextTxnID = t.ID
		}
	}
	rec := &wal.Record{Type: wal.TypeCheckpoint, Flags: 0, Payload: img.encode()}
	lsn, err := db.log.Append(rec)
	if err != nil {
		return err
	}
	if err := db.log.Force(lsn); err != nil {
		return err
	}
	return wal.WriteMaster(db.fs, lsn)
}
