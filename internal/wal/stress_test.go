package wal

import (
	"sort"
	"sync"
	"testing"

	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// TestConcurrentAppendDense hammers the lock-free reserve-then-copy append
// path from many goroutines, with concurrent Force calls sealing and
// rotating segments underneath, then verifies the reservation discipline
// end to end: every returned LSN must be distinct, the sorted LSN sequence
// must be dense (each record starts exactly where the previous one ends —
// no holes, no overlaps), and a full iteration must surface every single
// append, byte-exact.
func TestConcurrentAppendDense(t *testing.T) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		appends = 1500 // ~8*1500*~250B spans dozens of 64KiB segments
	)
	type appended struct {
		lsn  types.LSN
		size int
	}
	results := make([][]appended, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Varying payload sizes so reservations interleave at odd offsets.
			payload := make([]byte, 100+w*37)
			for i := range payload {
				payload[i] = byte(w)
			}
			recs := make([]appended, 0, appends)
			for i := 0; i < appends; i++ {
				r := Record{
					Type: TypeHeapInsert, TxnID: types.TxnID(w + 1),
					Flags: FlagRedo, Payload: payload,
				}
				lsn, err := l.Append(&r)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				recs = append(recs, appended{lsn, r.EncodedSize()})
				if i%128 == 127 {
					// Periodic forcing seals segments mid-storm.
					if err := l.Force(lsn); err != nil {
						t.Errorf("writer %d force: %v", w, err)
						return
					}
				}
			}
			results[w] = recs
		}(w)
	}
	wg.Wait()

	var all []appended
	for _, recs := range results {
		all = append(all, recs...)
	}
	if len(all) != writers*appends {
		t.Fatalf("a writer died early: %d appends recorded", len(all))
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lsn < all[j].lsn })
	for i := 1; i < len(all); i++ {
		want := all[i-1].lsn + types.LSN(all[i-1].size)
		if all[i].lsn != want {
			t.Fatalf("reservation hole: record %d at LSN %d, previous ends at %d",
				i, all[i].lsn, want)
		}
	}

	// The iterator must replay the dense sequence exactly — unflushed tail
	// included — with per-record payloads intact.
	it, err := l.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatalf("iterate record %d: %v", i, err)
		}
		if !ok {
			break
		}
		if i >= len(all) {
			t.Fatalf("iterator produced more than %d records", len(all))
		}
		if r.LSN != all[i].lsn {
			t.Fatalf("record %d: iterator LSN %d, appended LSN %d", i, r.LSN, all[i].lsn)
		}
		for _, b := range r.Payload {
			if b != byte(r.TxnID-1) {
				t.Fatalf("record %d (txn %d): payload corrupted", i, r.TxnID)
			}
		}
		i++
	}
	if i != len(all) {
		t.Fatalf("iterator produced %d records, want %d", i, len(all))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
