package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

var (
	errTruncated = errors.New("wal: truncated record")
	errBadCRC    = errors.New("wal: checksum mismatch")
)

// logFileName and masterFileName are the fixed file names on the VFS.
const (
	logFileName    = "wal.log"
	masterFileName = "wal.master"
)

// Log is the append-only write-ahead log.
//
// Appends go to an in-memory tail buffer; Force writes the buffer through to
// the VFS file and syncs it, advancing FlushedLSN. The buffer pool enforces
// the WAL protocol by calling Force(pageLSN) before writing a dirty page,
// and the transaction manager forces the log at commit.
//
// Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       vfs.File
	nextLSN types.LSN // LSN the next record will receive
	flushed types.LSN // all records with LSN < flushed are durable
	buf     []byte    // unflushed tail; starts at LSN `flushed`

	stats Stats
	met   Metrics
}

// Metrics holds the log's registry handles; the zero value disables export.
type Metrics struct {
	Records *metrics.Counter
	Bytes   *metrics.Counter
	Forces  *metrics.Counter
}

// MetricsFrom resolves the log's standard instrument names on r.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Records: r.Counter("wal.records"),
		Bytes:   r.Counter("wal.bytes"),
		Forces:  r.Counter("wal.forces"),
	}
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (l *Log) SetMetrics(m Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
}

// Stats aggregates log-volume counters, reported by experiment E5 (the
// paper's §2.3.1/§4 logging-overhead claims).
type Stats struct {
	Records uint64
	Bytes   uint64
	Forces  uint64
	// Per-type record counts and bytes.
	ByType [numRecTypes]TypeStats
}

// TypeStats counts records and payload bytes of one record type.
type TypeStats struct {
	Records uint64
	Bytes   uint64
}

// Delta returns s minus prev, counter-wise.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Records: s.Records - prev.Records,
		Bytes:   s.Bytes - prev.Bytes,
		Forces:  s.Forces - prev.Forces,
	}
	for i := range s.ByType {
		d.ByType[i] = TypeStats{
			Records: s.ByType[i].Records - prev.ByType[i].Records,
			Bytes:   s.ByType[i].Bytes - prev.ByType[i].Bytes,
		}
	}
	return d
}

// TypeStat returns the counters for one record type.
func (s *Stats) TypeStat(t RecType) TypeStats { return s.ByType[t] }

// Open opens (or creates) the log on fs. Existing log contents are scanned
// to find the end of the valid log; a torn record at the tail (from a crash
// during an unforced write) is discarded.
func Open(fs vfs.FS) (*Log, error) {
	var f vfs.File
	exists, err := fs.Exists(logFileName)
	if err != nil {
		return nil, err
	}
	if exists {
		f, err = fs.Open(logFileName)
	} else {
		f, err = fs.Create(logFileName)
		if err == nil {
			err = f.Sync() // make the log file's existence durable immediately
		}
	}
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, nextLSN: 1, flushed: 1}
	if exists {
		if err := l.recoverTail(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// recoverTail scans the durable log to find its valid end and positions
// nextLSN/flushed there.
func (l *Log) recoverTail() error {
	size, err := l.f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return err
		}
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break // torn tail: log ends here
		}
		off += n
	}
	l.nextLSN = types.LSN(off) + 1
	l.flushed = l.nextLSN
	// Drop any torn tail so future appends land on a clean boundary.
	if int64(off) != size {
		if err := l.f.Truncate(int64(off)); err != nil {
			return err
		}
	}
	return nil
}

// Append assigns the next LSN to r, buffers its encoding, and returns the
// LSN. The record is not durable until Force reaches it.
func (l *Log) Append(r *Record) (types.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.buf = r.encode(l.buf)
	l.nextLSN += types.LSN(r.EncodedSize())
	l.stats.Records++
	l.stats.Bytes += uint64(r.EncodedSize())
	l.met.Records.Inc()
	l.met.Bytes.Add(uint64(r.EncodedSize()))
	if int(r.Type) < len(l.stats.ByType) {
		l.stats.ByType[r.Type].Records++
		l.stats.ByType[r.Type].Bytes += uint64(r.EncodedSize())
	}
	return r.LSN, nil
}

// Force makes every record with LSN <= lsn durable. Passing the latest LSN
// (or types.LSN(^uint64(0))) forces the whole log.
func (l *Log) Force(lsn types.LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn < l.flushed || len(l.buf) == 0 {
		return nil // already durable
	}
	if _, err := l.f.WriteAt(l.buf, int64(l.flushed-1)); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.flushed += types.LSN(len(l.buf))
	l.buf = l.buf[:0]
	l.stats.Forces++
	l.met.Forces.Inc()
	return nil
}

// FlushedLSN returns the first LSN that is NOT yet durable: every record
// with LSN < FlushedLSN survives a crash.
func (l *Log) FlushedLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats returns a snapshot of the log-volume counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close closes the underlying file without forcing (a deliberate crash
// leaves unforced records volatile).
func (l *Log) Close() error { return l.f.Close() }

// TailInfo describes how much of the log file's image parses as a valid
// record sequence.
type TailInfo struct {
	Size    int64 // log file size in bytes
	Valid   int64 // length of the decodable record prefix
	Records int   // records in that prefix
	Torn    bool  // bytes after the prefix failed to decode
}

// VerifyTail parses the log file on fs exactly as the next incarnation's
// recovery would and reports where the valid prefix ends. This is the
// durability contract the fault-injection oracle checks: a crash — even one
// that tears an in-flight log write — may only ever cut whole records off
// the end. The valid prefix always lands on a record boundary, never
// mid-record, because every record is framed by its length and CRC.
//
// A missing log file yields a zero TailInfo (an empty log is trivially
// valid).
func VerifyTail(fs vfs.FS) (TailInfo, error) {
	var ti TailInfo
	exists, err := fs.Exists(logFileName)
	if err != nil || !exists {
		return ti, err
	}
	f, err := fs.Open(logFileName)
	if err != nil {
		return ti, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return ti, err
	}
	ti.Size = size
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return ti, err
		}
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			ti.Torn = true
			break
		}
		off += n
		ti.Records++
	}
	ti.Valid = int64(off)
	return ti, nil
}

// WriteMaster durably records the LSN of the latest checkpoint record in the
// master file, which restart recovery reads first (ARIES master record).
func WriteMaster(fs vfs.FS, lsn types.LSN) error {
	f, err := fs.Create(masterFileName)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := f.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// ReadMaster returns the checkpoint LSN recorded by WriteMaster, or NilLSN
// if no master record exists (log scanned from the beginning).
func ReadMaster(fs vfs.FS) (types.LSN, error) {
	exists, err := fs.Exists(masterFileName)
	if err != nil || !exists {
		return types.NilLSN, err
	}
	f, err := fs.Open(masterFileName)
	if err != nil {
		return types.NilLSN, err
	}
	defer f.Close()
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil && err != io.EOF {
		return types.NilLSN, err
	}
	return types.LSN(binary.LittleEndian.Uint64(buf[:])), nil
}

// Iterator reads log records in LSN order. It reads through the volatile
// file image, so within one incarnation it also sees unforced records; after
// a crash the file only contains what was forced.
type Iterator struct {
	data []byte
	base types.LSN // LSN of data[0]
	off  int
}

// NewIterator returns an iterator positioned at `from` (use 1 or the
// checkpoint LSN). It snapshots the current log contents.
func (l *Log) NewIterator(from types.LSN) (*Iterator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == types.NilLSN {
		from = 1
	}
	size, err := l.f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size, int(size)+len(l.buf))
	if size > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	data = append(data, l.buf...)
	if from-1 > types.LSN(len(data)) {
		return nil, fmt.Errorf("wal: iterator start %d beyond log end %d", from, len(data)+1)
	}
	return &Iterator{data: data[from-1:], base: from}, nil
}

// Next returns the next record, or ok=false at the end of the log.
func (it *Iterator) Next() (Record, bool, error) {
	if it.off >= len(it.data) {
		return Record{}, false, nil
	}
	r, n, err := decodeRecord(it.data[it.off:])
	if err != nil {
		if errors.Is(err, errTruncated) {
			return Record{}, false, nil // clean end / torn tail
		}
		return Record{}, false, err
	}
	r.LSN = it.base + types.LSN(it.off)
	it.off += n
	return r, true, nil
}

// ReadAt returns the single record stored at the given LSN. Rollback uses it
// to walk a transaction's PrevLSN chain.
func (l *Log) ReadAt(lsn types.LSN) (Record, error) {
	it, err := l.NewIterator(lsn)
	if err != nil {
		return Record{}, err
	}
	r, ok, err := it.Next()
	if err != nil {
		return Record{}, err
	}
	if !ok {
		return Record{}, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	return r, nil
}
