package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

var (
	errTruncated = errors.New("wal: truncated record")
	errBadCRC    = errors.New("wal: checksum mismatch")
)

// LogFileName and masterFileName are the fixed file names on the VFS.
// LogFileName is exported so benchmarks can charge a simulated fsync cost to
// the log file alone (vfs.MemFS.SetSyncLatency's filter).
const (
	LogFileName    = "wal.log"
	masterFileName = "wal.master"
)

// Log is the append-only write-ahead log.
//
// Appends use a reserve-then-copy protocol that never takes the log mutex on
// the fast path: a CAS on the active segment's reserved-offset counter claims
// an LSN range, the record bytes are copied into the claimed range with no
// lock held, and a completion watermark (the segment's done counter) publishes
// the copy. A flush never writes a hole because sealing a segment waits until
// every claimed range has published — done == reserved means each reservation
// copied exactly its own bytes, so the sealed prefix is contiguous.
//
// Forcing is group commit with a double buffer, unchanged from the original
// protocol: the first Force caller that finds no flush in flight becomes the
// leader of a flush epoch, seals the active segment (rotating in a fresh one),
// releases the mutex, and performs one WriteAt+Sync covering every record
// appended so far. Concurrent Force callers whose target the in-flight epoch
// covers park on the epoch and share the leader's outcome — one fsync durably
// commits the whole batch, and a failed Sync fails every waiter of that epoch.
// Append never waits behind an in-flight fsync.
//
// Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       vfs.File
	flushed types.LSN // all records with LSN < flushed are durable

	// seg is the active append segment: reservations CAS its state counter
	// and copy outside the mutex. Rotation (seal + replace) happens only
	// under mu.
	seg atomic.Pointer[walSeg]
	// head holds sealed-but-unflushed bytes older than the active segment:
	// [flushed+len(inflight), seg.base). Iterator rotations and failed
	// flushes park bytes here; the next flush writes head first.
	head []byte
	// inflight holds the records the current epoch's leader is writing:
	// [flushed, flushed+len(inflight)). Empty when no flush is in flight.
	inflight []byte
	// spareSeg recycles a retired segment's array so steady-state rotation
	// ping-pongs between two arrays instead of reallocating.
	spareSeg []byte
	// readBuf is ReadAt's reusable record buffer: rollback walks a
	// transaction's PrevLSN chain one ReadAt per record, so the buffer grows
	// to the largest record read and is then reused with zero steady-state
	// allocations (decodeRecord copies the payload out, so reuse is safe).
	readBuf []byte

	flushing   bool        // a leader is (or is about to be) flushing
	curEpoch   *flushEpoch // epoch accepting waiters; nil unless flushing
	batchDelay time.Duration
	serial     bool // legacy serial-Force path (benchmark baseline)

	ctr walCounters
	met Metrics
}

// walSeg is one append segment. base and data are immutable after
// construction; state packs the reserved byte count with the seal bit, and
// done counts bytes whose copy has completed (the completion watermark:
// done == reserved means no reservation is still copying).
type walSeg struct {
	base  types.LSN // LSN of data[0]
	data  []byte    // fixed-size backing array (len == cap)
	state atomic.Int64
	done  atomic.Int64
}

// segSealed marks a segment closed to new reservations: appenders that see it
// reload the segment pointer (the rotator installs the successor under mu).
const segSealed = int64(1) << 62

// segDefaultSize is the capacity of a fresh append segment. Oversized records
// get a dedicated larger segment.
const segDefaultSize = 64 << 10

// walCounters are the log's internal statistics, atomic because Append
// updates them with no lock held.
type walCounters struct {
	records        atomic.Uint64
	bytes          atomic.Uint64
	forces         atomic.Uint64
	forceAttempts  atomic.Uint64
	forceErrors    atomic.Uint64
	reserveRetries atomic.Uint64
	byType         [numRecTypes]typeCounters
}

type typeCounters struct {
	records atomic.Uint64
	bytes   atomic.Uint64
}

// flushEpoch is one group flush: everyone whose commit the leader's single
// WriteAt+Sync covers parks on done and shares err.
type flushEpoch struct {
	done chan struct{}
	err  error
	// end is the first LSN NOT covered by this epoch. Zero while the leader
	// is still accumulating (batch-delay window): joiners' targets are
	// covered by construction, because the leader seals the append segment
	// after they joined.
	end     types.LSN
	waiters uint64 // batch size: leader + parked waiters
}

// Metrics holds the log's registry handles; the zero value disables export.
type Metrics struct {
	Records *metrics.Counter
	Bytes   *metrics.Counter
	// Forces counts completed (durable) flushes; ForceAttempts counts
	// initiated ones. attempts - forces - errors == in-flight right now, and
	// a growing ForceErrors is the admin-endpoint signal that fsync is
	// failing.
	Forces        *metrics.Counter
	ForceAttempts *metrics.Counter
	ForceErrors   *metrics.Counter
	// ReserveRetries counts Append reservation CAS attempts that lost the
	// race and retried — the residual contention on the lock-free path.
	ReserveRetries *metrics.Counter
	// BatchSize observes committers per group flush; WaitNs observes how
	// long a parked committer waited for its epoch's leader.
	BatchSize *metrics.Histogram
	WaitNs    *metrics.Histogram
}

// MetricsFrom resolves the log's standard instrument names on r.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Records:        r.Counter("wal.records"),
		Bytes:          r.Counter("wal.bytes"),
		Forces:         r.Counter("wal.forces"),
		ForceAttempts:  r.Counter("wal.force_attempts"),
		ForceErrors:    r.Counter("wal.force_errors"),
		ReserveRetries: r.Counter("wal.reserve_retries"),
		BatchSize:      r.Histogram("wal.group_commit.batch_size", metrics.ExpBounds(1, 10)),
		WaitNs:         r.Histogram("wal.group_commit.wait_ns", metrics.ExpBounds(1024, 21)),
	}
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (l *Log) SetMetrics(m Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
}

// SetBatchDelay sets the group-commit max batch delay: how long a flush
// leader lingers before sealing the append segment, letting more committers
// pile into its epoch. Zero (the default) flushes immediately; latency is
// then bounded by the in-flight fsync alone. Call before concurrent use.
func (l *Log) SetBatchDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batchDelay = d
}

// SetSerialForce switches Force to the pre-group-commit serial path that
// holds the log mutex across WriteAt+Sync. It exists only as the baseline for
// BenchmarkCommitThroughput; leave it off otherwise.
func (l *Log) SetSerialForce(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.serial = on
}

// Stats aggregates log-volume counters, reported by experiment E5 (the
// paper's §2.3.1/§4 logging-overhead claims).
type Stats struct {
	Records uint64
	Bytes   uint64
	// Forces counts completed flushes, ForceAttempts initiated ones, and
	// ForceErrors flushes that failed in WriteAt or Sync (the failed bytes
	// stay buffered and a later Force retries them).
	Forces        uint64
	ForceAttempts uint64
	ForceErrors   uint64
	// ReserveRetries counts Append LSN-reservation CAS retries.
	ReserveRetries uint64
	// Per-type record counts and bytes.
	ByType [numRecTypes]TypeStats
}

// TypeStats counts records and payload bytes of one record type.
type TypeStats struct {
	Records uint64
	Bytes   uint64
}

// Delta returns s minus prev, counter-wise.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Records:        s.Records - prev.Records,
		Bytes:          s.Bytes - prev.Bytes,
		Forces:         s.Forces - prev.Forces,
		ForceAttempts:  s.ForceAttempts - prev.ForceAttempts,
		ForceErrors:    s.ForceErrors - prev.ForceErrors,
		ReserveRetries: s.ReserveRetries - prev.ReserveRetries,
	}
	for i := range s.ByType {
		d.ByType[i] = TypeStats{
			Records: s.ByType[i].Records - prev.ByType[i].Records,
			Bytes:   s.ByType[i].Bytes - prev.ByType[i].Bytes,
		}
	}
	return d
}

// TypeStat returns the counters for one record type.
func (s *Stats) TypeStat(t RecType) TypeStats { return s.ByType[t] }

// Open opens (or creates) the log on fs. Existing log contents are scanned
// to find the end of the valid log; a torn record at the tail (from a crash
// during an unforced write) is discarded.
func Open(fs vfs.FS) (*Log, error) {
	var f vfs.File
	exists, err := fs.Exists(LogFileName)
	if err != nil {
		return nil, err
	}
	if exists {
		f, err = fs.Open(LogFileName)
	} else {
		f, err = fs.Create(LogFileName)
		if err == nil {
			err = f.Sync() // make the log file's existence durable immediately
		}
	}
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, flushed: 1}
	base := types.LSN(1)
	if exists {
		base, err = l.recoverTail()
		if err != nil {
			return nil, err
		}
	}
	l.seg.Store(&walSeg{base: base, data: make([]byte, segDefaultSize)})
	return l, nil
}

// recoverTail scans the durable log to find its valid end, positions flushed
// there and returns the LSN the first new record will receive.
func (l *Log) recoverTail() (types.LSN, error) {
	size, err := l.f.Size()
	if err != nil {
		return 0, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return 0, err
		}
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break // torn tail: log ends here
		}
		off += n
	}
	l.flushed = types.LSN(off) + 1
	// Drop any torn tail so future appends land on a clean boundary.
	if int64(off) != size {
		if err := l.f.Truncate(int64(off)); err != nil {
			return 0, err
		}
	}
	return l.flushed, nil
}

// Append assigns the next LSN to r, copies its encoding into the active
// segment, and returns the LSN. The record is not durable until Force reaches
// it. The fast path is lock-free: a CAS on the segment's reserved-offset
// counter claims the LSN range, the copy happens with no lock held, and the
// segment's completion watermark publishes it. Append never waits behind an
// in-flight fsync, and concurrent appenders never serialize on a mutex —
// only on the one CAS.
func (l *Log) Append(r *Record) (types.LSN, error) {
	size := r.EncodedSize()
	for {
		s := l.seg.Load()
		st := s.state.Load()
		if st&segSealed == 0 && int(st)+size <= len(s.data) {
			if !s.state.CompareAndSwap(st, st+int64(size)) {
				l.ctr.reserveRetries.Add(1)
				l.met.ReserveRetries.Inc()
				continue
			}
			off := int(st)
			r.LSN = s.base + types.LSN(off)
			// Copy outside any lock: encode appends into the claimed range
			// in place (len 0, cap exactly size, so no reallocation).
			l.mustFill(r, s.data[off:off:off+size])
			s.done.Add(int64(size))
			l.noteAppend(r, size)
			return r.LSN, nil
		}
		// Sealed (rotation in progress) or full: rotate under the mutex.
		l.rotateForAppend(size)
	}
}

// mustFill encodes r into the claimed range and asserts the encoding filled
// it exactly — a mismatch would tear the LSN address space.
func (l *Log) mustFill(r *Record, dst []byte) {
	out := r.encode(dst)
	if len(out) != cap(dst) {
		panic(fmt.Sprintf("wal: record encoded to %d bytes, reserved %d", len(out), cap(dst)))
	}
}

func (l *Log) noteAppend(r *Record, size int) {
	l.ctr.records.Add(1)
	l.ctr.bytes.Add(uint64(size))
	l.met.Records.Inc()
	l.met.Bytes.Add(uint64(size))
	if int(r.Type) < len(l.ctr.byType) {
		l.ctr.byType[r.Type].records.Add(1)
		l.ctr.byType[r.Type].bytes.Add(uint64(size))
	}
}

// rotateForAppend installs a fresh segment big enough for a size-byte record,
// sealing the current one and parking its bytes in head. A concurrent rotator
// may have done the work already; callers always re-check the active segment.
func (l *Log) rotateForAppend(size int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.seg.Load()
	st := s.state.Load()
	if st&segSealed == 0 && int(st)+size <= len(s.data) {
		return // lost the race to another rotator; segment already fits
	}
	l.retireSegLocked(s)
	if size > segDefaultSize {
		l.seg.Store(&walSeg{base: l.segEndLocked(s), data: make([]byte, size)})
	} else {
		l.seg.Store(&walSeg{base: l.segEndLocked(s), data: l.freshSegArrayLocked()})
	}
}

// retireSegLocked seals s and appends its reserved bytes to head. Called with
// l.mu held; the caller installs the successor segment.
func (l *Log) retireSegLocked(s *walSeg) {
	off := sealSeg(s)
	if off > 0 {
		l.head = append(l.head, s.data[:off]...)
	}
	if cap(s.data) == segDefaultSize {
		l.spareSeg = s.data
	}
}

// segEndLocked returns the LSN one past the last reserved byte of a sealed
// segment — the base of its successor.
func (l *Log) segEndLocked(s *walSeg) types.LSN {
	return s.base + types.LSN(s.state.Load()&^segSealed)
}

func (l *Log) freshSegArrayLocked() []byte {
	if l.spareSeg != nil {
		d := l.spareSeg
		l.spareSeg = nil
		return d
	}
	return make([]byte, segDefaultSize)
}

// sealSeg closes s to new reservations and waits for every claimed range to
// publish its copy. Returns the final reserved byte count. done == reserved
// is the no-holes watermark: every reservation added exactly its own size
// after copying, so a matching sum means the prefix is contiguous.
func sealSeg(s *walSeg) int64 {
	var off int64
	for {
		st := s.state.Load()
		if st&segSealed != 0 {
			panic("wal: segment sealed twice")
		}
		if s.state.CompareAndSwap(st, st|segSealed) {
			off = st
			break
		}
	}
	for s.done.Load() != off {
		runtime.Gosched() // a claimed copy is still in flight; it never blocks
	}
	return off
}

// sealRotateLocked seals the active segment, rotates in a fresh one, and
// returns every unflushed byte in LSN order: head (older sealed bytes) then
// the segment's reserved prefix. head is left empty; on a flush failure the
// caller parks the bytes back there. Called with l.mu held.
func (l *Log) sealRotateLocked() []byte {
	s := l.seg.Load()
	off := sealSeg(s)
	next := &walSeg{base: s.base + types.LSN(off), data: l.freshSegArrayLocked()}
	var data []byte
	if len(l.head) == 0 {
		// Common case: hand the segment's own prefix to the flusher with no
		// copy; its array is recycled when the successor retires.
		data = s.data[:off]
	} else {
		data = append(l.head, s.data[:off]...)
		if cap(s.data) == segDefaultSize && l.spareSeg == nil {
			l.spareSeg = s.data
		}
	}
	l.head = nil
	l.seg.Store(next)
	return data
}

// unflushedTail rotates the active segment into head and returns the
// buffered-but-not-yet-durable bytes starting at flushed. Test helper for
// simulating a flush that tore before its sync.
func (l *Log) unflushedTail() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.head = l.sealRotateLocked()
	return l.head
}

// nextLSNLocked returns the LSN the next appended record will receive.
// Called with l.mu held; concurrent reservations may advance it immediately.
func (l *Log) nextLSNLocked() types.LSN {
	s := l.seg.Load()
	return s.base + types.LSN(s.state.Load()&^segSealed)
}

// Force makes every record with LSN <= lsn durable before returning. Callers
// racing on the same region share one flush: see the group-commit protocol on
// Log. Passing types.LSN(^uint64(0)) forces the whole log, but prefer
// ForceAll for that.
func (l *Log) Force(lsn types.LSN) error {
	target := lsn + 1 // first LSN that need NOT be durable
	l.mu.Lock()
	defer l.mu.Unlock()
	// Clamp overflow (lsn == ^uint64(0)) and targets beyond the last
	// assigned LSN to "everything appended so far": an unassigned LSN can't
	// become durable, and NextLSN-style callers mean the current end of log.
	if next := l.nextLSNLocked(); target < lsn || target > next {
		target = next
	}
	return l.forceLocked(target)
}

// ForceAll makes every record appended so far durable. It is the one
// unambiguous "flush everything" entry point (checkpoint barriers, engine
// Close, tests) — unlike Force(NextLSN()), which leans on target clamping.
func (l *Log) ForceAll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(l.nextLSNLocked())
}

// forceLocked makes every LSN < target durable. Called and returns with l.mu
// held; parks (mutex released) while waiting on an in-flight epoch.
func (l *Log) forceLocked(target types.LSN) error {
	if l.serial {
		return l.serialForceLocked(target)
	}
	for {
		if l.flushed >= target {
			return nil // already durable
		}
		if !l.flushing {
			// No flush in flight: this caller leads a new epoch, which
			// covers every record appended so far — including target.
			return l.leadFlush()
		}
		ep := l.curEpoch
		if ep.end != 0 && target > ep.end {
			// The in-flight flush stops short of target. Wait for it to
			// retire (off-mutex), then go around: we'll lead the next
			// epoch or join one that covers us.
			l.mu.Unlock()
			<-ep.done
			l.mu.Lock()
			continue
		}
		// Covered: either the epoch's range is fixed and includes target,
		// or the leader is still accumulating (end == 0) and will seal the
		// append segment — which holds target — when it proceeds.
		ep.waiters++
		l.mu.Unlock()
		start := time.Now()
		<-ep.done
		wait := time.Since(start)
		l.mu.Lock()
		l.met.WaitNs.Observe(uint64(wait))
		// The leader's outcome is the whole epoch's outcome: a failed Sync
		// fails every waiter, a successful one made target durable.
		return ep.err
	}
}

// leadFlush runs one flush epoch as its leader. Called with l.mu held and
// unflushed bytes buffered; returns with l.mu held.
func (l *Log) leadFlush() error {
	ep := &flushEpoch{done: make(chan struct{}), waiters: 1}
	l.curEpoch = ep
	l.flushing = true
	if l.batchDelay > 0 {
		// Linger with the mutex released so more committers append their
		// commit records and join this epoch.
		l.mu.Unlock()
		time.Sleep(l.batchDelay)
		l.mu.Lock()
	}
	data := l.sealRotateLocked()
	base := l.flushed
	ep.end = base + types.LSN(len(data))
	l.inflight = data
	l.ctr.forceAttempts.Add(1)
	l.met.ForceAttempts.Inc()
	l.mu.Unlock()

	_, err := l.f.WriteAt(data, int64(base-1))
	if err == nil {
		err = l.f.Sync()
	}

	l.mu.Lock()
	if err == nil {
		l.flushed = ep.end
		l.ctr.forces.Add(1)
		l.met.Forces.Inc()
		l.met.BatchSize.Observe(ep.waiters)
	} else {
		// The flush failed: its records are not durable. Put them back in
		// front of head so a later Force retries them; the iterator never
		// trusts file bytes at or beyond flushed, so a half-applied WriteAt
		// can't surface. head may have gained newer sealed bytes during the
		// flush (an append-path rotation) — the failed batch is older.
		l.head = append(data, l.head...)
		l.ctr.forceErrors.Add(1)
		l.met.ForceErrors.Inc()
	}
	l.inflight = nil
	l.flushing = false
	l.curEpoch = nil
	ep.err = err
	close(ep.done)
	return err
}

// serialForceLocked is the pre-group-commit Force: one caller at a time,
// mutex held across WriteAt+Sync. Kept as the benchmark baseline
// (SetSerialForce).
func (l *Log) serialForceLocked(target types.LSN) error {
	if l.flushed >= target {
		return nil
	}
	data := l.sealRotateLocked()
	l.ctr.forceAttempts.Add(1)
	l.met.ForceAttempts.Inc()
	if _, err := l.f.WriteAt(data, int64(l.flushed-1)); err != nil {
		l.head = data
		l.ctr.forceErrors.Add(1)
		l.met.ForceErrors.Inc()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.head = data
		l.ctr.forceErrors.Add(1)
		l.met.ForceErrors.Inc()
		return err
	}
	l.flushed += types.LSN(len(data))
	l.ctr.forces.Add(1)
	l.met.Forces.Inc()
	return nil
}

// FlushedLSN returns the first LSN that is NOT yet durable: every record
// with LSN < FlushedLSN survives a crash.
func (l *Log) FlushedLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSNLocked()
}

// Stats returns a snapshot of the log-volume counters.
func (l *Log) Stats() Stats {
	s := Stats{
		Records:        l.ctr.records.Load(),
		Bytes:          l.ctr.bytes.Load(),
		Forces:         l.ctr.forces.Load(),
		ForceAttempts:  l.ctr.forceAttempts.Load(),
		ForceErrors:    l.ctr.forceErrors.Load(),
		ReserveRetries: l.ctr.reserveRetries.Load(),
	}
	for i := range l.ctr.byType {
		s.ByType[i] = TypeStats{
			Records: l.ctr.byType[i].records.Load(),
			Bytes:   l.ctr.byType[i].bytes.Load(),
		}
	}
	return s
}

// Close closes the underlying file without forcing (a deliberate crash
// leaves unforced records volatile).
func (l *Log) Close() error { return l.f.Close() }

// TailInfo describes how much of the log file's image parses as a valid
// record sequence.
type TailInfo struct {
	Size    int64 // log file size in bytes
	Valid   int64 // length of the decodable record prefix
	Records int   // records in that prefix
	Torn    bool  // bytes after the prefix failed to decode
}

// VerifyTail parses the log file on fs exactly as the next incarnation's
// recovery would and reports where the valid prefix ends. This is the
// durability contract the fault-injection oracle checks: a crash — even one
// that tears an in-flight log write — may only ever cut whole records off
// the end. The valid prefix always lands on a record boundary, never
// mid-record, because every record is framed by its length and CRC.
//
// A missing log file yields a zero TailInfo (an empty log is trivially
// valid).
func VerifyTail(fs vfs.FS) (TailInfo, error) {
	var ti TailInfo
	exists, err := fs.Exists(LogFileName)
	if err != nil || !exists {
		return ti, err
	}
	f, err := fs.Open(LogFileName)
	if err != nil {
		return ti, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return ti, err
	}
	ti.Size = size
	// Stream the file through a sliding window instead of materializing it:
	// the window holds the unparsed remainder plus one read chunk, growing
	// only if a single record exceeds it, and records are validated in place
	// (no per-record payload copy). The crash sweep calls this once per
	// fault schedule, so the old whole-file allocation was O(schedules ×
	// log size).
	const verifyChunk = 1 << 16
	buf := make([]byte, 0, 2*verifyChunk)
	pos := 0         // parse position within buf
	next := int64(0) // next unread file offset; buf[pos:] == file[valid, next)
	for {
		n, err := validateRecord(buf[pos:])
		if err == nil {
			pos += n
			ti.Records++
			ti.Valid += int64(n)
			continue
		}
		if err == errTruncated && next < size {
			// The window may simply be short: slide the remainder to the
			// front and top up with one more chunk.
			buf = append(buf[:0], buf[pos:]...)
			pos = 0
			take := int64(verifyChunk)
			if take > size-next {
				take = size - next
			}
			if cap(buf)-len(buf) < int(take) {
				// One record is larger than the window (oversized payloads
				// get dedicated log segments): grow once and keep the array.
				grown := make([]byte, len(buf), len(buf)+int(take)+verifyChunk)
				copy(grown, buf)
				buf = grown
			}
			start := len(buf)
			buf = buf[:start+int(take)]
			if _, err := f.ReadAt(buf[start:], next); err != nil && err != io.EOF {
				return ti, err
			}
			next += take
			continue
		}
		break
	}
	ti.Torn = ti.Valid < size
	return ti, nil
}

// WriteMaster durably records the LSN of the latest checkpoint record in the
// master file, which restart recovery reads first (ARIES master record).
func WriteMaster(fs vfs.FS, lsn types.LSN) error {
	f, err := fs.Create(masterFileName)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := f.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// ReadMaster returns the checkpoint LSN recorded by WriteMaster, or NilLSN
// if no master record exists (log scanned from the beginning).
func ReadMaster(fs vfs.FS) (types.LSN, error) {
	exists, err := fs.Exists(masterFileName)
	if err != nil || !exists {
		return types.NilLSN, err
	}
	f, err := fs.Open(masterFileName)
	if err != nil {
		return types.NilLSN, err
	}
	defer f.Close()
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil && err != io.EOF {
		return types.NilLSN, err
	}
	return types.LSN(binary.LittleEndian.Uint64(buf[:])), nil
}

// Iterator reads log records in LSN order. It reads through the volatile
// log image, so within one incarnation it also sees unforced records; after
// a crash the file only contains what was forced.
type Iterator struct {
	data []byte
	base types.LSN // LSN of data[0]
	off  int
}

// NewIterator returns an iterator positioned at `from` (use 1 or the
// checkpoint LSN). It snapshots the current log contents: the durable file
// prefix below flushed, then any in-flight flush buffer, then the buffered
// tail. To capture a consistent tail the active segment is sealed and
// rotated (waiting out any in-flight record copies), exactly as a flush
// leader would, but the bytes stay buffered. File bytes at or beyond flushed
// are never trusted — a failed flush may have written them without making
// them durable, and the buffered copy is the authoritative one.
func (l *Log) NewIterator(from types.LSN) (*Iterator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == types.NilLSN {
		from = 1
	}
	size, err := l.f.Size()
	if err != nil {
		return nil, err
	}
	// Rotate the active segment into head so the snapshot below sees every
	// completed append.
	l.head = l.sealRotateLocked()
	durable := int64(l.flushed - 1)
	if durable > size {
		durable = size
	}
	data := make([]byte, durable, int(durable)+len(l.inflight)+len(l.head))
	if durable > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	data = append(data, l.inflight...)
	data = append(data, l.head...)
	if from-1 > types.LSN(len(data)) {
		return nil, fmt.Errorf("wal: iterator start %d beyond log end %d", from, len(data)+1)
	}
	return &Iterator{data: data[from-1:], base: from}, nil
}

// Next returns the next record, or ok=false at the end of the log.
func (it *Iterator) Next() (Record, bool, error) {
	if it.off >= len(it.data) {
		return Record{}, false, nil
	}
	r, n, err := decodeRecord(it.data[it.off:])
	if err != nil {
		if errors.Is(err, errTruncated) {
			return Record{}, false, nil // clean end / torn tail
		}
		return Record{}, false, err
	}
	r.LSN = it.base + types.LSN(it.off)
	it.off += n
	return r, true, nil
}

// ReadAt returns the single record stored at the given LSN. Rollback uses it
// to walk a transaction's PrevLSN chain.
//
// Unlike NewIterator it does not snapshot the log: the record is located in
// whichever region holds it — the durable file prefix (read through the
// reusable scratch buffer), the in-flight flush buffer, or the sealed head —
// so a rollback over a large log costs one bounded read per record instead
// of one whole-log copy per record.
func (l *Log) ReadAt(lsn types.LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == types.NilLSN {
		return Record{}, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	// Rotate completed appends into head so the record is addressable
	// whether it is durable, mid-flush, or only buffered — the same
	// visibility NewIterator establishes. When the active segment is empty
	// the rotation would be a no-op, so skip it: a rollback chain walked
	// after a force then costs no segment churn (and no allocation) at all.
	if s := l.seg.Load(); s.state.Load()&^segSealed != 0 {
		l.head = l.sealRotateLocked()
	}
	size, err := l.f.Size()
	if err != nil {
		return Record{}, err
	}
	durable := int64(l.flushed - 1)
	if durable > size {
		durable = size
	}
	pos := int64(lsn - 1)
	// Flushes cover whole records, so a record never straddles the
	// durable/inflight or inflight/head boundaries: exactly one region
	// holds it end to end.
	var b []byte
	switch {
	case pos < durable:
		b, err = l.readDurableLocked(pos, durable)
		if err != nil {
			return Record{}, err
		}
	case pos < durable+int64(len(l.inflight)):
		b = l.inflight[pos-durable:]
	case pos < durable+int64(len(l.inflight))+int64(len(l.head)):
		b = l.head[pos-durable-int64(len(l.inflight)):]
	default:
		return Record{}, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	r, _, err := decodeRecord(b)
	if err != nil {
		return Record{}, err
	}
	r.LSN = lsn
	return r, nil
}

// readDurableLocked returns the encoded bytes of the single record starting
// at file offset pos, reading through l.readBuf. Only bytes below durable
// are trusted from the file (a failed flush may have written further without
// making them durable); the frame length is read first, then exactly the
// record.
func (l *Log) readDurableLocked(pos, durable int64) ([]byte, error) {
	if pos+lenSize > durable {
		return nil, fmt.Errorf("wal: truncated record frame at LSN %d", pos+1)
	}
	// The header is read through l.readBuf rather than a stack array: a
	// stack buffer handed to the vfs.File interface escapes, and this path
	// must stay allocation-free in steady state.
	if cap(l.readBuf) < headerSize {
		l.readBuf = make([]byte, headerSize)
	}
	hdr := l.readBuf[:lenSize]
	if _, err := l.f.ReadAt(hdr, pos); err != nil && err != io.EOF {
		return nil, err
	}
	total := int64(binary.LittleEndian.Uint32(hdr))
	end := pos + lenSize + crcSize + total
	if total < fixedSize || end > durable {
		return nil, fmt.Errorf("wal: corrupt record frame at LSN %d", pos+1)
	}
	n := int(end - pos)
	if cap(l.readBuf) < n {
		l.readBuf = make([]byte, n)
	}
	buf := l.readBuf[:n]
	if _, err := l.f.ReadAt(buf, pos); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}
