package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

var (
	errTruncated = errors.New("wal: truncated record")
	errBadCRC    = errors.New("wal: checksum mismatch")
)

// LogFileName and masterFileName are the fixed file names on the VFS.
// LogFileName is exported so benchmarks can charge a simulated fsync cost to
// the log file alone (vfs.MemFS.SetSyncLatency's filter).
const (
	LogFileName    = "wal.log"
	masterFileName = "wal.master"
)

// Log is the append-only write-ahead log.
//
// Appends go to an in-memory tail buffer; Force writes buffered records
// through to the VFS file and syncs them, advancing FlushedLSN. The buffer
// pool enforces the WAL protocol by calling Force(pageLSN) before writing a
// dirty page, and the transaction manager forces the log at commit.
//
// Forcing is group commit with a double buffer: the log keeps an append
// buffer (buf) and at most one in-flight flush buffer (inflight). The first
// Force caller that finds no flush in flight becomes the leader of a flush
// epoch: it swaps the append buffer out, releases the mutex, and performs one
// WriteAt+Sync covering every record appended so far. Concurrent Force
// callers whose target the in-flight epoch covers park on the epoch and share
// the leader's outcome — one fsync durably commits the whole batch, and a
// failed Sync fails every waiter of that epoch. Append only ever touches the
// append buffer, so it never waits behind an in-flight fsync.
//
// Log is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	f       vfs.File
	nextLSN types.LSN // LSN the next record will receive
	flushed types.LSN // all records with LSN < flushed are durable

	// buf holds records not yet handed to a flush: [flushed, nextLSN) when
	// idle, [flushed+len(inflight), nextLSN) while a flush is in flight.
	buf []byte
	// inflight holds the records the current epoch's leader is writing:
	// [flushed, flushed+len(inflight)). Empty when no flush is in flight.
	inflight []byte
	// spare recycles the buffer a successful flush retires, so steady-state
	// group commit ping-pongs between two arrays instead of reallocating.
	spare []byte

	flushing   bool        // a leader is (or is about to be) flushing
	curEpoch   *flushEpoch // epoch accepting waiters; nil unless flushing
	batchDelay time.Duration
	serial     bool // legacy serial-Force path (benchmark baseline)

	stats Stats
	met   Metrics
}

// flushEpoch is one group flush: everyone whose commit the leader's single
// WriteAt+Sync covers parks on done and shares err.
type flushEpoch struct {
	done chan struct{}
	err  error
	// end is the first LSN NOT covered by this epoch. Zero while the leader
	// is still accumulating (batch-delay window): joiners' targets are
	// covered by construction, because the leader swaps the append buffer
	// after they joined.
	end     types.LSN
	waiters uint64 // batch size: leader + parked waiters
}

// Metrics holds the log's registry handles; the zero value disables export.
type Metrics struct {
	Records *metrics.Counter
	Bytes   *metrics.Counter
	// Forces counts completed (durable) flushes; ForceAttempts counts
	// initiated ones. attempts - forces - errors == in-flight right now, and
	// a growing ForceErrors is the admin-endpoint signal that fsync is
	// failing.
	Forces        *metrics.Counter
	ForceAttempts *metrics.Counter
	ForceErrors   *metrics.Counter
	// BatchSize observes committers per group flush; WaitNs observes how
	// long a parked committer waited for its epoch's leader.
	BatchSize *metrics.Histogram
	WaitNs    *metrics.Histogram
}

// MetricsFrom resolves the log's standard instrument names on r.
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Records:       r.Counter("wal.records"),
		Bytes:         r.Counter("wal.bytes"),
		Forces:        r.Counter("wal.forces"),
		ForceAttempts: r.Counter("wal.force_attempts"),
		ForceErrors:   r.Counter("wal.force_errors"),
		BatchSize:     r.Histogram("wal.group_commit.batch_size", metrics.ExpBounds(1, 10)),
		WaitNs:        r.Histogram("wal.group_commit.wait_ns", metrics.ExpBounds(1024, 21)),
	}
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (l *Log) SetMetrics(m Metrics) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.met = m
}

// SetBatchDelay sets the group-commit max batch delay: how long a flush
// leader lingers before swapping the append buffer, letting more committers
// pile into its epoch. Zero (the default) flushes immediately; latency is
// then bounded by the in-flight fsync alone. Call before concurrent use.
func (l *Log) SetBatchDelay(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.batchDelay = d
}

// SetSerialForce switches Force to the pre-group-commit serial path that
// holds the log mutex across WriteAt+Sync. It exists only as the baseline for
// BenchmarkCommitThroughput; leave it off otherwise.
func (l *Log) SetSerialForce(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.serial = on
}

// Stats aggregates log-volume counters, reported by experiment E5 (the
// paper's §2.3.1/§4 logging-overhead claims).
type Stats struct {
	Records uint64
	Bytes   uint64
	// Forces counts completed flushes, ForceAttempts initiated ones, and
	// ForceErrors flushes that failed in WriteAt or Sync (the failed bytes
	// stay buffered and a later Force retries them).
	Forces        uint64
	ForceAttempts uint64
	ForceErrors   uint64
	// Per-type record counts and bytes.
	ByType [numRecTypes]TypeStats
}

// TypeStats counts records and payload bytes of one record type.
type TypeStats struct {
	Records uint64
	Bytes   uint64
}

// Delta returns s minus prev, counter-wise.
func (s Stats) Delta(prev Stats) Stats {
	d := Stats{
		Records:       s.Records - prev.Records,
		Bytes:         s.Bytes - prev.Bytes,
		Forces:        s.Forces - prev.Forces,
		ForceAttempts: s.ForceAttempts - prev.ForceAttempts,
		ForceErrors:   s.ForceErrors - prev.ForceErrors,
	}
	for i := range s.ByType {
		d.ByType[i] = TypeStats{
			Records: s.ByType[i].Records - prev.ByType[i].Records,
			Bytes:   s.ByType[i].Bytes - prev.ByType[i].Bytes,
		}
	}
	return d
}

// TypeStat returns the counters for one record type.
func (s *Stats) TypeStat(t RecType) TypeStats { return s.ByType[t] }

// Open opens (or creates) the log on fs. Existing log contents are scanned
// to find the end of the valid log; a torn record at the tail (from a crash
// during an unforced write) is discarded.
func Open(fs vfs.FS) (*Log, error) {
	var f vfs.File
	exists, err := fs.Exists(LogFileName)
	if err != nil {
		return nil, err
	}
	if exists {
		f, err = fs.Open(LogFileName)
	} else {
		f, err = fs.Create(LogFileName)
		if err == nil {
			err = f.Sync() // make the log file's existence durable immediately
		}
	}
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, nextLSN: 1, flushed: 1}
	if exists {
		if err := l.recoverTail(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// recoverTail scans the durable log to find its valid end and positions
// nextLSN/flushed there.
func (l *Log) recoverTail() error {
	size, err := l.f.Size()
	if err != nil {
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return err
		}
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			break // torn tail: log ends here
		}
		off += n
	}
	l.nextLSN = types.LSN(off) + 1
	l.flushed = l.nextLSN
	// Drop any torn tail so future appends land on a clean boundary.
	if int64(off) != size {
		if err := l.f.Truncate(int64(off)); err != nil {
			return err
		}
	}
	return nil
}

// Append assigns the next LSN to r, buffers its encoding, and returns the
// LSN. The record is not durable until Force reaches it. Append only takes
// the log mutex — never the in-flight fsync — so its latency is independent
// of any concurrent Force.
func (l *Log) Append(r *Record) (types.LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = l.nextLSN
	l.buf = r.encode(l.buf)
	l.nextLSN += types.LSN(r.EncodedSize())
	l.stats.Records++
	l.stats.Bytes += uint64(r.EncodedSize())
	l.met.Records.Inc()
	l.met.Bytes.Add(uint64(r.EncodedSize()))
	if int(r.Type) < len(l.stats.ByType) {
		l.stats.ByType[r.Type].Records++
		l.stats.ByType[r.Type].Bytes += uint64(r.EncodedSize())
	}
	return r.LSN, nil
}

// Force makes every record with LSN <= lsn durable before returning. Callers
// racing on the same region share one flush: see the group-commit protocol on
// Log. Passing types.LSN(^uint64(0)) forces the whole log, but prefer
// ForceAll for that.
func (l *Log) Force(lsn types.LSN) error {
	target := lsn + 1 // first LSN that need NOT be durable
	l.mu.Lock()
	defer l.mu.Unlock()
	// Clamp overflow (lsn == ^uint64(0)) and targets beyond the last
	// assigned LSN to "everything appended so far": an unassigned LSN can't
	// become durable, and NextLSN-style callers mean the current end of log.
	if target < lsn || target > l.nextLSN {
		target = l.nextLSN
	}
	return l.forceLocked(target)
}

// ForceAll makes every record appended so far durable. It is the one
// unambiguous "flush everything" entry point (checkpoint barriers, engine
// Close, tests) — unlike Force(NextLSN()), which leans on target clamping.
func (l *Log) ForceAll() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forceLocked(l.nextLSN)
}

// forceLocked makes every LSN < target durable. Called and returns with l.mu
// held; parks (mutex released) while waiting on an in-flight epoch.
func (l *Log) forceLocked(target types.LSN) error {
	if l.serial {
		return l.serialForceLocked(target)
	}
	for {
		if l.flushed >= target {
			return nil // already durable
		}
		if !l.flushing {
			// No flush in flight: this caller leads a new epoch, which
			// covers every record appended so far — including target.
			return l.leadFlush()
		}
		ep := l.curEpoch
		if ep.end != 0 && target > ep.end {
			// The in-flight flush stops short of target. Wait for it to
			// retire (off-mutex), then go around: we'll lead the next
			// epoch or join one that covers us.
			l.mu.Unlock()
			<-ep.done
			l.mu.Lock()
			continue
		}
		// Covered: either the epoch's range is fixed and includes target,
		// or the leader is still accumulating (end == 0) and will swap the
		// append buffer — which holds target — when it proceeds.
		ep.waiters++
		l.mu.Unlock()
		start := time.Now()
		<-ep.done
		wait := time.Since(start)
		l.mu.Lock()
		l.met.WaitNs.Observe(uint64(wait))
		// The leader's outcome is the whole epoch's outcome: a failed Sync
		// fails every waiter, a successful one made target durable.
		return ep.err
	}
}

// leadFlush runs one flush epoch as its leader. Called with l.mu held and a
// non-empty append buffer; returns with l.mu held.
func (l *Log) leadFlush() error {
	ep := &flushEpoch{done: make(chan struct{}), waiters: 1}
	l.curEpoch = ep
	l.flushing = true
	if l.batchDelay > 0 {
		// Linger with the mutex released so more committers append their
		// commit records and join this epoch.
		l.mu.Unlock()
		time.Sleep(l.batchDelay)
		l.mu.Lock()
	}
	data := l.buf
	if l.spare != nil {
		l.buf = l.spare[:0]
		l.spare = nil
	} else {
		l.buf = nil
	}
	base := l.flushed
	ep.end = base + types.LSN(len(data))
	l.inflight = data
	l.stats.ForceAttempts++
	l.met.ForceAttempts.Inc()
	l.mu.Unlock()

	_, err := l.f.WriteAt(data, int64(base-1))
	if err == nil {
		err = l.f.Sync()
	}

	l.mu.Lock()
	if err == nil {
		l.flushed = ep.end
		l.spare = data[:0]
		l.stats.Forces++
		l.met.Forces.Inc()
		l.met.BatchSize.Observe(ep.waiters)
	} else {
		// The flush failed: its records are not durable. Put them back in
		// front of the append buffer so a later Force retries them; the
		// iterator never trusts file bytes at or beyond flushed, so a
		// half-applied WriteAt can't surface.
		l.buf = append(data, l.buf...)
		l.stats.ForceErrors++
		l.met.ForceErrors.Inc()
	}
	l.inflight = nil
	l.flushing = false
	l.curEpoch = nil
	ep.err = err
	close(ep.done)
	return err
}

// serialForceLocked is the pre-group-commit Force: one caller at a time,
// mutex held across WriteAt+Sync. Kept as the benchmark baseline
// (SetSerialForce).
func (l *Log) serialForceLocked(target types.LSN) error {
	if l.flushed >= target {
		return nil
	}
	l.stats.ForceAttempts++
	l.met.ForceAttempts.Inc()
	if _, err := l.f.WriteAt(l.buf, int64(l.flushed-1)); err != nil {
		l.stats.ForceErrors++
		l.met.ForceErrors.Inc()
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.stats.ForceErrors++
		l.met.ForceErrors.Inc()
		return err
	}
	l.flushed += types.LSN(len(l.buf))
	l.buf = l.buf[:0]
	l.stats.Forces++
	l.met.Forces.Inc()
	return nil
}

// FlushedLSN returns the first LSN that is NOT yet durable: every record
// with LSN < FlushedLSN survives a crash.
func (l *Log) FlushedLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushed
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() types.LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Stats returns a snapshot of the log-volume counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close closes the underlying file without forcing (a deliberate crash
// leaves unforced records volatile).
func (l *Log) Close() error { return l.f.Close() }

// TailInfo describes how much of the log file's image parses as a valid
// record sequence.
type TailInfo struct {
	Size    int64 // log file size in bytes
	Valid   int64 // length of the decodable record prefix
	Records int   // records in that prefix
	Torn    bool  // bytes after the prefix failed to decode
}

// VerifyTail parses the log file on fs exactly as the next incarnation's
// recovery would and reports where the valid prefix ends. This is the
// durability contract the fault-injection oracle checks: a crash — even one
// that tears an in-flight log write — may only ever cut whole records off
// the end. The valid prefix always lands on a record boundary, never
// mid-record, because every record is framed by its length and CRC.
//
// A missing log file yields a zero TailInfo (an empty log is trivially
// valid).
func VerifyTail(fs vfs.FS) (TailInfo, error) {
	var ti TailInfo
	exists, err := fs.Exists(LogFileName)
	if err != nil || !exists {
		return ti, err
	}
	f, err := fs.Open(LogFileName)
	if err != nil {
		return ti, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return ti, err
	}
	ti.Size = size
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return ti, err
		}
	}
	off := 0
	for off < len(data) {
		_, n, err := decodeRecord(data[off:])
		if err != nil {
			ti.Torn = true
			break
		}
		off += n
		ti.Records++
	}
	ti.Valid = int64(off)
	return ti, nil
}

// WriteMaster durably records the LSN of the latest checkpoint record in the
// master file, which restart recovery reads first (ARIES master record).
func WriteMaster(fs vfs.FS, lsn types.LSN) error {
	f, err := fs.Create(masterFileName)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(lsn))
	if _, err := f.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return f.Sync()
}

// ReadMaster returns the checkpoint LSN recorded by WriteMaster, or NilLSN
// if no master record exists (log scanned from the beginning).
func ReadMaster(fs vfs.FS) (types.LSN, error) {
	exists, err := fs.Exists(masterFileName)
	if err != nil || !exists {
		return types.NilLSN, err
	}
	f, err := fs.Open(masterFileName)
	if err != nil {
		return types.NilLSN, err
	}
	defer f.Close()
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil && err != io.EOF {
		return types.NilLSN, err
	}
	return types.LSN(binary.LittleEndian.Uint64(buf[:])), nil
}

// Iterator reads log records in LSN order. It reads through the volatile
// log image, so within one incarnation it also sees unforced records; after
// a crash the file only contains what was forced.
type Iterator struct {
	data []byte
	base types.LSN // LSN of data[0]
	off  int
}

// NewIterator returns an iterator positioned at `from` (use 1 or the
// checkpoint LSN). It snapshots the current log contents: the durable file
// prefix below flushed, then any in-flight flush buffer, then the append
// buffer. File bytes at or beyond flushed are never trusted — a failed flush
// may have written them without making them durable, and the buffered copy
// is the authoritative one.
func (l *Log) NewIterator(from types.LSN) (*Iterator, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from == types.NilLSN {
		from = 1
	}
	size, err := l.f.Size()
	if err != nil {
		return nil, err
	}
	durable := int64(l.flushed - 1)
	if durable > size {
		durable = size
	}
	data := make([]byte, durable, int(durable)+len(l.inflight)+len(l.buf))
	if durable > 0 {
		if _, err := l.f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, err
		}
	}
	data = append(data, l.inflight...)
	data = append(data, l.buf...)
	if from-1 > types.LSN(len(data)) {
		return nil, fmt.Errorf("wal: iterator start %d beyond log end %d", from, len(data)+1)
	}
	return &Iterator{data: data[from-1:], base: from}, nil
}

// Next returns the next record, or ok=false at the end of the log.
func (it *Iterator) Next() (Record, bool, error) {
	if it.off >= len(it.data) {
		return Record{}, false, nil
	}
	r, n, err := decodeRecord(it.data[it.off:])
	if err != nil {
		if errors.Is(err, errTruncated) {
			return Record{}, false, nil // clean end / torn tail
		}
		return Record{}, false, err
	}
	r.LSN = it.base + types.LSN(it.off)
	it.off += n
	return r, true, nil
}

// ReadAt returns the single record stored at the given LSN. Rollback uses it
// to walk a transaction's PrevLSN chain.
func (l *Log) ReadAt(lsn types.LSN) (Record, error) {
	it, err := l.NewIterator(lsn)
	if err != nil {
		return Record{}, err
	}
	r, ok, err := it.Next()
	if err != nil {
		return Record{}, err
	}
	if !ok {
		return Record{}, fmt.Errorf("wal: no record at LSN %d", lsn)
	}
	return r, nil
}
