package wal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	var last types.LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo | FlagUndo,
			Payload: bytes.Repeat([]byte{byte(i)}, i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= last {
			t.Fatalf("LSN %d not > previous %d", lsn, last)
		}
		last = lsn
	}
}

func TestIteratorRoundTrip(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	want := []Record{
		{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, PageID: types.PageID{File: 2, Page: 3}, Payload: []byte("alpha")},
		{Type: TypeIdxPseudoDel, TxnID: 2, Flags: FlagRedo | FlagUndo, PrevLSN: 1, Payload: []byte("beta")},
		{Type: TypeCommit, TxnID: 1, Flags: FlagRedo},
		{Type: TypeIdxDelete, TxnID: 2, Flags: FlagRedo | FlagCLR, UndoNext: 7, Payload: nil},
	}
	for i := range want {
		if _, err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	it, err := l.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		r, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if r.LSN != want[i].LSN {
			t.Errorf("record %d LSN = %d, want %d", i, r.LSN, want[i].LSN)
		}
		if r.Type != want[i].Type || r.TxnID != want[i].TxnID || r.Flags != want[i].Flags ||
			r.PrevLSN != want[i].PrevLSN || r.UndoNext != want[i].UndoNext ||
			r.PageID != want[i].PageID || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator should be exhausted")
	}
}

func TestReadAt(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	var lsns []types.LSN
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(&Record{Type: TypeHeapUpdate, TxnID: types.TxnID(i), Flags: FlagRedo | FlagUndo,
			Payload: []byte(fmt.Sprintf("payload-%d", i))})
		lsns = append(lsns, lsn)
	}
	for i, lsn := range lsns {
		r, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if r.TxnID != types.TxnID(i) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("ReadAt(%d) = %+v", lsn, r)
		}
	}
}

func TestCrashLosesUnforcedTail(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := Open(fs)
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("durable")})
	forceUpTo := l.NextLSN() - 1
	if err := l.Force(forceUpTo); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("volatile")})

	fs.Crash()
	fs.Recover()

	l2, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := l2.NewIterator(1)
	var got []string
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, string(r.Payload))
	}
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("after crash records = %v, want [durable]", got)
	}
	// New appends continue at the recovered tail.
	lsn, _ := l2.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	if lsn == types.NilLSN {
		t.Fatal("append after recovery failed")
	}
}

func TestForceIdempotentAndFlushedLSN(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	lsn, _ := l.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	if l.FlushedLSN() > lsn {
		t.Fatal("record should not be durable before force")
	}
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() <= lsn {
		t.Fatalf("FlushedLSN = %d, want > %d", l.FlushedLSN(), lsn)
	}
	st := l.Stats()
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Forces != st.Forces {
		t.Error("second force of same LSN should be a no-op")
	}
}

func TestMasterRecord(t *testing.T) {
	fs := vfs.NewMemFS()
	if lsn, err := ReadMaster(fs); err != nil || lsn != types.NilLSN {
		t.Fatalf("empty master = %d, %v", lsn, err)
	}
	if err := WriteMaster(fs, 12345); err != nil {
		t.Fatal(err)
	}
	lsn, err := ReadMaster(fs)
	if err != nil || lsn != 12345 {
		t.Fatalf("master = %d, %v; want 12345", lsn, err)
	}
	// Master survives crash (it is synced).
	fs.Crash()
	fs.Recover()
	lsn, err = ReadMaster(fs)
	if err != nil || lsn != 12345 {
		t.Fatalf("master after crash = %d, %v; want 12345", lsn, err)
	}
}

func TestStatsByType(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	before := l.Stats()
	l.Append(&Record{Type: TypeIdxInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, Payload: make([]byte, 10)})
	l.Append(&Record{Type: TypeIdxInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, Payload: make([]byte, 20)})
	l.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	d := l.Stats().Delta(before)
	if d.Records != 3 {
		t.Fatalf("records = %d, want 3", d.Records)
	}
	ins := d.TypeStat(TypeIdxInsert)
	if ins.Records != 2 {
		t.Fatalf("IdxInsert records = %d, want 2", ins.Records)
	}
	if ins.Bytes != uint64(2*headerSize+30) {
		t.Fatalf("IdxInsert bytes = %d, want %d", ins.Bytes, 2*headerSize+30)
	}
}

func TestRecordFlagClassification(t *testing.T) {
	undoRedo := Record{Flags: FlagRedo | FlagUndo}
	if !undoRedo.Redoable() || !undoRedo.Undoable() {
		t.Error("undo-redo record misclassified")
	}
	redoOnly := Record{Flags: FlagRedo}
	if !redoOnly.Redoable() || redoOnly.Undoable() {
		t.Error("redo-only record misclassified")
	}
	undoOnly := Record{Flags: FlagUndo}
	if undoOnly.Redoable() || !undoOnly.Undoable() {
		t.Error("undo-only record misclassified")
	}
	clr := Record{Flags: FlagRedo | FlagUndo | FlagCLR}
	if clr.Undoable() {
		t.Error("CLR must never be undoable")
	}
	if !clr.IsCLR() {
		t.Error("IsCLR false")
	}
}

func TestPropertyEncodeDecodeRecord(t *testing.T) {
	f := func(typ uint8, flags uint8, txn uint64, prev, undoNext uint64, file, page uint32, payload []byte) bool {
		r := Record{
			Type:     RecType(typ),
			Flags:    Flags(flags),
			TxnID:    types.TxnID(txn),
			PrevLSN:  types.LSN(prev),
			UndoNext: types.LSN(undoNext),
			PageID:   types.PageID{File: types.FileID(file), Page: types.PageNum(page)},
			Payload:  payload,
		}
		enc := r.encode(nil)
		dec, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return dec.Type == r.Type && dec.Flags == r.Flags && dec.TxnID == r.TxnID &&
			dec.PrevLSN == r.PrevLSN && dec.UndoNext == r.UndoNext && dec.PageID == r.PageID &&
			bytes.Equal(dec.Payload, r.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruptRecord(t *testing.T) {
	r := Record{Type: TypeHeapInsert, Flags: FlagRedo, Payload: []byte("hello")}
	enc := r.encode(nil)
	// Flip a payload byte: CRC must catch it.
	enc[len(enc)-1] ^= 0xFF
	if _, _, err := decodeRecord(enc); err == nil {
		t.Error("corrupted record decoded without error")
	}
	// Truncated header.
	if _, _, err := decodeRecord(enc[:10]); err == nil {
		t.Error("truncated record decoded without error")
	}
}

func TestIteratorFromMidLog(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("first")})
	second, _ := l.Append(&Record{Type: TypeHeapInsert, TxnID: 2, Flags: FlagRedo, Payload: []byte("second")})
	it, err := l.NewIterator(second)
	if err != nil {
		t.Fatal(err)
	}
	r, ok, _ := it.Next()
	if !ok || string(r.Payload) != "second" {
		t.Fatalf("mid-log iterator got %+v ok=%v", r, ok)
	}
}

func TestVerifyTailCleanLog(t *testing.T) {
	fs := vfs.NewMemFS()
	ti, err := VerifyTail(fs)
	if err != nil {
		t.Fatal(err)
	}
	if ti != (TailInfo{}) {
		t.Fatalf("missing log: TailInfo = %+v, want zero", ti)
	}
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo,
			Payload: bytes.Repeat([]byte{byte(i)}, 3+i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Force(types.LSN(^uint64(0))); err != nil {
		t.Fatal(err)
	}
	ti, err = VerifyTail(fs)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Torn || ti.Records != 7 || ti.Valid != ti.Size {
		t.Fatalf("clean log: TailInfo = %+v, want 7 records, Valid==Size, !Torn", ti)
	}
}

func TestVerifyTailDetectsGarbage(t *testing.T) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: TypeCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(types.LSN(^uint64(0))); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open(LogFileName)
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe}, sz); err != nil {
		t.Fatal(err)
	}
	ti, err := VerifyTail(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !ti.Torn || ti.Records != 1 || ti.Valid != sz {
		t.Fatalf("garbage tail: TailInfo = %+v, want Torn with Valid=%d", ti, sz)
	}
}

// TestTornTailRecovery is the WAL half of the torn-write fault model: force
// five records, stage three more with an unsynced write (a force whose sync
// never happened), and tear the crash at EVERY possible byte of the in-flight
// range. Whatever the cut, recovery must land on a record boundary at or past
// the forced prefix, and the surviving records must be a prefix of what was
// appended — never a corrupted or reordered sequence.
func TestTornTailRecovery(t *testing.T) {
	type appended struct {
		typ     RecType
		payload []byte
	}
	var want []appended
	build := func() (*vfs.MemFS, *Log, int64, int) {
		fs := vfs.NewMemFS()
		l, err := Open(fs)
		if err != nil {
			t.Fatal(err)
		}
		want = want[:0]
		add := func(i int, typ RecType) {
			p := bytes.Repeat([]byte{byte(i + 1)}, 5+i*3)
			if _, err := l.Append(&Record{Type: typ, TxnID: types.TxnID(i + 1), Flags: FlagRedo, Payload: p}); err != nil {
				t.Fatal(err)
			}
			want = append(want, appended{typ, p})
		}
		for i := 0; i < 5; i++ {
			add(i, TypeHeapInsert)
		}
		if err := l.Force(types.LSN(^uint64(0))); err != nil {
			t.Fatal(err)
		}
		for i := 5; i < 8; i++ {
			add(i, TypeIdxInsert)
		}
		// A force that never reached its sync: the tail bytes are written
		// but volatile when the power fails.
		off := int64(l.flushed - 1)
		tail := l.unflushedTail()
		if _, err := l.f.WriteAt(tail, off); err != nil {
			t.Fatal(err)
		}
		return fs, l, off, len(tail)
	}

	_, _, _, inFlight := build()
	for cut := 0; cut <= inFlight; cut++ {
		fs, _, off, _ := build()
		fs.CrashTorn(func(name string, lo, hi int64) int64 {
			if name != LogFileName {
				return lo
			}
			c := off + int64(cut)
			if c < lo {
				c = lo
			}
			if c > hi {
				c = hi
			}
			return c
		})
		fs.Recover()
		l2, err := Open(fs) // recovery truncates any torn tail
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		ti, err := VerifyTail(fs)
		if err != nil {
			t.Fatal(err)
		}
		if ti.Torn || ti.Valid != ti.Size {
			t.Fatalf("cut %d: log still torn after recovery: %+v", cut, ti)
		}
		if ti.Records < 5 || ti.Records > 8 {
			t.Fatalf("cut %d: %d records survive, want 5..8 (forced prefix .. all)", cut, ti.Records)
		}
		it, err := l2.NewIterator(1)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Fatalf("cut %d: iterate: %v", cut, err)
			}
			if !ok {
				break
			}
			if r.Type != want[n].typ || !bytes.Equal(r.Payload, want[n].payload) {
				t.Fatalf("cut %d: record %d = %v, want type %v payload %x", cut, n, &r, want[n].typ, want[n].payload)
			}
			n++
		}
		if n != ti.Records {
			t.Fatalf("cut %d: iterator saw %d records, VerifyTail counted %d", cut, n, ti.Records)
		}
	}
}
