package wal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	var last types.LSN
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo | FlagUndo,
			Payload: bytes.Repeat([]byte{byte(i)}, i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn <= last {
			t.Fatalf("LSN %d not > previous %d", lsn, last)
		}
		last = lsn
	}
}

func TestIteratorRoundTrip(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	want := []Record{
		{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, PageID: types.PageID{File: 2, Page: 3}, Payload: []byte("alpha")},
		{Type: TypeIdxPseudoDel, TxnID: 2, Flags: FlagRedo | FlagUndo, PrevLSN: 1, Payload: []byte("beta")},
		{Type: TypeCommit, TxnID: 1, Flags: FlagRedo},
		{Type: TypeIdxDelete, TxnID: 2, Flags: FlagRedo | FlagCLR, UndoNext: 7, Payload: nil},
	}
	for i := range want {
		if _, err := l.Append(&want[i]); err != nil {
			t.Fatal(err)
		}
	}
	it, err := l.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		r, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if r.LSN != want[i].LSN {
			t.Errorf("record %d LSN = %d, want %d", i, r.LSN, want[i].LSN)
		}
		if r.Type != want[i].Type || r.TxnID != want[i].TxnID || r.Flags != want[i].Flags ||
			r.PrevLSN != want[i].PrevLSN || r.UndoNext != want[i].UndoNext ||
			r.PageID != want[i].PageID || !bytes.Equal(r.Payload, want[i].Payload) {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("iterator should be exhausted")
	}
}

func TestReadAt(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	var lsns []types.LSN
	for i := 0; i < 10; i++ {
		lsn, _ := l.Append(&Record{Type: TypeHeapUpdate, TxnID: types.TxnID(i), Flags: FlagRedo | FlagUndo,
			Payload: []byte(fmt.Sprintf("payload-%d", i))})
		lsns = append(lsns, lsn)
	}
	for i, lsn := range lsns {
		r, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatal(err)
		}
		if r.TxnID != types.TxnID(i) || string(r.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("ReadAt(%d) = %+v", lsn, r)
		}
	}
}

func TestCrashLosesUnforcedTail(t *testing.T) {
	fs := vfs.NewMemFS()
	l, _ := Open(fs)
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("durable")})
	forceUpTo := l.NextLSN() - 1
	if err := l.Force(forceUpTo); err != nil {
		t.Fatal(err)
	}
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("volatile")})

	fs.Crash()
	fs.Recover()

	l2, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	it, _ := l2.NewIterator(1)
	var got []string
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, string(r.Payload))
	}
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("after crash records = %v, want [durable]", got)
	}
	// New appends continue at the recovered tail.
	lsn, _ := l2.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	if lsn == types.NilLSN {
		t.Fatal("append after recovery failed")
	}
}

func TestForceIdempotentAndFlushedLSN(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	lsn, _ := l.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	if l.FlushedLSN() > lsn {
		t.Fatal("record should not be durable before force")
	}
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() <= lsn {
		t.Fatalf("FlushedLSN = %d, want > %d", l.FlushedLSN(), lsn)
	}
	st := l.Stats()
	if err := l.Force(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Forces != st.Forces {
		t.Error("second force of same LSN should be a no-op")
	}
}

func TestMasterRecord(t *testing.T) {
	fs := vfs.NewMemFS()
	if lsn, err := ReadMaster(fs); err != nil || lsn != types.NilLSN {
		t.Fatalf("empty master = %d, %v", lsn, err)
	}
	if err := WriteMaster(fs, 12345); err != nil {
		t.Fatal(err)
	}
	lsn, err := ReadMaster(fs)
	if err != nil || lsn != 12345 {
		t.Fatalf("master = %d, %v; want 12345", lsn, err)
	}
	// Master survives crash (it is synced).
	fs.Crash()
	fs.Recover()
	lsn, err = ReadMaster(fs)
	if err != nil || lsn != 12345 {
		t.Fatalf("master after crash = %d, %v; want 12345", lsn, err)
	}
}

func TestStatsByType(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	before := l.Stats()
	l.Append(&Record{Type: TypeIdxInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, Payload: make([]byte, 10)})
	l.Append(&Record{Type: TypeIdxInsert, TxnID: 1, Flags: FlagRedo | FlagUndo, Payload: make([]byte, 20)})
	l.Append(&Record{Type: TypeCommit, TxnID: 1, Flags: FlagRedo})
	d := l.Stats().Delta(before)
	if d.Records != 3 {
		t.Fatalf("records = %d, want 3", d.Records)
	}
	ins := d.TypeStat(TypeIdxInsert)
	if ins.Records != 2 {
		t.Fatalf("IdxInsert records = %d, want 2", ins.Records)
	}
	if ins.Bytes != uint64(2*headerSize+30) {
		t.Fatalf("IdxInsert bytes = %d, want %d", ins.Bytes, 2*headerSize+30)
	}
}

func TestRecordFlagClassification(t *testing.T) {
	undoRedo := Record{Flags: FlagRedo | FlagUndo}
	if !undoRedo.Redoable() || !undoRedo.Undoable() {
		t.Error("undo-redo record misclassified")
	}
	redoOnly := Record{Flags: FlagRedo}
	if !redoOnly.Redoable() || redoOnly.Undoable() {
		t.Error("redo-only record misclassified")
	}
	undoOnly := Record{Flags: FlagUndo}
	if undoOnly.Redoable() || !undoOnly.Undoable() {
		t.Error("undo-only record misclassified")
	}
	clr := Record{Flags: FlagRedo | FlagUndo | FlagCLR}
	if clr.Undoable() {
		t.Error("CLR must never be undoable")
	}
	if !clr.IsCLR() {
		t.Error("IsCLR false")
	}
}

func TestPropertyEncodeDecodeRecord(t *testing.T) {
	f := func(typ uint8, flags uint8, txn uint64, prev, undoNext uint64, file, page uint32, payload []byte) bool {
		r := Record{
			Type:     RecType(typ),
			Flags:    Flags(flags),
			TxnID:    types.TxnID(txn),
			PrevLSN:  types.LSN(prev),
			UndoNext: types.LSN(undoNext),
			PageID:   types.PageID{File: types.FileID(file), Page: types.PageNum(page)},
			Payload:  payload,
		}
		enc := r.encode(nil)
		dec, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return dec.Type == r.Type && dec.Flags == r.Flags && dec.TxnID == r.TxnID &&
			dec.PrevLSN == r.PrevLSN && dec.UndoNext == r.UndoNext && dec.PageID == r.PageID &&
			bytes.Equal(dec.Payload, r.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruptRecord(t *testing.T) {
	r := Record{Type: TypeHeapInsert, Flags: FlagRedo, Payload: []byte("hello")}
	enc := r.encode(nil)
	// Flip a payload byte: CRC must catch it.
	enc[len(enc)-1] ^= 0xFF
	if _, _, err := decodeRecord(enc); err == nil {
		t.Error("corrupted record decoded without error")
	}
	// Truncated header.
	if _, _, err := decodeRecord(enc[:10]); err == nil {
		t.Error("truncated record decoded without error")
	}
}

func TestIteratorFromMidLog(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	l.Append(&Record{Type: TypeHeapInsert, TxnID: 1, Flags: FlagRedo, Payload: []byte("first")})
	second, _ := l.Append(&Record{Type: TypeHeapInsert, TxnID: 2, Flags: FlagRedo, Payload: []byte("second")})
	it, err := l.NewIterator(second)
	if err != nil {
		t.Fatal(err)
	}
	r, ok, _ := it.Next()
	if !ok || string(r.Payload) != "second" {
		t.Fatalf("mid-log iterator got %+v ok=%v", r, ok)
	}
}
