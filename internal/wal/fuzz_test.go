package wal

import (
	"bytes"
	"testing"

	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// FuzzWALRoundTrip drives the log with a fuzz-derived record sequence, forces
// a prefix, appends garbage bytes after the synced prefix (a torn/corrupt
// tail), reopens, and checks the recovery contract: the records that survive
// are exactly a prefix of what was appended, and the recovered log is
// immediately appendable.
//
// The fuzz input is consumed as a byte program: each record takes
// (type byte, txn byte, payload-length byte, payload...), and the final byte
// picks how many records to force and what garbage to smear on the tail.
func FuzzWALRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0})
	f.Add([]byte{5, 1, 3, 0xaa, 0xbb, 0xcc, 9, 2, 1, 0x01, 0xff})
	f.Add(bytes.Repeat([]byte{7, 3, 4, 1, 2, 3, 4}, 20))
	f.Add([]byte{21, 9, 0, 22, 9, 2, 0xde, 0xad, 0x00})

	f.Fuzz(func(t *testing.T, program []byte) {
		fs := vfs.NewMemFS()
		l, err := Open(fs)
		if err != nil {
			t.Fatal(err)
		}

		type appended struct {
			typ     RecType
			txn     types.TxnID
			payload []byte
		}
		var recs []appended
		in := program
		for len(in) >= 3 && len(recs) < 64 {
			typ := RecType(in[0]%uint8(numRecTypes-1) + 1) // skip TypeInvalid
			txn := types.TxnID(in[1])
			n := int(in[2]) % 32
			in = in[3:]
			if n > len(in) {
				n = len(in)
			}
			payload := append([]byte(nil), in[:n]...)
			in = in[n:]
			if _, err := l.Append(&Record{Type: typ, TxnID: txn, Flags: FlagRedo, Payload: payload}); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, appended{typ, txn, payload})
		}

		// Force everything appended so far, then smear garbage after the
		// synced prefix: recovery must cut it off without touching the
		// records before it.
		if err := l.Force(types.LSN(^uint64(0))); err != nil {
			t.Fatal(err)
		}
		garbage := byte(0x5a)
		if len(program) > 0 {
			garbage = program[len(program)-1] | 1 // never all-zero
		}
		fh, err := fs.Open("wal.log")
		if err != nil {
			t.Fatal(err)
		}
		sz, _ := fh.Size()
		if _, err := fh.WriteAt(bytes.Repeat([]byte{garbage}, 1+int(garbage)%7), sz); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(fs)
		if err != nil {
			t.Fatalf("reopen with garbage tail: %v", err)
		}
		ti, err := VerifyTail(fs)
		if err != nil {
			t.Fatal(err)
		}
		if ti.Torn || ti.Valid != ti.Size {
			t.Fatalf("recovery left a torn log: %+v", ti)
		}
		// Forged frames are possible in principle (the garbage could decode
		// as a valid record), but only at the tail: everything up to
		// len(recs) must match what was appended, in order.
		it, err := l2.NewIterator(1)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			r, ok, err := it.Next()
			if err != nil {
				t.Fatalf("iterate: %v", err)
			}
			if !ok {
				break
			}
			if n < len(recs) {
				w := recs[n]
				if r.Type != w.typ || r.TxnID != w.txn || !bytes.Equal(r.Payload, w.payload) {
					t.Fatalf("record %d = %v, want type=%v txn=%d payload=%x", n, &r, w.typ, w.txn, w.payload)
				}
			}
			n++
		}
		if n < len(recs) {
			t.Fatalf("only %d of %d forced records survived recovery", n, len(recs))
		}
		// The recovered log must accept and persist new appends.
		if _, err := l2.Append(&Record{Type: TypeCommit, TxnID: 99}); err != nil {
			t.Fatal(err)
		}
		if err := l2.Force(types.LSN(^uint64(0))); err != nil {
			t.Fatal(err)
		}
	})
}
