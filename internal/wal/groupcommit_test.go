package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"onlineindex/internal/faultfs"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// gateFS wraps a MemFS and, once armed, blocks the wal.log file's Sync until
// released. It lets the tests park a flush leader inside its fsync
// deterministically.
type gateFS struct {
	mem *vfs.MemFS
	// armed gates syncs; entered is signalled once per gated Sync; release
	// is closed to let gated syncs proceed.
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
	// failSync, when set, makes every gated Sync return this error instead
	// of syncing.
	failSync atomic.Pointer[error]
}

func newGateFS() *gateFS {
	return &gateFS{
		mem:     vfs.NewMemFS(),
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (g *gateFS) Create(name string) (vfs.File, error) {
	f, err := g.mem.Create(name)
	return g.wrap(name, f), err
}

func (g *gateFS) Open(name string) (vfs.File, error) {
	f, err := g.mem.Open(name)
	return g.wrap(name, f), err
}

func (g *gateFS) Remove(name string) error         { return g.mem.Remove(name) }
func (g *gateFS) Exists(name string) (bool, error) { return g.mem.Exists(name) }
func (g *gateFS) List() ([]string, error)          { return g.mem.List() }

func (g *gateFS) wrap(name string, f vfs.File) vfs.File {
	if f == nil || name != "wal.log" {
		return f
	}
	return &gateFile{File: f, g: g}
}

type gateFile struct {
	vfs.File
	g *gateFS
}

func (f *gateFile) Sync() error {
	if f.g.armed.Load() {
		f.g.entered <- struct{}{}
		<-f.g.release
		if errp := f.g.failSync.Load(); errp != nil {
			return *errp
		}
	}
	return f.File.Sync()
}

func rec(txn types.TxnID) *Record {
	return &Record{Type: TypeHeapInsert, TxnID: txn, Flags: FlagRedo | FlagUndo, Payload: []byte("gc")}
}

// TestForceAll is the "flush everything" entry point: after ForceAll every
// appended record is below FlushedLSN, and a second call is a no-op.
func TestForceAll(t *testing.T) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(rec(types.TxnID(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("FlushedLSN = %d after ForceAll, want NextLSN %d", got, want)
	}
	syncs := fs.Stats().Syncs
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().Syncs != syncs {
		t.Fatal("ForceAll on a clean log performed I/O")
	}
}

// TestForceTargetClamping pins the compatibility behavior ForceAll replaces:
// unassigned-LSN and all-ones targets mean "everything appended so far".
func TestForceTargetClamping(t *testing.T) {
	l, _ := Open(vfs.NewMemFS())
	if _, err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("Force(NextLSN) flushed to %d, want %d", got, want)
	}
	if _, err := l.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Force(types.LSN(^uint64(0))); err != nil {
		t.Fatal(err)
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("Force(max) flushed to %d, want %d", got, want)
	}
}

// TestAppendNotGatedOnInflightSync is the double-buffer contract: while a
// Force is parked inside the log file's fsync, Append must still complete.
// The pre-group-commit log held the one mutex across WriteAt+Sync, so this
// test times out against it.
func TestAppendNotGatedOnInflightSync(t *testing.T) {
	g := newGateFS()
	l, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	lsn1, err := l.Append(rec(1))
	if err != nil {
		t.Fatal(err)
	}
	g.armed.Store(true)
	forceErr := make(chan error, 1)
	go func() { forceErr <- l.Force(lsn1) }()
	<-g.entered // the leader is inside Sync, holding no log mutex

	appended := make(chan types.LSN, 1)
	go func() {
		lsn, err := l.Append(rec(2))
		if err != nil {
			t.Error(err)
		}
		appended <- lsn
	}()
	select {
	case <-appended:
	case <-time.After(5 * time.Second):
		t.Fatal("Append blocked behind an in-flight Sync")
	}
	g.armed.Store(false)
	close(g.release)
	if err := <-forceErr; err != nil {
		t.Fatal(err)
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitBatching: appends landing while a flush is in flight are
// all made durable by ONE follow-up flush, however many committers forced
// them. 1 gated flush + 6 concurrent committers must cost exactly 2 syncs.
func TestGroupCommitBatching(t *testing.T) {
	g := newGateFS()
	l, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	lsn0, _ := l.Append(rec(1))
	base := g.mem.Stats().Syncs
	g.armed.Store(true)
	forceErr := make(chan error, 1)
	go func() { forceErr <- l.Force(lsn0) }()
	<-g.entered

	// Six committers append while flush #1 is stuck, then all force. Their
	// records are all in the append buffer before the gate opens, so the
	// next epoch's swap covers every one of them.
	const committers = 6
	lsns := make([]types.LSN, committers)
	for i := range lsns {
		lsns[i], _ = l.Append(rec(types.TxnID(10 + i)))
	}
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := range lsns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Force(lsns[i])
		}(i)
	}
	g.armed.Store(false)
	close(g.release)
	wg.Wait()
	if err := <-forceErr; err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if got := g.mem.Stats().Syncs - base; got != 2 {
		t.Fatalf("6 concurrent committers cost %d syncs, want 2 (1 gated + 1 group)", got)
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("FlushedLSN = %d, want %d", got, want)
	}
	st := l.Stats()
	if st.Forces != 2 || st.ForceAttempts != 2 || st.ForceErrors != 0 {
		t.Fatalf("stats = %+v, want 2 attempted, 2 completed, 0 errors", st)
	}
}

// TestEpochErrorBroadcast: when the leader's Sync fails, EVERY committer
// parked on that epoch gets the error — none may be told its commit is
// durable. The test parks the leader in the gate, waits (via epoch
// introspection) until all followers joined, then fails the sync.
func TestEpochErrorBroadcast(t *testing.T) {
	g := newGateFS()
	l, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	const committers = 4
	lsns := make([]types.LSN, committers)
	for i := range lsns {
		lsns[i], _ = l.Append(rec(types.TxnID(i + 1)))
	}
	g.armed.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for i := range lsns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = l.Force(lsns[i])
		}(i)
	}
	<-g.entered // a leader emerged and is inside Sync

	// Wait until the other three are parked on the leader's epoch.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		waiters := uint64(0)
		if l.curEpoch != nil {
			waiters = l.curEpoch.waiters
		}
		l.mu.Unlock()
		if waiters == committers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d committers joined the epoch", waiters, committers)
		}
		time.Sleep(time.Millisecond)
	}

	injected := errors.New("injected sync failure")
	g.failSync.Store(&injected)
	close(g.release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, injected) {
			t.Fatalf("committer %d error = %v, want the leader's sync failure", i, err)
		}
	}
	if got := l.FlushedLSN(); got != 1 {
		t.Fatalf("FlushedLSN advanced to %d after a failed flush", got)
	}
	st := l.Stats()
	if st.ForceAttempts != 1 || st.Forces != 0 || st.ForceErrors != 1 {
		t.Fatalf("stats = %+v, want 1 attempted, 0 completed, 1 error", st)
	}

	// The failed epoch's records went back to the append buffer: a retry
	// with a healthy disk makes everything durable, and the log re-reads
	// without duplicate or missing records.
	g.failSync.Store(nil)
	g.armed.Store(false)
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("FlushedLSN = %d after retry, want %d", got, want)
	}
	assertLogRecords(t, l, committers)
}

// TestForceErrorCountersAndRetry covers the attempted-vs-completed split on
// the faultfs path the crash sweep uses: a Force whose Sync fails counts as
// attempted+error, leaves the bytes buffered, and a later Force retries them
// to a byte-identical log.
func TestForceErrorCountersAndRetry(t *testing.T) {
	mem := vfs.NewMemFS()
	ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeError, Point: 2, Seed: 1})
	l, err := Open(ffs)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	var last types.LSN
	for i := 0; i < n; i++ {
		last, _ = l.Append(rec(types.TxnID(i + 1)))
	}
	ffs.Arm() // point 1 = the flush's WriteAt, point 2 = its Sync
	if err := l.Force(last); err == nil {
		t.Fatal("Force with injected sync error returned nil")
	}
	st := l.Stats()
	if st.ForceAttempts != 1 || st.Forces != 0 || st.ForceErrors != 1 {
		t.Fatalf("stats = %+v, want 1 attempted, 0 completed, 1 error", st)
	}
	// After the failed sync the file's volatile image already holds the
	// records; the iterator must not see them twice (it trusts the buffer,
	// not file bytes at/beyond FlushedLSN).
	assertLogRecords(t, l, n)
	if err := l.Force(last); err != nil {
		t.Fatal(err)
	}
	st = l.Stats()
	if st.ForceAttempts != 2 || st.Forces != 1 || st.ForceErrors != 1 {
		t.Fatalf("stats after retry = %+v, want 2 attempted, 1 completed, 1 error", st)
	}
	assertLogRecords(t, l, n)
}

// TestIteratorSeesInflightFlush: a log read taken while a flush is parked in
// fsync must still see every record exactly once — the in-flight buffer is
// in neither the durable prefix nor the append buffer, and rollbacks walking
// PrevLSN chains read through exactly this window.
func TestIteratorSeesInflightFlush(t *testing.T) {
	g := newGateFS()
	l, err := Open(g)
	if err != nil {
		t.Fatal(err)
	}
	lsn1, _ := l.Append(rec(1))
	g.armed.Store(true)
	forceErr := make(chan error, 1)
	go func() { forceErr <- l.Force(lsn1) }()
	<-g.entered

	if _, err := l.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	assertLogRecords(t, l, 2)
	if r, err := l.ReadAt(lsn1); err != nil || r.TxnID != 1 {
		t.Fatalf("ReadAt(inflight record) = %+v, %v", r, err)
	}

	g.armed.Store(false)
	close(g.release)
	if err := <-forceErr; err != nil {
		t.Fatal(err)
	}
}

// assertLogRecords iterates the log from the start and checks it holds
// exactly n decodable records with strictly increasing LSNs.
func assertLogRecords(t *testing.T, l *Log, n int) {
	t.Helper()
	it, err := l.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var last types.LSN
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.LSN <= last {
			t.Fatalf("record %d LSN %d not > previous %d", count, r.LSN, last)
		}
		last = r.LSN
		count++
	}
	if count != n {
		t.Fatalf("log holds %d records, want %d", count, n)
	}
}

// TestBatchDelayAccumulates: with a max batch delay, committers arriving
// during the leader's linger ride its epoch — one sync for all of them even
// though no flush was in flight when they appended.
func TestBatchDelayAccumulates(t *testing.T) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	l.SetBatchDelay(50 * time.Millisecond)
	base := fs.Stats().Syncs

	const committers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, committers)
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lsn, err := l.Append(rec(types.TxnID(i + 1)))
			if err != nil {
				errs[i] = err
				return
			}
			if i == 0 {
				close(start) // the first committer leads; the rest pile in
			} else {
				<-start
				time.Sleep(5 * time.Millisecond) // land inside the linger
			}
			errs[i] = l.Force(lsn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", i, err)
		}
	}
	if got, want := l.FlushedLSN(), l.NextLSN(); got != want {
		t.Fatalf("FlushedLSN = %d, want %d", got, want)
	}
	// Timing gives at most 2 flushes (commonly 1); the point is that four
	// committers did not cost four syncs.
	if got := fs.Stats().Syncs - base; got > 2 {
		t.Fatalf("4 committers under a 50ms batch delay cost %d syncs", got)
	}
}
