package wal

import (
	"bytes"
	"fmt"
	"testing"

	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
)

// appendChain appends n records for one transaction, alternating payload
// sizes, forces them, and returns their LSNs.
func appendChain(t testing.TB, l *Log, n int, payload []byte) []types.LSN {
	t.Helper()
	lsns := make([]types.LSN, 0, n)
	prev := types.NilLSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(&Record{
			Type: TypeHeapInsert, TxnID: 7, Flags: FlagRedo | FlagUndo,
			PrevLSN: prev, Payload: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		prev = lsn
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	return lsns
}

// TestReadAtAllRegions exercises ReadAt against records in every region the
// compose path distinguishes: durable file prefix, and the buffered head
// (unforced appends).
func TestReadAtAllRegions(t *testing.T) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	durable := appendChain(t, l, 10, []byte("durable-payload"))
	// Buffered, never forced: lives in the sealed head after rotation.
	var buffered []types.LSN
	for i := 0; i < 5; i++ {
		lsn, err := l.Append(&Record{Type: TypeHeapDelete, TxnID: 9, Flags: FlagUndo,
			Payload: []byte(fmt.Sprintf("buffered-%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		buffered = append(buffered, lsn)
	}
	for i, lsn := range durable {
		r, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatalf("durable record %d: %v", i, err)
		}
		if r.LSN != lsn || r.Type != TypeHeapInsert || !bytes.Equal(r.Payload, []byte("durable-payload")) {
			t.Fatalf("durable record %d = %+v", i, r)
		}
	}
	for i, lsn := range buffered {
		r, err := l.ReadAt(lsn)
		if err != nil {
			t.Fatalf("buffered record %d: %v", i, err)
		}
		if want := fmt.Sprintf("buffered-%d", i); r.LSN != lsn || string(r.Payload) != want {
			t.Fatalf("buffered record %d = %+v, want payload %q", i, r, want)
		}
	}
	// Out-of-range LSNs fail cleanly.
	if _, err := l.ReadAt(types.LSN(1 << 40)); err == nil {
		t.Fatal("ReadAt far beyond the log should fail")
	}
	if _, err := l.ReadAt(types.NilLSN); err == nil {
		t.Fatal("ReadAt(NilLSN) should fail")
	}
}

// TestReadAtMatchesIterator cross-checks the region-addressed ReadAt against
// the snapshot iterator over a log with a mix of forced and buffered
// records.
func TestReadAtMatchesIterator(t *testing.T) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, l, 50, bytes.Repeat([]byte{0xAB}, 100))
	for i := 0; i < 20; i++ {
		if _, err := l.Append(&Record{Type: TypeIdxInsert, TxnID: 3, Flags: FlagRedo,
			Payload: bytes.Repeat([]byte{byte(i)}, i*7)}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := l.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		want, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got, err := l.ReadAt(want.LSN)
		if err != nil {
			t.Fatalf("ReadAt(%d): %v", want.LSN, err)
		}
		if got.LSN != want.LSN || got.Type != want.Type || got.TxnID != want.TxnID ||
			got.PrevLSN != want.PrevLSN || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("ReadAt(%d) = %+v, want %+v", want.LSN, got, want)
		}
	}
}

// TestReadAtZeroSteadyStateAllocs is the satellite's proof: once the scratch
// buffer has grown to the largest record, walking a forced rollback chain
// with ReadAt performs zero heap allocations per record for payload-free
// records (for payload-carrying records the single remaining allocation is
// the payload copy handed to the caller, which the caller owns).
func TestReadAtZeroSteadyStateAllocs(t *testing.T) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	var lsns []types.LSN
	for i := 0; i < 64; i++ {
		lsn, err := l.Append(&Record{Type: TypeEnd, TxnID: 11, Flags: 0})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	if err := l.ForceAll(); err != nil {
		t.Fatal(err)
	}
	// Warm up: grows l.readBuf to the record size.
	if _, err := l.ReadAt(lsns[0]); err != nil {
		t.Fatal(err)
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		r, err := l.ReadAt(lsns[i%len(lsns)])
		if err != nil {
			t.Fatal(err)
		}
		if r.Type != TypeEnd {
			t.Fatalf("wrong record: %+v", r)
		}
		i++
	})
	if avg != 0 {
		t.Fatalf("ReadAt steady state allocates %.2f objects/op, want 0", avg)
	}
}

// TestVerifyTailAllocsIndependentOfLogSize pins the other half of the
// satellite: VerifyTail's allocations stay constant (the sliding window and
// handle plumbing) no matter how many records the log holds — the old
// implementation allocated the whole file plus one payload copy per record.
func TestVerifyTailAllocsIndependentOfLogSize(t *testing.T) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	appendChain(t, l, 4000, bytes.Repeat([]byte{0x5A}, 64))
	ti, err := VerifyTail(fs)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Records != 4000 || ti.Torn {
		t.Fatalf("tail = %+v, want 4000 whole records", ti)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := VerifyTail(fs); err != nil {
			t.Fatal(err)
		}
	})
	// The budget is a loose constant: window buffer, file handle, a couple
	// of interface boxes. 4000 records would blow it by two orders of
	// magnitude if anything per-record allocated.
	if avg > 40 {
		t.Fatalf("VerifyTail allocates %.1f objects for a 4000-record log, want a small constant", avg)
	}
}

// BenchmarkLogReadAt measures the rollback chain walk: b.N reads of a fixed
// record set through the reusable scratch path.
func BenchmarkLogReadAt(b *testing.B) {
	l, err := Open(vfs.NewMemFS())
	if err != nil {
		b.Fatal(err)
	}
	lsns := appendChain(b, l, 256, bytes.Repeat([]byte{0xCD}, 120))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.ReadAt(lsns[i%len(lsns)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyTail measures the recovery-oracle tail parse over a
// 4000-record log.
func BenchmarkVerifyTail(b *testing.B) {
	fs := vfs.NewMemFS()
	l, err := Open(fs)
	if err != nil {
		b.Fatal(err)
	}
	appendChain(b, l, 4000, bytes.Repeat([]byte{0x5A}, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VerifyTail(fs); err != nil {
			b.Fatal(err)
		}
	}
}
