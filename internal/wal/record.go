// Package wal implements the write-ahead log the paper assumes for recovery
// (§1.1): "The undo (respectively, redo) portion of a log record provides
// information on how to undo (respectively, redo) changes performed by the
// transaction. A log record which contains both the undo and the redo
// information is called an undo-redo log record. Sometimes, a log record may
// be written to contain only the redo information or only the undo
// information."
//
// The design follows ARIES: every log record carries the transaction's
// PrevLSN to chain its records for rollback, compensation log records (CLRs)
// carry an UndoNextLSN so rollbacks never undo an undo, and pages carry the
// LSN of the last record applied to them so redo is idempotent. LSNs are
// 1-based byte offsets in the log file. The wal package stores typed but
// opaque payloads; the resource managers (heap, btree, sidefile, catalog,
// index builder) define the payload formats and the redo/undo logic, which
// the recovery package dispatches.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"onlineindex/internal/types"
)

// RecType identifies which resource-manager operation a log record describes.
type RecType uint8

// Log record types. The groups mirror the resource managers of the engine.
const (
	TypeInvalid RecType = iota

	// Transaction control.
	TypeCommit // transaction committed (forced)
	TypeAbort  // rollback has begun
	TypeEnd    // transaction fully ended (after commit or rollback)

	// Fuzzy checkpoint. Payload: serialized txn table + dirty page table +
	// catalog + index-build state. The master record points at the latest.
	TypeCheckpoint

	// Heap (data page) operations. Payloads defined in package heap.
	TypeHeapFormat // format a new data page
	TypeHeapInsert
	TypeHeapDelete
	TypeHeapUpdate

	// B+-tree index operations. Payloads defined in package btree.
	TypeIdxFormat      // format a new index page
	TypeIdxInsert      // insert one key entry
	TypeIdxMultiInsert // insert several key entries in one record (NSF IB, §2.3.1)
	TypeIdxDelete      // physically remove an entry
	TypeIdxPseudoDel   // set the pseudo-deleted flag on an entry (§2.1.2)
	TypeIdxReactivate  // clear the pseudo-deleted flag (undo of a delete)
	TypeIdxSetRID      // replace the RID of an existing entry (unique index, §2.2.3 example)
	TypeIdxInsertNoop  // txn insert found the key already present: undo-only record (§2.1.1)
	TypeIdxSplit       // page split (redo-only nested top action, never undone)
	TypeIdxNewRoot     // root split / tree growth (redo-only)

	// Side-file operations (SF algorithm, §3). Redo-only appends.
	TypeSFFormat
	TypeSFAppend

	// Catalog / DDL.
	TypeCreateTable
	TypeCreateIndex      // index descriptor created (§2.2.1 / §3.2.1)
	TypeDropIndex        // index dropped or build cancelled (§2.3.2)
	TypeIndexStateChange // lifecycle transition (e.g. build complete, readable)

	// Index-builder progress checkpoints (§2.2.3 / §3.2.4): highest key
	// inserted, side-file position, rightmost branch.
	TypeIBCheckpoint

	// Partition metadata (redo-only): upserts/removals of the logical
	// partitioned-table and fan-out-index descriptors. Payload defined in
	// package catalog (partition.go); applied unconditionally during the
	// analysis scan like the other DDL records.
	TypePartMeta

	numRecTypes // sentinel for stats arrays
)

var recTypeNames = map[RecType]string{
	TypeCommit: "Commit", TypeAbort: "Abort", TypeEnd: "End",
	TypeCheckpoint: "Checkpoint",
	TypeHeapFormat: "HeapFormat", TypeHeapInsert: "HeapInsert",
	TypeHeapDelete: "HeapDelete", TypeHeapUpdate: "HeapUpdate",
	TypeIdxFormat: "IdxFormat", TypeIdxInsert: "IdxInsert",
	TypeIdxMultiInsert: "IdxMultiInsert", TypeIdxDelete: "IdxDelete",
	TypeIdxPseudoDel: "IdxPseudoDel", TypeIdxReactivate: "IdxReactivate",
	TypeIdxSetRID: "IdxSetRID", TypeIdxInsertNoop: "IdxInsertNoop",
	TypeIdxSplit: "IdxSplit", TypeIdxNewRoot: "IdxNewRoot",
	TypeSFFormat: "SFFormat", TypeSFAppend: "SFAppend",
	TypeCreateTable: "CreateTable", TypeCreateIndex: "CreateIndex",
	TypeDropIndex: "DropIndex", TypeIndexStateChange: "IndexStateChange",
	TypeIBCheckpoint: "IBCheckpoint",
	TypePartMeta:     "PartMeta",
}

func (t RecType) String() string {
	if n, ok := recTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("RecType(%d)", uint8(t))
}

// Flags describe a record's redo/undo capabilities per the paper's
// terminology: an undo-redo record has both bits, a redo-only record has
// only FlagRedo, an undo-only record has only FlagUndo.
type Flags uint8

// Flag bits.
const (
	FlagRedo Flags = 1 << iota // record carries redo information
	FlagUndo                   // record carries undo information
	FlagCLR                    // record is a compensation log record
)

func (f Flags) String() string {
	s := ""
	if f&FlagRedo != 0 {
		s += "R"
	}
	if f&FlagUndo != 0 {
		s += "U"
	}
	if f&FlagCLR != 0 {
		s += "C"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Record is one log record. LSN is assigned by Log.Append.
type Record struct {
	LSN      types.LSN
	PrevLSN  types.LSN // previous record of the same transaction (NilLSN if first)
	UndoNext types.LSN // CLRs only: next record of this txn to undo
	TxnID    types.TxnID
	Type     RecType
	Flags    Flags
	PageID   types.PageID // page the redo applies to (zero for logical/control records)
	Payload  []byte       // resource-manager-specific body
}

// Redoable reports whether the record carries redo information.
func (r *Record) Redoable() bool { return r.Flags&FlagRedo != 0 }

// Undoable reports whether the record carries undo information. CLRs are
// never undoable regardless of flags.
func (r *Record) Undoable() bool { return r.Flags&FlagUndo != 0 && r.Flags&FlagCLR == 0 }

// IsCLR reports whether the record is a compensation log record.
func (r *Record) IsCLR() bool { return r.Flags&FlagCLR != 0 }

func (r *Record) String() string {
	return fmt.Sprintf("LSN=%d %s %s txn=%d prev=%d page=%s len=%d",
		r.LSN, r.Type, r.Flags, r.TxnID, r.PrevLSN, r.PageID, len(r.Payload))
}

// Wire layout of one record:
//
//	totalLen  uint32   (header + payload, excluding this length field and crc)
//	crc       uint32   (castagnoli, over everything after the crc field)
//	type      uint8
//	flags     uint8
//	txnID     uint64
//	prevLSN   uint64
//	undoNext  uint64
//	pageFile  uint32
//	pageNum   uint32
//	payload   [totalLen-34]byte
const (
	lenSize    = 4
	crcSize    = 4
	fixedSize  = 1 + 1 + 8 + 8 + 8 + 4 + 4 // type..pageNum = 34
	headerSize = lenSize + crcSize + fixedSize
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the number of log bytes r will occupy.
func (r *Record) EncodedSize() int { return headerSize + len(r.Payload) }

func (r *Record) encode(dst []byte) []byte {
	total := uint32(fixedSize + len(r.Payload))
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], total)
	hdr[8] = uint8(r.Type)
	hdr[9] = uint8(r.Flags)
	binary.LittleEndian.PutUint64(hdr[10:], uint64(r.TxnID))
	binary.LittleEndian.PutUint64(hdr[18:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(hdr[26:], uint64(r.UndoNext))
	binary.LittleEndian.PutUint32(hdr[34:], uint32(r.PageID.File))
	binary.LittleEndian.PutUint32(hdr[38:], uint32(r.PageID.Page))
	crc := crc32.Update(0, crcTable, hdr[8:])
	crc = crc32.Update(crc, crcTable, r.Payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, r.Payload...)
}

// validateRecord checks the framing and CRC of the record at the front of b
// without materializing it (no payload copy) and returns its encoded length.
// It accepts exactly the prefixes decodeRecord accepts.
func validateRecord(b []byte) (int, error) {
	if len(b) < headerSize {
		return 0, errTruncated
	}
	total := binary.LittleEndian.Uint32(b[0:])
	if total < fixedSize || int(total) > len(b)-lenSize-crcSize {
		return 0, errTruncated
	}
	wantCRC := binary.LittleEndian.Uint32(b[4:])
	end := lenSize + crcSize + int(total)
	if crc32.Checksum(b[8:end], crcTable) != wantCRC {
		return 0, errBadCRC
	}
	return end, nil
}

// decodeRecord parses one record from b. It returns the record, the number
// of bytes consumed, and an error if the bytes do not form a valid record
// (torn write at the end of the log).
func decodeRecord(b []byte) (Record, int, error) {
	end, err := validateRecord(b)
	if err != nil {
		return Record{}, 0, err
	}
	total := binary.LittleEndian.Uint32(b[0:])
	r := Record{
		Type:     RecType(b[8]),
		Flags:    Flags(b[9]),
		TxnID:    types.TxnID(binary.LittleEndian.Uint64(b[10:])),
		PrevLSN:  types.LSN(binary.LittleEndian.Uint64(b[18:])),
		UndoNext: types.LSN(binary.LittleEndian.Uint64(b[26:])),
		PageID: types.PageID{
			File: types.FileID(binary.LittleEndian.Uint32(b[34:])),
			Page: types.PageNum(binary.LittleEndian.Uint32(b[38:])),
		},
	}
	if int(total) > fixedSize {
		r.Payload = append([]byte(nil), b[headerSize:end]...)
	}
	return r, end, nil
}
