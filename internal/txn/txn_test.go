package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"onlineindex/internal/lock"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// recordingDispatcher logs which LSNs were undone.
type recordingDispatcher struct {
	mu      sync.Mutex
	undone  []types.LSN
	emitCLR bool
}

func (d *recordingDispatcher) Undo(tx *Txn, rec *wal.Record, undoNext types.LSN) error {
	d.mu.Lock()
	d.undone = append(d.undone, rec.LSN)
	d.mu.Unlock()
	if d.emitCLR {
		_, err := tx.LogCLR(&wal.Record{Type: rec.Type, Flags: wal.FlagRedo, PageID: rec.PageID}, undoNext)
		return err
	}
	return nil
}

func setup(t *testing.T) (*vfs.MemFS, *wal.Log, *Manager, *recordingDispatcher) {
	t.Helper()
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(log, lock.NewManager())
	d := &recordingDispatcher{emitCLR: true}
	m.SetDispatcher(d)
	return fs, log, m, d
}

func undoable(payload string) *wal.Record {
	return &wal.Record{Type: wal.TypeHeapInsert, Flags: wal.FlagRedo | wal.FlagUndo, Payload: []byte(payload)}
}

func TestCommitForcesLog(t *testing.T) {
	_, log, m, _ := setup(t)
	tx := m.Begin()
	lsn, err := tx.Log(undoable("x"))
	if err != nil {
		t.Fatal(err)
	}
	if log.FlushedLSN() > lsn {
		t.Fatal("record durable before commit")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if log.FlushedLSN() <= lsn {
		t.Fatal("commit did not force the log")
	}
	if tx.State() != StateCommitted {
		t.Fatalf("state = %v", tx.State())
	}
	if m.ActiveCount() != 0 {
		t.Fatal("committed txn still active")
	}
}

func TestRollbackUndoesInReverseOrder(t *testing.T) {
	_, _, m, d := setup(t)
	tx := m.Begin()
	var lsns []types.LSN
	for i := 0; i < 5; i++ {
		lsn, _ := tx.Log(undoable(fmt.Sprintf("op%d", i)))
		lsns = append(lsns, lsn)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(d.undone) != 5 {
		t.Fatalf("undone %d records, want 5", len(d.undone))
	}
	for i := range d.undone {
		if d.undone[i] != lsns[len(lsns)-1-i] {
			t.Fatalf("undo order wrong: %v vs %v", d.undone, lsns)
		}
	}
}

func TestRollbackSkipsRedoOnlyRecords(t *testing.T) {
	_, _, m, d := setup(t)
	tx := m.Begin()
	tx.Log(undoable("a"))
	tx.Log(&wal.Record{Type: wal.TypeIdxSplit, Flags: wal.FlagRedo}) // NTA: never undone
	tx.Log(undoable("b"))
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(d.undone) != 2 {
		t.Fatalf("undone = %d records, want 2 (split skipped)", len(d.undone))
	}
}

func TestCLRChainSkipsCompensatedWork(t *testing.T) {
	// Simulate a partial rollback shape: records r1, r2, then a CLR that
	// compensates r2 (UndoNext -> r1). A full rollback must undo only r1.
	_, _, m, d := setup(t)
	tx := m.Begin()
	l1, _ := tx.Log(undoable("r1"))
	_, _ = tx.Log(undoable("r2"))
	if _, err := tx.LogCLR(&wal.Record{Type: wal.TypeHeapDelete, Flags: wal.FlagRedo}, l1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(d.undone) != 1 || d.undone[0] != l1 {
		t.Fatalf("undone = %v, want only %d", d.undone, l1)
	}
}

func TestOpsAfterEndRejected(t *testing.T) {
	_, _, m, _ := setup(t)
	tx := m.Begin()
	tx.Commit()
	if _, err := tx.Log(undoable("late")); !errors.Is(err, ErrNotActive) {
		t.Fatalf("log after commit = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit = %v", err)
	}
	if err := tx.Rollback(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("rollback after commit = %v", err)
	}
}

func TestLocksReleasedAtEnd(t *testing.T) {
	_, _, m, _ := setup(t)
	tx1 := m.Begin()
	name := lock.TableName(1)
	if err := tx1.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	tx2 := m.Begin()
	if err := m.locks.LockConditional(tx2.ID(), name, lock.S); !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatal("lock not held")
	}
	tx1.Commit()
	if err := m.locks.LockConditional(tx2.ID(), name, lock.S); err != nil {
		t.Fatalf("lock not released at commit: %v", err)
	}
	tx2.Rollback()
}

func TestCommitLSN(t *testing.T) {
	_, log, m, _ := setup(t)
	// No active transactions: Commit_LSN is the end of the log.
	if got := m.CommitLSN(); got != log.NextLSN() {
		t.Fatalf("idle CommitLSN = %d, want %d", got, log.NextLSN())
	}
	t1 := m.Begin()
	l1, _ := t1.Log(undoable("a"))
	t2 := m.Begin()
	t2.Log(undoable("b"))
	if got := m.CommitLSN(); got != l1 {
		t.Fatalf("CommitLSN = %d, want oldest active first LSN %d", got, l1)
	}
	t1.Commit()
	if got := m.CommitLSN(); got <= l1 {
		t.Fatalf("CommitLSN = %d after oldest committed, want > %d", got, l1)
	}
	t2.Commit()
}

func TestAdoptAndRollbackLoser(t *testing.T) {
	_, log, m, d := setup(t)
	// Write a loser chain "by hand" as restart analysis would find it.
	r1 := undoable("loser-1")
	r1.TxnID = 42
	l1, _ := log.Append(r1)
	r2 := undoable("loser-2")
	r2.TxnID = 42
	r2.PrevLSN = l1
	l2, _ := log.Append(r2)

	loser := m.Adopt(42, l1, l2)
	if err := m.RollbackAdopted(loser); err != nil {
		t.Fatal(err)
	}
	if len(d.undone) != 2 || d.undone[0] != l2 || d.undone[1] != l1 {
		t.Fatalf("loser undo = %v, want [%d %d]", d.undone, l2, l1)
	}
	// New transactions must not reuse the loser's ID.
	fresh := m.Begin()
	if fresh.ID() <= 42 {
		t.Fatalf("fresh txn ID %d not beyond adopted 42", fresh.ID())
	}
}

func TestActiveTxnsSnapshot(t *testing.T) {
	_, _, m, _ := setup(t)
	t1 := m.Begin()
	l1, _ := t1.Log(undoable("x"))
	snap := m.ActiveTxns()
	if len(snap) != 1 || snap[0].ID != t1.ID() || snap[0].FirstLSN != l1 || snap[0].LastLSN != l1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	t1.Commit()
	if len(m.ActiveTxns()) != 0 {
		t.Fatal("snapshot after commit not empty")
	}
}

func TestConcurrentTransactions(t *testing.T) {
	_, _, m, _ := setup(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := m.Begin()
				tx.Log(undoable("w"))
				if i%3 == 0 {
					if err := tx.Rollback(); err != nil {
						t.Errorf("rollback: %v", err)
					}
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	if m.ActiveCount() != 0 {
		t.Fatalf("active = %d after all ended", m.ActiveCount())
	}
}
