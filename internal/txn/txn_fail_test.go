package txn

import (
	"errors"
	"strings"
	"testing"

	"onlineindex/internal/faultfs"
	"onlineindex/internal/lock"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// lockFree reports whether another transaction could take name in X mode —
// i.e. whether the original holder really released it.
func lockFree(t *testing.T, m *Manager, name lock.Name) bool {
	t.Helper()
	probe := m.Begin()
	defer probe.Rollback() //nolint:errcheck
	err := m.locks.LockConditionalInstant(probe.id, name, lock.X)
	if err != nil && !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatal(err)
	}
	return err == nil
}

// TestCommitForceFailurePoisonsToAborted: a commit whose log force fails must
// not strand the transaction in StateActive holding its locks — it is
// poisoned to aborted through the rollback path, its updates undone, its
// locks released, and it leaves the active table. Before the fix, Commit
// returned the error with state still active, every lock still held, and no
// one left responsible for ending the transaction.
func TestCommitForceFailurePoisonsToAborted(t *testing.T) {
	// Fault point 1 is the flush's WriteAt, point 2 its Sync (counting
	// starts at Arm; Append does no I/O).
	for _, tc := range []struct {
		name  string
		point uint64
	}{{"write-fails", 1}, {"sync-fails", 2}} {
		t.Run(tc.name, func(t *testing.T) {
			mem := vfs.NewMemFS()
			ffs := faultfs.Wrap(mem, faultfs.Config{Mode: faultfs.ModeError, Point: tc.point, Seed: 1})
			log, err := wal.Open(ffs)
			if err != nil {
				t.Fatal(err)
			}
			m := NewManager(log, lock.NewManager())
			d := &recordingDispatcher{emitCLR: true}
			m.SetDispatcher(d)

			tx := m.Begin()
			name := lock.RecordName(types.RID{Slot: 7})
			if err := tx.Lock(name, lock.X); err != nil {
				t.Fatal(err)
			}
			lsn, err := tx.Log(undoable("poisoned"))
			if err != nil {
				t.Fatal(err)
			}
			ffs.Arm()
			err = tx.Commit()
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("Commit error = %v, want the injected force failure", err)
			}
			if got := tx.State(); got != StateAborted {
				t.Fatalf("state after failed commit force = %v, want aborted", got)
			}
			if got := m.ActiveCount(); got != 0 {
				t.Fatalf("ActiveCount = %d after failed commit, want 0", got)
			}
			if !lockFree(t, m, name) {
				t.Fatal("failed commit left its X lock held")
			}
			d.mu.Lock()
			undone := append([]types.LSN(nil), d.undone...)
			d.mu.Unlock()
			if len(undone) != 1 || undone[0] != lsn {
				t.Fatalf("undone = %v, want exactly the poisoned update %d", undone, lsn)
			}
			// Double-ending the transaction must be a plain ErrNotActive.
			if err := tx.Rollback(); !errors.Is(err, ErrNotActive) {
				t.Fatalf("Rollback after poisoned commit = %v, want ErrNotActive", err)
			}
		})
	}
}

// failEndWAL passes everything through to the real log but fails the Append
// of the first TypeEnd record it sees. Append itself performs no I/O, so
// faultfs cannot reach this path; the WAL interface seam can.
type failEndWAL struct {
	*wal.Log
	failed bool
}

var errEndAppend = errors.New("injected end-append failure")

func (w *failEndWAL) Append(r *wal.Record) (types.LSN, error) {
	if r.Type == wal.TypeEnd && !w.failed {
		w.failed = true
		return types.NilLSN, errEndAppend
	}
	return w.Log.Append(r)
}

// TestCommitEndAppendFailureStillFinishes: once the commit record is forced
// the transaction IS committed; a failure appending the End record must not
// leak it in the active table (where it would pin Commit_LSN forever).
// Before the fix, Commit returned early and skipped mgr.finish.
func TestCommitEndAppendFailureStillFinishes(t *testing.T) {
	log, err := wal.Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	fw := &failEndWAL{Log: log}
	m := NewManager(fw, lock.NewManager())
	m.SetDispatcher(&recordingDispatcher{})

	tx := m.Begin()
	name := lock.RecordName(types.RID{Slot: 9})
	if err := tx.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	lsn, err := tx.Log(undoable("durable"))
	if err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, errEndAppend) {
		t.Fatalf("Commit error = %v, want the end-append failure", err)
	}
	if got := m.ActiveCount(); got != 0 {
		t.Fatalf("ActiveCount = %d, want 0: txn leaked in the active table", got)
	}
	if !strings.Contains(err.Error(), "commit IS durable") {
		t.Fatalf("error %q does not tell the caller the commit is durable", err)
	}
	if got := tx.State(); got != StateCommitted {
		t.Fatalf("state = %v, want committed (the commit record was forced)", got)
	}
	if log.FlushedLSN() <= lsn {
		t.Fatal("commit record not durable")
	}
	if !lockFree(t, m, name) {
		t.Fatal("committed txn's lock still held")
	}
}

// failingDispatcher refuses every undo.
type failingDispatcher struct{}

var errUndo = errors.New("injected undo failure")

func (failingDispatcher) Undo(*Txn, *wal.Record, types.LSN) error { return errUndo }

// TestRollbackUndoFailureReleasesLocks: a rollback whose undo dispatch fails
// (dead filesystem mid-unwind) must still release locks and leave the active
// table — restart recovery re-drives the undo — but must NOT write an End
// record, or recovery would not adopt the loser.
func TestRollbackUndoFailureReleasesLocks(t *testing.T) {
	log, err := wal.Open(vfs.NewMemFS())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(log, lock.NewManager())
	m.SetDispatcher(failingDispatcher{})

	tx := m.Begin()
	name := lock.RecordName(types.RID{Slot: 3})
	if err := tx.Lock(name, lock.X); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Log(undoable("stuck")); err != nil {
		t.Fatal(err)
	}
	err = tx.Rollback()
	if !errors.Is(err, errUndo) {
		t.Fatalf("Rollback error = %v, want the undo failure", err)
	}
	if got := tx.State(); got != StateAborted {
		t.Fatalf("state = %v, want aborted", got)
	}
	if got := m.ActiveCount(); got != 0 {
		t.Fatalf("ActiveCount = %d, want 0", got)
	}
	if !lockFree(t, m, name) {
		t.Fatal("failed rollback left its X lock held")
	}
	// The chain must stay open: no End record for this transaction.
	it, err := log.NewIterator(1)
	if err != nil {
		t.Fatal(err)
	}
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if r.Type == wal.TypeEnd && r.TxnID == tx.ID() {
			t.Fatal("failed rollback wrote an End record; recovery would not adopt the loser")
		}
	}
}
