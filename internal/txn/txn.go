// Package txn implements the transaction manager: begin/commit/rollback with
// write-ahead logging, lock release at end-of-transaction, PrevLSN-chained
// rollback that writes compensation log records, and the Commit_LSN value
// ([Moha90b]) the paper's pseudo-delete GC uses to skip per-key lock checks.
//
// Rollback itself is generic chain-walking; *what* an undo does is the
// resource managers' business, so the manager delegates each undoable record
// to an UndoDispatcher supplied by the engine — which is where the SF
// algorithm's Fig. 2 visibility compensation lives.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"onlineindex/internal/lock"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// State is a transaction's lifecycle state.
type State uint8

// Transaction states.
const (
	StateActive State = iota + 1
	StateCommitted
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// UndoDispatcher undoes one undoable log record on behalf of a rolling-back
// transaction. undoNext is the value the dispatcher must put in the CLR(s)
// it writes (the record's PrevLSN).
type UndoDispatcher interface {
	Undo(tx *Txn, rec *wal.Record, undoNext types.LSN) error
}

// ErrNotActive is returned for operations on ended transactions.
var ErrNotActive = errors.New("txn: transaction not active")

// Txn is one transaction. It implements rm.TxnLogger.
type Txn struct {
	id  types.TxnID
	mgr *Manager

	mu       sync.Mutex
	state    State
	firstLSN types.LSN
	lastLSN  types.LSN
}

// ID implements rm.TxnLogger.
func (t *Txn) ID() types.TxnID { return t.id }

// State returns the transaction's state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

// LastLSN returns the transaction's most recent log record.
func (t *Txn) LastLSN() types.LSN {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLSN
}

// Log implements rm.TxnLogger: it fills TxnID and PrevLSN, appends, and
// advances the chain.
func (t *Txn) Log(r *wal.Record) (types.LSN, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateActive {
		return types.NilLSN, ErrNotActive
	}
	r.TxnID = t.id
	r.PrevLSN = t.lastLSN
	lsn, err := t.mgr.log.Append(r)
	if err != nil {
		return types.NilLSN, err
	}
	t.lastLSN = lsn
	if t.firstLSN == types.NilLSN {
		t.firstLSN = lsn
		t.mgr.noteFirstLSN(t.id, lsn)
	}
	return lsn, nil
}

// LogCLR implements rm.TxnLogger.
func (t *Txn) LogCLR(r *wal.Record, undoNext types.LSN) (types.LSN, error) {
	r.Flags |= wal.FlagCLR
	r.UndoNext = undoNext
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != StateActive && t.state != StateAborted {
		return types.NilLSN, ErrNotActive
	}
	r.TxnID = t.id
	r.PrevLSN = t.lastLSN
	lsn, err := t.mgr.log.Append(r)
	if err != nil {
		return types.NilLSN, err
	}
	t.lastLSN = lsn
	return lsn, nil
}

// Lock acquires a lock for the transaction (manual duration; released at
// end).
func (t *Txn) Lock(name lock.Name, mode lock.Mode) error {
	return t.mgr.locks.Lock(t.id, name, mode)
}

// LockInstant acquires and immediately releases (instant duration).
func (t *Txn) LockInstant(name lock.Name, mode lock.Mode) error {
	return t.mgr.locks.LockInstant(t.id, name, mode)
}

// LockConditional acquires a held lock only if it can be granted without
// waiting; otherwise ErrWouldBlock. The read fast path uses it to keep the
// no-contention case free of lock-manager queueing.
func (t *Txn) LockConditional(name lock.Name, mode lock.Mode) error {
	return t.mgr.locks.LockConditional(t.id, name, mode)
}

// LockConditionalInstant is the GC probe: granted-and-released or
// ErrWouldBlock, never waiting.
func (t *Txn) LockConditionalInstant(name lock.Name, mode lock.Mode) error {
	return t.mgr.locks.LockConditionalInstant(t.id, name, mode)
}

// Unlock releases one lock early (used for short-duration latching-protocol
// locks like NSF's descriptor-create table lock, which ends with the DDL).
func (t *Txn) Unlock(name lock.Name) {
	t.mgr.locks.Unlock(t.id, name)
}

// Commit writes the commit record, forces the log (durability), releases
// locks and writes the end record.
//
// Failure semantics: an error never leaves the transaction in limbo. If the
// commit can't be made durable (Append or Force fails), the transaction is
// poisoned to aborted via the normal rollback path — its updates are undone,
// its locks released, and it leaves the active table; recovery treats the
// abort record as overriding the unforced commit record. If the commit IS
// durable but the post-commit End append fails, the error is reported with
// the transaction in StateCommitted (restart recovery handles
// commit-without-end), and finish/ReleaseAll still run.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != StateActive {
		t.mu.Unlock()
		return ErrNotActive
	}
	r := &wal.Record{Type: wal.TypeCommit, Flags: wal.FlagRedo, TxnID: t.id, PrevLSN: t.lastLSN}
	lsn, err := t.mgr.log.Append(r)
	if err != nil {
		t.mu.Unlock()
		t.Rollback() //nolint:errcheck // best-effort poison; the commit error is the caller's signal
		return fmt.Errorf("txn %d commit append: %w", t.id, err)
	}
	t.lastLSN = lsn
	t.mu.Unlock()
	if err := t.mgr.log.Force(lsn); err != nil {
		// The commit record is not durable, so the outcome must become
		// "aborted": undo, release locks, leave the active table. Without
		// this the transaction would sit in StateActive holding every lock
		// it ever took, with no one left to end it.
		t.Rollback() //nolint:errcheck // best-effort poison; the force error is the caller's signal
		return fmt.Errorf("txn %d commit force: %w", t.id, err)
	}
	t.mu.Lock()
	t.state = StateCommitted
	t.mu.Unlock()
	t.mgr.locks.ReleaseAll(t.id)
	end := &wal.Record{Type: wal.TypeEnd, Flags: wal.FlagRedo, TxnID: t.id, PrevLSN: lsn}
	_, endErr := t.mgr.log.Append(end)
	// The transaction is committed and its locks are gone; it must leave the
	// active table even if the End append failed, or it would pin Commit_LSN
	// and leak in ActiveCount forever.
	t.mgr.finish(t.id)
	if endErr != nil {
		return fmt.Errorf("txn %d commit end record (commit IS durable): %w", t.id, endErr)
	}
	return nil
}

// Rollback undoes the transaction: an abort record, then the PrevLSN chain
// walked newest-first, dispatching each undoable record and honoring CLR
// UndoNext jumps, then lock release and the end record.
//
// Lock release and removal from the active table are unconditional: even
// when the undo dispatch fails (dead filesystem mid-unwind), a rolled-back
// transaction must not linger as a zombie holding locks — restart recovery
// re-drives the undo from the log. The End record is written only after a
// complete undo; a failed undo leaves the chain open so recovery adopts the
// transaction as a loser and finishes the job.
func (t *Txn) Rollback() error {
	t.mu.Lock()
	if t.state != StateActive {
		t.mu.Unlock()
		return ErrNotActive
	}
	undoPoint := t.lastLSN // records at or before this need undoing
	t.state = StateAborted
	abort := &wal.Record{Type: wal.TypeAbort, Flags: wal.FlagRedo, TxnID: t.id, PrevLSN: t.lastLSN}
	lsn, abortErr := t.mgr.log.Append(abort)
	if abortErr == nil {
		t.lastLSN = lsn
	}
	t.mu.Unlock()

	var undoErr error
	if abortErr == nil {
		undoErr = t.undoFrom(undoPoint)
	}

	t.mgr.locks.ReleaseAll(t.id)
	var endErr error
	if abortErr == nil && undoErr == nil {
		t.mu.Lock()
		end := &wal.Record{Type: wal.TypeEnd, Flags: wal.FlagRedo, TxnID: t.id, PrevLSN: t.lastLSN}
		_, endErr = t.mgr.log.Append(end)
		t.mu.Unlock()
	}
	t.mgr.finish(t.id)
	switch {
	case abortErr != nil:
		return fmt.Errorf("txn %d rollback abort record: %w", t.id, abortErr)
	case undoErr != nil:
		return fmt.Errorf("txn %d rollback: %w", t.id, undoErr)
	case endErr != nil:
		return fmt.Errorf("txn %d rollback end record: %w", t.id, endErr)
	}
	return nil
}

// undoFrom walks the chain from lsn undoing as it goes.
func (t *Txn) undoFrom(lsn types.LSN) error {
	next := lsn
	for next != types.NilLSN {
		rec, err := t.mgr.log.ReadAt(next)
		if err != nil {
			return err
		}
		switch {
		case rec.IsCLR():
			// Never undo an undo: jump over the compensated region.
			next = rec.UndoNext
		case rec.Undoable():
			if err := t.mgr.dispatcher.Undo(t, &rec, rec.PrevLSN); err != nil {
				return fmt.Errorf("undo of %s: %w", &rec, err)
			}
			next = rec.PrevLSN
		default:
			next = rec.PrevLSN
		}
	}
	return nil
}

// WAL is the slice of the log the transaction manager uses. *wal.Log
// implements it; tests substitute failing wrappers to drive the commit and
// rollback error paths, which a real in-memory Append cannot reach.
type WAL interface {
	Append(r *wal.Record) (types.LSN, error)
	Force(lsn types.LSN) error
	ReadAt(lsn types.LSN) (wal.Record, error)
	NextLSN() types.LSN
}

// Manager creates and tracks transactions.
type Manager struct {
	log        WAL
	locks      *lock.Manager
	dispatcher UndoDispatcher

	mu     sync.Mutex
	nextID types.TxnID
	active map[types.TxnID]*Txn
}

// NewManager returns a transaction manager. The dispatcher may be set later
// with SetDispatcher (the engine wires itself in after construction).
func NewManager(log WAL, locks *lock.Manager) *Manager {
	return &Manager{log: log, locks: locks, active: make(map[types.TxnID]*Txn)}
}

// SetDispatcher installs the undo dispatcher.
func (m *Manager) SetDispatcher(d UndoDispatcher) { m.dispatcher = d }

// SetNextTxnID bumps the ID counter (restart recovery: new transactions must
// not reuse loser IDs).
func (m *Manager) SetNextTxnID(id types.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id > m.nextID {
		m.nextID = id
	}
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	t := &Txn{id: id, mgr: m, state: StateActive}
	m.active[id] = t
	m.mu.Unlock()
	return t
}

// Adopt reconstructs a transaction object for restart undo: a loser found in
// the log with the given last LSN.
func (m *Manager) Adopt(id types.TxnID, firstLSN, lastLSN types.LSN) *Txn {
	m.mu.Lock()
	if id > m.nextID {
		m.nextID = id
	}
	t := &Txn{id: id, mgr: m, state: StateActive, firstLSN: firstLSN, lastLSN: lastLSN}
	m.active[id] = t
	m.mu.Unlock()
	return t
}

// RollbackAdopted undoes an adopted loser transaction during restart.
func (m *Manager) RollbackAdopted(t *Txn) error { return t.Rollback() }

func (m *Manager) noteFirstLSN(id types.TxnID, lsn types.LSN) {
	// The Txn itself records firstLSN under its own mutex; nothing else to
	// do — the map holds the Txn pointer.
	_ = id
	_ = lsn
}

func (m *Manager) finish(id types.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, id)
}

// ActiveCount returns the number of in-flight transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// CommitLSN returns the Commit_LSN of [Moha90b]: "the LSN of the first log
// record of the oldest update transaction still executing". Any page whose
// PageLSN is below it contains only committed data — the paper's GC uses
// this to skip per-key locking (§2.2.4). When no transaction is active (or
// none has logged yet) it is the current end of the log.
func (m *Manager) CommitLSN() types.LSN {
	m.mu.Lock()
	txns := make([]*Txn, 0, len(m.active))
	for _, t := range m.active {
		txns = append(txns, t)
	}
	m.mu.Unlock()
	min := types.LSN(0)
	for _, t := range txns {
		t.mu.Lock()
		first := t.firstLSN
		t.mu.Unlock()
		if first == types.NilLSN {
			continue
		}
		if min == 0 || first < min {
			min = first
		}
	}
	if min == 0 {
		return m.log.NextLSN()
	}
	return min
}

// TxnSnapshot is one active transaction's checkpointed chain state.
type TxnSnapshot struct {
	ID       types.TxnID
	FirstLSN types.LSN
	LastLSN  types.LSN
}

// ActiveTxns returns a snapshot of the active transactions' log chains for
// fuzzy checkpointing.
func (m *Manager) ActiveTxns() []TxnSnapshot {
	m.mu.Lock()
	txns := make([]*Txn, 0, len(m.active))
	for _, t := range m.active {
		txns = append(txns, t)
	}
	m.mu.Unlock()
	out := make([]TxnSnapshot, 0, len(txns))
	for _, t := range txns {
		t.mu.Lock()
		out = append(out, TxnSnapshot{ID: t.id, FirstLSN: t.firstLSN, LastLSN: t.lastLSN})
		t.mu.Unlock()
	}
	return out
}
