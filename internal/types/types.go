// Package types holds the primitive identifiers shared by every storage
// subsystem: log sequence numbers, page identifiers, record identifiers and
// transaction identifiers. Keeping them in a leaf package avoids import
// cycles between the WAL, buffer, heap, index and transaction layers.
package types

import "fmt"

// LSN is a log sequence number. As in ARIES, it is the byte offset of a log
// record in the (conceptually infinite) log address space, so LSNs are
// totally ordered and monotonically increasing.
type LSN uint64

// NilLSN marks "no LSN" (e.g. the PrevLSN of a transaction's first record).
const NilLSN LSN = 0

// FileID identifies a storage object (a heap table file, an index file, a
// side-file). FileID 0 is reserved.
type FileID uint32

// PageNum is a page's ordinal position within its file, starting at 0.
type PageNum uint32

// PageID names a page globally: file plus page number within the file.
type PageID struct {
	File FileID
	Page PageNum
}

// NilPageID is the zero PageID, used as "no page".
var NilPageID = PageID{}

func (p PageID) String() string { return fmt.Sprintf("P(%d:%d)", p.File, p.Page) }

// IsNil reports whether p is the reserved nil page ID.
func (p PageID) IsNil() bool { return p == NilPageID }

// Less orders PageIDs by (file, page). The order within one file is the
// physical order of pages on disk, which the SF algorithm's scan-position
// comparison depends on.
func (p PageID) Less(q PageID) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	return p.Page < q.Page
}

// SlotNum is a record's slot index within a slotted data page.
type SlotNum uint16

// RID is a record identifier: the page holding the record plus the record's
// slot within that page. Index entries are <key value, RID> pairs.
type RID struct {
	PageID PageID
	Slot   SlotNum
}

// NilRID is the zero RID, used as "no record".
var NilRID = RID{}

func (r RID) String() string { return fmt.Sprintf("R(%d:%d.%d)", r.PageID.File, r.PageID.Page, r.Slot) }

// IsNil reports whether r is the reserved nil RID.
func (r RID) IsNil() bool { return r == NilRID }

// Compare returns -1, 0 or +1 ordering RIDs by (file, page, slot). This is
// the physical scan order of the index builder, so "behind the scan" in the
// SF algorithm means Compare(target, current) < 0.
func (r RID) Compare(o RID) int {
	switch {
	case r.PageID.File != o.PageID.File:
		return cmpU32(uint32(r.PageID.File), uint32(o.PageID.File))
	case r.PageID.Page != o.PageID.Page:
		return cmpU32(uint32(r.PageID.Page), uint32(o.PageID.Page))
	default:
		return cmpU32(uint32(r.Slot), uint32(o.Slot))
	}
}

// Less reports whether r precedes o in physical scan order.
func (r RID) Less(o RID) bool { return r.Compare(o) < 0 }

func cmpU32(a, b uint32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// MaxRID is a RID greater than every real RID. The SF index builder sets its
// Current-RID to MaxRID ("infinity") when it finishes the data scan so that
// transactions extending the file still route their changes to the side-file.
var MaxRID = RID{PageID: PageID{File: ^FileID(0), Page: ^PageNum(0)}, Slot: ^SlotNum(0)}

// TxnID identifies a transaction. IDs are assigned from a monotonically
// increasing counter; TxnID 0 is reserved for "no transaction" (e.g. log
// records written by system activities outside any transaction).
type TxnID uint64

// NilTxn is the reserved "no transaction" ID.
const NilTxn TxnID = 0

func (t TxnID) String() string { return fmt.Sprintf("T%d", t) }

// IndexID identifies an index within the catalog.
type IndexID uint32

// TableID identifies a table within the catalog.
type TableID uint32
