package faultfs

import (
	"errors"
	"reflect"
	"testing"

	"onlineindex/internal/vfs"
)

// workload issues a fixed sequence of mutating operations: create two files,
// write and sync both, truncate one, remove the other. Nine fault points.
func workload(fs vfs.FS) error {
	a, err := fs.Create("a.dat") // point 1
	if err != nil {
		return err
	}
	b, err := fs.Create("b.dat") // point 2
	if err != nil {
		return err
	}
	if _, err := a.WriteAt([]byte("aaaaaaaa"), 0); err != nil { // point 3
		return err
	}
	if _, err := b.WriteAt([]byte("bbbbbbbb"), 0); err != nil { // point 4
		return err
	}
	if err := a.Sync(); err != nil { // point 5
		return err
	}
	if err := b.Sync(); err != nil { // point 6
		return err
	}
	if _, err := a.WriteAt([]byte("AAAA"), 8); err != nil { // point 7
		return err
	}
	if err := a.Truncate(4); err != nil { // point 8
		return err
	}
	return fs.Remove("b.dat") // point 9
}

func countRun(t *testing.T) []Event {
	t.Helper()
	fs := Wrap(vfs.NewMemFS(), Config{Mode: ModeCount, Trace: true})
	fs.Arm()
	if err := workload(fs); err != nil {
		t.Fatalf("count run failed: %v", err)
	}
	return fs.Trace()
}

func TestCountingDeterministic(t *testing.T) {
	tr1, tr2 := countRun(t), countRun(t)
	if len(tr1) != 9 {
		t.Fatalf("counted %d fault points, want 9: %v", len(tr1), tr1)
	}
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("two count runs disagree:\n%v\n%v", tr1, tr2)
	}
	wantOps := []Op{OpCreate, OpCreate, OpWriteAt, OpWriteAt, OpSync, OpSync, OpWriteAt, OpTruncate, OpRemove}
	for i, ev := range tr1 {
		if ev.K != uint64(i+1) || ev.Op != wantOps[i] {
			t.Fatalf("event %d = %v, want op %v at k=%d", i, ev, wantOps[i], i+1)
		}
	}
}

func TestDisarmedNotCounted(t *testing.T) {
	fs := Wrap(vfs.NewMemFS(), Config{Mode: ModeCount, Trace: true})
	f, err := fs.Create("pre.dat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Points(); got != 0 {
		t.Fatalf("disarmed ops counted: %d points", got)
	}
	fs.Arm()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Disarm()
	if _, err := f.WriteAt([]byte("y"), 1); err != nil {
		t.Fatal(err)
	}
	if got := fs.Points(); got != 1 {
		t.Fatalf("points = %d, want 1 (only the armed Sync)", got)
	}
}

// TestCrashAtEveryPoint crashes at each of the workload's nine points and
// checks (a) the faulted op returns ErrCrashed, (b) the fired event matches
// the count run's trace, (c) operations before the point are not replayed —
// synced state survives, unsynced state does not.
func TestCrashAtEveryPoint(t *testing.T) {
	trace := countRun(t)
	for k := uint64(1); k <= uint64(len(trace)); k++ {
		mem := vfs.NewMemFS()
		fs := Wrap(mem, Config{Mode: ModeCrash, Point: k, Seed: 1})
		fs.Arm()
		err := workload(fs)
		if !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("point %d: workload error = %v, want ErrCrashed", k, err)
		}
		ev, ok := fs.Fired()
		if !ok {
			t.Fatalf("point %d: fault never fired", k)
		}
		if want := trace[k-1]; ev != want {
			t.Fatalf("point %d: fired %v, want %v", k, ev, want)
		}
		mem.Recover()
		// Points 1-5 precede a.dat's sync: it must not exist durably. From
		// point 6 on (crash at b's Sync or later) a.dat holds its synced bytes.
		ok, err = mem.Exists("a.dat")
		if err != nil {
			t.Fatal(err)
		}
		if want := k >= 6; ok != want {
			t.Fatalf("point %d: a.dat exists=%v, want %v", k, ok, want)
		}
		if k >= 6 {
			f, err := mem.Open("a.dat")
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 8)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Fatalf("point %d: read a.dat: %v", k, err)
			}
			if string(buf) != "aaaaaaaa" {
				t.Fatalf("point %d: a.dat = %q, want synced image", k, buf)
			}
			if sz, _ := f.Size(); k <= 8 && sz != 8 {
				// The unsynced post-sync write (point 7) and truncate (8)
				// must not have reached the durable image.
				t.Fatalf("point %d: a.dat size = %d, want 8", k, sz)
			}
		}
	}
}

func TestErrorInjectionKeepsRunning(t *testing.T) {
	mem := vfs.NewMemFS()
	fs := Wrap(mem, Config{Mode: ModeError, Point: 3, Seed: 1})
	fs.Arm()
	err := workload(fs)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("workload error = %v, want ErrInjected", err)
	}
	// The file system did not crash: the handle still works and later,
	// uncounted operations succeed (only one fault fires per run).
	f, err := fs.Open("a.dat")
	if err != nil {
		t.Fatalf("open after injected error: %v", err)
	}
	if _, err := f.WriteAt([]byte("retry"), 0); err != nil {
		t.Fatalf("write after injected error: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after injected error: %v", err)
	}
	if ev, ok := fs.Fired(); !ok || ev.K != 3 || ev.Op != OpWriteAt {
		t.Fatalf("fired = %v/%v, want WriteAt at k=3", ev, ok)
	}
}

// TestTornWriteAt tears the workload at a WriteAt: a seeded prefix of the
// in-flight buffer may persist, and the result is deterministic per seed.
func TestTornWriteAt(t *testing.T) {
	read := func(seed int64) (bool, []byte) {
		mem := vfs.NewMemFS()
		fs := Wrap(mem, Config{Mode: ModeTorn, Point: 7, Seed: seed})
		fs.Arm()
		if err := workload(fs); !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("workload error = %v, want ErrCrashed", err)
		}
		mem.Recover()
		f, err := mem.Open("a.dat")
		if err != nil {
			t.Fatal(err)
		}
		sz, _ := f.Size()
		buf := make([]byte, sz)
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		synced := string(buf[:8]) == "aaaaaaaa"
		return synced, buf[8:]
	}
	sawTail := false
	for seed := int64(1); seed <= 16; seed++ {
		synced, tail1 := read(seed)
		if !synced {
			t.Fatalf("seed %d: synced prefix of a.dat corrupted by torn write", seed)
		}
		_, tail2 := read(seed)
		if string(tail1) != string(tail2) {
			t.Fatalf("seed %d: torn result not deterministic: %q vs %q", seed, tail1, tail2)
		}
		// Whatever persisted must be a prefix of the in-flight "AAAA".
		if len(tail1) > 4 || string(tail1) != "AAAA"[:len(tail1)] {
			t.Fatalf("seed %d: torn tail %q is not a prefix of the write", seed, tail1)
		}
		if len(tail1) > 0 {
			sawTail = true
		}
	}
	if !sawTail {
		t.Fatal("no seed in 1..16 persisted any torn bytes; tearing looks inert")
	}
}

// TestTornOKFallback: when TornOK rejects the file, the torn fault degrades
// to a clean crash — no unsynced byte of any file persists.
func TestTornOKFallback(t *testing.T) {
	mem := vfs.NewMemFS()
	fs := Wrap(mem, Config{
		Mode: ModeTorn, Point: 7, Seed: 3,
		TornOK: func(string) bool { return false },
	})
	fs.Arm()
	if err := workload(fs); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("workload error = %v, want ErrCrashed", err)
	}
	mem.Recover()
	f, err := mem.Open("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 8 {
		t.Fatalf("a.dat size = %d after clean-degraded torn crash, want 8", sz)
	}
}

// TestTornAtTruncateDegrades: torn mode at an op with no bytes in flight is
// a clean crash, not a panic or a tear.
func TestTornAtTruncateDegrades(t *testing.T) {
	mem := vfs.NewMemFS()
	fs := Wrap(mem, Config{Mode: ModeTorn, Point: 8, Seed: 1})
	fs.Arm()
	if err := workload(fs); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("workload error = %v, want ErrCrashed", err)
	}
	ev, ok := fs.Fired()
	if !ok || ev.Op != OpTruncate {
		t.Fatalf("fired = %v/%v, want Truncate", ev, ok)
	}
	mem.Recover()
	f, err := mem.Open("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 8 {
		t.Fatalf("a.dat size = %d, want 8 (post-sync write and truncate both lost)", sz)
	}
}
