// Package faultfs wraps a vfs.MemFS and numbers every state-changing I/O
// operation — WriteAt, Sync, Truncate, Create, Remove — as a fault point.
// A configured fault fires at exactly one point k:
//
//   - ModeCrash: the file system crashes instead of performing op k, losing
//     everything that was never synced (vfs.MemFS.Crash).
//   - ModeTorn: the crash happens while op k's bytes are in flight. A torn
//     WriteAt first applies a seeded prefix of its buffer, then every file's
//     unsynced byte range is cut at a seeded point and persisted
//     (vfs.MemFS.CrashTorn) — modelling writes that partially reached the
//     platter when the power failed.
//   - ModeError: op k fails with ErrInjected and the file system keeps
//     running, exercising the caller's error-cleanup path.
//
// Reads and metadata queries are never fault points: they don't change
// durable state, so crashing "at" them explores no new schedule.
//
// Because fault points are numbered by arrival order, a workload that issues
// I/O deterministically makes every failure reproducible from the
// (seed, point) pair alone. The optional trace records each counted op so a
// sweep can verify that determinism instead of assuming it.
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"onlineindex/internal/vfs"
)

// ErrInjected is returned by the faulted operation in ModeError.
var ErrInjected = errors.New("faultfs: injected I/O error")

// Op identifies the kind of a counted I/O operation.
type Op uint8

// Counted operations. These are exactly the calls that mutate volatile or
// durable file-system state.
const (
	OpCreate Op = iota
	OpRemove
	OpWriteAt
	OpSync
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpRemove:
		return "remove"
	case OpWriteAt:
		return "writeat"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Mode selects what happens at the configured fault point.
type Mode uint8

const (
	// ModeCount performs no injection; the run just numbers fault points.
	ModeCount Mode = iota
	// ModeCrash crashes the file system instead of performing the op.
	ModeCrash
	// ModeTorn crashes with the op's (and every file's) unsynced bytes torn.
	ModeTorn
	// ModeError fails the op with ErrInjected and keeps running.
	ModeError
)

func (m Mode) String() string {
	switch m {
	case ModeCount:
		return "count"
	case ModeCrash:
		return "crash"
	case ModeTorn:
		return "torn"
	case ModeError:
		return "error"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Event is one counted I/O operation.
type Event struct {
	K    uint64 // 1-based fault-point number
	Op   Op
	Name string
	Off  int64 // WriteAt offset / Truncate size; 0 otherwise
	Len  int   // WriteAt buffer length; 0 otherwise
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s %s off=%d len=%d", e.K, e.Op, e.Name, e.Off, e.Len)
}

// Config parameterizes one faulted run.
type Config struct {
	Mode Mode
	// Point is the 1-based fault point at which the fault fires. Ignored in
	// ModeCount.
	Point uint64
	// Seed drives the torn-write cut points. The same (Seed, Point) always
	// tears the same bytes.
	Seed int64
	// TornOK, when non-nil, restricts which files a torn crash may persist
	// unsynced bytes of; others lose them as in a clean crash. The sweep uses
	// this to confine tearing to files with torn-tolerant formats (the
	// CRC-framed WAL, length-checkpointed sort runs) — page files have no
	// checksums, so a torn page write is undetectable by construction and is
	// out of the fault model (DESIGN.md §6).
	TornOK func(name string) bool
	// Trace records every counted op for replay verification.
	Trace bool
}

// FS is the fault-injecting file system. Wrap it around a fresh MemFS, set
// up any state that should not be counted (schema, seed rows), then Arm it
// and run the workload under test.
type FS struct {
	mem *vfs.MemFS
	cfg Config

	mu     sync.Mutex
	armed  bool
	points uint64
	fired  bool
	fireEv Event
	trace  []Event
	rng    *rand.Rand // created when the torn fault fires
}

// Wrap returns a fault-injecting view of mem. The wrapper starts disarmed:
// operations pass through uncounted until Arm.
func Wrap(mem *vfs.MemFS, cfg Config) *FS {
	return &FS{mem: mem, cfg: cfg}
}

// Underlying returns the wrapped MemFS (for recovery: the new incarnation
// mounts the disks directly, without fault injection).
func (f *FS) Underlying() *vfs.MemFS { return f.mem }

// Arm starts counting fault points at 1.
func (f *FS) Arm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
}

// Disarm stops counting; operations pass through again.
func (f *FS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = false
}

// Points returns how many fault points have been counted since Arm.
func (f *FS) Points() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.points
}

// Fired reports whether the configured fault fired, and at which operation.
func (f *FS) Fired() (Event, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fireEv, f.fired
}

// Trace returns the recorded operations (Config.Trace must be set).
func (f *FS) Trace() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event(nil), f.trace...)
}

// action is what the current operation must do after counting.
type action uint8

const (
	actPass action = iota
	actCrash
	actTorn
	actError
)

// note counts one operation and decides its fate. The torn mode only makes
// sense for operations with bytes in flight; at any other op it degrades to
// a clean crash (the schedule is still explored, just without tearing).
func (f *FS) note(op Op, name string, off int64, length int) action {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed || f.fired {
		return actPass
	}
	f.points++
	ev := Event{K: f.points, Op: op, Name: name, Off: off, Len: length}
	if f.cfg.Trace {
		f.trace = append(f.trace, ev)
	}
	if f.cfg.Mode == ModeCount || f.points != f.cfg.Point {
		return actPass
	}
	f.fired = true
	f.fireEv = ev
	switch f.cfg.Mode {
	case ModeError:
		return actError
	case ModeTorn:
		f.rng = rand.New(rand.NewSource(f.cfg.Seed ^ int64(uint64(f.cfg.Point)*0x9E3779B97F4A7C15)))
		if (op == OpWriteAt || op == OpSync) && (f.cfg.TornOK == nil || f.cfg.TornOK(name)) {
			return actTorn
		}
		return actCrash
	default:
		return actCrash
	}
}

// tornLen picks how many of n in-flight bytes reach the page cache before
// the power fails: a strict prefix, possibly empty.
func (f *FS) tornLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return f.rng.Intn(n)
}

// chooser returns the per-file cut-point function for vfs.MemFS.CrashTorn.
// MemFS calls it in sorted file-name order, so the draws are deterministic.
func (f *FS) chooser() func(name string, lo, hi int64) int64 {
	return func(name string, lo, hi int64) int64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.cfg.TornOK != nil && !f.cfg.TornOK(name) {
			return lo
		}
		return lo + f.rng.Int63n(hi-lo+1)
	}
}

// Create implements vfs.FS.
func (f *FS) Create(name string) (vfs.File, error) {
	switch f.note(OpCreate, name, 0, 0) {
	case actError:
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	case actCrash, actTorn:
		f.mem.Crash()
		return nil, vfs.ErrCrashed
	}
	inner, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, name: name}, nil
}

// Open implements vfs.FS. Opening is not a fault point, but the returned
// handle's mutating operations are counted.
func (f *FS) Open(name string) (vfs.File, error) {
	inner, err := f.mem.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner, name: name}, nil
}

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	switch f.note(OpRemove, name, 0, 0) {
	case actError:
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	case actCrash, actTorn:
		f.mem.Crash()
		return vfs.ErrCrashed
	}
	return f.mem.Remove(name)
}

// Exists implements vfs.FS.
func (f *FS) Exists(name string) (bool, error) { return f.mem.Exists(name) }

// List implements vfs.FS.
func (f *FS) List() ([]string, error) { return f.mem.List() }

// file wraps one handle, counting its mutating operations.
type file struct {
	fs    *FS
	inner vfs.File
	name  string
}

func (h *file) ReadAt(p []byte, off int64) (int, error) { return h.inner.ReadAt(p, off) }
func (h *file) Size() (int64, error)                    { return h.inner.Size() }
func (h *file) Close() error                            { return h.inner.Close() }
func (h *file) Name() string                            { return h.name }

func (h *file) WriteAt(p []byte, off int64) (int, error) {
	switch h.fs.note(OpWriteAt, h.name, off, len(p)) {
	case actError:
		return 0, fmt.Errorf("write %s: %w", h.name, ErrInjected)
	case actCrash:
		h.fs.mem.Crash()
		return 0, vfs.ErrCrashed
	case actTorn:
		// A prefix of p reaches the page cache, then the crash tears every
		// file's in-flight bytes at seeded cut points.
		if n := h.fs.tornLen(len(p)); n > 0 {
			h.inner.WriteAt(p[:n], off) //nolint:errcheck // pre-crash best effort
		}
		h.fs.mem.CrashTorn(h.fs.chooser())
		return 0, vfs.ErrCrashed
	}
	return h.inner.WriteAt(p, off)
}

func (h *file) Sync() error {
	switch h.fs.note(OpSync, h.name, 0, 0) {
	case actError:
		return fmt.Errorf("sync %s: %w", h.name, ErrInjected)
	case actCrash:
		h.fs.mem.Crash()
		return vfs.ErrCrashed
	case actTorn:
		// The sync was in flight: some of the dirty range made it out.
		h.fs.mem.CrashTorn(h.fs.chooser())
		return vfs.ErrCrashed
	}
	return h.inner.Sync()
}

func (h *file) Truncate(size int64) error {
	switch h.fs.note(OpTruncate, h.name, size, 0) {
	case actError:
		return fmt.Errorf("truncate %s: %w", h.name, ErrInjected)
	case actCrash, actTorn:
		h.fs.mem.Crash()
		return vfs.ErrCrashed
	}
	return h.inner.Truncate(size)
}
