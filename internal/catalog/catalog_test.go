package catalog

import (
	"testing"

	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
)

func table(id types.TableID, name string) *Table {
	return &Table{ID: id, Name: name, FileID: types.FileID(id) + 10, Schema: Schema{
		{Name: "id", Kind: keyenc.KindInt64},
		{Name: "name", Kind: keyenc.KindString},
	}}
}

func index(id types.IndexID, name string, tbl types.TableID) *Index {
	return &Index{
		ID: id, Name: name, Table: tbl, FileID: types.FileID(id) + 100,
		Columns: []int{1}, Method: MethodSF, State: StateBuilding, SideFile: types.FileID(id) + 200,
	}
}

func TestAddLookupTableAndIndex(t *testing.T) {
	c := New()
	if err := c.AddTable(table(1, "orders")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(table(2, "orders")); err == nil {
		t.Fatal("duplicate table name accepted")
	}
	if err := c.AddIndex(index(1, "by_name", 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddIndex(index(2, "by_name", 1)); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if err := c.AddIndex(index(3, "orphan", 99)); err == nil {
		t.Fatal("index on missing table accepted")
	}

	tb, ok := c.Table("orders")
	if !ok || tb.ID != 1 || len(tb.Schema) != 2 {
		t.Fatalf("table lookup = %+v ok=%v", tb, ok)
	}
	ix, ok := c.Index("by_name")
	if !ok || ix.ID != 1 || ix.State != StateBuilding {
		t.Fatalf("index lookup = %+v ok=%v", ix, ok)
	}
}

func TestIndexLifecycleAndCompleteLSN(t *testing.T) {
	c := New()
	c.AddTable(table(1, "t"))
	c.AddIndex(index(1, "i", 1))
	if err := c.SetIndexState(1, StateComplete, 777); err != nil {
		t.Fatal(err)
	}
	ix, _ := c.Index("i")
	if ix.State != StateComplete || ix.CompleteLSN != 777 {
		t.Fatalf("after complete: %+v", ix)
	}
	if err := c.SetIndexState(1, StateDropped, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Index("i"); ok {
		t.Fatal("dropped index still visible by name")
	}
	if _, ok := c.IndexByID(1); !ok {
		t.Fatal("dropped index descriptor gone entirely (needed for log replay)")
	}
	if err := c.SetIndexState(99, StateComplete, 0); err == nil {
		t.Fatal("state change of missing index accepted")
	}
}

func TestTableIndexesOrderedByCreation(t *testing.T) {
	c := New()
	c.AddTable(table(1, "t"))
	c.AddIndex(index(3, "c", 1))
	c.AddIndex(index(1, "a", 1))
	c.AddIndex(index(2, "b", 1))
	c.SetIndexState(2, StateDropped, 0)
	ixs := c.TableIndexes(1)
	if len(ixs) != 2 || ixs[0].ID != 1 || ixs[1].ID != 3 {
		t.Fatalf("indexes = %+v", ixs)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := New()
	c.AddTable(table(1, "orders"))
	c.AddTable(table(2, "lines"))
	c.AddIndex(index(1, "by_name", 1))
	c.AddIndex(index(2, "by_id", 2))
	c.SetIndexState(2, StateComplete, 555)
	id := c.AllocFileID()

	c2, err := FromSnapshot(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Tables()) != 2 || len(c2.Indexes()) != 2 {
		t.Fatalf("restored: %d tables, %d indexes", len(c2.Tables()), len(c2.Indexes()))
	}
	ix, ok := c2.Index("by_id")
	if !ok || ix.CompleteLSN != 555 || ix.State != StateComplete {
		t.Fatalf("restored index = %+v", ix)
	}
	tb, _ := c2.Table("orders")
	if tb.Schema[1].Kind != keyenc.KindString {
		t.Fatal("schema kind lost")
	}
	// ID allocators continue past the snapshot.
	if next := c2.AllocFileID(); next <= id {
		t.Fatalf("file ID allocator regressed: %d <= %d", next, id)
	}
	if c2.NextTableID() <= 2 || c2.NextIndexID() <= 2 {
		t.Fatal("table/index ID allocators regressed")
	}
}

func TestDDLPayloadRoundTrip(t *testing.T) {
	tb := table(4, "x")
	got, err := DecodeCreateTable(EncodeCreateTable(tb))
	if err != nil || got.Name != "x" || got.FileID != tb.FileID || len(got.Schema) != 2 {
		t.Fatalf("table payload: %+v, %v", got, err)
	}
	ix := index(9, "idx", 4)
	ix.Unique = true
	gotIx, err := DecodeCreateIndex(EncodeCreateIndex(ix))
	if err != nil || gotIx.Name != "idx" || !gotIx.Unique || gotIx.SideFile != ix.SideFile ||
		len(gotIx.Columns) != 1 || gotIx.Columns[0] != 1 {
		t.Fatalf("index payload: %+v, %v", gotIx, err)
	}
	sc := StateChangePayload{Index: 9, State: StateComplete}
	gotSc, err := DecodeStateChange(sc.Encode())
	if err != nil || gotSc != sc {
		t.Fatalf("state payload: %+v, %v", gotSc, err)
	}
}

func TestCopySemantics(t *testing.T) {
	c := New()
	c.AddTable(table(1, "t"))
	c.AddIndex(index(1, "i", 1))
	ix, _ := c.Index("i")
	ix.Columns[0] = 99 // mutate the copy
	again, _ := c.Index("i")
	if again.Columns[0] == 99 {
		t.Fatal("catalog returned aliased column slice")
	}
}
