// Package catalog holds the table and index descriptors and their
// lifecycle. The paper's two algorithms differ in exactly when and how a new
// index descriptor becomes visible:
//
//   - NSF creates the descriptor under a short table-S-lock quiesce
//     (§2.2.1); from then on the index is *visible for updates* —
//     transactions maintain it directly — but not usable as an access path
//     until the build completes.
//   - SF appends the descriptor without quiescing (§3.2.1) and sets the
//     Index_Build flag; transactions route their changes to the side-file
//     depending on the builder's scan position, and the index becomes
//     directly maintained only when the flag is reset.
//
// The catalog is an in-memory structure rebuilt at restart from the fuzzy
// checkpoint snapshot plus the DDL log records after it.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"onlineindex/internal/enc"
	"onlineindex/internal/keyenc"
	"onlineindex/internal/types"
)

// BuildMethod identifies which algorithm is building (or built) an index.
type BuildMethod uint8

// Build methods.
const (
	MethodOffline BuildMethod = iota // quiesce updates for the whole build (baseline)
	MethodNSF                        // §2: no side-file
	MethodSF                         // §3: side-file
)

func (m BuildMethod) String() string {
	switch m {
	case MethodOffline:
		return "offline"
	case MethodNSF:
		return "NSF"
	case MethodSF:
		return "SF"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// IndexState is an index's lifecycle state.
type IndexState uint8

// Index states.
const (
	// StateBuilding: the build is in progress. For NSF the index is visible
	// for updates; for SF the Index_Build flag is conceptually set and
	// transactions use the side-file protocol.
	StateBuilding IndexState = iota + 1
	// StateComplete: fully built; transactions maintain it directly and
	// readers may use it as an access path.
	StateComplete
	// StateDropped: descriptor removed (drop or cancelled build).
	StateDropped
)

func (s IndexState) String() string {
	switch s {
	case StateBuilding:
		return "building"
	case StateComplete:
		return "complete"
	case StateDropped:
		return "dropped"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Column describes one table column.
type Column struct {
	Name string
	Kind keyenc.Kind
}

// Schema is a table's column list.
type Schema []Column

// Table is a table descriptor.
type Table struct {
	ID     types.TableID
	Name   string
	FileID types.FileID
	Schema Schema
}

// Index is an index descriptor.
type Index struct {
	ID       types.IndexID
	Name     string
	Table    types.TableID
	FileID   types.FileID
	SideFile types.FileID // 0 when the index has no side-file (NSF/offline)
	Columns  []int        // schema column positions forming the key
	Unique   bool
	Method   BuildMethod
	State    IndexState
	// CompleteLSN is the LSN of the TypeIndexStateChange record that marked
	// the index complete (NilLSN while building). Rollback uses it to tell
	// whether a data-page update predates the side-file switch: updates with
	// smaller LSNs maintained this index through the side-file, so their
	// undo must compensate logically instead of relying on the
	// transaction's own index log records.
	CompleteLSN types.LSN
}

// Catalog is the descriptor store. Safe for concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[types.TableID]*Table
	indexes  map[types.IndexID]*Index
	byName   map[string]types.TableID
	idxName  map[string]types.IndexID
	nextTbl  types.TableID
	nextIdx  types.IndexID
	nextFile types.FileID
	// Partition registry (partition.go): logical partitioned tables and
	// the logical fan-out indexes over them, keyed by logical name.
	partTables  map[string]*PartTable
	partIndexes map[string]*PartIndex
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:      make(map[types.TableID]*Table),
		indexes:     make(map[types.IndexID]*Index),
		byName:      make(map[string]types.TableID),
		idxName:     make(map[string]types.IndexID),
		partTables:  make(map[string]*PartTable),
		partIndexes: make(map[string]*PartIndex),
	}
}

// AllocFileID hands out the next storage file ID.
func (c *Catalog) AllocFileID() types.FileID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextFile++
	return c.nextFile
}

// AddTable installs a table descriptor built from a DDL record (or a fresh
// CreateTable). IDs must have been assigned by the caller.
func (c *Catalog) AddTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byName[t.Name]; ok {
		return fmt.Errorf("catalog: table %q exists", t.Name)
	}
	cp := *t
	c.tables[t.ID] = &cp
	c.byName[t.Name] = t.ID
	if t.ID > c.nextTbl {
		c.nextTbl = t.ID
	}
	if t.FileID > c.nextFile {
		c.nextFile = t.FileID
	}
	return nil
}

// NextTableID allocates a table ID.
func (c *Catalog) NextTableID() types.TableID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextTbl++
	return c.nextTbl
}

// NextIndexID allocates an index ID.
func (c *Catalog) NextIndexID() types.IndexID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextIdx++
	return c.nextIdx
}

// AddIndex installs an index descriptor.
func (c *Catalog) AddIndex(ix *Index) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.idxName[ix.Name]; ok {
		return fmt.Errorf("catalog: index %q exists", ix.Name)
	}
	if _, ok := c.tables[ix.Table]; !ok {
		return fmt.Errorf("catalog: index %q references missing table %d", ix.Name, ix.Table)
	}
	cp := *ix
	cp.Columns = append([]int(nil), ix.Columns...)
	c.indexes[ix.ID] = &cp
	c.idxName[ix.Name] = ix.ID
	if ix.ID > c.nextIdx {
		c.nextIdx = ix.ID
	}
	if ix.FileID > c.nextFile {
		c.nextFile = ix.FileID
	}
	if ix.SideFile > c.nextFile {
		c.nextFile = ix.SideFile
	}
	return nil
}

// SetIndexState transitions an index's lifecycle state. lsn is the LSN of
// the state-change log record; for transitions to StateComplete it becomes
// the index's CompleteLSN.
func (c *Catalog) SetIndexState(id types.IndexID, st IndexState, lsn types.LSN) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[id]
	if !ok {
		return fmt.Errorf("catalog: no index %d", id)
	}
	ix.State = st
	if st == StateComplete {
		ix.CompleteLSN = lsn
	}
	if st == StateDropped {
		delete(c.idxName, ix.Name)
	}
	return nil
}

// Table returns a copy of the named table's descriptor.
func (c *Catalog) Table(name string) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.byName[name]
	if !ok {
		return Table{}, false
	}
	return *c.tables[id], true
}

// TableByID returns a copy of the table descriptor.
func (c *Catalog) TableByID(id types.TableID) (Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[id]
	if !ok {
		return Table{}, false
	}
	return *t, true
}

// Index returns a copy of the named index's descriptor.
func (c *Catalog) Index(name string) (Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	id, ok := c.idxName[name]
	if !ok {
		return Index{}, false
	}
	return c.indexCopyLocked(id)
}

// IndexByID returns a copy of the index descriptor.
func (c *Catalog) IndexByID(id types.IndexID) (Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.indexCopyLocked(id)
}

func (c *Catalog) indexCopyLocked(id types.IndexID) (Index, bool) {
	ix, ok := c.indexes[id]
	if !ok {
		return Index{}, false
	}
	cp := *ix
	cp.Columns = append([]int(nil), ix.Columns...)
	return cp, true
}

// TableIndexes returns the non-dropped indexes of a table, in index-ID order
// (creation order — "the number of indexes can only increase while update
// transactions are active").
func (c *Catalog) TableIndexes(t types.TableID) []Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Index
	for _, ix := range c.indexes {
		if ix.Table == t && ix.State != StateDropped {
			cp := *ix
			cp.Columns = append([]int(nil), ix.Columns...)
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Tables returns all table descriptors.
func (c *Catalog) Tables() []Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Table
	for _, t := range c.tables {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Indexes returns all non-dropped index descriptors.
func (c *Catalog) Indexes() []Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Index
	for _, ix := range c.indexes {
		if ix.State != StateDropped {
			cp := *ix
			cp.Columns = append([]int(nil), ix.Columns...)
			out = append(out, cp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ---------------------------------------------------------------------------
// Serialization: DDL log payloads and the checkpoint snapshot.
// ---------------------------------------------------------------------------

func encodeTable(w *enc.Writer, t *Table) {
	w.U32(uint32(t.ID)).String32(t.Name).U32(uint32(t.FileID)).U32(uint32(len(t.Schema)))
	for _, col := range t.Schema {
		w.String32(col.Name).U8(uint8(col.Kind))
	}
}

func decodeTable(r *enc.Reader) Table {
	t := Table{ID: types.TableID(r.U32()), Name: r.String32(), FileID: types.FileID(r.U32())}
	n := int(r.U32())
	for i := 0; i < n; i++ {
		t.Schema = append(t.Schema, Column{Name: r.String32(), Kind: keyenc.Kind(r.U8())})
	}
	return t
}

func encodeIndex(w *enc.Writer, ix *Index) {
	w.U32(uint32(ix.ID)).String32(ix.Name).U32(uint32(ix.Table)).
		U32(uint32(ix.FileID)).U32(uint32(ix.SideFile)).
		Bool(ix.Unique).U8(uint8(ix.Method)).U8(uint8(ix.State)).
		LSN(ix.CompleteLSN).
		U32(uint32(len(ix.Columns)))
	for _, c := range ix.Columns {
		w.U32(uint32(c))
	}
}

func decodeIndex(r *enc.Reader) Index {
	ix := Index{
		ID: types.IndexID(r.U32()), Name: r.String32(), Table: types.TableID(r.U32()),
		FileID: types.FileID(r.U32()), SideFile: types.FileID(r.U32()),
		Unique: r.Bool(), Method: BuildMethod(r.U8()), State: IndexState(r.U8()),
		CompleteLSN: r.LSN(),
	}
	n := int(r.U32())
	for i := 0; i < n; i++ {
		ix.Columns = append(ix.Columns, int(r.U32()))
	}
	return ix
}

// EncodeCreateTable builds a TypeCreateTable payload.
func EncodeCreateTable(t *Table) []byte {
	w := enc.NewWriter()
	encodeTable(w, t)
	return w.Bytes()
}

// DecodeCreateTable parses a TypeCreateTable payload.
func DecodeCreateTable(b []byte) (Table, error) {
	r := enc.NewReader(b)
	t := decodeTable(r)
	return t, r.Err()
}

// EncodeCreateIndex builds a TypeCreateIndex payload.
func EncodeCreateIndex(ix *Index) []byte {
	w := enc.NewWriter()
	encodeIndex(w, ix)
	return w.Bytes()
}

// DecodeCreateIndex parses a TypeCreateIndex payload.
func DecodeCreateIndex(b []byte) (Index, error) {
	r := enc.NewReader(b)
	ix := decodeIndex(r)
	return ix, r.Err()
}

// StateChangePayload is the body of TypeIndexStateChange and TypeDropIndex.
type StateChangePayload struct {
	Index types.IndexID
	State IndexState
}

// Encode serializes the payload.
func (p *StateChangePayload) Encode() []byte {
	return enc.NewWriter().U32(uint32(p.Index)).U8(uint8(p.State)).Bytes()
}

// DecodeStateChange parses a StateChangePayload.
func DecodeStateChange(b []byte) (StateChangePayload, error) {
	r := enc.NewReader(b)
	p := StateChangePayload{Index: types.IndexID(r.U32()), State: IndexState(r.U8())}
	return p, r.Err()
}

// Snapshot serializes the whole catalog for the fuzzy checkpoint.
func (c *Catalog) Snapshot() []byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w := enc.NewWriter()
	w.U32(uint32(c.nextTbl)).U32(uint32(c.nextIdx)).U32(uint32(c.nextFile))
	var tids []types.TableID
	for id := range c.tables {
		tids = append(tids, id)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	w.U32(uint32(len(tids)))
	for _, id := range tids {
		encodeTable(w, c.tables[id])
	}
	var iids []types.IndexID
	for id := range c.indexes {
		iids = append(iids, id)
	}
	sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
	w.U32(uint32(len(iids)))
	for _, id := range iids {
		encodeIndex(w, c.indexes[id])
	}
	// The partition section trails the legacy layout and is written only
	// when the registry is non-empty, so unpartitioned databases produce
	// byte-identical snapshots to earlier versions.
	if c.partCountLocked() > 0 {
		c.snapshotPartLocked(w)
	}
	return w.Bytes()
}

// FromSnapshot rebuilds a catalog from a checkpoint snapshot.
func FromSnapshot(b []byte) (*Catalog, error) {
	c := New()
	r := enc.NewReader(b)
	c.nextTbl = types.TableID(r.U32())
	c.nextIdx = types.IndexID(r.U32())
	c.nextFile = types.FileID(r.U32())
	nt := int(r.U32())
	for i := 0; i < nt; i++ {
		t := decodeTable(r)
		c.tables[t.ID] = &t
		c.byName[t.Name] = t.ID
	}
	ni := int(r.U32())
	for i := 0; i < ni; i++ {
		ix := decodeIndex(r)
		cp := ix
		c.indexes[ix.ID] = &cp
		if ix.State != StateDropped {
			c.idxName[ix.Name] = ix.ID
		}
	}
	if r.Err() == nil && r.Remaining() > 0 {
		c.restorePartSection(r)
	}
	return c, r.Err()
}
