// Horizontal partitioning registry: one logical table name maps to N
// ordinary shard tables, and one logical index name maps to N ordinary
// shard indexes. The shards are full citizens of the existing catalog —
// each has its own heap file, FSM, zone-map sidecar and index trees, and
// every byte of the per-shard build/recovery machinery is reused
// unchanged. The partition layer is pure metadata: which shards make up a
// logical table, how rows route to them, and the lifecycle state of each
// logical (fan-out) index build.
//
// Durability follows the DDL precedent: partition metadata changes are
// logged as redo-only TypePartMeta records and applied unconditionally
// during the recovery analysis scan, and the registry rides in a trailing
// section of the fuzzy-checkpoint snapshot that is written only when the
// registry is non-empty — databases that never partition produce
// byte-identical snapshots and logs to earlier versions.
package catalog

import (
	"fmt"
	"sort"

	"onlineindex/internal/enc"
	"onlineindex/internal/types"
)

// PartScheme selects how rows map to shards.
type PartScheme uint8

// Partitioning schemes.
const (
	// SchemeRange routes by comparing the keyenc encoding of the
	// partitioning column against the table's upper-exclusive bounds.
	SchemeRange PartScheme = iota + 1
	// SchemeHash routes by FNV-1a over the keyenc encoding of the
	// partitioning column, modulo the shard count.
	SchemeHash
)

func (s PartScheme) String() string {
	switch s {
	case SchemeRange:
		return "range"
	case SchemeHash:
		return "hash"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// PartTable describes one logical partitioned table.
type PartTable struct {
	Name   string
	Scheme PartScheme
	KeyCol int             // schema position of the partitioning column
	Parts  []types.TableID // shard table IDs, partition order
	// Bounds are the upper-exclusive split points for SchemeRange, as
	// keyenc encodings of the partitioning column: len(Parts)-1 entries,
	// shard i holds keys < Bounds[i] (the last shard is unbounded).
	// Empty for SchemeHash.
	Bounds [][]byte
}

func clonePartTable(pt *PartTable) *PartTable {
	cp := *pt
	cp.Parts = append([]types.TableID(nil), pt.Parts...)
	cp.Bounds = make([][]byte, 0, len(pt.Bounds))
	for _, b := range pt.Bounds {
		cp.Bounds = append(cp.Bounds, append([]byte(nil), b...))
	}
	return &cp
}

// PartIndex describes one logical index over a partitioned table. The
// shard indexes it fans out to are derived by name (PartShardIndexName),
// so the registry entry carries only the build spec and lifecycle state.
type PartIndex struct {
	Name    string
	Table   string // logical table name
	Columns []string
	Unique  bool
	Method  BuildMethod
	State   IndexState
}

func clonePartIndex(pi *PartIndex) *PartIndex {
	cp := *pi
	cp.Columns = append([]string(nil), pi.Columns...)
	return &cp
}

// PartShardTableName derives shard i's catalog table name. The '#' makes
// collisions with user-chosen names impossible by convention.
func PartShardTableName(table string, i int) string {
	return fmt.Sprintf("%s#p%d", table, i)
}

// PartShardIndexName derives shard i's catalog index name.
func PartShardIndexName(index string, i int) string {
	return fmt.Sprintf("%s#p%d", index, i)
}

// AddPartTable installs (or, during log replay, reinstalls) a logical
// partitioned-table descriptor. Upsert semantics keep replay idempotent.
func (c *Catalog) AddPartTable(pt *PartTable) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partTables[pt.Name] = clonePartTable(pt)
}

// PartTable returns a copy of the named logical table's descriptor.
func (c *Catalog) PartTable(name string) (PartTable, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pt, ok := c.partTables[name]
	if !ok {
		return PartTable{}, false
	}
	return *clonePartTable(pt), true
}

// PartTables returns all logical table descriptors, name-sorted.
func (c *Catalog) PartTables() []PartTable {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PartTable, 0, len(c.partTables))
	for _, pt := range c.partTables {
		out = append(out, *clonePartTable(pt))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// UpsertPartIndex installs or updates a logical index descriptor.
// Creation and state changes share this one last-write-wins entry point,
// which is what makes replaying the redo-only meta records idempotent.
func (c *Catalog) UpsertPartIndex(pi *PartIndex) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partIndexes[pi.Name] = clonePartIndex(pi)
}

// PartIndex returns a copy of the named logical index's descriptor.
func (c *Catalog) PartIndex(name string) (PartIndex, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pi, ok := c.partIndexes[name]
	if !ok {
		return PartIndex{}, false
	}
	return *clonePartIndex(pi), true
}

// PartIndexes returns all logical index descriptors, name-sorted.
func (c *Catalog) PartIndexes() []PartIndex {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]PartIndex, 0, len(c.partIndexes))
	for _, pi := range c.partIndexes {
		out = append(out, *clonePartIndex(pi))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RemovePartIndex deletes a logical index descriptor (drop or cancelled
// fan-out build). Idempotent.
func (c *Catalog) RemovePartIndex(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.partIndexes, name)
}

// partCountLocked reports whether the registry holds anything; Snapshot
// uses it to decide whether to emit the trailing partition section.
func (c *Catalog) partCountLocked() int {
	return len(c.partTables) + len(c.partIndexes)
}

// ---------------------------------------------------------------------------
// Serialization: TypePartMeta payloads and the snapshot section.
// ---------------------------------------------------------------------------

// PartMeta payload operation tags.
const (
	partOpTable     uint8 = 1 // upsert a PartTable
	partOpIndex     uint8 = 2 // upsert a PartIndex (create and state change)
	partOpIndexDrop uint8 = 3 // remove a PartIndex by name
)

func encodePartTable(w *enc.Writer, pt *PartTable) {
	w.String32(pt.Name).U8(uint8(pt.Scheme)).U32(uint32(pt.KeyCol))
	w.U32(uint32(len(pt.Parts)))
	for _, id := range pt.Parts {
		w.U32(uint32(id))
	}
	w.U32(uint32(len(pt.Bounds)))
	for _, b := range pt.Bounds {
		w.Bytes32(b)
	}
}

func decodePartTable(r *enc.Reader) PartTable {
	pt := PartTable{Name: r.String32(), Scheme: PartScheme(r.U8()), KeyCol: int(r.U32())}
	np := int(r.U32())
	for i := 0; i < np; i++ {
		pt.Parts = append(pt.Parts, types.TableID(r.U32()))
	}
	nb := int(r.U32())
	for i := 0; i < nb; i++ {
		pt.Bounds = append(pt.Bounds, append([]byte(nil), r.Bytes32()...))
	}
	return pt
}

func encodePartIndex(w *enc.Writer, pi *PartIndex) {
	w.String32(pi.Name).String32(pi.Table).
		Bool(pi.Unique).U8(uint8(pi.Method)).U8(uint8(pi.State)).
		U32(uint32(len(pi.Columns)))
	for _, c := range pi.Columns {
		w.String32(c)
	}
}

func decodePartIndex(r *enc.Reader) PartIndex {
	pi := PartIndex{
		Name: r.String32(), Table: r.String32(),
		Unique: r.Bool(), Method: BuildMethod(r.U8()), State: IndexState(r.U8()),
	}
	nc := int(r.U32())
	for i := 0; i < nc; i++ {
		pi.Columns = append(pi.Columns, r.String32())
	}
	return pi
}

// EncodePartTableMeta builds a TypePartMeta payload that upserts pt.
func EncodePartTableMeta(pt *PartTable) []byte {
	w := enc.NewWriter()
	w.U8(partOpTable)
	encodePartTable(w, pt)
	return w.Bytes()
}

// EncodePartIndexMeta builds a TypePartMeta payload that upserts pi.
func EncodePartIndexMeta(pi *PartIndex) []byte {
	w := enc.NewWriter()
	w.U8(partOpIndex)
	encodePartIndex(w, pi)
	return w.Bytes()
}

// EncodePartIndexDropMeta builds a TypePartMeta payload that removes the
// named logical index descriptor.
func EncodePartIndexDropMeta(name string) []byte {
	return enc.NewWriter().U8(partOpIndexDrop).String32(name).Bytes()
}

// ApplyPartMeta applies one TypePartMeta payload to the registry. The
// recovery analysis scan calls it unconditionally (same treatment as the
// other DDL records); all three operations are idempotent upserts/deletes
// so replay after a snapshot restore is harmless.
func (c *Catalog) ApplyPartMeta(b []byte) error {
	r := enc.NewReader(b)
	switch op := r.U8(); op {
	case partOpTable:
		pt := decodePartTable(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("catalog: bad PartMeta table payload: %w", err)
		}
		c.AddPartTable(&pt)
	case partOpIndex:
		pi := decodePartIndex(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("catalog: bad PartMeta index payload: %w", err)
		}
		c.UpsertPartIndex(&pi)
	case partOpIndexDrop:
		name := r.String32()
		if err := r.Err(); err != nil {
			return fmt.Errorf("catalog: bad PartMeta drop payload: %w", err)
		}
		c.RemovePartIndex(name)
	default:
		return fmt.Errorf("catalog: unknown PartMeta op %d", op)
	}
	return nil
}

// snapshotPartLocked appends the partition section to a checkpoint
// snapshot. Callers must hold c.mu and only call when partCountLocked()>0.
func (c *Catalog) snapshotPartLocked(w *enc.Writer) {
	var tnames []string
	for n := range c.partTables {
		tnames = append(tnames, n)
	}
	sort.Strings(tnames)
	w.U32(uint32(len(tnames)))
	for _, n := range tnames {
		encodePartTable(w, c.partTables[n])
	}
	var inames []string
	for n := range c.partIndexes {
		inames = append(inames, n)
	}
	sort.Strings(inames)
	w.U32(uint32(len(inames)))
	for _, n := range inames {
		encodePartIndex(w, c.partIndexes[n])
	}
}

// restorePartSection reads the optional trailing partition section.
func (c *Catalog) restorePartSection(r *enc.Reader) {
	nt := int(r.U32())
	for i := 0; i < nt; i++ {
		pt := decodePartTable(r)
		if r.Err() != nil {
			return
		}
		c.partTables[pt.Name] = &pt
	}
	ni := int(r.U32())
	for i := 0; i < ni; i++ {
		pi := decodePartIndex(r)
		if r.Err() != nil {
			return
		}
		c.partIndexes[pi.Name] = &pi
	}
}
