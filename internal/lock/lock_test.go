package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"onlineindex/internal/types"
)

func name(i uint64) Name { return Name{Space: SpaceRecord, A: i} }

func TestSharedCompatible(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, name(1), S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, name(1), S); err != nil {
		t.Fatal(err)
	}
	if err := m.LockConditional(3, name(1), X); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("X over S+S = %v, want ErrWouldBlock", err)
	}
}

func TestExclusiveBlocksAndUnblocks(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, name(1), X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Lock(2, name(1), X) }()
	select {
	case err := <-got:
		t.Fatalf("second X granted while first held: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	m.Unlock(1, name(1))
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woken")
	}
}

func TestReacquireCoveredMode(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), X)
	if err := m.Lock(1, name(1), S); err != nil {
		t.Fatalf("re-acquire covered mode: %v", err)
	}
	m.Unlock(1, name(1))
	// Still held once (count was 2).
	if !m.HoldsAtLeast(1, name(1), X) {
		t.Fatal("lock released too early")
	}
	m.Unlock(1, name(1))
	if m.HoldsAtLeast(1, name(1), S) {
		t.Fatal("lock not released")
	}
}

func TestConversionSToX(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), S)
	if err := m.Lock(1, name(1), X); err != nil {
		t.Fatalf("solo S->X conversion: %v", err)
	}
	if !m.HoldsAtLeast(1, name(1), X) {
		t.Fatal("conversion did not take effect")
	}
	if err := m.LockConditional(2, name(1), S); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("other txn S should block after conversion to X")
	}
}

func TestConversionWaitsForOtherHolder(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), S)
	m.Lock(2, name(1), S)
	got := make(chan error, 1)
	go func() { got <- m.Lock(1, name(1), X) }()
	select {
	case err := <-got:
		t.Fatalf("conversion granted while other S holder exists: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	m.Unlock(2, name(1))
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestConversionJumpsQueue(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), S)
	m.Lock(2, name(1), S)
	// Txn 3 queues for X behind the two S holders.
	x3 := make(chan error, 1)
	go func() { x3 <- m.Lock(3, name(1), X) }()
	time.Sleep(10 * time.Millisecond)
	// Txn 1 converts S->X; it must not wait behind txn 3 (which would
	// deadlock against txn 1's own S hold being required to drain first).
	conv := make(chan error, 1)
	go func() { conv <- m.Lock(1, name(1), X) }()
	time.Sleep(10 * time.Millisecond)
	m.Unlock(2, name(1))
	select {
	case err := <-conv:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("conversion starved behind later X request")
	}
	m.ReleaseAll(1)
	if err := <-x3; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), X)
	m.Lock(2, name(2), X)

	res := make(chan error, 2)
	go func() { res <- m.Lock(1, name(2), X) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)
	go func() { res <- m.Lock(2, name(1), X) }() // 2 waits for 1: cycle

	var errs []error
	select {
	case err := <-res:
		errs = append(errs, err)
	case <-time.After(2 * time.Second):
		t.Fatal("deadlock not detected")
	}
	// One request must fail with ErrDeadlock; releasing its locks lets the
	// other proceed.
	if !errors.Is(errs[0], ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock, got %v", errs[0])
	}
	m.ReleaseAll(2) // victim was txn 2's request; release its holds
	select {
	case err := <-res:
		if err != nil {
			t.Fatalf("survivor errored: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never granted")
	}
}

func TestInstantLock(t *testing.T) {
	m := NewManager()
	if err := m.LockInstant(1, name(1), S); err != nil {
		t.Fatal(err)
	}
	if m.HoldsAtLeast(1, name(1), S) {
		t.Fatal("instant lock retained")
	}
	if m.HeldCount(1) != 0 {
		t.Fatal("instant lock left bookkeeping")
	}
}

func TestConditionalInstantLockGC(t *testing.T) {
	// §2.2.4: GC requests a conditional instant S lock on each pseudo-deleted
	// key; an uncommitted deleter (holding X) causes the key to be skipped.
	m := NewManager()
	deleter, gc := types.TxnID(1), types.TxnID(2)
	m.Lock(deleter, name(42), X)
	if err := m.LockConditionalInstant(gc, name(42), S); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("GC lock over uncommitted delete = %v, want ErrWouldBlock", err)
	}
	m.ReleaseAll(deleter)
	if err := m.LockConditionalInstant(gc, name(42), S); err != nil {
		t.Fatalf("GC lock after commit = %v, want nil", err)
	}
	if m.HeldCount(gc) != 0 {
		t.Fatal("conditional instant lock retained")
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), X)
	m.Lock(1, name(2), X)
	res := make(chan error, 2)
	go func() { res <- m.Lock(2, name(1), S) }()
	go func() { res <- m.Lock(3, name(2), S) }()
	time.Sleep(10 * time.Millisecond)
	m.ReleaseAll(1)
	for i := 0; i < 2; i++ {
		select {
		case err := <-res:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatal("waiter not woken by ReleaseAll")
		}
	}
}

func TestIntentionModes(t *testing.T) {
	m := NewManager()
	tbl := TableName(7)
	if err := m.Lock(1, tbl, IX); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, tbl, IX); err != nil {
		t.Fatal(err) // IX compatible with IX
	}
	if err := m.LockConditional(3, tbl, S); !errors.Is(err, ErrWouldBlock) {
		t.Fatal("S should be incompatible with IX")
	}
	if err := m.Lock(4, tbl, IS); err != nil {
		t.Fatal(err) // IS compatible with IX
	}
}

func TestQuiesceScenario(t *testing.T) {
	// NSF descriptor creation: IB takes table S; updaters take table IX.
	// Updaters active => IB blocks; after they finish IB proceeds; new
	// updaters block behind IB (no barging) until IB releases.
	m := NewManager()
	tbl := TableName(1)
	m.Lock(10, tbl, IX) // active updater

	ibDone := make(chan error, 1)
	go func() { ibDone <- m.Lock(99, tbl, S) }()
	select {
	case <-ibDone:
		t.Fatal("IB quiesce lock granted while updater active")
	case <-time.After(10 * time.Millisecond):
	}

	lateUpdater := make(chan error, 1)
	go func() { lateUpdater <- m.Lock(11, tbl, IX) }()

	m.ReleaseAll(10) // updater commits
	if err := <-ibDone; err != nil {
		t.Fatal(err)
	}
	select {
	case <-lateUpdater:
		t.Fatal("late updater barged past IB's S lock")
	case <-time.After(10 * time.Millisecond):
	}
	m.ReleaseAll(99) // descriptor created, quiesce over
	if err := <-lateUpdater; err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewManager()
	m.Lock(1, name(1), X)
	m.LockConditional(2, name(1), X)
	st := m.Stats()
	if st.Requests != 2 || st.Grants != 1 || st.Conditional != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLockStress(t *testing.T) {
	m := NewManager()
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	counters := make([]int, 4)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			txn := types.TxnID(id + 1)
			for i := 0; i < iters; i++ {
				n := name(uint64(i % 4))
				if err := m.Lock(txn, n, X); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				counters[i%4]++
				m.Unlock(txn, n)
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != goroutines*iters {
		t.Fatalf("lost updates under X locks: %d != %d", total, goroutines*iters)
	}
}

func TestModeCovers(t *testing.T) {
	if !X.Covers(S) || !X.Covers(IX) || !SIX.Covers(S) || !SIX.Covers(IX) {
		t.Error("strong modes should cover weaker ones")
	}
	if S.Covers(X) || IX.Covers(S) || IS.Covers(IX) {
		t.Error("weak modes must not cover stronger ones")
	}
	if !S.Covers(IS) || !U.Covers(S) {
		t.Error("expected coverings missing")
	}
}
