// Package lock implements the transaction lock manager: hierarchical lock
// modes (IS, IX, S, SIX, U, X), conditional and instant-duration requests,
// lock conversion, FIFO queuing and waits-for deadlock detection.
//
// The paper's algorithms depend on several specific lock-manager behaviours:
//
//   - NSF quiesces updates for descriptor creation by taking an S lock on
//     the table (§2.2.1); drop/cancel of an index does the same (§2.3.2).
//   - The offline baseline quiesces the whole build with a table S lock.
//   - Unique-index duplicate checking locks the competing records in share
//     mode to wait out uncommitted inserters/deleters (§2.2.3).
//   - Pseudo-delete garbage collection issues *conditional instant* share
//     locks on keys: "If the lock is granted, then delete the key;
//     otherwise, skip it since the key's deletion is probably uncommitted"
//     (§2.2.4).
//
// The index builder itself never locks data while extracting keys — that is
// the whole point of the execution model (§1.1).
//
// The bucket map is striped: each lock name hashes to one of M
// independently-latched stripes holding its own lock heads, wait queues and
// waits-for edges, so lock traffic on unrelated names never serializes.
// Deadlock detection needs a consistent snapshot of the whole waits-for
// graph, so after enqueuing (edges installed stripe-locally first) the
// requester acquires every stripe mutex in ascending index order and runs
// the cycle search over the union — the fixed acquisition order makes
// concurrent detectors deadlock-free among themselves, and because every
// waiter installs its edges before detecting, the detector that adds the
// cycle-closing edge is guaranteed to see the whole cycle.
package lock

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"onlineindex/internal/metrics"
	"onlineindex/internal/types"
)

// Mode is a lock mode.
type Mode int

// Lock modes, weakest to strongest by supremum ordering.
const (
	None Mode = iota
	IS        // intention share
	IX        // intention exclusive
	S         // share
	SIX       // share + intention exclusive
	U         // update (asymmetric: compatible with S, not with itself)
	X         // exclusive
)

func (m Mode) String() string {
	switch m {
	case None:
		return "None"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compat[a][b] reports whether a holder in mode a is compatible with a
// requester in mode b. The U row/column is asymmetric: a U holder allows new
// S requests, but an S holder does not allow U→ nothing special needed here;
// we use the standard matrix from the locking literature.
var compat = map[Mode]map[Mode]bool{
	IS:  {IS: true, IX: true, S: true, SIX: true, U: true, X: false},
	IX:  {IS: true, IX: true, S: false, SIX: false, U: false, X: false},
	S:   {IS: true, IX: false, S: true, SIX: false, U: true, X: false},
	SIX: {IS: true, IX: false, S: false, SIX: false, U: false, X: false},
	U:   {IS: true, IX: false, S: false, SIX: false, U: false, X: false},
	X:   {IS: false, IX: false, S: false, SIX: false, U: false, X: false},
}

// supremum[a][b] is the weakest mode at least as strong as both a and b,
// used for lock conversion.
var supremum = map[Mode]map[Mode]Mode{
	None: {None: None, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IS:   {None: IS, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IX:   {None: IX, IS: IX, IX: IX, S: SIX, SIX: SIX, U: X, X: X},
	S:    {None: S, IS: S, IX: SIX, S: S, SIX: SIX, U: U, X: X},
	SIX:  {None: SIX, IS: SIX, IX: SIX, S: SIX, SIX: SIX, U: SIX, X: X},
	U:    {None: U, IS: U, IX: X, S: U, SIX: SIX, U: U, X: X},
	X:    {None: X, IS: X, IX: X, S: X, SIX: X, U: X, X: X},
}

// Covers reports whether holding mode m satisfies a request for mode want
// (i.e. supremum(m, want) == m).
func (m Mode) Covers(want Mode) bool { return supremum[m][want] == m }

// Space partitions lock names so different object kinds never collide.
type Space uint8

// Lock name spaces.
const (
	SpaceTable Space = iota + 1
	SpaceRecord
	SpaceKeyValue
)

// Name is a lock name. A and B carry the object identity; their meaning
// depends on the space.
type Name struct {
	Space Space
	A, B  uint64
}

// TableName returns the lock name for a whole table.
func TableName(t types.TableID) Name {
	return Name{Space: SpaceTable, A: uint64(t)}
}

// RecordName returns the lock name for a record. With data-only locking
// (§6.2) the lock on an index key is the same as the lock on the record the
// key was derived from, so key locks also use RecordName.
func RecordName(r types.RID) Name {
	return Name{
		Space: SpaceRecord,
		A:     uint64(r.PageID.File)<<32 | uint64(r.PageID.Page),
		B:     uint64(r.Slot),
	}
}

// KeyValueName returns the lock name for a unique-index key value (hash),
// used by unique-violation checking when data-only locking is not in effect.
func KeyValueName(idx types.IndexID, keyHash uint64) Name {
	return Name{Space: SpaceKeyValue, A: uint64(idx), B: keyHash}
}

// Errors returned by lock requests.
var (
	// ErrDeadlock aborts the requester chosen as the deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrWouldBlock is returned by conditional requests that cannot be
	// granted immediately.
	ErrWouldBlock = errors.New("lock: conditional request would block")
)

// holder records one transaction's granted mode on a lock.
type holder struct {
	txn   types.TxnID
	mode  Mode
	count int // re-acquisitions in the same (or covered) mode
}

// waiter is one queued request.
type waiter struct {
	txn     types.TxnID
	mode    Mode // requested mode (for conversion: the target mode)
	convert bool // conversion of an existing hold
	granted bool
	dead    bool // chosen as deadlock victim
	ch      chan struct{}
}

// lockHead is the state of one lock name.
type lockHead struct {
	holders map[types.TxnID]*holder
	queue   []*waiter
}

// Stats counts lock manager activity for the experiment harness.
type Stats struct {
	Requests    uint64 // lock calls (excluding re-grants of covered modes)
	Grants      uint64
	Waits       uint64 // requests that blocked
	Conditional uint64 // conditional requests denied
	Deadlocks   uint64
}

// Metrics holds the manager's registry handles; the zero value disables
// export (nil handles are no-ops).
type Metrics struct {
	Requests  *metrics.Counter
	Waits     *metrics.Counter
	Deadlocks *metrics.Counter
	// WaitNs observes how long blocked requests waited, in nanoseconds
	// (granted or victimized alike — the time was spent either way).
	WaitNs *metrics.Histogram
	// StripeWaits[i] counts requests that blocked on stripe i (contention
	// observability: a skewed distribution marks a hot stripe).
	StripeWaits []*metrics.Counter
}

// MetricsFrom resolves the manager's standard instrument names on r,
// including per-stripe wait counters for stripes stripes.
func MetricsFrom(r *metrics.Registry, stripes int) Metrics {
	m := Metrics{
		Requests:  r.Counter("lock.requests"),
		Waits:     r.Counter("lock.waits"),
		Deadlocks: r.Counter("lock.deadlocks"),
		WaitNs:    r.Histogram("lock.wait_ns", metrics.ExpBounds(1<<12, 20)), // 4µs .. ~2s
	}
	for i := 0; i < stripes; i++ {
		m.StripeWaits = append(m.StripeWaits, r.Counter(fmt.Sprintf("lock.stripe_waits.%d", i)))
	}
	return m
}

// stripe is one independently-latched slice of the bucket map.
type stripe struct {
	mu    sync.Mutex
	locks map[Name]*lockHead
	// waitsFor[t] is the set of transactions t currently waits behind. A
	// transaction waits on at most one name at a time, so its edges live in
	// exactly the stripe of that name; the deadlock detector unions the
	// per-stripe maps under the full stripe lock set.
	waitsFor map[types.TxnID]map[types.TxnID]struct{}

	waits  atomic.Uint64
	mWaits *metrics.Counter
}

// Manager is the lock manager. Safe for concurrent use.
//
// Lock ordering: a stripe mutex may be taken before heldMu, never the other
// way around; multiple stripe mutexes are only ever acquired in ascending
// index order (deadlock detection, ReleaseAll).
type Manager struct {
	stripes []*stripe
	mask    uint64

	heldMu sync.Mutex
	held   map[types.TxnID]map[Name]struct{} // for ReleaseAll

	ctr struct {
		requests    atomic.Uint64
		grants      atomic.Uint64
		waits       atomic.Uint64
		conditional atomic.Uint64
		deadlocks   atomic.Uint64
	}
	met Metrics
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (m *Manager) SetMetrics(mt Metrics) {
	m.met = mt
	for i, s := range m.stripes {
		if i < len(mt.StripeWaits) {
			s.mWaits = mt.StripeWaits[i]
		}
	}
}

// DefaultStripes is the stripe count used when a caller passes 0: one per
// core up to 16.
func DefaultStripes() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewManager returns an empty lock manager with the default stripe count.
func NewManager() *Manager { return NewManagerStriped(0) }

// NewManagerStriped returns an empty lock manager with the given number of
// bucket-map stripes (rounded up to a power of two; 0 means DefaultStripes).
// The deterministic fault-injection sweep pins it to 1.
func NewManagerStriped(stripes int) *Manager {
	if stripes <= 0 {
		stripes = DefaultStripes()
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	m := &Manager{
		mask: uint64(n - 1),
		held: make(map[types.TxnID]map[Name]struct{}),
	}
	for i := 0; i < n; i++ {
		m.stripes = append(m.stripes, &stripe{
			locks:    make(map[Name]*lockHead),
			waitsFor: make(map[types.TxnID]map[types.TxnID]struct{}),
		})
	}
	return m
}

// Stripes returns the manager's stripe count.
func (m *Manager) Stripes() int { return len(m.stripes) }

// stripeFor hashes a lock name to its stripe (splitmix64 finalizer over the
// name words; fixed, so deterministic across runs).
func (m *Manager) stripeFor(name Name) *stripe {
	h := uint64(name.Space)*0x9e3779b97f4a7c15 ^ name.A ^ name.B*0xff51afd7ed558ccd
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return m.stripes[h&m.mask]
}

// Stats returns a snapshot of the activity counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Requests:    m.ctr.requests.Load(),
		Grants:      m.ctr.grants.Load(),
		Waits:       m.ctr.waits.Load(),
		Conditional: m.ctr.conditional.Load(),
		Deadlocks:   m.ctr.deadlocks.Load(),
	}
}

// StripeWaits returns the per-stripe blocked-request counters, index-aligned
// with the stripe layout.
func (m *Manager) StripeWaits() []uint64 {
	out := make([]uint64, len(m.stripes))
	for i, s := range m.stripes {
		out[i] = s.waits.Load()
	}
	return out
}

// Lock acquires name in the given mode for txn, blocking until granted. If
// the transaction already holds the lock in a covering mode the call returns
// immediately; if it holds a weaker mode the request is a conversion to the
// supremum. Returns ErrDeadlock if granting would complete a cycle and this
// requester is chosen as victim.
func (m *Manager) Lock(txn types.TxnID, name Name, mode Mode) error {
	return m.lock(txn, name, mode, false, false)
}

// LockConditional is Lock but never blocks: if the request cannot be granted
// immediately it returns ErrWouldBlock and leaves no trace.
func (m *Manager) LockConditional(txn types.TxnID, name Name, mode Mode) error {
	return m.lock(txn, name, mode, true, false)
}

// LockInstant acquires the lock and releases it immediately ("instant
// duration"): the caller learns that the lock *was grantable* — e.g. that no
// uncommitted deleter holds the key — without retaining it.
func (m *Manager) LockInstant(txn types.TxnID, name Name, mode Mode) error {
	return m.lock(txn, name, mode, false, true)
}

// LockConditionalInstant combines both: the GC of pseudo-deleted keys uses
// it per §2.2.4 ("request a conditional instant share lock").
func (m *Manager) LockConditionalInstant(txn types.TxnID, name Name, mode Mode) error {
	return m.lock(txn, name, mode, true, true)
}

func (m *Manager) lock(txn types.TxnID, name Name, mode Mode, conditional, instant bool) error {
	s := m.stripeFor(name)
	s.mu.Lock()
	m.ctr.requests.Add(1)
	m.met.Requests.Inc()

	lh := s.locks[name]
	if lh == nil {
		lh = &lockHead{holders: make(map[types.TxnID]*holder)}
		s.locks[name] = lh
	}

	h := lh.holders[txn]
	target := mode
	convert := false
	if h != nil {
		if h.mode.Covers(mode) {
			h.count++
			m.ctr.grants.Add(1)
			s.mu.Unlock()
			if instant {
				m.Unlock(txn, name)
			}
			return nil
		}
		target = supremum[h.mode][mode]
		convert = true
	}

	grantable := m.grantableLocked(lh, txn, target, convert)
	if grantable && (!convert && len(lh.queue) == 0 || convert) {
		// Conversions jump the queue (standard behaviour: the holder already
		// owns the lock and making it wait behind new requesters risks
		// avoidable deadlocks); fresh requests must respect FIFO fairness.
		m.grantLocked(lh, txn, name, target, convert)
		s.mu.Unlock()
		if instant {
			m.Unlock(txn, name)
		}
		return nil
	}

	if conditional {
		m.ctr.conditional.Add(1)
		s.mu.Unlock()
		return ErrWouldBlock
	}

	// Enqueue and wait.
	w := &waiter{txn: txn, mode: target, convert: convert, ch: make(chan struct{})}
	if convert {
		// Conversions wait at the front, after other pending conversions.
		i := 0
		for i < len(lh.queue) && lh.queue[i].convert {
			i++
		}
		lh.queue = append(lh.queue, nil)
		copy(lh.queue[i+1:], lh.queue[i:])
		lh.queue[i] = w
	} else {
		lh.queue = append(lh.queue, w)
	}
	m.ctr.waits.Add(1)
	m.met.Waits.Inc()
	s.waits.Add(1)
	s.mWaits.Inc()
	m.updateWaitEdgesLocked(s, lh)

	// Deadlock detection. The single-stripe manager checks inline; with
	// multiple stripes the waits-for graph spans them, so the stripe mutex
	// is dropped and the full set re-acquired in index order for a
	// consistent snapshot. The edges above are already installed, so if this
	// request closed a cycle some detector holding the full lock set — this
	// one, unless a concurrent one beat it to a different victim — sees it.
	if len(m.stripes) == 1 {
		if m.deadlockLocked(txn) {
			m.ctr.deadlocks.Add(1)
			m.met.Deadlocks.Inc()
			m.removeWaiterLocked(s, lh, name, w)
			s.mu.Unlock()
			return ErrDeadlock
		}
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
		m.lockAllStripes()
		// The request may have been granted while no lock was held; a
		// granted waiter is off the queue and contributes no edges, so skip
		// detection and fall through to the (already-closed) channel.
		if !w.granted && !w.dead && m.deadlockLocked(txn) {
			m.ctr.deadlocks.Add(1)
			m.met.Deadlocks.Inc()
			m.removeWaiterLocked(s, lh, name, w)
			m.unlockAllStripes()
			return ErrDeadlock
		}
		m.unlockAllStripes()
	}

	waitHist := m.met.WaitNs
	var waitStart time.Time
	if waitHist != nil {
		waitStart = time.Now()
	}
	<-w.ch
	if waitHist != nil {
		waitHist.Observe(uint64(time.Since(waitStart).Nanoseconds()))
	}

	s.mu.Lock()
	dead := w.dead
	s.mu.Unlock()
	if dead {
		return ErrDeadlock
	}
	if instant {
		m.Unlock(txn, name)
	}
	return nil
}

// lockAllStripes acquires every stripe mutex in ascending index order — the
// fixed order makes concurrent full-graph acquirers deadlock-free.
func (m *Manager) lockAllStripes() {
	for _, s := range m.stripes {
		s.mu.Lock()
	}
}

func (m *Manager) unlockAllStripes() {
	for i := len(m.stripes) - 1; i >= 0; i-- {
		m.stripes[i].mu.Unlock()
	}
}

// grantableLocked reports whether txn can hold `target` on lh given the
// other current holders. The caller holds lh's stripe mutex. For conversions
// the transaction's own hold is ignored.
func (m *Manager) grantableLocked(lh *lockHead, txn types.TxnID, target Mode, convert bool) bool {
	for t, h := range lh.holders {
		if t == txn {
			continue
		}
		if !compat[h.mode][target] {
			return false
		}
	}
	_ = convert
	return true
}

func (m *Manager) grantLocked(lh *lockHead, txn types.TxnID, name Name, target Mode, convert bool) {
	h := lh.holders[txn]
	if h == nil {
		h = &holder{txn: txn}
		lh.holders[txn] = h
	}
	h.mode = target
	h.count++
	m.ctr.grants.Add(1)
	m.heldMu.Lock()
	hs := m.held[txn]
	if hs == nil {
		hs = make(map[Name]struct{})
		m.held[txn] = hs
	}
	hs[name] = struct{}{}
	m.heldMu.Unlock()
	_ = convert
}

// Unlock releases one acquisition of name by txn. The lock is fully released
// when its acquisition count reaches zero, at which point waiters are
// re-examined.
func (m *Manager) Unlock(txn types.TxnID, name Name) {
	s := m.stripeFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	lh := s.locks[name]
	if lh == nil {
		return
	}
	h := lh.holders[txn]
	if h == nil {
		return
	}
	h.count--
	if h.count > 0 {
		return
	}
	delete(lh.holders, txn)
	m.heldMu.Lock()
	if hs := m.held[txn]; hs != nil {
		delete(hs, name)
	}
	m.heldMu.Unlock()
	m.wakeLocked(s, lh, name)
}

// ReleaseAll releases every lock txn holds (commit/rollback time).
func (m *Manager) ReleaseAll(txn types.TxnID) {
	// Snapshot the held set first: the lock order is stripe before heldMu,
	// so the names must be in hand before any stripe mutex is taken. The
	// owning transaction is the only caller and is not concurrently
	// acquiring, so the snapshot is exact.
	m.heldMu.Lock()
	names := make([]Name, 0, len(m.held[txn]))
	for name := range m.held[txn] {
		names = append(names, name)
	}
	delete(m.held, txn)
	m.heldMu.Unlock()

	byStripe := make(map[*stripe][]Name)
	for _, name := range names {
		s := m.stripeFor(name)
		byStripe[s] = append(byStripe[s], name)
	}
	for _, s := range m.stripes {
		ns, ok := byStripe[s]
		if !ok {
			continue
		}
		s.mu.Lock()
		for _, name := range ns {
			lh := s.locks[name]
			if lh == nil {
				continue
			}
			delete(lh.holders, txn)
			m.wakeLocked(s, lh, name)
		}
		delete(s.waitsFor, txn)
		s.mu.Unlock()
	}
}

// wakeLocked grants queued requests that are now compatible, in FIFO order,
// stopping at the first ungrantable one (no barging past blocked waiters).
// The caller holds s.mu.
func (m *Manager) wakeLocked(s *stripe, lh *lockHead, name Name) {
	for len(lh.queue) > 0 {
		w := lh.queue[0]
		if !m.grantableLocked(lh, w.txn, w.mode, w.convert) {
			break
		}
		lh.queue = lh.queue[1:]
		m.grantLocked(lh, w.txn, name, w.mode, w.convert)
		w.granted = true
		delete(s.waitsFor, w.txn)
		close(w.ch)
	}
	m.updateWaitEdgesLocked(s, lh)
	if len(lh.holders) == 0 && len(lh.queue) == 0 {
		delete(s.locks, name)
	}
}

// updateWaitEdgesLocked recomputes the waits-for edges contributed by lh's
// queue: each waiter waits for all incompatible holders and all earlier
// incompatible waiters. The caller holds s.mu; all of lh's edges live in s.
func (m *Manager) updateWaitEdgesLocked(s *stripe, lh *lockHead) {
	for i, w := range lh.queue {
		edges := make(map[types.TxnID]struct{})
		for t, h := range lh.holders {
			if t != w.txn && !compat[h.mode][w.mode] {
				edges[t] = struct{}{}
			}
		}
		for j := 0; j < i; j++ {
			prev := lh.queue[j]
			if prev.txn != w.txn && !compat[prev.mode][w.mode] {
				edges[prev.txn] = struct{}{}
			}
		}
		s.waitsFor[w.txn] = edges
	}
}

// edgesLocked returns t's outgoing waits-for edges. A transaction waits on
// at most one name, so at most one stripe has an entry. The caller holds
// every stripe mutex (multi-stripe) or the single stripe mutex.
func (m *Manager) edgesLocked(t types.TxnID) map[types.TxnID]struct{} {
	for _, s := range m.stripes {
		if e, ok := s.waitsFor[t]; ok {
			return e
		}
	}
	return nil
}

// deadlockLocked reports whether start is part of a waits-for cycle. The
// caller holds the stripe mutexes covering the whole graph (all of them when
// striped).
func (m *Manager) deadlockLocked(start types.TxnID) bool {
	seen := make(map[types.TxnID]bool)
	var dfs func(t types.TxnID) bool
	dfs = func(t types.TxnID) bool {
		if t == start && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range m.edgesLocked(t) {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for next := range m.edgesLocked(start) {
		if next == start || dfs(next) {
			return true
		}
	}
	return false
}

// removeWaiterLocked unqueues a victimized waiter. The caller holds s.mu (at
// least; the multi-stripe detector holds all).
func (m *Manager) removeWaiterLocked(s *stripe, lh *lockHead, name Name, w *waiter) {
	for i, q := range lh.queue {
		if q == w {
			lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
			break
		}
	}
	w.dead = true
	delete(s.waitsFor, w.txn)
	// Removing a waiter can unblock those queued behind it.
	m.wakeLocked(s, lh, name)
}

// HoldsAtLeast reports whether txn currently holds name in a mode covering
// `mode`. Used by assertions and by the unique-key commit check.
func (m *Manager) HoldsAtLeast(txn types.TxnID, name Name, mode Mode) bool {
	s := m.stripeFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	lh := s.locks[name]
	if lh == nil {
		return false
	}
	h := lh.holders[txn]
	return h != nil && h.mode.Covers(mode)
}

// HeldCount returns the number of distinct lock names txn holds.
func (m *Manager) HeldCount(txn types.TxnID) int {
	m.heldMu.Lock()
	defer m.heldMu.Unlock()
	return len(m.held[txn])
}
