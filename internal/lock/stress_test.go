package lock

import (
	"errors"
	"sync"
	"testing"

	"onlineindex/internal/types"
)

// TestConcurrentStripedLockStress hammers a striped manager with goroutines
// that deliberately deadlock: every worker X-locks two names from a shared
// pool in an order that conflicts with its neighbours', so wait-for cycles
// keep forming across stripe boundaries. The cross-stripe detector must
// victimize someone every time (no iteration may hang), victims must be able
// to retry after ReleaseAll, and the table must drain completely at the end.
func TestConcurrentStripedLockStress(t *testing.T) {
	m := NewManagerStriped(4)
	if got := m.Stripes(); got != 4 {
		t.Fatalf("Stripes() = %d, want 4", got)
	}
	const (
		workers = 8
		iters   = 300
		names   = 16
	)
	var wg sync.WaitGroup
	var deadlocks, granted sync.Map
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := types.TxnID(w + 1)
			nDead, nGrant := 0, 0
			for i := 0; i < iters; i++ {
				a := name(uint64((i*7 + w) % names))
				b := name(uint64((i*13 + w*5) % names))
				// Odd workers lock in reverse order: classic AB/BA cycles.
				if w%2 == 1 {
					a, b = b, a
				}
				err := m.Lock(txn, a, X)
				if err == nil {
					err = m.Lock(txn, b, X)
				}
				switch {
				case err == nil:
					nGrant++
				case errors.Is(err, ErrDeadlock):
					nDead++
				default:
					t.Errorf("worker %d: %v", w, err)
					m.ReleaseAll(txn)
					return
				}
				m.ReleaseAll(txn)
			}
			deadlocks.Store(w, nDead)
			granted.Store(w, nGrant)
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 200; i++ {
		m.Stats()       // concurrent cross-stripe aggregation
		m.StripeWaits() // concurrent per-stripe counter reads
	}
	<-done

	var totalGrant int
	granted.Range(func(_, v any) bool { totalGrant += v.(int); return true })
	if totalGrant == 0 {
		t.Fatal("no worker ever got both locks")
	}
	// Drained: a fresh transaction must win every name without waiting.
	probe := types.TxnID(1000)
	for i := 0; i < names; i++ {
		if err := m.LockConditional(probe, name(uint64(i)), X); err != nil {
			t.Fatalf("name %d still held after all workers released: %v", i, err)
		}
	}
	m.ReleaseAll(probe)
}
