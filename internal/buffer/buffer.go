// Package buffer implements the buffer pool: the volatile cache of page
// structs between the resource managers and the VFS.
//
// The pool enforces the two WAL invariants the paper's recovery story rests
// on: (1) before a dirty page is written to stable storage, the log is
// forced up to the page's PageLSN (write-ahead), and (2) each dirty page
// remembers its RecLSN — the LSN of the first record that dirtied it since
// it was last clean — so fuzzy checkpoints can bound where redo must start.
//
// The page table is split into N power-of-two shards keyed by a page-ID
// hash; each shard has its own mutex, frame map, and clock-eviction ring, so
// concurrent fetches on different shards never serialize. Eviction is
// per-shard with a work-stealing fallback: a shard whose frames are all
// pinned evicts from a sibling (TryLock only, so two shards stealing from
// each other can never deadlock) and temporarily overflows its own nominal
// share — the global frame count stays bounded because every overflow insert
// pairs with a sibling eviction. At one shard the pool behaves exactly like
// the historical single-mutex pool, which is what the deterministic
// fault-injection sweep runs.
//
// A simulated system failure (DB.Crash) simply discards the pool; only page
// images that were flushed (and synced) survive, which is exactly the state
// restart recovery must repair.
package buffer

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"onlineindex/internal/latch"
	"onlineindex/internal/metrics"
	"onlineindex/internal/page"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// Frame is a buffer-pool slot holding one page. The frame's latch is the
// page latch of the paper's execution model: the index builder S-latches
// data pages while extracting keys; transactions X-latch pages they modify.
type Frame struct {
	ID    types.PageID
	Latch latch.Latch

	mu     sync.Mutex // guards the fields below
	pg     page.Page
	dirty  bool
	recLSN types.LSN
	pins   int
	refbit bool // clock eviction reference bit
}

// Page returns the page held by the frame. The caller must hold the frame's
// latch (S for reading, X for modification).
func (f *Frame) Page() page.Page {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pg
}

// MarkDirty records that the caller modified the page under an X latch while
// applying the log record at lsn. It updates the page's PageLSN and, if the
// page was clean, sets RecLSN = lsn.
func (f *Frame) MarkDirty(lsn types.LSN) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pg.SetPageLSN(lsn)
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
}

// MarkDirtyUnlogged records a page modification that wrote no log record:
// the SF bottom-up index build mutates index pages without logging ("IB does
// not write log records for the inserts of keys that it extracts", §3.1).
// The page's PageLSN is left alone; the RecLSN is set to the current end of
// the log, which keeps the dirty page table conservative without dragging
// redo back to LSN zero. Durability of such pages is the index builder's
// own responsibility (its checkpoints flush the index file).
func (p *Pool) MarkDirtyUnlogged(f *Frame) {
	f.mu.Lock()
	if f.dirty {
		f.mu.Unlock()
		return // hot path: the loader touches the same page repeatedly
	}
	f.mu.Unlock()
	rec := types.LSN(1)
	if p.log != nil {
		rec = p.log.NextLSN()
	}
	f.mu.Lock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = rec
	}
	f.mu.Unlock()
}

// DirtyPage is one entry of the dirty page table, captured by checkpoints.
type DirtyPage struct {
	ID     types.PageID
	RecLSN types.LSN
}

// Stats counts buffer pool activity.
type Stats struct {
	Fetches   uint64
	Hits      uint64
	Misses    uint64
	Flushes   uint64
	Evictions uint64
}

// Metrics holds the pool's registry handles. The zero value (all-nil
// handles) disables export; every update is then a nil-check and nothing
// else (see internal/metrics).
type Metrics struct {
	Fetches   *metrics.Counter
	Hits      *metrics.Counter
	Misses    *metrics.Counter
	Flushes   *metrics.Counter
	Evictions *metrics.Counter
	// ShardLookups[i]/ShardEvictions[i] count per-shard page-table activity
	// (contention observability: a hot shard shows up as a skewed lookup
	// distribution). ShardImbalance exports max/mean shard occupancy x100 —
	// 100 means perfectly even, 200 means the fullest shard holds twice the
	// mean.
	ShardLookups   []*metrics.Counter
	ShardEvictions []*metrics.Counter
	ShardImbalance *metrics.Gauge
}

// MetricsFrom resolves the pool's standard instrument names on r (all nil
// when r is nil), including per-shard counters for shards shards.
func MetricsFrom(r *metrics.Registry, shards int) Metrics {
	m := Metrics{
		Fetches:        r.Counter("buffer.fetches"),
		Hits:           r.Counter("buffer.hits"),
		Misses:         r.Counter("buffer.misses"),
		Flushes:        r.Counter("buffer.flushes"),
		Evictions:      r.Counter("buffer.evictions"),
		ShardImbalance: r.Gauge("buffer.shard_imbalance"),
	}
	for i := 0; i < shards; i++ {
		m.ShardLookups = append(m.ShardLookups, r.Counter(fmt.Sprintf("buffer.shard_lookups.%d", i)))
		m.ShardEvictions = append(m.ShardEvictions, r.Counter(fmt.Sprintf("buffer.shard_evictions.%d", i)))
	}
	return m
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (p *Pool) SetMetrics(m Metrics) {
	p.met = m
	for i, s := range p.shards {
		if i < len(m.ShardLookups) {
			s.mLookups = m.ShardLookups[i]
		}
		if i < len(m.ShardEvictions) {
			s.mEvictions = m.ShardEvictions[i]
		}
	}
}

// ErrAllPinned is returned when the pool cannot evict any frame.
var ErrAllPinned = errors.New("buffer: all frames pinned")

// shard is one slice of the page table: a frame map plus its own clock ring,
// all guarded by the shard mutex.
type shard struct {
	mu     sync.Mutex
	frames map[types.PageID]*Frame
	clock  []types.PageID // eviction order ring
	hand   int
	cap    int // nominal frame share; overflows while stealing

	occupancy  atomic.Int64 // len(frames), readable without mu
	lookups    atomic.Uint64
	evictions  atomic.Uint64
	mLookups   *metrics.Counter
	mEvictions *metrics.Counter
}

// Pool is the buffer pool. Safe for concurrent use.
//
// Lock ordering: a shard mutex may be taken before the file-registry mutex
// (fmu), never the other way around; a second shard mutex is only ever
// TryLock'd (work-stealing) or taken in ascending index order with all
// shards held (truncate). Frame mutexes are leaves.
type Pool struct {
	fs       vfs.FS
	log      *wal.Log
	capacity int

	shards []*shard
	mask   uint64

	fmu    sync.Mutex // guards files and nPages
	files  map[types.FileID]vfs.File
	nPages map[types.FileID]types.PageNum // page count per file

	ctr struct {
		fetches   atomic.Uint64
		hits      atomic.Uint64
		misses    atomic.Uint64
		flushes   atomic.Uint64
		evictions atomic.Uint64
	}
	met Metrics
}

// DefaultShards is the shard count used when a caller passes 0: one shard
// per core up to 16, so the page table scales with the hardware without
// fragmenting small pools.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

// New creates a single-shard pool over fs with the given frame capacity —
// the deterministic configuration the fault-injection sweep replays. log may
// be nil only in unit tests that never flush dirty pages.
func New(fs vfs.FS, log *wal.Log, capacity int) *Pool {
	return NewSharded(fs, log, capacity, 1)
}

// NewSharded creates a pool whose page table is split across shards shards
// (rounded up to a power of two, clamped so every shard keeps a useful frame
// share; 0 means DefaultShards).
func NewSharded(fs vfs.FS, log *wal.Log, capacity, shards int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > 1 && capacity/n < 4 {
		n >>= 1
	}
	p := &Pool{
		fs:       fs,
		log:      log,
		capacity: capacity,
		mask:     uint64(n - 1),
		files:    make(map[types.FileID]vfs.File),
		nPages:   make(map[types.FileID]types.PageNum),
	}
	per := (capacity + n - 1) / n
	for i := 0; i < n; i++ {
		p.shards = append(p.shards, &shard{
			frames: make(map[types.PageID]*Frame),
			cap:    per,
		})
	}
	return p
}

// Shards returns the pool's shard count.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor hashes the page ID to its shard. The hash is a fixed splitmix64
// finalizer — deterministic across runs and processes, which the
// fault-injection sweep's replayability requires.
func (p *Pool) shardFor(pid types.PageID) *shard {
	h := uint64(pid.File)<<32 | uint64(pid.Page)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return p.shards[h&p.mask]
}

func fileName(id types.FileID) string { return fmt.Sprintf("f%06d.dat", id) }

// OpenFile opens (creating if needed) the storage file for a FileID and
// registers its current page count.
func (p *Pool) OpenFile(id types.FileID) error {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	return p.openFileLocked(id)
}

// openFileLocked requires p.fmu.
func (p *Pool) openFileLocked(id types.FileID) error {
	if _, ok := p.files[id]; ok {
		return nil
	}
	exists, err := p.fs.Exists(fileName(id))
	if err != nil {
		return err
	}
	var f vfs.File
	if exists {
		f, err = p.fs.Open(fileName(id))
	} else {
		f, err = p.fs.Create(fileName(id))
		if err == nil {
			err = f.Sync()
		}
	}
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		return err
	}
	p.files[id] = f
	p.nPages[id] = types.PageNum(size / page.Size)
	return nil
}

// PageCount returns the number of pages allocated in the file.
func (p *Pool) PageCount(id types.FileID) (types.PageNum, error) {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if err := p.openFileLocked(id); err != nil {
		return 0, err
	}
	return p.nPages[id], nil
}

// NewPage allocates the next page of the file, installs pg in a pinned
// frame, and returns the frame. The caller formats the page, logs the
// format record and calls MarkDirty before unpinning.
func (p *Pool) NewPage(id types.FileID, pg page.Page) (*Frame, error) {
	p.fmu.Lock()
	if err := p.openFileLocked(id); err != nil {
		p.fmu.Unlock()
		return nil, err
	}
	pid := types.PageID{File: id, Page: p.nPages[id]}
	p.nPages[id]++
	p.fmu.Unlock()

	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := p.makeRoomLocked(s); err != nil {
		return nil, err
	}
	f := &Frame{ID: pid, pg: pg, pins: 1, refbit: true}
	p.installLocked(s, f)
	return f, nil
}

// installLocked adds f to shard s (s.mu held) and refreshes the imbalance
// gauge.
func (p *Pool) installLocked(s *shard, f *Frame) {
	s.frames[f.ID] = f
	s.clock = append(s.clock, f.ID)
	s.occupancy.Store(int64(len(s.frames)))
	p.updateImbalance()
}

// updateImbalance recomputes the max/mean shard-occupancy ratio (x100).
// Reads only the per-shard occupancy atomics, so any thread may call it.
func (p *Pool) updateImbalance() {
	if p.met.ShardImbalance == nil || len(p.shards) < 2 {
		return
	}
	var total, max int64
	for _, s := range p.shards {
		o := s.occupancy.Load()
		total += o
		if o > max {
			max = o
		}
	}
	if total == 0 {
		p.met.ShardImbalance.Set(100)
		return
	}
	mean := float64(total) / float64(len(p.shards))
	p.met.ShardImbalance.Set(int64(float64(max) / mean * 100))
}

// Fetch pins the page and returns its frame, reading it from stable storage
// on a miss. The caller latches the frame as needed and must Unpin it.
func (p *Pool) Fetch(pid types.PageID) (*Frame, error) {
	s := p.shardFor(pid)
	s.mu.Lock()
	defer s.mu.Unlock()
	p.ctr.fetches.Add(1)
	p.met.Fetches.Inc()
	s.lookups.Add(1)
	s.mLookups.Inc()
	if f, ok := s.frames[pid]; ok {
		p.ctr.hits.Add(1)
		p.met.Hits.Inc()
		f.mu.Lock()
		f.pins++
		f.refbit = true
		f.mu.Unlock()
		return f, nil
	}
	p.ctr.misses.Add(1)
	p.met.Misses.Inc()
	p.fmu.Lock()
	if err := p.openFileLocked(pid.File); err != nil {
		p.fmu.Unlock()
		return nil, err
	}
	file, n := p.files[pid.File], p.nPages[pid.File]
	p.fmu.Unlock()
	if pid.Page >= n {
		return nil, fmt.Errorf("buffer: fetch %s beyond file end (%d pages)", pid, n)
	}
	img := make([]byte, page.Size)
	if _, err := file.ReadAt(img, int64(pid.Page)*page.Size); err != nil && err != io.EOF {
		return nil, fmt.Errorf("buffer: read %s: %w", pid, err)
	}
	pg, err := page.Unmarshal(img)
	if err != nil {
		return nil, fmt.Errorf("buffer: unmarshal %s: %w", pid, err)
	}
	if err := p.makeRoomLocked(s); err != nil {
		return nil, err
	}
	f := &Frame{ID: pid, pg: pg, pins: 1, refbit: true}
	p.installLocked(s, f)
	return f, nil
}

// FetchOrCreate returns the frame for pid like Fetch, but if pid lies at or
// beyond the current end of the file it extends the file with blank pages
// from the factory. Restart redo uses it to rematerialize pages that were
// allocated before a crash but never flushed: their format log records are
// replayed into the blank pages. Intermediate pages created by the extension
// are marked dirty with recLSN = lsn (a safe lower bound for the DPT).
func (p *Pool) FetchOrCreate(pid types.PageID, factory func() page.Page, lsn types.LSN) (*Frame, error) {
	if err := p.OpenFile(pid.File); err != nil {
		return nil, err
	}
	for {
		// Claim the next page number under fmu alone, then install the blank
		// frame under its shard mutex — taking a shard mutex while holding
		// fmu would invert the pool's lock order.
		p.fmu.Lock()
		if p.nPages[pid.File] > pid.Page {
			p.fmu.Unlock()
			break
		}
		n := p.nPages[pid.File]
		p.nPages[pid.File]++
		p.fmu.Unlock()
		blank := types.PageID{File: pid.File, Page: n}
		s := p.shardFor(blank)
		s.mu.Lock()
		if _, ok := s.frames[blank]; ok {
			s.mu.Unlock()
			continue
		}
		if err := p.makeRoomLocked(s); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		f := &Frame{ID: blank, pg: factory(), dirty: true, recLSN: lsn, refbit: true}
		p.installLocked(s, f)
		s.mu.Unlock()
	}
	fr, err := p.Fetch(pid)
	if errors.Is(err, page.ErrBlank) {
		// The page lies inside the file's durable extent but was never
		// itself written (a later page's flush extended the file with
		// zeros). It is logically a fresh page: install the factory image
		// and let redo replay its history.
		s := p.shardFor(pid)
		s.mu.Lock()
		defer s.mu.Unlock()
		if f, ok := s.frames[pid]; ok { // lost a race with another creator
			f.mu.Lock()
			f.pins++
			f.mu.Unlock()
			return f, nil
		}
		if err := p.makeRoomLocked(s); err != nil {
			return nil, err
		}
		f := &Frame{ID: pid, pg: factory(), dirty: true, recLSN: lsn, pins: 1, refbit: true}
		p.installLocked(s, f)
		return f, nil
	}
	return fr, err
}

// Unpin releases one pin on the frame.
func (p *Pool) Unpin(f *Frame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pins <= 0 {
		panic("buffer: unpin of unpinned frame")
	}
	f.pins--
}

// makeRoomLocked evicts clock-chosen unpinned frames from s until it is
// under its share. Dirty victims are flushed (with the WAL protocol) first.
// A victim whose latch is held is skipped rather than waited for: the holder
// may be blocked on the shard mutex we hold, so waiting could deadlock. When
// s has nothing evictable, one frame is stolen (evicted) from a sibling
// shard instead and s is allowed to overflow by this insert — the global
// frame count still steps down by one.
func (p *Pool) makeRoomLocked(s *shard) error {
	busy := 0
	for len(s.frames) >= s.cap {
		victim := s.pickVictimLocked()
		if victim == nil {
			return p.stealLocked(s)
		}
		if !victim.Latch.TryAcquire(latch.S) {
			// Busy: put it back in the ring and try another. If everything
			// is latched, fall back to stealing rather than spin under the
			// shard mutex.
			s.clock = append(s.clock, victim.ID)
			busy++
			if busy > 2*len(s.frames) {
				return p.stealLocked(s)
			}
			continue
		}
		err := p.flushFrame(victim)
		victim.Latch.Release(latch.S)
		if err != nil {
			return err
		}
		p.evictLocked(s, victim)
	}
	return nil
}

// evictLocked removes a flushed victim from s (s.mu held).
func (p *Pool) evictLocked(s *shard, victim *Frame) {
	delete(s.frames, victim.ID)
	s.occupancy.Store(int64(len(s.frames)))
	s.evictions.Add(1)
	s.mEvictions.Inc()
	p.ctr.evictions.Add(1)
	p.met.Evictions.Inc()
	p.updateImbalance()
}

// stealLocked evicts one frame from some sibling of s, letting s overflow
// its nominal share by the caller's pending insert. Called with s.mu held;
// sibling mutexes are only TryLock'd, so shards stealing from each other
// cannot deadlock. Returns ErrAllPinned when no shard has an evictable
// frame.
func (p *Pool) stealLocked(s *shard) error {
	for _, t := range p.shards {
		if t == s || !t.mu.TryLock() {
			continue
		}
		ok, err := p.stealFromLocked(t)
		t.mu.Unlock()
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
	}
	return ErrAllPinned
}

// stealFromLocked evicts one frame from t (t.mu held). Returns false when t
// has no evictable frame.
func (p *Pool) stealFromLocked(t *shard) (bool, error) {
	busy := 0
	for {
		victim := t.pickVictimLocked()
		if victim == nil {
			return false, nil
		}
		if !victim.Latch.TryAcquire(latch.S) {
			t.clock = append(t.clock, victim.ID)
			busy++
			if busy > 2*len(t.frames) {
				return false, nil
			}
			continue
		}
		err := p.flushFrame(victim)
		victim.Latch.Release(latch.S)
		if err != nil {
			return false, err
		}
		p.evictLocked(t, victim)
		return true, nil
	}
}

// pickVictimLocked runs the clock hand over s's ring (s.mu held).
func (s *shard) pickVictimLocked() *Frame {
	for sweep := 0; sweep < 2*len(s.clock)+1; sweep++ {
		if len(s.clock) == 0 {
			return nil
		}
		s.hand %= len(s.clock)
		pid := s.clock[s.hand]
		f, ok := s.frames[pid]
		if !ok {
			// stale ring entry: compact
			s.clock = append(s.clock[:s.hand], s.clock[s.hand+1:]...)
			continue
		}
		f.mu.Lock()
		pinned := f.pins > 0
		ref := f.refbit
		f.refbit = false
		f.mu.Unlock()
		if !pinned && !ref {
			s.clock = append(s.clock[:s.hand], s.clock[s.hand+1:]...)
			return f
		}
		s.hand++
	}
	return nil
}

// flushFrame writes the frame's page image to stable storage if dirty,
// enforcing the WAL protocol: the log is forced up to the PageLSN first.
// The caller must hold the frame's latch in at least S mode (so no writer is
// mutating the page mid-marshal); concurrent flushes of the same frame
// serialize on the frame mutex, the loser seeing a clean page.
//
// The Force may ride a group-commit epoch: if a WAL flush covering PageLSN
// is already in flight this call parks until that epoch's leader syncs,
// possibly holding a shard mutex the whole time. That is deadlock-free — the
// leader needs only the WAL's own mutex and the log file, never the pool —
// and correct: Force returns only once PageLSN is durable (a failed epoch
// returns the leader's error, and the page write below is skipped).
func (p *Pool) flushFrame(f *Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dirty {
		return nil
	}
	lsn := f.pg.PageLSN()
	if p.log != nil {
		if err := p.log.Force(lsn); err != nil {
			return err
		}
	} else if lsn != types.NilLSN {
		return errors.New("buffer: dirty page with PageLSN but no log attached")
	}
	img, err := f.pg.MarshalPage()
	if err != nil {
		return fmt.Errorf("buffer: marshal %s: %w", f.ID, err)
	}
	if len(img) != page.Size {
		return fmt.Errorf("buffer: page %s image is %d bytes, want %d", f.ID, len(img), page.Size)
	}
	p.fmu.Lock()
	file := p.files[f.ID.File]
	p.fmu.Unlock()
	if file == nil {
		return fmt.Errorf("buffer: flush %s: file not open", f.ID)
	}
	if _, err := file.WriteAt(img, int64(f.ID.Page)*page.Size); err != nil {
		return err
	}
	if err := file.Sync(); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = types.NilLSN
	p.ctr.flushes.Add(1)
	p.met.Flushes.Inc()
	return nil
}

// FlushAll flushes every dirty page (used at clean shutdown and by SF's
// index checkpointing, which requires "all the dirty pages of the index
// [to] have been written to disk" before recording the checkpoint).
func (p *Pool) FlushAll() error { return p.flushMatching(func(types.PageID) bool { return true }) }

// FlushFile flushes the dirty pages of one file.
func (p *Pool) FlushFile(id types.FileID) error {
	return p.flushMatching(func(pid types.PageID) bool { return pid.File == id })
}

// flushMatching flushes all frames whose page ID matches. Frames are
// snapshotted first and latched one at a time with no shard mutex held, so a
// flush never deadlocks against an operation that holds a page latch while
// fetching another page.
func (p *Pool) flushMatching(match func(types.PageID) bool) error {
	var frames []*Frame
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			if match(f.ID) {
				frames = append(frames, f)
			}
		}
		s.mu.Unlock()
	}
	// Flush in page-ID order, not map/shard order: the fault-injection
	// harness numbers I/O operations and needs identical runs to issue them
	// in an identical sequence.
	sort.Slice(frames, func(i, j int) bool {
		a, b := frames[i].ID, frames[j].ID
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Page < b.Page
	})
	for _, f := range frames {
		f.Latch.Acquire(latch.S)
		err := p.flushFrame(f)
		f.Latch.Release(latch.S)
		if err != nil {
			return err
		}
	}
	return nil
}

// DirtyPages returns the dirty page table (sorted by page ID) for fuzzy
// checkpoints: each dirty page with the RecLSN from which redo must consider
// it.
func (p *Pool) DirtyPages() []DirtyPage {
	var dpt []DirtyPage
	for _, s := range p.shards {
		s.mu.Lock()
		for _, f := range s.frames {
			f.mu.Lock()
			if f.dirty {
				dpt = append(dpt, DirtyPage{ID: f.ID, RecLSN: f.recLSN})
			}
			f.mu.Unlock()
		}
		s.mu.Unlock()
	}
	sort.Slice(dpt, func(i, j int) bool { return dpt[i].ID.Less(dpt[j].ID) })
	return dpt
}

// TruncateFile shrinks a file to n pages, discarding cached frames above the
// cut. SF restart uses it to make "the keys higher than the checkpointed key
// disappear from the index" by deallocating pages added after the last index
// checkpoint (§3.2.4). All shard mutexes are held (acquired in index order)
// so no fetch can re-cache a discarded page mid-truncate.
func (p *Pool) TruncateFile(id types.FileID, n types.PageNum) error {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	defer func() {
		for i := len(p.shards) - 1; i >= 0; i-- {
			p.shards[i].mu.Unlock()
		}
	}()
	for _, s := range p.shards {
		for pid, f := range s.frames {
			if pid.File == id && pid.Page >= n {
				f.mu.Lock()
				pinned := f.pins > 0
				f.mu.Unlock()
				if pinned {
					return fmt.Errorf("buffer: truncate %d: page %s still pinned", id, pid)
				}
				delete(s.frames, pid)
				s.occupancy.Store(int64(len(s.frames)))
			}
		}
	}
	p.fmu.Lock()
	defer p.fmu.Unlock()
	if err := p.openFileLocked(id); err != nil {
		return err
	}
	if err := p.files[id].Truncate(int64(n) * page.Size); err != nil {
		return err
	}
	if err := p.files[id].Sync(); err != nil {
		return err
	}
	p.nPages[id] = n
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Fetches:   p.ctr.fetches.Load(),
		Hits:      p.ctr.hits.Load(),
		Misses:    p.ctr.misses.Load(),
		Flushes:   p.ctr.flushes.Load(),
		Evictions: p.ctr.evictions.Load(),
	}
}

// ShardStats returns the per-shard (lookups, evictions) counters, index-
// aligned with the shard layout. Used by tests and the contention benchmark.
func (p *Pool) ShardStats() (lookups, evictions []uint64) {
	for _, s := range p.shards {
		lookups = append(lookups, s.lookups.Load())
		evictions = append(evictions, s.evictions.Load())
	}
	return lookups, evictions
}

// Close closes the underlying files without flushing (a crash path closes
// nothing at all; a clean shutdown calls FlushAll first).
func (p *Pool) Close() error {
	p.fmu.Lock()
	defer p.fmu.Unlock()
	for _, f := range p.files {
		f.Close()
	}
	return nil
}
