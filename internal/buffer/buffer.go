// Package buffer implements the buffer pool: the volatile cache of page
// structs between the resource managers and the VFS.
//
// The pool enforces the two WAL invariants the paper's recovery story rests
// on: (1) before a dirty page is written to stable storage, the log is
// forced up to the page's PageLSN (write-ahead), and (2) each dirty page
// remembers its RecLSN — the LSN of the first record that dirtied it since
// it was last clean — so fuzzy checkpoints can bound where redo must start.
//
// A simulated system failure (DB.Crash) simply discards the pool; only page
// images that were flushed (and synced) survive, which is exactly the state
// restart recovery must repair.
package buffer

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"onlineindex/internal/latch"
	"onlineindex/internal/metrics"
	"onlineindex/internal/page"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// Frame is a buffer-pool slot holding one page. The frame's latch is the
// page latch of the paper's execution model: the index builder S-latches
// data pages while extracting keys; transactions X-latch pages they modify.
type Frame struct {
	ID    types.PageID
	Latch latch.Latch

	mu     sync.Mutex // guards the fields below
	pg     page.Page
	dirty  bool
	recLSN types.LSN
	pins   int
	refbit bool // clock eviction reference bit
}

// Page returns the page held by the frame. The caller must hold the frame's
// latch (S for reading, X for modification).
func (f *Frame) Page() page.Page {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pg
}

// MarkDirty records that the caller modified the page under an X latch while
// applying the log record at lsn. It updates the page's PageLSN and, if the
// page was clean, sets RecLSN = lsn.
func (f *Frame) MarkDirty(lsn types.LSN) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pg.SetPageLSN(lsn)
	if !f.dirty {
		f.dirty = true
		f.recLSN = lsn
	}
}

// MarkDirtyUnlogged records a page modification that wrote no log record:
// the SF bottom-up index build mutates index pages without logging ("IB does
// not write log records for the inserts of keys that it extracts", §3.1).
// The page's PageLSN is left alone; the RecLSN is set to the current end of
// the log, which keeps the dirty page table conservative without dragging
// redo back to LSN zero. Durability of such pages is the index builder's
// own responsibility (its checkpoints flush the index file).
func (p *Pool) MarkDirtyUnlogged(f *Frame) {
	f.mu.Lock()
	if f.dirty {
		f.mu.Unlock()
		return // hot path: the loader touches the same page repeatedly
	}
	f.mu.Unlock()
	rec := types.LSN(1)
	if p.log != nil {
		rec = p.log.NextLSN()
	}
	f.mu.Lock()
	if !f.dirty {
		f.dirty = true
		f.recLSN = rec
	}
	f.mu.Unlock()
}

// DirtyPage is one entry of the dirty page table, captured by checkpoints.
type DirtyPage struct {
	ID     types.PageID
	RecLSN types.LSN
}

// Stats counts buffer pool activity.
type Stats struct {
	Fetches   uint64
	Hits      uint64
	Misses    uint64
	Flushes   uint64
	Evictions uint64
}

// Metrics holds the pool's registry handles. The zero value (all-nil
// handles) disables export; every update is then a nil-check and nothing
// else (see internal/metrics).
type Metrics struct {
	Fetches   *metrics.Counter
	Hits      *metrics.Counter
	Misses    *metrics.Counter
	Flushes   *metrics.Counter
	Evictions *metrics.Counter
}

// MetricsFrom resolves the pool's standard instrument names on r (all nil
// when r is nil).
func MetricsFrom(r *metrics.Registry) Metrics {
	return Metrics{
		Fetches:   r.Counter("buffer.fetches"),
		Hits:      r.Counter("buffer.hits"),
		Misses:    r.Counter("buffer.misses"),
		Flushes:   r.Counter("buffer.flushes"),
		Evictions: r.Counter("buffer.evictions"),
	}
}

// SetMetrics attaches registry handles. Call before concurrent use.
func (p *Pool) SetMetrics(m Metrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.met = m
}

// ErrAllPinned is returned when the pool cannot evict any frame.
var ErrAllPinned = errors.New("buffer: all frames pinned")

// Pool is the buffer pool. Safe for concurrent use.
type Pool struct {
	fs       vfs.FS
	log      *wal.Log
	capacity int

	mu     sync.Mutex
	frames map[types.PageID]*Frame
	clock  []types.PageID // eviction order ring
	hand   int
	files  map[types.FileID]vfs.File
	nPages map[types.FileID]types.PageNum // page count per file
	stats  Stats
	met    Metrics
}

// New creates a pool over fs with the given frame capacity. log may be nil
// only in unit tests that never flush dirty pages.
func New(fs vfs.FS, log *wal.Log, capacity int) *Pool {
	if capacity < 8 {
		capacity = 8
	}
	return &Pool{
		fs:       fs,
		log:      log,
		capacity: capacity,
		frames:   make(map[types.PageID]*Frame),
		files:    make(map[types.FileID]vfs.File),
		nPages:   make(map[types.FileID]types.PageNum),
	}
}

func fileName(id types.FileID) string { return fmt.Sprintf("f%06d.dat", id) }

// OpenFile opens (creating if needed) the storage file for a FileID and
// registers its current page count.
func (p *Pool) OpenFile(id types.FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.openFileLocked(id)
}

func (p *Pool) openFileLocked(id types.FileID) error {
	if _, ok := p.files[id]; ok {
		return nil
	}
	exists, err := p.fs.Exists(fileName(id))
	if err != nil {
		return err
	}
	var f vfs.File
	if exists {
		f, err = p.fs.Open(fileName(id))
	} else {
		f, err = p.fs.Create(fileName(id))
		if err == nil {
			err = f.Sync()
		}
	}
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		return err
	}
	p.files[id] = f
	p.nPages[id] = types.PageNum(size / page.Size)
	return nil
}

// PageCount returns the number of pages allocated in the file.
func (p *Pool) PageCount(id types.FileID) (types.PageNum, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.openFileLocked(id); err != nil {
		return 0, err
	}
	return p.nPages[id], nil
}

// NewPage allocates the next page of the file, installs pg in a pinned
// frame, and returns the frame. The caller formats the page, logs the
// format record and calls MarkDirty before unpinning.
func (p *Pool) NewPage(id types.FileID, pg page.Page) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.openFileLocked(id); err != nil {
		return nil, err
	}
	pid := types.PageID{File: id, Page: p.nPages[id]}
	p.nPages[id]++
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	f := &Frame{ID: pid, pg: pg, pins: 1, refbit: true}
	p.frames[pid] = f
	p.clock = append(p.clock, pid)
	return f, nil
}

// Fetch pins the page and returns its frame, reading it from stable storage
// on a miss. The caller latches the frame as needed and must Unpin it.
func (p *Pool) Fetch(pid types.PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Fetches++
	p.met.Fetches.Inc()
	if f, ok := p.frames[pid]; ok {
		p.stats.Hits++
		p.met.Hits.Inc()
		f.mu.Lock()
		f.pins++
		f.refbit = true
		f.mu.Unlock()
		return f, nil
	}
	p.stats.Misses++
	p.met.Misses.Inc()
	if err := p.openFileLocked(pid.File); err != nil {
		return nil, err
	}
	if pid.Page >= p.nPages[pid.File] {
		return nil, fmt.Errorf("buffer: fetch %s beyond file end (%d pages)", pid, p.nPages[pid.File])
	}
	img := make([]byte, page.Size)
	if _, err := p.files[pid.File].ReadAt(img, int64(pid.Page)*page.Size); err != nil && err != io.EOF {
		return nil, fmt.Errorf("buffer: read %s: %w", pid, err)
	}
	pg, err := page.Unmarshal(img)
	if err != nil {
		return nil, fmt.Errorf("buffer: unmarshal %s: %w", pid, err)
	}
	if err := p.makeRoomLocked(); err != nil {
		return nil, err
	}
	f := &Frame{ID: pid, pg: pg, pins: 1, refbit: true}
	p.frames[pid] = f
	p.clock = append(p.clock, pid)
	return f, nil
}

// FetchOrCreate returns the frame for pid like Fetch, but if pid lies at or
// beyond the current end of the file it extends the file with blank pages
// from the factory. Restart redo uses it to rematerialize pages that were
// allocated before a crash but never flushed: their format log records are
// replayed into the blank pages. Intermediate pages created by the extension
// are marked dirty with recLSN = lsn (a safe lower bound for the DPT).
func (p *Pool) FetchOrCreate(pid types.PageID, factory func() page.Page, lsn types.LSN) (*Frame, error) {
	p.mu.Lock()
	if err := p.openFileLocked(pid.File); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	for p.nPages[pid.File] <= pid.Page {
		n := p.nPages[pid.File]
		p.nPages[pid.File]++
		blank := types.PageID{File: pid.File, Page: n}
		if _, ok := p.frames[blank]; ok {
			continue
		}
		if err := p.makeRoomLocked(); err != nil {
			p.mu.Unlock()
			return nil, err
		}
		f := &Frame{ID: blank, pg: factory(), dirty: true, recLSN: lsn, refbit: true}
		p.frames[blank] = f
		p.clock = append(p.clock, blank)
	}
	p.mu.Unlock()
	fr, err := p.Fetch(pid)
	if errors.Is(err, page.ErrBlank) {
		// The page lies inside the file's durable extent but was never
		// itself written (a later page's flush extended the file with
		// zeros). It is logically a fresh page: install the factory image
		// and let redo replay its history.
		p.mu.Lock()
		defer p.mu.Unlock()
		if f, ok := p.frames[pid]; ok { // lost a race with another creator
			f.mu.Lock()
			f.pins++
			f.mu.Unlock()
			return f, nil
		}
		if err := p.makeRoomLocked(); err != nil {
			return nil, err
		}
		f := &Frame{ID: pid, pg: factory(), dirty: true, recLSN: lsn, pins: 1, refbit: true}
		p.frames[pid] = f
		p.clock = append(p.clock, pid)
		return f, nil
	}
	return fr, err
}

// Unpin releases one pin on the frame.
func (p *Pool) Unpin(f *Frame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pins <= 0 {
		panic("buffer: unpin of unpinned frame")
	}
	f.pins--
}

// makeRoomLocked evicts clock-chosen unpinned frames until the pool is under
// capacity. Dirty victims are flushed (with the WAL protocol) first. A
// victim whose latch is held is skipped rather than waited for: the holder
// may be blocked on the pool mutex we hold, so waiting could deadlock.
func (p *Pool) makeRoomLocked() error {
	busy := 0
	for len(p.frames) >= p.capacity {
		victim := p.pickVictimLocked()
		if victim == nil {
			return ErrAllPinned
		}
		if !victim.Latch.TryAcquire(latch.S) {
			// Busy: put it back in the ring and try another. If everything
			// is latched, give up rather than spin under the pool mutex.
			p.clock = append(p.clock, victim.ID)
			busy++
			if busy > 2*len(p.frames) {
				return ErrAllPinned
			}
			continue
		}
		err := p.flushFrameLocked(victim)
		victim.Latch.Release(latch.S)
		if err != nil {
			return err
		}
		delete(p.frames, victim.ID)
		p.stats.Evictions++
		p.met.Evictions.Inc()
	}
	return nil
}

func (p *Pool) pickVictimLocked() *Frame {
	for sweep := 0; sweep < 2*len(p.clock)+1; sweep++ {
		if len(p.clock) == 0 {
			return nil
		}
		p.hand %= len(p.clock)
		pid := p.clock[p.hand]
		f, ok := p.frames[pid]
		if !ok {
			// stale ring entry: compact
			p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
			continue
		}
		f.mu.Lock()
		pinned := f.pins > 0
		ref := f.refbit
		f.refbit = false
		f.mu.Unlock()
		if !pinned && !ref {
			p.clock = append(p.clock[:p.hand], p.clock[p.hand+1:]...)
			return f
		}
		p.hand++
	}
	return nil
}

// flushFrameLocked writes the frame's page image to stable storage if dirty,
// enforcing the WAL protocol: the log is forced up to the PageLSN first.
// The caller must hold the pool mutex and the frame's latch in at least S
// mode (so no writer is mutating the page mid-marshal).
//
// The Force may ride a group-commit epoch: if a WAL flush covering PageLSN
// is already in flight this call parks until that epoch's leader syncs,
// holding the pool mutex the whole time. That is deadlock-free — the leader
// needs only the WAL's own mutex and the log file, never the pool — and
// correct: Force returns only once PageLSN is durable (a failed epoch
// returns the leader's error, and the page write below is skipped).
func (p *Pool) flushFrameLocked(f *Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.dirty {
		return nil
	}
	lsn := f.pg.PageLSN()
	if p.log != nil {
		if err := p.log.Force(lsn); err != nil {
			return err
		}
	} else if lsn != types.NilLSN {
		return errors.New("buffer: dirty page with PageLSN but no log attached")
	}
	img, err := f.pg.MarshalPage()
	if err != nil {
		return fmt.Errorf("buffer: marshal %s: %w", f.ID, err)
	}
	if len(img) != page.Size {
		return fmt.Errorf("buffer: page %s image is %d bytes, want %d", f.ID, len(img), page.Size)
	}
	file := p.files[f.ID.File]
	if file == nil {
		return fmt.Errorf("buffer: flush %s: file not open", f.ID)
	}
	if _, err := file.WriteAt(img, int64(f.ID.Page)*page.Size); err != nil {
		return err
	}
	if err := file.Sync(); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = types.NilLSN
	p.stats.Flushes++
	p.met.Flushes.Inc()
	return nil
}

// FlushAll flushes every dirty page (used at clean shutdown and by SF's
// index checkpointing, which requires "all the dirty pages of the index
// [to] have been written to disk" before recording the checkpoint).
func (p *Pool) FlushAll() error { return p.flushMatching(func(types.PageID) bool { return true }) }

// FlushFile flushes the dirty pages of one file.
func (p *Pool) FlushFile(id types.FileID) error {
	return p.flushMatching(func(pid types.PageID) bool { return pid.File == id })
}

// flushMatching flushes all frames whose page ID matches. Frames are
// snapshotted first and latched one at a time without the pool mutex held,
// so a flush never deadlocks against an operation that holds a page latch
// while fetching another page.
func (p *Pool) flushMatching(match func(types.PageID) bool) error {
	p.mu.Lock()
	frames := make([]*Frame, 0, len(p.frames))
	for _, f := range p.frames {
		if match(f.ID) {
			frames = append(frames, f)
		}
	}
	p.mu.Unlock()
	// Flush in page-ID order, not map order: the fault-injection harness
	// numbers I/O operations and needs identical runs to issue them in an
	// identical sequence.
	sort.Slice(frames, func(i, j int) bool {
		a, b := frames[i].ID, frames[j].ID
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Page < b.Page
	})
	for _, f := range frames {
		f.Latch.Acquire(latch.S)
		p.mu.Lock()
		err := p.flushFrameLocked(f)
		p.mu.Unlock()
		f.Latch.Release(latch.S)
		if err != nil {
			return err
		}
	}
	return nil
}

// DirtyPages returns the dirty page table (sorted by page ID) for fuzzy
// checkpoints: each dirty page with the RecLSN from which redo must consider
// it.
func (p *Pool) DirtyPages() []DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dpt []DirtyPage
	for _, f := range p.frames {
		f.mu.Lock()
		if f.dirty {
			dpt = append(dpt, DirtyPage{ID: f.ID, RecLSN: f.recLSN})
		}
		f.mu.Unlock()
	}
	sort.Slice(dpt, func(i, j int) bool { return dpt[i].ID.Less(dpt[j].ID) })
	return dpt
}

// TruncateFile shrinks a file to n pages, discarding cached frames above the
// cut. SF restart uses it to make "the keys higher than the checkpointed key
// disappear from the index" by deallocating pages added after the last index
// checkpoint (§3.2.4).
func (p *Pool) TruncateFile(id types.FileID, n types.PageNum) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.openFileLocked(id); err != nil {
		return err
	}
	for pid, f := range p.frames {
		if pid.File == id && pid.Page >= n {
			f.mu.Lock()
			pinned := f.pins > 0
			f.mu.Unlock()
			if pinned {
				return fmt.Errorf("buffer: truncate %d: page %s still pinned", id, pid)
			}
			delete(p.frames, pid)
		}
	}
	if err := p.files[id].Truncate(int64(n) * page.Size); err != nil {
		return err
	}
	if err := p.files[id].Sync(); err != nil {
		return err
	}
	p.nPages[id] = n
	return nil
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close closes the underlying files without flushing (a crash path closes
// nothing at all; a clean shutdown calls FlushAll first).
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, f := range p.files {
		f.Close()
	}
	return nil
}
