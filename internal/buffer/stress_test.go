package buffer

import (
	"sync"
	"testing"

	"onlineindex/internal/latch"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// TestConcurrentFetchEvictFlush hammers a tiny pool from many goroutines
// while a flusher runs, checking that page contents survive eviction storms
// and concurrent flushes (the try-latch eviction path and the snapshot-based
// FlushAll both get exercised hard).
func TestConcurrentFetchEvictFlush(t *testing.T) {
	fs, log, pool := newPool(t, 16) // much smaller than the page population
	const pages = 128
	pids := make([]types.PageID, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := pool.NewPage(1, &testPage{counter: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
		f.MarkDirty(lsn)
		pids = append(pids, f.ID)
		pool.Unpin(f)
	}
	_ = fs

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers/writers.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pid := pids[(i*7+w*13)%pages]
				f, err := pool.Fetch(pid)
				if err != nil {
					t.Errorf("fetch %v: %v", pid, err)
					return
				}
				if w%2 == 0 {
					f.Latch.Acquire(latch.S)
					base := f.Page().(*testPage).counter % 1000
					_ = base
					f.Latch.Release(latch.S)
				} else {
					f.Latch.Acquire(latch.X)
					tp := f.Page().(*testPage)
					tp.counter += 1000
					lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapUpdate, Flags: wal.FlagRedo, PageID: pid})
					f.MarkDirty(lsn)
					f.Latch.Release(latch.X)
				}
				pool.Unpin(f)
			}
		}(w)
	}
	// Flusher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := pool.FlushAll(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()

	// Let it churn, then stop.
	doneFlush := make(chan struct{})
	go func() { wg.Wait(); close(doneFlush) }()
	for i := 0; i < 200; i++ {
		pool.DirtyPages() // concurrent DPT snapshots
	}
	close(stop)
	<-doneFlush

	// Every page's low digits (identity) must have survived; high digits
	// (update counters) are arbitrary.
	for i, pid := range pids {
		f, err := pool.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Page().(*testPage).counter % 1000; got != uint64(i) {
			t.Fatalf("page %v identity = %d, want %d", pid, got, i)
		}
		pool.Unpin(f)
	}
	if pool.Stats().Evictions == 0 {
		t.Error("stress never evicted (pool too large for the test to mean anything)")
	}
}

// TestConcurrentShardedFetchEvictSteal is the multi-shard variant: a 4-shard
// pool far smaller than the page population, hammered by more goroutines
// than per-shard capacity so evictions constantly cross shard boundaries
// through the work-stealing fallback. Page identities must survive the
// churn, and the per-shard counters must sum to the pool totals.
func TestConcurrentShardedFetchEvictSteal(t *testing.T) {
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSharded(fs, log, 16, 4) // 4 frames per shard
	if got := pool.Shards(); got != 4 {
		t.Fatalf("Shards() = %d, want 4", got)
	}
	const pages = 128
	pids := make([]types.PageID, 0, pages)
	for i := 0; i < pages; i++ {
		f, err := pool.NewPage(1, &testPage{counter: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
		f.MarkDirty(lsn)
		pids = append(pids, f.ID)
		pool.Unpin(f)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Each goroutine cycles a window of pages and holds two pins
				// at once, so a shard's whole frame list is often pinned and
				// the evictor must steal from a sibling.
				a := pids[(i*5+w*17)%pages]
				b := pids[(i*11+w*3)%pages]
				fa, err := pool.Fetch(a)
				if err != nil {
					t.Errorf("fetch %v: %v", a, err)
					return
				}
				fb, err := pool.Fetch(b)
				if err != nil {
					pool.Unpin(fa)
					t.Errorf("fetch %v: %v", b, err)
					return
				}
				if w%2 == 1 {
					fb.Latch.Acquire(latch.X)
					fb.Page().(*testPage).counter += 1000
					lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapUpdate, Flags: wal.FlagRedo, PageID: b})
					fb.MarkDirty(lsn)
					fb.Latch.Release(latch.X)
				}
				pool.Unpin(fb)
				pool.Unpin(fa)
			}
		}(w)
	}
	// Concurrent flushes and DPT snapshots take the cross-shard paths.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := pool.FlushAll(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			pool.DirtyPages()
		}
	}()

	doneAll := make(chan struct{})
	go func() { wg.Wait(); close(doneAll) }()
	for i := 0; i < 200; i++ {
		pool.Stats() // concurrent per-shard counter aggregation
	}
	close(stop)
	<-doneAll

	for i, pid := range pids {
		f, err := pool.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Page().(*testPage).counter % 1000; got != uint64(i) {
			t.Fatalf("page %v identity = %d, want %d", pid, got, i)
		}
		pool.Unpin(f)
	}
	st := pool.Stats()
	if st.Evictions == 0 {
		t.Error("sharded stress never evicted")
	}
	lookups, evictions := pool.ShardStats()
	var sumL, sumE uint64
	for i := range lookups {
		sumL += lookups[i]
		sumE += evictions[i]
	}
	if sumE != st.Evictions {
		t.Errorf("per-shard evictions sum %d != pool total %d", sumE, st.Evictions)
	}
	if sumL == 0 {
		t.Error("per-shard lookup counters never moved")
	}
}
