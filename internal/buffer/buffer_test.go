package buffer

import (
	"encoding/binary"
	"errors"
	"testing"

	"onlineindex/internal/page"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// testPage is a trivial page type: a counter plus the common header.
type testPage struct {
	page.Header
	counter uint64
}

const testKind page.Kind = 200

func init() {
	page.Register(testKind, func() page.Page { return &testPage{} })
}

func (t *testPage) Kind() page.Kind { return testKind }

func (t *testPage) MarshalPage() ([]byte, error) {
	img := make([]byte, page.Size)
	t.MarshalHeader(img, testKind)
	binary.LittleEndian.PutUint64(img[page.HeaderSize:], t.counter)
	return img, nil
}

func (t *testPage) UnmarshalPage(img []byte) error {
	if _, err := t.UnmarshalHeader(img); err != nil {
		return err
	}
	t.counter = binary.LittleEndian.Uint64(img[page.HeaderSize:])
	return nil
}

func newPool(t *testing.T, capacity int) (*vfs.MemFS, *wal.Log, *Pool) {
	t.Helper()
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	return fs, log, New(fs, log, capacity)
}

func TestNewPageFetchRoundTrip(t *testing.T) {
	_, log, pool := newPool(t, 16)
	f, err := pool.NewPage(1, &testPage{counter: 41})
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
	f.Page().(*testPage).counter = 42
	f.MarkDirty(lsn)
	pid := f.ID
	pool.Unpin(f)

	g, err := pool.Fetch(pid)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Page().(*testPage).counter; got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	pool.Unpin(g)
}

func TestEvictionPersistsDirtyPages(t *testing.T) {
	_, log, pool := newPool(t, 8)
	var pids []types.PageID
	for i := 0; i < 40; i++ {
		f, err := pool.NewPage(1, &testPage{counter: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
		f.MarkDirty(lsn)
		pids = append(pids, f.ID)
		pool.Unpin(f)
	}
	if pool.Stats().Evictions == 0 {
		t.Fatal("expected evictions with capacity 8 and 40 pages")
	}
	for i, pid := range pids {
		f, err := pool.Fetch(pid)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Page().(*testPage).counter; got != uint64(i) {
			t.Fatalf("page %v counter = %d, want %d", pid, got, i)
		}
		pool.Unpin(f)
	}
}

func TestWALProtocolForcesLogBeforeFlush(t *testing.T) {
	_, log, pool := newPool(t, 16)
	f, _ := pool.NewPage(1, &testPage{})
	lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapInsert, Flags: wal.FlagRedo, PageID: f.ID})
	f.MarkDirty(lsn)
	pool.Unpin(f)

	if log.FlushedLSN() > lsn {
		t.Fatal("log should not be durable yet")
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if log.FlushedLSN() <= lsn {
		t.Fatalf("WAL protocol violated: page flushed but log FlushedLSN=%d <= pageLSN=%d",
			log.FlushedLSN(), lsn)
	}
}

func TestDirtyPageTable(t *testing.T) {
	_, log, pool := newPool(t, 16)
	f1, _ := pool.NewPage(1, &testPage{})
	f2, _ := pool.NewPage(1, &testPage{})
	lsn1, _ := log.Append(&wal.Record{Type: wal.TypeHeapInsert, Flags: wal.FlagRedo, PageID: f1.ID})
	f1.MarkDirty(lsn1)
	lsn2, _ := log.Append(&wal.Record{Type: wal.TypeHeapInsert, Flags: wal.FlagRedo, PageID: f1.ID})
	f1.MarkDirty(lsn2) // second dirtying must keep original RecLSN
	pool.Unpin(f1)
	pool.Unpin(f2)

	dpt := pool.DirtyPages()
	if len(dpt) != 1 {
		t.Fatalf("DPT = %v, want single entry", dpt)
	}
	if dpt[0].RecLSN != lsn1 {
		t.Fatalf("RecLSN = %d, want first dirtying LSN %d", dpt[0].RecLSN, lsn1)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if dpt := pool.DirtyPages(); len(dpt) != 0 {
		t.Fatalf("DPT after flush = %v, want empty", dpt)
	}
}

func TestCrashLosesUnflushedPages(t *testing.T) {
	fs, log, pool := newPool(t, 16)
	f, _ := pool.NewPage(1, &testPage{counter: 1})
	lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
	f.MarkDirty(lsn)
	pid := f.ID
	pool.Unpin(f)
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Dirty it again, don't flush, crash.
	g, _ := pool.Fetch(pid)
	g.Page().(*testPage).counter = 99
	lsn2, _ := log.Append(&wal.Record{Type: wal.TypeHeapUpdate, Flags: wal.FlagRedo, PageID: pid})
	g.MarkDirty(lsn2)
	pool.Unpin(g)

	fs.Crash()
	fs.Recover()

	pool2 := New(fs, nil, 16)
	h, err := pool2.Fetch(pid)
	if err != nil {
		t.Fatal(err)
	}
	tp := h.Page().(*testPage)
	if tp.counter != 1 {
		t.Fatalf("after crash counter = %d, want 1 (unflushed update must be lost)", tp.counter)
	}
	if tp.PageLSN() != lsn {
		t.Fatalf("after crash PageLSN = %d, want %d", tp.PageLSN(), lsn)
	}
	pool2.Unpin(h)
}

func TestTruncateFile(t *testing.T) {
	_, log, pool := newPool(t, 16)
	for i := 0; i < 5; i++ {
		f, _ := pool.NewPage(3, &testPage{counter: uint64(i)})
		lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
		f.MarkDirty(lsn)
		pool.Unpin(f)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := pool.TruncateFile(3, 2); err != nil {
		t.Fatal(err)
	}
	n, _ := pool.PageCount(3)
	if n != 2 {
		t.Fatalf("page count = %d, want 2", n)
	}
	if _, err := pool.Fetch(types.PageID{File: 3, Page: 4}); err == nil {
		t.Fatal("fetch beyond truncation should fail")
	}
	f, err := pool.Fetch(types.PageID{File: 3, Page: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Page().(*testPage).counter; got != 1 {
		t.Fatalf("surviving page counter = %d, want 1", got)
	}
	pool.Unpin(f)
	// Extending after truncation reuses page numbers from the cut.
	g, _ := pool.NewPage(3, &testPage{counter: 77})
	if g.ID.Page != 2 {
		t.Fatalf("new page after truncate = %v, want page 2", g.ID)
	}
	pool.Unpin(g)
}

func TestAllPinnedError(t *testing.T) {
	_, _, pool := newPool(t, 8)
	var frames []*Frame
	for i := 0; i < 8; i++ {
		f, err := pool.NewPage(1, &testPage{})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f) // keep pinned
	}
	_, err := pool.NewPage(1, &testPage{})
	if !errors.Is(err, ErrAllPinned) {
		t.Fatalf("err = %v, want ErrAllPinned", err)
	}
	for _, f := range frames {
		pool.Unpin(f)
	}
	if _, err := pool.NewPage(1, &testPage{}); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestFetchBeyondEOF(t *testing.T) {
	_, _, pool := newPool(t, 8)
	pool.OpenFile(1)
	if _, err := pool.Fetch(types.PageID{File: 1, Page: 0}); err == nil {
		t.Fatal("fetch from empty file should fail")
	}
}

func TestPageCountPersists(t *testing.T) {
	fs, log, pool := newPool(t, 8)
	for i := 0; i < 3; i++ {
		f, _ := pool.NewPage(1, &testPage{})
		lsn, _ := log.Append(&wal.Record{Type: wal.TypeHeapFormat, Flags: wal.FlagRedo, PageID: f.ID})
		f.MarkDirty(lsn)
		pool.Unpin(f)
	}
	pool.FlushAll()
	pool2 := New(fs, nil, 8)
	n, err := pool2.PageCount(1)
	if err != nil || n != 3 {
		t.Fatalf("reopened page count = %d, %v; want 3", n, err)
	}
}
