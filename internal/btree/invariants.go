package btree

import (
	"bytes"
	"fmt"

	"onlineindex/internal/types"
)

// CheckInvariants validates the whole tree structure and returns the first
// violation found:
//
//   - every node's entries/separators are strictly sorted by (key, RID);
//   - child subtrees respect their separator bounds;
//   - all leaves are at the same depth;
//   - the leaf sibling chain visits exactly the tree's leaves, left to
//     right;
//   - each node's byte accounting matches recomputation;
//   - on a unique tree, no key value has more than one live (non-pseudo)
//     entry — duplicates may coexist only while the extra entries carry the
//     pseudo-delete flag (§2.2.2).
//
// It is shared by the unit tests and the crash-sweep oracle, which runs it
// against every tree that survives a simulated failure plus recovery.
func CheckInvariants(tr *Tree) error {
	var leavesByTree []types.PageNum
	var prevLive []byte // last live key seen in leaf order, for uniqueness
	havePrevLive := false

	var walk func(pg types.PageNum, lo, hi *sep, depth int) (int, error)
	walk = func(pg types.PageNum, lo, hi *sep, depth int) (int, error) {
		f, err := tr.pool.Fetch(tr.pid(pg))
		if err != nil {
			return 0, fmt.Errorf("btree: fetch page %d: %w", pg, err)
		}
		defer tr.pool.Unpin(f)
		n, ok := f.Page().(*Node)
		if !ok {
			return 0, fmt.Errorf("btree: page %d is not an index node", pg)
		}

		within := func(key []byte, rid types.RID, what string) error {
			if lo != nil && CompareEntry(key, rid, lo.key, lo.rid) < 0 {
				return fmt.Errorf("btree: page %d: %s <%x,%v> below low bound <%x>", pg, what, key, rid, lo.key)
			}
			if hi != nil && CompareEntry(key, rid, hi.key, hi.rid) >= 0 {
				return fmt.Errorf("btree: page %d: %s <%x,%v> not below high bound <%x>", pg, what, key, rid, hi.key)
			}
			return nil
		}

		// On a compressed page the stored prefix must actually prefix every
		// key; it is enough to check the extremes, keys being sorted.
		if n.comp {
			check := func(key []byte, what string, i int) error {
				if !bytes.HasPrefix(key, n.prefix) {
					return fmt.Errorf("btree: page %d: %s %d lacks page prefix %x", pg, what, i, n.prefix)
				}
				return nil
			}
			if n.leaf && len(n.entries) > 0 {
				if err := check(n.entries[0].Key, "entry", 0); err != nil {
					return 0, err
				}
				if err := check(n.entries[len(n.entries)-1].Key, "entry", len(n.entries)-1); err != nil {
					return 0, err
				}
			}
			if !n.leaf && len(n.seps) > 0 {
				if err := check(n.seps[0].key, "sep", 0); err != nil {
					return 0, err
				}
				if err := check(n.seps[len(n.seps)-1].key, "sep", len(n.seps)-1); err != nil {
					return 0, err
				}
			}
		}

		if n.leaf {
			for i, e := range n.entries {
				if err := within(e.Key, e.RID, "entry"); err != nil {
					return 0, err
				}
				if i > 0 {
					p := n.entries[i-1]
					if CompareEntry(p.Key, p.RID, e.Key, e.RID) >= 0 {
						return 0, fmt.Errorf("btree: page %d: entries %d,%d out of order", pg, i-1, i)
					}
				}
				if !e.Pseudo {
					if havePrevLive && tr.unique && bytes.Equal(prevLive, e.Key) {
						return 0, fmt.Errorf("btree: page %d: unique tree holds two live entries for key %x", pg, e.Key)
					}
					prevLive = append(prevLive[:0], e.Key...)
					havePrevLive = true
				}
			}
			if used := n.computeUsed(); used != n.used {
				return 0, fmt.Errorf("btree: page %d: used=%d, recomputed %d", pg, n.used, used)
			}
			leavesByTree = append(leavesByTree, pg)
			return 1, nil
		}

		if len(n.children) != len(n.seps)+1 {
			return 0, fmt.Errorf("btree: page %d: %d children, %d seps", pg, len(n.children), len(n.seps))
		}
		for i, s := range n.seps {
			if err := within(s.key, s.rid, "sep"); err != nil {
				return 0, err
			}
			if i > 0 {
				p := n.seps[i-1]
				if CompareEntry(p.key, p.rid, s.key, s.rid) >= 0 {
					return 0, fmt.Errorf("btree: page %d: seps %d,%d out of order", pg, i-1, i)
				}
			}
		}
		if used := n.computeUsed(); used != n.used {
			return 0, fmt.Errorf("btree: page %d: used=%d, recomputed %d", pg, n.used, used)
		}
		depth0 := -1
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = &n.seps[i-1]
			}
			if i < len(n.seps) {
				chi = &n.seps[i]
			}
			d, err := walk(c, clo, chi, depth+1)
			if err != nil {
				return 0, err
			}
			if depth0 == -1 {
				depth0 = d
			} else if d != depth0 {
				return 0, fmt.Errorf("btree: page %d: uneven leaf depth under children", pg)
			}
		}
		return depth0 + 1, nil
	}
	if _, err := walk(RootPage, nil, nil, 0); err != nil {
		return err
	}

	chain, err := tr.LeafPages()
	if err != nil {
		return fmt.Errorf("btree: leaf chain: %w", err)
	}
	if len(chain) != len(leavesByTree) {
		return fmt.Errorf("btree: leaf chain has %d pages, tree walk found %d", len(chain), len(leavesByTree))
	}
	for i := range chain {
		if chain[i] != leavesByTree[i] {
			return fmt.Errorf("btree: leaf chain[%d]=%d, tree order %d", i, chain[i], leavesByTree[i])
		}
	}
	return nil
}
