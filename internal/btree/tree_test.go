package btree

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"onlineindex/internal/buffer"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/vfs"
	"onlineindex/internal/wal"
)

// smallBudget forces frequent splits so tests exercise deep trees.
const smallBudget = 512

func newTree(t *testing.T, unique bool, budget int) (*vfs.MemFS, *wal.Log, *buffer.Pool, *Tree) {
	t.Helper()
	fs := vfs.NewMemFS()
	log, err := wal.Open(fs)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.New(fs, log, 256)
	tr, err := Create(pool, 7, Config{Unique: unique, Budget: budget}, &rm.SimpleLogger{L: log, Txn: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, log, pool, tr
}

func TestInsertAndSearch(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		res, conflict, err := tr.TxnInsert(tl, keyOf(i), ridOf(i))
		if err != nil || conflict != nil || res != Inserted {
			t.Fatalf("insert %d: res=%v conflict=%v err=%v", i, res, conflict, err)
		}
	}
	checkInvariants(t, tr)
	for i := 0; i < n; i++ {
		found, pseudo, err := tr.SearchEntry(keyOf(i), ridOf(i))
		if err != nil || !found || pseudo {
			t.Fatalf("search %d: found=%v pseudo=%v err=%v", i, found, pseudo, err)
		}
	}
	if found, _, _ := tr.SearchEntry(keyOf(n+1), ridOf(n+1)); found {
		t.Fatal("found nonexistent key")
	}
	h, _ := tr.Height()
	if h < 3 {
		t.Fatalf("height = %d; want >= 3 with budget %d", h, smallBudget)
	}
	ents := collect(t, tr)
	if len(ents) != n {
		t.Fatalf("scan found %d entries, want %d", len(ents), n)
	}
}

func TestDuplicateInsertRejectedWithNoopLog(t *testing.T) {
	// §2.1.1: the second inserter of an identical entry writes an undo-only
	// record instead of inserting.
	_, log, _, tr := newTree(t, false, smallBudget)
	ib := &rm.SimpleLogger{L: log, Txn: 1}
	txn := &rm.SimpleLogger{L: log, Txn: 2}

	cur := &IBCursor{}
	res, _, _, err := tr.IBInsertBatch(ib, []Entry{{Key: keyOf(1), RID: ridOf(1)}}, cur)
	if err != nil || res.Inserted != 1 {
		t.Fatalf("IB insert: %+v, %v", res, err)
	}

	r, conflict, err := tr.TxnInsert(txn, keyOf(1), ridOf(1))
	if err != nil || conflict != nil {
		t.Fatal(err, conflict)
	}
	if r != AlreadyPresent {
		t.Fatalf("result = %v, want AlreadyPresent", r)
	}
	// Verify the undo-only record exists.
	it, _ := log.NewIterator(1)
	var noop *wal.Record
	for {
		rec, ok, _ := it.Next()
		if !ok {
			break
		}
		if rec.Type == wal.TypeIdxInsertNoop {
			noop = &rec
		}
	}
	if noop == nil {
		t.Fatal("no TypeIdxInsertNoop record written")
	}
	if noop.Redoable() || !noop.Undoable() {
		t.Fatalf("noop record flags = %v, want undo-only", noop.Flags)
	}
	live, pseudo, _ := tr.CountEntries()
	if live != 1 || pseudo != 0 {
		t.Fatalf("entries = %d live, %d pseudo; want 1, 0", live, pseudo)
	}
}

func TestPseudoDeleteAndTombstone(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}

	tr.TxnInsert(tl, keyOf(1), ridOf(1))
	out, err := tr.TxnPseudoDelete(tl, keyOf(1), ridOf(1))
	if err != nil || out != DeleteMarked {
		t.Fatalf("delete existing: %v, %v", out, err)
	}
	found, pseudo, _ := tr.SearchEntry(keyOf(1), ridOf(1))
	if !found || !pseudo {
		t.Fatalf("entry should be pseudo-deleted: found=%v pseudo=%v", found, pseudo)
	}
	// Lookup must skip pseudo-deleted entries.
	rids, _ := tr.Lookup(keyOf(1))
	if len(rids) != 0 {
		t.Fatalf("lookup of pseudo-deleted key returned %v", rids)
	}

	// Deleting again is a no-op.
	out, _ = tr.TxnPseudoDelete(tl, keyOf(1), ridOf(1))
	if out != DeleteAlreadyPseudo {
		t.Fatalf("double delete: %v", out)
	}

	// Deleting an absent key inserts a tombstone (§2.2.3).
	out, err = tr.TxnPseudoDelete(tl, keyOf(2), ridOf(2))
	if err != nil || out != DeleteTombstoned {
		t.Fatalf("tombstone: %v, %v", out, err)
	}
	found, pseudo, _ = tr.SearchEntry(keyOf(2), ridOf(2))
	if !found || !pseudo {
		t.Fatal("tombstone not present as pseudo-deleted")
	}
}

func TestIBInsertRejectedByTombstone(t *testing.T) {
	// The delete-key race (§1.2): the deleter tombstones the key, so IB's
	// later insert of the stale key is rejected.
	_, log, _, tr := newTree(t, false, smallBudget)
	txn := &rm.SimpleLogger{L: log, Txn: 2}
	ib := &rm.SimpleLogger{L: log, Txn: 1}

	tr.TxnPseudoDelete(txn, keyOf(5), ridOf(5)) // tombstone
	cur := &IBCursor{}
	res, _, _, err := tr.IBInsertBatch(ib, []Entry{{Key: keyOf(5), RID: ridOf(5)}}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Skipped != 1 {
		t.Fatalf("IB insert over tombstone: %+v, want skip", res)
	}
	// The key stays pseudo-deleted: the delete wins.
	_, pseudo, _ := tr.SearchEntry(keyOf(5), ridOf(5))
	if !pseudo {
		t.Fatal("tombstone overwritten by IB")
	}
}

func TestReactivation(t *testing.T) {
	// §2.2.3 example steps 6-8: insert at the same RID reactivates the
	// pseudo-deleted entry.
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	tr.TxnInsert(tl, keyOf(1), ridOf(1))
	tr.TxnPseudoDelete(tl, keyOf(1), ridOf(1))
	r, conflict, err := tr.TxnInsert(tl, keyOf(1), ridOf(1))
	if err != nil || conflict != nil || r != Reactivated {
		t.Fatalf("reinsert: r=%v conflict=%v err=%v", r, conflict, err)
	}
	found, pseudo, _ := tr.SearchEntry(keyOf(1), ridOf(1))
	if !found || pseudo {
		t.Fatal("entry not reactivated")
	}
}

func TestNonuniqueAllowsSameKeyValueDifferentRID(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	for i := 0; i < 50; i++ {
		r, conflict, err := tr.TxnInsert(tl, []byte("same-key"), ridOf(i))
		if err != nil || conflict != nil || r != Inserted {
			t.Fatalf("dup keyvalue insert %d: %v %v %v", i, r, conflict, err)
		}
	}
	rids, _ := tr.Lookup([]byte("same-key"))
	if len(rids) != 50 {
		t.Fatalf("lookup found %d RIDs, want 50", len(rids))
	}
	for i := 1; i < len(rids); i++ {
		if !rids[i-1].Less(rids[i]) {
			t.Fatal("RIDs not in order")
		}
	}
	checkInvariants(t, tr)
}

func TestUniqueConflictLive(t *testing.T) {
	_, log, _, tr := newTree(t, true, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	r, conflict, err := tr.TxnInsert(tl, []byte("K"), ridOf(1))
	if err != nil || conflict != nil || r != Inserted {
		t.Fatal(r, conflict, err)
	}
	_, conflict, err = tr.TxnInsert(tl, []byte("K"), ridOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if conflict == nil || conflict.Pseudo || conflict.OtherRID != ridOf(1) {
		t.Fatalf("conflict = %+v, want live conflict with %v", conflict, ridOf(1))
	}
}

func TestUniqueConflictPseudoThenReplaceRID(t *testing.T) {
	// §2.2.3 example tail: T2 inserts <K, R1> while <K, R> is pseudo-deleted
	// by a terminated transaction; after verification T2 replaces R with R1.
	_, log, _, tr := newTree(t, true, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	tr.TxnInsert(tl, []byte("K"), ridOf(1))
	tr.TxnPseudoDelete(tl, []byte("K"), ridOf(1))

	_, conflict, err := tr.TxnInsert(tl, []byte("K"), ridOf(2))
	if err != nil {
		t.Fatal(err)
	}
	if conflict == nil || !conflict.Pseudo || conflict.OtherRID != ridOf(1) {
		t.Fatalf("conflict = %+v, want pseudo conflict with %v", conflict, ridOf(1))
	}
	// Caller verified the old inserter terminated; replace.
	if err := tr.ReplaceRID(tl, []byte("K"), ridOf(1), ridOf(2)); err != nil {
		t.Fatal(err)
	}
	rids, _ := tr.Lookup([]byte("K"))
	if len(rids) != 1 || rids[0] != ridOf(2) {
		t.Fatalf("lookup after replace = %v, want [%v]", rids, ridOf(2))
	}
	checkInvariants(t, tr)
}

func TestUniqueInsertAfterPseudoSameRID(t *testing.T) {
	_, log, _, tr := newTree(t, true, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	tr.TxnInsert(tl, []byte("K"), ridOf(1))
	tr.TxnPseudoDelete(tl, []byte("K"), ridOf(1))
	r, conflict, err := tr.TxnInsert(tl, []byte("K"), ridOf(1))
	if err != nil || conflict != nil || r != Reactivated {
		t.Fatalf("unique reactivate: %v %v %v", r, conflict, err)
	}
}

func TestIBBatchAscendingWithCursor(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	ib := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 2000
	ents := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		ents = append(ents, Entry{Key: keyOf(i), RID: ridOf(i)})
	}
	cur := &IBCursor{}
	res, conflict, _, err := tr.IBInsertBatch(ib, ents, cur)
	if err != nil || conflict != nil {
		t.Fatal(err, conflict)
	}
	if res.Inserted != n {
		t.Fatalf("inserted %d, want %d", res.Inserted, n)
	}
	if hits := tr.Stats.FastPathHits.Load(); hits == 0 {
		t.Error("remembered-path fast path never hit on ascending inserts")
	}
	checkInvariants(t, tr)
	live, _, _ := tr.CountEntries()
	if live != n {
		t.Fatalf("live entries = %d, want %d", live, n)
	}
	// Multi-key log records were used: far fewer MultiInsert records than keys.
	st := log.Stats()
	multi := st.TypeStat(wal.TypeIdxMultiInsert).Records
	if multi == 0 || multi > uint64(n/2) {
		t.Fatalf("multi-insert records = %d for %d keys", multi, n)
	}
}

func TestIBSpecializedSplitClustering(t *testing.T) {
	// With ascending IB inserts and the cut-at-position split, leaves should
	// come out almost perfectly in physical order.
	_, log, _, tr := newTree(t, false, smallBudget)
	ib := &rm.SimpleLogger{L: log, Txn: 1}
	cur := &IBCursor{}
	for i := 0; i < 3000; i++ {
		_, conflict, _, err := tr.IBInsertBatch(ib, []Entry{{Key: keyOf(i), RID: ridOf(i)}}, cur)
		if err != nil || conflict != nil {
			t.Fatal(err, conflict)
		}
	}
	checkInvariants(t, tr)
	pages, err := tr.LeafPages()
	if err != nil {
		t.Fatal(err)
	}
	asc := 0
	for i := 1; i < len(pages); i++ {
		if pages[i] > pages[i-1] {
			asc++
		}
	}
	frac := float64(asc) / float64(len(pages)-1)
	if frac < 0.9 {
		t.Fatalf("clustering %.2f, want >= 0.9 for pure IB build", frac)
	}
}

func TestConcurrentInsertersDisjointKeys(t *testing.T) {
	_, log, _, tr := newTree(t, false, 2048)
	const workers = 8
	const per = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &rm.SimpleLogger{L: log, Txn: types.TxnID(w + 1)}
			for i := 0; i < per; i++ {
				id := w*per + i
				r, conflict, err := tr.TxnInsert(tl, keyOf(id), ridOf(id))
				if err != nil || conflict != nil || r != Inserted {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	live, _, _ := tr.CountEntries()
	if live != workers*per {
		t.Fatalf("live = %d, want %d", live, workers*per)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	_, log, _, tr := newTree(t, false, 2048)
	pre := &rm.SimpleLogger{L: log, Txn: 99}
	for i := 0; i < 1000; i++ {
		tr.TxnInsert(pre, keyOf(i), ridOf(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &rm.SimpleLogger{L: log, Txn: types.TxnID(w + 1)}
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				id := rng.Intn(2000)
				switch rng.Intn(3) {
				case 0:
					tr.TxnInsert(tl, keyOf(id), ridOf(id))
				case 1:
					tr.TxnPseudoDelete(tl, keyOf(id), ridOf(id))
				case 2:
					tr.SearchEntry(keyOf(id), ridOf(id))
				}
			}
		}(w)
	}
	wg.Wait()
	checkInvariants(t, tr)
}

func TestGCCollectsCommittedOnly(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	for i := 0; i < 100; i++ {
		tr.TxnInsert(tl, keyOf(i), ridOf(i))
	}
	for i := 0; i < 50; i++ {
		tr.TxnPseudoDelete(tl, keyOf(i), ridOf(i))
	}
	// Keys 0..24 committed, 25..49 "uncommitted" per the lock callback.
	res, err := tr.GC(tl, nil, func(key []byte, rid types.RID) bool {
		return string(key) < string(keyOf(25))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collected != 25 || res.Skipped != 25 {
		t.Fatalf("GC = %+v, want 25 collected, 25 skipped", res)
	}
	live, pseudo, _ := tr.CountEntries()
	if live != 50 || pseudo != 25 {
		t.Fatalf("after GC: live=%d pseudo=%d, want 50, 25", live, pseudo)
	}
	checkInvariants(t, tr)

	// Commit_LSN fast path: treat every page as committed.
	res, err = tr.GC(tl, func(types.LSN) bool { return true }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collected != 25 {
		t.Fatalf("GC fast path collected %d, want 25", res.Collected)
	}
	_, pseudo, _ = tr.CountEntries()
	if pseudo != 0 {
		t.Fatalf("pseudo after full GC = %d", pseudo)
	}
}

func TestUndoOperations(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}

	// Undo insert -> pseudo-delete.
	tr.TxnInsert(tl, keyOf(1), ridOf(1))
	if err := tr.UndoInsert(tl, EntryPayload{Key: keyOf(1), RID: ridOf(1)}, types.NilLSN); err != nil {
		t.Fatal(err)
	}
	_, pseudo, _ := tr.SearchEntry(keyOf(1), ridOf(1))
	if !pseudo {
		t.Fatal("undo insert should pseudo-delete")
	}

	// Undo pseudo-delete -> reactivate.
	tr.TxnInsert(tl, keyOf(2), ridOf(2))
	tr.TxnPseudoDelete(tl, keyOf(2), ridOf(2))
	if err := tr.UndoPseudoDelete(tl, EntryPayload{Key: keyOf(2), RID: ridOf(2)}, types.NilLSN); err != nil {
		t.Fatal(err)
	}
	_, pseudo, _ = tr.SearchEntry(keyOf(2), ridOf(2))
	if pseudo {
		t.Fatal("undo pseudo-delete should reactivate")
	}

	// Undo tombstone insert -> reactivate (put in inserted state).
	tr.TxnPseudoDelete(tl, keyOf(3), ridOf(3)) // tombstone
	if err := tr.UndoInsert(tl, EntryPayload{Key: keyOf(3), RID: ridOf(3), Pseudo: true}, types.NilLSN); err != nil {
		t.Fatal(err)
	}
	found, pseudo, _ := tr.SearchEntry(keyOf(3), ridOf(3))
	if !found || pseudo {
		t.Fatal("undo tombstone insert should leave key in inserted state")
	}

	// Undo multi-insert -> physical removal.
	ib := &rm.SimpleLogger{L: log, Txn: 2}
	cur := &IBCursor{}
	tr.IBInsertBatch(ib, []Entry{{Key: keyOf(10), RID: ridOf(10)}, {Key: keyOf(11), RID: ridOf(11)}}, cur)
	pl := MultiInsertPayload{Entries: []Entry{{Key: keyOf(10), RID: ridOf(10)}, {Key: keyOf(11), RID: ridOf(11)}}}
	if err := tr.UndoMultiInsert(ib, pl, types.NilLSN); err != nil {
		t.Fatal(err)
	}
	if found, _, _ := tr.SearchEntry(keyOf(10), ridOf(10)); found {
		t.Fatal("undo multi-insert left entry behind")
	}

	// Undo physical remove -> reinsert.
	tr.TxnInsert(tl, keyOf(20), ridOf(20))
	tr.RemoveEntry(tl, keyOf(20), ridOf(20))
	if err := tr.UndoRemoveEntry(tl, EntryPayload{Key: keyOf(20), RID: ridOf(20)}, types.NilLSN); err != nil {
		t.Fatal(err)
	}
	found, pseudo, _ = tr.SearchEntry(keyOf(20), ridOf(20))
	if !found || pseudo {
		t.Fatal("undo remove did not reinsert")
	}
	checkInvariants(t, tr)
}

func TestRedoRebuildsTree(t *testing.T) {
	fs, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 800
	for i := 0; i < n; i++ {
		if _, _, err := tr.TxnInsert(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		tr.TxnPseudoDelete(tl, keyOf(i), ridOf(i))
	}
	// Log forced, data pages NOT flushed.
	log.ForceAll()
	fs.Crash()
	fs.Recover()

	log2, _ := wal.Open(fs)
	pool2 := buffer.New(fs, log2, 256)
	it, _ := log2.NewIterator(1)
	for {
		r, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		switch r.Type {
		case wal.TypeIdxFormat, wal.TypeIdxInsert, wal.TypeIdxMultiInsert, wal.TypeIdxDelete,
			wal.TypeIdxPseudoDel, wal.TypeIdxReactivate, wal.TypeIdxSplit, wal.TypeIdxNewRoot,
			wal.TypeIdxInsertNoop:
			if err := Redo(pool2, &r); err != nil {
				t.Fatalf("redo %s: %v", &r, err)
			}
		}
	}
	tr2, err := Open(pool2, 7, Config{Budget: smallBudget})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr2)
	live, pseudo, _ := tr2.CountEntries()
	if live != n-100 || pseudo != 100 {
		t.Fatalf("after redo: live=%d pseudo=%d, want %d, 100", live, pseudo, n-100)
	}
	for i := 0; i < n; i++ {
		found, ps, _ := tr2.SearchEntry(keyOf(i), ridOf(i))
		if !found || ps != (i < 100) {
			t.Fatalf("key %d after redo: found=%v pseudo=%v", i, found, ps)
		}
	}
}

func TestRedoIdempotent(t *testing.T) {
	_, log, pool, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	for i := 0; i < 300; i++ {
		tr.TxnInsert(tl, keyOf(i), ridOf(i))
	}
	// Re-apply the log to the live pool: PageLSN guards make it a no-op.
	it, _ := log.NewIterator(1)
	for {
		r, ok, _ := it.Next()
		if !ok {
			break
		}
		switch r.Type {
		case wal.TypeIdxFormat, wal.TypeIdxInsert, wal.TypeIdxSplit, wal.TypeIdxNewRoot:
			if err := Redo(pool, &r); err != nil {
				t.Fatalf("re-redo %s: %v", &r, err)
			}
		}
	}
	checkInvariants(t, tr)
	live, _, _ := tr.CountEntries()
	if live != 300 {
		t.Fatalf("live = %d after re-redo, want 300", live)
	}
}

func TestLoaderBottomUp(t *testing.T) {
	_, _, _, tr := newTree(t, false, smallBudget)
	ld := tr.NewLoader(0.9)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := ld.Add(Entry{Key: keyOf(i), RID: ridOf(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Finish(); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr)
	live, _, _ := tr.CountEntries()
	if live != n {
		t.Fatalf("live = %d, want %d", live, n)
	}
	// Bottom-up build yields perfectly ascending leaf pages.
	pages, _ := tr.LeafPages()
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatalf("bottom-up leaves not ascending: %v then %v", pages[i-1], pages[i])
		}
	}
	if tr.Stats.Descents.Load() > 5 {
		// Loader never traverses; only the verification scans do.
		t.Logf("descents = %d (verification only)", tr.Stats.Descents.Load())
	}
}

func TestLoaderOutOfOrderRejected(t *testing.T) {
	_, _, _, tr := newTree(t, false, smallBudget)
	ld := tr.NewLoader(0.9)
	ld.Add(Entry{Key: keyOf(5), RID: ridOf(5)})
	if err := ld.Add(Entry{Key: keyOf(4), RID: ridOf(4)}); err == nil {
		t.Fatal("out-of-order add accepted")
	}
	// Exact duplicate is tolerated (restart replay).
	if err := ld.Add(Entry{Key: keyOf(5), RID: ridOf(5)}); err != nil {
		t.Fatal(err)
	}
	if ld.Count() != 1 {
		t.Fatalf("count = %d, want 1", ld.Count())
	}
}

func TestLoaderCheckpointRestart(t *testing.T) {
	fs, log, pool, tr := newTree(t, false, smallBudget)
	_ = pool
	ld := tr.NewLoader(0.9)
	const n = 4000
	const ckptAt = 2500
	var st LoaderState
	for i := 0; i < n; i++ {
		if err := ld.Add(Entry{Key: keyOf(i), RID: ridOf(i)}); err != nil {
			t.Fatal(err)
		}
		if i == ckptAt-1 {
			s, err := ld.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			st = s
		}
	}
	// Crash before finishing. Unflushed post-checkpoint pages are lost.
	log.ForceAll()
	fs.Crash()
	fs.Recover()

	log2, _ := wal.Open(fs)
	pool2 := buffer.New(fs, log2, 256)
	tr2, err := Open(pool2, 7, Config{Budget: smallBudget})
	if err != nil {
		t.Fatal(err)
	}
	ld2, err := tr2.RestartLoader(st, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if ld2.Count() != ckptAt {
		t.Fatalf("restarted count = %d, want %d", ld2.Count(), ckptAt)
	}
	// Resume the stream from just after the checkpointed high key.
	for i := ckptAt; i < n; i++ {
		if err := ld2.Add(Entry{Key: keyOf(i), RID: ridOf(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld2.Finish(); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, tr2)
	live, _, _ := tr2.CountEntries()
	if live != n {
		t.Fatalf("live after restart = %d, want %d", live, n)
	}
	for _, i := range []int{0, ckptAt - 1, ckptAt, n - 1} {
		found, _, _ := tr2.SearchEntry(keyOf(i), ridOf(i))
		if !found {
			t.Fatalf("key %d missing after restarted load", i)
		}
	}
}

func TestEmptyLoaderFinish(t *testing.T) {
	_, _, _, tr := newTree(t, false, smallBudget)
	ld := tr.NewLoader(0.9)
	if err := ld.Finish(); err != nil {
		t.Fatal(err)
	}
	live, pseudo, _ := tr.CountEntries()
	if live != 0 || pseudo != 0 {
		t.Fatal("empty load produced entries")
	}
}

func TestNodeMarshalRoundTrip(t *testing.T) {
	leaf := NewLeaf()
	leaf.next = 42
	for i := 0; i < 20; i++ {
		leaf.insertEntryAt(i, Entry{Key: keyOf(i), RID: ridOf(i), Pseudo: i%3 == 0})
	}
	img, err := leaf.MarshalPage()
	if err != nil {
		t.Fatal(err)
	}
	var back Node
	if err := back.UnmarshalPage(img); err != nil {
		t.Fatal(err)
	}
	if !back.leaf || back.next != 42 || len(back.entries) != 20 || back.used != leaf.used {
		t.Fatalf("leaf round trip mismatch: %+v", back)
	}
	for i := range leaf.entries {
		a, b := leaf.entries[i], back.entries[i]
		if string(a.Key) != string(b.Key) || a.RID != b.RID || a.Pseudo != b.Pseudo {
			t.Fatalf("entry %d mismatch", i)
		}
	}

	intl := NewInternal([]types.PageNum{1, 2, 3}, []sep{{key: keyOf(1), rid: ridOf(1)}, {key: keyOf(2), rid: ridOf(2)}})
	img, err = intl.MarshalPage()
	if err != nil {
		t.Fatal(err)
	}
	var back2 Node
	if err := back2.UnmarshalPage(img); err != nil {
		t.Fatal(err)
	}
	if back2.leaf || len(back2.children) != 3 || len(back2.seps) != 2 || back2.used != intl.used {
		t.Fatalf("internal round trip mismatch: %+v", back2)
	}
}

func TestScanRangeBounds(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	for i := 0; i < 100; i++ {
		tr.TxnInsert(tl, keyOf(i), ridOf(i))
	}
	var got []string
	tr.ScanRange(keyOf(10), keyOf(19), func(e Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	if len(got) != 10 || got[0] != string(keyOf(10)) || got[9] != string(keyOf(19)) {
		t.Fatalf("range scan = %v", got)
	}
	// Early stop.
	count := 0
	tr.ScanRange(nil, nil, func(e Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestCreateOnNonEmptyFileFails(t *testing.T) {
	fs := vfs.NewMemFS()
	log, _ := wal.Open(fs)
	pool := buffer.New(fs, log, 64)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	if _, err := Create(pool, 7, Config{}, tl); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(pool, 7, Config{}, tl); err == nil {
		t.Fatal("second create on same file should fail")
	}
	if _, err := Open(pool, 8, Config{}); err == nil {
		t.Fatal("open of missing tree should fail")
	}
}

func TestErrTooManyDuplicatesGuard(t *testing.T) {
	// Unique tree with a long pseudo run crossing many leaves.
	_, log, _, tr := newTree(t, true, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	// Build many tombstones under one key value via tombstone inserts.
	for i := 0; i < 500; i++ {
		if _, err := tr.TxnPseudoDelete(tl, []byte("hot"), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := tr.TxnInsert(tl, []byte("hot"), ridOf(9999))
	if !errors.Is(err, ErrTooManyDuplicates) {
		// Either outcome (conflict or guard) is acceptable once the run is
		// bounded; the guard must fire before unbounded work.
		t.Logf("insert over hot run: err=%v (guard may return conflict instead)", err)
	}
}
