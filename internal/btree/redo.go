package btree

import (
	"fmt"

	"onlineindex/internal/buffer"
	"onlineindex/internal/enc"
	"onlineindex/internal/latch"
	"onlineindex/internal/page"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// Redo applies one btree log record during restart recovery. Single-page
// records (entry operations) use the standard PageLSN guard; the multi-page
// split records guard each affected page independently, which is safe
// because the record itself is atomic in the log.
func Redo(pool *buffer.Pool, rec *wal.Record) error {
	switch rec.Type {
	case wal.TypeIdxFormat:
		pl, err := DecodeFormat(rec.Payload)
		if err != nil {
			return err
		}
		var content *Node
		if len(pl.Content) == 0 {
			content = NewLeaf()
		} else {
			content, err = decodeContent(enc.NewReader(pl.Content))
			if err != nil {
				return err
			}
		}
		return redoReplace(pool, rec.PageID, rec.LSN, content)

	case wal.TypeIdxInsert, wal.TypeIdxDelete, wal.TypeIdxPseudoDel, wal.TypeIdxReactivate:
		pl, err := DecodeEntry(rec.Payload)
		if err != nil {
			return err
		}
		return redoEntry(pool, rec, pl)

	case wal.TypeIdxMultiInsert:
		pl, err := DecodeMultiInsert(rec.Payload)
		if err != nil {
			return err
		}
		return withNodeX(pool, rec.PageID, func(f *buffer.Frame, n *Node) error {
			if n.PageLSN() >= rec.LSN {
				return nil
			}
			for _, e := range pl.Entries {
				i, exact := n.searchLeaf(e.Key, e.RID)
				if exact {
					return fmt.Errorf("btree: redo multi-insert LSN %d: entry already present", rec.LSN)
				}
				n.insertEntryAt(i, e)
			}
			f.MarkDirty(rec.LSN)
			return nil
		})

	case wal.TypeIdxInsertNoop:
		return nil // undo-only: nothing to redo

	case wal.TypeIdxSplit:
		pl, err := DecodeSplit(rec.Payload)
		if err != nil {
			return err
		}
		return redoSplit(pool, rec, pl)

	case wal.TypeIdxNewRoot:
		pl, err := DecodeNewRoot(rec.Payload)
		if err != nil {
			return err
		}
		return redoNewRoot(pool, rec, pl)

	default:
		return fmt.Errorf("btree: redo of unexpected record type %s", rec.Type)
	}
}

// withNodeX runs fn with the page pinned and X-latched.
func withNodeX(pool *buffer.Pool, pid types.PageID, fn func(f *buffer.Frame, n *Node) error) error {
	f, err := pool.Fetch(pid)
	if err != nil {
		return err
	}
	defer pool.Unpin(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	n, ok := f.Page().(*Node)
	if !ok {
		return fmt.Errorf("btree: page %s is not a btree node", pid)
	}
	return fn(f, n)
}

// redoReplace formats/replaces the whole page content, creating the page if
// the file was never flushed that far.
func redoReplace(pool *buffer.Pool, pid types.PageID, lsn types.LSN, content *Node) error {
	f, err := pool.FetchOrCreate(pid, func() page.Page { return NewLeaf() }, lsn)
	if err != nil {
		return err
	}
	defer pool.Unpin(f)
	f.Latch.Acquire(latch.X)
	defer f.Latch.Release(latch.X)
	n, ok := f.Page().(*Node)
	if !ok {
		return fmt.Errorf("btree: page %s is not a btree node", pid)
	}
	if n.PageLSN() >= lsn {
		return nil
	}
	hdr := n.Header // keep LSN bookkeeping, then overwrite content
	*n = *content
	n.Header = hdr
	f.MarkDirty(lsn)
	return nil
}

func redoEntry(pool *buffer.Pool, rec *wal.Record, pl EntryPayload) error {
	return withNodeX(pool, rec.PageID, func(f *buffer.Frame, n *Node) error {
		if n.PageLSN() >= rec.LSN {
			return nil
		}
		i, exact := n.searchLeaf(pl.Key, pl.RID)
		switch rec.Type {
		case wal.TypeIdxInsert:
			if exact {
				return fmt.Errorf("btree: redo insert LSN %d: entry already present", rec.LSN)
			}
			n.insertEntryAt(i, Entry{Key: pl.Key, RID: pl.RID, Pseudo: pl.Pseudo})
		case wal.TypeIdxDelete:
			if !exact {
				return fmt.Errorf("btree: redo delete LSN %d: entry missing", rec.LSN)
			}
			n.removeEntryAt(i)
		case wal.TypeIdxPseudoDel:
			if !exact {
				return fmt.Errorf("btree: redo pseudo-delete LSN %d: entry missing", rec.LSN)
			}
			n.entries[i].Pseudo = true
		case wal.TypeIdxReactivate:
			if !exact {
				return fmt.Errorf("btree: redo reactivate LSN %d: entry missing", rec.LSN)
			}
			n.entries[i].Pseudo = false
		}
		f.MarkDirty(rec.LSN)
		return nil
	})
}

func redoSplit(pool *buffer.Pool, rec *wal.Record, pl SplitPayload) error {
	file := rec.PageID.File

	// Right page: create with the logged content.
	rightContent, err := decodeContent(enc.NewReader(pl.RightContent))
	if err != nil {
		return err
	}
	if err := redoReplace(pool, types.PageID{File: file, Page: pl.Right}, rec.LSN, rightContent); err != nil {
		return err
	}

	// Left page: truncate at the keep count.
	err = withNodeX(pool, types.PageID{File: file, Page: pl.Left}, func(f *buffer.Frame, n *Node) error {
		if n.PageLSN() >= rec.LSN {
			return nil
		}
		cut := int(pl.KeepCount)
		if n.leaf {
			if cut > len(n.entries) {
				return fmt.Errorf("btree: redo split LSN %d: keep %d > %d entries", rec.LSN, cut, len(n.entries))
			}
			for _, e := range n.entries[cut:] {
				n.used -= entryBytes(e.Key)
			}
			n.entries = n.entries[:cut]
			n.next = pl.LeftNext
		} else {
			if cut > len(n.seps) {
				return fmt.Errorf("btree: redo split LSN %d: keep %d > %d seps", rec.LSN, cut, len(n.seps))
			}
			for _, s := range n.seps[cut:] {
				n.used -= sepBytes(s.key)
			}
			n.used -= 4 * (len(n.children) - cut - 1)
			n.seps = n.seps[:cut]
			n.children = n.children[:cut+1]
		}
		n.resetPrefix() // no-op uncompressed; rebuilds prefix+used otherwise
		f.MarkDirty(rec.LSN)
		return nil
	})
	if err != nil {
		return err
	}

	// Parent page: insert the promoted separator.
	return withNodeX(pool, types.PageID{File: file, Page: pl.Parent}, func(f *buffer.Frame, n *Node) error {
		if n.PageLSN() >= rec.LSN {
			return nil
		}
		i := n.searchChild(pl.SepKey, pl.SepRID)
		n.insertSepAt(i, sep{key: pl.SepKey, rid: pl.SepRID}, pl.Right)
		f.MarkDirty(rec.LSN)
		return nil
	})
}

func redoNewRoot(pool *buffer.Pool, rec *wal.Record, pl NewRootPayload) error {
	file := rec.PageID.File
	c1, err := decodeContent(enc.NewReader(pl.C1Content))
	if err != nil {
		return err
	}
	if err := redoReplace(pool, types.PageID{File: file, Page: pl.Child1}, rec.LSN, c1); err != nil {
		return err
	}
	c2, err := decodeContent(enc.NewReader(pl.C2Content))
	if err != nil {
		return err
	}
	if err := redoReplace(pool, types.PageID{File: file, Page: pl.Child2}, rec.LSN, c2); err != nil {
		return err
	}
	root, err := decodeContent(enc.NewReader(pl.RootContent))
	if err != nil {
		return err
	}
	return redoReplace(pool, rec.PageID, rec.LSN, root)
}
