package btree

import (
	"fmt"

	"onlineindex/internal/buffer"
	"onlineindex/internal/enc"
	"onlineindex/internal/latch"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// makeRoom performs the structure modifications needed for the leaf covering
// (key, rid) to absorb one more entry of that key size. It runs under the
// exclusive tree latch, so no other operation is in the tree; the caller
// retries its insert afterwards.
//
// Each iteration splits exactly one node: the lowest node on the path that
// needs splitting and whose parent can absorb the promoted separator (or the
// root, which grows by copying itself into two children). Splits are logged
// as single redo-only records covering every page they touch, which makes
// them atomic with respect to durability (see SplitPayload) — they are never
// undone, matching the paper's treatment of page splits as nested top
// actions.
//
// ibMode selects the index builder's specialised split (§2.3.1): instead of
// moving half the entries, only the keys *higher* than IB's insert position
// move to the new leaf, so keys previously inserted by transactions are not
// shuffled through "a large number of leaf pages" and the resulting tree
// approaches bottom-up clustering.
func (t *Tree) makeRoom(tl rm.TxnLogger, key []byte, rid types.RID, ibMode bool) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	for iter := 0; ; iter++ {
		if iter > 128 {
			return fmt.Errorf("btree: makeRoom did not converge")
		}
		// Collect the root-to-leaf path. No page latches are needed: the
		// exclusive tree latch excludes every other tree operation, and the
		// per-node mutations below are wrapped in X latches only to keep
		// the buffer pool's flusher from marshalling a half-mutated page.
		var frames []*buffer.Frame
		var nodes []*Node
		release := func() {
			for _, f := range frames {
				t.pool.Unpin(f)
			}
		}
		f, err := t.pool.Fetch(t.pid(RootPage))
		if err != nil {
			return err
		}
		frames = append(frames, f)
		nodes = append(nodes, f.Page().(*Node))
		for !nodes[len(nodes)-1].leaf {
			n := nodes[len(nodes)-1]
			child := n.children[n.searchChild(key, rid)]
			cf, err := t.pool.Fetch(t.pid(child))
			if err != nil {
				release()
				return err
			}
			frames = append(frames, cf)
			nodes = append(nodes, cf.Page().(*Node))
		}
		leaf := nodes[len(nodes)-1]
		if leaf.hasRoomEntry(key, t.budget) {
			release()
			return nil
		}

		// Find the lowest node that must split and can: walk up from the
		// leaf while the parent cannot absorb the separator the split would
		// promote.
		level := len(nodes) - 1
		var promoted sep
		for {
			promoted = t.splitPromotes(nodes[level], key, rid, ibMode && nodes[level].leaf)
			if level == 0 {
				break // root split: no parent to worry about
			}
			if nodes[level-1].hasRoomSep(promoted.key, t.budget) {
				break
			}
			level--
		}

		if level == 0 {
			err = t.splitRoot(tl, frames[0], nodes[0], key, rid, ibMode)
		} else {
			err = t.splitChild(tl, frames[level-1], nodes[level-1], frames[level], nodes[level], promoted, key, rid, ibMode)
		}
		release()
		if err != nil {
			return err
		}
	}
}

// splitPlan returns the cut position for splitting node n to make room for
// (key, rid). For leaves in ibMode the cut is the insert position itself —
// unless that position is 0: cutting there moves every entry to the right
// node, which the pending key (equal to the promoted separator) then
// descends into, still full — no progress, makeRoom loops forever. That
// arises when IB's key sorts below everything in the leaf, e.g. a leaf
// holding only transaction-made tombstones for higher seed keys; use the
// ordinary median split instead, which frees space on the left side the
// pending key descends into.
func (t *Tree) splitPlan(n *Node, key []byte, rid types.RID, ibLeaf bool) int {
	if n.leaf {
		pos, _ := n.searchLeaf(key, rid)
		if ibLeaf && pos > 0 {
			return pos
		}
		cut := len(n.entries) / 2
		if cut == 0 && len(n.entries) > 0 {
			cut = 1
		}
		return cut
	}
	cut := len(n.seps) / 2
	if cut >= len(n.seps) {
		cut = len(n.seps) - 1
	}
	return cut
}

// splitPromotes returns the separator a split of n would promote.
func (t *Tree) splitPromotes(n *Node, key []byte, rid types.RID, ibLeaf bool) sep {
	cut := t.splitPlan(n, key, rid, ibLeaf)
	if n.leaf {
		pos, _ := n.searchLeaf(key, rid)
		if pos >= cut {
			// The pending entry will land in the right node; the separator
			// must not exceed it.
			if cut == len(n.entries) || CompareEntry(key, rid, n.entries[cut].Key, n.entries[cut].RID) < 0 {
				return sep{key: key, rid: rid}
			}
		}
		return sep{key: n.entries[cut].Key, rid: n.entries[cut].RID}
	}
	return n.seps[cut]
}

// splitChild splits node `child` (which has a parent with room), promoting
// `promoted` into the parent, and logs the whole modification as one record.
func (t *Tree) splitChild(tl rm.TxnLogger, pf *buffer.Frame, parent *Node, cf *buffer.Frame, child *Node, promoted sep, key []byte, rid types.RID, ibMode bool) error {
	cut := t.splitPlan(child, key, rid, ibMode && child.leaf)

	right := t.buildRight(child, cut)
	rf, err := t.pool.NewPage(t.file, right)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(rf)

	// Log first (single atomic record), then mutate.
	rcw := enc.NewWriter()
	right.encodeContent(rcw)
	pl := SplitPayload{
		Left:         cf.ID.Page,
		KeepCount:    uint32(cut),
		LeftNext:     rf.ID.Page,
		Right:        rf.ID.Page,
		RightContent: rcw.Bytes(),
		Parent:       pf.ID.Page,
		SepKey:       promoted.key,
		SepRID:       promoted.rid,
	}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxSplit, Flags: wal.FlagRedo,
		PageID: cf.ID, Payload: pl.Encode(),
	})
	if err != nil {
		return err
	}

	t.truncateLeft(cf, child, cut, rf.ID.Page, lsn)
	rf.MarkDirty(lsn)
	t.applyParentAdd(pf, parent, promoted, rf.ID.Page, lsn)
	t.Stats.Splits.Add(1)
	t.met.Splits.Inc()
	return nil
}

// buildRight constructs the right node of a split of n at cut (without
// mutating n).
func (t *Tree) buildRight(n *Node, cut int) *Node {
	if n.leaf {
		right := NewLeaf()
		right.comp = n.comp
		right.next = n.next
		for _, e := range n.entries[cut:] {
			right.entries = append(right.entries, Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo})
			right.used += entryBytes(e.Key)
		}
		right.resetPrefix() // no-op uncompressed; recomputes prefix+used otherwise
		return right
	}
	children := append([]types.PageNum(nil), n.children[cut+1:]...)
	seps := make([]sep, 0, len(n.seps)-cut-1)
	for _, s := range n.seps[cut+1:] {
		seps = append(seps, sep{key: append([]byte(nil), s.key...), rid: s.rid})
	}
	return NewInternalWith(children, seps, n.comp)
}

// truncateLeft applies the left half of a split to the existing node.
func (t *Tree) truncateLeft(f *buffer.Frame, n *Node, cut int, next types.PageNum, lsn types.LSN) {
	f.Latch.Acquire(latch.X)
	if n.leaf {
		for _, e := range n.entries[cut:] {
			n.used -= entryBytes(e.Key)
		}
		n.entries = n.entries[:cut]
		n.next = next
	} else {
		for _, s := range n.seps[cut:] {
			n.used -= sepBytes(s.key)
		}
		n.used -= 4 * (len(n.children) - cut - 1)
		n.seps = n.seps[:cut]
		n.children = n.children[:cut+1]
	}
	n.resetPrefix() // no-op uncompressed; rebuilds prefix+used otherwise
	f.MarkDirty(lsn)
	f.Latch.Release(latch.X)
}

// applyParentAdd inserts (promoted, rightChild) into the parent.
func (t *Tree) applyParentAdd(f *buffer.Frame, parent *Node, promoted sep, right types.PageNum, lsn types.LSN) {
	f.Latch.Acquire(latch.X)
	i := parent.searchChild(promoted.key, promoted.rid)
	parent.insertSepAt(i, promoted, right)
	f.MarkDirty(lsn)
	f.Latch.Release(latch.X)
}

// splitRoot grows the tree by one level: the root's content is copied into
// two new children and the root becomes an internal node over them, so the
// root page number never changes ("the next two index pages are allocated
// with one of them becoming the new root", §2.3.1 — anchored at page 0 in
// this implementation).
func (t *Tree) splitRoot(tl rm.TxnLogger, rootF *buffer.Frame, root *Node, key []byte, rid types.RID, ibMode bool) error {
	cut := t.splitPlan(root, key, rid, ibMode && root.leaf)
	promoted := t.splitPromotes(root, key, rid, ibMode && root.leaf)

	right := t.buildRight(root, cut)
	var left *Node
	if root.leaf {
		left = NewLeaf()
		left.comp = root.comp
		for _, e := range root.entries[:cut] {
			left.entries = append(left.entries, Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo})
			left.used += entryBytes(e.Key)
		}
		left.resetPrefix()
	} else {
		children := append([]types.PageNum(nil), root.children[:cut+1]...)
		seps := make([]sep, 0, cut)
		for _, s := range root.seps[:cut] {
			seps = append(seps, sep{key: append([]byte(nil), s.key...), rid: s.rid})
		}
		left = NewInternalWith(children, seps, root.comp)
	}

	lf, err := t.pool.NewPage(t.file, left)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(lf)
	rfr, err := t.pool.NewPage(t.file, right)
	if err != nil {
		return err
	}
	defer t.pool.Unpin(rfr)
	if left.leaf {
		left.next = rfr.ID.Page
		// right.next already carries the old root's next (NoPage for a root
		// leaf).
	}

	newRoot := NewInternalWith(
		[]types.PageNum{lf.ID.Page, rfr.ID.Page},
		[]sep{{key: append([]byte(nil), promoted.key...), rid: promoted.rid}},
		root.comp,
	)

	lw, rw, nw := enc.NewWriter(), enc.NewWriter(), enc.NewWriter()
	left.encodeContent(lw)
	right.encodeContent(rw)
	newRoot.encodeContent(nw)
	pl := NewRootPayload{
		RootContent: nw.Bytes(),
		Child1:      lf.ID.Page, C1Content: lw.Bytes(),
		Child2: rfr.ID.Page, C2Content: rw.Bytes(),
	}
	lsn, err := tl.Log(&wal.Record{
		Type: wal.TypeIdxNewRoot, Flags: wal.FlagRedo,
		PageID: rootF.ID, Payload: pl.Encode(),
	})
	if err != nil {
		return err
	}

	lf.MarkDirty(lsn)
	rfr.MarkDirty(lsn)
	rootF.Latch.Acquire(latch.X)
	*root = *newRoot
	rootF.MarkDirty(lsn)
	rootF.Latch.Release(latch.X)
	t.Stats.Splits.Add(1)
	t.Stats.RootSplits.Add(1)
	t.met.Splits.Inc()
	t.met.RootSplits.Inc()
	return nil
}
