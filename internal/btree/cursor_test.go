package btree

import (
	"bytes"
	"math/rand"
	"testing"

	"onlineindex/internal/rm"
	"onlineindex/internal/types"
)

// drain pulls the cursor dry and returns its entries.
func drain(t *testing.T, c *Cursor) []Entry {
	t.Helper()
	var out []Entry
	for {
		e, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

func TestCursorMatchesScanRange(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 700
	for _, i := range rand.New(rand.NewSource(3)).Perm(n) {
		if _, _, err := tr.TxnInsert(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Pseudo-delete a scattering so the cursor sees both entry states.
	for i := 0; i < n; i += 5 {
		if _, err := tr.TxnPseudoDelete(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	bounds := [][2][]byte{
		{nil, nil},
		{keyOf(100), keyOf(400)},
		{keyOf(0), keyOf(0)},
		{nil, keyOf(250)},
		{keyOf(650), nil},
		{keyOf(699), keyOf(699)},
		{keyOf(n + 50), nil}, // empty range past the end
	}
	for _, b := range bounds {
		lo, hi := b[0], b[1]
		var want []Entry
		if err := tr.ScanRange(lo, hi, func(e Entry) bool {
			want = append(want, e)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 3, 1000} {
			c := tr.NewCursor(lo, hi)
			c.SetBatch(batch, 2)
			got := drain(t, c)
			if len(got) != len(want) {
				t.Fatalf("bounds %q..%q batch %d: cursor %d entries, ScanRange %d",
					lo, hi, batch, len(got), len(want))
			}
			for i := range got {
				if !bytes.Equal(got[i].Key, want[i].Key) || got[i].RID != want[i].RID || got[i].Pseudo != want[i].Pseudo {
					t.Fatalf("bounds %q..%q batch %d entry %d: got %+v want %+v",
						lo, hi, batch, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCursorSurvivesSplitsBetweenBatches interleaves refills with inserts
// that split leaves ahead of, behind and at the scan position: the cursor
// must still return every original entry exactly once, in order.
func TestCursorSurvivesSplitsBetweenBatches(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 400
	for i := 0; i < n; i += 2 { // even ids seed the tree
		if _, _, err := tr.TxnInsert(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil, nil)
	c.SetBatch(7, 1)
	seen := make(map[string]bool)
	fill := 1 // odd ids are inserted while the scan runs
	for {
		e, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[string(e.Key)] {
			t.Fatalf("entry %q returned twice", e.Key)
		}
		seen[string(e.Key)] = true
		// Two inserts per returned entry keep splits happening around the
		// scan position for the whole run.
		for j := 0; j < 2 && fill < n; j++ {
			if _, _, err := tr.TxnInsert(tl, keyOf(fill), ridOf(fill)); err != nil {
				t.Fatal(err)
			}
			fill += 2
		}
	}
	for i := 0; i < n; i += 2 {
		if !seen[string(keyOf(i))] {
			t.Fatalf("seed entry %d missing from the cursor scan", i)
		}
	}
	checkInvariants(t, tr)
}

// TestCursorResumeAfterEntryRemoval removes the cursor's exact resume entry
// between batches (what GC does); the scan must continue at the next entry
// without skipping or repeating.
func TestCursorResumeAfterEntryRemoval(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 60
	for i := 0; i < n; i++ {
		if _, _, err := tr.TxnInsert(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(nil, nil)
	c.SetBatch(1, 1) // resume descent after every single entry
	var got []int
	for i := 0; ; i++ {
		e, ok, err := c.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, len(got))
		_ = e
		// Physically remove the entry just returned: the next refill's
		// resume position no longer exists in the tree.
		if _, err := tr.RemoveEntry(tl, e.Key, e.RID); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != n {
		t.Fatalf("cursor returned %d entries, want %d", len(got), n)
	}
	live, pseudo, err := tr.CountEntries()
	if err != nil || live != 0 || pseudo != 0 {
		t.Fatalf("tree not empty after removals: live=%d pseudo=%d err=%v", live, pseudo, err)
	}
}

// TestCursorBoundsEmptyLeafCrawl empties a wide middle region of the tree
// (what GC of pseudo-deleted entries produces: entry-less leaves that stay in
// the chain) and scans across it with a tiny leaf cap. The scan must cross
// the region in many bounded refills — never one unbounded latched crawl —
// and still return exactly the surviving entries, in order. A fully emptied
// tail checks the crawl still terminates at end-of-chain.
func TestCursorBoundsEmptyLeafCrawl(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	const n = 600
	for i := 0; i < n; i++ {
		if _, _, err := tr.TxnInsert(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 550; i++ {
		if _, err := tr.RemoveEntry(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Stats.ScanResumes.Load()
	c := tr.NewCursor(nil, nil)
	c.SetBatch(1000, 2) // leaf cap 2: the empty region must take many refills
	got := drain(t, c)
	var want []int
	for i := 0; i < 50; i++ {
		want = append(want, i)
	}
	for i := 550; i < n; i++ {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("scan over emptied region returned %d entries, want %d", len(got), len(want))
	}
	for i, id := range want {
		if !bytes.Equal(got[i].Key, keyOf(id)) {
			t.Fatalf("entry %d: got key %q want %q", i, got[i].Key, keyOf(id))
		}
	}
	resumes := tr.Stats.ScanResumes.Load() - before
	if resumes < 3 {
		t.Fatalf("emptied region crossed in %d refills; the crawl was not chunked", resumes)
	}

	// Empty the tail too: the capped crawl must hit end-of-chain and stop.
	for i := 550; i < n; i++ {
		if _, err := tr.RemoveEntry(tl, keyOf(i), ridOf(i)); err != nil {
			t.Fatal(err)
		}
	}
	c = tr.NewCursor(keyOf(50), nil)
	c.SetBatch(1000, 2)
	if tail := drain(t, c); len(tail) != 0 {
		t.Fatalf("scan of emptied tail returned %d entries, want 0", len(tail))
	}
	checkInvariants(t, tr)
}

func ridAt(file types.FileID, i int) types.RID {
	return types.RID{PageID: types.PageID{File: file, Page: types.PageNum(i / 16)}, Slot: types.SlotNum(i % 16)}
}

// TestCursorNonUniqueKeyRun scans a single key value with many RIDs across
// leaf boundaries.
func TestCursorNonUniqueKeyRun(t *testing.T) {
	_, log, _, tr := newTree(t, false, smallBudget)
	tl := &rm.SimpleLogger{L: log, Txn: 1}
	key := []byte("dup-key-0000000000000000000000000000")
	const n = 120
	for i := 0; i < n; i++ {
		if _, _, err := tr.TxnInsert(tl, key, ridAt(99, i)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.NewCursor(key, key)
	c.SetBatch(4, 1)
	got := drain(t, c)
	if len(got) != n {
		t.Fatalf("key run scan returned %d entries, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].RID.Compare(got[i].RID) >= 0 {
			t.Fatalf("key run out of RID order at %d: %v then %v", i, got[i-1].RID, got[i].RID)
		}
	}
}
