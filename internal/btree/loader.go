package btree

import (
	"fmt"

	"onlineindex/internal/buffer"
	"onlineindex/internal/enc"
	"onlineindex/internal/latch"
	"onlineindex/internal/types"
)

// Loader builds the tree bottom-up from an ascending entry stream, the way
// the SF algorithm's index builder does (§3.2.4): no logging, no tree
// traversals, new pages allocated sequentially from the start of the file so
// "a clustered index scan would be possible". Durability comes from the
// loader's own checkpoints (flush the index file, record LoaderState), and
// restart truncates the file back to the checkpoint so "the keys higher than
// the checkpointed key disappear from the index".
//
// The loader assumes exclusive ownership of the tree: in SF, transactions
// never touch the index while IB is active (their changes go to the
// side-file). Page mutations still take the page X latch so a concurrent
// buffer-pool flush never marshals a half-mutated page.
type Loader struct {
	t          *Tree
	fillBudget int
	comp       bool            // build prefix-compressed pages
	levels     []*buffer.Frame // pinned current (rightmost) node per level; 0 = leaf
	count      uint64
	high       Entry
	finished   bool
}

// NewLoader starts a bottom-up load of an empty tree. fill is the fraction
// of each node to use before starting a new one ("the proper amount of
// desired free space ... is left in the leaf pages", §2.2.3); 0 means 0.9.
func (t *Tree) NewLoader(fill float64) *Loader {
	return t.NewLoaderWith(fill, false)
}

// NewLoaderWith is NewLoader with per-page prefix key compression
// selectable: every leaf and branch page the loader creates then stores its
// keys truncated against a per-page common prefix, which widens fanout (the
// sorted stream gives adjacent keys long shared prefixes). The merge's
// output stream is thus re-delta'd at page granularity as it loads.
func (t *Tree) NewLoaderWith(fill float64, compress bool) *Loader {
	if fill <= 0 || fill > 1 {
		fill = 0.9
	}
	fb := int(fill * float64(t.budget))
	if fb < 256 {
		fb = 256
	}
	return &Loader{t: t, fillBudget: fb, comp: compress}
}

// Count returns the number of entries added so far.
func (ld *Loader) Count() uint64 { return ld.count }

// HighestKey returns the highest entry added so far (valid when Count > 0).
func (ld *Loader) HighestKey() Entry { return ld.high }

// Add appends the next entry, which must be >= every entry added before.
func (ld *Loader) Add(e Entry) error {
	if ld.finished {
		return fmt.Errorf("btree: loader already finished")
	}
	if ld.count > 0 && CompareEntry(e.Key, e.RID, ld.high.Key, ld.high.RID) < 0 {
		return fmt.Errorf("btree: loader entries out of order: %x < %x", e.Key, ld.high.Key)
	}
	if ld.count > 0 && CompareEntry(e.Key, e.RID, ld.high.Key, ld.high.RID) == 0 {
		return nil // duplicate from a restarted sort merge; idempotent
	}
	if len(ld.levels) == 0 {
		f, err := ld.t.pool.NewPage(ld.t.file, NewLeafWith(ld.comp))
		if err != nil {
			return err
		}
		ld.t.pool.MarkDirtyUnlogged(f)
		ld.levels = append(ld.levels, f)
	}
	lf := ld.levels[0]
	if !lf.Page().(*Node).hasRoomEntry(e.Key, ld.fillBudget) {
		nf, err := ld.t.pool.NewPage(ld.t.file, NewLeafWith(ld.comp))
		if err != nil {
			return err
		}
		ld.t.pool.MarkDirtyUnlogged(nf)
		mutate(ld.t.pool, lf, func(n *Node) { n.next = nf.ID.Page })
		ld.t.pool.Unpin(lf)
		ld.levels[0] = nf
		if err := ld.addSep(1, sep{key: e.Key, rid: e.RID}, nf.ID.Page, lf.ID.Page); err != nil {
			return err
		}
		lf = nf
	}
	mutate(ld.t.pool, lf, func(n *Node) {
		n.insertEntryAt(len(n.entries), Entry{Key: e.Key, RID: e.RID, Pseudo: e.Pseudo})
	})
	ld.count++
	ld.high = Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo}
	return nil
}

// AddBatch appends a run of ascending entries. Equivalent to calling Add
// per entry, but consecutive entries that land in the same leaf are
// inserted under one latch acquisition — the hand-off granularity of the
// overlapped merge→load path makes the per-entry latch traffic visible
// otherwise.
func (ld *Loader) AddBatch(es []Entry) error {
	for i := 0; i < len(es); {
		// The batch's first entry (and each one that opens a new leaf) goes
		// through Add: leaf creation and separator propagation stay in one
		// place.
		if err := ld.Add(es[i]); err != nil {
			return err
		}
		i++
		if i >= len(es) || len(ld.levels) == 0 {
			continue
		}
		var batchErr error
		mutate(ld.t.pool, ld.levels[0], func(n *Node) {
			for i < len(es) {
				e := es[i]
				c := CompareEntry(e.Key, e.RID, ld.high.Key, ld.high.RID)
				if c < 0 {
					batchErr = fmt.Errorf("btree: loader entries out of order: %x < %x", e.Key, ld.high.Key)
					return
				}
				if c == 0 {
					i++ // duplicate from a restarted sort merge; idempotent
					continue
				}
				if !n.hasRoomEntry(e.Key, ld.fillBudget) {
					return // next Add opens a fresh leaf
				}
				n.insertEntryAt(len(n.entries), Entry{Key: e.Key, RID: e.RID, Pseudo: e.Pseudo})
				ld.count++
				ld.high = Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo}
				i++
			}
		})
		if batchErr != nil {
			return batchErr
		}
	}
	return nil
}

// addSep pushes a separator into level `level`, creating the level (with
// left as its first child) if it does not exist yet.
func (ld *Loader) addSep(level int, s sep, right, left types.PageNum) error {
	if level == len(ld.levels) {
		f, err := ld.t.pool.NewPage(ld.t.file, NewInternalWith([]types.PageNum{left}, nil, ld.comp))
		if err != nil {
			return err
		}
		ld.t.pool.MarkDirtyUnlogged(f)
		ld.levels = append(ld.levels, f)
	}
	f := ld.levels[level]
	node := f.Page().(*Node)
	if !node.hasRoomSep(s.key, ld.fillBudget) {
		nf, err := ld.t.pool.NewPage(ld.t.file, NewInternalWith([]types.PageNum{right}, nil, ld.comp))
		if err != nil {
			return err
		}
		// The separator goes up a level, not into nf: if no later separator
		// lands at this level, nf's single-child content would otherwise
		// never be marked dirty and a clean eviction would lose it.
		ld.t.pool.MarkDirtyUnlogged(nf)
		ld.t.pool.Unpin(f)
		ld.levels[level] = nf
		return ld.addSep(level+1, s, nf.ID.Page, f.ID.Page)
	}
	mutate(ld.t.pool, f, func(n *Node) {
		n.insertSepAt(len(n.seps), s, right)
	})
	return nil
}

// mutate applies fn to the frame's node under its X latch and marks it dirty
// without logging.
func mutate(pool *buffer.Pool, f *buffer.Frame, fn func(n *Node)) {
	f.Latch.Acquire(latch.X)
	fn(f.Page().(*Node))
	pool.MarkDirtyUnlogged(f)
	f.Latch.Release(latch.X)
}

// Finish completes the load: the top node's content is copied into the
// anchored root page. The loader's frames are unpinned. The caller logs the
// index state transition and flushes the file.
func (ld *Loader) Finish() error {
	if ld.finished {
		return nil
	}
	ld.finished = true
	defer func() {
		for _, f := range ld.levels {
			ld.t.pool.Unpin(f)
		}
		ld.levels = nil
	}()
	if len(ld.levels) == 0 {
		return nil // empty table: root stays an empty leaf
	}
	top := ld.levels[len(ld.levels)-1].Page().(*Node)
	rootF, err := ld.t.pool.Fetch(ld.t.pid(RootPage))
	if err != nil {
		return err
	}
	defer ld.t.pool.Unpin(rootF)
	rootF.Latch.Acquire(latch.X)
	root := rootF.Page().(*Node)
	hdr := root.Header
	w := enc.NewWriter()
	top.encodeContent(w)
	clone, err := decodeContent(enc.NewReader(w.Bytes()))
	if err != nil {
		rootF.Latch.Release(latch.X)
		return err
	}
	*root = *clone
	root.Header = hdr
	ld.t.pool.MarkDirtyUnlogged(rootF)
	rootF.Latch.Release(latch.X)
	return nil
}

// LoaderState is a restartable-build checkpoint (§3.2.4): "periodically, IB
// can checkpoint the highest key inserted into the index and the page-IDs of
// the rightmost branch of the index. This checkpointing to stable storage is
// done after all the dirty pages of the index have been written to disk."
type LoaderState struct {
	Count      uint64
	High       Entry
	PageCount  types.PageNum
	LevelPages []types.PageNum
}

// Encode serializes the state for the IB checkpoint record.
func (s *LoaderState) Encode() []byte {
	w := enc.NewWriter().U64(s.Count).Bytes32(s.High.Key).RID(s.High.RID).Bool(s.High.Pseudo).
		U32(uint32(s.PageCount)).U32(uint32(len(s.LevelPages)))
	for _, p := range s.LevelPages {
		w.U32(uint32(p))
	}
	return w.Bytes()
}

// DecodeLoaderState parses a LoaderState.
func DecodeLoaderState(b []byte) (LoaderState, error) {
	r := enc.NewReader(b)
	s := LoaderState{
		Count:     r.U64(),
		High:      Entry{Key: r.Bytes32(), RID: r.RID(), Pseudo: r.Bool()},
		PageCount: types.PageNum(r.U32()),
	}
	n := int(r.U32())
	for i := 0; i < n; i++ {
		s.LevelPages = append(s.LevelPages, types.PageNum(r.U32()))
	}
	return s, r.Err()
}

// Checkpoint flushes the index file and returns the restartable state.
func (ld *Loader) Checkpoint() (LoaderState, error) {
	if err := ld.t.pool.FlushFile(ld.t.file); err != nil {
		return LoaderState{}, err
	}
	pc, err := ld.t.pool.PageCount(ld.t.file)
	if err != nil {
		return LoaderState{}, err
	}
	st := LoaderState{Count: ld.count, High: ld.high, PageCount: pc}
	for _, f := range ld.levels {
		st.LevelPages = append(st.LevelPages, f.ID.Page)
	}
	return st, nil
}

// RestartLoader resumes a bottom-up load from a checkpoint after a crash:
// pages allocated after the checkpoint are deallocated (file truncation) and
// entries above the checkpointed highest key are stripped from the surviving
// rightmost branch, so the tree is exactly as it was at Checkpoint time.
// Feeding the sorted stream from just after State.High continues the build.
func (t *Tree) RestartLoader(st LoaderState, fill float64) (*Loader, error) {
	return t.RestartLoaderWith(st, fill, false)
}

// RestartLoaderWith is RestartLoader for a build that may have been running
// with key compression. The flag seeds the loader, but the surviving pages
// are authoritative: once the checkpointed rightmost branch is fetched, the
// loader adopts the compression bit recorded on those pages, so a resume
// cannot mix compressed and uncompressed pages within one build.
func (t *Tree) RestartLoaderWith(st LoaderState, fill float64, compress bool) (*Loader, error) {
	if err := t.pool.TruncateFile(t.file, st.PageCount); err != nil {
		return nil, err
	}
	ld := t.NewLoaderWith(fill, compress)
	ld.count = st.Count
	ld.high = st.High
	for level, pg := range st.LevelPages {
		f, err := t.pool.Fetch(t.pid(pg))
		if err != nil {
			return nil, err
		}
		f.Latch.Acquire(latch.X)
		n, ok := f.Page().(*Node)
		if !ok {
			f.Latch.Release(latch.X)
			t.pool.Unpin(f)
			return nil, fmt.Errorf("btree: restart: page %d is not a node", pg)
		}
		if level == 0 {
			ld.comp = n.comp // pages on disk win over the caller's flag
			for len(n.entries) > 0 {
				last := n.entries[len(n.entries)-1]
				if CompareEntry(last.Key, last.RID, st.High.Key, st.High.RID) <= 0 {
					break
				}
				n.removeEntryAt(len(n.entries) - 1)
			}
			n.next = NoPage
		} else {
			for len(n.seps) > 0 {
				last := n.seps[len(n.seps)-1]
				if CompareEntry(last.key, last.rid, st.High.Key, st.High.RID) <= 0 &&
					n.children[len(n.children)-1] < st.PageCount {
					break
				}
				n.used -= sepBytes(last.key) + 4
				n.seps = n.seps[:len(n.seps)-1]
				n.children = n.children[:len(n.children)-1]
			}
			if n.children[len(n.children)-1] >= st.PageCount {
				f.Latch.Release(latch.X)
				t.pool.Unpin(f)
				return nil, fmt.Errorf("btree: restart: level %d still references truncated page", level)
			}
		}
		n.resetPrefix() // no-op uncompressed; rebuilds prefix+used otherwise
		t.pool.MarkDirtyUnlogged(f)
		f.Latch.Release(latch.X)
		ld.levels = append(ld.levels, f)
	}
	return ld, nil
}
