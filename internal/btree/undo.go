package btree

import (
	"fmt"

	"onlineindex/internal/latch"
	"onlineindex/internal/rm"
	"onlineindex/internal/types"
	"onlineindex/internal/wal"
)

// Undo operations are logical: they re-traverse the tree from the root
// because the entry may have moved to a different page since the original
// operation (splits are never undone, so the entry still exists somewhere).
// Each undo writes a redo-only compensation log record whose UndoNextLSN is
// the original record's PrevLSN.

// UndoInsert compensates a TypeIdxInsert record.
//
//   - A regular insert (Pseudo=false) is undone by marking the entry
//     pseudo-deleted, exactly as the paper's example step 6 ("T1 rolls back;
//     T1 marks the key as being pseudo-deleted"): physical removal is left to
//     GC so a racing IB extraction is still rejected later.
//   - A tombstone insert (Pseudo=true, written by a deleter that did not find
//     the key) is undone by *reactivating* the entry: "in case the
//     transaction were to roll back, then the key will be reactivated (i.e.,
//     put in the inserted state)".
func (t *Tree) UndoInsert(tl rm.TxnLogger, pl EntryPayload, undoNext types.LSN) error {
	if pl.Pseudo {
		return t.undoSetFlag(tl, pl.Key, pl.RID, false, wal.TypeIdxReactivate, undoNext)
	}
	return t.undoSetFlag(tl, pl.Key, pl.RID, true, wal.TypeIdxPseudoDel, undoNext)
}

// UndoInsertNoop compensates a TypeIdxInsertNoop record: the transaction did
// not insert the key (IB had), but its rollback must still remove it —
// "without that log record, the transaction will not remove the key from the
// index and that would be wrong" (§2.1.1). The removal is a pseudo-delete,
// like the undo of a real insert.
func (t *Tree) UndoInsertNoop(tl rm.TxnLogger, pl EntryPayload, undoNext types.LSN) error {
	return t.undoSetFlag(tl, pl.Key, pl.RID, true, wal.TypeIdxPseudoDel, undoNext)
}

// UndoPseudoDelete compensates a TypeIdxPseudoDel record by reactivating the
// entry ("the rollback processing of the deleter would ... place the key in
// the inserted state", §2.2.3).
func (t *Tree) UndoPseudoDelete(tl rm.TxnLogger, pl EntryPayload, undoNext types.LSN) error {
	return t.undoSetFlag(tl, pl.Key, pl.RID, false, wal.TypeIdxReactivate, undoNext)
}

// UndoReactivate compensates a TypeIdxReactivate record by restoring the
// pseudo-deleted state.
func (t *Tree) UndoReactivate(tl rm.TxnLogger, pl EntryPayload, undoNext types.LSN) error {
	return t.undoSetFlag(tl, pl.Key, pl.RID, true, wal.TypeIdxPseudoDel, undoNext)
}

// undoSetFlag sets the pseudo flag of the exact entry to `pseudo`, writing a
// CLR of the given type.
func (t *Tree) undoSetFlag(tl rm.TxnLogger, key []byte, rid types.RID, pseudo bool, clrType wal.RecType, undoNext types.LSN) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(key, rid, latch.X)
	if err != nil {
		return err
	}
	defer t.release(f, latch.X)
	i, exact := n.searchLeaf(key, rid)
	if !exact {
		return fmt.Errorf("btree: undo (%s): entry <%x,%s> missing", clrType, key, rid)
	}
	pl := EntryPayload{Key: key, RID: rid}
	lsn, err := tl.LogCLR(&wal.Record{
		Type: clrType, Flags: wal.FlagRedo,
		PageID: f.ID, Payload: pl.Encode(),
	}, undoNext)
	if err != nil {
		return err
	}
	n.entries[i].Pseudo = pseudo
	f.MarkDirty(lsn)
	if pseudo {
		t.Stats.PseudoDeletes.Add(1)
		t.met.PseudoDeleted.Inc()
	} else {
		t.Stats.Reactivates.Add(1)
		t.met.PseudoDeleted.Dec()
	}
	return nil
}

// UndoRemoveEntry compensates a TypeIdxDelete record (a physical removal by
// GC, ReplaceRID or a rolled-back utility) by re-inserting the entry in its
// recorded state. The re-insert may need a split.
func (t *Tree) UndoRemoveEntry(tl rm.TxnLogger, pl EntryPayload, undoNext types.LSN) error {
	for attempt := 0; ; attempt++ {
		if attempt > 64 {
			return fmt.Errorf("btree: undo remove retry livelock")
		}
		done, err := func() (bool, error) {
			t.mu.RLock()
			defer t.mu.RUnlock()
			f, n, err := t.descend(pl.Key, pl.RID, latch.X)
			if err != nil {
				return false, err
			}
			defer t.release(f, latch.X)
			i, exact := n.searchLeaf(pl.Key, pl.RID)
			if exact {
				return false, fmt.Errorf("btree: undo remove: entry <%x,%s> already present", pl.Key, pl.RID)
			}
			if !n.hasRoomEntry(pl.Key, t.budget) {
				return false, nil
			}
			clr := EntryPayload{Key: pl.Key, RID: pl.RID, Pseudo: pl.Pseudo}
			lsn, err := tl.LogCLR(&wal.Record{
				Type: wal.TypeIdxInsert, Flags: wal.FlagRedo,
				PageID: f.ID, Payload: clr.Encode(),
			}, undoNext)
			if err != nil {
				return false, err
			}
			n.insertEntryAt(i, Entry{Key: pl.Key, RID: pl.RID, Pseudo: pl.Pseudo})
			f.MarkDirty(lsn)
			if pl.Pseudo {
				t.met.PseudoDeleted.Inc()
			}
			return true, nil
		}()
		if err != nil || done {
			return err
		}
		if err := t.makeRoom(tl, pl.Key, pl.RID, false); err != nil {
			return err
		}
	}
}

// UndoMultiInsert compensates a TypeIdxMultiInsert record (the NSF index
// builder's batch). IB's uncommitted inserts are its own — no committed
// transaction can depend on them, because any transaction that found one of
// these entries logged its own undo-only record and IB re-inserts the keys
// after the last checkpoint on restart — so the undo removes them
// physically, one CLR per entry (all sharing the original record's PrevLSN
// as UndoNext).
func (t *Tree) UndoMultiInsert(tl rm.TxnLogger, pl MultiInsertPayload, undoNext types.LSN) error {
	for _, e := range pl.Entries {
		if err := t.undoRemovePhysical(tl, e.Key, e.RID, undoNext); err != nil {
			return err
		}
	}
	return nil
}

func (t *Tree) undoRemovePhysical(tl rm.TxnLogger, key []byte, rid types.RID, undoNext types.LSN) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	f, n, err := t.descend(key, rid, latch.X)
	if err != nil {
		return err
	}
	defer t.release(f, latch.X)
	i, exact := n.searchLeaf(key, rid)
	if !exact {
		return fmt.Errorf("btree: undo multi-insert: entry <%x,%s> missing", key, rid)
	}
	wasPseudo := n.entries[i].Pseudo
	pl := EntryPayload{Key: key, RID: rid, Pseudo: wasPseudo}
	lsn, err := tl.LogCLR(&wal.Record{
		Type: wal.TypeIdxDelete, Flags: wal.FlagRedo,
		PageID: f.ID, Payload: pl.Encode(),
	}, undoNext)
	if err != nil {
		return err
	}
	n.removeEntryAt(i)
	f.MarkDirty(lsn)
	t.Stats.Removes.Add(1)
	t.met.Removes.Inc()
	if wasPseudo {
		t.met.PseudoDeleted.Dec()
	}
	return nil
}
