// Package btree implements the B+-tree index manager, following the parts of
// ARIES/IM the paper builds on:
//
//   - Index entries are <key value, RID> pairs; a unique index allows at
//     most one non-pseudo-deleted entry per key value (§1.1).
//   - Every entry carries a 1-bit pseudo-deleted flag: deletes are logical
//     ("this is done, for example, in the case of IMS indexes"), which lets
//     deleters skip next-key locking and leaves the tombstones the NSF
//     algorithm needs to win its races with the index builder (§2.1.2).
//   - Entry-level changes are logged undo-redo (or undo-only for the
//     "transaction found IB's key already present" case); page splits are
//     redo-only nested top actions that are never undone — undo of an entry
//     operation is logical, re-traversing from the root.
//   - A multi-key insert interface and a remembered-path fast path keep the
//     NSF index builder's insert phase cheap (§2.3.1), and a specialised
//     split that moves only the keys higher than IB's insert point mimics a
//     bottom-up build's clustering.
//   - A bottom-up loader builds the tree without logging for the SF
//     algorithm, with checkpoints (highest key + page count + rightmost
//     path) that restart can truncate back to (§3.2.4).
//
// Concurrency: every operation runs under a tree latch in share mode with
// page latches underneath (S on internal nodes while descending, X on the
// leaves modified). Structure modifications (splits) retry the operation
// under the tree latch in exclusive mode, so ordinary operations on
// different leaves proceed in parallel and never deadlock: latch order is
// root→leaf, left→right, and nobody waits for the exclusive tree latch
// while holding a page latch.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"onlineindex/internal/page"
	"onlineindex/internal/types"
)

func init() {
	page.Register(page.KindBTree, func() page.Page { return &Node{} })
}

// NoPage marks "no next leaf" in the leaf chain.
const NoPage types.PageNum = ^types.PageNum(0)

// Entry is one leaf entry: <key value, RID> plus the pseudo-deleted flag.
type Entry struct {
	Key    []byte
	RID    types.RID
	Pseudo bool
}

// CompareEntry orders entries by (key value, RID): the full-key ordering of
// a nonunique index, where "the key must match completely (<key value, RID>)
// for rejection".
func CompareEntry(aKey []byte, aRID types.RID, bKey []byte, bRID types.RID) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	return aRID.Compare(bRID)
}

// sep is a separator in an internal node: the smallest (key, RID) reachable
// through the child to its right.
type sep struct {
	key []byte
	rid types.RID
}

// Node is a B+-tree page: leaf or internal.
//
// Internal layout: children[0..n] and seps[0..n-1]; child i+1 holds entries
// >= seps[i], child i holds entries < seps[i].
//
// A compressed node (comp set) stores its keys prefix-truncated on disk:
// the page image holds one per-page common prefix and each entry/separator
// records only its suffix. In memory keys are always full — only the
// marshalled image and the `used` accounting change — so search, insert and
// split logic is oblivious to compression except through the size helpers.
type Node struct {
	page.Header
	leaf bool
	comp bool   // keys are prefix-truncated against `prefix` on disk
	prefix []byte // per-page common prefix (comp only; prefix of every key)

	// leaf fields
	entries []Entry
	next    types.PageNum // right sibling (NoPage at the right edge)

	// internal fields
	seps     []sep
	children []types.PageNum

	used int // bytes the marshalled image needs
}

const nodeFixed = page.HeaderSize + 1 + 2 + 4 // header, flags, count, next

// compFixed is the extra fixed cost of a compressed image: the u16 prefix
// length (the prefix bytes themselves are counted separately).
const compFixed = 2

// Page-image flag bits (the byte after the header).
const (
	flagLeaf = 1 << 0
	flagComp = 1 << 1
)

// NewLeaf returns an empty leaf node.
func NewLeaf() *Node { return &Node{leaf: true, next: NoPage, used: nodeFixed} }

// NewLeafWith returns an empty leaf, compressed on request.
func NewLeafWith(compress bool) *Node {
	n := NewLeaf()
	if compress {
		n.comp = true
		n.used += compFixed
	}
	return n
}

// NewInternal returns an internal node with the given children and
// separators (len(children) == len(seps)+1).
func NewInternal(children []types.PageNum, seps []sep) *Node {
	n := &Node{leaf: false, next: NoPage, children: children, seps: seps, used: nodeFixed}
	n.used += 4 * len(children)
	for _, s := range seps {
		n.used += sepBytes(s.key)
	}
	return n
}

// NewInternalWith is NewInternal, compressed on request.
func NewInternalWith(children []types.PageNum, seps []sep, compress bool) *Node {
	n := NewInternal(children, seps)
	if compress {
		n.comp = true
		n.resetPrefix()
	}
	return n
}

func entryBytes(key []byte) int { return 2 + len(key) + 10 + 1 } // len, key, rid, flags
func sepBytes(key []byte) int   { return 2 + len(key) + 10 }

// entryRecBytes is the image cost of a leaf entry already covered by the
// current prefix.
func (n *Node) entryRecBytes(key []byte) int {
	if n.comp {
		return 2 + len(key) - len(n.prefix) + 10 + 1
	}
	return entryBytes(key)
}

// sepRecBytes is the image cost of a separator already covered by the
// current prefix.
func (n *Node) sepRecBytes(key []byte) int {
	if n.comp {
		return 2 + len(key) - len(n.prefix) + 10
	}
	return sepBytes(key)
}

// keyCount returns the number of keyed records (entries or separators).
func (n *Node) keyCount() int {
	if n.leaf {
		return len(n.entries)
	}
	return len(n.seps)
}

// entryAddCost is the growth of `used` if key were inserted as a leaf
// entry: on a compressed page that includes shrinking the common prefix to
// cover the new key (every existing suffix grows by the shrink).
func (n *Node) entryAddCost(key []byte) int {
	if !n.comp {
		return entryBytes(key)
	}
	return n.compAddCost(key) + 10 + 1
}

// sepAddCost is entryAddCost for a separator (no pseudo flag, no child —
// hasRoomSep adds the child pointer).
func (n *Node) sepAddCost(key []byte) int {
	if !n.comp {
		return sepBytes(key)
	}
	return n.compAddCost(key) + 10
}

// compAddCost is the shared part of the compressed-insert cost: the suffix
// record's length field and bytes, plus the prefix-shrink ripple.
func (n *Node) compAddCost(key []byte) int {
	cnt := n.keyCount()
	if cnt == 0 {
		// The page's first key becomes the prefix in full; its suffix is
		// empty.
		return (len(key) - len(n.prefix)) + 2
	}
	d := len(n.prefix) - commonPrefixLen(n.prefix, key)
	// cnt existing suffixes grow by d, the stored prefix shrinks by d, the
	// new suffix is key minus the shrunk prefix.
	return d*cnt - d + 2 + len(key) - (len(n.prefix) - d)
}

// adoptPrefix adjusts the page prefix to cover an incoming key. Must be
// called before the key is spliced in (keyCount still excludes it); the
// caller accounts for `used` via entryAddCost/sepAddCost.
func (n *Node) adoptPrefix(key []byte) {
	if !n.comp {
		return
	}
	if n.keyCount() == 0 {
		n.prefix = append(n.prefix[:0], key...)
		return
	}
	n.prefix = n.prefix[:commonPrefixLen(n.prefix, key)]
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	m := len(a)
	if len(b) < m {
		m = len(b)
	}
	i := 0
	for i < m && a[i] == b[i] {
		i++
	}
	return i
}

// resetPrefix recomputes the tightest per-page prefix (the common prefix of
// the first and last key — keys are sorted) and rebuilds `used`. Called
// after bulk restructuring (splits, truncations, content decode) where
// incremental accounting is not worth carrying through.
func (n *Node) resetPrefix() {
	if !n.comp {
		return
	}
	var first, last []byte
	if n.leaf {
		if len(n.entries) > 0 {
			first, last = n.entries[0].Key, n.entries[len(n.entries)-1].Key
		}
	} else if len(n.seps) > 0 {
		first, last = n.seps[0].key, n.seps[len(n.seps)-1].key
	}
	if first == nil {
		n.prefix = n.prefix[:0]
	} else {
		n.prefix = append(n.prefix[:0], first[:commonPrefixLen(first, last)]...)
	}
	n.used = n.computeUsed()
}

// computeUsed recomputes the marshalled image size from scratch; the
// invariant checker compares it against the incrementally maintained field.
func (n *Node) computeUsed() int {
	used := nodeFixed
	if n.comp {
		used += compFixed + len(n.prefix)
	}
	if n.leaf {
		for _, e := range n.entries {
			used += n.entryRecBytes(e.Key)
		}
		return used
	}
	used += 4 * len(n.children)
	for _, s := range n.seps {
		used += n.sepRecBytes(s.key)
	}
	return used
}

// Kind implements page.Page.
func (n *Node) Kind() page.Kind { return page.KindBTree }

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Compressed reports whether the node stores prefix-truncated keys.
func (n *Node) Compressed() bool { return n.comp }

// Next returns the right-sibling page of a leaf.
func (n *Node) Next() types.PageNum { return n.next }

// NumEntries returns the number of leaf entries (including pseudo-deleted).
func (n *Node) NumEntries() int { return len(n.entries) }

// EntryAt returns leaf entry i.
func (n *Node) EntryAt(i int) Entry { return n.entries[i] }

// NumChildren returns the number of children of an internal node.
func (n *Node) NumChildren() int { return len(n.children) }

// ChildAt returns child i of an internal node.
func (n *Node) ChildAt(i int) types.PageNum { return n.children[i] }

// UsedBytes returns the marshalled size the node currently needs.
func (n *Node) UsedBytes() int { return n.used }

// hasRoomEntry reports whether a leaf can absorb an entry with this key.
func (n *Node) hasRoomEntry(key []byte, budget int) bool {
	return n.used+n.entryAddCost(key) <= budget
}

// hasRoomSep reports whether an internal node can absorb a separator+child.
func (n *Node) hasRoomSep(key []byte, budget int) bool {
	return n.used+n.sepAddCost(key)+4 <= budget
}

// searchLeaf returns the index of the first entry >= (key, rid), and whether
// that entry matches exactly.
func (n *Node) searchLeaf(key []byte, rid types.RID) (int, bool) {
	i := sort.Search(len(n.entries), func(i int) bool {
		return CompareEntry(n.entries[i].Key, n.entries[i].RID, key, rid) >= 0
	})
	exact := i < len(n.entries) && CompareEntry(n.entries[i].Key, n.entries[i].RID, key, rid) == 0
	return i, exact
}

// searchChild returns the child index to descend into for (key, rid).
func (n *Node) searchChild(key []byte, rid types.RID) int {
	return sort.Search(len(n.seps), func(i int) bool {
		return CompareEntry(n.seps[i].key, n.seps[i].rid, key, rid) > 0
	})
}

// insertEntryAt splices e into position i of a leaf.
func (n *Node) insertEntryAt(i int, e Entry) {
	n.used += n.entryAddCost(e.Key)
	n.adoptPrefix(e.Key)
	n.entries = append(n.entries, Entry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = Entry{Key: append([]byte(nil), e.Key...), RID: e.RID, Pseudo: e.Pseudo}
}

// removeEntryAt removes leaf entry i. On a compressed page the prefix is
// left as-is (it stays a valid, merely possibly loose, common prefix).
func (n *Node) removeEntryAt(i int) {
	n.used -= n.entryRecBytes(n.entries[i].Key)
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
}

// insertSepAt splices separator s and its right child at position i.
func (n *Node) insertSepAt(i int, s sep, rightChild types.PageNum) {
	n.used += n.sepAddCost(s.key) + 4
	n.adoptPrefix(s.key)
	n.seps = append(n.seps, sep{})
	copy(n.seps[i+1:], n.seps[i:])
	n.seps[i] = sep{key: append([]byte(nil), s.key...), rid: s.rid}
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = rightChild
}

// MarshalPage implements page.Page.
//
// Compressed layout inserts [u16 prefixLen][prefix] between the next
// pointer and the count; entry and separator keys then store only the
// suffix past the prefix. Uncompressed pages keep the historical layout
// byte for byte.
func (n *Node) MarshalPage() ([]byte, error) {
	img := make([]byte, page.Size)
	n.MarshalHeader(img, page.KindBTree)
	off := page.HeaderSize
	var flags byte
	if n.leaf {
		flags |= flagLeaf
	}
	if n.comp {
		flags |= flagComp
	}
	img[off] = flags
	off++
	binary.LittleEndian.PutUint32(img[off:], uint32(n.next))
	off += 4
	plen := 0
	if n.comp {
		plen = len(n.prefix)
		if off+2+plen > page.Size {
			return nil, fmt.Errorf("btree: prefix overflow at %d bytes", off)
		}
		binary.LittleEndian.PutUint16(img[off:], uint16(plen))
		off += 2
		copy(img[off:], n.prefix)
		off += plen
	}
	if n.leaf {
		binary.LittleEndian.PutUint16(img[off:], uint16(len(n.entries)))
		off += 2
		for _, e := range n.entries {
			need := n.entryRecBytes(e.Key)
			if off+need > page.Size {
				return nil, fmt.Errorf("btree: leaf overflow at %d bytes", off)
			}
			suf := e.Key[plen:]
			binary.LittleEndian.PutUint16(img[off:], uint16(len(suf)))
			off += 2
			copy(img[off:], suf)
			off += len(suf)
			off = putRID(img, off, e.RID)
			if e.Pseudo {
				img[off] = 1
			}
			off++
		}
		return img, nil
	}
	binary.LittleEndian.PutUint16(img[off:], uint16(len(n.seps)))
	off += 2
	for _, c := range n.children {
		if off+4 > page.Size {
			return nil, fmt.Errorf("btree: internal overflow at %d bytes", off)
		}
		binary.LittleEndian.PutUint32(img[off:], uint32(c))
		off += 4
	}
	for _, s := range n.seps {
		need := n.sepRecBytes(s.key)
		if off+need > page.Size {
			return nil, fmt.Errorf("btree: internal overflow at %d bytes", off)
		}
		suf := s.key[plen:]
		binary.LittleEndian.PutUint16(img[off:], uint16(len(suf)))
		off += 2
		copy(img[off:], suf)
		off += len(suf)
		off = putRID(img, off, s.rid)
	}
	return img, nil
}

// UnmarshalPage implements page.Page.
func (n *Node) UnmarshalPage(img []byte) error {
	if _, err := n.UnmarshalHeader(img); err != nil {
		return err
	}
	off := page.HeaderSize
	flags := img[off]
	n.leaf = flags&flagLeaf != 0
	n.comp = flags&flagComp != 0
	off++
	n.next = types.PageNum(binary.LittleEndian.Uint32(img[off:]))
	off += 4
	n.used = nodeFixed
	n.prefix = nil
	if n.comp {
		plen := int(binary.LittleEndian.Uint16(img[off:]))
		off += 2
		if off+plen > len(img) {
			return fmt.Errorf("btree: corrupt compressed node (prefix)")
		}
		n.prefix = append([]byte(nil), img[off:off+plen]...)
		off += plen
		n.used += compFixed + plen
	}
	count := int(binary.LittleEndian.Uint16(img[off:]))
	off += 2
	n.entries, n.seps, n.children = nil, nil, nil
	if n.leaf {
		n.entries = make([]Entry, 0, count)
		for i := 0; i < count; i++ {
			if off+2 > len(img) {
				return fmt.Errorf("btree: corrupt leaf (entry %d)", i)
			}
			kl := int(binary.LittleEndian.Uint16(img[off:]))
			off += 2
			if off+kl+11 > len(img) {
				return fmt.Errorf("btree: corrupt leaf (entry %d key)", i)
			}
			key := make([]byte, 0, len(n.prefix)+kl)
			key = append(append(key, n.prefix...), img[off:off+kl]...)
			off += kl
			var rid types.RID
			rid, off = getRID(img, off)
			pseudo := img[off] == 1
			off++
			n.entries = append(n.entries, Entry{Key: key, RID: rid, Pseudo: pseudo})
			n.used += n.entryRecBytes(key)
		}
		return nil
	}
	n.children = make([]types.PageNum, 0, count+1)
	for i := 0; i <= count; i++ {
		if off+4 > len(img) {
			return fmt.Errorf("btree: corrupt internal (child %d)", i)
		}
		n.children = append(n.children, types.PageNum(binary.LittleEndian.Uint32(img[off:])))
		off += 4
		n.used += 4
	}
	n.seps = make([]sep, 0, count)
	for i := 0; i < count; i++ {
		if off+2 > len(img) {
			return fmt.Errorf("btree: corrupt internal (sep %d)", i)
		}
		kl := int(binary.LittleEndian.Uint16(img[off:]))
		off += 2
		if off+kl+10 > len(img) {
			return fmt.Errorf("btree: corrupt internal (sep %d key)", i)
		}
		key := make([]byte, 0, len(n.prefix)+kl)
		key = append(append(key, n.prefix...), img[off:off+kl]...)
		off += kl
		var rid types.RID
		rid, off = getRID(img, off)
		n.seps = append(n.seps, sep{key: key, rid: rid})
		n.used += n.sepRecBytes(key)
	}
	return nil
}

func putRID(img []byte, off int, r types.RID) int {
	binary.LittleEndian.PutUint32(img[off:], uint32(r.PageID.File))
	binary.LittleEndian.PutUint32(img[off+4:], uint32(r.PageID.Page))
	binary.LittleEndian.PutUint16(img[off+8:], uint16(r.Slot))
	return off + 10
}

func getRID(img []byte, off int) (types.RID, int) {
	r := types.RID{
		PageID: types.PageID{
			File: types.FileID(binary.LittleEndian.Uint32(img[off:])),
			Page: types.PageNum(binary.LittleEndian.Uint32(img[off+4:])),
		},
		Slot: types.SlotNum(binary.LittleEndian.Uint16(img[off+8:])),
	}
	return r, off + 10
}
