package btree

import (
	"fmt"
	"math/rand"
	"testing"

	"onlineindex/internal/rm"
	"onlineindex/internal/types"
)

// entryState mirrors one tree entry in the reference model.
type entryState struct {
	present bool
	pseudo  bool
}

// TestModelRandomOps drives the tree with a long random operation sequence
// and checks it against a plain-map reference model after every batch,
// exercising every entry-level state transition the paper's algorithms rely
// on (insert, duplicate rejection, pseudo-delete, tombstone insert,
// reactivation, physical remove, the IB batch rules) together with the
// structural invariants.
func TestModelRandomOps(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, log, _, tr := newTree(t, false, smallBudget)
			tl := &rm.SimpleLogger{L: log, Txn: 1}
			ib := &rm.SimpleLogger{L: log, Txn: 2}
			rng := rand.New(rand.NewSource(seed))

			const keySpace = 400
			model := make(map[int]entryState, keySpace)
			key := func(i int) []byte { return keyOf(i) }
			rid := func(i int) types.RID { return ridOf(i) }

			for step := 0; step < 4000; step++ {
				i := rng.Intn(keySpace)
				st := model[i]
				switch rng.Intn(5) {
				case 0: // transaction insert
					res, conflict, err := tr.TxnInsert(tl, key(i), rid(i))
					if err != nil || conflict != nil {
						t.Fatalf("step %d insert: %v %v", step, err, conflict)
					}
					switch {
					case !st.present && res != Inserted:
						t.Fatalf("step %d: insert of absent key = %v", step, res)
					case st.present && st.pseudo && res != Reactivated:
						t.Fatalf("step %d: insert over pseudo = %v", step, res)
					case st.present && !st.pseudo && res != AlreadyPresent:
						t.Fatalf("step %d: duplicate insert = %v", step, res)
					}
					model[i] = entryState{present: true}
				case 1: // transaction delete
					out, err := tr.TxnPseudoDelete(tl, key(i), rid(i))
					if err != nil {
						t.Fatalf("step %d delete: %v", step, err)
					}
					switch {
					case !st.present && out != DeleteTombstoned:
						t.Fatalf("step %d: delete of absent key = %v", step, out)
					case st.present && st.pseudo && out != DeleteAlreadyPseudo:
						t.Fatalf("step %d: delete of pseudo = %v", step, out)
					case st.present && !st.pseudo && out != DeleteMarked:
						t.Fatalf("step %d: delete of live = %v", step, out)
					}
					model[i] = entryState{present: true, pseudo: true}
				case 2: // IB batch insert (ascending run of a few keys)
					var ents []Entry
					base := rng.Intn(keySpace - 8)
					for j := base; j < base+rng.Intn(8)+1; j++ {
						ents = append(ents, Entry{Key: key(j), RID: rid(j)})
					}
					cur := &IBCursor{}
					res, conflict, _, err := tr.IBInsertBatch(ib, ents, cur)
					if err != nil || conflict != nil {
						t.Fatalf("step %d IB insert: %v %v", step, err, conflict)
					}
					wantInserted := 0
					for j := range ents {
						k := base + j
						if !model[k].present {
							model[k] = entryState{present: true}
							wantInserted++
						}
					}
					if res.Inserted != wantInserted {
						t.Fatalf("step %d: IB inserted %d, model expects %d", step, res.Inserted, wantInserted)
					}
				case 3: // physical remove (GC / ReplaceRID path)
					removed, err := tr.RemoveEntry(tl, key(i), rid(i))
					if err != nil {
						t.Fatalf("step %d remove: %v", step, err)
					}
					if removed != st.present {
						t.Fatalf("step %d: removed=%v, model present=%v", step, removed, st.present)
					}
					delete(model, i)
				case 4: // point lookup
					found, pseudo, err := tr.SearchEntry(key(i), rid(i))
					if err != nil {
						t.Fatalf("step %d search: %v", step, err)
					}
					if found != st.present || (found && pseudo != st.pseudo) {
						t.Fatalf("step %d: search=(%v,%v), model=%+v", step, found, pseudo, st)
					}
				}

				if step%500 == 499 {
					checkInvariants(t, tr)
					verifyModel(t, tr, model)
				}
			}
			checkInvariants(t, tr)
			verifyModel(t, tr, model)
		})
	}
}

// verifyModel compares the full tree contents against the reference model.
func verifyModel(t *testing.T, tr *Tree, model map[int]entryState) {
	t.Helper()
	got := make(map[string]bool) // key -> pseudo
	if err := tr.ScanRange(nil, nil, func(e Entry) bool {
		got[string(e.Key)] = e.Pseudo
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i, st := range model {
		if !st.present {
			continue
		}
		want++
		pseudo, ok := got[string(keyOf(i))]
		if !ok {
			t.Fatalf("model key %d missing from tree", i)
		}
		if pseudo != st.pseudo {
			t.Fatalf("model key %d pseudo=%v, tree=%v", i, st.pseudo, pseudo)
		}
	}
	if len(got) != want {
		t.Fatalf("tree has %d entries, model has %d", len(got), want)
	}
}
