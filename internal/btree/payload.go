package btree

import (
	"fmt"

	"onlineindex/internal/enc"
	"onlineindex/internal/types"
)

// EntryPayload is the body of the entry-level log records: TypeIdxInsert,
// TypeIdxInsertNoop, TypeIdxDelete, TypeIdxPseudoDel and TypeIdxReactivate.
//
// For TypeIdxInsert, Pseudo records whether the entry was inserted in the
// pseudo-deleted state (the "tombstone insert" a deleter performs when the
// key it must delete is not in the index yet, §2.2.3). Internal/Child are
// used only for redo-only separator inserts into internal nodes (split
// NTAs). The leaf the record was applied to is in the record header's
// PageID; undo is logical and uses only Key/RID.
type EntryPayload struct {
	Key      []byte
	RID      types.RID
	Pseudo   bool
	Internal bool
	Child    types.PageNum
}

// Encode serializes the payload.
func (p *EntryPayload) Encode() []byte {
	return enc.NewWriter().
		Bytes32(p.Key).RID(p.RID).Bool(p.Pseudo).Bool(p.Internal).U32(uint32(p.Child)).
		Bytes()
}

// DecodeEntry parses an EntryPayload.
func DecodeEntry(b []byte) (EntryPayload, error) {
	r := enc.NewReader(b)
	p := EntryPayload{
		Key: r.Bytes32(), RID: r.RID(), Pseudo: r.Bool(),
		Internal: r.Bool(), Child: types.PageNum(r.U32()),
	}
	return p, r.Err()
}

// MultiInsertPayload is the body of TypeIdxMultiInsert: the NSF index
// builder inserts several keys into one leaf under one log record ("one log
// record for multiple keys would save the pathlength of a log call for each
// key", §2.3.1).
type MultiInsertPayload struct {
	Entries []Entry
}

// Encode serializes the payload.
func (p *MultiInsertPayload) Encode() []byte {
	w := enc.NewWriter().U32(uint32(len(p.Entries)))
	for _, e := range p.Entries {
		w.Bytes32(e.Key).RID(e.RID).Bool(e.Pseudo)
	}
	return w.Bytes()
}

// DecodeMultiInsert parses a MultiInsertPayload.
func DecodeMultiInsert(b []byte) (MultiInsertPayload, error) {
	r := enc.NewReader(b)
	n := int(r.U32())
	p := MultiInsertPayload{}
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Entries = append(p.Entries, Entry{Key: r.Bytes32(), RID: r.RID(), Pseudo: r.Bool()})
	}
	return p, r.Err()
}

// SetRIDPayload is the body of TypeIdxSetRID: in a unique index, when the
// previous holder of a key value is a terminated pseudo-deleted entry, the
// inserter "reset[s] the pseudo-deleted flag in the existing entry and
// replace[s] R with R1" (§2.2.3). Undo restores the old RID in the
// pseudo-deleted state.
type SetRIDPayload struct {
	KeyB   []byte
	OldRID types.RID
	NewRID types.RID
}

// Encode serializes the payload.
func (p *SetRIDPayload) Encode() []byte {
	return enc.NewWriter().Bytes32(p.KeyB).RID(p.OldRID).RID(p.NewRID).Bytes()
}

// DecodeSetRID parses a SetRIDPayload.
func DecodeSetRID(b []byte) (SetRIDPayload, error) {
	r := enc.NewReader(b)
	p := SetRIDPayload{KeyB: r.Bytes32(), OldRID: r.RID(), NewRID: r.RID()}
	return p, r.Err()
}

// encodeContent serializes a node's logical content (compactly, unlike the
// fixed-size page image) for split and format log records. Keys are stored
// in full; the leading flag byte carries the leaf bit and, for compressed
// nodes, the comp bit so redo reconstructs an equivalently compressed page
// (the per-page prefix is recomputed, not stored). An uncompressed node's
// encoding is byte-identical to the historical Bool(leaf) format.
func (n *Node) encodeContent(w *enc.Writer) {
	var flags uint8
	if n.leaf {
		flags |= flagLeaf
	}
	if n.comp {
		flags |= flagComp
	}
	w.U8(flags).U32(uint32(n.next))
	if n.leaf {
		w.U32(uint32(len(n.entries)))
		for _, e := range n.entries {
			w.Bytes32(e.Key).RID(e.RID).Bool(e.Pseudo)
		}
		return
	}
	w.U32(uint32(len(n.seps)))
	for _, c := range n.children {
		w.U32(uint32(c))
	}
	for _, s := range n.seps {
		w.Bytes32(s.key).RID(s.rid)
	}
}

// decodeContent restores a node's logical content.
func decodeContent(r *enc.Reader) (*Node, error) {
	flags := r.U8()
	leaf := flags&flagLeaf != 0
	comp := flags&flagComp != 0
	next := types.PageNum(r.U32())
	count := int(r.U32())
	var n *Node
	if leaf {
		n = NewLeaf()
		n.next = next
		for i := 0; i < count && r.Err() == nil; i++ {
			e := Entry{Key: r.Bytes32(), RID: r.RID(), Pseudo: r.Bool()}
			n.entries = append(n.entries, e)
			n.used += entryBytes(e.Key)
		}
	} else {
		children := make([]types.PageNum, 0, count+1)
		for i := 0; i <= count; i++ {
			children = append(children, types.PageNum(r.U32()))
		}
		seps := make([]sep, 0, count)
		for i := 0; i < count && r.Err() == nil; i++ {
			seps = append(seps, sep{key: r.Bytes32(), rid: r.RID()})
		}
		n = NewInternal(children, seps)
		n.next = next
	}
	if comp {
		n.comp = true
		n.resetPrefix()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("btree: corrupt node content: %w", err)
	}
	return n, nil
}

// SplitPayload is the body of TypeIdxSplit. A split is logged as a single
// redo-only record covering the three pages it touches (left, new right,
// parent), which makes the structure modification atomic with respect to
// durability: the WAL protocol guarantees no affected page image reaches
// disk before the record does, so a crash either sees the whole split or
// none of it. Splits are never undone; undo of entry operations is logical.
type SplitPayload struct {
	Left         types.PageNum
	KeepCount    uint32        // entries (or seps) remaining in left
	LeftNext     types.PageNum // left's new right-sibling pointer (leaves)
	Right        types.PageNum
	RightContent []byte // encoded content of the new right node
	Parent       types.PageNum
	SepKey       []byte // separator promoted into the parent
	SepRID       types.RID
}

// Encode serializes the payload.
func (p *SplitPayload) Encode() []byte {
	return enc.NewWriter().
		U32(uint32(p.Left)).U32(p.KeepCount).U32(uint32(p.LeftNext)).
		U32(uint32(p.Right)).Bytes32(p.RightContent).
		U32(uint32(p.Parent)).Bytes32(p.SepKey).RID(p.SepRID).
		Bytes()
}

// DecodeSplit parses a SplitPayload.
func DecodeSplit(b []byte) (SplitPayload, error) {
	r := enc.NewReader(b)
	p := SplitPayload{
		Left:         types.PageNum(r.U32()),
		KeepCount:    r.U32(),
		LeftNext:     types.PageNum(r.U32()),
		Right:        types.PageNum(r.U32()),
		RightContent: r.Bytes32(),
		Parent:       types.PageNum(r.U32()),
		SepKey:       r.Bytes32(),
		SepRID:       r.RID(),
	}
	return p, r.Err()
}

// NewRootPayload is the body of TypeIdxNewRoot: the root grows by copying
// its content into two new children so the root page number never changes
// (ARIES/IM keeps the root anchored). Also redo-only and single-record
// atomic like SplitPayload.
type NewRootPayload struct {
	RootContent []byte // the root's new (internal) content
	Child1      types.PageNum
	C1Content   []byte
	Child2      types.PageNum
	C2Content   []byte
}

// Encode serializes the payload.
func (p *NewRootPayload) Encode() []byte {
	return enc.NewWriter().
		Bytes32(p.RootContent).
		U32(uint32(p.Child1)).Bytes32(p.C1Content).
		U32(uint32(p.Child2)).Bytes32(p.C2Content).
		Bytes()
}

// DecodeNewRoot parses a NewRootPayload.
func DecodeNewRoot(b []byte) (NewRootPayload, error) {
	r := enc.NewReader(b)
	p := NewRootPayload{
		RootContent: r.Bytes32(),
		Child1:      types.PageNum(r.U32()),
		C1Content:   r.Bytes32(),
		Child2:      types.PageNum(r.U32()),
		C2Content:   r.Bytes32(),
	}
	return p, r.Err()
}

// FormatPayload is the body of TypeIdxFormat: format a page as an empty leaf
// or as the given content (index creation and the bottom-up loader's logged
// final state transitions).
type FormatPayload struct {
	Content []byte // encoded node content; empty means "empty leaf"
}

// Encode serializes the payload.
func (p *FormatPayload) Encode() []byte {
	return enc.NewWriter().Bytes32(p.Content).Bytes()
}

// DecodeFormat parses a FormatPayload.
func DecodeFormat(b []byte) (FormatPayload, error) {
	r := enc.NewReader(b)
	p := FormatPayload{Content: r.Bytes32()}
	return p, r.Err()
}
